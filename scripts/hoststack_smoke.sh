#!/bin/sh
# hoststack_smoke.sh proves the host-stack latency instrument end to end at
# the shell level: a hoststack-enabled sharded generation is digest-stable
# across fresh and interrupted-then-resumed runs, dsinspect surfaces the
# instrument in its overview, and a resume that drops the -hoststack flag is
# refused instead of silently mixing instrumented and uninstrumented shards.
#
# This is the shell-level companion to the in-process guards
# (internal/fleet/hoststack_test.go, internal/dataset's mismatch tests):
# real binaries, a real SIGINT, real resume.
set -eu

cd "$(dirname "$0")/.."

# Two racks/region x two hours = 8 shards: enough that the interrupted run
# usually stops partway, small enough to stay CI-friendly. If the INT lands
# after completion the resume degenerates to a no-op — digest equality still
# holds, the test just exercises less.
FLAGS="-preset small -racks 2 -servers 16 -hours 0,6 -buckets 500 -seed 9 -hoststack"

tmp="$(mktemp -d)"
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo ">> building binaries"
go build -o "$tmp/bin/" ./cmd/fleetgen ./cmd/dsinspect

echo ">> fresh hoststack-enabled generation"
# shellcheck disable=SC2086 # FLAGS is a flag list by construction
"$tmp/bin/fleetgen" $FLAGS -o "$tmp/golden.ds"
golden="$("$tmp/bin/dsinspect" -data "$tmp/golden.ds" -digest)"
echo "   golden digest $golden"

overview="$("$tmp/bin/dsinspect" -data "$tmp/golden.ds")"
case "$overview" in
*"hoststack on"*) ;;
*)
    echo "hoststack_smoke: FAIL: dsinspect overview does not surface 'hoststack on'" >&2
    exit 1
    ;;
esac

echo ">> interrupted generation, then resume with the same flags"
# shellcheck disable=SC2086
"$tmp/bin/fleetgen" $FLAGS -o "$tmp/resume.ds" &
gen=$!
sleep 1
kill -INT "$gen" 2>/dev/null || true
wait "$gen" || true
# shellcheck disable=SC2086
"$tmp/bin/fleetgen" $FLAGS -o "$tmp/resume.ds"
resumed="$("$tmp/bin/dsinspect" -data "$tmp/resume.ds" -digest)"
echo "   resumed digest $resumed"
if [ "$golden" != "$resumed" ]; then
    echo "hoststack_smoke: FAIL: resumed digest $resumed != golden $golden" >&2
    exit 1
fi

echo ">> resume without -hoststack must be refused"
# shellcheck disable=SC2086
if err="$("$tmp/bin/fleetgen" $(echo "$FLAGS" | sed 's/ -hoststack//') -o "$tmp/resume.ds" 2>&1)"; then
    echo "hoststack_smoke: FAIL: uninstrumented resume over an instrumented dataset succeeded" >&2
    exit 1
fi
case "$err" in
*hoststack*) ;;
*)
    echo "hoststack_smoke: FAIL: mismatch error does not name the hoststack knob:" >&2
    echo "$err" >&2
    exit 1
    ;;
esac

echo "hoststack_smoke: PASS — instrumented generation digest-stable across resume; mixing refused"
