#!/bin/sh
# check.sh runs the full verification gate: build, vet, and the test suite
# under the race detector. CI and `make check` both go through here so the
# gate cannot drift between them.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo "check: all green"
