#!/bin/sh
# check.sh runs the full verification gate: build, vet, and the test suite
# under the race detector. CI and `make check` both go through here so the
# gate cannot drift between them.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go build -tags simdebug ./..."
go build -tags simdebug ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test -tags simdebug ./internal/netsim ./internal/switchsim ./internal/transport ./internal/testbed"
go test -tags simdebug ./internal/netsim ./internal/switchsim ./internal/transport ./internal/testbed

echo "check: all green"
