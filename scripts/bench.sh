#!/bin/sh
# bench.sh is the benchmark regression gate behind `make bench`: it runs the
# §4.3 microbenchmarks and the per-figure/sweep regeneration benchmarks on
# the small preset, measures small-preset fleet generation wall time plus its
# determinism digest, and compares the result against a baseline. Fresh
# numbers land in BENCH.json; the committed BENCH_PR2.json is the baseline
# used when no local BENCH.json exists yet, so successive local runs gate
# against each other while a clean checkout gates against the recorded
# numbers. A regression beyond the tolerance (or any digest drift) fails the
# script; on success the new numbers replace the result file.
#
# Environment knobs:
#   BENCH_FILE       result file (default BENCH.json)
#   BENCH_BASELINE   baseline when no result file exists (default BENCH_PR10.json,
#                    the most recent committed record — schema 3 with the
#                    hybrid-fidelity and host-stack measurements)
#   BENCH_TOLERANCE  allowed fractional regression in ns/op and wall time
#                    (default 0.50 — the figure benchmarks run few iterations
#                    and shared boxes are noisy; allocs/op regressions from
#                    zero and digest drift never pass)
#   BENCH_SKIP_GATE  set to 1 to record fresh numbers without comparing
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_FILE:-BENCH.json}
BASE=${BENCH_BASELINE:-BENCH_PR10.json}
TOL=${BENCH_TOLERANCE:-0.50}
NEW="$OUT.new"

GATE="$OUT"
if [ ! -f "$GATE" ]; then
    GATE="$BASE"
fi

go run ./cmd/benchgate run -out "$NEW"

if [ -f "$GATE" ] && [ "${BENCH_SKIP_GATE:-0}" != "1" ]; then
    go run ./cmd/benchgate compare -old "$GATE" -new "$NEW" -tol "$TOL"
fi

mv "$NEW" "$OUT"
echo "bench: results recorded in $OUT (gated against $GATE)"
