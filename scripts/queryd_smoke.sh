#!/bin/sh
# queryd_smoke.sh proves the read-side query service end to end with real
# binaries and real HTTP: generate a small dataset, serve it with queryd,
# and check the full client contract —
#
#   - catalog discovery lists the dataset complete with a store digest;
#   - the streaming NDJSON query delivers every run;
#   - the same render fetched twice is byte-identical and the second is a
#     cache hit (X-Cache: hit);
#   - the served render is byte-identical to what the local CLI renders
#     from the same store;
#   - a conditional request with the returned ETag gets 304 Not Modified;
#   - `experiments -server` (client mode) returns those same bytes;
#   - dsinspect agrees with the server about the sweep's sealed digest;
#   - SIGTERM drains the server cleanly (exit 0).
set -eu

cd "$(dirname "$0")/.."

PORT="${QUERYD_SMOKE_PORT:-19010}"
BASE="http://127.0.0.1:${PORT}"
FLAGS="-preset small -racks 2 -servers 24 -hours 0,6 -buckets 500 -seed 7"

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo ">> building binaries"
go build -o "$tmp/bin/" ./cmd/fleetgen ./cmd/queryd ./cmd/experiments ./cmd/dsinspect ./cmd/sweep

echo ">> generating smoke stores"
# shellcheck disable=SC2086 # FLAGS is a flag list by construction
"$tmp/bin/fleetgen" $FLAGS -o "$tmp/root/fleet.ds"
"$tmp/bin/sweep" -preset smoke -o "$tmp/root/whatif"

echo ">> starting queryd"
"$tmp/bin/queryd" -root "$tmp/root" -addr "127.0.0.1:${PORT}" &
queryd_pid=$!
pids="$pids $queryd_pid"
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "queryd_smoke: server never came up" >&2; exit 1; }

echo ">> catalog discovery"
catalog="$(curl -sf "$BASE/v1/catalog")"
echo "$catalog" | grep -q '"name":"fleet.ds"' || { echo "queryd_smoke: FAIL: dataset missing from catalog: $catalog" >&2; exit 1; }
echo "$catalog" | grep -q '"name":"whatif"' || { echo "queryd_smoke: FAIL: sweep missing from catalog: $catalog" >&2; exit 1; }
echo "$catalog" | grep -q '"complete":true' || { echo "queryd_smoke: FAIL: stores not complete: $catalog" >&2; exit 1; }

echo ">> streaming query"
lines="$(curl -sf "$BASE/v1/datasets/fleet.ds/runs" | wc -l)"
# small preset, 2 racks/region x 2 regions x 2 hours = 8 runs.
[ "$lines" -eq 8 ] || { echo "queryd_smoke: FAIL: streamed $lines runs, want 8" >&2; exit 1; }
filtered="$(curl -sf "$BASE/v1/datasets/fleet.ds/runs?hour=6" | wc -l)"
[ "$filtered" -eq 4 ] || { echo "queryd_smoke: FAIL: hour filter returned $filtered runs, want 4" >&2; exit 1; }

echo ">> cached render: twice, byte-identical, second is a hit"
curl -sf -D "$tmp/hdr1" -o "$tmp/render1" "$BASE/v1/datasets/fleet.ds/renders/tab1"
curl -sf -D "$tmp/hdr2" -o "$tmp/render2" "$BASE/v1/datasets/fleet.ds/renders/tab1"
cmp -s "$tmp/render1" "$tmp/render2" || { echo "queryd_smoke: FAIL: repeated render differs" >&2; exit 1; }
grep -qi '^x-cache: miss' "$tmp/hdr1" || { echo "queryd_smoke: FAIL: first render not a miss" >&2; cat "$tmp/hdr1" >&2; exit 1; }
grep -qi '^x-cache: hit' "$tmp/hdr2" || { echo "queryd_smoke: FAIL: second render not a cache hit" >&2; cat "$tmp/hdr2" >&2; exit 1; }

echo ">> served render matches the local CLI render"
"$tmp/bin/experiments" -data "$tmp/root/fleet.ds" -run tab1 >"$tmp/local" 2>/dev/null
cmp -s "$tmp/render1" "$tmp/local" || { echo "queryd_smoke: FAIL: server render differs from local CLI render" >&2; exit 1; }

echo ">> ETag revalidation"
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)\r*$/\1/p' "$tmp/hdr1" | tr -d '\r')"
[ -n "$etag" ] || { echo "queryd_smoke: FAIL: render has no ETag" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "$BASE/v1/datasets/fleet.ds/renders/tab1")"
[ "$code" = "304" ] || { echo "queryd_smoke: FAIL: revalidation got $code, want 304" >&2; exit 1; }

echo ">> experiments -server client mode"
"$tmp/bin/experiments" -server "$BASE" -data fleet.ds -run tab1 >"$tmp/remote" 2>/dev/null
cmp -s "$tmp/remote" "$tmp/local" || { echo "queryd_smoke: FAIL: client mode output differs from local render" >&2; exit 1; }

echo ">> sweep digest agreement (server catalog vs dsinspect)"
sweep_digest="$("$tmp/bin/dsinspect" -data "$tmp/root/whatif" -digest)"
curl -sf "$BASE/v1/sweeps/whatif" | grep -q "$sweep_digest" || { echo "queryd_smoke: FAIL: server sweep digest != dsinspect" >&2; exit 1; }
curl -sf "$BASE/v1/sweeps/whatif/renders/whatif-grid" >"$tmp/grid"
[ -s "$tmp/grid" ] || { echo "queryd_smoke: FAIL: empty sweep render" >&2; exit 1; }

echo ">> cache metrics"
curl -sf "$BASE/metrics" >"$tmp/metrics"
grep -q 'queryd_cache_hits_total [1-9]' "$tmp/metrics" || { echo "queryd_smoke: FAIL: no cache hits recorded" >&2; cat "$tmp/metrics" >&2; exit 1; }

echo ">> graceful drain on SIGTERM"
kill -TERM "$queryd_pid"
wait "$queryd_pid" || { echo "queryd_smoke: FAIL: queryd exited non-zero on SIGTERM" >&2; exit 1; }
pids=""

echo "queryd_smoke: PASS — catalog, streaming, cached renders, ETags, client mode, drain"
