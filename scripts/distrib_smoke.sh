#!/bin/sh
# distrib_smoke.sh proves the distributed generation pipeline end to end on
# one machine: a coordinator plus two workers generate a dataset while one
# worker is SIGKILLed mid-run, and the result must be byte-identical (same
# canonical digest) to a single-process generation of the same config.
#
# This is the shell-level companion to the in-process chaos suite
# (internal/distrib/chaos): real binaries, real HTTP, a real kill -9.
set -eu

cd "$(dirname "$0")/.."

PORT="${DISTRIB_SMOKE_PORT:-19009}"
COORD="http://127.0.0.1:${PORT}"
# Big enough that a lone worker cannot finish before the kill lands (~8
# shards), small enough to stay CI-friendly.
FLAGS="-preset small -racks 2 -servers 24 -hours 0,6 -buckets 500 -seed 7"

tmp="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo ">> building binaries"
go build -o "$tmp/bin/" ./cmd/fleetgen ./cmd/coordinator ./cmd/worker ./cmd/dsinspect

echo ">> golden single-process generation"
# shellcheck disable=SC2086 # FLAGS is a flag list by construction
"$tmp/bin/fleetgen" $FLAGS -o "$tmp/golden.ds"
golden="$("$tmp/bin/dsinspect" -data "$tmp/golden.ds" -digest)"
echo "   golden digest $golden"

echo ">> distributed generation with a SIGKILLed worker"
# No -once: the coordinator keeps serving status until the submitter and the
# surviving worker have both observed completion; the trap reaps it.
"$tmp/bin/coordinator" -listen "127.0.0.1:${PORT}" -lease-ttl 2s &
pids="$pids $!"
sleep 0.5

# Submit the job (the client polls until the job completes).
# shellcheck disable=SC2086
"$tmp/bin/fleetgen" $FLAGS -distributed "$COORD" -o "$tmp/dist.ds" &
submit=$!
pids="$pids $submit"

# The victim worker starts alone so it is guaranteed to hold leases when the
# kill arrives; its units are recovered only through lease expiry.
"$tmp/bin/worker" -coordinator "$COORD" -name victim &
victim=$!
pids="$pids $victim"
sleep 1.5
kill -9 "$victim" 2>/dev/null || true
echo "   SIGKILLed worker 'victim' ($victim)"

"$tmp/bin/worker" -coordinator "$COORD" -name survivor &
pids="$pids $!"

if ! wait "$submit"; then
    echo "distrib_smoke: distributed generation failed" >&2
    exit 1
fi

dist="$("$tmp/bin/dsinspect" -data "$tmp/dist.ds" -digest)"
echo "   distributed digest $dist"
if [ "$golden" != "$dist" ]; then
    echo "distrib_smoke: FAIL: distributed digest $dist != golden $golden" >&2
    exit 1
fi
if [ ! -d "$tmp/dist.ds" ]; then
    echo "distrib_smoke: FAIL: no dataset directory produced" >&2
    exit 1
fi

echo "distrib_smoke: PASS — distributed dataset byte-identical to single-process"
