package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// simulateRunHybrid is the Fidelity == FidelityHybrid engine behind
// SimulateRunFull: the same rack construction and the same deterministic
// (cfg, spec, hour) contract, but the rack-hour itself runs on the hybrid
// fluid/packet path. The returned SyncRun and counters are distributionally —
// not byte — equivalent to the full engine's.
func simulateRunHybrid(cfg Config, spec RackSpec, hour int) (*core.SyncRun, SwitchCounters, error) {
	rcfg := testbed.RackConfig{
		Servers: cfg.ServersPerRack,
		Remotes: 4 * cfg.ServersPerRack,
		Seed:    spec.Seed ^ (uint64(hour+1) * 0x9e3779b97f4a7c15),
	}
	if !cfg.Switch.IsZero() {
		rcfg.Switch = cfg.Switch.Apply(switchsim.DefaultConfig(cfg.ServersPerRack))
	}
	rack := testbed.NewRack(rcfg)
	scale := DiurnalFactor(hour) * spec.Intensity
	profiles := make([]workload.Profile, len(spec.Profiles))
	for i, p := range spec.Profiles {
		profiles[i] = p.Scale(scale)
	}
	res, err := fluid.SimulateRack(rack, profiles, rack.RNG.Fork(0x10AD), fluid.Config{
		Sampler: core.Config{Interval: cfg.Interval, Buckets: cfg.Buckets, CountFlows: true},
	})
	if err != nil {
		return nil, SwitchCounters{}, fmt.Errorf("rack %s/%d hour %d (hybrid): %w", spec.Region, spec.ID, hour, err)
	}
	return res.Sync, SwitchCounters{
		Before:         res.Before,
		After:          res.After,
		PeakQueueBytes: res.PeakQueueBytes,
	}, nil
}
