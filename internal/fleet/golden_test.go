package fleet

import (
	"sync"
	"testing"
)

// goldenSmallDigest is the sha256 of json(Racks)+json(Runs) for
// SmallConfig() at Workers=2, verified identical to the dataset produced
// before the hot-path memory overhaul (segment pooling, pooled events, timer
// handles). The overhaul is required to be behavior-preserving: same seed,
// byte-identical dataset. Workers is pinned because the default (GOMAXPROCS)
// is machine-dependent, though the digest itself is worker-count independent.
const goldenSmallDigest = "9808ac8afa7c492918e3efb633a89101f5f00d30c1f978a220b411933fa04d96"

// TestGenerateSmallGoldenDigest regenerates the small-preset collection day
// and compares its determinism fingerprint against the pre-optimization
// golden value. Any drift means a hot-path change altered simulation
// behavior rather than just its cost.
func TestGenerateSmallGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration takes several seconds")
	}
	cfg := SmallConfig()
	cfg.Workers = 2
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	got, err := ds.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	if got != goldenSmallDigest {
		t.Fatalf("dataset digest drifted:\n got  %s\n want %s\nthe optimized hot path changed simulation behavior", got, goldenSmallDigest)
	}
}

// TestDatasetRackConcurrent exercises the lazily built rack index from many
// goroutines at once; run under -race (make check does) it pins the fix for
// the old unsynchronized lazy buildIndex.
func TestDatasetRackConcurrent(t *testing.T) {
	ds := &Dataset{Racks: []RackMeta{
		{Region: RegA, ID: 0, Class: ClassAHigh},
		{Region: RegA, ID: 1, Class: ClassATypical},
		{Region: RegB, ID: 0, Class: ClassB},
	}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if m := ds.Rack(RegA, 0); m == nil || m.Class != ClassAHigh {
					t.Error("Rack(RegA, 0) lookup failed")
					return
				}
				if m := ds.Rack(RegB, 0); m == nil || m.Class != ClassB {
					t.Error("Rack(RegB, 0) lookup failed")
					return
				}
				if ds.Rack(RegB, 99) != nil {
					t.Error("Rack(RegB, 99) should be absent")
					return
				}
			}
		}()
	}
	wg.Wait()
}
