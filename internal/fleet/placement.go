package fleet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Task identifies one service job instance; each server runs exactly one
// task (paper §7.1), and a job may span several servers of a rack.
type Task struct {
	Service string
	Job     int
}

// String renders "service/job".
func (t Task) String() string { return fmt.Sprintf("%s/%d", t.Service, t.Job) }

// RackSpec is the generation-time description of one rack: its placement
// (task per server), traffic profiles, and intensity.
type RackSpec struct {
	Region string
	ID     int
	// MLDominated is the placement ground truth: a RegA rack whose servers
	// mostly run the co-located ML job. Measured classification into
	// RegA-High is done from contention, as in the paper.
	MLDominated bool
	// Intensity is RegB's per-rack load multiplier (1 for RegA).
	Intensity float64
	// Tasks assigns a task to each server.
	Tasks []Task
	// Profiles is the per-server traffic profile (pre-intensity scaling).
	Profiles []workload.Profile
	// Seed drives the rack's traffic randomness.
	Seed uint64
}

// DistinctTasks counts distinct tasks on the rack (paper Fig. 10).
func (r *RackSpec) DistinctTasks() int {
	set := make(map[Task]struct{}, len(r.Tasks))
	for _, t := range r.Tasks {
		set[t] = struct{}{}
	}
	return len(set)
}

// DominantTaskShare returns the fraction of servers running the rack's most
// common task (paper Fig. 11).
func (r *RackSpec) DominantTaskShare() float64 {
	counts := make(map[Task]int, len(r.Tasks))
	max := 0
	for _, t := range r.Tasks {
		counts[t]++
		if counts[t] > max {
			max = counts[t]
		}
	}
	if len(r.Tasks) == 0 {
		return 0
	}
	return float64(max) / float64(len(r.Tasks))
}

// jobSize draws a job's server count: geometric-ish, mostly 1-4 servers,
// occasionally up to 12 — yielding ~15 distinct tasks and a ~20-25% dominant
// share on a 48-server rack, the paper's RegA-Typical regime.
func jobSize(rng *sim.RNG) int {
	n := 1
	for n < 12 && rng.Bool(0.62) {
		n++
	}
	return n
}

// placeTypical fills servers with weighted typical-service jobs.
func placeTypical(spec *RackSpec, rng *sim.RNG, job *int) {
	for i := 0; i < len(spec.Tasks); {
		prof := workload.PickTypical(rng)
		size := jobSize(rng)
		*job++
		for k := 0; k < size && i < len(spec.Tasks); k++ {
			spec.Tasks[i] = Task{Service: prof.Name, Job: *job}
			spec.Profiles[i] = prof
			i++
		}
	}
}

// placeMLDominated fills a fraction of servers with one big co-located ML
// job (the paper traces RegA-High to exactly this placement decision) and
// the rest with typical services.
func placeMLDominated(spec *RackSpec, rng *sim.RNG, job *int) {
	frac := 0.6 + 0.4*rng.Float64() // 60-100% of servers run the ML task
	n := int(frac*float64(len(spec.Tasks)) + 0.5)
	*job++
	mlJob := *job
	for i := 0; i < n; i++ {
		// Most ML servers are trainers; roughly one in seven is a data
		// reader whose fresh-connection fan-in is the class's loss source.
		// Readers belong to the same task (one co-located job).
		prof := workload.MLTrain
		if i%7 == 6 {
			prof = workload.MLReader
		}
		spec.Tasks[i] = Task{Service: workload.MLTrain.Name, Job: mlJob}
		spec.Profiles[i] = prof
	}
	rest := &RackSpec{Tasks: spec.Tasks[n:], Profiles: spec.Profiles[n:]}
	placeTypical(rest, rng, job)
}

// placeRegB mixes typical services with a rack-dependent amount of the
// high-duty workload, producing RegB's fairly uniform contention spread
// (paper Fig. 9) while keeping task diversity high (Fig. 10).
func placeRegB(spec *RackSpec, rng *sim.RNG, job *int) {
	// Up to ~55% of servers run ML-style jobs of moderate size.
	mlServers := int(rng.Float64() * 0.55 * float64(len(spec.Tasks)))
	i := 0
	for i < mlServers {
		size := 4 + rng.Intn(9) // ML jobs span 4-12 servers in RegB
		*job++
		for k := 0; k < size && i < mlServers; k++ {
			spec.Tasks[i] = Task{Service: workload.MLTrain.Name, Job: *job}
			spec.Profiles[i] = workload.MLTrain
			i++
		}
	}
	rest := &RackSpec{Tasks: spec.Tasks[mlServers:], Profiles: spec.Profiles[mlServers:]}
	placeTypical(rest, rng, job)
}

// BuildRacks lays out both regions' racks for a configuration.
func BuildRacks(cfg Config) []RackSpec {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	var racks []RackSpec

	nHigh := int(cfg.MLRackFraction*float64(cfg.RacksPerRegion) + 0.5)
	for id := 0; id < cfg.RacksPerRegion; id++ {
		spec := RackSpec{
			Region:    RegA,
			ID:        id,
			Intensity: 1,
			Tasks:     make([]Task, cfg.ServersPerRack),
			Profiles:  make([]workload.Profile, cfg.ServersPerRack),
			Seed:      rng.Uint64(),
		}
		job := 0
		if id < nHigh {
			spec.MLDominated = true
			placeMLDominated(&spec, rng.Fork(uint64(id)), &job)
		} else {
			placeTypical(&spec, rng.Fork(uint64(id)), &job)
		}
		racks = append(racks, spec)
	}
	for id := 0; id < cfg.RacksPerRegion; id++ {
		spec := RackSpec{
			Region:    RegB,
			ID:        id,
			Intensity: 0.6 + 0.8*rng.Float64(),
			Tasks:     make([]Task, cfg.ServersPerRack),
			Profiles:  make([]workload.Profile, cfg.ServersPerRack),
			Seed:      rng.Uint64(),
		}
		job := 0
		placeRegB(&spec, rng.Fork(uint64(1000+id)), &job)
		racks = append(racks, spec)
	}
	return racks
}
