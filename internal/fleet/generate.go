package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// warmup is how long traffic runs before the sampler window opens, letting
// persistent connections establish and congestion windows adapt.
const warmup = 150 * sim.Millisecond

// BurstRec is the compact per-burst record kept in the dataset (the raw
// SyncRun series are ~2 MB per run and are regenerated on demand instead).
type BurstRec struct {
	Server        int16
	Len           int16 // samples (milliseconds at 1 ms sampling)
	Volume        float32
	AvgConns      float32
	MaxContention int16
	CAFL          int16 // contention at first loss (lossy bursts only)
	Lossy         bool
}

// SwitchDelta is the rack switch's counter movement across the sampling
// window, the simulated analog of the per-minute production counters.
type SwitchDelta struct {
	EnqueuedBytes int64
	DiscardBytes  int64
	DiscardSegs   int64
}

// RunSummary is one rack-hour SyncMillisampler run reduced to what the
// analyses need.
type RunSummary struct {
	Region     string
	RackID     int
	Hour       int
	Samples    int
	IntervalNs int64

	// Collected reports whether the rack-hour produced an aligned run at
	// all; when false, FailReason says why and the statistics are zero. A
	// failed collection is recorded, not dropped: the day's schedule keeps
	// going and the gap stays visible in the dataset.
	Collected  bool
	FailReason string
	// HostsOK / HostsDegraded summarize per-host collection health
	// (degraded = truncated, missing, or unsynced hosts).
	HostsOK       int
	HostsDegraded int

	AvgContention float64
	P90Contention float64
	MinActive     int
	HasActive     bool
	ShareDrop     float64
	ShareDropOK   bool

	ServerRuns []analysis.ServerRun
	Bursts     []BurstRec

	Switch SwitchDelta
	// IngressPerMin extrapolates the window's rack ingress volume to a
	// one-minute granularity, mirroring production switch counters.
	IngressPerMin int64
}

// WindowSeconds returns the aligned run duration in seconds.
func (r *RunSummary) WindowSeconds() float64 {
	return float64(r.Samples) * float64(r.IntervalNs) / 1e9
}

// RackMeta is per-rack metadata plus the measured classification.
type RackMeta struct {
	Region        string
	ID            int
	MLDominated   bool
	Intensity     float64
	DistinctTasks int
	DominantShare float64

	// BusyAvgContention is the rack's average contention in the busy-hour
	// run, the statistic racks are classified by.
	BusyAvgContention float64
	Class             Class
}

// Dataset is a full two-region collection day.
type Dataset struct {
	Cfg   Config
	Racks []RackMeta
	Runs  []RunSummary

	idxOnce sync.Once
	rackIdx map[string]int
}

// Rack returns the metadata of one rack. Safe for concurrent readers:
// Generate builds the index before returning, and a dataset loaded from gob
// (where the unexported index is absent) builds it exactly once under the
// sync.Once.
func (d *Dataset) Rack(region string, id int) *RackMeta {
	d.ensureIndex()
	i, ok := d.rackIdx[rackKey(region, id)]
	if !ok {
		return nil
	}
	return &d.Racks[i]
}

func rackKey(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }

func (d *Dataset) ensureIndex() {
	d.idxOnce.Do(func() {
		idx := make(map[string]int, len(d.Racks))
		for i := range d.Racks {
			idx[rackKey(d.Racks[i].Region, d.Racks[i].ID)] = i
		}
		d.rackIdx = idx
	})
}

// ClassOf returns the measured class of a run's rack.
func (d *Dataset) ClassOf(r *RunSummary) Class {
	if m := d.Rack(r.Region, r.RackID); m != nil {
		return m.Class
	}
	return ClassB
}

// RunsIn filters runs by class.
func (d *Dataset) RunsIn(c Class) []*RunSummary {
	var out []*RunSummary
	for i := range d.Runs {
		if d.ClassOf(&d.Runs[i]) == c {
			out = append(out, &d.Runs[i])
		}
	}
	return out
}

// RunsInRegion filters runs by region.
func (d *Dataset) RunsInRegion(region string) []*RunSummary {
	var out []*RunSummary
	for i := range d.Runs {
		if d.Runs[i].Region == region {
			out = append(out, &d.Runs[i])
		}
	}
	return out
}

// SimulateRun executes one rack-hour run and returns the aligned SyncRun
// plus the switch counter delta. It is deterministic in (cfg, spec, hour),
// which is how raw example runs are regenerated without storing them.
func SimulateRun(cfg Config, spec RackSpec, hour int) (*core.SyncRun, SwitchDelta, error) {
	cfg = cfg.withDefaults()
	rack := testbed.NewRack(testbed.RackConfig{
		Servers: cfg.ServersPerRack,
		Remotes: 4 * cfg.ServersPerRack,
		Seed:    spec.Seed ^ (uint64(hour+1) * 0x9e3779b97f4a7c15),
	})
	scale := DiurnalFactor(hour) * spec.Intensity
	profiles := make([]workload.Profile, len(spec.Profiles))
	for i, p := range spec.Profiles {
		profiles[i] = p.Scale(scale)
	}
	if _, err := workload.InstallRack(rack, profiles, rack.RNG.Fork(0x10AD)); err != nil {
		return nil, SwitchDelta{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}

	ctrl := core.NewController(rack, core.Config{
		Interval: cfg.Interval, Buckets: cfg.Buckets, CountFlows: true,
	})
	if err := ctrl.Schedule(warmup); err != nil {
		return nil, SwitchDelta{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}

	var before, after SwitchDelta
	rack.Eng.At(warmup, func() {
		t := rack.Switch.Totals()
		before = SwitchDelta{EnqueuedBytes: t.EnqueuedBytes, DiscardBytes: t.DiscardBytes, DiscardSegs: t.DiscardSegments}
	})
	rack.Eng.RunUntil(ctrl.HarvestAt(warmup) + sim.Millisecond)
	t := rack.Switch.Totals()
	after = SwitchDelta{EnqueuedBytes: t.EnqueuedBytes, DiscardBytes: t.DiscardBytes, DiscardSegs: t.DiscardSegments}
	if !ctrl.Done() {
		// Harvest RPCs are still retrying (lossy control plane or crashed
		// hosts); let the straggler window play out. The switch delta was
		// already captured at the nominal harvest point.
		rack.Eng.RunUntil(ctrl.HarvestDeadline(warmup) + sim.Millisecond)
	}

	sr, err := ctrl.Result()
	if err != nil {
		return nil, SwitchDelta{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}
	delta := SwitchDelta{
		EnqueuedBytes: after.EnqueuedBytes - before.EnqueuedBytes,
		DiscardBytes:  after.DiscardBytes - before.DiscardBytes,
		DiscardSegs:   after.DiscardSegs - before.DiscardSegs,
	}
	return sr, delta, nil
}

// summarize reduces a run to its RunSummary.
func summarize(spec RackSpec, hour int, sr *core.SyncRun, delta SwitchDelta) RunSummary {
	ra := analysis.Analyze(sr, analysis.DefaultOptions())
	rs := RunSummary{
		Region:     spec.Region,
		RackID:     spec.ID,
		Hour:       hour,
		Samples:    sr.Samples,
		IntervalNs: int64(sr.Interval),

		Collected:     true,
		HostsOK:       sr.Health.OK,
		HostsDegraded: sr.Health.Degraded(),

		AvgContention: ra.AvgContention(),
		P90Contention: ra.P90Contention(),
		ServerRuns:    ra.Servers,
		Switch:        delta,
	}
	rs.MinActive, rs.HasActive = ra.MinActiveContention()
	rs.ShareDrop, rs.ShareDropOK = ra.BufferShareDrop()
	for _, b := range ra.Bursts {
		rs.Bursts = append(rs.Bursts, BurstRec{
			Server:        int16(b.Server),
			Len:           int16(b.Len()),
			Volume:        float32(b.Volume),
			AvgConns:      float32(b.AvgConns),
			MaxContention: int16(b.MaxContention),
			CAFL:          int16(b.ContentionAtFirstLoss),
			Lossy:         b.Lossy,
		})
	}
	if w := rs.WindowSeconds(); w > 0 {
		rs.IngressPerMin = int64(float64(delta.EnqueuedBytes) * 60 / w)
	}
	return rs
}

// Generate simulates the full schedule: every rack of both regions, one
// SyncMillisampler run per configured hour, in parallel across workers.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	racks := BuildRacks(cfg)

	type job struct {
		rack int
		hour int
	}
	var jobs []job
	for r := range racks {
		for _, h := range cfg.Hours {
			jobs = append(jobs, job{rack: r, hour: h})
		}
	}

	// cfg.Workers long-lived workers pull job indices from a channel: the
	// goroutine count stays bounded by the worker count instead of the job
	// count, and each rack-hour's cost is paid where it runs. Each worker
	// writes only its own runs[ji] slot, so no further synchronization is
	// needed; the result is independent of worker count or scheduling.
	runs := make([]RunSummary, len(jobs))
	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	jobc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range jobc {
				j := jobs[ji]
				sr, delta, err := SimulateRun(cfg, racks[j.rack], j.hour)
				if err != nil {
					// A failed rack-hour is recorded, not fatal: the rest of
					// the day's schedule proceeds and the dataset keeps the gap.
					runs[ji] = RunSummary{
						Region:     racks[j.rack].Region,
						RackID:     racks[j.rack].ID,
						Hour:       j.hour,
						FailReason: err.Error(),
					}
					continue
				}
				runs[ji] = summarize(racks[j.rack], j.hour, sr, delta)
			}
		}()
	}
	for ji := range jobs {
		jobc <- ji
	}
	close(jobc)
	wg.Wait()
	collected := 0
	for i := range runs {
		if runs[i].Collected {
			collected++
		}
	}
	if len(runs) > 0 && collected == 0 {
		return nil, fmt.Errorf("fleet: all %d rack-hour runs failed (first: %s)",
			len(runs), runs[0].FailReason)
	}

	ds := &Dataset{Cfg: cfg, Runs: runs}
	for _, spec := range racks {
		ds.Racks = append(ds.Racks, RackMeta{
			Region:        spec.Region,
			ID:            spec.ID,
			MLDominated:   spec.MLDominated,
			Intensity:     spec.Intensity,
			DistinctTasks: spec.DistinctTasks(),
			DominantShare: spec.DominantTaskShare(),
		})
	}
	ds.classify()
	return ds, nil
}

// classify labels racks from measured busy-hour contention: the top 20% of
// RegA racks become RegA-High, exactly as the paper partitions Figure 9.
func (d *Dataset) classify() {
	d.ensureIndex()
	// Busy-hour (or nearest sampled hour) average contention per rack.
	busy := make(map[string]float64)
	bestDist := make(map[string]int)
	for i := range d.Runs {
		r := &d.Runs[i]
		key := rackKey(r.Region, r.RackID)
		dist := r.Hour - BusyHour
		if dist < 0 {
			dist = -dist
		}
		if prev, ok := bestDist[key]; !ok || dist < prev {
			bestDist[key] = dist
			busy[key] = r.AvgContention
		}
	}
	var regA []int
	for i := range d.Racks {
		m := &d.Racks[i]
		m.BusyAvgContention = busy[rackKey(m.Region, m.ID)]
		if m.Region == RegA {
			regA = append(regA, i)
			m.Class = ClassATypical
		} else {
			m.Class = ClassB
		}
	}
	sort.Slice(regA, func(a, b int) bool {
		return d.Racks[regA[a]].BusyAvgContention > d.Racks[regA[b]].BusyAvgContention
	})
	nHigh := len(regA) / 5
	for k := 0; k < nHigh; k++ {
		d.Racks[regA[k]].Class = ClassAHigh
	}
}

// FindRack locates the spec of a rack rebuilt from the same config (useful
// with SimulateRun to regenerate a raw run).
func FindRack(cfg Config, region string, id int) (RackSpec, bool) {
	for _, spec := range BuildRacks(cfg) {
		if spec.Region == region && spec.ID == id {
			return spec, true
		}
	}
	return RackSpec{}, false
}
