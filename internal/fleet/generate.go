package fleet

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
)

// warmup is how long traffic runs before the sampler window opens, letting
// persistent connections establish and congestion windows adapt.
const warmup = 150 * sim.Millisecond

// BurstRec is the compact per-burst record kept in the dataset (the raw
// SyncRun series are ~2 MB per run and are regenerated on demand instead).
type BurstRec struct {
	Server        int16
	Len           int16 // samples (milliseconds at 1 ms sampling)
	Volume        float32
	AvgConns      float32
	MaxContention int16
	CAFL          int16 // contention at first loss (lossy bursts only)
	Lossy         bool
}

// SwitchDelta is the rack switch's counter movement across the sampling
// window, the simulated analog of the per-minute production counters.
type SwitchDelta struct {
	EnqueuedBytes int64
	DiscardBytes  int64
	DiscardSegs   int64
}

// RunSummary is one rack-hour SyncMillisampler run reduced to what the
// analyses need.
type RunSummary struct {
	Region     string
	RackID     int
	Hour       int
	Samples    int
	IntervalNs int64

	// Collected reports whether the rack-hour produced an aligned run at
	// all; when false, FailReason says why and the statistics are zero. A
	// failed collection is recorded, not dropped: the day's schedule keeps
	// going and the gap stays visible in the dataset.
	Collected  bool
	FailReason string
	// HostsOK / HostsDegraded summarize per-host collection health
	// (degraded = truncated, missing, or unsynced hosts).
	HostsOK       int
	HostsDegraded int

	AvgContention float64
	P90Contention float64
	MinActive     int
	HasActive     bool
	ShareDrop     float64
	ShareDropOK   bool

	ServerRuns []analysis.ServerRun
	Bursts     []BurstRec

	Switch SwitchDelta
	// IngressPerMin extrapolates the window's rack ingress volume to a
	// one-minute granularity, mirroring production switch counters.
	IngressPerMin int64

	// HostStack is the host-stack latency reduction; nil unless the run was
	// generated with Config.HostStack. The omitempty keeps knob-off
	// summaries byte-identical to pre-knob datasets, preserving every
	// golden digest.
	HostStack *HostStackRec `json:",omitempty"`
}

// WindowSeconds returns the aligned run duration in seconds.
func (r *RunSummary) WindowSeconds() float64 {
	return float64(r.Samples) * float64(r.IntervalNs) / 1e9
}

// RackMeta is per-rack metadata plus the measured classification.
type RackMeta struct {
	Region        string
	ID            int
	MLDominated   bool
	Intensity     float64
	DistinctTasks int
	DominantShare float64

	// BusyAvgContention is the rack's average contention in the busy-hour
	// run, the statistic racks are classified by.
	BusyAvgContention float64
	Class             Class
}

// Dataset is a full two-region collection day.
type Dataset struct {
	Cfg   Config
	Racks []RackMeta
	Runs  []RunSummary

	idxOnce sync.Once
	rackIdx map[string]int
}

// Rack returns the metadata of one rack. Safe for concurrent readers:
// Generate builds the index before returning, and a dataset loaded from gob
// (where the unexported index is absent) builds it exactly once under the
// sync.Once.
func (d *Dataset) Rack(region string, id int) *RackMeta {
	d.ensureIndex()
	i, ok := d.rackIdx[rackKey(region, id)]
	if !ok {
		return nil
	}
	return &d.Racks[i]
}

func rackKey(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }

func (d *Dataset) ensureIndex() {
	d.idxOnce.Do(func() {
		idx := make(map[string]int, len(d.Racks))
		for i := range d.Racks {
			idx[rackKey(d.Racks[i].Region, d.Racks[i].ID)] = i
		}
		d.rackIdx = idx
	})
}

// ClassOf returns the measured class of a run's rack. The second result is
// false when the rack is absent from the dataset's metadata — a partially
// written or corrupt dataset — so callers must skip (and ideally count) the
// run instead of silently misclassifying it.
func (d *Dataset) ClassOf(r *RunSummary) (Class, bool) {
	if m := d.Rack(r.Region, r.RackID); m != nil {
		return m.Class, true
	}
	return ClassB, false
}

// RunsIn filters runs by class. Runs whose rack metadata is missing are
// excluded; use EachRun to observe the skip count.
func (d *Dataset) RunsIn(c Class) []*RunSummary {
	var out []*RunSummary
	for i := range d.Runs {
		if rc, ok := d.ClassOf(&d.Runs[i]); ok && rc == c {
			out = append(out, &d.Runs[i])
		}
	}
	return out
}

// RunsInRegion filters runs by region.
func (d *Dataset) RunsInRegion(region string) []*RunSummary {
	var out []*RunSummary
	for i := range d.Runs {
		if d.Runs[i].Region == region {
			out = append(out, &d.Runs[i])
		}
	}
	return out
}

// Config returns the generation configuration. Together with RackMetas,
// EachRun, and RackRuns it satisfies the streaming source interface the
// experiments and inspection tools consume, so an in-memory dataset and a
// sharded on-disk dataset are interchangeable.
func (d *Dataset) Config() Config { return d.Cfg }

// RackMetas returns the per-rack metadata.
func (d *Dataset) RackMetas() []RackMeta { return d.Racks }

// EachRun invokes fn for every run together with its rack's measured class,
// in dataset order. Runs whose rack metadata is missing are not delivered;
// their count is returned. The *RunSummary is only valid for the duration of
// the callback — copy it to retain it.
func (d *Dataset) EachRun(fn func(r *RunSummary, c Class) error) (skipped int, err error) {
	for i := range d.Runs {
		c, ok := d.ClassOf(&d.Runs[i])
		if !ok {
			skipped++
			continue
		}
		if err := fn(&d.Runs[i], c); err != nil {
			return skipped, err
		}
	}
	return skipped, nil
}

// RackRuns returns one rack's runs in hour order.
func (d *Dataset) RackRuns(region string, id int) ([]RunSummary, error) {
	var out []RunSummary
	for i := range d.Runs {
		if d.Runs[i].Region == region && d.Runs[i].RackID == id {
			out = append(out, d.Runs[i])
		}
	}
	return out, nil
}

// SimulateRun executes one rack-hour run and returns the aligned SyncRun
// plus the switch counter delta. It is deterministic in (cfg, spec, hour),
// which is how raw example runs are regenerated without storing them. The
// full-counter form (ECN marks, peaks) is SimulateRunFull.
func SimulateRun(cfg Config, spec RackSpec, hour int) (*core.SyncRun, SwitchDelta, error) {
	sr, sc, err := SimulateRunFull(cfg, spec, hour)
	if err != nil {
		return nil, SwitchDelta{}, err
	}
	return sr, sc.asDelta(), nil
}

// sat16 converts a non-negative count to int16, saturating at MaxInt16
// instead of wrapping negative. Config.Validate bounds the configurations
// that could overflow, but the clamp keeps a hand-built config from silently
// corrupting the dataset.
func sat16(v int) int16 {
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return int16(v)
}

// summarize reduces a run to its RunSummary.
func summarize(spec RackSpec, hour int, sr *core.SyncRun, delta SwitchDelta) RunSummary {
	ra := analysis.Analyze(sr, analysis.DefaultOptions())
	rs := RunSummary{
		Region:     spec.Region,
		RackID:     spec.ID,
		Hour:       hour,
		Samples:    sr.Samples,
		IntervalNs: int64(sr.Interval),

		Collected:     true,
		HostsOK:       sr.Health.OK,
		HostsDegraded: sr.Health.Degraded(),

		AvgContention: ra.AvgContention(),
		P90Contention: ra.P90Contention(),
		ServerRuns:    ra.Servers,
		Switch:        delta,
	}
	rs.MinActive, rs.HasActive = ra.MinActiveContention()
	rs.ShareDrop, rs.ShareDropOK = ra.BufferShareDrop()
	for _, b := range ra.Bursts {
		rs.Bursts = append(rs.Bursts, BurstRec{
			Server:        sat16(b.Server),
			Len:           sat16(b.Len()),
			Volume:        float32(b.Volume),
			AvgConns:      float32(b.AvgConns),
			MaxContention: sat16(b.MaxContention),
			CAFL:          sat16(b.ContentionAtFirstLoss),
			Lossy:         b.Lossy,
		})
	}
	if w := rs.WindowSeconds(); w > 0 {
		rs.IngressPerMin = int64(float64(delta.EnqueuedBytes) * 60 / w)
	}
	if sr.HostStack != nil {
		rs.HostStack = hostStackRec(sr.HostStack)
	}
	return rs
}

// RackSink consumes one rack's results as they are produced. Run is called
// once per scheduled hour, in schedule order, from the worker goroutine that
// owns the rack; Commit is called after the last hour with the rack's
// finished metadata (BusyAvgContention set, Class not — classification needs
// every rack and happens at dataset assembly or manifest finalize). A sink
// is used by exactly one goroutine; distinct racks' sinks run concurrently.
//
// A sink may additionally implement Aborter; it is called instead of Commit
// when the rack is abandoned mid-flight (cancellation or error), so a sink
// holding an open temp file can discard it.
type RackSink interface {
	Run(RunSummary) error
	Commit(RackMeta) error
}

// StreamOpts configures a streaming generation.
type StreamOpts struct {
	// Skip, if non-nil, reports racks whose results already exist; they are
	// not simulated and their sink is never created. This is the resume
	// hook: the sharded pipeline skips digest-verified completed shards.
	Skip func(region string, id int) bool
	// Begin opens the sink for one rack. The meta carries the placement
	// facts (region, id, ML domination, intensity, task stats); measured
	// fields are zero until Commit.
	Begin func(meta RackMeta) (RackSink, error)
}

// specMeta derives the placement metadata of a rack spec.
func specMeta(spec *RackSpec) RackMeta {
	return RackMeta{
		Region:        spec.Region,
		ID:            spec.ID,
		MLDominated:   spec.MLDominated,
		Intensity:     spec.Intensity,
		DistinctTasks: spec.DistinctTasks(),
		DominantShare: spec.DominantTaskShare(),
	}
}

// genVisitor adapts a RackSink to the raw visitor layer: it summarizes each
// rack-hour into the compact dataset record and finishes the rack's metadata
// at Done.
type genVisitor struct {
	spec *RackSpec
	sink RackSink
	meta RackMeta
	runs []RunSummary
}

func (v *genVisitor) VisitRun(hour int, sr *core.SyncRun, sc SwitchCounters, simErr error) error {
	var run RunSummary
	if simErr != nil {
		// A failed rack-hour is recorded, not fatal: the rest of the day's
		// schedule proceeds and the dataset keeps the gap.
		run = RunSummary{
			Region:     v.spec.Region,
			RackID:     v.spec.ID,
			Hour:       hour,
			FailReason: simErr.Error(),
		}
	} else {
		run = summarize(*v.spec, hour, sr, sc.asDelta())
	}
	v.runs = append(v.runs, run)
	return v.sink.Run(run)
}

func (v *genVisitor) Done() error {
	v.meta.BusyAvgContention = busyContention(v.runs)
	return v.sink.Commit(v.meta)
}

// Abort forwards abandonment to the sink so it can discard in-progress
// state (e.g. the shard temp file a dataset sink holds open).
func (v *genVisitor) Abort() {
	if a, ok := v.sink.(Aborter); ok {
		a.Abort()
	}
}

// GenerateStream simulates the full schedule rack by rack, streaming each
// completed rack-hour into the rack's sink as it finishes. Racks are
// distributed over cfg.Workers long-lived workers, so peak memory per worker
// is one rack-hour plus the summaries of the rack in progress — never the
// fleet. The set of produced runs is independent of worker count and
// scheduling; only completion order varies. The first sink or setup error
// aborts the generation (simulation failures of individual rack-hours are
// recorded in the run, not fatal). Cancelling ctx aborts between rack-hours;
// abandoned sinks get Abort (if implemented), never Commit.
func GenerateStream(ctx context.Context, cfg Config, opts StreamOpts) error {
	cfg = cfg.withDefaults()
	if opts.Begin == nil {
		return fmt.Errorf("fleet: GenerateStream needs a Begin hook")
	}
	return VisitStream(ctx, cfg, VisitOpts{
		Skip: opts.Skip,
		Start: func(spec *RackSpec) (RackVisitor, error) {
			meta := specMeta(spec)
			sink, err := opts.Begin(meta)
			if err != nil {
				return nil, err
			}
			return &genVisitor{
				spec: spec,
				sink: sink,
				meta: meta,
				runs: make([]RunSummary, 0, len(cfg.Hours)),
			}, nil
		},
	})
}

// memSink collects one rack's results into a pre-assigned slot, so assembly
// order is the BuildRacks order regardless of completion order.
type memSink struct {
	meta *RackMeta
	runs *[]RunSummary
}

func (s *memSink) Run(r RunSummary) error {
	*s.runs = append(*s.runs, r)
	return nil
}

func (s *memSink) Commit(meta RackMeta) error {
	*s.meta = meta
	return nil
}

// Generate simulates the full schedule: every rack of both regions, one
// SyncMillisampler run per configured hour, in parallel across workers. It
// is the in-memory form of GenerateStream; cmd/fleetgen's sharded output
// streams the same runs to disk instead.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	racks := BuildRacks(cfg)

	metas := make([]RackMeta, len(racks))
	rackRuns := make([][]RunSummary, len(racks))
	slot := make(map[string]int, len(racks))
	for i := range racks {
		slot[rackKey(racks[i].Region, racks[i].ID)] = i
	}
	err := GenerateStream(context.Background(), cfg, StreamOpts{
		Begin: func(meta RackMeta) (RackSink, error) {
			i := slot[rackKey(meta.Region, meta.ID)]
			return &memSink{meta: &metas[i], runs: &rackRuns[i]}, nil
		},
	})
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Cfg: cfg, Racks: metas}
	collected := 0
	for i := range rackRuns {
		for j := range rackRuns[i] {
			if rackRuns[i][j].Collected {
				collected++
			}
		}
		ds.Runs = append(ds.Runs, rackRuns[i]...)
	}
	if len(ds.Runs) > 0 && collected == 0 {
		return nil, fmt.Errorf("fleet: all %d rack-hour runs failed (first: %s)",
			len(ds.Runs), ds.Runs[0].FailReason)
	}
	ClassifyMetas(ds.Racks)
	return ds, nil
}

// busyContention picks a rack's busy-hour statistic: the average contention
// of the run closest to BusyHour (first wins on distance ties, matching the
// schedule order the dataset has always used).
func busyContention(runs []RunSummary) float64 {
	best, bestDist := 0.0, 1<<30
	for i := range runs {
		dist := runs[i].Hour - BusyHour
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestDist = dist
			best = runs[i].AvgContention
		}
	}
	return best
}

// ClassifyMetas labels racks from measured busy-hour contention: the top 20%
// of RegA racks become RegA-High, exactly as the paper partitions Figure 9.
// BusyAvgContention must already be set on every meta. It is exported so the
// sharded dataset pipeline can classify from shard metadata at finalize time
// with the identical rule.
func ClassifyMetas(metas []RackMeta) {
	var regA []int
	for i := range metas {
		if metas[i].Region == RegA {
			regA = append(regA, i)
			metas[i].Class = ClassATypical
		} else {
			metas[i].Class = ClassB
		}
	}
	sort.Slice(regA, func(a, b int) bool {
		return metas[regA[a]].BusyAvgContention > metas[regA[b]].BusyAvgContention
	})
	nHigh := len(regA) / 5
	for k := 0; k < nHigh; k++ {
		metas[regA[k]].Class = ClassAHigh
	}
}

// FindRack locates the spec of a rack rebuilt from the same config (useful
// with SimulateRun to regenerate a raw run).
func FindRack(cfg Config, region string, id int) (RackSpec, bool) {
	for _, spec := range BuildRacks(cfg) {
		if spec.Region == region && spec.ID == id {
			return spec, true
		}
	}
	return RackSpec{}, false
}
