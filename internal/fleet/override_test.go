package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/switchsim"
)

func TestSwitchOverrideApply(t *testing.T) {
	base := switchsim.DefaultConfig(48)
	if got := (SwitchOverride{}).Apply(base); got != base {
		t.Errorf("zero override changed the config: %+v", got)
	}
	o := SwitchOverride{Policy: switchsim.PolicyStatic, Alpha: 2, ECNThreshold: 60 << 10}
	got := o.Apply(base)
	if got.Policy != switchsim.PolicyStatic || got.Alpha != 2 || got.ECNThreshold != 60<<10 {
		t.Errorf("override not applied: %+v", got)
	}
	if got.TotalBuffer != base.TotalBuffer || got.DownlinkRateBps != base.DownlinkRateBps {
		t.Errorf("unset fields drifted: %+v", got)
	}
}

func TestConfigValidateChecksOverride(t *testing.T) {
	cfg := SmallConfig()
	cfg.Switch = SwitchOverride{Policy: switchsim.Policy(9)}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown sharing policy") {
		t.Errorf("unknown policy not rejected: %v", err)
	}
	cfg.Switch = SwitchOverride{Alpha: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative alpha not rejected")
	}
	cfg.Switch = SwitchOverride{ECNThreshold: 1 << 30}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-buffer ECN threshold not rejected")
	}
	cfg.Switch = SwitchOverride{Policy: switchsim.PolicyComplete, ECNThreshold: 60 << 10}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid override rejected: %v", err)
	}
}

func TestSwitchOverrideJSONRoundTrip(t *testing.T) {
	o := SwitchOverride{Policy: switchsim.PolicyStatic, Alpha: 0.5, TotalBuffer: 8 << 20}
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back SwitchOverride
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Errorf("round trip: %+v != %+v", back, o)
	}
	// The zero override (the baseline point) must encode to an empty object
	// so sweep manifests stay minimal and stable.
	b, _ = json.Marshal(SwitchOverride{})
	if string(b) != "{}" {
		t.Errorf("zero override encodes to %s", b)
	}
}

func TestSwitchOverrideString(t *testing.T) {
	if s := (SwitchOverride{}).String(); s != "baseline" {
		t.Errorf("zero override String() = %q", s)
	}
	o := SwitchOverride{Alpha: 2, ECNThreshold: 60 << 10}
	if s := o.String(); !strings.Contains(s, "a=2") || !strings.Contains(s, "ecn=60K") {
		t.Errorf("String() = %q", s)
	}
}
