package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
)

func TestSwitchOverrideApply(t *testing.T) {
	base := switchsim.DefaultConfig(48)
	if got := (SwitchOverride{}).Apply(base); got != base {
		t.Errorf("zero override changed the config: %+v", got)
	}
	o := SwitchOverride{Policy: switchsim.PolicyStatic, Alpha: 2, ECNThreshold: 60 << 10}
	got := o.Apply(base)
	if got.Policy != switchsim.PolicyStatic || got.Alpha != 2 || got.ECNThreshold != 60<<10 {
		t.Errorf("override not applied: %+v", got)
	}
	if got.TotalBuffer != base.TotalBuffer || got.DownlinkRateBps != base.DownlinkRateBps {
		t.Errorf("unset fields drifted: %+v", got)
	}
}

func TestConfigValidateChecksOverride(t *testing.T) {
	cfg := SmallConfig()
	cfg.Switch = SwitchOverride{Policy: switchsim.Policy(9)}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown sharing policy") {
		t.Errorf("unknown policy not rejected: %v", err)
	}
	cfg.Switch = SwitchOverride{Alpha: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative alpha not rejected")
	}
	cfg.Switch = SwitchOverride{ECNThreshold: 1 << 30}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-buffer ECN threshold not rejected")
	}
	cfg.Switch = SwitchOverride{Policy: switchsim.PolicyComplete, ECNThreshold: 60 << 10}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid override rejected: %v", err)
	}
}

func TestSwitchOverrideJSONRoundTrip(t *testing.T) {
	o := SwitchOverride{Policy: switchsim.PolicyStatic, Alpha: 0.5, TotalBuffer: 8 << 20}
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back SwitchOverride
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Errorf("round trip: %+v != %+v", back, o)
	}
	// The zero override (the baseline point) must encode to an empty object
	// so sweep manifests stay minimal and stable.
	b, _ = json.Marshal(SwitchOverride{})
	if string(b) != "{}" {
		t.Errorf("zero override encodes to %s", b)
	}
}

func TestSwitchOverrideString(t *testing.T) {
	if s := (SwitchOverride{}).String(); s != "baseline" {
		t.Errorf("zero override String() = %q", s)
	}
	o := SwitchOverride{Alpha: 2, ECNThreshold: 60 << 10}
	if s := o.String(); !strings.Contains(s, "a=2") || !strings.Contains(s, "ecn=60K") {
		t.Errorf("String() = %q", s)
	}
	o = SwitchOverride{Policy: switchsim.PolicyABM, Alpha: 4}
	if s := o.String(); !strings.Contains(s, "abm") || !strings.Contains(s, "a=4") {
		t.Errorf("ABM String() = %q", s)
	}
	o = SwitchOverride{Policy: switchsim.PolicyBShare, BShareDelay: 100 * sim.Microsecond}
	if s := o.String(); !strings.Contains(s, "bshare") || !strings.Contains(s, "100µs") {
		t.Errorf("BShare String() = %q", s)
	}
	o = SwitchOverride{ECNThreshold: switchsim.ECNOff}
	if s := o.String(); !strings.Contains(s, "ecn=off") {
		t.Errorf("ECNOff String() = %q", s)
	}
}

func TestSwitchOverrideApplyBShareAndECNOff(t *testing.T) {
	base := switchsim.DefaultConfig(48)
	o := SwitchOverride{Policy: switchsim.PolicyBShare, BShareDelay: 100 * sim.Microsecond}
	got := o.Apply(base)
	if got.Policy != switchsim.PolicyBShare || got.BShareDelayTarget != 100*sim.Microsecond {
		t.Errorf("bshare override not applied: %+v", got)
	}
	// The ECNOff sentinel must pass through Apply (it is non-zero) and
	// Validate so "marking disabled" is an expressible counterfactual.
	o = SwitchOverride{ECNThreshold: switchsim.ECNOff}
	if got := o.Apply(base); got.ECNThreshold != switchsim.ECNOff {
		t.Errorf("ECNOff override lost: ECNThreshold = %d", got.ECNThreshold)
	}
	if err := o.Validate(48); err != nil {
		t.Errorf("ECNOff override rejected: %v", err)
	}
}

func TestHybridCompatible(t *testing.T) {
	cases := []struct {
		o    SwitchOverride
		want bool
	}{
		{SwitchOverride{}, true},
		{SwitchOverride{Policy: switchsim.PolicyDT, Alpha: 4}, true},
		{SwitchOverride{Policy: switchsim.PolicyStatic}, true},
		{SwitchOverride{Policy: switchsim.PolicyComplete}, true},
		{SwitchOverride{Policy: switchsim.PolicyBShare}, false},
		{SwitchOverride{Policy: switchsim.PolicyABM}, false},
		{SwitchOverride{ECNThreshold: switchsim.ECNOff}, false},
		{SwitchOverride{Policy: switchsim.PolicyStatic, ECNThreshold: switchsim.ECNOff}, false},
	}
	for _, tc := range cases {
		if got := tc.o.HybridCompatible(); got != tc.want {
			t.Errorf("%s: HybridCompatible() = %v, want %v", tc.o, got, tc.want)
		}
	}
}
