package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Digest returns a sha256 hex digest over the dataset's JSON-encoded Racks
// and Runs. It is the determinism fingerprint of a collection day: two
// datasets generated from the same Config (Workers aside — the schedule is
// worker-count independent) must digest identically, which the golden test
// and `make bench` use to catch accidental behavior changes in the hot path.
// Cfg is excluded because Workers defaults to GOMAXPROCS and is therefore
// machine-dependent.
//
// JSON rather than gob: gob's wire bytes depend on the process-global order
// in which types were first encoded, so an unrelated earlier trace.Save in
// the same process would change the digest of identical data. JSON encoding
// is a pure function of the value.
func (d *Dataset) Digest() (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(d.Racks); err != nil {
		return "", err
	}
	if err := enc.Encode(d.Runs); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
