package fleet

import (
	"repro/internal/hoststack"
)

// HostStackRec is the dataset-resident reduction of one rack-hour's
// host-stack latency collection (Config.HostStack). It is a pointer field on
// RunSummary tagged omitempty: with the instrument off the field is nil, the
// summary's JSON is byte-identical to pre-knob datasets, and every golden
// digest is preserved.
type HostStackRec struct {
	// Hosts is how many servers contributed host-stack data.
	Hosts int
	// InSegs / EgSegs are total observed segments per direction.
	InSegs uint64
	EgSegs uint64
	// InBins / EgBins are the rack-wide latency histograms over the aligned
	// window (log-spaced, hoststack.NumBins log2-µs bins).
	InBins [hoststack.NumBins]uint64
	EgBins [hoststack.NumBins]uint64
	// Window quantiles of the ingress (front door) and egress delay, µs.
	InP50Us  float64
	InP99Us  float64
	InP999Us float64
	EgP99Us  float64
	// MaxMsInP99Us is the worst single-millisecond ingress p99 across all
	// servers and aligned samples — the instrument's burst-scale tail.
	MaxMsInP99Us float64
}

// hostStackRec reduces an aligned series to its dataset record.
func hostStackRec(s *hoststack.Series) *HostStackRec {
	rec := &HostStackRec{Hosts: s.Collected}
	in := s.TotalsIn()
	eg := s.TotalsEg()
	rec.InBins = in
	rec.EgBins = eg
	for _, v := range in {
		rec.InSegs += v
	}
	for _, v := range eg {
		rec.EgSegs += v
	}
	rec.InP50Us, _ = hoststack.QuantileUs(in[:], 0.50)
	rec.InP99Us, _ = hoststack.QuantileUs(in[:], 0.99)
	rec.InP999Us, _ = hoststack.QuantileUs(in[:], 0.999)
	rec.EgP99Us, _ = hoststack.QuantileUs(eg[:], 0.99)
	for i := range s.Servers {
		ss := &s.Servers[i]
		for j := 0; j < ss.ValidSamples && j < len(ss.InP99Us); j++ {
			if ss.InP99Us[j] > rec.MaxMsInP99Us {
				rec.MaxMsInP99Us = ss.InP99Us[j]
			}
		}
	}
	return rec
}

// ShareAboveUs returns the fraction of ingress segments whose host-stack
// delay reached at least us microseconds (a power of two; other values round
// down to the containing bin's lower bound).
func (r *HostStackRec) ShareAboveUs(us float64) float64 {
	if r.InSegs == 0 {
		return 0
	}
	var above uint64
	for b := 0; b < hoststack.NumBins; b++ {
		if hoststack.BinUpperUs(b) > us {
			above += r.InBins[b]
		}
	}
	return float64(above) / float64(r.InSegs)
}
