package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// TestHybridStatsSplit reports the detector's packet/fluid split over the
// small preset's busy hour — a diagnostic for tuning, not an assertion.
func TestHybridStatsSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := SmallConfig().WithDefaults()
	racks := BuildRacks(cfg)
	var pkt, fl, eps int
	hour := BusyHour
	for i := range racks[:4] {
		spec := racks[i]
		rcfg := testbed.RackConfig{
			Servers: cfg.ServersPerRack,
			Remotes: 4 * cfg.ServersPerRack,
			Seed:    spec.Seed ^ (uint64(hour+1) * 0x9e3779b97f4a7c15),
		}
		rack := testbed.NewRack(rcfg)
		scale := DiurnalFactor(hour) * spec.Intensity
		profiles := make([]workload.Profile, len(spec.Profiles))
		for j, p := range spec.Profiles {
			profiles[j] = p.Scale(scale)
		}
		res, err := fluid.SimulateRack(rack, profiles, rack.RNG.Fork(0x10AD), fluid.Config{
			Sampler: core.Config{Interval: cfg.Interval, Buckets: cfg.Buckets, CountFlows: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		pkt += res.Stats.PacketBursts
		fl += res.Stats.FluidBursts
		eps += res.Stats.Episodes
	}
	t.Logf("packet=%d fluid=%d episodes=%d packet share=%.2f", pkt, fl, eps,
		float64(pkt)/float64(pkt+fl))
}
