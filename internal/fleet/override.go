package fleet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/switchsim"
)

// SwitchOverride selects the counterfactual ToR knobs a generation applies to
// every rack — the axis the what-if sweep engine drives. Zero fields keep the
// production-mirroring defaults (dynamic thresholds, alpha 1, 16 MB buffer,
// 120 KB ECN threshold), so the zero override reproduces the measured fleet
// byte for byte.
type SwitchOverride struct {
	// Policy selects the shared-buffer admission discipline. The zero value
	// is PolicyDT, the production policy.
	Policy switchsim.Policy `json:"policy,omitempty"`
	// Alpha overrides the DT/ABM parameter (0 keeps the default 1).
	Alpha float64 `json:"alpha,omitempty"`
	// ECNThreshold overrides the static per-queue marking threshold in bytes
	// (0 keeps the default 120 KB; switchsim.ECNOff disables marking).
	ECNThreshold int `json:"ecn_threshold,omitempty"`
	// BShareDelay overrides the BShare per-queue delay budget (0 keeps the
	// default 200 us). Ignored by the other policies.
	BShareDelay sim.Time `json:"bshare_delay,omitempty"`
	// TotalBuffer overrides the packet buffer size in bytes (0 keeps 16 MB).
	TotalBuffer int `json:"total_buffer,omitempty"`
	// DedicatedPerQueue overrides each queue's reserve outside the shared
	// pool (0 keeps the derived default).
	DedicatedPerQueue int `json:"dedicated_per_queue,omitempty"`
}

// IsZero reports whether the override changes nothing. Generation only
// routes through the override path for non-zero overrides, so baseline
// datasets keep their historical digests.
func (o SwitchOverride) IsZero() bool { return o == SwitchOverride{} }

// Apply folds the override into a concrete switch configuration.
func (o SwitchOverride) Apply(base switchsim.Config) switchsim.Config {
	base.Policy = o.Policy
	if o.Alpha != 0 {
		base.Alpha = o.Alpha
	}
	if o.ECNThreshold != 0 {
		base.ECNThreshold = o.ECNThreshold
	}
	if o.BShareDelay != 0 {
		base.BShareDelayTarget = o.BShareDelay
	}
	if o.TotalBuffer != 0 {
		base.TotalBuffer = o.TotalBuffer
	}
	if o.DedicatedPerQueue != 0 {
		base.DedicatedPerQueue = o.DedicatedPerQueue
	}
	return base
}

// Validate checks the override against the production defaults for a rack
// with the given port count, so a sweep grid rejects impossible points before
// any rack-hour is simulated.
func (o SwitchOverride) Validate(ports int) error {
	if o.IsZero() {
		return nil
	}
	if err := o.Apply(switchsim.DefaultConfig(ports)).Validate(); err != nil {
		return fmt.Errorf("fleet: switch override: %w", err)
	}
	return nil
}

// HybridCompatible reports whether the hybrid fast path may generate under
// this override. The fluid accountant bakes in DT-shaped buffer sharing and
// default-on ECN; BShare and ABM reshape admission (and ECN-off reshapes the
// transport feedback loop) in ways it does not model, so those points force
// full packet fidelity instead of silently blending two disagreeing models.
func (o SwitchOverride) HybridCompatible() bool {
	switch o.Policy {
	case switchsim.PolicyDT, switchsim.PolicyStatic, switchsim.PolicyComplete:
		return o.ECNThreshold != switchsim.ECNOff
	default:
		return false
	}
}

// String renders the override compactly for progress lines and point labels.
func (o SwitchOverride) String() string {
	if o.IsZero() {
		return "baseline"
	}
	s := o.Policy.String()
	if o.Policy == switchsim.PolicyDT || o.Policy == switchsim.PolicyABM {
		a := o.Alpha
		if a == 0 {
			a = 1
		}
		s = fmt.Sprintf("%s a=%g", map[switchsim.Policy]string{
			switchsim.PolicyDT: "dt", switchsim.PolicyABM: "abm",
		}[o.Policy], a)
	}
	if o.Policy == switchsim.PolicyBShare && o.BShareDelay != 0 {
		s += fmt.Sprintf(" d=%v", o.BShareDelay)
	}
	if o.ECNThreshold == switchsim.ECNOff {
		s += " ecn=off"
	} else if o.ECNThreshold != 0 {
		s += fmt.Sprintf(" ecn=%dK", o.ECNThreshold>>10)
	}
	if o.TotalBuffer != 0 {
		s += fmt.Sprintf(" buf=%dM", o.TotalBuffer>>20)
	}
	if o.DedicatedPerQueue != 0 {
		s += fmt.Sprintf(" ded=%dK", o.DedicatedPerQueue>>10)
	}
	return s
}
