package fleet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// SwitchCounters is the rack switch's full counter state around one sampling
// window: the cumulative totals at window open and at harvest, plus the peak
// single-queue occupancy. The compact SwitchDelta the dataset stores is
// derived from it; the sweep engine consumes the whole thing (ECN marks and
// peaks are counterfactual outputs the dataset format never needed).
type SwitchCounters struct {
	Before, After switchsim.QueueStats
	// PeakQueueBytes is the highest occupancy any single egress queue reached
	// over the rack-hour (warmup included) — the burst-absorption headroom
	// figure sharing-policy counterfactuals compare.
	PeakQueueBytes int
}

// Delta returns the counter movement across the window. PeakBytes is not a
// counter and stays zero; use PeakQueueBytes.
func (c SwitchCounters) Delta() switchsim.QueueStats {
	return switchsim.QueueStats{
		EnqueuedBytes:    c.After.EnqueuedBytes - c.Before.EnqueuedBytes,
		EnqueuedSegments: c.After.EnqueuedSegments - c.Before.EnqueuedSegments,
		DiscardBytes:     c.After.DiscardBytes - c.Before.DiscardBytes,
		DiscardSegments:  c.After.DiscardSegments - c.Before.DiscardSegments,
		ECNMarkedBytes:   c.After.ECNMarkedBytes - c.Before.ECNMarkedBytes,
		ECNMarkedSegs:    c.After.ECNMarkedSegs - c.Before.ECNMarkedSegs,
		DequeuedBytes:    c.After.DequeuedBytes - c.Before.DequeuedBytes,
	}
}

// asDelta reduces the full counters to the compact form the dataset stores.
func (c SwitchCounters) asDelta() SwitchDelta {
	d := c.Delta()
	return SwitchDelta{
		EnqueuedBytes: d.EnqueuedBytes,
		DiscardBytes:  d.DiscardBytes,
		DiscardSegs:   d.DiscardSegments,
	}
}

// SimulateRunFull executes one rack-hour run and returns the aligned SyncRun
// plus the switch's full counter movement. It is deterministic in (cfg, spec,
// hour); cfg.Switch routes the rack through the counterfactual configuration
// when non-zero and through the exact historical path when zero.
func SimulateRunFull(cfg Config, spec RackSpec, hour int) (*core.SyncRun, SwitchCounters, error) {
	cfg = cfg.withDefaults()
	// Overrides the fluid model cannot represent (BShare, ABM, ECN off)
	// silently fall back to full packet fidelity: the dataset stays correct
	// and the digest stays a pure function of the config either way. The
	// host-stack instrument takes the same route: fluid intervals deliver no
	// per-segment events for the tap to timestamp.
	if cfg.Fidelity == FidelityHybrid && cfg.Switch.HybridCompatible() && !cfg.HostStack {
		return simulateRunHybrid(cfg, spec, hour)
	}
	rcfg := testbed.RackConfig{
		Servers: cfg.ServersPerRack,
		Remotes: 4 * cfg.ServersPerRack,
		Seed:    spec.Seed ^ (uint64(hour+1) * 0x9e3779b97f4a7c15),
	}
	if !cfg.Switch.IsZero() {
		rcfg.Switch = cfg.Switch.Apply(switchsim.DefaultConfig(cfg.ServersPerRack))
	}
	rack := testbed.NewRack(rcfg)
	scale := DiurnalFactor(hour) * spec.Intensity
	profiles := make([]workload.Profile, len(spec.Profiles))
	for i, p := range spec.Profiles {
		profiles[i] = p.Scale(scale)
	}
	if _, err := workload.InstallRack(rack, profiles, rack.RNG.Fork(0x10AD)); err != nil {
		return nil, SwitchCounters{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}

	ctrl := core.NewController(rack, core.Config{
		Interval: cfg.Interval, Buckets: cfg.Buckets, CountFlows: true,
		HostStack: cfg.HostStack,
	})
	if err := ctrl.Schedule(warmup); err != nil {
		return nil, SwitchCounters{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}

	var sc SwitchCounters
	rack.Eng.At(warmup, func() { sc.Before = rack.Switch.Totals() })
	rack.Eng.RunUntil(ctrl.HarvestAt(warmup) + sim.Millisecond)
	sc.After = rack.Switch.Totals()
	if !ctrl.Done() {
		// Harvest RPCs are still retrying (lossy control plane or crashed
		// hosts); let the straggler window play out. The switch counters were
		// already captured at the nominal harvest point.
		rack.Eng.RunUntil(ctrl.HarvestDeadline(warmup) + sim.Millisecond)
	}
	sc.PeakQueueBytes = rack.Switch.PeakQueueBytes()

	sr, err := ctrl.Result()
	if err != nil {
		return nil, SwitchCounters{}, fmt.Errorf("rack %s/%d hour %d: %w", spec.Region, spec.ID, hour, err)
	}
	return sr, sc, nil
}

// RackVisitor consumes one rack's raw simulated hours. VisitRun is called
// once per scheduled hour, in schedule order, from the worker goroutine that
// owns the rack; Done is called after the last hour. A visitor is used by
// exactly one goroutine; distinct racks' visitors run concurrently.
//
// A visitor may additionally implement Aborter; VisitStream calls Abort when
// the rack is abandoned mid-flight (context cancellation, or a VisitRun
// error) so in-progress resources — open temp files in particular — are
// released instead of leaking past the stream.
type RackVisitor interface {
	// VisitRun receives one rack-hour. When the simulation itself failed,
	// simErr is non-nil and sr/sc are zero — record the gap and keep going,
	// or return an error to abort the whole stream.
	VisitRun(hour int, sr *core.SyncRun, sc SwitchCounters, simErr error) error
	// Done finishes the rack. It is not called when a VisitRun aborted.
	Done() error
}

// Aborter is the optional cleanup half of a RackVisitor (and of a RackSink):
// Abort discards whatever the visitor accumulated for its rack. It is called
// at most once, instead of Done, and must be safe on a partially fed visitor.
type Aborter interface {
	Abort()
}

// abortVisitor releases an abandoned visitor's resources if it knows how.
func abortVisitor(v RackVisitor) {
	if a, ok := v.(Aborter); ok {
		a.Abort()
	}
}

// VisitOpts configures a streaming visit over the fleet's rack-hours.
type VisitOpts struct {
	// Skip, if non-nil, reports racks whose results already exist; they are
	// not simulated and their visitor is never created. This is the resume
	// hook for both the sharded dataset and the sweep point store.
	Skip func(region string, id int) bool
	// Start opens the visitor for one rack.
	Start func(spec *RackSpec) (RackVisitor, error)
}

// VisitStream simulates the full schedule rack by rack, handing each raw
// rack-hour (SyncRun plus full switch counters) to the rack's visitor as it
// finishes. It is the layer below GenerateStream: the dataset pipeline
// summarizes what it sees into RunSummary records, while the sweep engine
// computes counterfactual metrics the dataset format doesn't carry. Racks
// are distributed over cfg.Workers long-lived workers; the set of visited
// runs is independent of worker count and scheduling, only completion order
// varies. The first visitor or setup error aborts the stream (simulation
// failures of individual rack-hours are delivered to VisitRun, not fatal).
//
// Cancelling ctx aborts the stream between rack-hours: in-flight racks are
// abandoned (their visitors get Abort, never Done), no further racks start,
// and VisitStream returns ctx.Err(). This is the clean-interruption path —
// Ctrl-C and distributed-worker drain ride on it instead of kill + resume.
func VisitStream(ctx context.Context, cfg Config, opts VisitOpts) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if opts.Start == nil {
		return fmt.Errorf("fleet: VisitStream needs a Start hook")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	racks := BuildRacks(cfg)

	var todo []int
	for i := range racks {
		if opts.Skip != nil && opts.Skip(racks[i].Region, racks[i].ID) {
			continue
		}
		todo = append(todo, i)
	}

	workers := cfg.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	idxc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ri := range idxc {
				if aborted() || ctx.Err() != nil {
					continue
				}
				spec := &racks[ri]
				v, err := opts.Start(spec)
				if err != nil {
					setErr(err)
					continue
				}
				failed := false
				for _, h := range cfg.Hours {
					if err := ctx.Err(); err != nil {
						setErr(err)
						failed = true
						break
					}
					sr, sc, simErr := SimulateRunFull(cfg, *spec, h)
					if err := v.VisitRun(h, sr, sc, simErr); err != nil {
						setErr(err)
						failed = true
						break
					}
				}
				if failed {
					abortVisitor(v)
					continue
				}
				if err := v.Done(); err != nil {
					setErr(err)
				}
			}
		}()
	}
	for _, ri := range todo {
		idxc <- ri
	}
	close(idxc)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
