package fleet

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestDiurnalFactorShape(t *testing.T) {
	// Peak within hours 4-10, trough elsewhere, always positive.
	peak := DiurnalFactor(7)
	for h := 0; h < 24; h++ {
		f := DiurnalFactor(h)
		if f <= 0 {
			t.Fatalf("factor at hour %d = %v", h, f)
		}
		if f > peak {
			t.Errorf("hour %d factor %v exceeds hour-7 peak %v", h, f, peak)
		}
	}
	if DiurnalFactor(7) < DiurnalFactor(0)*1.2 {
		t.Error("peak-to-trough ratio under 1.2; diurnal signal too weak")
	}
	if DiurnalFactor(31) != DiurnalFactor(7) {
		t.Error("hours do not wrap")
	}
}

func TestBuildRacksPlacementShape(t *testing.T) {
	cfg := DefaultConfig()
	racks := BuildRacks(cfg)
	if len(racks) != 2*cfg.RacksPerRegion {
		t.Fatalf("built %d racks", len(racks))
	}
	var mlRacks, regA, regB int
	for _, r := range racks {
		if len(r.Tasks) != cfg.ServersPerRack || len(r.Profiles) != cfg.ServersPerRack {
			t.Fatalf("rack %s/%d placement incomplete", r.Region, r.ID)
		}
		switch r.Region {
		case RegA:
			regA++
			if r.MLDominated {
				mlRacks++
			}
		case RegB:
			regB++
			if r.Intensity <= 0 {
				t.Error("RegB rack without intensity")
			}
		}
	}
	if regA != cfg.RacksPerRegion || regB != cfg.RacksPerRegion {
		t.Errorf("regions %d/%d", regA, regB)
	}
	wantML := int(cfg.MLRackFraction*float64(cfg.RacksPerRegion) + 0.5)
	if mlRacks != wantML {
		t.Errorf("ML racks %d, want %d", mlRacks, wantML)
	}
}

func TestMLDominatedRacksRunFewerTasks(t *testing.T) {
	// The paper's Fig 10/11: ML racks run fewer distinct tasks and have a
	// dominant task on 60-100% of servers.
	racks := BuildRacks(DefaultConfig())
	var mlTasks, typTasks []float64
	for _, r := range racks {
		if r.Region != RegA {
			continue
		}
		if r.MLDominated {
			mlTasks = append(mlTasks, float64(r.DistinctTasks()))
			if s := r.DominantTaskShare(); s < 0.55 || s > 1.0 {
				t.Errorf("ML rack dominant share %v outside [0.55,1]", s)
			}
			if r.Tasks[0].Service != workload.MLTrain.Name {
				t.Error("ML rack's dominant task is not mltrain")
			}
		} else {
			typTasks = append(typTasks, float64(r.DistinctTasks()))
		}
	}
	if mean(mlTasks) >= mean(typTasks) {
		t.Errorf("ML racks run %v tasks on average vs typical %v; want fewer",
			mean(mlTasks), mean(typTasks))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestBuildRacksDeterministic(t *testing.T) {
	a := BuildRacks(DefaultConfig())
	b := BuildRacks(DefaultConfig())
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].DistinctTasks() != b[i].DistinctTasks() {
			t.Fatalf("rack %d differs across identical builds", i)
		}
	}
}

// testDataset is generated once and shared; small config keeps this fast.
var testDS *Dataset

func getTestDataset(t *testing.T) *Dataset {
	t.Helper()
	if testDS != nil {
		return testDS
	}
	cfg := SmallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	testDS = ds
	return ds
}

func TestGenerateDatasetShape(t *testing.T) {
	ds := getTestDataset(t)
	cfg := ds.Cfg.withDefaults()
	wantRuns := 2 * cfg.RacksPerRegion * len(cfg.Hours)
	if len(ds.Runs) != wantRuns {
		t.Fatalf("runs = %d, want %d", len(ds.Runs), wantRuns)
	}
	if len(ds.Racks) != 2*cfg.RacksPerRegion {
		t.Fatalf("racks = %d", len(ds.Racks))
	}
	for i := range ds.Runs {
		r := &ds.Runs[i]
		if r.Samples <= 0 || r.Samples > cfg.Buckets {
			t.Errorf("run %d samples = %d", i, r.Samples)
		}
		if len(r.ServerRuns) != cfg.ServersPerRack {
			t.Errorf("run %d server runs = %d", i, len(r.ServerRuns))
		}
		if r.Switch.EnqueuedBytes <= 0 {
			t.Errorf("run %d saw no switch traffic", i)
		}
	}
}

func TestClassificationTopQuintile(t *testing.T) {
	ds := getTestDataset(t)
	var high, typical int
	for _, m := range ds.Racks {
		if m.Region != RegA {
			if m.Class != ClassB {
				t.Errorf("RegB rack classified %v", m.Class)
			}
			continue
		}
		switch m.Class {
		case ClassAHigh:
			high++
		case ClassATypical:
			typical++
		}
	}
	if high != ds.Cfg.withDefaults().RacksPerRegion/5 {
		t.Errorf("high racks = %d", high)
	}
	// High racks must have higher measured contention than typical racks.
	var hMin, tMax float64 = math.Inf(1), 0
	for _, m := range ds.Racks {
		if m.Region != RegA {
			continue
		}
		if m.Class == ClassAHigh && m.BusyAvgContention < hMin {
			hMin = m.BusyAvgContention
		}
		if m.Class == ClassATypical && m.BusyAvgContention > tMax {
			tMax = m.BusyAvgContention
		}
	}
	if hMin < tMax {
		t.Errorf("classification not a contention quantile: high min %v < typical max %v", hMin, tMax)
	}
}

func TestMLRacksMeasureHigher(t *testing.T) {
	// Placement ground truth should align with measured classification:
	// ML-dominated racks should dominate the High class.
	ds := getTestDataset(t)
	var mlHigh, mlTotal int
	for _, m := range ds.Racks {
		if m.Region != RegA || !m.MLDominated {
			continue
		}
		mlTotal++
		if m.Class == ClassAHigh {
			mlHigh++
		}
	}
	if mlTotal == 0 {
		t.Skip("no ML racks in small config")
	}
	if mlHigh == 0 {
		t.Error("no ML-dominated rack measured as high contention")
	}
}

func TestRunsInFilters(t *testing.T) {
	ds := getTestDataset(t)
	nA := len(ds.RunsInRegion(RegA))
	nB := len(ds.RunsInRegion(RegB))
	if nA+nB != len(ds.Runs) {
		t.Error("region filter does not partition runs")
	}
	nT := len(ds.RunsIn(ClassATypical))
	nH := len(ds.RunsIn(ClassAHigh))
	nBB := len(ds.RunsIn(ClassB))
	if nT+nH != nA || nBB != nB {
		t.Errorf("class filter mismatch: %d+%d != %d or %d != %d", nT, nH, nA, nBB, nB)
	}
}

func TestSimulateRunDeterministic(t *testing.T) {
	cfg := SmallConfig()
	spec, ok := FindRack(cfg, RegA, 0)
	if !ok {
		t.Fatal("rack not found")
	}
	a, da, err := SimulateRun(cfg, spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, db, err := SimulateRun(cfg, spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples != b.Samples || da != db {
		t.Fatalf("rerun differs: %d/%d samples, %+v vs %+v", a.Samples, b.Samples, da, db)
	}
	for s := range a.Servers {
		for i := range a.Servers[s].In {
			if a.Servers[s].In[i] != b.Servers[s].In[i] {
				t.Fatalf("series differ at server %d sample %d", s, i)
			}
		}
	}
}

func TestDatasetGobRoundTrip(t *testing.T) {
	ds := getTestDataset(t)
	path := filepath.Join(t.TempDir(), "ds.gob.gz")
	if err := trace.Save(path, ds); err != nil {
		t.Fatal(err)
	}
	var out Dataset
	if err := trace.Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != len(ds.Runs) || len(out.Racks) != len(ds.Racks) {
		t.Fatal("round trip lost records")
	}
	if out.Runs[0].AvgContention != ds.Runs[0].AvgContention {
		t.Error("round trip changed values")
	}
	co, cok := out.ClassOf(&out.Runs[0])
	cd, dok := ds.ClassOf(&ds.Runs[0])
	if !cok || !dok || co != cd {
		t.Error("classification lost in round trip")
	}
}

func TestClassOfMissingRackExplicit(t *testing.T) {
	// A partially written or corrupt dataset can hold runs whose rack is
	// absent from the metadata. ClassOf must say so instead of silently
	// returning ClassB, and the streaming/filtering accessors must skip (and
	// count) such runs.
	ds := &Dataset{
		Racks: []RackMeta{{Region: RegA, ID: 0, Class: ClassAHigh}},
		Runs: []RunSummary{
			{Region: RegA, RackID: 0, Hour: 6, Collected: true},
			{Region: RegB, RackID: 7, Hour: 6, Collected: true}, // no metadata
		},
	}
	if _, ok := ds.ClassOf(&ds.Runs[0]); !ok {
		t.Error("known rack reported as missing")
	}
	if c, ok := ds.ClassOf(&ds.Runs[1]); ok {
		t.Errorf("missing rack silently classified as %v", c)
	}
	if n := len(ds.RunsIn(ClassB)); n != 0 {
		t.Errorf("RunsIn(ClassB) returned %d runs for a rack with no metadata", n)
	}
	seen := 0
	skipped, err := ds.EachRun(func(*RunSummary, Class) error { seen++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 || skipped != 1 {
		t.Errorf("EachRun delivered %d runs, skipped %d; want 1 and 1", seen, skipped)
	}
}

func TestSat16Saturates(t *testing.T) {
	cases := []struct {
		in   int
		want int16
	}{
		{0, 0}, {42, 42}, {32767, 32767},
		{32768, 32767}, {100000, 32767}, {-1, -1}, {-40000, -32768},
	}
	for _, c := range cases {
		if got := sat16(c.in); got != c.want {
			t.Errorf("sat16(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestConfigValidateBounds(t *testing.T) {
	ok := SmallConfig()
	if err := ok.Validate(); err != nil {
		t.Errorf("small config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config (all defaults) invalid: %v", err)
	}
	big := SmallConfig()
	big.ServersPerRack = 40000
	if err := big.Validate(); err == nil {
		t.Error("ServersPerRack 40000 passed validation; BurstRec stores server as int16")
	}
	big = SmallConfig()
	big.Buckets = 70000
	if err := big.Validate(); err == nil {
		t.Error("Buckets 70000 passed validation; BurstRec stores burst length as int16")
	}
	big = SmallConfig()
	big.Hours = []int{25}
	if err := big.Validate(); err == nil {
		t.Error("hour 25 passed validation")
	}
}
