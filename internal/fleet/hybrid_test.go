package fleet

import (
	"math"
	"testing"
	"time"

	"repro/internal/switchsim"
)

// headline reduces a dataset to the paper's headline statistics: burst
// frequency and length (Figs 6-7), the contention distribution (Fig 9), and
// loss versus contention (Figs 11-13).
type headline struct {
	Runs          int
	Collected     int
	BurstsPerSec  float64 // mean per-server burst arrival rate (Fig 6)
	MeanBurstLen  float64 // samples (Fig 7)
	MeanVolume    float64 // bytes per burst (Fig 7)
	MeanConns     float64 // connections per burst (Fig 8)
	AvgContention float64 // mean of per-run average contention (Fig 9)
	P90Contention float64 // mean of per-run P90 contention (Fig 9)
	LossyShare    float64 // fraction of bursts that are lossy (Figs 11-13)
	LossyCount    int     // absolute lossy-burst count behind LossyShare
	DropShare     float64 // mean switch discard share of enqueued bytes
}

func summarizeHeadline(t *testing.T, d *Dataset) headline {
	t.Helper()
	var h headline
	var bursts, burstLen, volume, conns float64
	var windowSec float64
	var lossy float64
	var enq, disc float64
	for i := range d.Runs {
		r := &d.Runs[i]
		h.Runs++
		if !r.Collected {
			continue
		}
		h.Collected++
		windowSec += r.WindowSeconds() * float64(len(r.ServerRuns))
		h.AvgContention += r.AvgContention
		h.P90Contention += r.P90Contention
		enq += float64(r.Switch.EnqueuedBytes)
		disc += float64(r.Switch.DiscardBytes)
		for _, b := range r.Bursts {
			bursts++
			burstLen += float64(b.Len)
			volume += float64(b.Volume)
			conns += float64(b.AvgConns)
			if b.Lossy {
				lossy++
			}
		}
	}
	if h.Collected > 0 {
		h.AvgContention /= float64(h.Collected)
		h.P90Contention /= float64(h.Collected)
	}
	if windowSec > 0 {
		h.BurstsPerSec = bursts / windowSec
	}
	if bursts > 0 {
		h.MeanBurstLen = burstLen / bursts
		h.MeanVolume = volume / bursts
		h.MeanConns = conns / bursts
		h.LossyShare = lossy / bursts
		h.LossyCount = int(lossy)
	}
	if enq > 0 {
		h.DropShare = disc / enq
	}
	return h
}

// relErr is |a-b| / max(|a|,|b|), 0 when both are 0.
func relErr(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// TestHybridEquivalence is the tentpole's correctness gate: the paper's
// headline figures from a hybrid-fidelity generation of the small preset must
// stay within tolerance of the full-fidelity run. The split is distributional
// by design — the hybrid path re-draws burst schedules analytically — so the
// comparison is on aggregates, not bytes.
func TestHybridEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the small preset twice")
	}
	cfg := SmallConfig()
	cfg.KeepExamples = false

	t0 := time.Now()
	full, err := Generate(cfg)
	if err != nil {
		t.Fatalf("full generate: %v", err)
	}
	fullDur := time.Since(t0)

	cfg.Fidelity = FidelityHybrid
	t0 = time.Now()
	hyb, err := Generate(cfg)
	if err != nil {
		t.Fatalf("hybrid generate: %v", err)
	}
	hybDur := time.Since(t0)

	fh, hh := summarizeHeadline(t, full), summarizeHeadline(t, hyb)
	t.Logf("full:   %+v (%v)", fh, fullDur)
	t.Logf("hybrid: %+v (%v)", hh, hybDur)
	t.Logf("speedup: %.2fx", float64(fullDur)/float64(hybDur))

	if hh.Collected != hh.Runs {
		t.Errorf("hybrid collected %d of %d runs", hh.Collected, hh.Runs)
	}
	check := func(name string, a, b, tol float64) {
		t.Helper()
		if e := relErr(a, b); e > tol {
			t.Errorf("%s: full %.4g hybrid %.4g (rel err %.2f > %.2f)", name, a, b, e, tol)
		}
	}
	// Tolerances: burst arrivals and volumes are the same Poisson/log-normal
	// draws (different RNG streams), so they agree tightly at this sample
	// size; contention and loss ride on which bursts coincide, so they carry
	// the sampling noise of ~15 rack-hours plus the fluid approximation.
	check("bursts/sec (Fig 6)", fh.BurstsPerSec, hh.BurstsPerSec, 0.10)
	check("burst len (Fig 7)", fh.MeanBurstLen, hh.MeanBurstLen, 0.25)
	check("burst volume (Fig 7)", fh.MeanVolume, hh.MeanVolume, 0.15)
	// Conns ride the background pool's tick-granular crediting; since the
	// fluid path models that granularity the measured error is ~0.5%, and the
	// 5% gate keeps it an order of magnitude tighter than it used to be.
	check("burst conns (Fig 8)", fh.MeanConns, hh.MeanConns, 0.05)
	check("avg contention (Fig 9)", fh.AvgContention, hh.AvgContention, 0.25)
	check("p90 contention (Fig 9)", fh.P90Contention, hh.P90Contention, 0.25)
	// Loss is a rare event on the small preset (a handful of lossy bursts in
	// thousands), so the gate is Poisson-aware on counts, not a relative
	// error on the share: the two counts must sit within each other's ~3
	// sigma shot noise, and losses must not vanish entirely.
	fl, hl := float64(fh.LossyCount), float64(hh.LossyCount)
	if diff := math.Abs(fl - hl); diff > 3*math.Sqrt(math.Max(fl, hl)) {
		t.Errorf("lossy bursts (Figs 11-13): full %d hybrid %d (diff %.0f beyond shot noise)",
			fh.LossyCount, hh.LossyCount, diff)
	}
	if fh.LossyCount > 0 && hh.LossyCount == 0 {
		t.Errorf("hybrid produced no lossy bursts (full had %d)", fh.LossyCount)
	}
	if fh.DropShare > 0 && hh.DropShare == 0 {
		t.Errorf("hybrid lost all switch discards (full drop share %.4g)", fh.DropShare)
	}
}

// TestHybridForcedFullEquivalence pins the fidelity contract for overrides
// the fluid model cannot represent: under BShare, ABM, or ECN-off, a
// hybrid-fidelity generation must silently take the full packet path and
// produce a byte-identical dataset — not a fluid approximation of a policy
// the accountant doesn't model.
func TestHybridForcedFullEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates six small datasets")
	}
	for _, o := range []SwitchOverride{
		{Policy: switchsim.PolicyBShare},
		{Policy: switchsim.PolicyABM},
		{ECNThreshold: switchsim.ECNOff},
	} {
		cfg := SmallConfig()
		cfg.KeepExamples = false
		cfg.RacksPerRegion = 2
		cfg.Hours = []int{6}
		cfg.Switch = o

		full, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s full: %v", o, err)
		}
		cfg.Fidelity = FidelityHybrid
		hyb, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s hybrid: %v", o, err)
		}
		fd, err := full.Digest()
		if err != nil {
			t.Fatal(err)
		}
		hd, err := hyb.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if fd != hd {
			t.Errorf("%s: hybrid digest %s != full %s (fluid path ran for an unmodeled override)", o, hd, fd)
		}
	}
}

// TestHybridWorkerInvariance asserts the hybrid digest is a pure function of
// the config: the burst detector and fluid accounting must not leak worker
// scheduling into the dataset.
func TestHybridWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the small preset twice")
	}
	cfg := SmallConfig()
	cfg.KeepExamples = false
	cfg.Fidelity = FidelityHybrid
	cfg.RacksPerRegion = 2

	cfg.Workers = 1
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	cfg.Workers = 4
	d4, err := Generate(cfg)
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	g1, err := d1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	g4, err := d4.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g4 {
		t.Errorf("hybrid digest varies with worker count: %s vs %s", g1, g4)
	}
}
