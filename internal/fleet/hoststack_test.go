package fleet

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// hsTinyConfig is a one-rack-per-region configuration small enough to
// generate twice per test.
func hsTinyConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		RacksPerRegion: 1,
		ServersPerRack: 12,
		Hours:          []int{6},
		Buckets:        200,
		Interval:       sim.Millisecond,
		Workers:        2,
	}
}

// TestHostStackOffByteIdentity proves the knob is invisible when off, and —
// stronger — that turning it on perturbs nothing but the extra records: the
// tap is pure bookkeeping, so stripping the HostStackRecs from an
// instrumented dataset must reproduce the uninstrumented digest byte for
// byte.
func TestHostStackOffByteIdentity(t *testing.T) {
	off, err := Generate(hsTinyConfig(11))
	if err != nil {
		t.Fatalf("Generate off: %v", err)
	}
	offDigest, err := off.Digest()
	if err != nil {
		t.Fatalf("Digest off: %v", err)
	}

	cfg := hsTinyConfig(11)
	cfg.HostStack = true
	on, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate on: %v", err)
	}
	onDigest, err := on.Digest()
	if err != nil {
		t.Fatalf("Digest on: %v", err)
	}
	if onDigest == offDigest {
		t.Fatal("HostStack on produced the same digest as off; records were not written")
	}

	withRecs := 0
	for i := range on.Runs {
		r := &on.Runs[i]
		if !r.Collected {
			continue
		}
		if r.HostStack == nil {
			t.Fatalf("collected run %s/%d hour %d missing HostStackRec", r.Region, r.RackID, r.Hour)
		}
		if r.HostStack.InSegs == 0 || r.HostStack.Hosts == 0 {
			t.Fatalf("run %s/%d hour %d: empty host-stack record %+v", r.Region, r.RackID, r.Hour, r.HostStack)
		}
		if r.HostStack.InP99Us <= 0 {
			t.Fatalf("run %s/%d hour %d: zero ingress p99", r.Region, r.RackID, r.Hour)
		}
		withRecs++
	}
	if withRecs == 0 {
		t.Fatal("no collected runs carried host-stack records")
	}

	// Strip the records: everything else must be byte-identical to the
	// uninstrumented generation, proving the tap perturbed no simulation
	// state.
	for i := range on.Runs {
		on.Runs[i].HostStack = nil
	}
	stripped, err := on.Digest()
	if err != nil {
		t.Fatalf("Digest stripped: %v", err)
	}
	if stripped != offDigest {
		t.Fatalf("host-stack tap perturbed the simulation:\n stripped %s\n off      %s", stripped, offDigest)
	}

	for i := range off.Runs {
		if off.Runs[i].HostStack != nil {
			t.Fatal("HostStack off left a record on a run summary")
		}
	}
}

// TestHostStackForcesFullFidelity pins the hybrid contract: the fluid fast
// path has no per-segment delivery events for the tap to observe, so a
// hybrid generation with HostStack on must take the full-fidelity route and
// produce the full-fidelity digest.
func TestHostStackForcesFullFidelity(t *testing.T) {
	full := hsTinyConfig(23)
	full.HostStack = true
	fds, err := Generate(full)
	if err != nil {
		t.Fatalf("Generate full: %v", err)
	}
	fullDigest, err := fds.Digest()
	if err != nil {
		t.Fatalf("Digest full: %v", err)
	}

	hyb := hsTinyConfig(23)
	hyb.HostStack = true
	hyb.Fidelity = FidelityHybrid
	hds, err := Generate(hyb)
	if err != nil {
		t.Fatalf("Generate hybrid: %v", err)
	}
	hybDigest, err := hds.Digest()
	if err != nil {
		t.Fatalf("Digest hybrid: %v", err)
	}
	if hybDigest != fullDigest {
		t.Fatalf("hybrid+hoststack did not fall back to full fidelity:\n hybrid %s\n full   %s", hybDigest, fullDigest)
	}
}

func TestHostStackRecShareAboveUs(t *testing.T) {
	rec := &HostStackRec{}
	rec.InBins[1] = 60 // [1,2) µs
	rec.InBins[11] = 30 // [1024,2048) µs
	rec.InBins[17] = 10 // ≥ 65536 µs
	rec.InSegs = 100
	if got := rec.ShareAboveUs(1024); got != 0.40 {
		t.Fatalf("ShareAboveUs(1024) = %v, want 0.40", got)
	}
	if got := rec.ShareAboveUs(1); got != 0.40+0.60 {
		t.Fatalf("ShareAboveUs(1) = %v, want 1.0", got)
	}
}

// TestHostStackClassString guards the experiment's class labels against
// accidental renames (the render keys on them).
func TestHostStackClassString(t *testing.T) {
	for _, c := range []Class{ClassATypical, ClassAHigh, ClassB} {
		if s := c.String(); s == "" || strings.Contains(s, "Class") {
			t.Fatalf("unexpected class label %q", s)
		}
	}
}
