// Package fleet models the two-region deployment the paper measures: racks
// with service placement, diurnal load, an hourly SyncMillisampler schedule,
// and dataset assembly. Scale is configurable; the defaults are a scaled-down
// region (tens of racks of 48 servers rather than thousands of racks of ~92)
// that preserves every mechanism while staying simulable on a laptop.
package fleet

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/sim"
)

// Region names, matching the paper's anonymized labels.
const (
	RegA = "RegA"
	RegB = "RegB"
)

// Class labels a rack by its measured contention regime (paper §7.1). RegA
// racks split into Typical (bottom 80%) and High (top 20%); all RegB racks
// share one class.
type Class int

const (
	// ClassATypical is a RegA rack outside the top contention quintile.
	ClassATypical Class = iota
	// ClassAHigh is a RegA rack in the top contention quintile.
	ClassAHigh
	// ClassB is any RegB rack.
	ClassB
)

func (c Class) String() string {
	switch c {
	case ClassATypical:
		return "RegA-Typical"
	case ClassAHigh:
		return "RegA-High"
	default:
		return "RegB"
	}
}

// Fidelity selects the simulation engine a generation runs on.
type Fidelity string

const (
	// FidelityFull is the segment-level engine for every instant of every
	// rack-hour — the byte-identical legacy path the golden digests pin. The
	// empty string is its canonical spelling: older manifests and configs
	// predate the knob, and their zero value must keep meaning "full".
	FidelityFull Fidelity = "full"
	// FidelityHybrid advances quiet intervals with the fluid model
	// (internal/fluid) and drops to the segment engine only inside
	// burst-triggered episodes. Output is distributionally — not byte —
	// equivalent to full fidelity; the equivalence test bounds the drift.
	FidelityHybrid Fidelity = "hybrid"
)

// ParseFidelity maps a CLI/spec string onto a Fidelity value.
func ParseFidelity(s string) (Fidelity, error) {
	switch Fidelity(s) {
	case "", FidelityFull:
		return FidelityFull, nil
	case FidelityHybrid:
		return FidelityHybrid, nil
	}
	return "", fmt.Errorf("fleet: unknown fidelity %q (want full or hybrid)", s)
}

// Config sizes a dataset generation.
type Config struct {
	// Seed drives all placement and traffic randomness.
	Seed uint64
	// RacksPerRegion is the number of racks sampled per region (the paper
	// samples 1000; the default of 32 preserves the distributions).
	RacksPerRegion int
	// ServersPerRack is the rack size (the studied platform averages 92
	// servers; default 48 keeps event counts tractable while leaving room
	// for double-digit contention).
	ServersPerRack int
	// MLRackFraction is the fraction of RegA racks dominated by the
	// co-located ML workload (the paper finds ~20%).
	MLRackFraction float64
	// Hours lists the local hours at which each rack runs SyncMillisampler
	// (the paper samples hourly; default every two hours).
	Hours []int
	// Buckets is the per-run sample count (default 1000 -> 1 s runs at 1 ms;
	// the paper uses 2000 -> 2 s).
	Buckets int
	// Interval is the sampling interval (default 1 ms).
	Interval sim.Time
	// Workers bounds generation parallelism (default GOMAXPROCS).
	Workers int
	// KeepExamples retains the raw SyncRun of one low- and one
	// high-contention run for the deep-dive figure.
	KeepExamples bool
	// Switch applies a counterfactual ToR configuration to every rack. The
	// zero value keeps the production defaults and reproduces the measured
	// fleet exactly; the sweep engine varies it per grid point.
	Switch SwitchOverride
	// Fidelity selects the engine: empty or FidelityFull is the byte-identical
	// legacy path, FidelityHybrid the fluid fast path. The normalized form
	// spells full as "" so manifests written before the knob still match.
	Fidelity Fidelity
	// HostStack arms the host-stack latency instrument (internal/hoststack)
	// beside Millisampler on every server. The tap is pure bookkeeping, so
	// turning it on changes no simulated behavior — sweep metrics stay
	// byte-identical — but each RunSummary gains a HostStackRec, so dataset
	// digests differ and mixed-knob resume is refused. HostStack forces full
	// packet fidelity: the fluid model advances quiet intervals without
	// per-segment delivery events, so there is nothing for the tap to
	// timestamp (same contract as hybrid-incompatible switch overrides).
	HostStack bool
}

// DefaultConfig is the full-size generation used by cmd/fleetgen and the
// benchmark harness.
func DefaultConfig() Config {
	return Config{
		Seed:           2022,
		RacksPerRegion: 32,
		ServersPerRack: 48,
		MLRackFraction: 0.20,
		Hours:          []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22},
		Buckets:        1000,
		Interval:       sim.Millisecond,
		Workers:        runtime.GOMAXPROCS(0),
		KeepExamples:   true,
	}
}

// SmallConfig is a fast configuration for tests: a handful of racks, three
// sampled hours, shorter windows.
func SmallConfig() Config {
	c := DefaultConfig()
	c.RacksPerRegion = 5
	c.ServersPerRack = 24
	c.Hours = []int{2, 6, 14}
	c.Buckets = 400
	return c
}

// PaperConfig is the paper-scale dataset: ~1000 racks per region of 92
// servers, sampled hourly with the paper's 2 s windows (2000 × 1 ms). At
// 48,000 rack-hours it is a multi-hour generation — run it through the
// sharded cmd/fleetgen output so it can be produced in installments and
// resumed after interruption.
func PaperConfig() Config {
	c := DefaultConfig()
	c.RacksPerRegion = 1000
	c.ServersPerRack = 92
	c.Hours = make([]int, 24)
	for h := range c.Hours {
		c.Hours[h] = h
	}
	c.Buckets = 2000
	return c
}

// Validate rejects configurations the dataset encoding cannot represent:
// BurstRec stores server indices, burst lengths, and contention levels as
// int16, so ServersPerRack and Buckets (which bound burst length in samples)
// must not exceed MaxInt16. Zero values mean "use the default" and pass.
func (c Config) Validate() error {
	if c.ServersPerRack > math.MaxInt16 {
		return fmt.Errorf("fleet: ServersPerRack %d exceeds %d (BurstRec stores server indices and contention as int16)",
			c.ServersPerRack, math.MaxInt16)
	}
	if c.Buckets > math.MaxInt16 {
		return fmt.Errorf("fleet: Buckets %d exceeds %d (BurstRec stores burst lengths in samples as int16)",
			c.Buckets, math.MaxInt16)
	}
	for _, h := range c.Hours {
		if h < 0 || h > 23 {
			return fmt.Errorf("fleet: hour %d outside [0,23]", h)
		}
	}
	if _, err := ParseFidelity(string(c.Fidelity)); err != nil {
		return err
	}
	if !c.Switch.IsZero() {
		ports := c.ServersPerRack
		if ports <= 0 {
			ports = DefaultConfig().ServersPerRack
		}
		if err := c.Switch.Validate(ports); err != nil {
			return err
		}
	}
	return nil
}

// WithDefaults returns the configuration with every zero field replaced by
// its DefaultConfig value — the normalized form recorded in dataset
// manifests and used throughout generation.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RacksPerRegion <= 0 {
		c.RacksPerRegion = d.RacksPerRegion
	}
	if c.ServersPerRack <= 0 {
		c.ServersPerRack = d.ServersPerRack
	}
	if c.MLRackFraction <= 0 {
		c.MLRackFraction = d.MLRackFraction
	}
	if len(c.Hours) == 0 {
		c.Hours = d.Hours
	}
	if c.Buckets <= 0 {
		c.Buckets = d.Buckets
	}
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.Fidelity == FidelityFull {
		c.Fidelity = ""
	}
	return c
}

// BusyHour is the hour used for the cross-rack contention snapshot (paper
// §7.1 uses 6-7am local, busy in both regions).
const BusyHour = 6

// DiurnalFactor returns the load multiplier at a local hour: a plateau
// raised by roughly 30% between hours 4 and 10, matching the paper's
// observation of a 27.6% average contention increase in that window.
func DiurnalFactor(hour int) float64 {
	h := float64(((hour % 24) + 24) % 24)
	// Smooth bump centered at hour 7.
	d := (h - 7) / 3.2
	return 1.0 + 0.32*math.Exp(-d*d/2)
}
