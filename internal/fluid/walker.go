package fluid

import (
	"sort"

	"repro/internal/sim"
)

// rateDelta is a piecewise-constant change of a fluid arrival rate.
type rateDelta struct {
	at  sim.Time
	bps float64 // delta in bytes per second (signed)
}

// walkResult is the drained traffic of one fluid queue binned onto the
// sampling grid.
type walkResult struct {
	out  []float64 // drained bytes per bucket, len == buckets
	pre  float64   // drained before the grid opened (warmup)
	post float64   // drained after the grid closed (collection grace)
	peak float64   // peak fluid backlog in bytes
}

// total returns the bytes drained inside and after the grid — the span the
// switch's counter delta covers (warmup is excluded; the full-fidelity path
// snapshots counters at window open).
func (w *walkResult) total() float64 {
	t := w.post
	for _, v := range w.out {
		t += v
	}
	return t
}

// walk advances a single fluid queue draining at drainBps through the
// arrival-rate deltas over [0, end), binning drained bytes into the grid
// [gridStart, gridStart+interval*buckets). The queue carries backlog across
// bucket and rate boundaries, so arrivals exceeding the drain rate (a burst
// landing on top of background load, or back-to-back bursts) are deferred
// exactly as a work-conserving egress queue would defer them.
func walk(deltas []rateDelta, drainBps float64, end, gridStart, interval sim.Time, buckets int) walkResult {
	res := walkResult{out: make([]float64, buckets)}
	if drainBps <= 0 || end <= 0 {
		return res
	}
	sort.Slice(deltas, func(a, b int) bool { return deltas[a].at < deltas[b].at })

	bin := func(t sim.Time, bytes float64) {
		if bytes <= 0 {
			return
		}
		switch {
		case t < gridStart:
			res.pre += bytes
		case t >= gridStart+interval*sim.Time(buckets):
			res.post += bytes
		default:
			res.out[int((t-gridStart)/interval)] += bytes
		}
	}

	// nextBoundary returns the earliest of: next rate change, next bucket
	// edge, end — so each step has constant arrival rate and a single bin.
	di := 0
	arrival := 0.0
	backlog := 0.0
	now := sim.Time(0)
	for now < end {
		for di < len(deltas) && deltas[di].at <= now {
			arrival += deltas[di].bps
			di++
		}
		next := end
		if di < len(deltas) && deltas[di].at < next {
			next = deltas[di].at
		}
		if now < gridStart {
			if gridStart < next {
				next = gridStart
			}
		} else {
			gridEnd := gridStart + interval*sim.Time(buckets)
			if now < gridEnd {
				edge := gridStart + interval*sim.Time((now-gridStart)/interval+1)
				if edge < next {
					next = edge
				}
			}
		}
		if next <= now {
			// Defensive: zero-length step (coincident boundaries).
			now = next + 1
			continue
		}
		dt := (next - now).Seconds()
		switch {
		case backlog <= 0 && arrival <= drainBps:
			// Queue stays empty: output follows arrivals.
			bin(now, arrival*dt)
		case arrival >= drainBps:
			// Queue grows (or holds): output at full drain rate.
			bin(now, drainBps*dt)
			backlog += (arrival - drainBps) * dt
		default:
			// Queue shrinking; it may empty inside the step.
			tEmpty := backlog / (drainBps - arrival)
			if tEmpty >= dt {
				bin(now, drainBps*dt)
				backlog -= (drainBps - arrival) * dt
			} else {
				bin(now, drainBps*tEmpty+arrival*(dt-tEmpty))
				backlog = 0
			}
		}
		if backlog > res.peak {
			res.peak = backlog
		}
		now = next
	}
	return res
}
