package fluid

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func mkBurst(server int, at sim.Time, volume float64, fresh bool, fan int) *PlannedBurst {
	return PlanBurst(workload.BurstEvent{At: at, Volume: volume}, server, fan, fresh,
		12_500_000_000, sim.Millisecond, DefaultDetectorConfig())
}

// bigVol is comfortably supercritical at 12.5 Gb/s and 1 ms sampling
// (bucket capacity 1.5625 MB).
const bigVol = 2e6

func TestDetectLoneBurstsStayFluid(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// Widely separated persistent bursts on distinct servers: nothing to
	// contend with, everything stays fluid.
	plan := []*PlannedBurst{
		mkBurst(0, 10*sim.Millisecond, bigVol, false, 8),
		mkBurst(1, 50*sim.Millisecond, bigVol, false, 8),
		mkBurst(2, 90*sim.Millisecond, bigVol, true, 36),
	}
	eps := Detect(plan, cfg)
	if len(eps) != 0 {
		t.Fatalf("lone bursts produced %d episodes", len(eps))
	}
	for i, b := range plan {
		if b.Packet {
			t.Errorf("burst %d marked packet", i)
		}
	}
}

func TestDetectSameServerOverlapGoesPacket(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// Back-to-back on one server: the second lands mid-drain of the first —
	// a shared egress queue, which must straddle one packet episode rather
	// than being re-coarsened between the two.
	a := mkBurst(0, 10*sim.Millisecond, bigVol, false, 8)
	b := mkBurst(0, a.At+a.Drain/2, bigVol, false, 8)
	other := mkBurst(1, 40*sim.Millisecond, bigVol, false, 8)
	eps := Detect([]*PlannedBurst{a, b, other}, cfg)
	if !a.Packet || !b.Packet {
		t.Fatalf("same-server overlap not packet: a=%v b=%v", a.Packet, b.Packet)
	}
	if other.Packet {
		t.Error("unrelated burst marked packet")
	}
	if len(eps) != 1 {
		t.Fatalf("want 1 episode, got %d", len(eps))
	}
	if len(eps[0].Bursts) != 2 {
		t.Fatalf("episode covers %d bursts, want 2", len(eps[0].Bursts))
	}
	if eps[0].Start > a.At || eps[0].End < b.At+b.Drain {
		t.Errorf("episode [%v,%v] does not cover both bursts", eps[0].Start, eps[0].End)
	}
}

func TestDetectExactEdgeDoesNotOverlap(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// Two same-server bursts whose slack-padded spans share exactly one
	// boundary instant: a span is half-open, so an exact edge is adjacency,
	// not overlap.
	a := mkBurst(0, 10*sim.Millisecond, bigVol, false, 8)
	_, aEnd := a.Span(cfg)
	b := mkBurst(0, aEnd+cfg.Lead, bigVol, false, 8)
	if s, _ := b.Span(cfg); s != aEnd {
		t.Fatalf("test setup: spans not adjacent (a ends %v, b starts %v)", aEnd, s)
	}
	Detect([]*PlannedBurst{a, b}, cfg)
	if a.Packet || b.Packet {
		t.Errorf("adjacent spans marked packet: a=%v b=%v", a.Packet, b.Packet)
	}
	// One nanosecond of genuine overlap flips both.
	c := mkBurst(0, aEnd+cfg.Lead-1, bigVol, false, 8)
	Detect([]*PlannedBurst{a, c}, cfg)
	if !a.Packet || !c.Packet {
		t.Errorf("1 ns overlap not detected: a=%v c=%v", a.Packet, c.Packet)
	}
}

func TestDetectFreshOverlapGoesPacket(t *testing.T) {
	cfg := DefaultDetectorConfig()
	f := mkBurst(0, 10*sim.Millisecond, bigVol, true, 56)
	p := mkBurst(1, f.At+f.Drain/2, bigVol, false, 8)
	Detect([]*PlannedBurst{f, p}, cfg)
	if !f.Packet || !p.Packet {
		t.Errorf("fresh overlap not packet: fresh=%v persistent=%v", f.Packet, p.Packet)
	}
}

func TestDetectDepthEscalation(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// Depth-1 concurrent persistent bursts on distinct servers stay fluid;
	// one more concurrent burst escalates the whole set.
	mk := func(n int) []*PlannedBurst {
		plan := make([]*PlannedBurst, n)
		for i := range plan {
			plan[i] = mkBurst(i, 10*sim.Millisecond+sim.Time(i)*10*sim.Microsecond, bigVol, false, 8)
		}
		return plan
	}
	below := mk(cfg.Depth - 1)
	Detect(below, cfg)
	for i, b := range below {
		if b.Packet {
			t.Errorf("below-depth burst %d marked packet", i)
		}
	}
	at := mk(cfg.Depth)
	Detect(at, cfg)
	for i, b := range at {
		if !b.Packet {
			t.Errorf("at-depth burst %d not packet", i)
		}
	}
}

func TestDetectSubcriticalNeverPacket(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// Tiny bursts below the rate threshold can never register as bursty;
	// they neither join nor trigger episodes even under heavy overlap.
	plan := []*PlannedBurst{
		mkBurst(0, 10*sim.Millisecond, 10_000, false, 4),
		mkBurst(0, 10*sim.Millisecond+10*sim.Microsecond, 10_000, false, 4),
		mkBurst(1, 10*sim.Millisecond, 10_000, true, 56),
	}
	for i, b := range plan {
		if !b.Subcritical {
			t.Fatalf("test setup: burst %d not subcritical", i)
		}
	}
	if eps := Detect(plan, cfg); len(eps) != 0 {
		t.Fatalf("subcritical bursts produced %d episodes", len(eps))
	}
}

func TestDetectDeterministicAcrossOrder(t *testing.T) {
	cfg := DefaultDetectorConfig()
	// The plan arrives in per-server order from the driver; Detect must
	// produce identical flags regardless of slice order (workers build plans
	// rack-locally, so any order sensitivity would leak scheduling into the
	// dataset).
	build := func() []*PlannedBurst {
		return []*PlannedBurst{
			mkBurst(0, 10*sim.Millisecond, bigVol, false, 8),
			mkBurst(1, 10500*sim.Microsecond, bigVol, false, 8),
			mkBurst(0, 11*sim.Millisecond, bigVol, false, 8),
			mkBurst(2, 30*sim.Millisecond, bigVol, true, 56),
			mkBurst(3, 30200*sim.Microsecond, bigVol, false, 8),
			mkBurst(4, 60*sim.Millisecond, bigVol, false, 8),
		}
	}
	fwd := build()
	Detect(fwd, cfg)
	rev := build()
	revView := make([]*PlannedBurst, len(rev))
	for i := range rev {
		revView[i] = rev[len(rev)-1-i]
	}
	Detect(revView, cfg)
	for i := range fwd {
		if fwd[i].Packet != rev[i].Packet {
			t.Errorf("burst %d: packet=%v forward but %v reversed", i, fwd[i].Packet, rev[i].Packet)
		}
	}
}

func TestDrawBurstsDeterministic(t *testing.T) {
	prof := workload.Profile{BurstsPerSec: 20, VolumeMedian: 1.4e6, VolumeSigma: 0.75, FanIn: 12}
	a := workload.DrawBursts(prof, sim.Second, sim.NewRNG(7).Fork(3))
	b := workload.DrawBursts(prof, sim.Second, sim.NewRNG(7).Fork(3))
	if len(a) == 0 {
		t.Fatal("no bursts drawn")
	}
	if len(a) != len(b) {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// ---- fluid queue walker ----

func TestWalkConservesBytes(t *testing.T) {
	const drain = 1.5625e9 // 12.5 Gb/s in bytes/s
	deltas := []rateDelta{
		{at: 0, bps: 0.3 * drain}, {at: 100 * sim.Millisecond, bps: -0.3 * drain}, // background
		{at: 20 * sim.Millisecond, bps: drain}, {at: 22 * sim.Millisecond, bps: -drain}, // burst
	}
	w := walk(deltas, drain, 100*sim.Millisecond, 10*sim.Millisecond, sim.Millisecond, 50)
	in := 0.3*drain*0.1 + drain*0.002
	got := w.pre + w.post
	for _, v := range w.out {
		got += v
	}
	if relDiff := math.Abs(got-in) / in; relDiff > 1e-6 {
		t.Fatalf("walker lost bytes: in %.0f out %.0f", in, got)
	}
	// The burst overlaps background, so arrivals exceed the drain rate and
	// some of its bytes defer past the nominal 2 ms: backlog must be seen.
	if w.peak <= 0 {
		t.Error("overlapping burst produced no backlog")
	}
}

func TestWalkBinsToGrid(t *testing.T) {
	const drain = 1e9
	// A sub-drain trickle entirely inside bucket 5.
	deltas := []rateDelta{
		{at: 15 * sim.Millisecond, bps: 0.5 * drain},
		{at: 16 * sim.Millisecond, bps: -0.5 * drain},
	}
	w := walk(deltas, drain, 100*sim.Millisecond, 10*sim.Millisecond, sim.Millisecond, 20)
	for k, v := range w.out {
		if k == 5 {
			want := 0.5 * drain * 0.001
			if math.Abs(v-want) > 1 {
				t.Errorf("bucket 5 = %.0f, want %.0f", v, want)
			}
			continue
		}
		if v != 0 {
			t.Errorf("bucket %d = %.0f, want 0", k, v)
		}
	}
	if w.pre != 0 || w.post != 0 {
		t.Errorf("pre=%.0f post=%.0f, want 0", w.pre, w.post)
	}
	if w.peak != 0 {
		t.Errorf("sub-drain trickle produced backlog %.0f", w.peak)
	}
}

func TestWalkPreAndPost(t *testing.T) {
	const drain = 1e9
	deltas := []rateDelta{
		{at: 0, bps: 0.25 * drain},
		{at: 40 * sim.Millisecond, bps: -0.25 * drain},
	}
	w := walk(deltas, drain, 40*sim.Millisecond, 10*sim.Millisecond, sim.Millisecond, 20)
	// 10 ms of trickle drains before the grid opens (10-30 ms), 10 ms after.
	want := 0.25 * drain * 0.010
	if math.Abs(w.pre-want) > 1 {
		t.Errorf("pre = %.0f, want %.0f", w.pre, want)
	}
	if math.Abs(w.post-want) > 1 {
		t.Errorf("post = %.0f, want %.0f", w.post, want)
	}
}

// TestZeroLoadRackStaysFluid runs a whole rack whose servers draw no bursts:
// the detector must never trip, and the run must still collect cleanly with
// every sample zero.
func TestZeroLoadRackStaysFluid(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Remotes: 8, Seed: 11})
	profiles := make([]workload.Profile, 4)
	for i := range profiles {
		profiles[i] = workload.Profile{Name: "idle", FanIn: 2}
	}
	res, err := SimulateRack(rack, profiles, rack.RNG.Fork(0x10AD), Config{
		Sampler: core.Config{Interval: sim.Millisecond, Buckets: 50, CountFlows: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PacketBursts != 0 || res.Stats.Episodes != 0 {
		t.Errorf("zero-load rack tripped the detector: %+v", res.Stats)
	}
	if res.Sync == nil {
		t.Fatal("no aligned run")
	}
	for _, sr := range res.Sync.Servers {
		for i, v := range sr.In {
			if v != 0 {
				t.Fatalf("server %d sample %d = %g, want 0", sr.Port, i, v)
			}
		}
	}
}

// TestHybridRackSmoke runs one busy mixed rack end to end on the hybrid path
// and sanity-checks the outputs the analysis consumes.
func TestHybridRackSmoke(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Remotes: 32, Seed: 42})
	profiles := make([]workload.Profile, 8)
	for i := range profiles {
		profiles[i] = workload.Catalog[i%len(workload.Catalog)].Profile.Scale(1.3)
	}
	res, err := SimulateRack(rack, profiles, rack.RNG.Fork(0x10AD), Config{
		Sampler: core.Config{Interval: sim.Millisecond, Buckets: 200, CountFlows: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FluidBursts == 0 {
		t.Error("busy rack ran everything packet-level (fluid path untested)")
	}
	var total float64
	for _, sr := range res.Sync.Servers {
		for _, v := range sr.In {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("hybrid run recorded no ingress bytes")
	}
	d := res.After
	d.EnqueuedBytes -= res.Before.EnqueuedBytes
	if d.EnqueuedBytes <= 0 {
		t.Errorf("switch counters did not move: %+v", d)
	}
	if res.PeakQueueBytes <= 0 {
		t.Error("no peak queue estimate")
	}
}
