// Package fluid implements the hybrid-fidelity fast path: between
// "interesting" epochs a rack advances in closed form — per-host offered
// load from the workload profiles, steady-state queueing from the switch
// parameters, transport at its congestion equilibrium — and only when the
// burst detector trips does the existing segment-level engine run, through
// the episode, against state primed from the fluid model.
//
// The split is exact where the paper's mechanisms live and approximate where
// they do not: any burst that can contend (overlap another burst) or collide
// in slow start (fresh-connection incast) runs on the segment engine, so
// buffer contention, DT threshold collapse, ECN timing, and loss are
// packet-accurate; lone persistent-connection bursts and smooth background
// load — which the full engine shows to be loss-free — are accounted
// analytically.
package fluid

import (
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DetectorConfig parameterizes the burst detector deciding which scheduled
// bursts need packet fidelity.
type DetectorConfig struct {
	// RateThreshold mirrors analysis.Options.BurstThreshold: a burst whose
	// entire wire volume cannot push a single sampling bucket past this
	// utilization fraction is subcritical — it can never register as a
	// burst sample, so it never triggers packet fidelity.
	RateThreshold float64
	// Lead is slack added before a burst's estimated span when testing for
	// overlap with other bursts (slow-start ramp before the flight reaches
	// line rate).
	Lead sim.Time
	// Tail is slack after the estimated line-rate drain (residual queue
	// occupancy while DCTCP bleeds the standing queue back down).
	Tail sim.Time
	// Depth is the concurrent-burst count at which an overlap cluster goes
	// packet-level regardless of composition: enough simultaneous standing
	// queues to draw the shared pool down and move the DT thresholds.
	Depth int
}

// DefaultDetectorConfig uses the analysis burst threshold (50% of a bucket)
// and slack on the scale bursts actually couple through the shared buffer:
// the queue drains to empty within ~100 µs of a burst ending (the standing
// queue is held near the 120 KB ECN threshold, ~77 µs at 12.5 Gb/s), so two
// bursts further apart than that never contend for buffer even when the
// 1 ms analysis grid bins them as concurrent — the fluid path reproduces
// grid-level concurrency by construction.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		RateThreshold: 0.5,
		Lead:          100 * sim.Microsecond,
		Tail:          250 * sim.Microsecond,
		Depth:         3,
	}
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	d := DefaultDetectorConfig()
	if c.RateThreshold <= 0 {
		c.RateThreshold = d.RateThreshold
	}
	if c.Lead <= 0 {
		c.Lead = d.Lead
	}
	if c.Tail <= 0 {
		c.Tail = d.Tail
	}
	if c.Depth <= 0 {
		c.Depth = d.Depth
	}
	return c
}

// PlannedBurst is one pre-drawn burst with the derived quantities the
// detector and the fluid accountant work from.
type PlannedBurst struct {
	Server int
	workload.BurstEvent
	Fresh bool
	Fan   int

	// WireBytes is the burst volume in wire bytes after the per-connection
	// split ServerLoad applies (payload plus per-segment framing).
	WireBytes int64
	// PerConn is the per-connection payload split.
	PerConn int64
	// Drain is the estimated time the burst occupies the downlink when it
	// arrives faster than the server's line rate.
	Drain sim.Time
	// Subcritical marks bursts too small to ever register as bursty.
	Subcritical bool

	// Packet is set by Detect when the burst must run on the segment engine.
	Packet bool
}

// Span returns the interval during which the burst can interact with other
// bursts under the detector's slack.
func (b *PlannedBurst) Span(cfg DetectorConfig) (start, end sim.Time) {
	return b.At - cfg.Lead, b.At + b.Drain + cfg.Tail
}

// PlanBurst derives a scheduled burst's detector quantities for a server
// with the given line rate, sampled at interval.
func PlanBurst(ev workload.BurstEvent, server, fan int, fresh bool, lineRateBps int64, interval sim.Time, cfg DetectorConfig) *PlannedBurst {
	cfg = cfg.withDefaults()
	if fan < 1 {
		fan = 1
	}
	per := int64(ev.Volume / float64(fan))
	if per < 1 {
		per = 1
	}
	segs := (per + netsim.DefaultMSS - 1) / netsim.DefaultMSS
	wire := int64(fan) * (per + segs*netsim.HeaderBytes)
	drainBps := float64(lineRateBps) / 8
	b := &PlannedBurst{
		Server:     server,
		BurstEvent: ev,
		Fresh:      fresh,
		Fan:        fan,
		WireBytes:  wire,
		PerConn:    per,
		Drain:      sim.Time(float64(wire) / drainBps * float64(sim.Second)),
	}
	bucketCap := drainBps * interval.Seconds()
	b.Subcritical = float64(wire) < cfg.RateThreshold*bucketCap
	return b
}

// Episode is one maximal cluster of overlapping burst spans containing at
// least one packet-fidelity burst. Bursts lists only the cluster's packet
// members (fluid-demoted overlap partners are accounted analytically).
type Episode struct {
	Start, End sim.Time
	Bursts     []int // indices into the plan passed to Detect
}

// Detect decides fidelity per burst and returns the packet episodes in start
// order. A burst needs the segment engine only where the fluid model's
// decoupling assumptions break:
//
//   - it overlaps another burst headed to the same server — a shared egress
//     queue, where deferral, ECN timing, and loss are joint;
//   - it is, or overlaps, a fresh-connection burst that overlaps anything —
//     incast slow-start flights colliding with concurrent traffic;
//   - it is active while >= Depth bursts run concurrently — enough standing
//     queues to draw down the shared pool and collapse the DT thresholds.
//
// Overlapping persistent bursts on distinct servers below that depth stay
// fluid: their queues are disjoint, the shared pool is nowhere near
// exhaustion, and the analysis-grid concurrency they produce (Fig 9) falls
// out of binning their fluid bytes into the same samples. Subcritical bursts
// (too small to ever register as bursty) neither trigger nor join episodes.
// The result is a pure function of the plan — independent of engine state,
// worker count, or invocation order.
func Detect(plan []*PlannedBurst, cfg DetectorConfig) []Episode {
	cfg = cfg.withDefaults()
	var idx []int
	for i, b := range plan {
		b.Packet = false
		if !b.Subcritical {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, _ := plan[idx[a]].Span(cfg)
		sb, _ := plan[idx[b]].Span(cfg)
		if sa != sb {
			return sa < sb
		}
		return idx[a] < idx[b]
	})

	// Sweep in span order keeping the set of bursts whose spans are still
	// open. Every active burst's span genuinely overlaps the incoming one
	// (active.start <= new.start < active.end), so pairwise rules apply
	// directly; the transitive cluster is tracked only to delimit episodes.
	var active []int
	for _, i := range idx {
		s, e := plan[i].Span(cfg)
		live := active[:0]
		for _, j := range active {
			if _, je := plan[j].Span(cfg); je > s {
				live = append(live, j)
			}
		}
		active = append(live, i)
		n := plan[i]
		for _, j := range active[:len(active)-1] {
			o := plan[j]
			if o.Server == n.Server || o.Fresh || n.Fresh {
				o.Packet = true
				n.Packet = true
			}
		}
		if len(active) >= cfg.Depth {
			for _, j := range active {
				plan[j].Packet = true
			}
		}
		_ = e
	}

	// Group packet bursts into episodes by transitive span overlap.
	var episodes []Episode
	var cluster []int
	var cStart, cEnd sim.Time
	flush := func() {
		if len(cluster) > 0 {
			episodes = append(episodes, Episode{Start: cStart, End: cEnd, Bursts: cluster})
		}
	}
	for _, i := range idx {
		if !plan[i].Packet {
			continue
		}
		s, e := plan[i].Span(cfg)
		if len(cluster) > 0 && s <= cEnd {
			cluster = append(cluster, i)
			if e > cEnd {
				cEnd = e
			}
			continue
		}
		flush()
		cluster = []int{i}
		cStart, cEnd = s, e
	}
	flush()
	return episodes
}
