package fluid

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/transport"
	"repro/internal/workload"
)

// DefaultWarmup is the hybrid window lead: comfortably past the controller's
// scheduling lead and the pre-dialed pools' handshakes, but an order of
// magnitude shorter than the 150 ms the full-fidelity path spends letting
// congestion state adapt — the hybrid path primes that state in closed form
// instead of simulating its way there.
const DefaultWarmup = 20 * sim.Millisecond

// Config parameterizes one hybrid rack-hour.
type Config struct {
	// Sampler is the SyncMillisampler run configuration.
	Sampler core.Config
	// Detector tunes the burst detector.
	Detector DetectorConfig
	// Warmup is the window lead (default DefaultWarmup).
	Warmup sim.Time
}

// Stats reports how the detector split the window.
type Stats struct {
	PacketBursts int
	FluidBursts  int
	Episodes     int
}

// Result is one hybrid rack-hour: the aligned SyncRun plus the switch
// counter movement, directly comparable with the full-fidelity outputs.
type Result struct {
	Sync          *core.SyncRun
	Before, After switchsim.QueueStats
	// PeakQueueBytes is the highest single-queue occupancy: the packet
	// episodes' measured peak or the fluid backlog estimate, whichever is
	// larger.
	PeakQueueBytes int
	Stats          Stats
}

// serverState is one server's hybrid bookkeeping.
type serverState struct {
	prof workload.Profile
	rate int64 // line rate, bps

	pool       []*transport.Conn
	poolHashes []uint64
	next       int // round-robin cursor, as in ServerLoad

	bgHashes  []uint64
	bgWireBps float64  // background wire bytes/s
	bgSegBps  float64  // background segments/s
	bgPhase   sim.Time // first background tick, mirroring ServerLoad's desync draw

	plan []*PlannedBurst
	// freshPicks/freshHashes index plan: remote endpoints pre-drawn for
	// fresh packet bursts, synthetic sketch hashes for fresh fluid bursts.
	freshPicks  map[int][]int
	freshHashes map[int][]uint64
}

// SimulateRack runs one rack-hour at hybrid fidelity: pre-draws every
// server's burst schedule, lets the detector pick the packet episodes,
// simulates only those on the segment engine (with transport primed to
// equilibrium), and accounts everything else — background load and lone
// persistent bursts — through the fluid model straight into the sampler
// buckets and switch counters.
func SimulateRack(rack *testbed.Rack, profiles []workload.Profile, rng *sim.RNG, cfg Config) (*Result, error) {
	if len(profiles) != len(rack.Servers) {
		return nil, fmt.Errorf("fluid: %d profiles for %d servers (need one per server)",
			len(profiles), len(rack.Servers))
	}
	cfg.Detector = cfg.Detector.withDefaults()
	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = DefaultWarmup
	}

	ctrl := core.NewController(rack, cfg.Sampler)
	scfg := ctrl.Samplers()[0].Config()
	interval, buckets := scfg.Interval, scfg.Buckets
	windowEnd := warmup + scfg.Window()
	harvestAt := ctrl.HarvestAt(warmup)

	swCfg := rack.Switch.Config()
	baseRTT := 2 * (rack.Cfg.FabricDelay + swCfg.DownlinkProp)
	eqWindow := transport.EquilibriumWindow(swCfg.DownlinkRateBps, baseRTT, swCfg.ECNThreshold)

	// Per-server setup: dial and prime the persistent pools, synthesize the
	// background flows, pre-draw the whole window's burst schedule.
	states := make([]*serverState, len(profiles))
	var plan []*PlannedBurst
	for i, p := range profiles {
		srng := rng.Fork(uint64(i))
		st := &serverState{
			prof:        p,
			rate:        rack.Servers[i].LineRateBps(),
			freshPicks:  map[int][]int{},
			freshHashes: map[int][]uint64{},
		}
		dst := rack.Servers[i].ID
		fan := p.FanIn
		if fan < 1 {
			fan = 1
		}
		if !p.FreshConns {
			for j := 0; j < fan; j++ {
				ep := rack.RemoteEPs[srng.Intn(len(rack.RemoteEPs))]
				c := ep.Connect(dst, 80, transport.Options{})
				c.Prime(eqWindow)
				st.pool = append(st.pool, c)
				st.poolHashes = append(st.poolHashes, core.FlowHash(c.Flow()))
			}
		}
		for j := 0; j < workload.BackgroundPoolSize; j++ {
			rid := srng.Intn(len(rack.RemoteEPs))
			f := netsim.FlowKey{
				Src:     testbed.RemoteIDBase + netsim.HostID(rid),
				Dst:     dst,
				SrcPort: uint16(40000 + j),
				DstPort: 81,
			}
			st.bgHashes = append(st.bgHashes, core.FlowHash(f))
		}
		// Background offered load in wire terms, mirroring ServerLoad's
		// 2 ms tick split over the background pool.
		bgTick := int64(p.BackgroundBytesPerSec(st.rate) * workload.BackgroundTick.Seconds())
		if bgTick > 0 {
			per := bgTick / workload.BackgroundPoolSize
			if per < 1 {
				per = 1
			}
			segs := (per + netsim.DefaultMSS - 1) / netsim.DefaultMSS
			wire := workload.BackgroundPoolSize * (per + segs*netsim.HeaderBytes)
			tickSec := workload.BackgroundTick.Seconds()
			st.bgWireBps = float64(wire) / tickSec
			st.bgSegBps = float64(workload.BackgroundPoolSize*segs) / tickSec
		}
		for _, ev := range workload.DrawBursts(p, harvestAt, srng) {
			b := PlanBurst(ev, i, fan, p.FreshConns, st.rate, interval, cfg.Detector)
			st.plan = append(st.plan, b)
			plan = append(plan, b)
			if p.FreshConns {
				bi := len(st.plan) - 1
				picks := make([]int, fan)
				for j := range picks {
					picks[j] = srng.Intn(len(rack.RemoteEPs))
				}
				st.freshPicks[bi] = picks
			}
		}
		if st.bgWireBps > 0 {
			// The background pool transmits only at its 2 ms pacing ticks, so
			// its connections appear in roughly every other 1 ms sample — not
			// all of them. Drawing the tick phase here (after the burst
			// schedule, so the plan is unchanged) lets the fluid accountant
			// credit the pool's hashes with the same tick granularity.
			st.bgPhase = sim.Time(srng.Int63n(int64(workload.BackgroundTick)))
		}
		states[i] = st
	}

	episodes := Detect(plan, cfg.Detector)
	res := &Result{Stats: Stats{Episodes: len(episodes)}}

	// Schedule the packet episodes. Bursts that cannot touch the sampling
	// window or the counter span are demoted to fluid accounting even when
	// the detector flagged them (their episode partner may still straddle
	// the boundary and stays packet-simulated).
	for si, st := range states {
		for bi, b := range st.plan {
			_, spanEnd := b.Span(cfg.Detector)
			packet := b.Packet && spanEnd > warmup && b.At < windowEnd
			if !packet {
				res.Stats.FluidBursts++
				if b.Fresh && !b.Subcritical {
					// The sketch still needs this burst's fan-in.
					st.freshHashes[bi] = syntheticHashes(rack.Servers[si].ID, bi, b.Fan)
				}
				b.Packet = false
				continue
			}
			res.Stats.PacketBursts++
			st := st
			b := b
			picks := st.freshPicks[bi]
			dst := rack.Servers[si].ID
			rack.Eng.At(b.At, func() {
				if b.Fresh {
					for _, ri := range picks {
						c := rack.RemoteEPs[ri].Connect(dst, 80, transport.Options{})
						c.Send(b.PerConn)
						c.OnDrain = c.Close
					}
					return
				}
				for j := 0; j < b.Fan; j++ {
					st.pool[st.next].Send(b.PerConn)
					st.next = (st.next + 1) % len(st.pool)
				}
			})
		}
	}

	if err := ctrl.Schedule(warmup); err != nil {
		return nil, err
	}
	rack.Eng.RunUntil(warmup)
	res.Before = rack.Switch.Totals()
	for _, s := range ctrl.Samplers() {
		s.MarkStart()
	}

	// Packet episodes play out on the segment engine; the engine skips the
	// quiet spans between them in O(1).
	rack.Eng.RunUntil(windowEnd)

	// Fold the fluid traffic in before the harvest reads the samplers.
	fluidPeak := 0
	for si, st := range states {
		p := applyFluid(rack, ctrl.Samplers()[si], st, si, warmup, harvestAt, interval, buckets, eqWindow)
		if p > fluidPeak {
			fluidPeak = p
		}
	}

	rack.Eng.RunUntil(harvestAt + sim.Millisecond)
	res.After = rack.Switch.Totals()
	if !ctrl.Done() {
		rack.Eng.RunUntil(ctrl.HarvestDeadline(warmup) + sim.Millisecond)
	}
	res.PeakQueueBytes = rack.Switch.PeakQueueBytes()
	if fluidPeak > res.PeakQueueBytes {
		res.PeakQueueBytes = fluidPeak
	}

	sr, err := ctrl.Result()
	if err != nil {
		return nil, err
	}
	res.Sync = sr
	return res, nil
}

// applyFluid accounts one server's analytic traffic — background load plus
// its fluid bursts — into the sampler buckets and the switch counters, and
// returns the server's fluid peak-backlog estimate.
func applyFluid(rack *testbed.Rack, s *core.Sampler, st *serverState, port int,
	warmup, harvestAt, interval sim.Time, buckets int, eqWindow int64) int {
	drainBps := float64(st.rate) / 8
	var deltas []rateDelta
	if st.bgWireBps > 0 {
		deltas = append(deltas,
			rateDelta{at: 0, bps: st.bgWireBps},
			rateDelta{at: harvestAt, bps: -st.bgWireBps})
	}
	type fluidBurst struct {
		b      *PlannedBurst
		hashes []uint64
	}
	var fb []fluidBurst
	totalSegs, totalWire := 0.0, 0.0
	for bi, b := range st.plan {
		if b.Packet {
			continue
		}
		// A fluid burst arrives at the downlink's drain rate: the remotes
		// can deliver faster, but the transport's equilibrium window keeps
		// the standing queue near the ECN threshold rather than letting the
		// whole volume pile in — the backlog the walker tracks is then only
		// what competing fluid traffic defers.
		deltas = append(deltas,
			rateDelta{at: b.At, bps: drainBps},
			rateDelta{at: b.At + b.Drain, bps: -drainBps})
		hashes := st.poolHashes
		if b.Fresh {
			hashes = st.freshHashes[bi]
		}
		fb = append(fb, fluidBurst{b: b, hashes: hashes})
		segs := float64(b.Fan) * float64((b.PerConn+netsim.DefaultMSS-1)/netsim.DefaultMSS)
		totalSegs += segs
		totalWire += float64(b.WireBytes)
	}
	w := walk(deltas, drainBps, harvestAt, warmup, interval, buckets)

	// Sampler: ingress bytes, the ACK echo on egress, and the connection
	// sketch. Retransmissions stay zero — the fluid fraction is the traffic
	// the full engine shows to be loss-free.
	ackPerByte := float64(netsim.HeaderBytes) / float64(2*netsim.DefaultMSS)
	for k, v := range w.out {
		if v <= 0 {
			continue
		}
		s.AccountBulk(core.CtrIn, k, uint64(v+0.5))
		s.AccountBulk(core.CtrOut, k, uint64(v*ackPerByte+0.5))
		// The background transport pool is reused tick to tick, so its
		// connections register only in samples containing a pacing tick —
		// crediting every output bucket would overstate conns-in-burst by
		// ~BackgroundPoolSize/2 (the hybrid path's former worst headline
		// error, 18% on Fig 8).
		if len(st.bgHashes) > 0 && st.bgWireBps > 0 &&
			bgTickInBucket(st.bgPhase, warmup+sim.Time(k)*interval, interval) {
			s.AccountConns(k, st.bgHashes)
		}
	}
	markFrac := transport.EquilibriumMarkFraction(eqWindow, netsim.DefaultMSS)
	var markedBytes, markedSegs float64
	bucketOf := func(t sim.Time) int { return int((t - warmup) / interval) }
	swCfg := rack.Switch.Config()
	peak := int(w.peak + 0.5)
	for _, f := range fb {
		first, last := bucketOf(f.b.At), bucketOf(f.b.At+f.b.Drain)
		for k := first; k <= last; k++ {
			if k < 0 || k >= buckets {
				continue
			}
			s.AccountConns(k, f.hashes)
		}
		// ECN: a persistent DCTCP burst longer than one equilibrium window
		// closes the feedback loop and sees the equilibrium mark fraction;
		// anything shorter is sub-RTT from the transport's perspective and
		// escapes marking (the paper's core observation).
		if !f.b.Fresh && f.b.WireBytes > eqWindow {
			mb := markFrac * float64(f.b.WireBytes)
			markedBytes += mb
			markedSegs += mb / float64(netsim.DefaultMSS+netsim.HeaderBytes)
			n := last - first + 1
			for k := first; k <= last; k++ {
				if k < 0 || k >= buckets {
					continue
				}
				s.AccountBulk(core.CtrInECN, k, uint64(mb/float64(n)+0.5))
			}
			// The standing queue DCTCP holds at the marking threshold.
			if q := swCfg.ECNThreshold + int(w.peak); q > peak {
				peak = q
			}
		}
	}

	// Switch counters over [warmup, harvestAt] — the same span the
	// full-fidelity path's Before/After snapshots delimit. Segment counts
	// are estimated from the planned mix's mean wire segment size.
	total := w.total()
	if total > 0 {
		span := (harvestAt - warmup).Seconds()
		segs := st.bgSegBps * span
		if totalWire > 0 {
			// Fluid bursts' share of the drained bytes, at their seg size.
			burstBytes := total - st.bgWireBps*span
			if burstBytes > 0 {
				segs += totalSegs * burstBytes / totalWire
			}
		}
		rack.Switch.AccountFluid(port, switchsim.QueueStats{
			EnqueuedBytes:    int64(total + 0.5),
			EnqueuedSegments: int64(segs + 0.5),
			DequeuedBytes:    int64(total + 0.5),
			ECNMarkedBytes:   int64(markedBytes + 0.5),
			ECNMarkedSegs:    int64(markedSegs + 0.5),
			PeakBytes:        peak,
		})
	}
	return peak
}

// bgTickInBucket reports whether a background pacing tick (first at phase,
// then every workload.BackgroundTick) lands inside [start, start+interval).
func bgTickInBucket(phase, start, interval sim.Time) bool {
	if start+interval <= phase {
		return false
	}
	off := (start - phase) % workload.BackgroundTick
	if off < 0 {
		off += workload.BackgroundTick
	}
	next := (workload.BackgroundTick - off) % workload.BackgroundTick
	return next < interval
}

// syntheticHashes fabricates sketch hashes for a fresh fluid burst's fan-in:
// the connections are never dialed, but the per-bucket connection estimate
// must still see them.
func syntheticHashes(dst netsim.HostID, burst, fan int) []uint64 {
	h := make([]uint64, fan)
	for j := 0; j < fan; j++ {
		f := netsim.FlowKey{
			Src:     testbed.RemoteIDBase + netsim.HostID(j),
			Dst:     dst,
			SrcPort: uint16(50000 + burst),
			DstPort: 80,
		}
		h[j] = core.FlowHash(f)
	}
	return h
}
