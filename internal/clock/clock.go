// Package clock models host wall clocks for the simulator.
//
// Millisampler timestamps samples with the host's own clock, and
// SyncMillisampler relies on all hosts in a rack agreeing on time to roughly
// the sampling interval. In production this is achieved with one level of NTP
// servers backed by stable-clock appliances using interleaved NTP, giving
// sub-millisecond precision (paper §4.5). This package models exactly that:
// each host clock reads the global simulation time plus a bounded offset and
// a small frequency drift, with periodic NTP-style corrections pulling the
// offset back toward zero.
package clock

import (
	"repro/internal/sim"
)

// WallTime is a host-observed timestamp in nanoseconds. It shares the epoch
// of sim.Time but differs by the host's synchronization error.
type WallTime int64

// Host is one machine's wall clock.
type Host struct {
	offset   int64   // current offset from true time, ns
	driftPPB float64 // frequency error, parts per billion
	lastSync sim.Time
}

// SyncModel describes the quality of a fleet's time synchronization.
type SyncModel struct {
	// MaxOffset bounds the absolute offset right after an NTP correction.
	MaxOffset sim.Time
	// MaxDriftPPB bounds the absolute frequency error between corrections.
	MaxDriftPPB float64
	// SyncInterval is how often the NTP daemon disciplines the clock.
	SyncInterval sim.Time
}

// DefaultSyncModel reflects the paper's deployment: interleaved NTP through
// one level of servers to dedicated appliances, sub-millisecond precision.
// We use a 200 µs offset bound, comfortably under the 1 ms sampling interval.
func DefaultSyncModel() SyncModel {
	return SyncModel{
		MaxOffset:    200 * sim.Microsecond,
		MaxDriftPPB:  50_000, // 50 ppm worst-case crystal before discipline
		SyncInterval: 16 * sim.Second,
	}
}

// PerfectSyncModel returns a model with no error, useful in unit tests that
// should not depend on clock noise.
func PerfectSyncModel() SyncModel { return SyncModel{} }

// NewHost creates a host clock with randomized offset and drift drawn from
// the model using rng.
func NewHost(m SyncModel, rng *sim.RNG) *Host {
	h := &Host{}
	if m.MaxOffset > 0 {
		h.offset = rng.Int63n(int64(2*m.MaxOffset)) - int64(m.MaxOffset)
	}
	if m.MaxDriftPPB > 0 {
		h.driftPPB = (rng.Float64()*2 - 1) * m.MaxDriftPPB
	}
	return h
}

// Now converts true simulation time to this host's wall clock.
func (h *Host) Now(trueNow sim.Time) WallTime {
	elapsed := float64(trueNow - h.lastSync)
	drift := elapsed * h.driftPPB / 1e9
	return WallTime(int64(trueNow) + h.offset + int64(drift))
}

// Offset returns the instantaneous clock error at trueNow.
func (h *Host) Offset(trueNow sim.Time) sim.Time {
	return sim.Time(int64(h.Now(trueNow)) - int64(trueNow))
}

// Resync models an NTP correction at trueNow: the accumulated drift is folded
// into the offset and the offset is pulled within the model bound.
func (h *Host) Resync(m SyncModel, trueNow sim.Time, rng *sim.RNG) {
	h.offset = int64(h.Offset(trueNow))
	h.lastSync = trueNow
	if m.MaxOffset > 0 {
		bound := int64(m.MaxOffset)
		// Interleaved NTP steps the clock to within the bound rather than
		// slewing; residual error is uniform within the bound.
		h.offset = rng.Int63n(2*bound) - bound
	} else {
		h.offset = 0
	}
	if m.MaxDriftPPB > 0 {
		h.driftPPB = (rng.Float64()*2 - 1) * m.MaxDriftPPB
	} else {
		h.driftPPB = 0
	}
}

// StartDaemon schedules periodic Resync events on the engine, mirroring the
// host NTP daemon. It is a no-op for models with no sync interval.
func (h *Host) StartDaemon(e *sim.Engine, m SyncModel, rng *sim.RNG) {
	if m.SyncInterval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		h.Resync(m, e.Now(), rng)
		e.After(m.SyncInterval, tick)
	}
	e.After(m.SyncInterval, tick)
}
