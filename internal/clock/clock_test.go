package clock

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPerfectClockIsTrue(t *testing.T) {
	h := NewHost(PerfectSyncModel(), sim.NewRNG(1))
	for _, now := range []sim.Time{0, sim.Second, sim.Hour} {
		if got := h.Now(now); int64(got) != int64(now) {
			t.Errorf("perfect clock Now(%v) = %v", now, got)
		}
	}
}

func TestOffsetWithinBound(t *testing.T) {
	m := DefaultSyncModel()
	rng := sim.NewRNG(7)
	for i := 0; i < 100; i++ {
		h := NewHost(m, rng)
		off := h.Offset(0)
		if off > m.MaxOffset || off < -m.MaxOffset {
			t.Fatalf("initial offset %v exceeds bound %v", off, m.MaxOffset)
		}
	}
}

func TestDriftAccumulates(t *testing.T) {
	h := &Host{driftPPB: 1000} // 1 ppm fast
	// After 1 second, a 1 ppm clock is 1 µs ahead.
	got := h.Offset(sim.Second)
	if got != sim.Microsecond {
		t.Errorf("offset after 1s at 1ppm = %v, want 1µs", got)
	}
}

func TestResyncBoundsError(t *testing.T) {
	m := DefaultSyncModel()
	rng := sim.NewRNG(9)
	h := NewHost(m, rng)
	h.driftPPB = m.MaxDriftPPB // worst case
	now := 10 * sim.Minute
	h.Resync(m, now, rng)
	off := h.Offset(now)
	if off > m.MaxOffset || off < -m.MaxOffset {
		t.Errorf("offset after resync = %v, want within ±%v", off, m.MaxOffset)
	}
}

func TestDaemonKeepsSubMillisecond(t *testing.T) {
	// The property the paper validates in §4.5: host clocks stay aligned to
	// well under the 1 ms sampling interval over long spans.
	m := DefaultSyncModel()
	e := sim.NewEngine()
	rng := sim.NewRNG(11)
	hosts := make([]*Host, 8)
	for i := range hosts {
		hosts[i] = NewHost(m, rng)
		hosts[i].StartDaemon(e, m, rng)
	}
	for step := 0; step < 20; step++ {
		e.RunFor(30 * sim.Second)
		for i, h := range hosts {
			off := h.Offset(e.Now())
			if off > sim.Millisecond || off < -sim.Millisecond {
				t.Fatalf("host %d offset %v at %v exceeds 1ms", i, off, e.Now())
			}
		}
	}
}

func TestOffsetSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		h := NewHost(DefaultSyncModel(), rng)
		now := sim.Time(rng.Int63n(int64(sim.Second)))
		return int64(h.Now(now))-int64(now) == int64(h.Offset(now))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
