package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(50); got != 2 {
		t.Errorf("Quantile(50) = %v", got)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 3, 8, 1, 9, 2, 2, 7})
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points(10) = %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("non-monotone CDF points: %+v", pts)
		}
	}
	if pts[0].Y != 0 || pts[len(pts)-1].Y != 1 {
		t.Errorf("endpoints %v..%v", pts[0].Y, pts[len(pts)-1].Y)
	}
}

func TestCDFQuantileAtInverse(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		// At(Quantile(p)) >= p/100 - 1/n: interpolated quantiles can sit
		// strictly between order statistics, costing at most one step.
		slack := 1/float64(c.N()) + 1e-9
		for _, p := range []float64{10, 25, 50, 75, 90} {
			q := c.Quantile(p)
			if c.At(q) < p/100-slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if b.Min != 1 || b.Max != 10 || b.N != 10 {
		t.Errorf("box = %+v", b)
	}
	if math.Abs(b.Median-5.5) > 1e-9 || math.Abs(b.Mean-5.5) > 1e-9 {
		t.Errorf("median/mean = %v/%v", b.Median, b.Mean)
	}
	if b.P25 >= b.Median || b.Median >= b.P75 || b.P75 >= b.P90 {
		t.Errorf("quartiles out of order: %+v", b)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Median) {
		t.Error("empty summary not NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yPos); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect positive = %v", got)
	}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect negative = %v", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Error("zero-variance correlation not NaN")
	}
	if !math.IsNaN(Pearson(x, x[:3])) {
		t.Error("length mismatch not NaN")
	}
}

func TestBucketed(t *testing.T) {
	b := NewBucketed(2)
	b.Add(0.5, 10)
	b.Add(1.5, 20)
	b.Add(2.5, 30)
	b.Add(5.1, 40)
	sums := b.Summaries()
	if len(sums) != 3 {
		t.Fatalf("buckets = %d", len(sums))
	}
	if sums[0].Lo != 0 || sums[0].Hi != 2 || sums[0].Box.N != 2 {
		t.Errorf("bucket 0 = %+v", sums[0])
	}
	if sums[0].Box.Mean != 15 {
		t.Errorf("bucket 0 mean = %v", sums[0].Box.Mean)
	}
	if sums[2].Lo != 4 || sums[2].Box.N != 1 {
		t.Errorf("bucket 2 = %+v", sums[2])
	}
}

func TestRatioBucketed(t *testing.T) {
	b := NewRatioBucketed(1)
	for i := 0; i < 10; i++ {
		b.Add(0.5, i < 3) // 30% in bucket 0
	}
	b.Add(2.5, true) // 100% in bucket 2
	pts := b.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if math.Abs(pts[0].Ratio-0.3) > 1e-9 || pts[0].N != 10 {
		t.Errorf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Ratio != 1 || pts[1].Lo != 2 {
		t.Errorf("bucket 2 = %+v", pts[1])
	}
}

func TestBucketedPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	NewBucketed(0)
}

func TestAutocorrelation(t *testing.T) {
	// A constant-plus-alternating series has strong negative lag-1 and
	// strong positive lag-2 autocorrelation.
	xs := []float64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	if r := Autocorrelation(xs, 1); r > -0.5 {
		t.Errorf("lag-1 autocorrelation of alternating series = %v", r)
	}
	if r := Autocorrelation(xs, 2); r < 0.5 {
		t.Errorf("lag-2 autocorrelation of alternating series = %v", r)
	}
	if r := Autocorrelation(xs, 0); math.Abs(r-1) > 1e-12 {
		t.Errorf("lag-0 autocorrelation = %v, want 1", r)
	}
	if !math.IsNaN(Autocorrelation(xs, -1)) || !math.IsNaN(Autocorrelation(xs, 99)) {
		t.Error("out-of-range lag not NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{5, 5, 5}, 1)) {
		t.Error("zero-variance autocorrelation not NaN")
	}
}

func TestSummariesSorted(t *testing.T) {
	f := func(keys []uint8) bool {
		b := NewBucketed(3)
		for _, k := range keys {
			b.Add(float64(k), 1)
		}
		sums := b.Summaries()
		los := make([]float64, len(sums))
		for i, s := range sums {
			los[i] = s.Lo
		}
		return sort.Float64sAreSorted(los)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
