package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleCDF() {
	c := stats.NewCDF([]float64{1, 2, 2, 3, 8})
	fmt.Printf("median=%.1f p90=%.1f At(2)=%.1f\n",
		c.Quantile(50), c.Quantile(90), c.At(2))
	// Output: median=2.0 p90=6.0 At(2)=0.6
}

func ExampleRatioBucketed() {
	// "% of bursts with loss" per 2 ms length bucket, the construction
	// behind the paper's Figures 16, 18 and 19.
	rb := stats.NewRatioBucketed(2)
	rb.Add(1.0, false)
	rb.Add(1.5, true)
	rb.Add(5.0, true)
	for _, p := range rb.Points() {
		fmt.Printf("[%.0f,%.0f) %.0f%% of %d\n", p.Lo, p.Hi, 100*p.Ratio, p.N)
	}
	// Output:
	// [0,2) 50% of 2
	// [4,6) 100% of 1
}

func ExampleSummarize() {
	b := stats.Summarize([]float64{4, 1, 3, 2, 5})
	fmt.Printf("min=%v median=%v max=%v\n", b.Min, b.Median, b.Max)
	// Output: min=1 median=3 max=5
}
