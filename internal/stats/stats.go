// Package stats provides the small statistical toolkit the paper's figures
// are built from: empirical CDFs, percentiles, box-plot summaries, bucketed
// grouping, and correlation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution over a fixed sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values (copied).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-th percentile (p in [0,100]).
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(c.sorted, p)
}

// Points renders n evenly spaced (value, fraction) pairs for plotting or
// tabular reports.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1) * 100
		if n == 1 {
			p = 50
		}
		pts = append(pts, Point{X: percentileSorted(c.sorted, p), Y: p / 100})
	}
	return pts
}

// Point is an (x, y) pair in a rendered series.
type Point struct{ X, Y float64 }

// BoxPlot is the five-number summary plus mean used by the diurnal figures.
type BoxPlot struct {
	Min, P25, Median, P75, P90, Max, Mean float64
	N                                     int
}

// Summarize computes a BoxPlot; an empty input yields NaN fields.
func Summarize(xs []float64) BoxPlot {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxPlot{Min: nan, P25: nan, Median: nan, P75: nan, P90: nan, Max: nan, Mean: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxPlot{
		Min:    s[0],
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P90:    percentileSorted(s, 90),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or NaN when undefined.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Autocorrelation returns the lag-k autocorrelation of a series, used to
// quantify how persistent contention is across time within a run (§7.3:
// short-term variation matters because it tracks the buffer available to
// each queue). Returns NaN when undefined.
func Autocorrelation(xs []float64, lag int) float64 {
	if lag < 0 || lag >= len(xs) {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < len(xs); i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// Bucketed groups (key, value) observations into fixed-width key buckets and
// reports a summary per bucket — the construction behind Figures 14, 16, 18
// and 19 (loss or contention versus a bucketed property).
type Bucketed struct {
	Width   float64
	buckets map[int][]float64
}

// NewBucketed creates a grouper with the given bucket width.
func NewBucketed(width float64) *Bucketed {
	if width <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &Bucketed{Width: width, buckets: make(map[int][]float64)}
}

// Add records one observation with bucketing key k.
func (b *Bucketed) Add(k, v float64) {
	b.buckets[int(math.Floor(k/b.Width))] = append(b.buckets[int(math.Floor(k/b.Width))], v)
}

// BucketSummary is one bucket's aggregate.
type BucketSummary struct {
	// Lo and Hi bound the bucket's key range [Lo, Hi).
	Lo, Hi float64
	Box    BoxPlot
}

// Summaries returns per-bucket summaries in ascending key order.
func (b *Bucketed) Summaries() []BucketSummary {
	keys := make([]int, 0, len(b.buckets))
	for k := range b.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]BucketSummary, 0, len(keys))
	for _, k := range keys {
		out = append(out, BucketSummary{
			Lo:  float64(k) * b.Width,
			Hi:  float64(k+1) * b.Width,
			Box: Summarize(b.buckets[k]),
		})
	}
	return out
}

// RatioBucketed groups boolean outcomes by a bucketed key and reports the
// fraction true per bucket — "% of bursts with loss" style series.
type RatioBucketed struct {
	Width float64
	hits  map[int]int
	total map[int]int
}

// NewRatioBucketed creates a ratio grouper with the given bucket width.
func NewRatioBucketed(width float64) *RatioBucketed {
	if width <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &RatioBucketed{Width: width, hits: make(map[int]int), total: make(map[int]int)}
}

// Add records one observation.
func (b *RatioBucketed) Add(k float64, hit bool) {
	i := int(math.Floor(k / b.Width))
	b.total[i]++
	if hit {
		b.hits[i]++
	}
}

// RatioPoint is one bucket's hit fraction.
type RatioPoint struct {
	Lo, Hi float64
	Ratio  float64
	N      int
}

// Points returns per-bucket ratios in ascending key order.
func (b *RatioBucketed) Points() []RatioPoint {
	keys := make([]int, 0, len(b.total))
	for k := range b.total {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]RatioPoint, 0, len(keys))
	for _, k := range keys {
		out = append(out, RatioPoint{
			Lo:    float64(k) * b.Width,
			Hi:    float64(k+1) * b.Width,
			Ratio: float64(b.hits[k]) / float64(b.total[k]),
			N:     b.total[k],
		})
	}
	return out
}
