// Package analysis implements the paper's measurement methodology over
// SyncMillisampler data: burst detection, buffer-contention series, and the
// burst/contention/loss joint classification (paper §5, §6, §8).
package analysis

import (
	"sort"

	"repro/internal/core"
	"repro/internal/switchsim"
)

// Options parameterize the analysis.
type Options struct {
	// BurstThreshold is the utilization fraction above which a sample is
	// bursty. The paper defines a burst as consecutive samples exceeding 50%
	// of line rate, following Zhang et al. (IMC 2017).
	BurstThreshold float64
	// LossLookahead is how many samples past a burst's end retransmitted
	// bytes are still attributed to it. Retransmissions indicate when losses
	// are repaired, not when they occur, so the analysis must look roughly
	// an RTT later (§4.6); at 1 ms sampling and sub-millisecond RTTs two
	// buckets suffice.
	LossLookahead int
	// Alpha is the DT parameter used to convert contention into buffer
	// share (fleet default 1).
	Alpha float64
}

// DefaultOptions mirrors the paper's choices.
func DefaultOptions() Options {
	return Options{BurstThreshold: 0.5, LossLookahead: 2, Alpha: 1}
}

func (o Options) withDefaults() Options {
	if o.BurstThreshold == 0 {
		o.BurstThreshold = 0.5
	}
	if o.LossLookahead == 0 {
		o.LossLookahead = 2
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	return o
}

// Burst is one detected burst on one server.
type Burst struct {
	// Server indexes SyncRun.Servers.
	Server int
	// Start and End delimit the samples [Start, End).
	Start, End int
	// Volume is the total ingress bytes across the burst's samples.
	Volume float64
	// AvgConns is the mean per-sample connection estimate inside the burst.
	AvgConns float64
	// MaxContention is the maximum contention level over the burst's
	// lifetime — the level the paper associates each burst with (§8).
	MaxContention int
	// Lossy reports whether retransmitted bytes appeared during the burst
	// or within the loss lookahead after it.
	Lossy bool
	// ContentionAtFirstLoss is the contention at the sample of the first
	// retransmission attributed to the burst (0 when not lossy). The paper
	// checks this alternative association and finds the same trends.
	ContentionAtFirstLoss int
}

// Len returns the burst length in samples (milliseconds at 1 ms sampling).
func (b *Burst) Len() int { return b.End - b.Start }

// Contended reports whether the burst ever overlapped another server's
// burst: contention level 1 is a lone burst, which effectively sees no
// buffer contention (§5).
func (b *Burst) Contended() bool { return b.MaxContention >= 2 }

// ServerRun summarizes one server's series within a rack run (the unit the
// paper calls a "server run").
type ServerRun struct {
	Server int
	// Status is the host's collection outcome. Degraded servers contribute
	// only their valid samples; Missing/Unsynced servers contribute nothing.
	Status core.CollectionStatus
	// ValidSamples is how many leading samples the statistics cover.
	ValidSamples int
	// Bursty reports whether the server had at least one burst.
	Bursty bool
	// NumBursts counts bursts in the run.
	NumBursts int
	// BurstsPerSec normalizes NumBursts by the run duration (Fig. 6).
	BurstsPerSec float64
	// AvgUtil is the mean ingress utilization across the run.
	AvgUtil float64
	// AvgUtilInside / AvgUtilOutside split utilization by burst membership.
	AvgUtilInside  float64
	AvgUtilOutside float64
	// AvgConnsInside / AvgConnsOutside split the connection estimate by
	// burst membership (Fig. 8).
	AvgConnsInside  float64
	AvgConnsOutside float64
	// InBytes is total ingress bytes; BurstBytes the portion inside bursts.
	InBytes    float64
	BurstBytes float64
}

// RunAnalysis is the full decomposition of one SyncRun.
type RunAnalysis struct {
	Run  *core.SyncRun
	Opts Options

	// Bursty marks [server][sample] burstiness.
	Bursty [][]bool
	// Contention is the per-sample count of simultaneously bursty servers
	// (the paper's definition of contention, §5).
	Contention []int
	// Bursts lists every detected burst across all servers.
	Bursts []Burst
	// Servers holds per-server-run summaries.
	Servers []ServerRun
}

// Analyze decomposes a SyncRun.
func Analyze(sr *core.SyncRun, opts Options) *RunAnalysis {
	opts = opts.withDefaults()
	n := sr.Samples
	ra := &RunAnalysis{Run: sr, Opts: opts}
	ra.Bursty = make([][]bool, len(sr.Servers))
	ra.Contention = make([]int, n)

	intervalSec := sr.Interval.Seconds()
	for si := range sr.Servers {
		srv := &sr.Servers[si]
		row := make([]bool, n)
		// Degraded servers only contribute the samples they actually
		// observed; the zero-filled tail of a truncated run must not read as
		// idle time, and Missing/Unsynced servers must not read as idle hosts.
		valid := srv.Valid(n)
		threshold := opts.BurstThreshold * float64(srv.LineRateBps) / 8 * intervalSec
		for i := 0; i < valid; i++ {
			if srv.In[i] > threshold {
				row[i] = true
				ra.Contention[i]++
			}
		}
		ra.Bursty[si] = row
	}

	for si := range sr.Servers {
		ra.analyzeServer(si)
	}
	return ra
}

func (ra *RunAnalysis) analyzeServer(si int) {
	sr := ra.Run
	srv := &sr.Servers[si]
	row := ra.Bursty[si]
	n := srv.Valid(sr.Samples)
	intervalSec := sr.Interval.Seconds()

	run := ServerRun{Server: si, Status: srv.Status, ValidSamples: n}
	if n == 0 {
		// Nothing was collected; report the status without inventing an
		// all-idle server run.
		ra.Servers = append(ra.Servers, run)
		return
	}
	var insideUtil, outsideUtil, insideConns, outsideConns float64
	var insideN, outsideN int

	for i := 0; i < n; i++ {
		util := srv.In[i] * 8 / intervalSec / float64(srv.LineRateBps)
		run.InBytes += srv.In[i]
		run.AvgUtil += util
		if row[i] {
			insideUtil += util
			insideConns += srv.Conns[i]
			insideN++
			run.BurstBytes += srv.In[i]
		} else {
			outsideUtil += util
			outsideConns += srv.Conns[i]
			outsideN++
		}
	}
	run.AvgUtil /= float64(n)
	if insideN > 0 {
		run.AvgUtilInside = insideUtil / float64(insideN)
		run.AvgConnsInside = insideConns / float64(insideN)
	}
	if outsideN > 0 {
		run.AvgUtilOutside = outsideUtil / float64(outsideN)
		run.AvgConnsOutside = outsideConns / float64(outsideN)
	}

	// Extract consecutive bursty spans.
	for i := 0; i < n; {
		if !row[i] {
			i++
			continue
		}
		j := i
		for j < n && row[j] {
			j++
		}
		b := Burst{Server: si, Start: i, End: j}
		for k := i; k < j; k++ {
			b.Volume += srv.In[k]
			b.AvgConns += srv.Conns[k]
			if ra.Contention[k] > b.MaxContention {
				b.MaxContention = ra.Contention[k]
			}
		}
		b.AvgConns /= float64(j - i)
		lossEnd := j + ra.Opts.LossLookahead
		if lossEnd > n {
			lossEnd = n
		}
		for k := i; k < lossEnd; k++ {
			if srv.InRetx[k] > 0 {
				b.Lossy = true
				ci := k
				if ci >= n {
					ci = n - 1
				}
				b.ContentionAtFirstLoss = ra.Contention[ci]
				break
			}
		}
		ra.Bursts = append(ra.Bursts, b)
		run.NumBursts++
		i = j
	}

	run.Bursty = run.NumBursts > 0
	duration := float64(n) * intervalSec
	if duration > 0 {
		run.BurstsPerSec = float64(run.NumBursts) / duration
	}
	ra.Servers = append(ra.Servers, run)
}

// AvgContention returns the mean contention level across all samples of the
// run (including idle samples), the per-run statistic behind Figures 9, 12,
// 13 and 14.
func (ra *RunAnalysis) AvgContention() float64 {
	if len(ra.Contention) == 0 {
		return 0
	}
	s := 0
	for _, c := range ra.Contention {
		s += c
	}
	return float64(s) / float64(len(ra.Contention))
}

// MinActiveContention returns the minimum contention across samples with at
// least one bursty server (§7.3), and false when the run has none.
func (ra *RunAnalysis) MinActiveContention() (int, bool) {
	min := 0
	found := false
	for _, c := range ra.Contention {
		if c == 0 {
			continue
		}
		if !found || c < min {
			min = c
			found = true
		}
	}
	return min, found
}

// P90Contention returns the 90th-percentile contention across all samples.
func (ra *RunAnalysis) P90Contention() float64 {
	if len(ra.Contention) == 0 {
		return 0
	}
	xs := make([]float64, len(ra.Contention))
	for i, c := range ra.Contention {
		xs[i] = float64(c)
	}
	return percentile(xs, 90)
}

// QueueShare converts a contention level into the steady-state fraction of
// the shared buffer available to each contending queue under the analysis
// alpha. Contention 0 is treated as a single active queue.
func (ra *RunAnalysis) QueueShare(contention int) float64 {
	if contention < 1 {
		contention = 1
	}
	return switchsim.SteadyShare(ra.Opts.Alpha, contention)
}

// BufferShareDrop returns the relative drop in per-queue buffer share
// between the run's minimum-contention and p90-contention states (Fig. 15),
// and false for runs with no active samples or zero p90 contention (the
// paper excludes those).
func (ra *RunAnalysis) BufferShareDrop() (float64, bool) {
	min, ok := ra.MinActiveContention()
	if !ok {
		return 0, false
	}
	p90 := int(ra.P90Contention() + 0.5)
	if p90 == 0 {
		return 0, false
	}
	maxShare := ra.QueueShare(min)
	p90Share := ra.QueueShare(p90)
	return (maxShare - p90Share) / maxShare, true
}

func percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
