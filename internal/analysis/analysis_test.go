package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

// fullBucket is the byte count of one 1 ms bucket at 100% of a 12.5 Gbps
// line: 1,562,500 bytes.
const fullBucket = 1_562_500

// mkRun builds a synthetic SyncRun from per-server utilization fractions
// (util[server][sample]).
func mkRun(util [][]float64) *core.SyncRun {
	n := len(util[0])
	sr := &core.SyncRun{Interval: sim.Millisecond, Samples: n}
	for s := range util {
		srv := core.ServerSeries{
			Host: 0, Port: s, LineRateBps: 12_500_000_000,
			In:     make([]float64, n),
			InRetx: make([]float64, n),
			InECN:  make([]float64, n),
			Out:    make([]float64, n),
			OutRetx: make([]float64,
				n),
			Conns: make([]float64, n),
		}
		for i, u := range util[s] {
			srv.In[i] = u * fullBucket
		}
		sr.Servers = append(sr.Servers, srv)
	}
	return sr
}

func TestBurstDetectionBasic(t *testing.T) {
	ra := Analyze(mkRun([][]float64{
		{0.1, 0.6, 0.7, 0.8, 0.1, 0.9, 0.1, 0.1},
	}), DefaultOptions())
	if len(ra.Bursts) != 2 {
		t.Fatalf("detected %d bursts, want 2", len(ra.Bursts))
	}
	b0, b1 := ra.Bursts[0], ra.Bursts[1]
	if b0.Start != 1 || b0.End != 4 || b0.Len() != 3 {
		t.Errorf("burst 0 = [%d,%d)", b0.Start, b0.End)
	}
	if b1.Start != 5 || b1.End != 6 {
		t.Errorf("burst 1 = [%d,%d)", b1.Start, b1.End)
	}
	if got := b0.Volume; math.Abs(got-2.1*fullBucket) > 1 {
		t.Errorf("burst 0 volume = %v", got)
	}
}

func TestBurstThresholdIsStrict(t *testing.T) {
	// Exactly 50% does not exceed the threshold.
	ra := Analyze(mkRun([][]float64{{0.5, 0.5}}), DefaultOptions())
	if len(ra.Bursts) != 0 {
		t.Errorf("50%% utilization misclassified as burst")
	}
}

func TestContentionCounting(t *testing.T) {
	ra := Analyze(mkRun([][]float64{
		{0.9, 0.9, 0.0, 0.9},
		{0.9, 0.0, 0.9, 0.9},
		{0.0, 0.0, 0.0, 0.9},
	}), DefaultOptions())
	want := []int{2, 1, 1, 3}
	for i, w := range want {
		if ra.Contention[i] != w {
			t.Errorf("contention[%d] = %d, want %d", i, ra.Contention[i], w)
		}
	}
	if got := ra.AvgContention(); math.Abs(got-7.0/4) > 1e-9 {
		t.Errorf("AvgContention = %v", got)
	}
}

func TestBurstContentionAssociation(t *testing.T) {
	// Server 0 bursts [0,2); overlaps server 1 at sample 1 only.
	ra := Analyze(mkRun([][]float64{
		{0.9, 0.9, 0.0},
		{0.0, 0.9, 0.9},
	}), DefaultOptions())
	if len(ra.Bursts) != 2 {
		t.Fatalf("bursts = %d", len(ra.Bursts))
	}
	for _, b := range ra.Bursts {
		if b.MaxContention != 2 {
			t.Errorf("server %d burst MaxContention = %d, want 2", b.Server, b.MaxContention)
		}
		if !b.Contended() {
			t.Error("overlapping burst not contended")
		}
	}
}

func TestLoneBurstNotContended(t *testing.T) {
	ra := Analyze(mkRun([][]float64{
		{0.9, 0.9, 0.0},
		{0.0, 0.0, 0.0},
	}), DefaultOptions())
	if len(ra.Bursts) != 1 {
		t.Fatalf("bursts = %d", len(ra.Bursts))
	}
	if ra.Bursts[0].MaxContention != 1 || ra.Bursts[0].Contended() {
		t.Errorf("lone burst: %+v", ra.Bursts[0])
	}
}

func TestLossAttributionWithinLookahead(t *testing.T) {
	sr := mkRun([][]float64{{0.9, 0.9, 0.0, 0.0, 0.0, 0.0}})
	// Retransmission two samples after the burst ends (sample 3).
	sr.Servers[0].InRetx[3] = 5000
	ra := Analyze(sr, DefaultOptions())
	if !ra.Bursts[0].Lossy {
		t.Error("retx within lookahead not attributed to burst")
	}

	// Retransmission beyond the lookahead (sample 5) is not attributed.
	sr2 := mkRun([][]float64{{0.9, 0.9, 0.0, 0.0, 0.0, 0.0}})
	sr2.Servers[0].InRetx[5] = 5000
	ra2 := Analyze(sr2, DefaultOptions())
	if ra2.Bursts[0].Lossy {
		t.Error("retx beyond lookahead wrongly attributed")
	}
}

func TestContentionAtFirstLoss(t *testing.T) {
	sr := mkRun([][]float64{
		{0.9, 0.9, 0.9, 0.0},
		{0.0, 0.9, 0.9, 0.0},
		{0.0, 0.0, 0.9, 0.0},
	})
	sr.Servers[0].InRetx[1] = 100
	ra := Analyze(sr, DefaultOptions())
	var b *Burst
	for i := range ra.Bursts {
		if ra.Bursts[i].Server == 0 {
			b = &ra.Bursts[i]
		}
	}
	if b == nil || !b.Lossy {
		t.Fatal("server 0 burst not lossy")
	}
	if b.ContentionAtFirstLoss != 2 {
		t.Errorf("ContentionAtFirstLoss = %d, want 2", b.ContentionAtFirstLoss)
	}
	if b.MaxContention != 3 {
		t.Errorf("MaxContention = %d, want 3", b.MaxContention)
	}
}

func TestServerRunStats(t *testing.T) {
	sr := mkRun([][]float64{{0.0, 0.8, 0.8, 0.0}})
	sr.Servers[0].Conns = []float64{2, 20, 30, 4}
	ra := Analyze(sr, DefaultOptions())
	run := ra.Servers[0]
	if !run.Bursty || run.NumBursts != 1 {
		t.Fatalf("run = %+v", run)
	}
	// 4 samples at 1ms = 4ms; 1 burst -> 250 bursts/sec.
	if math.Abs(run.BurstsPerSec-250) > 1e-9 {
		t.Errorf("BurstsPerSec = %v", run.BurstsPerSec)
	}
	if math.Abs(run.AvgConnsInside-25) > 1e-9 {
		t.Errorf("AvgConnsInside = %v", run.AvgConnsInside)
	}
	if math.Abs(run.AvgConnsOutside-3) > 1e-9 {
		t.Errorf("AvgConnsOutside = %v", run.AvgConnsOutside)
	}
	if math.Abs(run.AvgUtilInside-0.8) > 1e-6 {
		t.Errorf("AvgUtilInside = %v", run.AvgUtilInside)
	}
	if math.Abs(run.AvgUtil-0.4) > 1e-6 {
		t.Errorf("AvgUtil = %v", run.AvgUtil)
	}
	if math.Abs(run.BurstBytes-1.6*fullBucket) > 1 {
		t.Errorf("BurstBytes = %v", run.BurstBytes)
	}
}

func TestMinActiveContentionExcludesIdle(t *testing.T) {
	ra := Analyze(mkRun([][]float64{
		{0.0, 0.9, 0.9, 0.0},
		{0.0, 0.0, 0.9, 0.0},
	}), DefaultOptions())
	min, ok := ra.MinActiveContention()
	if !ok || min != 1 {
		t.Errorf("MinActiveContention = %d,%v want 1,true", min, ok)
	}

	idle := Analyze(mkRun([][]float64{{0, 0}}), DefaultOptions())
	if _, ok := idle.MinActiveContention(); ok {
		t.Error("idle run reported active contention")
	}
}

func TestQueueShareMatchesDT(t *testing.T) {
	ra := Analyze(mkRun([][]float64{{0}}), DefaultOptions())
	// alpha=1: share(1)=1/2, share(3)=1/4; contention 0 treated as 1.
	if got := ra.QueueShare(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("QueueShare(1) = %v", got)
	}
	if got := ra.QueueShare(3); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("QueueShare(3) = %v", got)
	}
	if got := ra.QueueShare(0); got != ra.QueueShare(1) {
		t.Error("QueueShare(0) != QueueShare(1)")
	}
}

func TestBufferShareDrop(t *testing.T) {
	// min contention 1, p90 contention 2 (alpha=1): shares 1/2 -> 1/3,
	// drop = (1/2-1/3)/(1/2) = 1/3 — the paper's canonical 33.3% drop.
	util := make([][]float64, 2)
	util[0] = make([]float64, 100)
	util[1] = make([]float64, 100)
	for i := 0; i < 100; i++ {
		util[0][i] = 0.9 // always bursty
		if i < 95 {
			util[1][i] = 0.9 // bursty in 95% of samples -> p90 contention 2
		}
	}
	// Give one sample contention 1 so min=1.
	util[1][99] = 0
	ra := Analyze(mkRun(util), DefaultOptions())
	drop, ok := ra.BufferShareDrop()
	if !ok {
		t.Fatal("no drop computed")
	}
	if math.Abs(drop-1.0/3) > 1e-9 {
		t.Errorf("drop = %v, want 1/3", drop)
	}
}

func TestBufferShareDropExcludesZeroP90(t *testing.T) {
	util := make([][]float64, 1)
	util[0] = make([]float64, 100)
	util[0][0] = 0.9 // single bursty sample: p90 contention is 0
	ra := Analyze(mkRun(util), DefaultOptions())
	if _, ok := ra.BufferShareDrop(); ok {
		t.Error("run with p90 contention 0 not excluded")
	}
}

func TestContentionNeverExceedsServers(t *testing.T) {
	f := func(raw []uint8, nsRaw uint8) bool {
		ns := int(nsRaw%5) + 1
		n := 16
		util := make([][]float64, ns)
		idx := 0
		for s := range util {
			util[s] = make([]float64, n)
			for i := 0; i < n; i++ {
				if idx < len(raw) {
					util[s][i] = float64(raw[idx]) / 255
					idx++
				}
			}
		}
		ra := Analyze(mkRun(util), DefaultOptions())
		for _, c := range ra.Contention {
			if c < 0 || c > ns {
				return false
			}
		}
		for _, b := range ra.Bursts {
			if b.MaxContention < 1 || b.MaxContention > ns || b.Len() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBurstsCoverExactlyBurstySamples(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		util := [][]float64{make([]float64, n)}
		for i, r := range raw {
			util[0][i] = float64(r) / 255
		}
		ra := Analyze(mkRun(util), DefaultOptions())
		covered := make([]bool, n)
		for _, b := range ra.Bursts {
			for i := b.Start; i < b.End; i++ {
				if covered[i] {
					return false // overlap
				}
				covered[i] = true
			}
		}
		for i := 0; i < n; i++ {
			if covered[i] != ra.Bursty[0][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
