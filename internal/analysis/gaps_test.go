package analysis

import (
	"math"
	"testing"
)

func TestBurstGaps(t *testing.T) {
	// Server 0: bursts [1,3) and [6,8) -> gap 3. Server 1: single burst,
	// no gap.
	ra := Analyze(mkRun([][]float64{
		{0, 0.9, 0.9, 0, 0, 0, 0.9, 0.9, 0},
		{0, 0, 0, 0.9, 0, 0, 0, 0, 0},
	}), DefaultOptions())
	gaps := ra.BurstGaps()
	if len(gaps) != 1 || gaps[0] != 3 {
		t.Errorf("gaps = %v, want [3]", gaps)
	}
}

func TestBurstGapsNoneForIdle(t *testing.T) {
	ra := Analyze(mkRun([][]float64{{0, 0, 0}}), DefaultOptions())
	if gaps := ra.BurstGaps(); len(gaps) != 0 {
		t.Errorf("idle run produced gaps %v", gaps)
	}
}

func TestContentionPersistence(t *testing.T) {
	// Periodic contention with period 4: strong autocorrelation at lag 4,
	// weak at lag 2.
	util := [][]float64{make([]float64, 64)}
	for i := range util[0] {
		if i%4 == 0 {
			util[0][i] = 0.9
		}
	}
	ra := Analyze(mkRun(util), DefaultOptions())
	p := ra.ContentionPersistence([]int{2, 4})
	if p[4] < 0.9 {
		t.Errorf("lag-4 persistence = %v, want ~1 for period-4 series", p[4])
	}
	if p[2] > p[4] {
		t.Errorf("lag-2 %v should be below lag-4 %v", p[2], p[4])
	}
	if math.IsNaN(p[4]) {
		t.Error("persistence NaN for varying series")
	}
}
