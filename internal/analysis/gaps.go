package analysis

import "repro/internal/stats"

// BurstGaps returns the idle gaps (in samples) between consecutive bursts of
// each server in the run. Section 6 observes that servers typically show
// multiple well-separated bursts; the gap distribution quantifies that
// separation and drives the §4.1 design point that occasional sampling
// windows still catch bursts.
func (ra *RunAnalysis) BurstGaps() []int {
	var gaps []int
	lastEnd := make(map[int]int)
	seen := make(map[int]bool)
	for _, b := range ra.Bursts {
		if seen[b.Server] {
			gaps = append(gaps, b.Start-lastEnd[b.Server])
		}
		lastEnd[b.Server] = b.End
		seen[b.Server] = true
	}
	return gaps
}

// ContentionPersistence returns the lag-k autocorrelation of the run's
// contention series for each requested lag (in samples). High values at
// multi-millisecond lags mean the buffer pressure a burst meets is
// predictable from the recent past — the property that lets persistently
// contended racks adapt (§8.1's hypothesis for RegA-High's low loss).
func (ra *RunAnalysis) ContentionPersistence(lags []int) map[int]float64 {
	xs := make([]float64, len(ra.Contention))
	for i, c := range ra.Contention {
		xs[i] = float64(c)
	}
	out := make(map[int]float64, len(lags))
	for _, lag := range lags {
		out[lag] = stats.Autocorrelation(xs, lag)
	}
	return out
}
