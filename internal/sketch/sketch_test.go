package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEmptySketch(t *testing.T) {
	var s Sketch
	if !s.Empty() || s.Ones() != 0 || s.Estimate() != 0 {
		t.Errorf("zero sketch: empty=%v ones=%d est=%v", s.Empty(), s.Ones(), s.Estimate())
	}
}

func TestSingleFlow(t *testing.T) {
	var s Sketch
	for i := 0; i < 100; i++ {
		s.Insert(0xdeadbeef) // same flow repeatedly
	}
	if s.Ones() != 1 {
		t.Errorf("one flow set %d bits", s.Ones())
	}
	if est := s.Estimate(); math.Abs(est-1) > 0.1 {
		t.Errorf("one flow estimated as %v", est)
	}
}

func TestPreciseUpToADozen(t *testing.T) {
	// The paper's stated property: precise up to about a dozen connections.
	rng := sim.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		var s Sketch
		n := 12
		for i := 0; i < n; i++ {
			s.Insert(rng.Uint64())
		}
		est := s.Estimate()
		if math.Abs(est-float64(n)) > 3 {
			t.Errorf("trial %d: %d flows estimated as %.1f", trial, n, est)
		}
	}
}

func TestAccuracyAcrossRange(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, n := range []int{1, 5, 20, 50, 100, 200} {
		// Average over trials: linear counting is unbiased but noisy.
		const trials = 200
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			var s Sketch
			for i := 0; i < n; i++ {
				s.Insert(rng.Uint64())
			}
			sum += s.Estimate()
		}
		mean := sum / trials
		if math.Abs(mean-float64(n)) > float64(n)*0.15+2 {
			t.Errorf("n=%d mean estimate %.1f", n, mean)
		}
	}
}

func TestSaturatesAroundFiveHundred(t *testing.T) {
	rng := sim.NewRNG(9)
	var s Sketch
	for i := 0; i < 5000; i++ {
		s.Insert(rng.Uint64())
	}
	est := s.Estimate()
	// Saturation ceiling for m=128 is 128*ln(128) ~ 621.
	if est < 400 || est > 700 {
		t.Errorf("saturated estimate = %v, want a ceiling in the 400-700 range", est)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	f := func(aHashes, bHashes []uint64) bool {
		var a, b, u Sketch
		for _, h := range aHashes {
			a.Insert(h)
			u.Insert(h)
		}
		for _, h := range bHashes {
			b.Insert(h)
			u.Insert(h)
		}
		a.Merge(b)
		return a == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateMonotoneInOnes(t *testing.T) {
	prev := 0.0
	var s Sketch
	rng := sim.NewRNG(11)
	for i := 0; i < 1000; i++ {
		s.Insert(rng.Uint64())
		est := s.Estimate()
		if est < prev {
			t.Fatalf("estimate decreased from %v to %v", prev, est)
		}
		prev = est
	}
}

func TestVarWidths(t *testing.T) {
	rng := sim.NewRNG(13)
	for _, bits := range []int{64, 128, 256, 1024} {
		v := NewVar(bits)
		if v.BitWidth() != bits {
			t.Fatalf("width %d got %d", bits, v.BitWidth())
		}
		const n = 40
		const trials = 100
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			v.Reset()
			for i := 0; i < n; i++ {
				v.Insert(rng.Uint64())
			}
			sum += v.Estimate()
		}
		mean := sum / trials
		if math.Abs(mean-n) > n*0.25+2 {
			t.Errorf("width %d: n=%d mean estimate %.1f", bits, n, mean)
		}
	}
}

func TestVarDefaultsTo64(t *testing.T) {
	if NewVar(0).BitWidth() != 64 {
		t.Error("NewVar(0) should default to 64 bits")
	}
}

func BenchmarkSketchInsert(b *testing.B) {
	var s Sketch
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkSketchEstimate(b *testing.B) {
	var s Sketch
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		s.Insert(rng.Uint64())
	}
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}
