// Package sketch implements the 128-bit connection-counting sketch
// Millisampler keeps per time bucket (paper §4.2), after the bitmap
// (linear-counting) estimators of Estan, Varghese & Fisk (IMC 2003).
//
// Each packet's flow identifier sets one bit; the number of distinct flows is
// estimated from the fraction of bits still zero:
//
//	n̂ = -m · ln(Z/m)
//
// where m is the bitmap width and Z the count of zero bits. At m = 128 the
// estimate is precise up to a dozen connections and saturates around 500 —
// exactly the qualitative resolution the paper found useful for telling
// heavy-incast (hundreds of connections) from few-connection traffic.
package sketch

import (
	"math"
	"math/bits"
)

// Words is the fixed bitmap width of the production sketch in 64-bit words.
const Words = 2

// Bits is the fixed bitmap width in bits (128).
const Bits = Words * 64

// Sketch is the fixed-width production sketch. The zero value is empty and
// ready to use; it is plain data so per-CPU x per-bucket arrays stay flat.
type Sketch [Words]uint64

// Insert sets the bit selected by a flow hash.
func (s *Sketch) Insert(hash uint64) {
	b := hash % Bits
	s[b/64] |= 1 << (b % 64)
}

// Merge ORs another sketch into s (used to combine per-CPU sketches).
func (s *Sketch) Merge(o Sketch) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Ones returns the number of set bits.
func (s Sketch) Ones() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no flow was inserted.
func (s Sketch) Empty() bool { return s == Sketch{} }

// Estimate returns the linear-counting estimate of distinct flows inserted.
// A fully saturated bitmap returns the saturation ceiling (~621 for m=128).
func (s Sketch) Estimate() float64 {
	return estimate(Bits, Bits-s.Ones())
}

func estimate(m, zero int) float64 {
	if zero <= 0 {
		// Saturated: report the largest resolvable count, -m ln(1/m).
		return float64(m) * math.Log(float64(m))
	}
	return -float64(m) * math.Log(float64(zero)/float64(m))
}

// Var is a variable-width bitmap sketch used by the sketch-size ablation; it
// behaves identically to Sketch but with m = 64·len(words).
type Var struct {
	words []uint64
}

// NewVar returns a variable sketch with the given width in bits (rounded up
// to a multiple of 64).
func NewVar(bits int) *Var {
	if bits <= 0 {
		bits = 64
	}
	return &Var{words: make([]uint64, (bits+63)/64)}
}

// BitWidth returns the bitmap width in bits.
func (v *Var) BitWidth() int { return len(v.words) * 64 }

// Insert sets the bit selected by a flow hash.
func (v *Var) Insert(hash uint64) {
	m := uint64(v.BitWidth())
	b := hash % m
	v.words[b/64] |= 1 << (b % 64)
}

// Reset clears the sketch.
func (v *Var) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Estimate returns the linear-counting estimate.
func (v *Var) Estimate() float64 {
	ones := 0
	for _, w := range v.words {
		ones += bits.OnesCount64(w)
	}
	m := v.BitWidth()
	return estimate(m, m-ones)
}
