package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/txtplot"
	"repro/internal/workload"
)

func init() {
	register("fig1", Fig01QueueShare)
	register("fig3", Fig03MulticastSync)
	register("fig4", Fig04BurstIdent)
	register("fig5", Fig05DeepDive)
}

// Fig01QueueShare reproduces Figure 1: the maximum fraction of the shared
// buffer each queue may take for different alpha and active-queue counts.
// This is analytic — T = alpha*B/(1+alpha*S) — and needs no dataset.
func Fig01QueueShare(Source) (*Result, error) {
	alphas := []float64{0.25, 0.5, 1, 2, 4}
	r := &Result{
		ID:    "fig1",
		Title: "Queue share T vs active queues S for varying alpha",
		Header: []string{"S", "a=0.25", "a=0.5", "a=1", "a=2",
			"a=4"},
	}
	for s := 0; s <= 10; s++ {
		row := []string{fmt.Sprintf("%d", s)}
		for _, a := range alphas {
			row = append(row, fmtF(switchsim.SteadyShare(a, s)))
		}
		r.AddRow(row...)
	}
	for _, a := range alphas {
		srs := txtplot.Series{Name: fmt.Sprintf("alpha=%v", a)}
		for s := 0; s <= 10; s++ {
			srs.Points = append(srs.Points, txtplot.Point{X: float64(s), Y: switchsim.SteadyShare(a, s)})
		}
		r.Plots = append(r.Plots, srs)
	}
	r.PlotOpts.XLabel = "# of active queues (S)"
	r.PlotOpts.YLabel = "queue share T (frac. of buffer)"
	r.PlotOpts.YMax = 1
	r.Notef("paper: alpha=1 gives B/2 for one queue, B/3 each for two; measured: %s and %s",
		fmtF(switchsim.SteadyShare(1, 1)), fmtF(switchsim.SteadyShare(1, 2)))
	return r, nil
}

// Fig03MulticastSync reproduces the §4.5 time-synchronization validation: a
// rack-local multicast beacon must appear in the same SyncMillisampler
// sample on all eight subscribed servers.
func Fig03MulticastSync(Source) (*Result, error) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 40304})
	subs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	beacon := workload.NewMulticastBeacon(rack, subs, 100*sim.Millisecond, 256<<10, 2_000_000_000)
	beacon.Start()

	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 1800, CountFlows: false})
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		return nil, err
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:     "fig3",
		Title:  "SyncMillisampler capture of multicast bursts on 8 servers",
		Header: []string{"server", "bursts seen", "total KB"},
	}
	aligned, total := 0, 0
	for i := 1; i < sr.Samples-1; i++ {
		if sr.Servers[0].In[i] < 1000 {
			continue
		}
		total++
		ok := true
		for s := 1; s < 8; s++ {
			if sr.Servers[s].In[i-1]+sr.Servers[s].In[i]+sr.Servers[s].In[i+1] < 1000 {
				ok = false
			}
		}
		if ok {
			aligned++
		}
	}
	for s := 0; s < 8; s++ {
		seen, totalB := 0, 0.0
		for i := 0; i < sr.Samples; i++ {
			if sr.Servers[s].In[i] >= 1000 {
				seen++
			}
			totalB += sr.Servers[s].In[i]
		}
		r.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%d", seen), fmtF(totalB/1024))
	}
	r.Notef("paper: lines for all servers overlap (collection synchronized); measured: %d/%d beacon samples aligned across all 8 servers (clock model max offset 200µs < 1ms sampling)",
		aligned, total)
	return r, nil
}

// Fig04BurstIdent reproduces the §4.5 burst-identification validation: five
// clients receive periodic 1.8 MB bursts; post-analysis must identify five
// simultaneously bursty servers.
func Fig04BurstIdent(Source) (*Result, error) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 40405})
	clients := []int{0, 1, 2, 3, 4}
	gen := workload.NewBurstGen(rack, clients, 100*sim.Millisecond, 1_800_000)
	gen.Start()

	ctrl := core.NewController(rack, core.DefaultConfig())
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		return nil, err
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		return nil, err
	}
	ra := analysis.Analyze(sr, analysis.DefaultOptions())

	hist := map[int]int{}
	for _, c := range ra.Contention {
		hist[c]++
	}
	r := &Result{
		ID:     "fig4",
		Title:  "Simultaneously bursty servers identified during burst-generator run",
		Header: []string{"contention level", "samples"},
	}
	max := 0
	for c := range hist {
		if c > max {
			max = c
		}
	}
	for c := 0; c <= max; c++ {
		r.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", hist[c]))
	}
	r.Notef("paper: 5 bursty clients identified over the same interval; measured max simultaneous bursty servers: %d", max)
	return r, nil
}

// Fig05DeepDive reproduces Figure 5: two example runs, one low-contention
// and one high-contention, summarized as burst rasters and contention
// ranges. The raw runs are regenerated deterministically from the dataset
// seed rather than stored.
func Fig05DeepDive(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig5",
		Title:  "Deep dive into a low- and a high-contention run",
		Header: []string{"run", "bursty servers", "bursts", "contention min/mean/max"},
	}
	// One streaming pass picks the busiest run of each class as its
	// exemplar. The callback's run is only valid during the call, so the
	// retained pick is a copy.
	type exemplar struct {
		run fleet.RunSummary
		ok  bool
	}
	best := map[fleet.Class]*exemplar{
		fleet.ClassATypical: {},
		fleet.ClassAHigh:    {},
	}
	err := eachRun(src, func(run *fleet.RunSummary, c fleet.Class) error {
		e, want := best[c]
		if !want {
			return nil
		}
		if !e.ok || run.AvgContention > e.run.AvgContention {
			e.run = *run
			e.ok = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cfg := src.Config()
	for _, pick := range []struct {
		label string
		class fleet.Class
	}{
		{"low (RegA-Typical)", fleet.ClassATypical},
		{"high (RegA-High)", fleet.ClassAHigh},
	} {
		e := best[pick.class]
		if !e.ok {
			r.Notef("no %s runs in dataset", pick.label)
			continue
		}
		spec, ok := fleet.FindRack(cfg, e.run.Region, e.run.RackID)
		if !ok {
			return nil, fmt.Errorf("rack %s/%d not reconstructible", e.run.Region, e.run.RackID)
		}
		sr, _, err := fleet.SimulateRun(cfg, spec, e.run.Hour)
		if err != nil {
			return nil, err
		}
		ra := analysis.Analyze(sr, analysis.DefaultOptions())
		min, mean, max := 0, ra.AvgContention(), 0
		if m, ok := ra.MinActiveContention(); ok {
			min = m
		}
		for _, c := range ra.Contention {
			if c > max {
				max = c
			}
		}
		bursty := 0
		for _, s := range ra.Servers {
			if s.Bursty {
				bursty++
			}
		}
		r.AddRow(pick.label,
			fmt.Sprintf("%d/%d", bursty, len(ra.Servers)),
			fmt.Sprintf("%d", len(ra.Bursts)),
			fmt.Sprintf("%d/%.2f/%d", min, mean, max))
	}
	r.Notef("paper: example low run varies 0-3, high run varies 3-12; shapes should match qualitatively")
	return r, nil
}
