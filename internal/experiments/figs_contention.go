package experiments

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/switchsim"
)

func init() {
	register("fig9", Fig09ContentionCDF)
	register("fig10", Fig10TaskDiversity)
	register("fig11", Fig11DominantTask)
	register("fig12", Fig12DailyVariation)
	register("fig13", Fig13Diurnal)
	register("fig14", Fig14VolumeCorr)
	register("fig15", Fig15RunVariation)
}

// rackIDs returns the rack ids of a region present in the metadata.
func rackIDs(src Source, region string) []int {
	var ids []int
	for _, m := range src.RackMetas() {
		if m.Region == region {
			ids = append(ids, m.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

// Fig09ContentionCDF reproduces Figure 9: the CDF of busy-hour average
// contention across racks, per region.
func Fig09ContentionCDF(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig9",
		Title:  "Average contention across racks, busy hour (CDF)",
		Header: []string{"percentile", "RegA", "RegB"},
	}
	// One streaming pass keeps the busy-hour scalar per rack (first run at
	// the minimum distance to the busy hour wins, matching schedule order).
	type busy struct {
		dist int
		cont float64
		ok   bool
	}
	best := map[string]*busy{}
	key := func(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		d := run.Hour - fleet.BusyHour
		if d < 0 {
			d = -d
		}
		k := key(run.Region, run.RackID)
		b := best[k]
		if b == nil {
			b = &busy{dist: 1 << 30}
			best[k] = b
		}
		if d < b.dist {
			b.dist = d
			b.cont = run.AvgContention
			b.ok = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	byRegion := map[string]*stats.CDF{}
	for _, region := range []string{fleet.RegA, fleet.RegB} {
		var xs []float64
		for _, id := range rackIDs(src, region) {
			if b := best[key(region, id)]; b != nil && b.ok {
				xs = append(xs, b.cont)
			}
		}
		if len(xs) == 0 {
			return nil, fmt.Errorf("no busy-hour runs in %s", region)
		}
		byRegion[region] = stats.NewCDF(xs)
	}
	for _, p := range []float64{10, 25, 50, 75, 80, 90, 95} {
		r.AddRow(fmt.Sprintf("p%.0f", p),
			fmtF(byRegion[fleet.RegA].Quantile(p)),
			fmtF(byRegion[fleet.RegB].Quantile(p)))
	}
	r.AddCDF("RegA", byRegion[fleet.RegA])
	r.AddCDF("RegB", byRegion[fleet.RegB])
	r.PlotOpts.XLabel = "avg contention"
	r.PlotOpts.YLabel = "fraction of racks"
	a := byRegion[fleet.RegA]
	gap := a.Quantile(90) / (a.Quantile(75) + 1e-9)
	r.Notef("paper: RegA bimodal — 75%% of racks below 2.2, top 20%% above 7.5 (3.4x); measured: p75 %s, p90 %s (ratio %s)",
		fmtF(a.Quantile(75)), fmtF(a.Quantile(90)), fmtF(gap))
	r.Notef("paper: RegB spread fairly uniform and higher than RegA; measured RegB median %s vs RegA median %s",
		fmtF(byRegion[fleet.RegB].Quantile(50)), fmtF(a.Quantile(50)))
	return r, nil
}

// Fig10TaskDiversity reproduces Figure 10: distinct tasks per rack by class.
func Fig10TaskDiversity(src Source) (*Result, error) {
	xs := map[fleet.Class][]float64{}
	for _, m := range src.RackMetas() {
		xs[m.Class] = append(xs[m.Class], float64(m.DistinctTasks))
	}
	r := &Result{
		ID:     "fig10",
		Title:  "Distinct tasks per rack (CDF)",
		Header: []string{"percentile", "RegA-Typical", "RegA-High", "RegB"},
	}
	cT := stats.NewCDF(xs[fleet.ClassATypical])
	cH := stats.NewCDF(xs[fleet.ClassAHigh])
	cB := stats.NewCDF(xs[fleet.ClassB])
	for _, p := range []float64{10, 25, 50, 75, 90} {
		r.AddRow(fmt.Sprintf("p%.0f", p), fmtF(cT.Quantile(p)), fmtF(cH.Quantile(p)), fmtF(cB.Quantile(p)))
	}
	r.Notef("paper: median tasks 14 (Typical), 8 (High), 15 (RegB) on ~92-server racks; measured (on %d-server racks): %s, %s, %s",
		src.Config().ServersPerRack, fmtF(cT.Quantile(50)), fmtF(cH.Quantile(50)), fmtF(cB.Quantile(50)))
	return r, nil
}

// Fig11DominantTask reproduces Figure 11: dominant-task server share versus
// contention-sorted rack id, per region.
func Fig11DominantTask(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig11",
		Title:  "Dominant task share across contention-sorted racks",
		Header: []string{"region", "rack rank", "avg contention", "dominant task share"},
	}
	metas := src.RackMetas()
	for _, region := range []string{fleet.RegA, fleet.RegB} {
		type rk struct {
			cont  float64
			share float64
		}
		var rows []rk
		var conts, shares []float64
		for i := range metas {
			m := &metas[i]
			if m.Region != region {
				continue
			}
			rows = append(rows, rk{cont: m.BusyAvgContention, share: m.DominantShare})
			conts = append(conts, m.BusyAvgContention)
			shares = append(shares, m.DominantShare)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].cont < rows[b].cont })
		// Render a decile summary of the sorted curve.
		for d := 0; d < 10; d++ {
			i := d * len(rows) / 10
			r.AddRow(region, fmt.Sprintf("%d%%", d*10), fmtF(rows[i].cont), fmtPct(rows[i].share))
		}
		r.Notef("%s: Pearson(contention, dominant share) = %s (paper: high-contention racks run the dominant task on 60-100%% of servers)",
			region, fmtF(stats.Pearson(conts, shares)))
	}
	return r, nil
}

// Fig12DailyVariation reproduces Figure 12: per-rack mean/min/max of the
// average contention across the day's runs, sorted by mean.
func Fig12DailyVariation(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig12",
		Title:  "Per-rack contention across the day (mean and min-max range)",
		Header: []string{"region", "rack rank", "mean", "min", "max"},
	}
	// One pass collects each rack's day of contention scalars.
	vals := map[string][]float64{}
	key := func(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		k := key(run.Region, run.RackID)
		vals[k] = append(vals[k], run.AvgContention)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, region := range []string{fleet.RegA, fleet.RegB} {
		type rackDay struct{ mean, min, max float64 }
		var days []rackDay
		for _, id := range rackIDs(src, region) {
			v := vals[key(region, id)]
			if len(v) == 0 {
				continue
			}
			b := stats.Summarize(v)
			days = append(days, rackDay{mean: b.Mean, min: b.Min, max: b.Max})
		}
		sort.Slice(days, func(a, b int) bool { return days[a].mean < days[b].mean })
		for d := 0; d < 10; d++ {
			i := d * len(days) / 10
			r.AddRow(region, fmt.Sprintf("%d%%", d*10),
				fmtF(days[i].mean), fmtF(days[i].min), fmtF(days[i].max))
		}
		// Persistence check: variation of low vs high racks.
		var lowVar, highVar []float64
		for i, dday := range days {
			v := dday.max - dday.min
			if i < len(days)*8/10 {
				lowVar = append(lowVar, v)
			} else {
				highVar = append(highVar, v)
			}
		}
		r.Notef("%s: mean min-max range %.2f (bottom 80%% of racks) vs %.2f (top 20%%) — paper RegA: 0.8 vs 5.3, classes well separated",
			region, stats.Mean(lowVar), stats.Mean(highVar))
	}
	return r, nil
}

// Fig13Diurnal reproduces Figure 13: box plots of run average contention per
// hour for RegA-High and RegB.
func Fig13Diurnal(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig13",
		Title:  "Diurnal contention (per-hour box of run average contention)",
		Header: []string{"class", "hour", "p25", "median", "p75", "p90"},
	}
	byClassHour := map[fleet.Class]map[int][]float64{}
	err := eachRun(src, func(run *fleet.RunSummary, c fleet.Class) error {
		byHour := byClassHour[c]
		if byHour == nil {
			byHour = map[int][]float64{}
			byClassHour[c] = byHour
		}
		byHour[run.Hour] = append(byHour[run.Hour], run.AvgContention)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, class := range []fleet.Class{fleet.ClassAHigh, fleet.ClassB} {
		byHour := byClassHour[class]
		var hours []int
		for h := range byHour {
			hours = append(hours, h)
		}
		sort.Ints(hours)
		var peakVals, offVals []float64
		for _, h := range hours {
			b := stats.Summarize(byHour[h])
			r.AddRow(class.String(), fmt.Sprintf("%02d", h),
				fmtF(b.P25), fmtF(b.Median), fmtF(b.P75), fmtF(b.P90))
			if h >= 4 && h <= 10 {
				peakVals = append(peakVals, byHour[h]...)
			} else {
				offVals = append(offVals, byHour[h]...)
			}
		}
		if len(peakVals) > 0 && len(offVals) > 0 {
			inc := stats.Mean(peakVals)/stats.Mean(offVals) - 1
			r.Notef("%s: hours 4-10 mean contention %s above other hours (paper RegA-High: 27.6%%)",
				class, fmtPct(inc))
		}
	}
	return r, nil
}

// Fig14VolumeCorr reproduces Figure 14: run average contention bucketed by
// the rack's per-minute ingress volume. Every run participates, including
// failed collections (their zero volume and contention are part of the
// paper's counter view).
func Fig14VolumeCorr(src Source) (*Result, error) {
	const bucketGB = 4.0
	b := stats.NewBucketed(bucketGB)
	var vols, conts []float64
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		volGB := float64(run.IngressPerMin) / 1e9
		b.Add(volGB, run.AvgContention)
		vols = append(vols, volGB)
		conts = append(conts, run.AvgContention)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig14",
		Title:  "Average contention vs 1-minute rack ingress volume",
		Header: []string{"ingress GB/min", "runs", "p25", "median", "p75"},
	}
	for _, s := range b.Summaries() {
		r.AddRow(fmt.Sprintf("%.0f-%.0f", s.Lo, s.Hi),
			fmt.Sprintf("%d", s.Box.N), fmtF(s.Box.P25), fmtF(s.Box.Median), fmtF(s.Box.P75))
	}
	r.Notef("paper: ingress volume clearly correlates with contention; measured Pearson = %s",
		fmtF(stats.Pearson(vols, conts)))
	return r, nil
}

// Fig15RunVariation reproduces Figure 15: per-run min and p90 contention,
// and the resulting drop in per-queue buffer share.
func Fig15RunVariation(src Source) (*Result, error) {
	var mins, p90s, drops []float64
	excluded, total := 0, 0
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		if run.Region != fleet.RegA {
			return nil
		}
		total++
		if !run.HasActive || run.P90Contention == 0 {
			excluded++
			return nil
		}
		mins = append(mins, float64(run.MinActive))
		p90s = append(p90s, run.P90Contention)
		if run.ShareDropOK {
			drops = append(drops, run.ShareDrop)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(drops) == 0 {
		return nil, fmt.Errorf("no runs with buffer-share drops")
	}
	cMin, cP90, cDrop := stats.NewCDF(mins), stats.NewCDF(p90s), stats.NewCDF(drops)
	r := &Result{
		ID:     "fig15",
		Title:  "Within-run contention variation and per-queue buffer share drop",
		Header: []string{"percentile", "min contention", "p90 contention", "share drop"},
	}
	for _, p := range []float64{25, 50, 75, 85, 95} {
		r.AddRow(fmt.Sprintf("p%.0f", p),
			fmtF(cMin.Quantile(p)), fmtF(cP90.Quantile(p)), fmtPct(cDrop.Quantile(p)))
	}
	r.AddCDF("min contention", cMin)
	r.AddCDF("p90 contention", cP90)
	r.PlotOpts.XLabel = "contention"
	r.PlotOpts.YLabel = "fraction of runs"
	over70 := 1 - cDrop.At(0.699999)
	r.Notef("paper: median buffer share drop 33.3%%, >=70%% for 15%% of runs, 6.2%% of runs excluded (p90 contention 0); measured: median %s, %s of runs >=70%%, %s excluded",
		fmtPct(cDrop.Quantile(50)), fmtPct(over70), fmtPct(float64(excluded)/float64(total)))
	_ = switchsim.SteadyShare // DT formula underpins the share conversion
	return r, nil
}
