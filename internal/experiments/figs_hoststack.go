package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/hoststack"
)

func init() {
	register("hoststack", HostStackFrontDoor)
}

// HostStackFrontDoor answers the "front door vs. switch" question raised by
// the netstacklat work (PAPERS.md, arXiv 2606.02057): per ToR contention
// class, does switch loss or host-stack queueing dominate tail latency? It
// correlates the host-stack instrument's ingress delay quantiles with the
// class's switch discards and lossy-burst fraction.
//
// Datasets generated without Config.HostStack carry no latency records; the
// experiment then renders an explanatory note instead of failing, so RunAll
// keeps working on plain datasets.
func HostStackFrontDoor(src Source) (*Result, error) {
	r := &Result{
		ID:     "hoststack",
		Title:  "Host-stack ingress delay vs contention class vs loss",
		Header: []string{"class", "runs", "in p50 (µs)", "in p99 (µs)", "in p999 (µs)", "% segs ≥1ms", "worst ms p99 (µs)", "% lossy bursts", "discards/ingress"},
	}
	type acc struct {
		runs   int
		bins   [hoststack.NumBins]uint64
		inSegs uint64
		slow   uint64 // segments with ≥1024 µs ingress delay
		worst  float64

		bursts, lossy          int
		discardBytes, enqBytes float64
	}
	byClass := map[fleet.Class]*acc{}
	for _, c := range classOrder {
		byClass[c] = &acc{}
	}
	instrumented := 0
	err := eachRun(src, func(run *fleet.RunSummary, c fleet.Class) error {
		a := byClass[c]
		if a == nil {
			return nil
		}
		a.bursts += len(run.Bursts)
		for _, b := range run.Bursts {
			if b.Lossy {
				a.lossy++
			}
		}
		a.discardBytes += float64(run.Switch.DiscardBytes)
		a.enqBytes += float64(run.Switch.EnqueuedBytes)
		hs := run.HostStack
		if hs == nil {
			return nil
		}
		instrumented++
		a.runs++
		a.inSegs += hs.InSegs
		for i, v := range hs.InBins {
			a.bins[i] += v
		}
		a.slow += uint64(hs.ShareAboveUs(1024) * float64(hs.InSegs))
		if hs.MaxMsInP99Us > a.worst {
			a.worst = hs.MaxMsInP99Us
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if instrumented == 0 {
		// A placeholder row keeps the table well-formed for generic renderers
		// (and RunAll), while the note says how to populate it.
		r.AddRow("(uninstrumented)", "-", "-", "-", "-", "-", "-", "-", "-")
		r.Notef("dataset carries no host-stack series — regenerate with the HostStack knob (fleetgen -hoststack) to populate this table")
		return r, nil
	}
	quant := func(a *acc, q float64) string {
		p, ok := hoststack.QuantileUs(a.bins[:], q)
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f", p)
	}
	for _, c := range classOrder {
		a := byClass[c]
		if a.runs == 0 {
			r.AddRow(c.String(), "0", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		slowShare, lossyShare, perGB := "-", "-", "-"
		if a.inSegs > 0 {
			slowShare = fmtPct(float64(a.slow) / float64(a.inSegs))
		}
		if a.bursts > 0 {
			lossyShare = fmtPct(float64(a.lossy) / float64(a.bursts))
		}
		if a.enqBytes > 0 {
			perGB = fmt.Sprintf("%.3g", a.discardBytes/a.enqBytes)
		}
		r.AddRow(c.String(), fmt.Sprintf("%d", a.runs),
			quant(a, 0.50), quant(a, 0.99), quant(a, 0.999),
			slowShare, fmt.Sprintf("%.0f", a.worst), lossyShare, perGB)
	}
	r.Notef("netstacklat finding under test: host ingress queueing can dominate tail latency independently of switch loss — compare p999 across classes against the per-class lossy fraction")
	return r, nil
}
