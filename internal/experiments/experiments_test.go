package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fleet"
)

var (
	dsOnce sync.Once
	dsVal  *fleet.Dataset
	dsErr  error
)

func testDataset(t *testing.T) *fleet.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsVal, dsErr = fleet.Generate(fleet.SmallConfig())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"sec6",
		"fig16alt", "fig17", "fig18", "fig19", "tab1", "tab2",
		"hoststack",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", nil); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestFig01NoDatasetNeeded(t *testing.T) {
	r, err := Fig01QueueShare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// S=1, alpha=1 -> 0.5 (column 3).
	if r.Rows[1][3] != "0.5" {
		t.Errorf("T(alpha=1, S=1) cell = %q", r.Rows[1][3])
	}
}

func TestValidationFigsStandalone(t *testing.T) {
	// fig3 and fig4 build their own rigs and must work without a dataset.
	r3, err := Fig03MulticastSync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Rows) != 8 {
		t.Errorf("fig3 rows = %d", len(r3.Rows))
	}
	foundAligned := false
	for _, n := range r3.Notes {
		if strings.Contains(n, "aligned") {
			foundAligned = true
		}
	}
	if !foundAligned {
		t.Error("fig3 missing alignment note")
	}

	r4, err := Fig04BurstIdent(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(r4.Notes, " "), "measured max simultaneous bursty servers: 5") {
		t.Errorf("fig4 did not identify 5 bursty servers: %v", r4.Notes)
	}
}

func TestRunAllOnSmallDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds := testDataset(t)
	results, err := RunAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("results = %d", len(results))
	}
	var buf bytes.Buffer
	for _, r := range results {
		if r.ID == "" || r.Title == "" {
			t.Errorf("result missing metadata: %+v", r)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s produced no rows", r.ID)
		}
		r.Render(&buf)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("render missing %s", id)
		}
	}
}

// TestShardedMatchesLegacy proves the streaming sharded reader and the
// in-memory dataset are interchangeable sources: every experiment must render
// identically from both.
func TestShardedMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds := testDataset(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := dataset.Write(dir, ds); err != nil {
		t.Fatal(err)
	}
	rd, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	render := func(src Source) string {
		t.Helper()
		results, err := RunAll(src)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range results {
			r.Render(&buf)
		}
		return buf.String()
	}
	legacy := render(ds)
	sharded := render(rd)
	if legacy != sharded {
		// Find the first differing line for a readable failure.
		ll, sl := strings.Split(legacy, "\n"), strings.Split(sharded, "\n")
		for i := 0; i < len(ll) && i < len(sl); i++ {
			if ll[i] != sl[i] {
				t.Fatalf("sharded output diverges at line %d:\nlegacy:  %q\nsharded: %q", i+1, ll[i], sl[i])
			}
		}
		t.Fatalf("sharded output length %d != legacy %d", len(sharded), len(legacy))
	}
}

func TestShapeChecks(t *testing.T) {
	// The headline qualitative claims must hold on the generated dataset.
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds := testDataset(t)

	// RegA-High racks show markedly higher contention than RegA-Typical.
	var hi, lo []float64
	for _, m := range ds.Racks {
		switch m.Class {
		case fleet.ClassAHigh:
			hi = append(hi, m.BusyAvgContention)
		case fleet.ClassATypical:
			lo = append(lo, m.BusyAvgContention)
		}
	}
	if len(hi) == 0 || len(lo) == 0 {
		t.Fatal("classes missing")
	}
	if mean(hi) < 2*mean(lo) {
		t.Errorf("High mean contention %.2f not well above Typical %.2f", mean(hi), mean(lo))
	}

	// Most bursts see contention (paper: 91.4% overall).
	var contended, total int
	for i := range ds.Runs {
		for _, b := range ds.Runs[i].Bursts {
			total++
			if b.MaxContention >= 2 {
				contended++
			}
		}
	}
	if total == 0 {
		t.Fatal("no bursts")
	}
	if frac := float64(contended) / float64(total); frac < 0.5 {
		t.Errorf("only %.1f%% of bursts contended; paper reports most bursts contended", 100*frac)
	}

	// High-contention class must not be lossier than typical (the paper's
	// surprising inversion).
	lossFrac := func(c fleet.Class) float64 {
		var lossy, n int
		for _, run := range ds.RunsIn(c) {
			for _, b := range run.Bursts {
				n++
				if b.Lossy {
					lossy++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return float64(lossy) / float64(n)
	}
	if lt, lh := lossFrac(fleet.ClassATypical), lossFrac(fleet.ClassAHigh); lh > lt {
		t.Errorf("RegA-High lossy %.3f%% exceeds RegA-Typical %.3f%%; paper finds the opposite", 100*lh, 100*lt)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRenderFormat(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Notef("n=%d", 3)
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in %q", want, out)
		}
	}
}
