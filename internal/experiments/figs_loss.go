package experiments

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/stats"
)

func init() {
	register("tab2", Table2BurstClasses)
	register("fig16", Fig16ContentionLoss)
	register("fig16alt", Fig16AltFirstLoss)
	register("fig17", Fig17Discards)
	register("fig18", Fig18LengthLoss)
	register("fig19", Fig19IncastLoss)
}

// eachBurst streams every burst with its rack's class, in dataset order.
func eachBurst(src Source, fn func(c fleet.Class, b fleet.BurstRec)) error {
	return eachRun(src, func(run *fleet.RunSummary, c fleet.Class) error {
		for _, b := range run.Bursts {
			fn(c, b)
		}
		return nil
	})
}

var classOrder = []fleet.Class{fleet.ClassATypical, fleet.ClassAHigh, fleet.ClassB}

// Table2BurstClasses reproduces Table 2: burst counts, contended fraction,
// and lossy fraction per rack class.
func Table2BurstClasses(src Source) (*Result, error) {
	r := &Result{
		ID:     "tab2",
		Title:  "Bursts per rack class",
		Header: []string{"class", "bursts", "% contended", "% lossy"},
	}
	paper := map[fleet.Class][2]float64{
		fleet.ClassATypical: {70.9, 1.05},
		fleet.ClassAHigh:    {100, 0.36},
		fleet.ClassB:        {96.8, 0.78},
	}
	type counts struct{ bursts, contended, lossy int }
	byClass := map[fleet.Class]*counts{}
	for _, c := range classOrder {
		byClass[c] = &counts{}
	}
	err := eachBurst(src, func(c fleet.Class, b fleet.BurstRec) {
		n := byClass[c]
		if n == nil {
			return
		}
		n.bursts++
		if b.MaxContention >= 2 {
			n.contended++
		}
		if b.Lossy {
			n.lossy++
		}
	})
	if err != nil {
		return nil, err
	}
	var fracLossy = map[fleet.Class]float64{}
	for _, c := range classOrder {
		n := byClass[c]
		if n.bursts == 0 {
			r.AddRow(c.String(), "0", "-", "-")
			continue
		}
		fc := float64(n.contended) / float64(n.bursts)
		fl := float64(n.lossy) / float64(n.bursts)
		fracLossy[c] = fl
		r.AddRow(c.String(), fmt.Sprintf("%d", n.bursts), fmtPct(fc), fmtPct(fl))
		p := paper[c]
		r.Notef("%s paper: %.1f%% contended, %.2f%% lossy; measured: %s contended, %s lossy",
			c, p[0], p[1], fmtPct(fc), fmtPct(fl))
	}
	if fracLossy[fleet.ClassATypical] > 0 && fracLossy[fleet.ClassAHigh] >= 0 {
		r.Notef("key finding check — higher contention need not mean more loss: Typical lossy %s vs High lossy %s (paper: 1.05%% vs 0.36%%, 2.9x)",
			fmtPct(fracLossy[fleet.ClassATypical]), fmtPct(fracLossy[fleet.ClassAHigh]))
	}
	return r, nil
}

// Fig16ContentionLoss reproduces Figure 16: the fraction of lossy bursts per
// maximum contention level, per class.
func Fig16ContentionLoss(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig16",
		Title:  "% of bursts with loss vs max contention level",
		Header: []string{"contention", "RegA-Typical", "RegA-High", "RegB", "n(T/H/B)"},
	}
	grp := map[fleet.Class]*stats.RatioBucketed{}
	for _, c := range classOrder {
		grp[c] = stats.NewRatioBucketed(1)
	}
	maxLevel := 0
	err := eachBurst(src, func(c fleet.Class, b fleet.BurstRec) {
		g := grp[c]
		if g == nil {
			return
		}
		g.Add(float64(b.MaxContention), b.Lossy)
		if int(b.MaxContention) > maxLevel {
			maxLevel = int(b.MaxContention)
		}
	})
	if err != nil {
		return nil, err
	}
	cell := func(c fleet.Class, level int) (string, int) {
		for _, p := range grp[c].Points() {
			if int(p.Lo) == level {
				return fmtPct(p.Ratio), p.N
			}
		}
		return "-", 0
	}
	for level := 1; level <= maxLevel; level++ {
		t, nt := cell(fleet.ClassATypical, level)
		h, nh := cell(fleet.ClassAHigh, level)
		b, nb := cell(fleet.ClassB, level)
		r.AddRow(fmt.Sprintf("%d", level), t, h, b, fmt.Sprintf("%d/%d/%d", nt, nh, nb))
	}
	for _, c := range classOrder {
		r.AddRatioCurve(c.String(), grp[c].Points())
	}
	r.PlotOpts.XLabel = "max contention"
	r.PlotOpts.YLabel = "fraction of bursts with loss"
	r.Notef("paper: loss rises with contention within each class, yet RegA-Typical is lossier than RegA-High at comparable levels")
	return r, nil
}

// Fig16AltFirstLoss checks the paper's methodology note (§8): associating
// each lossy burst with the contention at its *first loss* instead of its
// lifetime maximum should give slightly lower levels but the same trends.
func Fig16AltFirstLoss(src Source) (*Result, error) {
	r := &Result{
		ID:     "fig16alt",
		Title:  "Lossy bursts: max contention vs contention at first loss",
		Header: []string{"class", "lossy bursts", "mean max-contention", "mean at-first-loss"},
	}
	type sums struct {
		n               int
		sumMax, sumCAFL float64
	}
	byClass := map[fleet.Class]*sums{}
	for _, c := range classOrder {
		byClass[c] = &sums{}
	}
	err := eachBurst(src, func(c fleet.Class, b fleet.BurstRec) {
		s := byClass[c]
		if s == nil || !b.Lossy {
			return
		}
		s.n++
		s.sumMax += float64(b.MaxContention)
		s.sumCAFL += float64(b.CAFL)
	})
	if err != nil {
		return nil, err
	}
	for _, c := range classOrder {
		s := byClass[c]
		if s.n == 0 {
			r.AddRow(c.String(), "0", "-", "-")
			continue
		}
		r.AddRow(c.String(), fmt.Sprintf("%d", s.n),
			fmtF(s.sumMax/float64(s.n)), fmtF(s.sumCAFL/float64(s.n)))
	}
	r.Notef("paper: bursts see slightly lower contention at first loss than their lifetime maximum, with similar trends — at-first-loss means should be <= max-contention means")
	return r, nil
}

// Fig17Discards reproduces Figure 17: the CDF across racks of switch
// congestion discards normalized to traffic volume, High vs Typical.
func Fig17Discards(src Source) (*Result, error) {
	perRack := map[fleet.Class]map[int][2]float64{
		fleet.ClassATypical: {},
		fleet.ClassAHigh:    {},
	}
	err := eachRun(src, func(run *fleet.RunSummary, c fleet.Class) error {
		m, ok := perRack[c]
		if !ok {
			return nil
		}
		v := m[run.RackID]
		v[0] += float64(run.Switch.DiscardBytes)
		v[1] += float64(run.Switch.EnqueuedBytes)
		m[run.RackID] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	norm := map[fleet.Class][]float64{}
	for _, c := range []fleet.Class{fleet.ClassATypical, fleet.ClassAHigh} {
		for _, v := range perRack[c] {
			if v[1] > 0 {
				norm[c] = append(norm[c], v[0]/v[1])
			}
		}
	}
	if len(norm[fleet.ClassATypical]) == 0 || len(norm[fleet.ClassAHigh]) == 0 {
		return nil, fmt.Errorf("missing rack classes")
	}
	cT := stats.NewCDF(norm[fleet.ClassATypical])
	cH := stats.NewCDF(norm[fleet.ClassAHigh])
	r := &Result{
		ID:     "fig17",
		Title:  "Normalized switch congestion discards per rack (CDF)",
		Header: []string{"percentile", "RegA-Typical", "RegA-High"},
	}
	for _, p := range []float64{25, 50, 75, 90, 99} {
		r.AddRow(fmt.Sprintf("p%.0f", p),
			fmt.Sprintf("%.3g", cT.Quantile(p)), fmt.Sprintf("%.3g", cH.Quantile(p)))
	}
	r.AddCDF("RegA-Typical", cT)
	r.AddCDF("RegA-High", cH)
	r.PlotOpts.XLabel = "discard bytes / ingress bytes"
	r.PlotOpts.YLabel = "fraction of racks"
	r.Notef("paper: RegA-High sees fewer discards per byte than RegA-Typical; measured means: Typical %.3g vs High %.3g",
		stats.Mean(norm[fleet.ClassATypical]), stats.Mean(norm[fleet.ClassAHigh]))
	return r, nil
}

// Fig18LengthLoss reproduces Figure 18: lossy-burst fraction versus burst
// length, contended vs non-contended, in RegA-Typical racks.
func Fig18LengthLoss(src Source) (*Result, error) {
	con := stats.NewRatioBucketed(2)
	non := stats.NewRatioBucketed(2)
	err := eachBurst(src, func(c fleet.Class, b fleet.BurstRec) {
		if c != fleet.ClassATypical {
			return
		}
		if b.MaxContention >= 2 {
			con.Add(float64(b.Len), b.Lossy)
		} else {
			non.Add(float64(b.Len), b.Lossy)
		}
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig18",
		Title:  "% of bursts with loss vs burst length (ms), RegA-Typical",
		Header: []string{"length (ms)", "contended", "n", "non-contended", "n"},
	}
	pts := map[float64][4]string{}
	var keys []float64
	add := func(ps []stats.RatioPoint, idx int) {
		for _, p := range ps {
			v, ok := pts[p.Lo]
			if !ok {
				keys = append(keys, p.Lo)
				v = [4]string{"-", "0", "-", "0"}
			}
			v[idx] = fmtPct(p.Ratio)
			v[idx+1] = fmt.Sprintf("%d", p.N)
			pts[p.Lo] = v
		}
	}
	add(con.Points(), 0)
	add(non.Points(), 2)
	sortFloats(keys)
	for _, k := range keys {
		v := pts[k]
		r.AddRow(fmt.Sprintf("%.0f-%.0f", k, k+2), v[0], v[1], v[2], v[3])
	}
	r.AddRatioCurve("contended", con.Points())
	r.AddRatioCurve("non-contended", non.Points())
	r.PlotOpts.XLabel = "burst length (ms)"
	r.PlotOpts.YLabel = "fraction of bursts with loss"
	r.Notef("paper: loss low for tiny bursts, rises sharply with length, then stabilizes or falls once congestion control can react (~8ms); contended bursts lossier beyond ~8ms")
	return r, nil
}

// Fig19IncastLoss reproduces Figure 19: lossy-burst fraction versus the
// burst's average connection count, contended vs non-contended,
// RegA-Typical.
func Fig19IncastLoss(src Source) (*Result, error) {
	con := stats.NewRatioBucketed(10)
	non := stats.NewRatioBucketed(10)
	err := eachBurst(src, func(c fleet.Class, b fleet.BurstRec) {
		if c != fleet.ClassATypical {
			return
		}
		if b.MaxContention >= 2 {
			con.Add(float64(b.AvgConns), b.Lossy)
		} else {
			non.Add(float64(b.AvgConns), b.Lossy)
		}
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig19",
		Title:  "% of bursts with loss vs avg connections (incast), RegA-Typical",
		Header: []string{"connections", "contended", "n", "non-contended", "n"},
	}
	pts := map[float64][4]string{}
	var keys []float64
	add := func(ps []stats.RatioPoint, idx int) {
		for _, p := range ps {
			v, ok := pts[p.Lo]
			if !ok {
				keys = append(keys, p.Lo)
				v = [4]string{"-", "0", "-", "0"}
			}
			v[idx] = fmtPct(p.Ratio)
			v[idx+1] = fmt.Sprintf("%d", p.N)
			pts[p.Lo] = v
		}
	}
	add(con.Points(), 0)
	add(non.Points(), 2)
	sortFloats(keys)
	for _, k := range keys {
		v := pts[k]
		r.AddRow(fmt.Sprintf("%.0f-%.0f", k, k+10), v[0], v[1], v[2], v[3])
	}
	r.AddRatioCurve("contended", con.Points())
	r.AddRatioCurve("non-contended", non.Points())
	r.PlotOpts.XLabel = "avg connections"
	r.PlotOpts.YLabel = "fraction of bursts with loss"
	r.Notef("paper: loss increases with connection count then stabilizes; contended bursts lose 3-4x more than non-contended at high incast")
	return r, nil
}

func sortFloats(xs []float64) { sort.Float64s(xs) }
