// Package experiments regenerates every table and figure of the paper's
// evaluation from a simulated fleet dataset. Each experiment returns a
// Result: the same rows/series the paper reports, plus paper-vs-measured
// notes for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/txtplot"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment key ("fig7", "tab2", ...).
	ID string
	// Title echoes the paper artifact.
	Title string
	// Header and Rows form the rendered table (figures render as the series
	// a plot would be drawn from).
	Header []string
	Rows   [][]string
	// Notes record paper-reported values next to measured ones.
	Notes []string
	// Plots optionally carries the figure's curves for terminal rendering.
	Plots    []txtplot.Series
	PlotOpts txtplot.Options
}

// AddCDF attaches one empirical CDF curve to the result's plot.
func (r *Result) AddCDF(name string, c *stats.CDF) {
	pts := c.Points(60)
	s := txtplot.Series{Name: name}
	for _, p := range pts {
		s.Points = append(s.Points, txtplot.Point{X: p.X, Y: p.Y})
	}
	r.Plots = append(r.Plots, s)
}

// AddRatioCurve attaches a bucketed ratio curve (x = bucket midpoint,
// y = ratio).
func (r *Result) AddRatioCurve(name string, pts []stats.RatioPoint) {
	s := txtplot.Series{Name: name}
	for _, p := range pts {
		s.Points = append(s.Points, txtplot.Point{X: (p.Lo + p.Hi) / 2, Y: p.Ratio})
	}
	r.Plots = append(r.Plots, s)
}

// RenderPlot draws the attached curves, if any.
func (r *Result) RenderPlot(w io.Writer) {
	if len(r.Plots) == 0 {
		return
	}
	fmt.Fprint(w, txtplot.Render(r.Plots, r.PlotOpts))
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as an aligned text table.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(r.Header) > 0 {
		line(r.Header)
		sep := make([]string, len(r.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the result as a GitHub-flavored markdown section.
func (r *Result) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r.Header, " | "))
		sep := make([]string, len(r.Header))
		for i := range sep {
			sep[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
		for _, row := range r.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	if len(r.Plots) > 0 {
		fmt.Fprintf(w, "\n```\n%s```\n", txtplot.Render(r.Plots, r.PlotOpts))
	}
	fmt.Fprintln(w)
}

// Source is the dataset view the experiments consume. Both the in-memory
// *fleet.Dataset and the sharded on-disk *dataset.Reader satisfy it, so every
// experiment works unchanged on either; with a sharded reader the runs stream
// one shard at a time and peak memory stays bounded by one rack plus the
// experiment's accumulators.
type Source interface {
	// Config returns the generation configuration.
	Config() fleet.Config
	// RackMetas returns the classified per-rack metadata.
	RackMetas() []fleet.RackMeta
	// EachRun streams every run with its rack's class, in dataset order. Runs
	// whose rack metadata is missing are skipped and counted, not delivered.
	// The *RunSummary is only valid during the callback — copy to retain.
	EachRun(fn func(r *fleet.RunSummary, c fleet.Class) error) (skipped int, err error)
}

// eachRun streams src's runs, discarding the skipped-run count (tab1 is the
// one experiment that surfaces it).
func eachRun(src Source, fn func(r *fleet.RunSummary, c fleet.Class) error) error {
	_, err := src.EachRun(fn)
	return err
}

// Generator produces one experiment from a dataset source.
type Generator func(src Source) (*Result, error)

// registry maps experiment ids to generators, populated by init functions in
// the per-figure files.
var registry = map[string]Generator{}

func register(id string, g Generator) { registry[id] = g }

// IDs lists registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, src Source) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g(src)
}

// RunAll executes every registered experiment in id order.
func RunAll(src Source) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		r, err := Run(id, src)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
