package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/stats"
)

func init() {
	register("tab1", Table1Dataset)
	register("sec6", Sec6Utilization)
	register("fig6", Fig06BurstFreq)
	register("fig7", Fig07BurstLen)
	register("fig8", Fig08Connections)
}

// Sec6Utilization reproduces the quantitative claims of §6's prose: server
// links are largely idle (median bursty-run average utilization 6.4%, p95
// <45%), utilization outside bursts is low (median 5.5%) and high inside
// (median 65.5%), and about half the ingress bytes travel in bursts.
func Sec6Utilization(src Source) (*Result, error) {
	var avg, inside, outside []float64
	var burstBytes, totalBytes float64
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		if run.Region != fleet.RegA {
			return nil
		}
		for _, s := range run.ServerRuns {
			if !s.Bursty {
				continue
			}
			avg = append(avg, s.AvgUtil)
			inside = append(inside, s.AvgUtilInside)
			outside = append(outside, s.AvgUtilOutside)
			burstBytes += s.BurstBytes
			totalBytes += s.InBytes
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(avg) == 0 {
		return nil, fmt.Errorf("no bursty server runs")
	}
	cAvg, cIn, cOut := stats.NewCDF(avg), stats.NewCDF(inside), stats.NewCDF(outside)
	r := &Result{
		ID:     "sec6",
		Title:  "Server-link utilization of bursty server runs (fractions of line rate)",
		Header: []string{"percentile", "run average", "inside bursts", "outside bursts"},
	}
	for _, p := range []float64{25, 50, 75, 95} {
		r.AddRow(fmt.Sprintf("p%.0f", p),
			fmtPct(cAvg.Quantile(p)), fmtPct(cIn.Quantile(p)), fmtPct(cOut.Quantile(p)))
	}
	r.Notef("paper: median run average 6.4%% (p95 <45%%), inside bursts 65.5%%, outside 5.5%%; measured medians: %s / %s / %s",
		fmtPct(cAvg.Quantile(50)), fmtPct(cIn.Quantile(50)), fmtPct(cOut.Quantile(50)))
	r.Notef("paper: 49.7%% of server-link ingress transferred in bursts; measured: %s",
		fmtPct(burstBytes/totalBytes))
	return r, nil
}

// Table1Dataset reproduces Table 1: the dataset summary per region.
func Table1Dataset(src Source) (*Result, error) {
	r := &Result{
		ID:     "tab1",
		Title:  "Dataset summary (1 simulated day)",
		Header: []string{"region", "runs", "server runs", "bursty server runs", "bursts", "racks"},
	}
	type regionAcc struct {
		runs, serverRuns, burstyRuns, bursts int
		rackSet                              map[int]bool
	}
	acc := map[string]*regionAcc{}
	skipped, err := src.EachRun(func(run *fleet.RunSummary, _ fleet.Class) error {
		a := acc[run.Region]
		if a == nil {
			a = &regionAcc{rackSet: map[int]bool{}}
			acc[run.Region] = a
		}
		a.runs++
		a.rackSet[run.RackID] = true
		a.serverRuns += len(run.ServerRuns)
		for _, s := range run.ServerRuns {
			if s.Bursty {
				a.burstyRuns++
			}
		}
		a.bursts += len(run.Bursts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, region := range []string{fleet.RegA, fleet.RegB} {
		a := acc[region]
		if a == nil {
			a = &regionAcc{rackSet: map[int]bool{}}
		}
		r.AddRow(region,
			fmt.Sprintf("%d", a.runs),
			fmt.Sprintf("%d", a.serverRuns),
			fmt.Sprintf("%d", a.burstyRuns),
			fmt.Sprintf("%d", a.bursts),
			fmt.Sprintf("%d", len(a.rackSet)))
		if a.serverRuns > 0 {
			r.Notef("%s: %s of server runs bursty (paper RegA: 34%%); scaled deployment — paper has 22.4K runs over 1000s of racks",
				region, fmtPct(float64(a.burstyRuns)/float64(a.serverRuns)))
		}
	}
	if skipped > 0 {
		r.Notef("degraded dataset: %d runs skipped (rack metadata missing)", skipped)
	}
	return r, nil
}

// Fig06BurstFreq reproduces Figure 6: the CDF of bursts per second across
// bursty server runs in RegA.
func Fig06BurstFreq(src Source) (*Result, error) {
	var freqs []float64
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		if run.Region != fleet.RegA {
			return nil
		}
		for _, s := range run.ServerRuns {
			if s.Bursty {
				freqs = append(freqs, s.BurstsPerSec)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("no bursty server runs")
	}
	cdf := stats.NewCDF(freqs)
	r := &Result{
		ID:     "fig6",
		Title:  "Frequency of bursts per bursty server run (CDF)",
		Header: []string{"percentile", "bursts/sec"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		r.AddRow(fmt.Sprintf("p%.0f", p), fmtF(cdf.Quantile(p)))
	}
	r.AddCDF("server runs", cdf)
	r.PlotOpts.XLabel = "bursts/sec"
	r.PlotOpts.YLabel = "fraction of bursty server runs"
	r.Notef("paper: median 7.5 bursts/s, p90 39.8; measured: median %s, p90 %s (n=%d)",
		fmtF(cdf.Quantile(50)), fmtF(cdf.Quantile(90)), cdf.N())
	return r, nil
}

// Fig07BurstLen reproduces Figure 7: the burst-length distribution for all,
// contended, and non-contended bursts in RegA.
func Fig07BurstLen(src Source) (*Result, error) {
	var all, contended, non []float64
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		if run.Region != fleet.RegA {
			return nil
		}
		for _, b := range run.Bursts {
			l := float64(b.Len)
			all = append(all, l)
			if b.MaxContention >= 2 {
				contended = append(contended, l)
			} else {
				non = append(non, l)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no bursts")
	}
	cAll, cCon, cNon := stats.NewCDF(all), stats.NewCDF(contended), stats.NewCDF(non)
	r := &Result{
		ID:     "fig7",
		Title:  "Burst length distribution (ms)",
		Header: []string{"percentile", "all", "contended", "non-contended"},
	}
	for _, p := range []float64{25, 50, 75, 90, 95} {
		r.AddRow(fmt.Sprintf("p%.0f", p),
			fmtF(cAll.Quantile(p)), fmtF(cCon.Quantile(p)), fmtF(cNon.Quantile(p)))
	}
	r.AddCDF("all", cAll)
	r.AddCDF("contended", cCon)
	r.AddCDF("non-contended", cNon)
	r.PlotOpts.XLabel = "burst length (ms)"
	r.PlotOpts.YLabel = "fraction of bursts"
	fracContended := float64(len(contended)) / float64(len(all))
	r.Notef("paper: median 2ms, p90 8ms; measured: median %s, p90 %s",
		fmtF(cAll.Quantile(50)), fmtF(cAll.Quantile(90)))
	r.Notef("paper: 84.8%% of RegA bursts contended, 88%% of non-contended <3ms; measured: %s contended, %s of non-contended <3ms",
		fmtPct(fracContended), fmtPct(cNon.At(2.999)))
	return r, nil
}

// Fig08Connections reproduces Figure 8: connection counts inside versus
// outside bursts across bursty server runs.
func Fig08Connections(src Source) (*Result, error) {
	var inside, outside []float64
	err := eachRun(src, func(run *fleet.RunSummary, _ fleet.Class) error {
		if run.Region != fleet.RegA {
			return nil
		}
		for _, s := range run.ServerRuns {
			if !s.Bursty {
				continue
			}
			inside = append(inside, s.AvgConnsInside)
			outside = append(outside, s.AvgConnsOutside)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(inside) == 0 {
		return nil, fmt.Errorf("no bursty server runs")
	}
	cIn, cOut := stats.NewCDF(inside), stats.NewCDF(outside)
	r := &Result{
		ID:     "fig8",
		Title:  "Average connections per sample, inside vs outside bursts (CDF)",
		Header: []string{"percentile", "inside-burst", "outside-burst"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		r.AddRow(fmt.Sprintf("p%.0f", p), fmtF(cIn.Quantile(p)), fmtF(cOut.Quantile(p)))
	}
	r.AddCDF("inside-burst", cIn)
	r.AddCDF("outside-burst", cOut)
	r.PlotOpts.XLabel = "avg connections"
	r.PlotOpts.YLabel = "fraction of server runs"
	// Median per-run ratio.
	var ratios []float64
	for i := range inside {
		if outside[i] > 0 {
			ratios = append(ratios, inside[i]/outside[i])
		}
	}
	r.Notef("paper: median 2.7x more connections inside bursts; measured median ratio: %s (n=%d)",
		fmtF(stats.Median(ratios)), len(ratios))
	return r, nil
}
