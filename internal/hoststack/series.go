package hoststack

import (
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ServerSeries is one server's host-stack latency timeseries aligned onto a
// SyncRun's grid. Histogram buckets cannot be linearly interpolated the way
// byte counters can, so alignment maps each aligned sample to the nearest
// source bucket instead; on the shared Millisampler grid both instruments
// have the same origin and interval, making the mapping exact in practice.
type ServerSeries struct {
	Host netsim.HostID
	Port int
	// Collected reports whether a started run was harvested from this host;
	// when false every series below is zero.
	Collected bool
	// ValidSamples is how many leading samples carry real data (shorter than
	// the run's Samples for truncated hosts).
	ValidSamples int

	// InP99Us / InP999Us are per-sample ingress host-stack delay quantiles in
	// microseconds (0 where the sample saw no segments).
	InP99Us  []float64
	InP999Us []float64
	// InSegs / EgSegs are per-sample observed segment counts.
	InSegs []uint64
	EgSegs []uint64

	// InBins / EgBins are the window-total latency histograms, for quantiles
	// over the whole collection.
	InBins [NumBins]uint64
	EgBins [NumBins]uint64
}

// Series is the rack-wide aligned host-stack collection riding beside the
// Millisampler series inside a SyncRun: same interval, sample count and
// origin.
type Series struct {
	Interval  sim.Time
	Samples   int
	StartWall clock.WallTime
	Servers   []ServerSeries
	// Collected counts servers that contributed data.
	Collected int
}

// TotalsIn sums the ingress window-total histograms across servers.
func (s *Series) TotalsIn() [NumBins]uint64 {
	var out [NumBins]uint64
	for i := range s.Servers {
		for b, v := range s.Servers[i].InBins {
			out[b] += v
		}
	}
	return out
}

// TotalsEg sums the egress window-total histograms across servers.
func (s *Series) TotalsEg() [NumBins]uint64 {
	var out [NumBins]uint64
	for i := range s.Servers {
		for b, v := range s.Servers[i].EgBins {
			out[b] += v
		}
	}
	return out
}

// AlignRuns aligns harvested host-stack runs onto a SyncRun grid (start,
// interval, samples — take them from the Millisampler SyncRun so the two
// instruments line up sample-for-sample). runs[i] may be nil for hosts whose
// harvest failed; ports pairs each run with its rack port.
func AlignRuns(runs []*Run, ports []int, start clock.WallTime, interval sim.Time, samples int) *Series {
	s := &Series{Interval: interval, Samples: samples, StartWall: start}
	for i, r := range runs {
		ss := ServerSeries{Port: ports[i]}
		if r != nil {
			ss.Host = r.Host
		}
		ss.InP99Us = make([]float64, samples)
		ss.InP999Us = make([]float64, samples)
		ss.InSegs = make([]uint64, samples)
		ss.EgSegs = make([]uint64, samples)
		if r == nil || !r.Started || r.Interval != interval {
			s.Servers = append(s.Servers, ss)
			continue
		}
		valid := r.Buckets
		if r.Truncated {
			valid = r.ValidBuckets
		}
		if valid <= 0 {
			s.Servers = append(s.Servers, ss)
			continue
		}
		ss.Collected = true
		s.Collected++

		// Nearest source bucket for aligned sample 0; the shared grid makes
		// off 0 for hosts whose run started exactly at the common origin.
		off := int((int64(start-r.StartWall) + int64(interval)/2) / int64(interval))
		covered := 0
		for j := 0; j < samples; j++ {
			b := off + j
			if b < 0 || b >= valid {
				continue
			}
			covered = j + 1
			inCell := r.Bucket(netsim.Ingress, b)
			egCell := r.Bucket(netsim.Egress, b)
			for bin, v := range inCell {
				ss.InSegs[j] += uint64(v)
				ss.InBins[bin] += uint64(v)
			}
			for bin, v := range egCell {
				ss.EgSegs[j] += uint64(v)
				ss.EgBins[bin] += uint64(v)
			}
			if p, ok := bucketQuantileUs(inCell, 0.99); ok {
				ss.InP99Us[j] = p
			}
			if p, ok := bucketQuantileUs(inCell, 0.999); ok {
				ss.InP999Us[j] = p
			}
		}
		ss.ValidSamples = covered
		s.Servers = append(s.Servers, ss)
	}
	return s
}
