package hoststack

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// allocHost builds a host+sampler pair and a working set of segments for the
// per-packet allocation assertions, mirroring internal/core/alloc_test.go:
// the tap models an in-kernel hook and must add no allocation or GC pressure
// to the packet path.
func allocHost(cfg Config) (*Sampler, []*netsim.Segment) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, netsim.HostConfig{ID: 1, Cores: 4})
	h.SetForwarder(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	s := NewSampler(h, cfg)
	segs := make([]*netsim.Segment, 64)
	for i := range segs {
		segs[i] = &netsim.Segment{
			Flow: netsim.FlowKey{Src: 7, Dst: 1, SrcPort: uint16(i), DstPort: 80},
			Size: 1500,
		}
	}
	return s, segs
}

// TestObserveZeroAlloc asserts the enabled hot path performs zero heap
// allocations per segment, in both directions.
func TestObserveZeroAlloc(t *testing.T) {
	s, segs := allocHost(Config{})
	s.Enable()
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		dir := netsim.Direction(i & 1)
		s.Observe(sim.Time(i)*sim.Microsecond, i&3, dir, segs[i&63], sim.Time(i&1023)*sim.Microsecond)
		i++
	})
	if allocs != 0 {
		t.Fatalf("enabled Observe allocates %.2f objects per segment, want 0", allocs)
	}
}

// TestObserveDisabledZeroAlloc asserts the installed-but-disabled fast path
// (tap attached between runs) also allocates nothing.
func TestObserveDisabledZeroAlloc(t *testing.T) {
	s, segs := allocHost(Config{})
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		dir := netsim.Direction(i & 1)
		s.Observe(sim.Time(i)*sim.Microsecond, i&3, dir, segs[i&63], sim.Time(i&1023)*sim.Microsecond)
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled Observe allocates %.2f objects per segment, want 0", allocs)
	}
	if s.DisabledCalls == 0 {
		t.Fatal("disabled path was never exercised")
	}
}
