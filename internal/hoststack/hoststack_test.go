package hoststack

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func testHost(cores int) (*sim.Engine, *netsim.Host) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, netsim.HostConfig{ID: 1, Cores: cores})
	h.SetForwarder(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	return eng, h
}

func TestBinBounds(t *testing.T) {
	cases := []struct {
		d    sim.Time
		want int
	}{
		{0, 0},
		{999 * sim.Nanosecond, 0},
		{sim.Microsecond, 1},
		{1500 * sim.Nanosecond, 1},
		{2 * sim.Microsecond, 2},
		{3 * sim.Microsecond, 2},
		{4 * sim.Microsecond, 3},
		{sim.Millisecond, 10},     // 1000 µs ∈ [512, 1024)
		{65 * sim.Millisecond, 16}, // 65000 µs ∈ [32768, 65536)
		{66 * sim.Millisecond, 17}, // past 2^16 µs: overflow bin
		{10 * sim.Second, NumBins - 1},
	}
	for _, c := range cases {
		if got := Bin(c.d); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bin k's contents must lie under BinUpperUs(k) for non-overflow bins.
	if BinUpperUs(0) != 1 || BinUpperUs(1) != 2 || BinUpperUs(11) != 2048 {
		t.Errorf("BinUpperUs bounds wrong: %v %v %v", BinUpperUs(0), BinUpperUs(1), BinUpperUs(11))
	}
}

func TestObserveAndRead(t *testing.T) {
	_, h := testHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 4})
	s.Attach()
	if !h.StackTapInstalled() {
		t.Fatal("tap not installed after Attach")
	}
	s.Enable()

	seg := &netsim.Segment{Size: 1500}
	// Bucket 0: two ingress observations, 10 µs and 3 µs; one egress, 100 µs.
	s.Observe(0, 0, netsim.Ingress, seg, 10*sim.Microsecond)
	s.Observe(100*sim.Microsecond, 1, netsim.Ingress, seg, 3*sim.Microsecond)
	s.Observe(200*sim.Microsecond, 0, netsim.Egress, seg, 100*sim.Microsecond)
	// Bucket 2: one ingress at 2 ms latency.
	s.Observe(2500*sim.Microsecond, 1, netsim.Ingress, seg, 2*sim.Millisecond)

	r := s.Read()
	if !r.Started {
		t.Fatal("run not started")
	}
	b0 := r.Bucket(netsim.Ingress, 0)
	if b0[Bin(10*sim.Microsecond)] != 1 || b0[Bin(3*sim.Microsecond)] != 1 {
		t.Fatalf("bucket 0 ingress bins wrong: %v", b0)
	}
	if r.Bucket(netsim.Egress, 0)[Bin(100*sim.Microsecond)] != 1 {
		t.Fatalf("bucket 0 egress bins wrong: %v", r.Bucket(netsim.Egress, 0))
	}
	if r.Bucket(netsim.Ingress, 2)[Bin(2*sim.Millisecond)] != 1 {
		t.Fatalf("bucket 2 ingress bins wrong: %v", r.Bucket(netsim.Ingress, 2))
	}
	tot := r.Totals(netsim.Ingress)
	var n uint64
	for _, v := range tot {
		n += v
	}
	if n != 3 {
		t.Fatalf("ingress totals = %d observations, want 3", n)
	}

	// Self-clearing: a segment beyond the 4 ms window disables the run.
	s.Observe(10*sim.Millisecond, 0, netsim.Ingress, seg, sim.Microsecond)
	if s.Enabled() {
		t.Fatal("run did not self-clear past the window")
	}
	if s.DisabledCalls != 0 {
		t.Fatalf("DisabledCalls = %d before any disabled-path call", s.DisabledCalls)
	}
	s.Observe(11*sim.Millisecond, 0, netsim.Ingress, seg, sim.Microsecond)
	if s.DisabledCalls != 1 {
		t.Fatalf("DisabledCalls = %d, want 1", s.DisabledCalls)
	}
}

// TestSoftirqQueueing exercises the virtual per-core service model: a train
// of same-core segments arriving faster than the service rate accumulates
// wait, and the wait survives run boundaries (the model runs while the tap is
// installed, enabled or not).
func TestSoftirqQueueing(t *testing.T) {
	_, h := testHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 10})
	s.Attach()
	s.Enable()

	seg := &netsim.Segment{Size: 9000}
	cost := softirqCost(9000)
	// Ten segments at the same instant on core 0: segment k waits k*cost.
	for i := 0; i < 10; i++ {
		s.Observe(sim.Microsecond, 0, netsim.Ingress, seg, 0)
	}
	r := s.Read()
	tot := r.Totals(netsim.Ingress)
	if tot[0] != 1 {
		t.Fatalf("first segment of an idle core should see no wait; totals %v", tot)
	}
	if got := tot[Bin(9*cost)]; got == 0 {
		t.Fatalf("queued segments did not accumulate wait (cost %v, totals %v)", cost, tot)
	}
	// A different core has its own queue: no wait.
	before := s.busyUntil[1]
	if before != 0 {
		t.Fatalf("core 1 horizon %v before any traffic", before)
	}

	// The horizon persists across Enable: the queue is continuous state.
	horizon := s.busyUntil[0]
	s.Enable()
	if s.busyUntil[0] != horizon {
		t.Fatal("Enable reset the soft-irq horizon; queue state must be continuous")
	}
}

// TestInjectDeliveryTap drives real segments through the host path and
// checks the tap measures Inject→delivery time, including a soft-irq stall
// hold.
func TestInjectDeliveryTap(t *testing.T) {
	eng, h := testHost(1)
	delivered := 0
	h.SetProtocolHandler(func(seg *netsim.Segment) { delivered++ })
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 100})
	s.Attach()
	s.Enable()

	mk := func() *netsim.Segment {
		return &netsim.Segment{Flow: netsim.FlowKey{Src: 7, Dst: 1, SrcPort: 9, DstPort: 80}, Size: 1500}
	}
	eng.At(sim.Millisecond, func() { h.Inject(mk()) })
	// Stall the host, inject during the stall: delivery happens at stall end,
	// and the measured span must include the hold.
	eng.At(2*sim.Millisecond, func() { h.Stall(5 * sim.Millisecond) })
	eng.At(3*sim.Millisecond, func() { h.Inject(mk()) })
	eng.Run()

	if delivered != 2 {
		t.Fatalf("delivered %d segments, want 2", delivered)
	}
	r := s.Read()
	tot := r.Totals(netsim.Ingress)
	// The stalled segment was held 4 ms (injected t=3ms, flushed t=7ms).
	if got := tot[Bin(4*sim.Millisecond)]; got != 1 {
		t.Fatalf("stall hold not measured: totals %v", tot)
	}
}

func TestCrashTruncation(t *testing.T) {
	eng, h := testHost(1)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 10})
	s.Attach()
	s.Enable()

	seg := &netsim.Segment{Size: 1500}
	eng.At(sim.Millisecond, func() {
		s.Observe(eng.Now(), 0, netsim.Ingress, seg, 5*sim.Microsecond)
	})
	eng.At(3500*sim.Microsecond, func() {
		s.Observe(eng.Now(), 0, netsim.Ingress, seg, 5*sim.Microsecond)
	})
	eng.At(4*sim.Millisecond, func() { h.Crash(10 * sim.Millisecond) })
	eng.Run()

	if s.Attached() {
		t.Fatal("sampler still attached after crash")
	}
	if h.StackTapInstalled() {
		t.Fatal("tap survived the crash")
	}
	r := s.Read()
	if !r.Truncated {
		t.Fatal("run not truncated")
	}
	if r.ValidBuckets != 3 {
		t.Fatalf("ValidBuckets = %d, want 3 (crash at +3 ms)", r.ValidBuckets)
	}
	// Bucket 0 (first segment) survives; bucket 2 (second) too; nothing past
	// the truncation.
	if r.Bucket(netsim.Ingress, 0)[Bin(5*sim.Microsecond)] != 1 {
		t.Fatal("pre-crash bucket lost")
	}
	var tail uint64
	for b := r.ValidBuckets; b < r.Buckets; b++ {
		for _, v := range r.Bucket(netsim.Ingress, b) {
			tail += uint64(v)
		}
	}
	if tail != 0 {
		t.Fatalf("%d counts past the truncation point", tail)
	}
}

func TestQuantileUs(t *testing.T) {
	var bins [NumBins]uint64
	if _, ok := QuantileUs(bins[:], 0.99); ok {
		t.Fatal("empty histogram produced a quantile")
	}
	bins[1] = 90 // [1,2) µs
	bins[5] = 9  // [16,32) µs
	bins[11] = 1 // [1024,2048) µs
	if p, _ := QuantileUs(bins[:], 0.50); p != 2 {
		t.Fatalf("p50 = %v, want 2", p)
	}
	if p, _ := QuantileUs(bins[:], 0.99); p != 32 {
		t.Fatalf("p99 = %v, want 32", p)
	}
	if p, _ := QuantileUs(bins[:], 0.999); p != 2048 {
		t.Fatalf("p999 = %v, want 2048", p)
	}
}

func TestAlignRuns(t *testing.T) {
	interval := sim.Millisecond
	mkRun := func(startWall clock.WallTime, buckets int) *Run {
		r := &Run{Host: 1, Interval: interval, Buckets: buckets, Started: true, StartWall: startWall}
		for d := 0; d < NumDirs; d++ {
			r.Bins[d] = make([]uint32, buckets*NumBins)
		}
		return r
	}
	r := mkRun(0, 4)
	// Bucket 1: 100 ingress segments in bin 1, 1 in bin 11 → p99 = 2048 µs
	// only at q beyond 100/101.
	r.Bins[0][1*NumBins+1] = 99
	r.Bins[0][1*NumBins+11] = 1
	r.Bins[1][1*NumBins+3] = 5

	s := AlignRuns([]*Run{r, nil}, []int{0, 1}, 0, interval, 3)
	if len(s.Servers) != 2 || s.Collected != 1 {
		t.Fatalf("servers %d collected %d", len(s.Servers), s.Collected)
	}
	ss := &s.Servers[0]
	if !ss.Collected || ss.ValidSamples != 3 {
		t.Fatalf("server 0: collected=%v valid=%d", ss.Collected, ss.ValidSamples)
	}
	if ss.InSegs[1] != 100 || ss.EgSegs[1] != 5 {
		t.Fatalf("sample 1 counts: in %d eg %d", ss.InSegs[1], ss.EgSegs[1])
	}
	if ss.InP99Us[1] != 2 {
		t.Fatalf("sample 1 p99 = %v, want 2 (99th of 100 lands in bin 1)", ss.InP99Us[1])
	}
	if ss.InP999Us[1] != 2048 {
		t.Fatalf("sample 1 p999 = %v, want 2048", ss.InP999Us[1])
	}
	if ss.InBins[1] != 99 || ss.InBins[11] != 1 {
		t.Fatalf("window totals wrong: %v", ss.InBins)
	}
	if s.Servers[1].Collected {
		t.Fatal("nil run marked collected")
	}
	tin := s.TotalsIn()
	if tin[1] != 99 || tin[11] != 1 {
		t.Fatalf("TotalsIn wrong: %v", tin)
	}

	// A run starting 1 ms before the common origin maps sample 0 → bucket 1.
	early := mkRun(0, 4)
	early.Bins[0][1*NumBins+2] = 7
	s2 := AlignRuns([]*Run{early}, []int{0}, clock.WallTime(interval), interval, 2)
	if s2.Servers[0].InSegs[0] != 7 {
		t.Fatalf("offset mapping wrong: sample 0 = %d, want 7", s2.Servers[0].InSegs[0])
	}

	// Truncated runs stop contributing at their valid region.
	tr := mkRun(0, 4)
	tr.Truncated = true
	tr.ValidBuckets = 2
	tr.Bins[0][0*NumBins+1] = 3
	s3 := AlignRuns([]*Run{tr}, []int{0}, 0, interval, 4)
	if s3.Servers[0].ValidSamples != 2 {
		t.Fatalf("truncated valid samples = %d, want 2", s3.Servers[0].ValidSamples)
	}
}

func TestMemoryFootprint(t *testing.T) {
	_, h := testHost(4)
	s := NewSampler(h, Config{})
	// 4 cores × 2 dirs × 2000 buckets × 18 bins × 4 bytes = 1.152 MB — the
	// instrument stays lighter than Millisampler's ≈3.6 MB.
	if got := s.MemoryFootprint(); got != 4*2*2000*18*4 {
		t.Fatalf("footprint %d", got)
	}
}
