// Package hoststack implements the repository's second instrument: a
// netstacklat-style host-stack latency sampler that runs beside Millisampler
// ("Waiting at the front door", arXiv 2606.02057). Millisampler counts bytes
// at the tc hooks; this sampler measures how long each segment spends inside
// the host network stack — the blind spot between the NIC and the socket —
// and aggregates the result as per-CPU, per-direction latency histograms on
// the same millisecond grid as core.Sampler, so the two instruments align
// sample-for-sample inside a SyncRun.
//
// Instrumentation points (see netsim.Host.SetStackTap):
//
//   - ingress: NIC arrival (Host.Inject stamps Segment.StackArrival) to
//     socket delivery. The measured span includes soft-irq stall holds and
//     GRO coalescing delay — the host-side mechanisms the paper's §4.6
//     artifacts come from — plus a virtual per-core soft-irq service model:
//     each observed segment occupies its RSS core for a deterministic
//     service time, and the wait behind earlier segments on the same core is
//     added to the span. The model is pure bookkeeping (it schedules no
//     events and perturbs nothing), so enabling the sampler never changes
//     simulation behavior or dataset digests.
//   - egress: the NIC's committed serialization backlog at Send time — how
//     long the segment will sit in the host's transmit path before reaching
//     the wire.
//
// Latencies are binned into log-spaced buckets (netstacklat-style): bin 0 is
// <1 µs, bin k covers [2^(k-1), 2^k) µs, the last bin collects everything
// ≥ 2^(NumBins-2) µs (~65 ms). Counts are per-CPU uint32 arrays, flat and
// allocation-free on the hot path, exactly like the Millisampler counters.
package hoststack

import (
	"math/bits"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// NumDirs is the number of observed directions (netsim.Ingress, Egress).
const NumDirs = 2

// NumBins is the number of log-spaced latency bins per (direction, time
// bucket) cell: <1 µs, then powers of two up to the ≥65 ms overflow bin.
const NumBins = 18

// Bin maps a latency span onto its histogram bin.
func Bin(d sim.Time) int {
	if d < sim.Microsecond {
		return 0
	}
	b := bits.Len64(uint64(d / sim.Microsecond))
	if b > NumBins-1 {
		b = NumBins - 1
	}
	return b
}

// BinUpperUs returns bin b's exclusive upper bound in microseconds (the
// value quantile estimates report). The overflow bin reports its lower
// bound, the only finite statement it can make.
func BinUpperUs(b int) float64 {
	if b >= NumBins-1 {
		return float64(uint64(1) << (NumBins - 2))
	}
	return float64(uint64(1) << b)
}

// Virtual soft-irq service model: processing a segment occupies its RSS core
// for softirqFixed plus softirqBytesPerNs bytes per nanosecond. The rates
// give a single core roughly 2.8× the host's 12.5 Gb/s line rate, so the
// model queues only when RSS concentrates bursty flows onto one core — the
// per-CPU backlog netstacklat observes in production.
const (
	softirqFixed     = 250 * sim.Nanosecond
	softirqBytesPerN = 5 // bytes processed per nanosecond
)

// softirqCost returns the virtual service time of one segment.
func softirqCost(size int) sim.Time {
	return softirqFixed + sim.Time(size/softirqBytesPerN)
}

// Config parameterizes a sampler run. Interval and Buckets mirror
// core.Config so both instruments share one time grid.
type Config struct {
	// Interval is the time-bucket width (default 1 ms).
	Interval sim.Time
	// Buckets is the number of time buckets (default 2000, Millisampler's).
	Buckets int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = sim.Millisecond
	}
	if c.Buckets <= 0 {
		c.Buckets = 2000
	}
	return c
}

// Window returns the run's observation span.
func (c Config) Window() sim.Time { return c.Interval * sim.Time(c.Buckets) }

// perCPU is one core's histogram block: a flat uint32 array indexed
// (direction, time bucket, latency bin), direction-major.
type perCPU struct {
	bins []uint32 // NumDirs × Buckets × NumBins
}

// Sampler is one host's host-stack latency instrument. Attach installs it as
// the host's stack tap; Enable arms a run on the Millisampler grid; Read
// harvests. Its hot path (Observe) performs no allocation, enabled or not.
type Sampler struct {
	cfg  Config
	host *netsim.Host

	enabled   bool
	started   bool
	startWall clock.WallTime
	cpus      []perCPU

	// busyUntil is the virtual soft-irq model's per-core horizon. It advances
	// on every observed ingress segment while the tap is installed — also
	// between runs — so a run armed mid-burst sees warm queue state.
	busyUntil []sim.Time

	attached bool

	truncated bool
	truncWall clock.WallTime

	// DisabledCalls counts tap invocations on the disabled fast path.
	DisabledCalls uint64
}

// NewSampler builds a sampler for host. It is not yet attached. Like
// core.Sampler it registers a crash hook: a crash mid-run freezes the run as
// truncated and the tap is gone (it does not survive a reboot).
func NewSampler(host *netsim.Host, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	s := &Sampler{cfg: cfg, host: host}
	s.cpus = make([]perCPU, host.Cores)
	for i := range s.cpus {
		s.cpus[i].bins = make([]uint32, NumDirs*cfg.Buckets*NumBins)
	}
	s.busyUntil = make([]sim.Time, host.Cores)
	host.OnCrash(s.onHostCrash)
	return s
}

func (s *Sampler) onHostCrash() {
	s.attached = false
	for i := range s.busyUntil {
		s.busyUntil[i] = 0
	}
	if !s.enabled {
		return
	}
	s.enabled = false
	s.truncated = true
	if s.started {
		s.truncWall = s.host.Clock.Now(s.host.Engine().Now())
	}
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Attach installs the sampler as the host's stack tap.
func (s *Sampler) Attach() {
	if s.attached {
		return
	}
	s.host.SetStackTap(s)
	s.attached = true
}

// Detach removes the tap, guaranteeing zero per-packet cost until the next
// run.
func (s *Sampler) Detach() {
	if !s.attached {
		return
	}
	s.host.SetStackTap(nil)
	s.attached = false
}

// Attached reports whether the tap is installed.
func (s *Sampler) Attached() bool { return s.attached }

// Enable arms a run: histograms reset, the first observed segment sets the
// time origin (start-on-first-packet, like Millisampler).
func (s *Sampler) Enable() {
	for i := range s.cpus {
		b := s.cpus[i].bins
		for j := range b {
			b[j] = 0
		}
	}
	s.started = false
	s.startWall = 0
	s.truncated = false
	s.truncWall = 0
	s.enabled = true
}

// Enabled reports whether the run is still collecting; it clears itself when
// a segment beyond the last bucket is observed.
func (s *Sampler) Enabled() bool { return s.enabled }

// MarkStart pins an armed run's time origin to the host's current wall
// clock, mirroring core.Sampler.MarkStart so both instruments can be pinned
// to the identical grid origin.
func (s *Sampler) MarkStart() {
	if !s.enabled || s.started {
		return
	}
	s.started = true
	s.startWall = s.host.Clock.Now(s.host.Engine().Now())
}

// Observe implements netsim.StackTap — the in-kernel hot path.
func (s *Sampler) Observe(now sim.Time, core int, dir netsim.Direction, seg *netsim.Segment, span sim.Time) {
	if dir == netsim.Ingress {
		// Virtual soft-irq queue: wait behind earlier segments on this core,
		// then occupy it. Runs while the tap is installed, enabled or not, so
		// the queue state is continuous across run boundaries.
		if wait := s.busyUntil[core] - now; wait > 0 {
			span += wait
			s.busyUntil[core] += softirqCost(seg.Size)
		} else {
			s.busyUntil[core] = now + softirqCost(seg.Size)
		}
	}
	if !s.enabled {
		s.DisabledCalls++
		return
	}
	wall := s.host.Clock.Now(now)
	if !s.started {
		s.started = true
		s.startWall = wall
	}
	elapsed := int64(wall) - int64(s.startWall)
	if elapsed < 0 {
		elapsed = 0
	}
	bucket := int(elapsed / int64(s.cfg.Interval))
	if bucket >= s.cfg.Buckets {
		s.enabled = false
		return
	}
	idx := (int(dir)*s.cfg.Buckets+bucket)*NumBins + Bin(span)
	s.cpus[core].bins[idx]++
}

// Read aggregates the per-CPU histograms into a Run. Safe to call at any
// time, mirroring core.Sampler.Read.
func (s *Sampler) Read() *Run {
	r := &Run{
		Host:      s.host.ID,
		Interval:  s.cfg.Interval,
		Buckets:   s.cfg.Buckets,
		Started:   s.started,
		StartWall: s.startWall,
		Truncated: s.truncated,
	}
	if s.truncated && s.started {
		elapsed := int64(s.truncWall) - int64(s.startWall)
		vb := int(elapsed / int64(s.cfg.Interval))
		if vb < 0 {
			vb = 0
		}
		if vb > s.cfg.Buckets {
			vb = s.cfg.Buckets
		}
		r.ValidBuckets = vb
	}
	for d := 0; d < NumDirs; d++ {
		r.Bins[d] = make([]uint32, s.cfg.Buckets*NumBins)
	}
	for i := range s.cpus {
		src := s.cpus[i].bins
		for d := 0; d < NumDirs; d++ {
			dst := r.Bins[d]
			block := src[d*s.cfg.Buckets*NumBins : (d+1)*s.cfg.Buckets*NumBins]
			for j, v := range block {
				dst[j] += uint32(v)
			}
		}
	}
	if r.Truncated {
		// Drop the partially-filled crash bucket and everything after it.
		for d := 0; d < NumDirs; d++ {
			for j := r.ValidBuckets * NumBins; j < len(r.Bins[d]); j++ {
				r.Bins[d][j] = 0
			}
		}
	}
	return r
}

// MemoryFootprint returns the in-kernel byte footprint of the histogram
// maps.
func (s *Sampler) MemoryFootprint() int {
	return len(s.cpus) * NumDirs * s.cfg.Buckets * NumBins * 4
}

// Run is one completed host-stack collection on one host: the aggregated
// (cross-CPU) per-direction, per-time-bucket latency histograms.
type Run struct {
	Host     netsim.HostID
	Interval sim.Time
	Buckets  int
	// Started reports whether any segment was observed while enabled.
	Started   bool
	StartWall clock.WallTime
	// Truncated / ValidBuckets mirror core.Run's crash semantics.
	Truncated    bool
	ValidBuckets int
	// Bins[dir] holds Buckets × NumBins counts, bucket-major.
	Bins [NumDirs][]uint32
}

// Bucket returns the latency histogram of one (direction, time bucket)
// cell.
func (r *Run) Bucket(dir netsim.Direction, bucket int) []uint32 {
	return r.Bins[int(dir)][bucket*NumBins : (bucket+1)*NumBins]
}

// Totals sums a direction's histograms over the whole window.
func (r *Run) Totals(dir netsim.Direction) [NumBins]uint64 {
	var out [NumBins]uint64
	src := r.Bins[int(dir)]
	for i, v := range src {
		out[i%NumBins] += uint64(v)
	}
	return out
}

// QuantileUs estimates quantile q (0..1) in microseconds from a latency
// histogram: the upper bound of the first bin at which the cumulative count
// reaches q. The second result is false when the histogram is empty.
func QuantileUs(bins []uint64, q float64) (float64, bool) {
	var total uint64
	for _, v := range bins {
		total += v
	}
	if total == 0 {
		return 0, false
	}
	// Rank rounds up: the quantile is the first bin at which at least
	// ceil(q·total) observations have accumulated.
	need := uint64(q * float64(total))
	if float64(need) < q*float64(total) {
		need++
	}
	if need < 1 {
		need = 1
	}
	var cum uint64
	for b, v := range bins {
		cum += v
		if cum >= need {
			return BinUpperUs(b), true
		}
	}
	return BinUpperUs(len(bins) - 1), true
}

// bucketQuantileUs is QuantileUs over one time bucket's uint32 cell.
func bucketQuantileUs(cell []uint32, q float64) (float64, bool) {
	var bins [NumBins]uint64
	for i, v := range cell {
		bins[i] = uint64(v)
	}
	return QuantileUs(bins[:], q)
}
