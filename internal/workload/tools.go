package workload

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// MulticastBeacon reproduces the §4.5 time-synchronization validation tool:
// a sender emits periodic bursts to a rack-local multicast address; the ToR
// replicates each packet to all subscribers, so on idle links every
// subscriber receives the burst at the same instant — any skew seen in
// SyncMillisampler output is collection skew, not network skew.
type MulticastBeacon struct {
	rack    *testbed.Rack
	group   netsim.GroupID
	period  sim.Time
	segs    int
	segSize int
	pacing  sim.Time
	stopped bool

	// Sent counts bursts emitted.
	Sent int
}

// NewMulticastBeacon subscribes the given server ports to a group and
// prepares a beacon sourced from remote 0. Production multicast is rate
// limited; pacingBps caps the in-burst rate accordingly.
func NewMulticastBeacon(rack *testbed.Rack, subscribers []int, period sim.Time, burstBytes int, pacingBps int64) *MulticastBeacon {
	const group netsim.GroupID = 1
	for _, p := range subscribers {
		rack.Switch.Subscribe(group, p)
	}
	segSize := 9000
	segs := burstBytes / segSize
	if segs < 1 {
		segs = 1
	}
	var pacing sim.Time
	if pacingBps > 0 {
		pacing = sim.Time(int64(segSize) * 8 * int64(sim.Second) / pacingBps)
	}
	return &MulticastBeacon{
		rack: rack, group: group, period: period,
		segs: segs, segSize: segSize, pacing: pacing,
	}
}

// Start begins emitting bursts every period.
func (b *MulticastBeacon) Start() {
	var fire func()
	fire = func() {
		if b.stopped {
			return
		}
		b.emitBurst()
		b.rack.Eng.After(b.period, fire)
	}
	b.rack.Eng.After(b.period, fire)
}

// Stop halts the beacon.
func (b *MulticastBeacon) Stop() { b.stopped = true }

func (b *MulticastBeacon) emitBurst() {
	b.Sent++
	src := b.rack.Remotes[0]
	pool := src.Pool()
	for i := 0; i < b.segs; i++ {
		seg := pool.Get()
		seg.Flow = netsim.FlowKey{Src: src.ID, Dst: 0, SrcPort: 5353, DstPort: 5353}
		seg.Group = b.group
		seg.Size = b.segSize
		seg.Flags = netsim.FlagMulticast
		b.rack.Eng.AfterCall(sim.Time(i)*b.pacing, hostSend, src, seg, 0)
	}
}

// hostSend is the pooled-event continuation of the paced burst emission.
func hostSend(a1, a2 any, _ int64) { a1.(*netsim.Host).Send(a2.(*netsim.Segment)) }

// BurstGen reproduces the §4.5 burst-identification validation tool: each
// client (a rack server) periodically receives a fixed-volume burst from a
// dedicated sender, with request timing driven by the client's local clock.
// The request itself is short-circuited: the sender transmits at the instant
// the client's clock fires (half-RTT earlier than reality, irrelevant at
// 1 ms granularity).
type BurstGen struct {
	rack    *testbed.Rack
	conns   []*transport.Conn
	clients []int
	period  sim.Time
	volume  int64
	stopped bool

	// Requests counts bursts requested per client.
	Requests []int
}

// NewBurstGen prepares one sender per client server. Senders are distinct
// remotes, mirroring the paper's five servers spread across five racks.
func NewBurstGen(rack *testbed.Rack, clients []int, period sim.Time, volume int64) *BurstGen {
	g := &BurstGen{
		rack: rack, clients: clients, period: period, volume: volume,
		Requests: make([]int, len(clients)),
	}
	for i, c := range clients {
		ep := rack.RemoteEPs[i%len(rack.RemoteEPs)]
		g.conns = append(g.conns, ep.Connect(rack.Servers[c].ID, 80, transport.Options{}))
	}
	return g
}

// Start begins the periodic request loops, one per client, each phased by
// the client's local clock offset.
func (g *BurstGen) Start() {
	for i := range g.clients {
		i := i
		srvClock := g.rack.Servers[g.clients[i]].Clock
		var fire func()
		fire = func() {
			if g.stopped {
				return
			}
			g.Requests[i]++
			g.conns[i].Send(g.volume)
			// Next request when the client's local clock has advanced one
			// period; to first order that is one true period minus clock
			// drift, which the per-host clock model makes negligible.
			g.rack.Eng.After(g.period, fire)
		}
		// Initial phase: clients start on their local clock's next period
		// boundary, so starts are offset by (negative) clock offsets.
		off := srvClock.Offset(g.rack.Eng.Now())
		first := g.period - off
		if first < 0 {
			first = 0
		}
		g.rack.Eng.After(first, fire)
	}
}

// Stop halts all request loops.
func (g *BurstGen) Stop() { g.stopped = true }
