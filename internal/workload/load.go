package workload

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// backgroundTick is the pacing quantum of smooth background traffic.
const backgroundTick = 2 * sim.Millisecond

// ServerLoad drives one profile's traffic into one rack server from
// fabric-side remote hosts. Request semantics are short-circuited: instead
// of modeling a request packet, the generator directly schedules the remote
// peers' responses (a half-RTT bookkeeping difference, irrelevant at 1 ms
// sampling).
type ServerLoad struct {
	rack   *testbed.Rack
	server int
	prof   Profile
	rng    *sim.RNG

	pool    []*transport.Conn
	bgConns []*transport.Conn
	bgBytes int64
	next    int // round-robin cursor over the pool
	stopped bool

	// Bursts counts bursts issued; FreshDials counts incast connections
	// dialed.
	Bursts     int
	FreshDials int
}

// Install wires a profile onto rack server `server` and starts its traffic
// processes immediately.
func Install(rack *testbed.Rack, server int, prof Profile, rng *sim.RNG) *ServerLoad {
	l := &ServerLoad{rack: rack, server: server, prof: prof, rng: rng}
	dst := rack.Servers[server].ID

	fan := prof.FanIn
	if fan < 1 {
		fan = 1
	}
	if !prof.FreshConns {
		for i := 0; i < fan; i++ {
			ep := l.pickRemote()
			l.pool = append(l.pool, ep.Connect(dst, 80, transport.Options{}))
		}
	}
	// Background chatter rides a small pool of persistent connections
	// (every production host keeps many half-idle connections alive), so
	// the per-sample connection estimate outside bursts is several, not
	// one — the paper's Fig 8 baseline.
	for i := 0; i < BackgroundPoolSize; i++ {
		l.bgConns = append(l.bgConns, l.pickRemote().Connect(dst, 81, transport.Options{}))
	}
	rate := rack.Servers[server].LineRateBps()
	l.bgBytes = int64(prof.BackgroundUtil * float64(rate) / 8 * backgroundTick.Seconds())

	l.scheduleBackground()
	l.scheduleBurst()
	return l
}

// Stop halts future background ticks and bursts.
func (l *ServerLoad) Stop() { l.stopped = true }

func (l *ServerLoad) pickRemote() *transport.Endpoint {
	return l.rack.RemoteEPs[l.rng.Intn(len(l.rack.RemoteEPs))]
}

func (l *ServerLoad) scheduleBackground() {
	if l.bgBytes <= 0 {
		return
	}
	// Desynchronize ticks across servers.
	first := sim.Time(l.rng.Int63n(int64(backgroundTick)))
	var tick func()
	tick = func() {
		if l.stopped {
			return
		}
		// Spread the tick's bytes over the background pool so several
		// connections are active in every sampling bucket.
		per := l.bgBytes / int64(len(l.bgConns))
		if per < 1 {
			per = 1
		}
		for _, c := range l.bgConns {
			c.Send(per)
		}
		l.rack.Eng.After(backgroundTick, tick)
	}
	l.rack.Eng.After(first, tick)
}

func (l *ServerLoad) scheduleBurst() {
	if l.prof.BurstsPerSec <= 0 {
		return
	}
	mean := sim.Time(float64(sim.Second) / l.prof.BurstsPerSec)
	var fire func()
	schedule := func() {
		l.rack.Eng.After(l.rng.ExpTime(mean), fire)
	}
	fire = func() {
		if l.stopped {
			return
		}
		l.burst()
		schedule()
	}
	schedule()
}

// burst issues one burst of log-normal volume across the profile's fan-in.
func (l *ServerLoad) burst() {
	l.Bursts++
	volume := l.rng.LogNormal(math.Log(l.prof.VolumeMedian), l.prof.VolumeSigma)
	fan := l.prof.FanIn
	if fan < 1 {
		fan = 1
	}
	per := int64(volume / float64(fan))
	if per < 1 {
		per = 1
	}
	if l.prof.FreshConns {
		dst := l.rack.Servers[l.server].ID
		for i := 0; i < fan; i++ {
			c := l.pickRemote().Connect(dst, 80, transport.Options{})
			c.Send(per)
			c.OnDrain = c.Close
			l.FreshDials++
		}
		return
	}
	for i := 0; i < fan; i++ {
		l.pool[l.next].Send(per)
		l.next = (l.next + 1) % len(l.pool)
	}
}

// InstallRack installs one profile per server (profiles[i] drives server i)
// and returns the loads. Each load gets a forked RNG stream so racks are
// reproducible independent of ordering.
func InstallRack(rack *testbed.Rack, profiles []Profile, rng *sim.RNG) ([]*ServerLoad, error) {
	if len(profiles) != len(rack.Servers) {
		return nil, fmt.Errorf("workload: %d profiles for %d servers (need one per server)",
			len(profiles), len(rack.Servers))
	}
	loads := make([]*ServerLoad, len(profiles))
	for i, p := range profiles {
		loads[i] = Install(rack, i, p, rng.Fork(uint64(i)))
	}
	return loads, nil
}

// egressLoad is reserved for future egress-side workloads; the paper's
// analysis is ingress-only (§5: ingress constitutes the major source of
// discards), so no egress generator is installed by default.
var _ = netsim.Egress
