package workload

import (
	"math"

	"repro/internal/sim"
)

// BurstEvent is one scheduled burst of a profile's Poisson process: the fire
// instant and the payload volume drawn for it.
type BurstEvent struct {
	At     sim.Time
	Volume float64
}

// DrawBursts pre-draws a profile's burst process over [0, span): exponential
// inter-arrivals at mean 1/BurstsPerSec and log-normal volumes, the same
// distributions (and the same per-fire draw order) ServerLoad realizes live.
// A pre-drawn schedule is therefore exchangeable with the live process, which
// is what gives the hybrid-fidelity burst detector its lookahead: the whole
// window's bursts are known before the engine runs.
func DrawBursts(prof Profile, span sim.Time, rng *sim.RNG) []BurstEvent {
	if prof.BurstsPerSec <= 0 {
		return nil
	}
	mean := sim.Time(float64(sim.Second) / prof.BurstsPerSec)
	var out []BurstEvent
	for t := rng.ExpTime(mean); t < span; t += rng.ExpTime(mean) {
		out = append(out, BurstEvent{
			At:     t,
			Volume: rng.LogNormal(math.Log(prof.VolumeMedian), prof.VolumeSigma),
		})
	}
	return out
}

// BackgroundBytesPerSec returns the profile's smooth offered load in payload
// bytes per second against a line rate — the per-host rate the fluid model
// advances quiet intervals with.
func (p Profile) BackgroundBytesPerSec(lineRateBps int64) float64 {
	return p.BackgroundUtil * float64(lineRateBps) / 8
}

// BackgroundPoolSize is the number of persistent connections background
// chatter rides on (see Install); exported so the fluid model can mirror the
// per-bucket connection-count baseline without dialing them.
const BackgroundPoolSize = 5

// BackgroundTick is the pacing quantum of smooth background traffic.
const BackgroundTick = backgroundTick
