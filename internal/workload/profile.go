// Package workload generates service traffic against a rack testbed: smooth
// background load, bursty request fan-in, heavy incast, and ML-training
// ingest, plus the two validation tools of paper §4.5 (the rack-local
// multicast beacon and the client/server burst generator).
//
// Profiles are calibrated so the paper's distributional shapes emerge from
// the transport and switch mechanics rather than being scripted: burst
// volumes are heavy-tailed around a ~1.8 MB median, burst frequencies put
// the median bursty server run near 7.5 bursts/s, ML-dominated racks reach
// high average contention through high-duty-cycle ingest, and loss arises
// only where DCTCP cannot help (fresh-connection incast, shrunken DT
// thresholds under contention).
package workload

import "repro/internal/sim"

// Profile describes one service's traffic into a single server.
type Profile struct {
	// Name identifies the service type.
	Name string
	// BackgroundUtil is smooth non-bursty load as a fraction of the server
	// line rate; it keeps links "largely idle but never silent" (paper §6
	// finds 5.5% median utilization outside bursts).
	BackgroundUtil float64
	// BurstsPerSec is the mean rate of the Poisson burst process.
	BurstsPerSec float64
	// VolumeMedian is the median burst volume in bytes (log-normal).
	VolumeMedian float64
	// VolumeSigma is the log-normal sigma of burst volumes.
	VolumeSigma float64
	// FanIn is how many connections carry each burst.
	FanIn int
	// FreshConns dials new connections for every burst (heavy-incast
	// pattern: slow-start windows collide in the buffer) instead of reusing
	// a persistent, congestion-adapted pool.
	FreshConns bool
}

// Scale returns a copy with the burst rate scaled by f (diurnal load factor
// or per-rack intensity).
func (p Profile) Scale(f float64) Profile {
	p.BurstsPerSec *= f
	return p
}

// Catalog of service profiles used by the fleet model. Volumes assume the
// 12.5 Gbps server class: 1 MB arriving at line rate occupies ~0.64 ms.
var (
	// Web is a frontend tier: moderate fan-in over persistent connections,
	// short bursts.
	Web = Profile{
		Name: "web", BackgroundUtil: 0.025,
		BurstsPerSec: 12, VolumeMedian: 1.2e6, VolumeSigma: 0.7,
		FanIn: 12,
	}
	// Cache is a caching tier with heavy incast: many fresh connections
	// answering fan-out queries at once. This is the loss-prone pattern.
	Cache = Profile{
		Name: "cache", BackgroundUtil: 0.035,
		BurstsPerSec: 16, VolumeMedian: 1.4e6, VolumeSigma: 0.75,
		FanIn: 56, FreshConns: true,
	}
	// Storage moves large objects on few persistent connections.
	Storage = Profile{
		Name: "storage", BackgroundUtil: 0.03,
		BurstsPerSec: 5, VolumeMedian: 5.5e6, VolumeSigma: 0.6,
		FanIn: 4,
	}
	// Batch is sporadic analytics traffic.
	Batch = Profile{
		Name: "batch", BackgroundUtil: 0.012,
		BurstsPerSec: 2, VolumeMedian: 2.8e6, VolumeSigma: 0.9,
		FanIn: 8,
	}
	// Quiet is a mostly idle service (control planes, dev machines); its
	// server runs usually contain no burst at all. The paper finds only 34%
	// of server runs bursty, so quiet placements are common.
	Quiet = Profile{
		Name: "quiet", BackgroundUtil: 0.008,
		BurstsPerSec: 0.2, VolumeMedian: 0.9e6, VolumeSigma: 0.6,
		FanIn: 3,
	}
	// MLTrain is the machine-learning ingest the paper identifies on
	// RegA-High racks: high-duty-cycle bursts on persistent,
	// congestion-adapted connections. High contention, but DCTCP keeps
	// queues near the ECN threshold, so comparatively low loss.
	MLTrain = Profile{
		Name: "mltrain", BackgroundUtil: 0.05,
		BurstsPerSec: 40, VolumeMedian: 3.8e6, VolumeSigma: 0.6,
		FanIn: 8,
	}
	// MLReader is the data-loading side of an ML job: sharded reads over
	// fresh connections. A minority of an ML rack's servers run readers,
	// giving RegA-High its small-but-nonzero loss rate.
	MLReader = Profile{
		Name: "mlreader", BackgroundUtil: 0.04,
		BurstsPerSec: 10, VolumeMedian: 2.6e6, VolumeSigma: 0.7,
		FanIn: 36, FreshConns: true,
	}
)

// Catalog lists the typical-service profiles (everything except MLTrain)
// with fleet placement weights.
var Catalog = []struct {
	Profile Profile
	Weight  float64
}{
	{Web, 0.20},
	{Cache, 0.14},
	{Storage, 0.12},
	{Batch, 0.12},
	{Quiet, 0.42},
}

// PickTypical draws a typical-service profile using the catalog weights.
func PickTypical(rng *sim.RNG) Profile {
	total := 0.0
	for _, c := range Catalog {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range Catalog {
		x -= c.Weight
		if x < 0 {
			return c.Profile
		}
	}
	return Catalog[len(Catalog)-1].Profile
}
