package workload

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// sampleRack installs profiles on a small rack, runs a sampler window, and
// returns the analyzed SyncRun.
func sampleRack(t *testing.T, profiles []Profile, seed uint64, buckets int) *analysis.RunAnalysis {
	t.Helper()
	rack := testbed.NewRack(testbed.RackConfig{Servers: len(profiles), Remotes: 96, Seed: seed})
	if _, err := InstallRack(rack, profiles, rack.RNG.Fork(1)); err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: buckets, CountFlows: true})
	const warmup = 150 * sim.Millisecond
	if err := ctrl.Schedule(warmup); err != nil {
		t.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(warmup) + sim.Millisecond)
	if !ctrl.Done() {
		t.Fatal("controller did not finish")
	}
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Analyze(sr, analysis.DefaultOptions())
}

func TestQuietProfileMostlyIdle(t *testing.T) {
	ra := sampleRack(t, []Profile{Quiet, Quiet, Quiet, Quiet}, 11, 500)
	for _, srv := range ra.Servers {
		if srv.AvgUtil > 0.10 {
			t.Errorf("quiet server %d average utilization %.3f", srv.Server, srv.AvgUtil)
		}
	}
}

func TestWebProfileProducesBursts(t *testing.T) {
	ra := sampleRack(t, []Profile{Web, Web, Web, Web}, 12, 1000)
	total := 0
	for _, srv := range ra.Servers {
		total += srv.NumBursts
	}
	if total == 0 {
		t.Fatal("web profile produced no bursts in 1s across 4 servers")
	}
	// Background should keep utilization low outside bursts.
	for _, srv := range ra.Servers {
		if srv.Bursty && srv.AvgUtilOutside > 0.25 {
			t.Errorf("server %d outside-burst utilization %.3f", srv.Server, srv.AvgUtilOutside)
		}
	}
}

func TestMLProfileHighDuty(t *testing.T) {
	profiles := make([]Profile, 8)
	for i := range profiles {
		profiles[i] = MLTrain
	}
	ra := sampleRack(t, profiles, 13, 1000)
	if got := ra.AvgContention(); got < 1.0 {
		t.Errorf("8 ML servers average contention %.2f, want >= 1", got)
	}
	var bursts int
	for _, srv := range ra.Servers {
		bursts += srv.NumBursts
	}
	if bursts < 50 {
		t.Errorf("ML rack produced only %d bursts in 1s", bursts)
	}
}

func TestCacheIncastDialsFreshConns(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Remotes: 96, Seed: 14})
	l := Install(rack, 0, Cache, rack.RNG.Fork(2))
	rack.Eng.RunUntil(500 * sim.Millisecond)
	if l.Bursts == 0 {
		t.Fatal("cache profile issued no bursts")
	}
	if l.FreshDials < l.Bursts*Cache.FanIn/2 {
		t.Errorf("fresh dials %d too few for %d bursts of fan-in %d", l.FreshDials, l.Bursts, Cache.FanIn)
	}
}

func TestLoadStopHaltsTraffic(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Remotes: 16, Seed: 15})
	l := Install(rack, 0, Web, rack.RNG.Fork(3))
	rack.Eng.RunUntil(200 * sim.Millisecond)
	l.Stop()
	burstsAtStop := l.Bursts
	rack.Eng.RunUntil(600 * sim.Millisecond)
	if l.Bursts != burstsAtStop {
		t.Errorf("bursts continued after Stop: %d -> %d", burstsAtStop, l.Bursts)
	}
}

func TestPickTypicalCoversCatalog(t *testing.T) {
	rng := sim.NewRNG(16)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		seen[PickTypical(rng).Name] = true
	}
	for _, c := range Catalog {
		if !seen[c.Profile.Name] {
			t.Errorf("profile %s never drawn", c.Profile.Name)
		}
	}
}

func TestScale(t *testing.T) {
	p := Web.Scale(2)
	if p.BurstsPerSec != Web.BurstsPerSec*2 {
		t.Error("Scale did not scale burst rate")
	}
	if p.VolumeMedian != Web.VolumeMedian {
		t.Error("Scale changed volume")
	}
}

func TestMulticastBeaconSynchronizedArrival(t *testing.T) {
	// The §4.5 validation: all subscribers see the multicast burst in the
	// same 1 ms sample.
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 17})
	subs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	beacon := NewMulticastBeacon(rack, subs, 100*sim.Millisecond, 256<<10, 2_000_000_000)
	beacon.Start()
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 500, CountFlows: false})
	if err := ctrl.Schedule(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(50*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if beacon.Sent < 4 {
		t.Fatalf("beacon sent only %d bursts", beacon.Sent)
	}
	// Find samples where server 0 received the beacon; all other servers
	// must show traffic within one sample of it.
	aligned, total := 0, 0
	for i := 1; i < sr.Samples-1; i++ {
		if sr.Servers[0].In[i] < 1000 {
			continue
		}
		total++
		ok := true
		for s := 1; s < 8; s++ {
			got := sr.Servers[s].In[i-1] + sr.Servers[s].In[i] + sr.Servers[s].In[i+1]
			if got < 1000 {
				ok = false
			}
		}
		if ok {
			aligned++
		}
	}
	if total == 0 {
		t.Fatal("no beacon samples observed on server 0")
	}
	if float64(aligned) < 0.9*float64(total) {
		t.Errorf("only %d/%d beacon samples aligned across all servers", aligned, total)
	}
}

func TestBurstGenIdentifiesSimultaneousBurstyServers(t *testing.T) {
	// The §4.5 validation: 5 clients each receiving a 1.8 MB burst per
	// period must be identified as 5 simultaneously bursty servers.
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 18})
	clients := []int{0, 1, 2, 3, 4}
	gen := NewBurstGen(rack, clients, 100*sim.Millisecond, 1_800_000)
	gen.Start()
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 600, CountFlows: false})
	if err := ctrl.Schedule(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(50*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	ra := analysis.Analyze(sr, analysis.DefaultOptions())
	max := 0
	for _, c := range ra.Contention {
		if c > max {
			max = c
		}
	}
	if max != 5 {
		t.Errorf("max contention %d, want 5 simultaneously bursty clients", max)
	}
	for _, r := range gen.Requests {
		if r < 4 {
			t.Errorf("a client issued only %d requests", r)
		}
	}
}
