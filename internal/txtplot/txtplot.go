// Package txtplot renders simple ASCII line plots for terminal inspection of
// the regenerated figures: multiple named series on shared axes, with
// automatic scaling, axis labels, and per-series markers. It exists so
// `cmd/experiments -plot` can show the *shape* of each distribution next to
// the quantile tables — the form in which the paper's findings are stated.
package txtplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is an (x, y) pair.
type Point struct{ X, Y float64 }

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
}

// markers assigns one rune per series, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Options configure a plot.
type Options struct {
	// Width and Height are the plot area size in characters (defaults
	// 72x18).
	Width, Height int
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// YMax forces the y-axis maximum (0 = auto).
	YMax float64
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 18
	}
	return o
}

// Render draws the series into a single string.
func Render(series []Series, opts Options) string {
	opts = opts.withDefaults()
	w, h := opts.Width, opts.Height

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			any = true
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if !any {
		return "(no data)\n"
	}
	if opts.YMax > 0 {
		ymax = opts.YMax
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	plot := func(p Point, mark byte) {
		cx := int((p.X - xmin) / (xmax - xmin) * float64(w-1))
		cy := int((p.Y - ymin) / (ymax - ymin) * float64(h-1))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			return
		}
		row := h - 1 - cy
		grid[row][cx] = mark
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		// Draw line segments by sampling between consecutive points.
		for i := 0; i < len(s.Points); i++ {
			plot(s.Points[i], mark)
			if i+1 < len(s.Points) {
				a, b := s.Points[i], s.Points[i+1]
				steps := 2 * w
				for k := 1; k < steps; k++ {
					f := float64(k) / float64(steps)
					plot(Point{X: a.X + f*(b.X-a.X), Y: a.Y + f*(b.Y-a.Y)}, mark)
				}
			}
		}
	}

	var sb strings.Builder
	yTopLabel := fmtAxis(ymax)
	yBotLabel := fmtAxis(ymin)
	labelW := len(yTopLabel)
	if len(yBotLabel) > labelW {
		labelW = len(yBotLabel)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&sb, "%s\n", opts.YLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTopLabel)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yBotLabel)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	xAxis := fmt.Sprintf("%s%s", fmtAxis(xmin), strings.Repeat(" ", max(1, w-len(fmtAxis(xmin))-len(fmtAxis(xmax)))))
	fmt.Fprintf(&sb, "%s  %s%s", strings.Repeat(" ", labelW), xAxis, fmtAxis(xmax))
	if opts.XLabel != "" {
		fmt.Fprintf(&sb, "  (%s)", opts.XLabel)
	}
	sb.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&sb, "%s  %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av < 0.01:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
