package txtplot

import (
	"strings"
	"testing"
)

func line(n int, f func(i int) Point) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = f(i)
	}
	return pts
}

func TestRenderBasic(t *testing.T) {
	s := []Series{{
		Name:   "ramp",
		Points: line(10, func(i int) Point { return Point{X: float64(i), Y: float64(i)} }),
	}}
	out := Render(s, Options{Width: 40, Height: 10, XLabel: "x", YLabel: "y"})
	if !strings.Contains(out, "ramp") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no markers drawn")
	}
	if !strings.Contains(out, "(x)") || !strings.Contains(out, "y\n") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(out, "\n")
	// y label + height rows + axis + x labels + legend.
	if len(lines) < 10+3 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestRenderMonotoneRampFillsDiagonal(t *testing.T) {
	s := []Series{{
		Name:   "r",
		Points: line(2, func(i int) Point { return Point{X: float64(i), Y: float64(i)} }),
	}}
	out := Render(s, Options{Width: 20, Height: 10})
	rows := strings.Split(out, "\n")
	// First grid row (top) should have the marker near the right edge,
	// last grid row near the left edge.
	var grid []string
	for _, r := range rows {
		if strings.Contains(r, "|") {
			grid = append(grid, r[strings.Index(r, "|")+1:])
		}
	}
	if len(grid) != 10 {
		t.Fatalf("grid rows = %d", len(grid))
	}
	top, bottom := grid[0], grid[len(grid)-1]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Error("ramp is not ascending left-to-right")
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", Points: line(5, func(i int) Point { return Point{X: float64(i), Y: 1} })},
		{Name: "b", Points: line(5, func(i int) Point { return Point{X: float64(i), Y: 2} })},
	}
	out := Render(s, Options{Width: 30, Height: 8})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series markers not distinct")
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, Options{}); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
	nan := []Series{{Name: "n", Points: []Point{{X: 0, Y: 0}}}}
	if got := Render(nan, Options{}); got == "(no data)\n" {
		t.Error("single valid point should render")
	}
}

func TestRenderYMaxClamp(t *testing.T) {
	s := []Series{{
		Name:   "spike",
		Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 100}},
	}}
	out := Render(s, Options{Width: 20, Height: 5, YMax: 10})
	if !strings.Contains(out, "10 |") {
		t.Errorf("forced YMax not reflected in axis:\n%s", out)
	}
}

func TestFmtAxis(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500:    "1.5k",
		2e6:     "2M",
		0.005:   "0.005",
		3.14159: "3.14",
	}
	for v, want := range cases {
		if got := fmtAxis(v); got != want {
			t.Errorf("fmtAxis(%v) = %q, want %q", v, got, want)
		}
	}
}
