package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

func TestMultiScheduleRotatesIntervals(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 51})
	var runs []*Run
	// Production intervals but only 40 buckets each, so a full rotation
	// fits in a short test.
	m := &MultiSchedule{Gap: 5 * sim.Millisecond, Store: func(r *Run) { runs = append(runs, r) }}
	for _, iv := range ProductionIntervals {
		m.Samplers = append(m.Samplers, NewSampler(rack.Servers[0], Config{
			Interval: iv, Buckets: 40, CountFlows: true,
		}))
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	// Continuous traffic so every run starts.
	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	var feed func()
	feed = func() {
		c.Send(8 << 10)
		rack.Eng.After(2*sim.Millisecond, feed)
	}
	rack.Eng.After(0, feed)

	// One full rotation: 10ms*40 + 1ms*40 + 100µs*40 + gaps + grace.
	rack.Eng.RunUntil(600 * sim.Millisecond)
	m.Stop()

	if len(runs) < 3 {
		t.Fatalf("completed %d runs, want a full rotation of 3", len(runs))
	}
	want := []sim.Time{10 * sim.Millisecond, sim.Millisecond, 100 * sim.Microsecond}
	for i := 0; i < 3; i++ {
		if runs[i].Interval != want[i] {
			t.Errorf("run %d interval %v, want %v", i, runs[i].Interval, want[i])
		}
		if !runs[i].Started {
			t.Errorf("run %d never started", i)
		}
	}
	if m.Runs() != len(runs) {
		t.Errorf("Runs() = %d, stored %d", m.Runs(), len(runs))
	}
}

func TestMultiScheduleProductionIntervals(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 52})
	m := NewMultiSchedule(rack.Servers[0], sim.Millisecond, nil)
	if len(m.Samplers) != 3 {
		t.Fatalf("samplers = %d", len(m.Samplers))
	}
	for i, s := range m.Samplers {
		if s.cfg.Interval != ProductionIntervals[i] {
			t.Errorf("sampler %d interval %v", i, s.cfg.Interval)
		}
		if s.cfg.Buckets != 2000 {
			t.Errorf("sampler %d buckets %d, want the fixed 2000", i, s.cfg.Buckets)
		}
	}
	// Observation windows: 20s, 2s, 200ms.
	if m.Samplers[0].cfg.Window() != 20*sim.Second ||
		m.Samplers[1].cfg.Window() != 2*sim.Second ||
		m.Samplers[2].cfg.Window() != 200*sim.Millisecond {
		t.Error("windows do not match the paper's 20s/2s/200ms")
	}
}

func TestMultiScheduleStartWithoutSamplersError(t *testing.T) {
	if err := (&MultiSchedule{}).Start(); err == nil {
		t.Error("empty schedule did not return an error")
	}
}
