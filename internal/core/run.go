package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Run is one completed Millisampler collection on one host: the aggregated
// (cross-CPU) timeseries the user-space component stores to local disk.
type Run struct {
	Host     netsim.HostID
	Interval sim.Time
	Buckets  int
	// Started reports whether any packet arrived during the run; an idle
	// host yields an unstarted run with zeroed series.
	Started bool
	// StartWall is the host-clock timestamp of the first packet.
	StartWall clock.WallTime
	// LineRateBps is the host's allocated link rate, the denominator of the
	// burst threshold.
	LineRateBps int64
	// Truncated reports that collection was interrupted (host crash) before
	// the window completed; only the first ValidBuckets buckets carry data.
	Truncated bool
	// ValidBuckets is the number of complete buckets collected before the
	// interruption. Meaningful only when Truncated.
	ValidBuckets int
	// Bytes holds one series per counter kind (CtrIn..CtrInECN).
	Bytes [NumCounters][]uint64
	// Conns is the per-bucket connection estimate (nil when flow counting
	// was disabled).
	Conns []float64
}

// EndWall returns the host-clock end of the observation window — the nominal
// window for complete runs, the interruption point for truncated ones.
func (r *Run) EndWall() clock.WallTime {
	buckets := r.Buckets
	if r.Truncated {
		buckets = r.ValidBuckets
	}
	return r.StartWall + clock.WallTime(int64(r.Interval)*int64(buckets))
}

// Series returns the byte series of one counter kind.
func (r *Run) Series(kind int) []uint64 {
	if kind < 0 || kind >= NumCounters {
		panic(fmt.Sprintf("core: no counter kind %d", kind))
	}
	return r.Bytes[kind]
}

// RateBps converts bucket i of a counter kind into bits per second.
func (r *Run) RateBps(kind, i int) float64 {
	return float64(r.Bytes[kind][i]) * 8 / r.Interval.Seconds()
}

// Utilization returns bucket i's ingress utilization as a fraction of line
// rate; this is the quantity the burst definition thresholds at 50%.
func (r *Run) Utilization(i int) float64 {
	return r.RateBps(CtrIn, i) / float64(r.LineRateBps)
}

// TotalBytes sums a counter series.
func (r *Run) TotalBytes(kind int) uint64 {
	var t uint64
	for _, v := range r.Bytes[kind] {
		t += v
	}
	return t
}

// BucketBytesAtRate returns the byte count per bucket corresponding to a
// utilization fraction of the line rate, i.e. the burst threshold in bytes.
func (r *Run) BucketBytesAtRate(frac float64) uint64 {
	return uint64(frac * float64(r.LineRateBps) / 8 * r.Interval.Seconds())
}
