package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// allocHost builds a host+sampler pair and a working set of segments for the
// per-packet allocation assertions (§4.3: the filter must add no allocation
// or GC pressure to the kernel path it models).
func allocHost(cfg Config) (*Sampler, []*netsim.Segment) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, netsim.HostConfig{ID: 1, Cores: 4})
	h.SetForwarder(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	s := NewSampler(h, cfg)
	segs := make([]*netsim.Segment, 64)
	for i := range segs {
		segs[i] = &netsim.Segment{
			Flow: netsim.FlowKey{Src: 7, Dst: 1, SrcPort: uint16(i), DstPort: 80},
			Size: 1500,
		}
		if i%5 == 0 {
			segs[i].Flags |= netsim.FlagCE
		}
		if i%17 == 0 {
			segs[i].Flags |= netsim.FlagRetx
		}
	}
	return s, segs
}

// TestSamplerHandleZeroAlloc asserts the enabled hot path performs zero heap
// allocations per packet.
func TestSamplerHandleZeroAlloc(t *testing.T) {
	s, segs := allocHost(DefaultConfig())
	s.Enable()
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		s.Handle(sim.Time(i)*sim.Microsecond, i&3, netsim.Ingress, segs[i&63])
		i++
	})
	if allocs != 0 {
		t.Fatalf("enabled Handle allocates %.2f objects per packet, want 0", allocs)
	}
}

// TestSamplerDisabledZeroAlloc asserts the installed-but-disabled fast path
// (the 7 ns case of the §4.3 microbenchmark) also allocates nothing.
func TestSamplerDisabledZeroAlloc(t *testing.T) {
	s, segs := allocHost(DefaultConfig())
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		s.Handle(sim.Time(i)*sim.Microsecond, i&3, netsim.Ingress, segs[i&63])
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled Handle allocates %.2f objects per packet, want 0", allocs)
	}
	if s.DisabledCalls == 0 {
		t.Fatal("disabled path was never exercised")
	}
}
