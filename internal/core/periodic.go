package core

import (
	"errors"

	"repro/internal/sim"
)

// Periodic drives Millisampler the way the production user-space component
// does on every host (paper §4.1): occasionally attach the filter, run one
// collection window, wait for the enabled flag to clear, detach, hand the
// aggregated counters to storage, and schedule the next run.
type Periodic struct {
	Sampler *Sampler
	// Period is the gap between run starts. Occasional execution keeps the
	// amortized overhead negligible.
	Period sim.Time
	// Store receives each harvested run (e.g. a trace.Store sink).
	Store func(*Run)

	stopped bool
	runs    int
}

// Start begins the periodic schedule on the host's engine, with the first
// run starting after one period.
func (p *Periodic) Start() error {
	if p.Sampler == nil {
		return errors.New("core: periodic schedule needs a sampler")
	}
	if p.Period <= 0 {
		return errors.New("core: periodic sampler needs a positive period")
	}
	p.stopped = false
	p.scheduleNext()
	return nil
}

// Stop halts future runs after the current one completes.
func (p *Periodic) Stop() { p.stopped = true }

// Runs returns how many runs completed.
func (p *Periodic) Runs() int { return p.runs }

func (p *Periodic) scheduleNext() {
	eng := p.Sampler.host.Engine()
	eng.After(p.Period, func() {
		if p.stopped {
			return
		}
		p.Sampler.Attach()
		p.Sampler.Enable()
		// User code waits until the expected run time has passed and the
		// enabled flag clears, then reads and detaches.
		eng.After(p.Sampler.cfg.Window()+collectGrace, func() {
			run := p.Sampler.Read()
			p.Sampler.Detach()
			p.runs++
			if p.Store != nil {
				p.Store(run)
			}
			if !p.stopped {
				p.scheduleNext()
			}
		})
	})
}
