package core

import (
	"encoding/binary"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// PcapLike is the strawman Millisampler is compared against in §4.3: a
// tcpdump-style collector that snapshots the first SnapLen bytes of every
// packet into a kernel-to-user ring buffer for later user-space parsing.
// Its per-packet cost is dominated by the header copy, and a full ring drops
// packets — both failure modes the paper cites for rejecting packet capture
// at fleet scale. It exists for the BenchmarkPcapLikeBaseline comparison and
// for tests; it is not used by any analysis.
type PcapLike struct {
	// SnapLen is the per-packet snapshot length (tcpdump -s 100 in the
	// paper's measurement).
	SnapLen int
	ring    []byte
	head    int
	used    int
	// Captured counts packets stored; Dropped counts ring overruns.
	Captured uint64
	Dropped  uint64
}

// NewPcapLike builds a collector with the given snapshot length and ring
// capacity in packets.
func NewPcapLike(snapLen, ringPackets int) *PcapLike {
	if snapLen <= 0 {
		snapLen = 100
	}
	if ringPackets <= 0 {
		ringPackets = 4096
	}
	return &PcapLike{SnapLen: snapLen, ring: make([]byte, snapLen*ringPackets)}
}

// Handle implements netsim.Filter: serialize a pseudo-header snapshot of the
// segment into the ring, the work tcpdump's BPF+copy path performs per
// packet.
func (p *PcapLike) Handle(now sim.Time, core int, dir netsim.Direction, seg *netsim.Segment) {
	if p.used+p.SnapLen > len(p.ring) {
		p.Dropped++
		return
	}
	buf := p.ring[p.head : p.head+p.SnapLen]
	binary.LittleEndian.PutUint64(buf[0:8], uint64(now))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(seg.Flow.Src))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(seg.Flow.Dst))
	binary.LittleEndian.PutUint16(buf[16:18], seg.Flow.SrcPort)
	binary.LittleEndian.PutUint16(buf[18:20], seg.Flow.DstPort)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(seg.Seq))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(seg.Ack))
	binary.LittleEndian.PutUint32(buf[36:40], uint32(seg.Size))
	buf[40] = byte(seg.Flags)
	buf[41] = byte(dir)
	// The remainder of the snapshot models payload-prefix bytes tcpdump
	// copies regardless of use.
	for i := 42; i < p.SnapLen; i++ {
		buf[i] = 0
	}
	p.head += p.SnapLen
	p.used += p.SnapLen
	p.Captured++
}

// Drain empties the ring (the user-space reader catching up) and returns how
// many packets were pending.
func (p *PcapLike) Drain() int {
	n := p.used / p.SnapLen
	p.head = 0
	p.used = 0
	return n
}
