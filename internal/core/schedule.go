package core

import (
	"errors"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// MultiSchedule rotates Millisampler runs through the three production
// sampling resolutions (paper §4.1: "we schedule runs with three values:
// 10ms, 1ms, and 100µs"), all with the fixed 2000-bucket budget, so one host
// is observed at 20 s, 2 s and 200 ms windows in turn.
type MultiSchedule struct {
	// Samplers holds one sampler per resolution, coarsest first.
	Samplers []*Sampler
	// Gap is the idle time between the end of one run and the start of the
	// next.
	Gap sim.Time
	// Store receives every harvested run.
	Store func(*Run)

	stopped bool
	next    int
	runs    int
}

// ProductionIntervals are the three deployed sampling intervals.
var ProductionIntervals = []sim.Time{
	10 * sim.Millisecond,
	sim.Millisecond,
	100 * sim.Microsecond,
}

// NewMultiSchedule builds the rotation for one host with the production
// intervals and 2000 buckets each.
func NewMultiSchedule(host *netsim.Host, gap sim.Time, store func(*Run)) *MultiSchedule {
	m := &MultiSchedule{Gap: gap, Store: store}
	for _, iv := range ProductionIntervals {
		m.Samplers = append(m.Samplers, NewSampler(host, Config{
			Interval: iv, Buckets: 2000, CountFlows: true,
		}))
	}
	return m
}

// Start begins the rotation on the first sampler's engine.
func (m *MultiSchedule) Start() error {
	if len(m.Samplers) == 0 {
		return errors.New("core: multi-schedule without samplers")
	}
	if m.Gap <= 0 {
		m.Gap = 10 * sim.Millisecond
	}
	m.stopped = false
	m.scheduleNext()
	return nil
}

// Stop halts the rotation after the in-flight run.
func (m *MultiSchedule) Stop() { m.stopped = true }

// Runs returns how many runs completed.
func (m *MultiSchedule) Runs() int { return m.runs }

func (m *MultiSchedule) scheduleNext() {
	s := m.Samplers[m.next]
	m.next = (m.next + 1) % len(m.Samplers)
	eng := s.host.Engine()
	eng.After(m.Gap, func() {
		if m.stopped {
			return
		}
		s.Attach()
		s.Enable()
		eng.After(s.cfg.Window()+collectGrace, func() {
			run := s.Read()
			s.Detach()
			m.runs++
			if m.Store != nil {
				m.Store(run)
			}
			if !m.stopped {
				m.scheduleNext()
			}
		})
	})
}
