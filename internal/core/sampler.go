// Package core implements the paper's primary contribution: Millisampler, a
// lightweight host-side traffic characterization tool, and SyncMillisampler,
// its rack-synchronized collection mode.
//
// Millisampler mirrors the production architecture (paper §4.1-§4.2):
//
//   - a tc-filter equivalent attached to the host packet path on both
//     directions, executing on the CPU core that processes the packet;
//   - per-CPU counter arrays (no locks, no cross-core contention) of
//     2000 time buckets per measured quantity: ingress bytes, ingress
//     retransmitted bytes, egress bytes, egress retransmitted bytes,
//     ECN(CE)-marked ingress bytes, and a 128-bit connection sketch;
//   - start-on-first-packet semantics: the run's time origin is the host
//     timestamp of the first packet observed while enabled;
//   - self-clearing enabled flag: a packet falling beyond the last bucket
//     disables collection, signalling completion to user-space;
//   - detach-when-idle: user code detaches the filter after the run so the
//     disabled-path cost between runs is zero.
package core

import (
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// Counter kinds, one per measured quantity (paper Fig. 2).
const (
	// CtrIn is total ingress bytes.
	CtrIn = iota
	// CtrInRetx is ingress bytes carrying the retransmit bit.
	CtrInRetx
	// CtrOut is total egress bytes.
	CtrOut
	// CtrOutRetx is egress bytes carrying the retransmit bit.
	CtrOutRetx
	// CtrInECN is ingress bytes carrying a CE mark.
	CtrInECN
	// NumCounters is the number of byte counters per bucket.
	NumCounters
)

// Config parameterizes a Millisampler run.
type Config struct {
	// Interval is the sampling bucket width. Production schedules runs at
	// 10 ms, 1 ms and 100 µs; all the paper's analyses use 1 ms.
	Interval sim.Time
	// Buckets is the number of time buckets; fixed at 2000 in production
	// regardless of interval, bounding memory and storage.
	Buckets int
	// CountFlows enables the per-bucket connection sketch. Disabling it
	// models the cheaper filter variant of the §4.3 microbenchmark.
	CountFlows bool
	// HostStack arms the host-stack latency instrument (internal/hoststack)
	// beside Millisampler: the Controller runs both on the same grid and the
	// SyncRun carries the aligned latency series next to the byte series.
	// Ignored by the plain Sampler.
	HostStack bool
}

// DefaultConfig is the configuration behind every analysis in the paper:
// 1 ms sampling over 2000 buckets, a 2 s observation window.
func DefaultConfig() Config {
	return Config{Interval: sim.Millisecond, Buckets: 2000, CountFlows: true}
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = sim.Millisecond
	}
	if c.Buckets <= 0 {
		c.Buckets = 2000
	}
	return c
}

// Window returns the run's observation span (Interval × Buckets).
func (c Config) Window() sim.Time { return c.Interval * sim.Time(c.Buckets) }

// perCPU is one core's counter block: flat arrays so the hot path is a few
// adds with no pointer chasing, mirroring the eBPF per-CPU array maps.
type perCPU struct {
	bytes    []uint64 // NumCounters × Buckets, kind-major
	sketches []sketch.Sketch
}

// Sampler is one host's Millisampler instance. Attach it to the host with
// Attach, arm a run with Enable, and harvest with Read once done.
type Sampler struct {
	cfg  Config
	host *netsim.Host

	enabled   bool
	started   bool
	startWall clock.WallTime
	cpus      []perCPU

	attached bool

	// truncated records that the host crashed while a run was collecting;
	// truncWall is the host-clock instant of the crash. Data bucketed before
	// the crash survives (the user-space agent's last committed snapshot);
	// the tail of the window is lost.
	truncated bool
	truncWall clock.WallTime

	// DisabledCalls counts filter invocations on the disabled fast path,
	// the 7 ns case of the §4.3 microbenchmark.
	DisabledCalls uint64
}

// NewSampler builds a sampler for host. It is not yet attached. The sampler
// registers a crash hook: if the host crashes mid-run, the run is frozen as
// truncated at the crash instant and the filter is gone (tc programs do not
// survive a reboot).
func NewSampler(host *netsim.Host, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	s := &Sampler{cfg: cfg, host: host}
	s.cpus = make([]perCPU, host.Cores)
	for i := range s.cpus {
		s.cpus[i].bytes = make([]uint64, NumCounters*cfg.Buckets)
		if cfg.CountFlows {
			s.cpus[i].sketches = make([]sketch.Sketch, cfg.Buckets)
		}
	}
	host.OnCrash(s.onHostCrash)
	return s
}

// onHostCrash freezes an in-flight run at the crash instant. The host has
// already dropped the filter chains; mirror that in the attach state so a
// later Attach reinstalls cleanly.
func (s *Sampler) onHostCrash() {
	s.attached = false
	if !s.enabled {
		return
	}
	s.enabled = false
	s.truncated = true
	if s.started {
		s.truncWall = s.host.Clock.Now(s.host.Engine().Now())
	}
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Attach installs the tc filter on both directions of the host packet path.
func (s *Sampler) Attach() {
	if s.attached {
		return
	}
	s.host.AttachIngress(s)
	s.host.AttachEgress(s)
	s.attached = true
}

// Detach removes the filter, guaranteeing zero per-packet cost until the
// next run.
func (s *Sampler) Detach() {
	if !s.attached {
		return
	}
	s.host.DetachIngress(s)
	s.host.DetachEgress(s)
	s.attached = false
}

// Attached reports whether the filter is installed.
func (s *Sampler) Attached() bool { return s.attached }

// Enable arms a run: counters reset, the first packet observed sets the time
// origin.
func (s *Sampler) Enable() {
	for i := range s.cpus {
		b := s.cpus[i].bytes
		for j := range b {
			b[j] = 0
		}
		for j := range s.cpus[i].sketches {
			s.cpus[i].sketches[j] = sketch.Sketch{}
		}
	}
	s.started = false
	s.startWall = 0
	s.truncated = false
	s.truncWall = 0
	s.enabled = true
}

// Enabled reports whether the run is still collecting. It clears itself when
// a packet beyond the last bucket arrives.
func (s *Sampler) Enabled() bool { return s.enabled }

// Handle implements netsim.Filter — the in-kernel hot path.
func (s *Sampler) Handle(now sim.Time, core int, dir netsim.Direction, seg *netsim.Segment) {
	if !s.enabled {
		s.DisabledCalls++
		return
	}
	wall := s.host.Clock.Now(now)
	if !s.started {
		s.started = true
		s.startWall = wall
	}
	elapsed := int64(wall) - int64(s.startWall)
	if elapsed < 0 {
		// The host clock stepped backwards across an NTP correction; fold
		// into the first bucket rather than dropping the sample.
		elapsed = 0
	}
	bucket := int(elapsed / int64(s.cfg.Interval))
	if bucket >= s.cfg.Buckets {
		// Completion signal to user-space: clear the enabled flag so future
		// packets take the cheap path until the filter is detached.
		s.enabled = false
		return
	}
	cpu := &s.cpus[core]
	size := uint64(seg.Size)
	if dir == netsim.Ingress {
		cpu.bytes[CtrIn*s.cfg.Buckets+bucket] += size
		if seg.Flags&netsim.FlagRetx != 0 {
			cpu.bytes[CtrInRetx*s.cfg.Buckets+bucket] += size
		}
		if seg.Flags&netsim.FlagCE != 0 {
			cpu.bytes[CtrInECN*s.cfg.Buckets+bucket] += size
		}
	} else {
		cpu.bytes[CtrOut*s.cfg.Buckets+bucket] += size
		if seg.Flags&netsim.FlagRetx != 0 {
			cpu.bytes[CtrOutRetx*s.cfg.Buckets+bucket] += size
		}
	}
	if cpu.sketches != nil {
		cpu.sketches[bucket].Insert(canonicalFlowHash(seg.Flow))
	}
}

// MarkStart pins an armed run's time origin to the host's current wall
// clock, as if a packet had just been observed. The production tool is
// start-on-first-packet; the hybrid-fidelity driver pins the origin at the
// window open instead, because under fluid advancement the first real packet
// may arrive long into the window and would skew the run's timebase.
func (s *Sampler) MarkStart() {
	if !s.enabled || s.started {
		return
	}
	s.started = true
	s.startWall = s.host.Clock.Now(s.host.Engine().Now())
}

// AccountBulk credits bytes of counter kind to one bucket without traversing
// the per-packet path — the fluid model's bulk-accounting entry point. The
// caller works on the bucket grid MarkStart pinned; out-of-range buckets are
// dropped exactly like packets beyond the window.
func (s *Sampler) AccountBulk(kind, bucket int, bytes uint64) {
	if kind < 0 || kind >= NumCounters || bucket < 0 || bucket >= s.cfg.Buckets {
		return
	}
	s.cpus[0].bytes[kind*s.cfg.Buckets+bucket] += bytes
}

// AccountConns inserts pre-hashed flows into one bucket's connection sketch,
// the fluid counterpart of the per-packet sketch insertion. Hashes must come
// from FlowHash so fluid and packet contributions of the same connection
// land on the same sketch bits.
func (s *Sampler) AccountConns(bucket int, hashes []uint64) {
	if bucket < 0 || bucket >= s.cfg.Buckets || s.cpus[0].sketches == nil {
		return
	}
	sk := &s.cpus[0].sketches[bucket]
	for _, h := range hashes {
		sk.Insert(h)
	}
}

// FlowHash returns the direction-canonical hash the connection sketch uses.
func FlowHash(f netsim.FlowKey) uint64 { return canonicalFlowHash(f) }

// canonicalFlowHash hashes a flow so both directions of a connection map to
// the same sketch bit: the sketch counts active connections regardless of
// direction (paper §4.2).
func canonicalFlowHash(f netsim.FlowKey) uint64 {
	if f.Src > f.Dst || (f.Src == f.Dst && f.SrcPort > f.DstPort) {
		f = f.Reverse()
	}
	return f.Hash()
}

// Read aggregates the per-CPU counters into a Run. It mirrors the fixed-cost
// bpf-map read of the production tool and is safe to call at any time; a
// complete harvest should follow Enabled() turning false or the expected run
// window elapsing.
func (s *Sampler) Read() *Run {
	r := &Run{
		Host:        s.host.ID,
		Interval:    s.cfg.Interval,
		Buckets:     s.cfg.Buckets,
		Started:     s.started,
		StartWall:   s.startWall,
		LineRateBps: s.host.LineRateBps(),
		Truncated:   s.truncated,
	}
	if s.truncated && s.started {
		elapsed := int64(s.truncWall) - int64(s.startWall)
		vb := int(elapsed / int64(s.cfg.Interval))
		if vb < 0 {
			vb = 0
		}
		if vb > s.cfg.Buckets {
			vb = s.cfg.Buckets
		}
		r.ValidBuckets = vb
	}
	for k := 0; k < NumCounters; k++ {
		r.Bytes[k] = make([]uint64, s.cfg.Buckets)
	}
	merged := make([]sketch.Sketch, 0)
	if s.cfg.CountFlows {
		merged = make([]sketch.Sketch, s.cfg.Buckets)
	}
	for i := range s.cpus {
		cpu := &s.cpus[i]
		for k := 0; k < NumCounters; k++ {
			dst := r.Bytes[k]
			src := cpu.bytes[k*s.cfg.Buckets : (k+1)*s.cfg.Buckets]
			for j, v := range src {
				dst[j] += v
			}
		}
		for j := range cpu.sketches {
			merged[j].Merge(cpu.sketches[j])
		}
	}
	if s.cfg.CountFlows {
		r.Conns = make([]float64, s.cfg.Buckets)
		for j := range merged {
			r.Conns[j] = merged[j].Estimate()
		}
	}
	if r.Truncated {
		// Drop the partially-filled crash bucket and anything after it.
		for k := 0; k < NumCounters; k++ {
			for j := r.ValidBuckets; j < s.cfg.Buckets; j++ {
				r.Bytes[k][j] = 0
			}
		}
		for j := r.ValidBuckets; j < len(r.Conns); j++ {
			r.Conns[j] = 0
		}
	}
	return r
}

// MemoryFootprint returns the in-kernel byte footprint of the counter maps,
// the quantity reported in §4.3 (≈3.6 MB on a typical host).
func (s *Sampler) MemoryFootprint() int {
	per := NumCounters * s.cfg.Buckets * 8
	if s.cfg.CountFlows {
		per += s.cfg.Buckets * sketch.Words * 8
	}
	return per * len(s.cpus)
}
