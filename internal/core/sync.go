package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/hoststack"
	"repro/internal/netsim"
	"repro/internal/retry"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// CollectionStatus classifies one host's contribution to a synchronized
// collection. The zero value is StatusOK so directly-constructed series
// (tests, replay tooling) default to healthy.
type CollectionStatus int

const (
	// StatusOK is a complete harvest (an idle host that saw no traffic is
	// still OK: nothing was lost).
	StatusOK CollectionStatus = iota
	// StatusTruncated is a harvested run that was interrupted mid-window
	// (host crash); data up to the interruption is valid.
	StatusTruncated
	// StatusMissing means no run was harvested: every RPC attempt failed or
	// the straggler deadline passed.
	StatusMissing
	// StatusUnsynced means the host did not participate in the synchronized
	// start (it was down when the run was armed), so whatever it collected
	// cannot be aligned with the rack.
	StatusUnsynced
)

func (s CollectionStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTruncated:
		return "truncated"
	case StatusMissing:
		return "missing"
	case StatusUnsynced:
		return "unsynced"
	default:
		return fmt.Sprintf("CollectionStatus(%d)", int(s))
	}
}

// Degraded reports whether the host's data is incomplete or absent.
func (s CollectionStatus) Degraded() bool { return s != StatusOK }

// HostCollection is the outcome of one host's harvest inside a sync run.
type HostCollection struct {
	Host   netsim.HostID
	Status CollectionStatus
	// Attempts is how many harvest RPCs were issued for this host.
	Attempts int
	// Run is the harvested data; nil when Status is Missing or Unsynced.
	Run *Run
	// HostStack is the host-stack latency run harvested by the same RPC;
	// nil when the instrument is off or the harvest failed.
	HostStack *hoststack.Run
	// Err is the last harvest error for Missing/Unsynced hosts.
	Err error
}

// Health summarizes a sync run's collection quality.
type Health struct {
	Hosts     int
	OK        int
	Truncated int
	Missing   int
	Unsynced  int
	// EffectiveWindow is the aligned common window actually produced.
	EffectiveWindow sim.Time
}

// Degraded returns the number of hosts with incomplete or absent data.
func (h Health) Degraded() int { return h.Truncated + h.Missing + h.Unsynced }

// AllOK reports whether every host harvested cleanly.
func (h Health) AllOK() bool { return h.Degraded() == 0 }

func (h Health) String() string {
	return fmt.Sprintf("%d/%d ok (%d truncated, %d missing, %d unsynced), window %v",
		h.OK, h.Hosts, h.Truncated, h.Missing, h.Unsynced, h.EffectiveWindow)
}

// ServerSeries is one server's aligned timeseries inside a SyncRun. Values
// are float64 because alignment interpolates between buckets.
type ServerSeries struct {
	Host        netsim.HostID
	Port        int
	LineRateBps int64
	// Status is the host's collection outcome; series of degraded hosts are
	// zero-filled beyond their valid region.
	Status CollectionStatus
	// ValidSamples is how many leading samples carry real data. Zero means
	// the full window for OK hosts (backward compatibility with directly
	// constructed series) and no data for Missing/Unsynced hosts.
	ValidSamples int
	In           []float64
	InRetx       []float64
	InECN        []float64
	Out          []float64
	OutRetx      []float64
	Conns        []float64
}

// Utilization returns sample i's ingress utilization fraction.
func (s *ServerSeries) Utilization(i int, interval sim.Time) float64 {
	return s.In[i] * 8 / interval.Seconds() / float64(s.LineRateBps)
}

// Valid returns the number of leading samples carrying real data, resolving
// the zero-value convention against the run's sample count.
func (s *ServerSeries) Valid(samples int) int {
	switch s.Status {
	case StatusMissing, StatusUnsynced:
		return 0
	default:
		if s.Status == StatusOK && s.ValidSamples == 0 {
			return samples
		}
		if s.ValidSamples > samples {
			return samples
		}
		return s.ValidSamples
	}
}

// SyncRun is a rack-wide synchronized collection: all servers' Millisampler
// runs trimmed to their common time window and aligned by linear
// interpolation onto one uniform timebase (paper §4.4). A run may be
// partial: Health summarizes how many hosts contributed full data.
type SyncRun struct {
	Interval  sim.Time
	Samples   int
	StartWall clock.WallTime
	Servers   []ServerSeries
	Health    Health
	// HostStack is the host-stack latency collection aligned onto the same
	// grid (Config.HostStack); nil when the instrument was off.
	HostStack *hoststack.Series
}

// Controller is SyncMillisampler's centralized control plane for one rack:
// it schedules simultaneous Millisampler runs on every server, then fetches
// and aligns the results. Harvests traverse the rack's (possibly lossy)
// control plane and survive host crashes: each host runs a small retry state
// machine with exponential backoff, bounded by a straggler deadline, and the
// result records a per-host CollectionStatus instead of assuming success.
type Controller struct {
	rack     *testbed.Rack
	cfg      Config
	policy   HarvestPolicy
	samplers []*Sampler
	// hsSamplers is the per-server host-stack instrument, index-aligned with
	// samplers; nil unless Config.HostStack is set.
	hsSamplers []*hoststack.Sampler

	cols      []HostCollection
	armed     []bool
	pending   int
	scheduled bool
	done      bool
}

// HarvestPolicy bounds the per-host harvest state machine.
type HarvestPolicy struct {
	// MaxAttempts is the per-host harvest RPC budget (default 4).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt (default 2 ms).
	Backoff sim.Time
	// StragglerDeadline is how long past HarvestAt the controller keeps
	// retrying before declaring a host Missing (default 80 ms — long enough
	// for a fast reboot, short enough to not stall the schedule).
	StragglerDeadline sim.Time
}

// DefaultHarvestPolicy mirrors a production collection pipeline's patience.
func DefaultHarvestPolicy() HarvestPolicy {
	return HarvestPolicy{
		MaxAttempts:       4,
		Backoff:           2 * sim.Millisecond,
		StragglerDeadline: 80 * sim.Millisecond,
	}
}

// retryPolicy maps the harvest bounds onto the shared backoff schedule
// (internal/retry). Jitter stays zero: harvest delays feed the deterministic
// simulation, and the frozen golden digests depend on the exact schedule.
func (p HarvestPolicy) retryPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: p.MaxAttempts,
		Base:        time.Duration(p.Backoff),
		Factor:      2,
	}
}

func (p HarvestPolicy) withDefaults() HarvestPolicy {
	d := DefaultHarvestPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.StragglerDeadline <= 0 {
		p.StragglerDeadline = d.StragglerDeadline
	}
	return p
}

// MinLeadTime is how far in advance a sync run must be scheduled. Production
// schedules far enough ahead that no periodic run will still be active, then
// prioritizes the sync run (paper §4.4).
const MinLeadTime = 10 * sim.Millisecond

// collectGrace is how long past the nominal window the controller waits
// before harvesting, covering scheduling jitter.
const collectGrace = 5 * sim.Millisecond

// Typed controller errors.
var (
	// ErrNotHarvested is returned by Result before the harvest completes.
	ErrNotHarvested = errors.New("core: sync run not harvested yet")
	// ErrNoRuns is returned by Result (and the aligners) when a harvest
	// collected zero runs — every host Missing or Unsynced.
	ErrNoRuns = errors.New("core: harvest collected no runs")
	// ErrHarvestPending is returned by Schedule while a previous run's
	// harvest is still in flight.
	ErrHarvestPending = errors.New("core: previous harvest still pending")
)

// NewController builds a controller for the rack with the default harvest
// policy.
func NewController(rack *testbed.Rack, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{rack: rack, cfg: cfg, policy: DefaultHarvestPolicy()}
	for _, h := range rack.Servers {
		c.samplers = append(c.samplers, NewSampler(h, cfg))
		if cfg.HostStack {
			hsCfg := hoststack.Config{Interval: cfg.Interval, Buckets: cfg.Buckets}
			c.hsSamplers = append(c.hsSamplers, hoststack.NewSampler(h, hsCfg))
		}
	}
	return c
}

// SetPolicy replaces the harvest retry policy (zero fields take defaults).
// It must be called before Schedule.
func (c *Controller) SetPolicy(p HarvestPolicy) { c.policy = p.withDefaults() }

// Schedule arms the rack-wide run to start collecting at time at. The engine
// must then be driven (with workload traffic) past HarvestAt — or past
// HarvestDeadline to let retries against slow or crashed hosts conclude.
// Scheduling with insufficient lead time, or while a previous harvest is
// still pending, returns an error.
func (c *Controller) Schedule(at sim.Time) error {
	eng := c.rack.Eng
	if at < eng.Now()+MinLeadTime {
		return fmt.Errorf("core: sync run scheduled at %v with insufficient lead (now %v, need %v)",
			at, eng.Now(), MinLeadTime)
	}
	if c.scheduled && !c.done {
		return ErrHarvestPending
	}
	c.scheduled = true
	c.done = false
	c.cols = make([]HostCollection, len(c.samplers))
	c.armed = make([]bool, len(c.samplers))
	c.pending = len(c.samplers)
	for i, s := range c.samplers {
		c.cols[i] = HostCollection{Host: s.host.ID}
	}

	eng.At(at, func() {
		for i, s := range c.samplers {
			if s.host.Down() {
				// The host cannot join the synchronized start; whatever it
				// collects after rebooting would not be aligned.
				c.resolve(i, StatusUnsynced, nil, fmt.Errorf("arming sampler: %w", testbed.ErrHostDown), 0)
				continue
			}
			s.Attach()
			s.Enable()
			if hs := c.hsSampler(i); hs != nil {
				hs.Attach()
				hs.Enable()
			}
			c.armed[i] = true
		}
	})
	harvestAt := c.HarvestAt(at)
	deadline := harvestAt + c.policy.StragglerDeadline
	eng.At(harvestAt, func() {
		for i := range c.samplers {
			if c.armed[i] {
				c.attempt(i, 1, deadline)
			}
		}
	})
	return nil
}

// attempt issues harvest RPC number n for host i, retrying with exponential
// backoff until the attempt budget or the straggler deadline is exhausted.
func (c *Controller) attempt(i, n int, deadline sim.Time) {
	s := c.samplers[i]
	var run *Run
	var hsRun *hoststack.Run
	c.rack.Control.Call(s.host, func() {
		// One RPC harvests both instruments so their collection outcome is
		// atomic: a run either carries both series or neither.
		run = s.Read()
		s.Detach()
		if hs := c.hsSampler(i); hs != nil {
			hsRun = hs.Read()
			hs.Detach()
		}
	}, func(err error) {
		if err == nil {
			st := StatusOK
			if run.Truncated {
				st = StatusTruncated
			}
			c.cols[i].HostStack = hsRun
			c.resolve(i, st, run, nil, n)
			return
		}
		eng := c.rack.Eng
		backoff := sim.Time(c.policy.retryPolicy().Delay(n, nil))
		if n >= c.policy.MaxAttempts || eng.Now()+backoff > deadline {
			c.resolve(i, StatusMissing, nil, err, n)
			return
		}
		eng.After(backoff, func() { c.attempt(i, n+1, deadline) })
	})
}

func (c *Controller) resolve(i int, st CollectionStatus, run *Run, err error, attempts int) {
	col := &c.cols[i]
	col.Status = st
	col.Run = run
	col.Err = err
	col.Attempts = attempts
	c.pending--
	if c.pending == 0 {
		c.done = true
	}
}

// HarvestAt returns when results for a run scheduled at `at` are first
// collected.
func (c *Controller) HarvestAt(at sim.Time) sim.Time {
	return at + c.cfg.Window() + collectGrace
}

// HarvestDeadline returns when the controller gives up on stragglers for a
// run scheduled at `at`; driving the engine past it guarantees Done.
func (c *Controller) HarvestDeadline(at sim.Time) sim.Time {
	return c.HarvestAt(at) + c.policy.StragglerDeadline
}

// Samplers returns the per-server samplers in rack port order. The hybrid
// driver uses it to pin run origins (MarkStart) and apply fluid bulk
// accounting; the samplers remain owned by the controller.
func (c *Controller) Samplers() []*Sampler { return c.samplers }

// hsSampler returns server i's host-stack sampler, nil when the instrument
// is off.
func (c *Controller) hsSampler(i int) *hoststack.Sampler {
	if c.hsSamplers == nil {
		return nil
	}
	return c.hsSamplers[i]
}

// Done reports whether every host of the scheduled run has been resolved
// (harvested, or conclusively failed). It resets on each Schedule call.
func (c *Controller) Done() bool { return c.done }

// Collections returns the per-host harvest outcomes of the last run.
func (c *Controller) Collections() []HostCollection { return c.cols }

// Runs returns the raw per-host runs of the last harvest, skipping hosts
// that yielded none.
func (c *Controller) Runs() []*Run {
	var runs []*Run
	for i := range c.cols {
		if c.cols[i].Run != nil {
			runs = append(runs, c.cols[i].Run)
		}
	}
	return runs
}

// Result aligns the harvested runs into a SyncRun. Degraded hosts yield
// flagged zero series; the run's Health reports how partial the collection
// is. Result returns ErrNotHarvested before the harvest completes and
// ErrNoRuns when no host produced data.
func (c *Controller) Result() (*SyncRun, error) {
	if !c.done {
		return nil, ErrNotHarvested
	}
	ports := make([]int, len(c.cols))
	for i := range c.cols {
		p, ok := c.rack.Port(c.cols[i].Host)
		if !ok {
			return nil, fmt.Errorf("core: run host %d not in rack", c.cols[i].Host)
		}
		ports[i] = p
	}
	sr, err := AlignCollections(c.cols, ports)
	if err != nil {
		return nil, err
	}
	if c.hsSamplers != nil {
		// Align the host-stack runs onto the grid the Millisampler alignment
		// just chose, so sample j of both instruments covers the same window.
		runs := make([]*hoststack.Run, len(c.cols))
		for i := range c.cols {
			runs[i] = c.cols[i].HostStack
		}
		sr.HostStack = hoststack.AlignRuns(runs, ports, sr.StartWall, sr.Interval, sr.Samples)
	}
	return sr, nil
}

// Align trims a set of per-host runs to their common window and linearly
// interpolates each series onto the uniform timebase starting at the latest
// per-host start (paper §4.4: "to combine these runs into a single one with
// uniform timestamps, we use linear interpolation").
//
// Unstarted runs (idle hosts) contribute all-zero series and do not
// constrain the common window. Truncated runs are flagged and shrink only
// their own contribution. For harvests with missing hosts, use
// AlignCollections.
func Align(runs []*Run, ports []int) (*SyncRun, error) {
	if len(ports) != len(runs) {
		return nil, errors.New("core: ports/runs length mismatch")
	}
	cols := make([]HostCollection, len(runs))
	for i, r := range runs {
		cols[i] = HostCollection{Host: r.Host, Run: r}
		if r.Truncated {
			cols[i].Status = StatusTruncated
		}
	}
	return AlignCollections(cols, ports)
}

// AlignCollections aligns a partial harvest. Hosts with Status Missing or
// Unsynced (nil runs) yield flagged zero series; truncated runs contribute
// data up to their interruption and zeros beyond; only complete (OK,
// started) runs constrain the common window, so one bad host cannot abort —
// or shrink — the rack's collection.
func AlignCollections(cols []HostCollection, ports []int) (*SyncRun, error) {
	if len(cols) == 0 {
		return nil, ErrNoRuns
	}
	if len(ports) != len(cols) {
		return nil, errors.New("core: ports/collections length mismatch")
	}

	var interval sim.Time
	nRuns := 0
	for i := range cols {
		r := cols[i].Run
		if r == nil {
			continue
		}
		if nRuns == 0 {
			interval = r.Interval
		} else if r.Interval != interval {
			return nil, fmt.Errorf("core: mixed intervals %v and %v", interval, r.Interval)
		}
		nRuns++
	}
	if nRuns == 0 {
		return nil, ErrNoRuns
	}

	// Common window from complete runs; fall back to truncated runs when no
	// host finished cleanly (a rack-wide outage mid-run still aligns what
	// was collected).
	start, end, found := commonWindow(cols, false)
	if !found {
		start, end, found = commonWindow(cols, true)
	}
	if !found {
		return nil, errors.New("core: no run observed any traffic")
	}
	samples := int(int64(end-start) / int64(interval))
	if samples <= 0 {
		return nil, fmt.Errorf("core: no common window (start %d >= end %d)", start, end)
	}

	sr := &SyncRun{Interval: interval, Samples: samples, StartWall: start}
	sr.Health = Health{Hosts: len(cols), EffectiveWindow: interval * sim.Time(samples)}
	for i := range cols {
		col := &cols[i]
		switch col.Status {
		case StatusOK:
			sr.Health.OK++
		case StatusTruncated:
			sr.Health.Truncated++
		case StatusMissing:
			sr.Health.Missing++
		case StatusUnsynced:
			sr.Health.Unsynced++
		}
		sr.Servers = append(sr.Servers, alignOne(col, ports[i], start, interval, samples))
	}
	return sr, nil
}

// commonWindow intersects the observation windows of the constraining runs:
// complete runs normally, truncated runs when truncatedOnly is set.
func commonWindow(cols []HostCollection, truncatedOnly bool) (start, end clock.WallTime, found bool) {
	for i := range cols {
		r := cols[i].Run
		if r == nil || !r.Started {
			continue
		}
		if (cols[i].Status == StatusTruncated) != truncatedOnly {
			continue
		}
		if truncatedOnly && r.ValidBuckets <= 0 {
			continue
		}
		s, e := r.StartWall, r.EndWall()
		if !found {
			start, end, found = s, e, true
			continue
		}
		if s > start {
			start = s
		}
		if e < end {
			end = e
		}
	}
	return start, end, found
}

// alignOne produces one host's aligned series.
func alignOne(col *HostCollection, port int, start clock.WallTime, interval sim.Time, samples int) ServerSeries {
	ss := ServerSeries{Port: port, Status: col.Status, Host: col.Host}
	r := col.Run
	if r != nil {
		ss.Host = r.Host
		ss.LineRateBps = r.LineRateBps
	}
	zero := func() {
		ss.In = make([]float64, samples)
		ss.InRetx = make([]float64, samples)
		ss.InECN = make([]float64, samples)
		ss.Out = make([]float64, samples)
		ss.OutRetx = make([]float64, samples)
		ss.Conns = make([]float64, samples)
	}
	if r == nil || !r.Started {
		zero()
		if col.Status == StatusOK {
			ss.ValidSamples = samples // idle but healthy: zeros are real data
		}
		return ss
	}

	valid := r.Buckets
	if r.Truncated {
		valid = r.ValidBuckets
	}
	if valid <= 0 {
		zero()
		return ss
	}

	// Offset of the common origin within this host's bucket grid, and the
	// number of aligned samples the host's valid data covers.
	off := float64(int64(start-r.StartWall)) / float64(interval)
	covered := samples
	if r.Truncated {
		validEnd := r.StartWall + clock.WallTime(int64(interval)*int64(valid))
		covered = int(int64(validEnd-start) / int64(interval))
		if covered < 0 {
			covered = 0
		}
		if covered > samples {
			covered = samples
		}
	}
	ss.ValidSamples = covered
	ss.In = resample(r.Bytes[CtrIn][:valid], off, samples, covered)
	ss.InRetx = resample(r.Bytes[CtrInRetx][:valid], off, samples, covered)
	ss.InECN = resample(r.Bytes[CtrInECN][:valid], off, samples, covered)
	ss.Out = resample(r.Bytes[CtrOut][:valid], off, samples, covered)
	ss.OutRetx = resample(r.Bytes[CtrOutRetx][:valid], off, samples, covered)
	if r.Conns != nil {
		ss.Conns = resampleF(r.Conns[:valid], off, samples, covered)
	} else {
		ss.Conns = make([]float64, samples)
	}
	return ss
}

// resample converts a counter series to float64 and interpolates it onto the
// aligned grid, zeroing samples beyond the host's covered region.
func resample(src []uint64, off float64, n, covered int) []float64 {
	f := make([]float64, len(src))
	for i, v := range src {
		f[i] = float64(v)
	}
	return resampleF(f, off, n, covered)
}

func resampleF(src []float64, off float64, n, covered int) []float64 {
	out := interpolateF(src, off, covered)
	if covered < n {
		out = append(out, make([]float64, n-covered)...)
	}
	return out
}

// interpolateF resamples src at positions off, off+1, ... producing n values
// by linear interpolation between adjacent buckets; positions outside the
// source grid clamp to its edge values.
func interpolateF(src []float64, off float64, n int) []float64 {
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		pos := off + float64(j)
		i := int(pos)
		frac := pos - float64(i)
		switch {
		case i < 0:
			out[j] = src[0]
		case i >= len(src)-1:
			out[j] = src[len(src)-1]
		default:
			out[j] = src[i]*(1-frac) + src[i+1]*frac
		}
	}
	return out
}
