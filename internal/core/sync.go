package core

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// ServerSeries is one server's aligned timeseries inside a SyncRun. Values
// are float64 because alignment interpolates between buckets.
type ServerSeries struct {
	Host        netsim.HostID
	Port        int
	LineRateBps int64
	In          []float64
	InRetx      []float64
	InECN       []float64
	Out         []float64
	OutRetx     []float64
	Conns       []float64
}

// Utilization returns sample i's ingress utilization fraction.
func (s *ServerSeries) Utilization(i int, interval sim.Time) float64 {
	return s.In[i] * 8 / interval.Seconds() / float64(s.LineRateBps)
}

// SyncRun is a rack-wide synchronized collection: all servers' Millisampler
// runs trimmed to their common time window and aligned by linear
// interpolation onto one uniform timebase (paper §4.4).
type SyncRun struct {
	Interval  sim.Time
	Samples   int
	StartWall clock.WallTime
	Servers   []ServerSeries
}

// Controller is SyncMillisampler's centralized control plane for one rack:
// it schedules simultaneous Millisampler runs on every server, then fetches
// and aligns the results.
type Controller struct {
	rack     *testbed.Rack
	cfg      Config
	samplers []*Sampler
	runs     []*Run
	done     bool
}

// MinLeadTime is how far in advance a sync run must be scheduled. Production
// schedules far enough ahead that no periodic run will still be active, then
// prioritizes the sync run (paper §4.4).
const MinLeadTime = 10 * sim.Millisecond

// collectGrace is how long past the nominal window the controller waits
// before harvesting, covering scheduling jitter.
const collectGrace = 5 * sim.Millisecond

// NewController builds a controller for the rack.
func NewController(rack *testbed.Rack, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{rack: rack, cfg: cfg}
	for _, h := range rack.Servers {
		c.samplers = append(c.samplers, NewSampler(h, cfg))
	}
	return c
}

// Schedule arms the rack-wide run to start collecting at time at. The engine
// must then be driven (with workload traffic) past HarvestAt.
func (c *Controller) Schedule(at sim.Time) {
	eng := c.rack.Eng
	if at < eng.Now()+MinLeadTime {
		panic(fmt.Sprintf("core: sync run scheduled at %v with insufficient lead (now %v)", at, eng.Now()))
	}
	eng.At(at, func() {
		for _, s := range c.samplers {
			s.Attach()
			s.Enable()
		}
	})
	eng.At(c.HarvestAt(at), func() {
		c.runs = c.runs[:0]
		for _, s := range c.samplers {
			c.runs = append(c.runs, s.Read())
			s.Detach()
		}
		c.done = true
	})
}

// HarvestAt returns when results for a run scheduled at `at` are collected.
func (c *Controller) HarvestAt(at sim.Time) sim.Time {
	return at + c.cfg.Window() + collectGrace
}

// Done reports whether the scheduled run has been harvested.
func (c *Controller) Done() bool { return c.done }

// Runs returns the raw per-host runs of the last harvest.
func (c *Controller) Runs() []*Run { return c.runs }

// Result aligns the harvested runs into a SyncRun.
func (c *Controller) Result() (*SyncRun, error) {
	if !c.done {
		return nil, errors.New("core: sync run not harvested yet")
	}
	ports := make([]int, len(c.runs))
	for i, r := range c.runs {
		p, ok := c.rack.Port(r.Host)
		if !ok {
			return nil, fmt.Errorf("core: run host %d not in rack", r.Host)
		}
		ports[i] = p
	}
	return Align(c.runs, ports)
}

// Align trims a set of per-host runs to their common window and linearly
// interpolates each series onto the uniform timebase starting at the latest
// per-host start (paper §4.4: "to combine these runs into a single one with
// uniform timestamps, we use linear interpolation").
//
// Unstarted runs (idle hosts) contribute all-zero series and do not
// constrain the common window.
func Align(runs []*Run, ports []int) (*SyncRun, error) {
	if len(runs) == 0 {
		return nil, errors.New("core: no runs to align")
	}
	if len(ports) != len(runs) {
		return nil, errors.New("core: ports/runs length mismatch")
	}
	interval := runs[0].Interval
	var start, end clock.WallTime
	first := true
	for _, r := range runs {
		if r.Interval != interval {
			return nil, fmt.Errorf("core: mixed intervals %v and %v", interval, r.Interval)
		}
		if !r.Started {
			continue
		}
		if first {
			start, end = r.StartWall, r.EndWall()
			first = false
			continue
		}
		if r.StartWall > start {
			start = r.StartWall
		}
		if e := r.EndWall(); e < end {
			end = e
		}
	}
	if first {
		return nil, errors.New("core: no run observed any traffic")
	}
	samples := int(int64(end-start) / int64(interval))
	if samples <= 0 {
		return nil, fmt.Errorf("core: no common window (start %d >= end %d)", start, end)
	}
	sr := &SyncRun{Interval: interval, Samples: samples, StartWall: start}
	for i, r := range runs {
		ss := ServerSeries{
			Host:        r.Host,
			Port:        ports[i],
			LineRateBps: r.LineRateBps,
		}
		if !r.Started {
			ss.In = make([]float64, samples)
			ss.InRetx = make([]float64, samples)
			ss.InECN = make([]float64, samples)
			ss.Out = make([]float64, samples)
			ss.OutRetx = make([]float64, samples)
			ss.Conns = make([]float64, samples)
			sr.Servers = append(sr.Servers, ss)
			continue
		}
		// Offset of the common origin within this host's bucket grid.
		off := float64(int64(start-r.StartWall)) / float64(interval)
		ss.In = interpolate(r.Bytes[CtrIn], off, samples)
		ss.InRetx = interpolate(r.Bytes[CtrInRetx], off, samples)
		ss.InECN = interpolate(r.Bytes[CtrInECN], off, samples)
		ss.Out = interpolate(r.Bytes[CtrOut], off, samples)
		ss.OutRetx = interpolate(r.Bytes[CtrOutRetx], off, samples)
		if r.Conns != nil {
			ss.Conns = interpolateF(r.Conns, off, samples)
		} else {
			ss.Conns = make([]float64, samples)
		}
		sr.Servers = append(sr.Servers, ss)
	}
	return sr, nil
}

// interpolate resamples src at positions off, off+1, ... producing n values
// by linear interpolation between adjacent buckets.
func interpolate(src []uint64, off float64, n int) []float64 {
	f := make([]float64, len(src))
	for i, v := range src {
		f[i] = float64(v)
	}
	return interpolateF(f, off, n)
}

func interpolateF(src []float64, off float64, n int) []float64 {
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		pos := off + float64(j)
		i := int(pos)
		frac := pos - float64(i)
		switch {
		case i < 0:
			out[j] = src[0]
		case i >= len(src)-1:
			out[j] = src[len(src)-1]
		default:
			out[j] = src[i]*(1-frac) + src[i+1]*frac
		}
	}
	return out
}
