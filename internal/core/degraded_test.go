package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// degradedRack builds a rack with perfectly synchronized clocks and a
// deterministic per-host injection schedule: every host receives one sized
// segment per millisecond over [from, to).
func degradedRack(servers int, ctl testbed.ControlConfig, seed uint64) *testbed.Rack {
	return testbed.NewRack(testbed.RackConfig{
		Servers:    servers,
		Seed:       seed,
		ClockModel: clock.PerfectSyncModel(),
		Control:    ctl,
	})
}

func injectEvery(rack *testbed.Rack, host int, from, to sim.Time, size int) {
	h := rack.Servers[host]
	for t := from; t < to; t += sim.Millisecond {
		tt := t
		rack.Eng.At(tt, func() {
			h.Inject(&netsim.Segment{
				Flow: netsim.FlowKey{Src: 999, Dst: h.ID, SrcPort: 7, DstPort: 80},
				Size: size,
			})
		})
	}
}

func TestControllerCrashMidRunTruncates(t *testing.T) {
	rack := degradedRack(3, testbed.ControlConfig{}, 9)
	cfg := Config{Interval: sim.Millisecond, Buckets: 100}
	ctrl := NewController(rack, cfg)
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		injectEvery(rack, i, 21*sim.Millisecond, 119*sim.Millisecond, 1000)
	}
	// Host 2 crashes at 70 ms and reboots well before the 125 ms harvest.
	rack.Eng.At(70*sim.Millisecond, func() { rack.Servers[2].Crash(20 * sim.Millisecond) })
	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)

	if !ctrl.Done() {
		t.Fatal("harvest did not complete")
	}
	cols := ctrl.Collections()
	if cols[0].Status != StatusOK || cols[1].Status != StatusOK {
		t.Errorf("healthy hosts = %v, %v, want ok", cols[0].Status, cols[1].Status)
	}
	if cols[2].Status != StatusTruncated {
		t.Fatalf("crashed host = %v, want truncated", cols[2].Status)
	}
	run := cols[2].Run
	if run == nil || !run.Truncated {
		t.Fatal("truncated host did not yield a truncated run")
	}
	// First packet at 21 ms, crash at 70 ms: ~49 complete buckets.
	if run.ValidBuckets < 45 || run.ValidBuckets > 50 {
		t.Errorf("ValidBuckets = %d, want ≈49", run.ValidBuckets)
	}
	for _, v := range run.Bytes[CtrIn][run.ValidBuckets:] {
		if v != 0 {
			t.Fatal("data beyond the truncation point")
		}
	}

	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Health.OK != 2 || sr.Health.Truncated != 1 || sr.Health.Degraded() != 1 {
		t.Errorf("health = %v", sr.Health)
	}
	srv := &sr.Servers[2]
	if srv.Status != StatusTruncated {
		t.Errorf("aligned series status = %v", srv.Status)
	}
	v := srv.Valid(sr.Samples)
	if v <= 0 || v >= sr.Samples {
		t.Errorf("valid samples = %d of %d, want a proper prefix", v, sr.Samples)
	}
	for _, x := range srv.In[v:] {
		if x != 0 {
			t.Fatal("aligned series nonzero past the valid prefix")
		}
	}
	// The healthy hosts keep the full window.
	if sr.Servers[0].Valid(sr.Samples) != sr.Samples {
		t.Errorf("healthy host valid = %d, want %d", sr.Servers[0].Valid(sr.Samples), sr.Samples)
	}
}

func TestControllerHostDownThroughHarvestMissing(t *testing.T) {
	rack := degradedRack(2, testbed.ControlConfig{}, 10)
	ctrl := NewController(rack, Config{Interval: sim.Millisecond, Buckets: 100})
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}
	injectEvery(rack, 0, 21*sim.Millisecond, 119*sim.Millisecond, 800)
	injectEvery(rack, 1, 21*sim.Millisecond, 119*sim.Millisecond, 800)
	// Host 1 goes down just before the harvest and stays down past the
	// straggler deadline: every RPC attempt must fail.
	rack.Eng.At(120*sim.Millisecond, func() { rack.Servers[1].Crash(10 * sim.Second) })
	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)

	if !ctrl.Done() {
		t.Fatal("harvest did not complete")
	}
	cols := ctrl.Collections()
	if cols[1].Status != StatusMissing {
		t.Fatalf("down host = %v, want missing", cols[1].Status)
	}
	if cols[1].Attempts < 2 {
		t.Errorf("controller gave up after %d attempts, want retries", cols[1].Attempts)
	}
	if !errors.Is(cols[1].Err, testbed.ErrHostDown) {
		t.Errorf("missing host error = %v, want ErrHostDown", cols[1].Err)
	}
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Health.Missing != 1 || sr.Health.OK != 1 {
		t.Errorf("health = %v", sr.Health)
	}
	srv := &sr.Servers[1]
	if srv.Status != StatusMissing || srv.Valid(sr.Samples) != 0 {
		t.Errorf("missing host series: status %v, valid %d", srv.Status, srv.Valid(sr.Samples))
	}
	for _, x := range srv.In {
		if x != 0 {
			t.Fatal("missing host series not zeroed")
		}
	}
}

func TestControllerDownAtArmUnsynced(t *testing.T) {
	rack := degradedRack(2, testbed.ControlConfig{}, 11)
	ctrl := NewController(rack, Config{Interval: sim.Millisecond, Buckets: 50})
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}
	injectEvery(rack, 0, 21*sim.Millisecond, 69*sim.Millisecond, 500)
	// Host 1 is down when the run is armed; it reboots mid-window, too late
	// to join the synchronized start.
	rack.Eng.At(10*sim.Millisecond, func() { rack.Servers[1].Crash(30 * sim.Millisecond) })
	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)

	if !ctrl.Done() {
		t.Fatal("harvest did not complete")
	}
	if st := ctrl.Collections()[1].Status; st != StatusUnsynced {
		t.Fatalf("host down at arm = %v, want unsynced", st)
	}
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Health.Unsynced != 1 {
		t.Errorf("health = %v", sr.Health)
	}
}

func TestControllerRetriesThroughLossyControlPlane(t *testing.T) {
	rack := degradedRack(4, testbed.ControlConfig{FailProb: 0.4}, 12)
	ctrl := NewController(rack, Config{Interval: sim.Millisecond, Buckets: 100})
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		injectEvery(rack, i, 21*sim.Millisecond, 119*sim.Millisecond, 700)
	}
	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)

	if !ctrl.Done() {
		t.Fatal("harvest did not complete despite the straggler deadline")
	}
	if rack.Control.Failures == 0 {
		t.Fatal("seeded lossy control plane produced no failures")
	}
	retried := false
	for _, col := range ctrl.Collections() {
		if col.Status != StatusOK && col.Status != StatusMissing {
			t.Errorf("host %d: status %v, want ok or missing", col.Host, col.Status)
		}
		if col.Attempts > 1 {
			retried = true
		}
		if col.Status == StatusOK && col.Run == nil {
			t.Errorf("host %d ok without a run", col.Host)
		}
	}
	if !retried {
		t.Error("no host needed a retry at 40% RPC loss")
	}
}

func TestControllerRepeatedSchedules(t *testing.T) {
	rack := degradedRack(2, testbed.ControlConfig{}, 13)
	ctrl := NewController(rack, Config{Interval: sim.Millisecond, Buckets: 40})

	const first = 20 * sim.Millisecond
	if err := ctrl.Schedule(first); err != nil {
		t.Fatal(err)
	}
	// A second schedule while the first harvest is pending must be refused.
	if err := ctrl.Schedule(first + 200*sim.Millisecond); !errors.Is(err, ErrHarvestPending) {
		t.Fatalf("overlapping schedule: err = %v, want ErrHarvestPending", err)
	}
	injectEvery(rack, 0, 21*sim.Millisecond, 59*sim.Millisecond, 400)
	injectEvery(rack, 1, 21*sim.Millisecond, 59*sim.Millisecond, 400)
	rack.Eng.RunUntil(ctrl.HarvestDeadline(first) + sim.Millisecond)
	if !ctrl.Done() {
		t.Fatal("first harvest did not complete")
	}
	sr1, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Done resets on the next schedule, and the second run harvests cleanly.
	second := rack.Eng.Now() + 20*sim.Millisecond
	if err := ctrl.Schedule(second); err != nil {
		t.Fatal(err)
	}
	if ctrl.Done() {
		t.Fatal("Done did not reset on reschedule")
	}
	if _, err := ctrl.Result(); !errors.Is(err, ErrNotHarvested) {
		t.Fatalf("result mid-flight: err = %v, want ErrNotHarvested", err)
	}
	injectEvery(rack, 0, second+sim.Millisecond, second+39*sim.Millisecond, 400)
	injectEvery(rack, 1, second+sim.Millisecond, second+39*sim.Millisecond, 400)
	rack.Eng.RunUntil(ctrl.HarvestDeadline(second) + sim.Millisecond)
	if !ctrl.Done() {
		t.Fatal("second harvest did not complete")
	}
	sr2, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sr1.Samples <= 0 || sr2.Samples <= 0 {
		t.Errorf("samples = %d then %d", sr1.Samples, sr2.Samples)
	}
	if !sr2.Health.AllOK() {
		t.Errorf("second run health = %v", sr2.Health)
	}
}

func TestControllerResultNoRuns(t *testing.T) {
	rack := degradedRack(2, testbed.ControlConfig{}, 14)
	ctrl := NewController(rack, Config{Interval: sim.Millisecond, Buckets: 40})
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}
	// Both hosts down before the run is armed and for its whole lifetime.
	rack.Eng.At(5*sim.Millisecond, func() {
		rack.Servers[0].Crash(10 * sim.Second)
		rack.Servers[1].Crash(10 * sim.Second)
	})
	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)
	if !ctrl.Done() {
		t.Fatal("harvest did not complete")
	}
	if _, err := ctrl.Result(); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("all-down result: err = %v, want ErrNoRuns", err)
	}
}

// --- Align edge cases on hand-built runs ---

func mkRun(host netsim.HostID, buckets int, startWall clock.WallTime, fill uint64) *Run {
	r := &Run{
		Host: host, Interval: sim.Millisecond, Buckets: buckets,
		Started: true, StartWall: startWall, LineRateBps: 1,
	}
	for k := 0; k < NumCounters; k++ {
		r.Bytes[k] = make([]uint64, buckets)
	}
	for i := range r.Bytes[CtrIn] {
		r.Bytes[CtrIn][i] = fill
	}
	return r
}

func TestAlignNegativeOffsetClockSkew(t *testing.T) {
	// Host b's clock runs ahead: its recorded start precedes the common
	// origin, so its interpolation offset is negative and must clamp to the
	// series edge instead of reading out of bounds.
	a := mkRun(1, 10, clock.WallTime(5*sim.Millisecond), 100)
	b := mkRun(2, 10, clock.WallTime(2*sim.Millisecond), 40)
	sr, err := Align([]*Run{a, b}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.StartWall != a.StartWall {
		t.Errorf("common origin %d, want a's start %d", sr.StartWall, a.StartWall)
	}
	for i, v := range sr.Servers[1].In[:sr.Samples-1] {
		if v != 40 {
			t.Fatalf("skewed host sample %d = %v, want 40", i, v)
		}
	}
}

func TestAlignSingleStartedHost(t *testing.T) {
	started := mkRun(1, 8, 0, 50)
	idle := &Run{Host: 2, Interval: sim.Millisecond, Buckets: 8, LineRateBps: 1}
	for k := 0; k < NumCounters; k++ {
		idle.Bytes[k] = make([]uint64, 8)
	}
	sr, err := Align([]*Run{started, idle}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 8 {
		t.Errorf("samples = %d, want the single started host's window", sr.Samples)
	}
	// The idle host is healthy: its zeros are real measurements.
	if sr.Servers[1].Status != StatusOK || sr.Servers[1].Valid(sr.Samples) != sr.Samples {
		t.Errorf("idle host: status %v valid %d", sr.Servers[1].Status, sr.Servers[1].Valid(sr.Samples))
	}
	if !sr.Health.AllOK() {
		t.Errorf("health = %v", sr.Health)
	}
}

func TestAlignMixedTruncatedWindows(t *testing.T) {
	// Two complete runs plus two truncated ones cut at different points:
	// the common window must come from the complete runs only, and each
	// truncated host contributes exactly its own valid prefix.
	full1 := mkRun(1, 20, 0, 100)
	full2 := mkRun(2, 20, 0, 100)
	t1 := mkRun(3, 20, 0, 100)
	t1.Truncated = true
	t1.ValidBuckets = 5
	t2 := mkRun(4, 20, 0, 100)
	t2.Truncated = true
	t2.ValidBuckets = 12
	sr, err := Align([]*Run{full1, full2, t1, t2}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 20 {
		t.Fatalf("samples = %d: truncated runs shrank the common window", sr.Samples)
	}
	if sr.Health.OK != 2 || sr.Health.Truncated != 2 {
		t.Errorf("health = %v", sr.Health)
	}
	if v := sr.Servers[2].Valid(sr.Samples); v != 5 {
		t.Errorf("t1 valid = %d, want 5", v)
	}
	if v := sr.Servers[3].Valid(sr.Samples); v != 12 {
		t.Errorf("t2 valid = %d, want 12", v)
	}
	for i := 12; i < 20; i++ {
		if sr.Servers[3].In[i] != 0 {
			t.Fatalf("t2 sample %d nonzero past truncation", i)
		}
	}
}

func TestAlignAllTruncatedFallback(t *testing.T) {
	// Rack-wide outage: no complete run exists, so the window falls back to
	// the truncated runs' intersection instead of erroring out.
	t1 := mkRun(1, 20, 0, 60)
	t1.Truncated = true
	t1.ValidBuckets = 10
	t2 := mkRun(2, 20, 0, 60)
	t2.Truncated = true
	t2.ValidBuckets = 14
	sr, err := Align([]*Run{t1, t2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 10 {
		t.Errorf("fallback window = %d samples, want 10 (shortest truncated run)", sr.Samples)
	}
	if sr.Health.Truncated != 2 {
		t.Errorf("health = %v", sr.Health)
	}
}

func TestAlignCollectionsMissingHost(t *testing.T) {
	ok := mkRun(1, 10, 0, 80)
	cols := []HostCollection{
		{Host: 1, Status: StatusOK, Run: ok},
		{Host: 2, Status: StatusMissing},
	}
	sr, err := AlignCollections(cols, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 10 {
		t.Errorf("samples = %d", sr.Samples)
	}
	if sr.Health.Missing != 1 || sr.Health.OK != 1 {
		t.Errorf("health = %v", sr.Health)
	}
	miss := &sr.Servers[1]
	if miss.Status != StatusMissing || miss.Host != 2 || miss.Valid(sr.Samples) != 0 {
		t.Errorf("missing series = %+v", miss)
	}
	if len(miss.In) != sr.Samples {
		t.Errorf("missing series length %d, want %d", len(miss.In), sr.Samples)
	}
}
