package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// bareHost returns a host with a perfect clock on a fresh engine, for
// sampler unit tests that inject segments directly.
func bareHost(cores int) (*sim.Engine, *netsim.Host) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, netsim.HostConfig{ID: 1, Cores: cores})
	h.SetForwarder(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	return eng, h
}

func seg(src netsim.HostID, port uint16, size int, flags netsim.Flags) *netsim.Segment {
	return &netsim.Segment{
		Flow:  netsim.FlowKey{Src: src, Dst: 1, SrcPort: port, DstPort: 80},
		Size:  size,
		Flags: flags,
	}
}

func TestSamplerBucketPlacement(t *testing.T) {
	eng, h := bareHost(4)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 10, CountFlows: true})
	s.Attach()
	s.Enable()

	eng.At(5*sim.Millisecond, func() { h.Inject(seg(7, 1, 100, 0)) })  // starts run, bucket 0
	eng.At(6*sim.Millisecond, func() { h.Inject(seg(7, 1, 200, 0)) })  // bucket 1
	eng.At(14*sim.Millisecond, func() { h.Inject(seg(7, 1, 400, 0)) }) // bucket 9
	eng.Run()

	r := s.Read()
	if !r.Started {
		t.Fatal("run never started")
	}
	in := r.Series(CtrIn)
	if in[0] != 100 || in[1] != 200 || in[9] != 400 {
		t.Errorf("buckets = [0]=%d [1]=%d [9]=%d", in[0], in[1], in[9])
	}
	for i := 2; i < 9; i++ {
		if in[i] != 0 {
			t.Errorf("bucket %d nonzero: %d", i, in[i])
		}
	}
}

func TestSamplerStartsOnFirstPacket(t *testing.T) {
	eng, h := bareHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5})
	s.Attach()
	s.Enable()
	eng.At(123*sim.Millisecond, func() { h.Inject(seg(7, 1, 50, 0)) })
	eng.Run()
	r := s.Read()
	if clock.WallTime(123*sim.Millisecond) != r.StartWall {
		t.Errorf("StartWall = %d, want first-packet time", r.StartWall)
	}
	if r.Series(CtrIn)[0] != 50 {
		t.Error("first packet not in bucket 0")
	}
}

func TestSamplerSelfClearsBeyondWindow(t *testing.T) {
	eng, h := bareHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5})
	s.Attach()
	s.Enable()
	eng.At(0, func() { h.Inject(seg(7, 1, 100, 0)) })
	eng.At(10*sim.Millisecond, func() { h.Inject(seg(7, 1, 999, 0)) }) // beyond window
	eng.Run()
	if s.Enabled() {
		t.Error("enabled flag did not self-clear")
	}
	r := s.Read()
	if got := r.TotalBytes(CtrIn); got != 100 {
		t.Errorf("beyond-window packet was counted: total %d", got)
	}
	// Further packets take the disabled fast path.
	before := s.DisabledCalls
	h.Inject(seg(7, 1, 10, 0))
	if s.DisabledCalls != before+1 {
		t.Error("disabled path not taken")
	}
}

func TestSamplerDirectionsAndFlagCounters(t *testing.T) {
	eng, h := bareHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5})
	s.Attach()
	s.Enable()
	eng.At(0, func() {
		h.Inject(seg(7, 1, 100, 0))
		h.Inject(seg(7, 2, 150, netsim.FlagRetx))
		h.Inject(seg(7, 3, 200, netsim.FlagCE))
		h.Send(seg(1, 4, 300, 0))
		h.Send(seg(1, 5, 350, netsim.FlagRetx))
	})
	eng.Run()
	r := s.Read()
	checks := []struct {
		kind int
		want uint64
	}{
		{CtrIn, 450}, {CtrInRetx, 150}, {CtrInECN, 200},
		{CtrOut, 650}, {CtrOutRetx, 350},
	}
	for _, c := range checks {
		if got := r.TotalBytes(c.kind); got != c.want {
			t.Errorf("counter %d = %d, want %d", c.kind, got, c.want)
		}
	}
}

func TestSamplerPerCPUAggregation(t *testing.T) {
	// Many flows spread across cores by RSS; Read must sum to the total.
	eng, h := bareHost(8)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5, CountFlows: true})
	s.Attach()
	s.Enable()
	var want uint64
	eng.At(0, func() {
		for p := uint16(0); p < 200; p++ {
			h.Inject(seg(7, p, 100, 0))
			want += 100
		}
	})
	eng.Run()
	r := s.Read()
	if got := r.TotalBytes(CtrIn); got != want {
		t.Errorf("aggregated %d, want %d", got, want)
	}
	// 200 distinct flows in bucket 0: sketch should report a large count
	// (well above a dozen, below saturation ceiling).
	if c := r.Conns[0]; c < 100 || c > 700 {
		t.Errorf("Conns[0] = %v for 200 flows", c)
	}
}

func TestSamplerFlowCountBothDirectionsOnce(t *testing.T) {
	// A connection's data and ACKs must count as one flow.
	eng, h := bareHost(4)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5, CountFlows: true})
	s.Attach()
	s.Enable()
	eng.At(0, func() {
		data := seg(7, 1, 1000, 0)
		h.Inject(data)
		ackSeg := &netsim.Segment{Flow: data.Flow.Reverse(), Size: 66, Flags: netsim.FlagACK}
		h.Send(ackSeg)
	})
	eng.Run()
	r := s.Read()
	if c := r.Conns[0]; math.Abs(c-1) > 0.1 {
		t.Errorf("Conns[0] = %v, want ~1 for one bidirectional connection", c)
	}
}

func TestSamplerEnableResets(t *testing.T) {
	eng, h := bareHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5, CountFlows: true})
	s.Attach()
	s.Enable()
	eng.At(0, func() { h.Inject(seg(7, 1, 100, 0)) })
	eng.Run()
	s.Enable()
	r := s.Read()
	if r.Started || r.TotalBytes(CtrIn) != 0 {
		t.Error("Enable did not reset counters")
	}
}

func TestSamplerRunHelpers(t *testing.T) {
	eng, h := bareHost(2)
	s := NewSampler(h, Config{Interval: sim.Millisecond, Buckets: 5})
	s.Attach()
	s.Enable()
	// 1,562,500 bytes in 1ms = 12.5 Gbps = 100% utilization.
	eng.At(0, func() { h.Inject(seg(7, 1, 1_562_500/2, 0)) })
	eng.Run()
	r := s.Read()
	if u := r.Utilization(0); math.Abs(u-0.5) > 0.01 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	if bb := r.BucketBytesAtRate(0.5); bb != 781_250 {
		t.Errorf("BucketBytesAtRate(0.5) = %d", bb)
	}
}

func TestSamplerMemoryFootprint(t *testing.T) {
	eng, h := bareHost(4)
	_ = eng
	s := NewSampler(h, DefaultConfig())
	// 5 counters * 2000 buckets * 8B + 2000 * 16B sketch, per core, 4 cores.
	want := (5*2000*8 + 2000*16) * 4
	if got := s.MemoryFootprint(); got != want {
		t.Errorf("MemoryFootprint = %d, want %d", got, want)
	}
}

func TestAlignInterpolatesHalfBucketOffset(t *testing.T) {
	mk := func(startMs int64, vals []uint64) *Run {
		r := &Run{
			Host: 1, Interval: sim.Millisecond, Buckets: len(vals),
			Started: true, StartWall: clock.WallTime(startMs * int64(sim.Millisecond)),
			LineRateBps: netsim.DefaultServerRateBps,
		}
		for k := 0; k < NumCounters; k++ {
			r.Bytes[k] = make([]uint64, len(vals))
		}
		copy(r.Bytes[CtrIn], vals)
		return r
	}
	a := mk(0, []uint64{0, 100, 200, 300, 400, 500})
	b := mk(0, []uint64{10, 10, 10, 10, 10, 10})
	// Shift b's start by +0.5ms: b's grid is offset half a bucket.
	b.StartWall += clock.WallTime(sim.Millisecond / 2)
	sr, err := Align([]*Run{a, b}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Common window starts at b's start; a is interpolated at half-buckets:
	// a ramp interpolates to midpoints 50, 150, ...
	if sr.Samples < 4 {
		t.Fatalf("Samples = %d", sr.Samples)
	}
	if got := sr.Servers[0].In[0]; math.Abs(got-50) > 1e-9 {
		t.Errorf("interpolated a[0] = %v, want 50", got)
	}
	if got := sr.Servers[1].In[0]; math.Abs(got-10) > 1e-9 {
		t.Errorf("aligned b[0] = %v, want 10", got)
	}
}

func TestAlignConstantInvariance(t *testing.T) {
	// Property: aligning a constant series yields the same constant for any
	// sub-bucket offset.
	f := func(offRaw uint8, valRaw uint16) bool {
		val := uint64(valRaw) + 1
		vals := make([]uint64, 20)
		for i := range vals {
			vals[i] = val
		}
		a := &Run{Host: 1, Interval: sim.Millisecond, Buckets: 20, Started: true, LineRateBps: 1}
		b := &Run{Host: 2, Interval: sim.Millisecond, Buckets: 20, Started: true, LineRateBps: 1}
		for k := 0; k < NumCounters; k++ {
			a.Bytes[k] = make([]uint64, 20)
			b.Bytes[k] = make([]uint64, 20)
		}
		copy(a.Bytes[CtrIn], vals)
		copy(b.Bytes[CtrIn], vals)
		off := int64(offRaw) * int64(sim.Millisecond) / 256
		b.StartWall = clock.WallTime(off)
		sr, err := Align([]*Run{a, b}, []int{0, 1})
		if err != nil {
			return false
		}
		for _, srv := range sr.Servers {
			for _, v := range srv.In {
				if math.Abs(v-float64(val)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAlignSkipsIdleHosts(t *testing.T) {
	started := &Run{Host: 1, Interval: sim.Millisecond, Buckets: 10, Started: true, LineRateBps: 1}
	idle := &Run{Host: 2, Interval: sim.Millisecond, Buckets: 10, Started: false, LineRateBps: 1}
	for k := 0; k < NumCounters; k++ {
		started.Bytes[k] = make([]uint64, 10)
		idle.Bytes[k] = make([]uint64, 10)
	}
	sr, err := Align([]*Run{started, idle}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 10 {
		t.Errorf("Samples = %d, want full window from the started run", sr.Samples)
	}
	for _, v := range sr.Servers[1].In {
		if v != 0 {
			t.Fatal("idle host series not zero")
		}
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := Align(nil, nil); err == nil {
		t.Error("empty align did not error")
	}
	r1 := &Run{Interval: sim.Millisecond, Buckets: 5}
	if _, err := Align([]*Run{r1}, []int{0}); err == nil {
		t.Error("all-idle align did not error")
	}
	r2 := &Run{Interval: 2 * sim.Millisecond, Buckets: 5, Started: true}
	r3 := &Run{Interval: sim.Millisecond, Buckets: 5, Started: true}
	if _, err := Align([]*Run{r2, r3}, []int{0, 1}); err == nil {
		t.Error("mixed intervals did not error")
	}
}

func TestControllerEndToEnd(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: 3})
	cfg := Config{Interval: sim.Millisecond, Buckets: 200, CountFlows: true}
	ctrl := NewController(rack, cfg)
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Traffic to two servers during the window.
	const transfer = 4 << 20
	for i := 0; i < 2; i++ {
		c := rack.RemoteEPs[i].Connect(rack.Servers[i].ID, 80, transport.Options{})
		total := int64(0)
		i := i
		var feed func()
		feed = func() {
			if total >= transfer {
				return
			}
			c.Send(256 << 10)
			total += 256 << 10
			rack.Eng.After(10*sim.Millisecond, feed)
		}
		rack.Eng.At(25*sim.Millisecond+sim.Time(i)*sim.Millisecond, feed)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)

	if !ctrl.Done() {
		t.Fatal("controller never harvested")
	}
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Servers) != 4 {
		t.Fatalf("SyncRun has %d servers", len(sr.Servers))
	}
	if sr.Samples < 150 || sr.Samples > 200 {
		t.Errorf("Samples = %d, want close to 200 after trimming", sr.Samples)
	}
	var in0 float64
	for _, v := range sr.Servers[0].In {
		in0 += v
	}
	// Trimming to the common window may cut the first chunk (sent before the
	// slower-starting server's first packet), so allow one chunk of slack.
	if in0 < transfer-(300<<10) {
		t.Errorf("server 0 aligned ingress %v, want close to %d transferred", in0, transfer)
	}
}

func TestControllerScheduleLeadError(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 1})
	ctrl := NewController(rack, DefaultConfig())
	if err := ctrl.Schedule(0); err == nil {
		t.Error("insufficient lead time did not return an error")
	}
}

func TestPeriodicRuns(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 5})
	s := NewSampler(rack.Servers[0], Config{Interval: sim.Millisecond, Buckets: 50})
	var stored []*Run
	p := &Periodic{Sampler: s, Period: 100 * sim.Millisecond, Store: func(r *Run) { stored = append(stored, r) }}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	// Background traffic so runs start.
	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	var feed func()
	feed = func() {
		c.Send(10 << 10)
		rack.Eng.After(5*sim.Millisecond, feed)
	}
	rack.Eng.After(0, feed)
	rack.Eng.RunUntil(500 * sim.Millisecond)
	p.Stop()

	if p.Runs() < 2 {
		t.Fatalf("completed %d periodic runs, want >= 2", p.Runs())
	}
	if len(stored) != p.Runs() {
		t.Errorf("stored %d runs, completed %d", len(stored), p.Runs())
	}
	for i, r := range stored {
		if !r.Started {
			t.Errorf("run %d never started despite traffic", i)
		}
	}
	if s.Attached() {
		t.Error("sampler still attached between runs")
	}
}

func TestPcapLikeCapturesAndDrops(t *testing.T) {
	p := NewPcapLike(100, 4)
	s := seg(7, 1, 500, netsim.FlagCE)
	for i := 0; i < 6; i++ {
		p.Handle(sim.Time(i), 0, netsim.Ingress, s)
	}
	if p.Captured != 4 || p.Dropped != 2 {
		t.Errorf("captured=%d dropped=%d, want 4/2", p.Captured, p.Dropped)
	}
	if n := p.Drain(); n != 4 {
		t.Errorf("Drain = %d", n)
	}
	p.Handle(7, 0, netsim.Ingress, s)
	if p.Captured != 5 {
		t.Error("capture after drain failed")
	}
}

func TestRunSeriesPanicsOnBadKind(t *testing.T) {
	r := &Run{}
	defer func() {
		if recover() == nil {
			t.Error("Series(99) did not panic")
		}
	}()
	r.Series(99)
}
