package dataset

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fleet"
	"repro/internal/fsutil"
)

// Writer appends shards to a dataset directory. It is safe for concurrent
// use by the generation workers: each rack's ShardWriter is owned by one
// goroutine, and manifest updates are serialized internally.
type Writer struct {
	dir string

	mu  sync.Mutex
	man *Manifest
	idx map[string]int // shardKey -> index into man.Shards
}

// Create opens dir for (resumed) generation with cfg. A fresh directory gets
// a manifest listing every expected shard; an existing one is validated —
// the stored config and seed must match cfg (Workers aside), completed
// shards are digest-verified (corrupt or missing ones are demoted to
// pending so they regenerate), and stale temp files are removed. A config
// or seed mismatch returns ErrConfigMismatch rather than mixing shards from
// different generations.
func Create(dir string, cfg fleet.Config) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	norm := normalizeConfig(cfg)

	var man *Manifest
	if IsDir(dir) {
		var err error
		man, err = readManifest(dir)
		if err != nil {
			return nil, err
		}
		if !configsMatch(man.Config, norm) {
			return nil, fmt.Errorf("%w: %s was generated with seed %d / %d racks x %d servers x %d hours x %d buckets / %s fidelity / hoststack %s; refusing to mix with seed %d / %d racks x %d servers x %d hours x %d buckets / %s fidelity / hoststack %s",
				ErrConfigMismatch, dir,
				man.Config.Seed, man.Config.RacksPerRegion, man.Config.ServersPerRack, len(man.Config.Hours), man.Config.Buckets, fidelityName(man.Config.Fidelity), onOff(man.Config.HostStack),
				norm.Seed, norm.RacksPerRegion, norm.ServersPerRack, len(norm.Hours), norm.Buckets, fidelityName(norm.Fidelity), onOff(norm.HostStack))
		}
	} else {
		man = &Manifest{FormatVersion: FormatVersion, Config: norm}
		for _, spec := range fleet.BuildRacks(norm) {
			man.Shards = append(man.Shards, ShardEntry{
				Region: spec.Region,
				ID:     spec.ID,
				File:   shardFileName(spec.Region, spec.ID),
			})
		}
	}

	w := &Writer{dir: dir, man: man, idx: make(map[string]int, len(man.Shards))}
	for i := range man.Shards {
		w.idx[shardKey(man.Shards[i].Region, man.Shards[i].ID)] = i
	}
	if err := w.sweep(); err != nil {
		return nil, err
	}
	// A resumed directory is no longer complete until Finalize runs again
	// (it may have just demoted corrupt shards).
	w.man.Complete = w.man.Complete && w.pending() == 0
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return w, nil
}

// sweep removes stale temp files and demotes completed shards whose file is
// missing or fails digest verification.
func (w *Writer) sweep() error {
	if err := fsutil.RemoveTempFiles(w.dir); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for i := range w.man.Shards {
		s := &w.man.Shards[i]
		if !s.Complete {
			continue
		}
		if err := verifyShardFile(filepath.Join(w.dir, s.File), s.Digest); err != nil {
			// Regenerate rather than trust it; keep nothing that could mix
			// a damaged shard into the dataset.
			os.Remove(filepath.Join(w.dir, s.File))
			*s = ShardEntry{Region: s.Region, ID: s.ID, File: s.File}
		}
	}
	return nil
}

// verifyShardFile checks that a shard file hashes to the recorded digest.
func verifyShardFile(path, digest string) error {
	got, err := fsutil.FileSHA256(path)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptShard, err)
	}
	if got != digest {
		return fmt.Errorf("%w: %s digests %s, manifest records %s", ErrCorruptShard, path, got, digest)
	}
	return nil
}

// Config returns the writer's normalized generation config.
func (w *Writer) Config() fleet.Config {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.Config
}

// Done reports whether a rack's shard is already complete (the
// fleet.GenerateStream skip hook).
func (w *Writer) Done(region string, id int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	i, ok := w.idx[shardKey(region, id)]
	return ok && w.man.Shards[i].Complete
}

// Shards returns a copy of the manifest's shard table.
func (w *Writer) Shards() []ShardEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]ShardEntry(nil), w.man.Shards...)
}

// Progress returns completed and total shard counts.
func (w *Writer) Progress() (done, total int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.man.Shards) - w.pendingLocked(), len(w.man.Shards)
}

func (w *Writer) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pendingLocked()
}

func (w *Writer) pendingLocked() int {
	n := 0
	for i := range w.man.Shards {
		if !w.man.Shards[i].Complete {
			n++
		}
	}
	return n
}

// shardEncoder streams RunSummary records into the shard wire format —
// gzip'd gob opened by a shardHeader — hashing the compressed bytes as they
// are produced. The local temp-file path (ShardWriter) and the in-memory
// path the distributed workers upload (EncodeShard) share it, which is what
// makes a remotely produced shard byte-identical to a local one.
type shardEncoder struct {
	zw   *gzip.Writer
	enc  *gob.Encoder
	hash hash.Hash

	runs      int
	collected int
}

// newShardEncoder starts a shard stream on w (header included).
func newShardEncoder(w io.Writer, region string, id int) (*shardEncoder, error) {
	h := sha256.New()
	zw := gzip.NewWriter(io.MultiWriter(w, h))
	e := &shardEncoder{zw: zw, enc: gob.NewEncoder(zw), hash: h}
	if err := e.enc.Encode(shardHeader{FormatVersion: FormatVersion, Region: region, ID: id}); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return e, nil
}

// Run appends one rack-hour.
func (e *shardEncoder) Run(r fleet.RunSummary) error {
	if err := e.enc.Encode(r); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	e.runs++
	if r.Collected {
		e.collected++
	}
	return nil
}

// Close flushes the gzip stream; the digest is final afterwards.
func (e *shardEncoder) Close() error {
	if err := e.zw.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// Digest returns the sha256 hex of the compressed shard bytes written so far.
func (e *shardEncoder) Digest() string { return hex.EncodeToString(e.hash.Sum(nil)) }

// Begin opens the shard for one rack. The returned ShardWriter satisfies
// fleet.RackSink: stream each rack-hour with Run, then Commit. Until Commit
// the data lives in a temp file, so a killed generation leaves no
// half-written shard under a final name.
func (w *Writer) Begin(meta fleet.RackMeta) (*ShardWriter, error) {
	w.mu.Lock()
	i, ok := w.idx[shardKey(meta.Region, meta.ID)]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dataset: rack %s/%d not in manifest", meta.Region, meta.ID)
	}
	f, err := os.CreateTemp(w.dir, ".tmp-shard-")
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	enc, err := newShardEncoder(f, meta.Region, meta.ID)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &ShardWriter{w: w, idx: i, f: f, tmp: f.Name(), enc: enc}, nil
}

// ShardWriter streams one rack's runs into its shard file.
type ShardWriter struct {
	w   *Writer
	idx int
	f   *os.File
	tmp string
	enc *shardEncoder

	done bool
}

// Run appends one rack-hour to the shard.
func (sw *ShardWriter) Run(r fleet.RunSummary) error {
	if err := sw.enc.Run(r); err != nil {
		sw.Abort()
		return err
	}
	return nil
}

// Commit finishes the shard: flushes, fsyncs, and closes the file, renames
// it to its final name, fsyncs the directory, and marks it complete in the
// manifest with its digest. meta must carry the rack's measured
// BusyAvgContention.
func (sw *ShardWriter) Commit(meta fleet.RackMeta) error {
	if sw.done {
		return fmt.Errorf("dataset: shard writer already finished")
	}
	if err := sw.enc.Close(); err != nil {
		sw.Abort()
		return err
	}
	if err := fsutil.SyncFile(sw.f); err != nil {
		sw.Abort()
		return fmt.Errorf("dataset: %w", err)
	}
	if err := sw.f.Close(); err != nil {
		sw.done = true
		os.Remove(sw.tmp)
		return fmt.Errorf("dataset: %w", err)
	}
	sw.done = true
	w := sw.w
	w.mu.Lock()
	defer w.mu.Unlock()
	entry := &w.man.Shards[sw.idx]
	if err := os.Rename(sw.tmp, filepath.Join(w.dir, entry.File)); err != nil {
		os.Remove(sw.tmp)
		return fmt.Errorf("dataset: %w", err)
	}
	if err := fsutil.SyncDir(w.dir); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	entry.Runs = sw.enc.runs
	entry.Collected = sw.enc.collected
	entry.Digest = sw.enc.Digest()
	entry.Meta = meta
	entry.Complete = true
	return writeManifest(w.dir, w.man)
}

// Abort discards the in-progress shard: the temp file is closed and removed,
// the manifest untouched. It is idempotent and satisfies fleet.Aborter, so a
// cancelled generation releases every open shard instead of leaking temp
// files until the next resume's sweep.
func (sw *ShardWriter) Abort() {
	if sw.done {
		return
	}
	sw.done = true
	sw.f.Close()
	os.Remove(sw.tmp)
}

// ShardPayload is one rack's shard produced away from the dataset directory
// — by a distributed worker — as the exact file bytes plus the commit
// metadata the manifest records. Because workers and the local pipeline
// share the same encoder, installing a payload yields a file byte-identical
// to a locally generated one.
type ShardPayload struct {
	Region string
	ID     int
	// Runs/Collected mirror ShardEntry; Verify cross-checks them against the
	// decoded data.
	Runs      int
	Collected int
	// Meta carries the rack's measured BusyAvgContention (Class unset, as in
	// ShardWriter.Commit).
	Meta fleet.RackMeta
	// Data is the shard file's bytes (gzip'd gob stream).
	Data []byte
}

// Digest returns the sha256 hex of the payload's shard bytes.
func (p *ShardPayload) Digest() string { return fsutil.SHA256(p.Data) }

// Verify structurally validates the payload: the data must be a well-formed
// shard stream whose header and record counts match the declared fields. A
// payload that passes Verify commits exactly as a local generation would.
func (p *ShardPayload) Verify() error {
	zr, err := gzip.NewReader(bytes.NewReader(p.Data))
	if err != nil {
		return fmt.Errorf("%w: payload for %s/%d: %v", ErrCorruptShard, p.Region, p.ID, err)
	}
	dec := gob.NewDecoder(zr)
	var hdr shardHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("%w: payload for %s/%d: bad header: %v", ErrCorruptShard, p.Region, p.ID, err)
	}
	if hdr.FormatVersion != FormatVersion || hdr.Region != p.Region || hdr.ID != p.ID {
		return fmt.Errorf("%w: payload header %s/%d (format %d), want %s/%d (format %d)",
			ErrCorruptShard, hdr.Region, hdr.ID, hdr.FormatVersion, p.Region, p.ID, FormatVersion)
	}
	runs, collected := 0, 0
	for {
		var run fleet.RunSummary
		if err := dec.Decode(&run); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("%w: payload for %s/%d: %v", ErrCorruptShard, p.Region, p.ID, err)
		}
		if run.Region != p.Region || run.RackID != p.ID {
			return fmt.Errorf("%w: payload for %s/%d holds run for %s/%d",
				ErrCorruptShard, p.Region, p.ID, run.Region, run.RackID)
		}
		runs++
		if run.Collected {
			collected++
		}
	}
	if runs != p.Runs || collected != p.Collected {
		return fmt.Errorf("%w: payload for %s/%d decodes %d runs (%d collected), declares %d (%d)",
			ErrCorruptShard, p.Region, p.ID, runs, collected, p.Runs, p.Collected)
	}
	return nil
}

// InstallShard durably commits a remotely produced shard: verify, write the
// bytes under a temp name, fsync, rename, fsync the directory, and mark the
// manifest entry complete. Installing an already-complete shard is a no-op
// returning installed=false — the idempotence that makes result redelivery
// safe: however many times a distributed upload is duplicated or replayed,
// exactly one install mutates the dataset.
func (w *Writer) InstallShard(p *ShardPayload) (installed bool, err error) {
	if err := p.Verify(); err != nil {
		return false, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	i, ok := w.idx[shardKey(p.Region, p.ID)]
	if !ok {
		return false, fmt.Errorf("dataset: rack %s/%d not in manifest", p.Region, p.ID)
	}
	entry := &w.man.Shards[i]
	if entry.Complete {
		return false, nil
	}
	if err := fsutil.WriteFileAtomic(w.dir, entry.File, p.Data); err != nil {
		return false, fmt.Errorf("dataset: %w", err)
	}
	entry.Runs = p.Runs
	entry.Collected = p.Collected
	entry.Digest = p.Digest()
	entry.Meta = p.Meta
	entry.Complete = true
	if err := writeManifest(w.dir, w.man); err != nil {
		return false, err
	}
	return true, nil
}

// Finalize classifies the racks and marks the dataset complete. It refuses
// while shards are pending (resume the generation first) and when every
// recorded rack-hour failed to collect.
func (w *Writer) Finalize() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := w.pendingLocked(); n > 0 {
		return fmt.Errorf("%w: %d of %d shards pending", ErrIncomplete, n, len(w.man.Shards))
	}
	collected, runs := 0, 0
	metas := make([]fleet.RackMeta, len(w.man.Shards))
	for i := range w.man.Shards {
		metas[i] = w.man.Shards[i].Meta
		collected += w.man.Shards[i].Collected
		runs += w.man.Shards[i].Runs
	}
	if runs > 0 && collected == 0 {
		return fmt.Errorf("dataset: all %d rack-hour runs failed to collect", runs)
	}
	fleet.ClassifyMetas(metas)
	w.man.Racks = metas
	w.man.Complete = true
	return writeManifest(w.dir, w.man)
}
