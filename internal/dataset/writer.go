package dataset

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fleet"
	"repro/internal/fsutil"
)

// Writer appends shards to a dataset directory. It is safe for concurrent
// use by the generation workers: each rack's ShardWriter is owned by one
// goroutine, and manifest updates are serialized internally.
type Writer struct {
	dir string

	mu  sync.Mutex
	man *Manifest
	idx map[string]int // shardKey -> index into man.Shards
}

// Create opens dir for (resumed) generation with cfg. A fresh directory gets
// a manifest listing every expected shard; an existing one is validated —
// the stored config and seed must match cfg (Workers aside), completed
// shards are digest-verified (corrupt or missing ones are demoted to
// pending so they regenerate), and stale temp files are removed. A config
// or seed mismatch returns ErrConfigMismatch rather than mixing shards from
// different generations.
func Create(dir string, cfg fleet.Config) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	norm := normalizeConfig(cfg)

	var man *Manifest
	if IsDir(dir) {
		var err error
		man, err = readManifest(dir)
		if err != nil {
			return nil, err
		}
		if !configsMatch(man.Config, norm) {
			return nil, fmt.Errorf("%w: %s was generated with seed %d / %d racks x %d servers x %d hours x %d buckets; refusing to mix with seed %d / %d racks x %d servers x %d hours x %d buckets",
				ErrConfigMismatch, dir,
				man.Config.Seed, man.Config.RacksPerRegion, man.Config.ServersPerRack, len(man.Config.Hours), man.Config.Buckets,
				norm.Seed, norm.RacksPerRegion, norm.ServersPerRack, len(norm.Hours), norm.Buckets)
		}
	} else {
		man = &Manifest{FormatVersion: FormatVersion, Config: norm}
		for _, spec := range fleet.BuildRacks(norm) {
			man.Shards = append(man.Shards, ShardEntry{
				Region: spec.Region,
				ID:     spec.ID,
				File:   shardFileName(spec.Region, spec.ID),
			})
		}
	}

	w := &Writer{dir: dir, man: man, idx: make(map[string]int, len(man.Shards))}
	for i := range man.Shards {
		w.idx[shardKey(man.Shards[i].Region, man.Shards[i].ID)] = i
	}
	if err := w.sweep(); err != nil {
		return nil, err
	}
	// A resumed directory is no longer complete until Finalize runs again
	// (it may have just demoted corrupt shards).
	w.man.Complete = w.man.Complete && w.pending() == 0
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return w, nil
}

// sweep removes stale temp files and demotes completed shards whose file is
// missing or fails digest verification.
func (w *Writer) sweep() error {
	if err := fsutil.RemoveTempFiles(w.dir); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for i := range w.man.Shards {
		s := &w.man.Shards[i]
		if !s.Complete {
			continue
		}
		if err := verifyShardFile(filepath.Join(w.dir, s.File), s.Digest); err != nil {
			// Regenerate rather than trust it; keep nothing that could mix
			// a damaged shard into the dataset.
			os.Remove(filepath.Join(w.dir, s.File))
			*s = ShardEntry{Region: s.Region, ID: s.ID, File: s.File}
		}
	}
	return nil
}

// verifyShardFile checks that a shard file hashes to the recorded digest.
func verifyShardFile(path, digest string) error {
	got, err := fsutil.FileSHA256(path)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptShard, err)
	}
	if got != digest {
		return fmt.Errorf("%w: %s digests %s, manifest records %s", ErrCorruptShard, path, got, digest)
	}
	return nil
}

// Done reports whether a rack's shard is already complete (the
// fleet.GenerateStream skip hook).
func (w *Writer) Done(region string, id int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	i, ok := w.idx[shardKey(region, id)]
	return ok && w.man.Shards[i].Complete
}

// Progress returns completed and total shard counts.
func (w *Writer) Progress() (done, total int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.man.Shards) - w.pendingLocked(), len(w.man.Shards)
}

func (w *Writer) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pendingLocked()
}

func (w *Writer) pendingLocked() int {
	n := 0
	for i := range w.man.Shards {
		if !w.man.Shards[i].Complete {
			n++
		}
	}
	return n
}

// Begin opens the shard for one rack. The returned ShardWriter satisfies
// fleet.RackSink: stream each rack-hour with Run, then Commit. Until Commit
// the data lives in a temp file, so a killed generation leaves no
// half-written shard under a final name.
func (w *Writer) Begin(meta fleet.RackMeta) (*ShardWriter, error) {
	w.mu.Lock()
	i, ok := w.idx[shardKey(meta.Region, meta.ID)]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dataset: rack %s/%d not in manifest", meta.Region, meta.ID)
	}
	f, err := os.CreateTemp(w.dir, ".tmp-shard-")
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	h := sha256.New()
	zw := gzip.NewWriter(io.MultiWriter(f, h))
	sw := &ShardWriter{w: w, idx: i, f: f, tmp: f.Name(), zw: zw, enc: gob.NewEncoder(zw), hash: h}
	if err := sw.enc.Encode(shardHeader{FormatVersion: FormatVersion, Region: meta.Region, ID: meta.ID}); err != nil {
		sw.abort()
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return sw, nil
}

// ShardWriter streams one rack's runs into its shard file.
type ShardWriter struct {
	w    *Writer
	idx  int
	f    *os.File
	tmp  string
	zw   *gzip.Writer
	enc  *gob.Encoder
	hash hash.Hash

	runs      int
	collected int
}

// Run appends one rack-hour to the shard.
func (sw *ShardWriter) Run(r fleet.RunSummary) error {
	if err := sw.enc.Encode(r); err != nil {
		sw.abort()
		return fmt.Errorf("dataset: %w", err)
	}
	sw.runs++
	if r.Collected {
		sw.collected++
	}
	return nil
}

// Commit finishes the shard: flushes and closes the file, renames it to its
// final name, and marks it complete in the manifest with its digest. meta
// must carry the rack's measured BusyAvgContention.
func (sw *ShardWriter) Commit(meta fleet.RackMeta) error {
	if err := sw.zw.Close(); err != nil {
		sw.abort()
		return fmt.Errorf("dataset: %w", err)
	}
	if err := sw.f.Close(); err != nil {
		os.Remove(sw.tmp)
		return fmt.Errorf("dataset: %w", err)
	}
	w := sw.w
	w.mu.Lock()
	defer w.mu.Unlock()
	entry := &w.man.Shards[sw.idx]
	if err := os.Rename(sw.tmp, filepath.Join(w.dir, entry.File)); err != nil {
		os.Remove(sw.tmp)
		return fmt.Errorf("dataset: %w", err)
	}
	entry.Runs = sw.runs
	entry.Collected = sw.collected
	entry.Digest = hex.EncodeToString(sw.hash.Sum(nil))
	entry.Meta = meta
	entry.Complete = true
	return writeManifest(w.dir, w.man)
}

// abort discards the in-progress shard.
func (sw *ShardWriter) abort() {
	sw.f.Close()
	os.Remove(sw.tmp)
}

// Finalize classifies the racks and marks the dataset complete. It refuses
// while shards are pending (resume the generation first) and when every
// recorded rack-hour failed to collect.
func (w *Writer) Finalize() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := w.pendingLocked(); n > 0 {
		return fmt.Errorf("%w: %d of %d shards pending", ErrIncomplete, n, len(w.man.Shards))
	}
	collected, runs := 0, 0
	metas := make([]fleet.RackMeta, len(w.man.Shards))
	for i := range w.man.Shards {
		metas[i] = w.man.Shards[i].Meta
		collected += w.man.Shards[i].Collected
		runs += w.man.Shards[i].Runs
	}
	if runs > 0 && collected == 0 {
		return fmt.Errorf("dataset: all %d rack-hour runs failed to collect", runs)
	}
	fleet.ClassifyMetas(metas)
	w.man.Racks = metas
	w.man.Complete = true
	return writeManifest(w.dir, w.man)
}
