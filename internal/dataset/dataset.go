// Package dataset implements the sharded on-disk fleet dataset: a directory
// of per-rack shard files plus a JSON manifest recording the generation
// config, seed, per-shard digests, and completion status.
//
// The format exists so paper-scale generations (2 regions × ~1000 racks ×
// 92 servers, hourly — a multi-hour job) survive interruption: every rack's
// runs stream to its own shard file as the worker finishes them, the
// manifest marks shards complete one by one, and a re-invoked generation
// skips digest-verified completed shards and produces the remainder. The
// final dataset is byte-identical to an uninterrupted run's.
//
// Layout:
//
//	<dir>/manifest.json             config, seed, shard table, rack metadata
//	<dir>/shard-RegA-00007.gob.gz   gzip'd gob: shardHeader, then RunSummary*
//
// Readers stream shard by shard, so peak memory is bounded by one rack's
// runs rather than the fleet. The legacy single-file gob format written by
// trace.Save remains supported by the tools for old datasets.
package dataset

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"repro/internal/fleet"
	"repro/internal/fsutil"
)

// FormatVersion is bumped on any incompatible change to the manifest or
// shard encoding.
const FormatVersion = 1

// manifestName is the manifest file within a dataset directory.
const manifestName = "manifest.json"

// ErrConfigMismatch matches (via errors.Is) an attempt to resume a dataset
// directory with a different config or seed than it was started with.
var ErrConfigMismatch = errors.New("dataset: config mismatch")

// ErrIncomplete matches an attempt to read a dataset whose generation has
// not finished; re-run cmd/fleetgen with the same flags to resume it.
var ErrIncomplete = errors.New("dataset: generation incomplete")

// ErrCorruptShard matches a shard whose contents do not hash to the digest
// recorded in the manifest.
var ErrCorruptShard = errors.New("dataset: corrupt shard")

// Manifest is the dataset directory's table of contents.
type Manifest struct {
	FormatVersion int
	// Config is the normalized generation configuration (zero fields
	// resolved to defaults). Workers is recorded as 0: it only affects
	// scheduling, never results, and must not block resuming on a machine
	// with a different core count.
	Config fleet.Config
	// Shards lists every expected shard in generation order (RegA racks by
	// id, then RegB), present from the moment the directory is created so
	// progress is always len(complete)/len(total).
	Shards []ShardEntry
	// Racks is the classified per-rack metadata, filled by Finalize once
	// every shard is complete. Order matches Shards.
	Racks []fleet.RackMeta
	// Complete is set by Finalize; readers refuse datasets without it.
	Complete bool
}

// ShardEntry tracks one rack's shard.
type ShardEntry struct {
	Region string
	ID     int
	// File is the shard's name within the directory.
	File string
	// Runs counts the rack-hours in the shard; Collected how many of them
	// produced an aligned run (failed collections are recorded, not
	// dropped).
	Runs      int
	Collected int
	// Digest is the sha256 hex of the shard file's bytes; resume and read
	// paths verify it before trusting the shard.
	Digest string
	// Meta is the rack's metadata with BusyAvgContention measured; Class is
	// only meaningful in Manifest.Racks, where Finalize sets it.
	Meta     fleet.RackMeta
	Complete bool
}

// shardHeader opens every shard file so a stray file can be matched to its
// manifest entry.
type shardHeader struct {
	FormatVersion int
	Region        string
	ID            int
}

// shardFileName returns the canonical shard file name for a rack.
func shardFileName(region string, id int) string {
	return fmt.Sprintf("shard-%s-%05d.gob.gz", region, id)
}

func shardKey(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }

// normalizeConfig is the manifest form of a config: defaults resolved,
// scheduling-only fields cleared so they never block a resume.
func normalizeConfig(cfg fleet.Config) fleet.Config {
	n := cfg.WithDefaults()
	n.Workers = 0
	return n
}

// fidelityName spells out a config's fidelity for error messages: the
// normalized form stores full fidelity as the empty string.
func fidelityName(f fleet.Fidelity) string {
	if f == "" {
		return string(fleet.FidelityFull)
	}
	return string(f)
}

// onOff spells a boolean knob for error messages.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// configsMatch reports whether a resume config is compatible with the
// manifest's.
func configsMatch(a, b fleet.Config) bool {
	return reflect.DeepEqual(normalizeConfig(a), normalizeConfig(b))
}

// IsDir reports whether path holds a sharded dataset (a manifest.json).
func IsDir(path string) bool {
	fi, err := os.Stat(filepath.Join(path, manifestName))
	return err == nil && fi.Mode().IsRegular()
}

// LooksSharded reports whether an output path that does not exist yet should
// be created as a sharded directory (anything not named like a legacy
// single-file .gob.gz dataset).
func LooksSharded(path string) bool {
	return !strings.HasSuffix(path, ".gob.gz")
}

// readManifest loads and sanity-checks a directory's manifest.
func readManifest(dir string) (*Manifest, error) {
	var m Manifest
	if err := fsutil.ReadJSON(filepath.Join(dir, manifestName), &m); err != nil {
		return nil, fmt.Errorf("dataset: manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("dataset: %s has format version %d, this build reads %d",
			dir, m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// writeManifest atomically replaces the manifest (temp file + rename), so an
// interrupted update never leaves a torn manifest behind.
func writeManifest(dir string, m *Manifest) error {
	if err := fsutil.WriteJSONAtomic(dir, manifestName, m); err != nil {
		return fmt.Errorf("dataset: manifest: %w", err)
	}
	return nil
}
