package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/fleet"
)

// walkDigest hashes one full EachRun walk: every run's JSON in delivery
// order plus its class. Two walks over the same dataset must digest
// identically.
func walkDigest(t *testing.T, r *Reader) string {
	t.Helper()
	h := sha256.New()
	enc := json.NewEncoder(h)
	_, err := r.EachRun(func(run *fleet.RunSummary, c fleet.Class) error {
		h.Write([]byte{byte(c)})
		return enc.Encode(run)
	})
	if err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestConcurrentShardWalks proves a single shared Reader is safe under
// parallel shard walks — the invariant the query service rides on when it
// serves every client of a dataset from one cached Reader. Run with -race.
func TestConcurrentShardWalks(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := t.TempDir()
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := walkDigest(t, r)

	const walkers = 8
	digests := make([]string, walkers)
	var wg sync.WaitGroup
	for i := 0; i < walkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := sha256.New()
			enc := json.NewEncoder(h)
			// Interleave full walks with single-rack reads and metadata
			// accessors — the mix a busy query service produces.
			if i%2 == 0 {
				if _, err := r.RackRuns("RegA", 0); err != nil {
					t.Error(err)
					return
				}
			}
			_ = r.RackMetas()
			_ = r.Config()
			if _, err := r.StoreDigest(); err != nil {
				t.Error(err)
				return
			}
			_, err := r.EachRunCtx(context.Background(), func(run *fleet.RunSummary, c fleet.Class) error {
				h.Write([]byte{byte(c)})
				return enc.Encode(run)
			})
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = hex.EncodeToString(h.Sum(nil))
		}(i)
	}
	wg.Wait()
	for i, d := range digests {
		if d != want {
			t.Errorf("walker %d digest %s, want %s (concurrent walks are not isolated)", i, d, want)
		}
	}
}

// TestEachRunCtxCancellation proves a cancelled context abandons the walk
// mid-stream with ctx.Err() instead of reading the dataset to the end.
func TestEachRunCtxCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := t.TempDir()
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if _, err := r.EachRun(func(*fleet.RunSummary, fleet.Class) error { total++; return nil }); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	_, err = r.EachRunCtx(ctx, func(*fleet.RunSummary, fleet.Class) error {
		delivered++
		if delivered == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= total {
		t.Fatalf("delivered %d of %d runs after cancellation — walk was not abandoned", delivered, total)
	}
}

// TestStoreDigestIsContentStable pins the store fingerprint: identical data
// in two directories fingerprints identically, and the fingerprint exists
// without decoding any shard.
func TestStoreDigestIsContentStable(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds := legacyTiny(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := Write(dirA, ds); err != nil {
		t.Fatal(err)
	}
	if err := Write(dirB, ds); err != nil {
		t.Fatal(err)
	}
	ra, err := Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	da, err := ra.StoreDigest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := rb.StoreDigest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("identical datasets fingerprint differently: %s vs %s", da, db)
	}
	if da == "" {
		t.Error("empty store digest")
	}
}
