package dataset

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/fleet"
)

// Progress describes one newly completed shard during GenerateDir.
type Progress struct {
	// Done counts complete shards including ones resumed from a previous
	// invocation; Total is the full shard count.
	Done, Total int
	// Region/ID identify the shard that just committed; Runs is its
	// rack-hour count.
	Region string
	ID     int
	Runs   int
}

// progressSink wraps a ShardWriter to report progress after each commit.
// It forwards Abort so a cancelled generation releases the shard's temp file.
type progressSink struct {
	sw *ShardWriter
	w  *Writer
	fn func(Progress)
}

func (s *progressSink) Run(r fleet.RunSummary) error { return s.sw.Run(r) }

func (s *progressSink) Abort() { s.sw.Abort() }

func (s *progressSink) Commit(meta fleet.RackMeta) error {
	if err := s.sw.Commit(meta); err != nil {
		return err
	}
	if s.fn != nil {
		done, total := s.w.Progress()
		s.fn(Progress{Done: done, Total: total, Region: meta.Region, ID: meta.ID, Runs: s.sw.enc.runs})
	}
	return nil
}

// GenerateDir generates (or resumes) a sharded dataset in dir. Completed,
// digest-verified shards from a previous invocation are skipped; every
// remaining rack streams its rack-hours to its shard as its worker finishes
// them, so the process can be killed and re-invoked at any point and the
// finished dataset is identical to an uninterrupted run's. progress, if
// non-nil, is called after every newly committed shard (from worker
// goroutines, serialized per call by the manifest lock's release order but
// not globally ordered).
//
// Cancelling ctx aborts cleanly between rack-hours: open shards are
// discarded (no temp files leak), committed shards stay, and the error is
// ctx.Err(). Re-invoking resumes from the committed shards.
func GenerateDir(ctx context.Context, dir string, cfg fleet.Config, progress func(Progress)) (*Reader, error) {
	w, err := Create(dir, cfg)
	if err != nil {
		return nil, err
	}
	err = fleet.GenerateStream(ctx, cfg, fleet.StreamOpts{
		Skip: w.Done,
		Begin: func(meta fleet.RackMeta) (fleet.RackSink, error) {
			sw, err := w.Begin(meta)
			if err != nil {
				return nil, err
			}
			return &progressSink{sw: sw, w: w, fn: progress}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	if err := w.Finalize(); err != nil {
		return nil, err
	}
	return Open(dir)
}

// memSink streams one rack's runs through a shardEncoder into a buffer — the
// worker-side half of distributed generation. Commit seals the payload.
type memSink struct {
	enc  *shardEncoder
	buf  *bytes.Buffer
	meta fleet.RackMeta
	out  **ShardPayload
}

func (s *memSink) Run(r fleet.RunSummary) error { return s.enc.Run(r) }

func (s *memSink) Commit(meta fleet.RackMeta) error {
	if err := s.enc.Close(); err != nil {
		return err
	}
	*s.out = &ShardPayload{
		Region:    s.meta.Region,
		ID:        s.meta.ID,
		Runs:      s.enc.runs,
		Collected: s.enc.collected,
		Meta:      meta,
		Data:      append([]byte(nil), s.buf.Bytes()...),
	}
	return nil
}

// EncodeShard simulates exactly one rack of cfg and returns its shard as an
// in-memory payload — the unit of work a distributed worker computes. The
// bytes are produced by the same encoder as local generation, so
// Writer.InstallShard yields a file byte-identical to one GenerateDir would
// have written; determinism is in (cfg, region, id) only.
func EncodeShard(ctx context.Context, cfg fleet.Config, region string, id int) (*ShardPayload, error) {
	// One rack means one worker; don't spin up idle goroutines.
	cfg.Workers = 1
	var out *ShardPayload
	err := fleet.GenerateStream(ctx, cfg, fleet.StreamOpts{
		Skip: func(r string, i int) bool { return r != region || i != id },
		Begin: func(meta fleet.RackMeta) (fleet.RackSink, error) {
			buf := &bytes.Buffer{}
			enc, err := newShardEncoder(buf, meta.Region, meta.ID)
			if err != nil {
				return nil, err
			}
			return &memSink{enc: enc, buf: buf, meta: meta, out: &out}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("dataset: rack %s/%d not in config", region, id)
	}
	return out, nil
}

// Write shards an in-memory dataset into dir — the conversion path from the
// legacy single-file format (and from fleet.Generate in tests and tools).
func Write(dir string, ds *fleet.Dataset) error {
	w, err := Create(dir, ds.Cfg)
	if err != nil {
		return err
	}
	for _, meta := range ds.RackMetas() {
		if w.Done(meta.Region, meta.ID) {
			continue
		}
		runs, err := ds.RackRuns(meta.Region, meta.ID)
		if err != nil {
			return err
		}
		sw, err := w.Begin(meta)
		if err != nil {
			return err
		}
		for i := range runs {
			if err := sw.Run(runs[i]); err != nil {
				return err
			}
		}
		if err := sw.Commit(meta); err != nil {
			return err
		}
	}
	return w.Finalize()
}
