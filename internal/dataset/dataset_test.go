package dataset

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fleet"
)

// tinyConfig keeps generation fast enough to run several times per test
// binary while exercising both regions, multiple racks, and multiple hours.
func tinyConfig() fleet.Config {
	c := fleet.SmallConfig()
	c.RacksPerRegion = 3
	c.ServersPerRack = 12
	c.Hours = []int{2, 6}
	c.Buckets = 200
	c.Workers = 2
	return c
}

// tinyLegacy generates the tiny dataset in memory exactly once; tests
// compare the sharded pipeline against it.
var (
	tinyOnce sync.Once
	tinyDS   *fleet.Dataset
	tinyErr  error
)

func legacyTiny(t *testing.T) *fleet.Dataset {
	t.Helper()
	tinyOnce.Do(func() { tinyDS, tinyErr = fleet.Generate(tinyConfig()) })
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyDS
}

func digestOf(t *testing.T, ds *fleet.Dataset) string {
	t.Helper()
	d, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateDirMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := filepath.Join(t.TempDir(), "ds")
	r, err := GenerateDir(context.Background(), dir, tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete() {
		t.Fatal("generated dataset not complete")
	}
	ds, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	want := legacyTiny(t)
	if got, wantD := digestOf(t, ds), digestOf(t, want); got != wantD {
		t.Errorf("sharded dataset digest %s != legacy in-memory digest %s", got, wantD)
	}
	if done, total := r.Progress(); done != total || total != 2*tinyConfig().RacksPerRegion {
		t.Errorf("progress %d/%d, want %d complete shards", done, total, 2*tinyConfig().RacksPerRegion)
	}
}

// interruptAfter aborts a generation after n shards commit, simulating a
// kill mid-run (with one additional shard left dangling as a temp file, the
// worst on-disk state a kill can leave).
type interruptErr struct{ error }

func TestInterruptedResumeIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	cfg := tinyConfig()
	dir := filepath.Join(t.TempDir(), "ds")

	// Phase 1: "crash" after two shards are committed.
	w, err := Create(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	committed := 0
	stop := errors.New("simulated kill")
	err = fleet.GenerateStream(context.Background(), cfg, fleet.StreamOpts{
		Skip: w.Done,
		Begin: func(meta fleet.RackMeta) (fleet.RackSink, error) {
			mu.Lock()
			defer mu.Unlock()
			if committed >= 2 {
				return nil, interruptErr{stop}
			}
			committed++
			return w.Begin(meta)
		},
	})
	if err == nil || !errors.As(err, &interruptErr{}) {
		t.Fatalf("simulated interrupt did not surface: %v", err)
	}
	// Leave a partial shard temp file behind, as a kill mid-write would.
	if f, err := os.CreateTemp(dir, ".tmp-shard-"); err == nil {
		f.WriteString("partial garbage")
		f.Close()
	}
	rdr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rdr.Complete() {
		t.Fatal("interrupted dataset claims to be complete")
	}
	if _, err := rdr.Dataset(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("reading an incomplete dataset: err = %v, want ErrIncomplete", err)
	}
	done, total := rdr.Progress()
	if done != 2 || total != 2*cfg.RacksPerRegion {
		t.Fatalf("progress after interrupt = %d/%d, want 2/%d", done, total, 2*cfg.RacksPerRegion)
	}

	// Phase 2: resume with the same flags. Completed shards must be skipped
	// (counted via fresh progress events), the temp file swept, and the
	// final digest must equal an uninterrupted run's.
	var regenerated int
	r, err := GenerateDir(context.Background(), dir, cfg, func(Progress) { regenerated++ })
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*cfg.RacksPerRegion - 2; regenerated != want {
		t.Errorf("resume regenerated %d shards, want %d (2 were already complete)", regenerated, want)
	}
	ds, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, ds), digestOf(t, legacyTiny(t)); got != want {
		t.Errorf("resumed dataset digest %s != uninterrupted digest %s", got, want)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(matches) != 0 {
		t.Errorf("temp files survived resume: %v", matches)
	}
}

func TestResumeRefusesMismatchedConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	cfg := tinyConfig()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}

	seed := cfg
	seed.Seed = cfg.Seed + 1
	if _, err := Create(dir, seed); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("different seed: err = %v, want ErrConfigMismatch", err)
	}
	buckets := cfg
	buckets.Buckets = cfg.Buckets * 2
	if _, err := Create(dir, buckets); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("different buckets: err = %v, want ErrConfigMismatch", err)
	}
	// Workers is scheduling-only and must not block a resume on a machine
	// with a different core count.
	workers := cfg
	workers.Workers = cfg.Workers + 7
	if _, err := Create(dir, workers); err != nil {
		t.Errorf("different workers blocked resume: %v", err)
	}
	// Fidelity changes the engine, so mixing hybrid shards into a
	// full-fidelity dataset (or vice versa) must be refused: the manifest
	// records the fidelity and the commit path compares it.
	hybrid := cfg
	hybrid.Fidelity = fleet.FidelityHybrid
	if _, err := Create(dir, hybrid); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("hybrid resume of full dataset: err = %v, want ErrConfigMismatch", err)
	}
	// Spelling full explicitly must stay equivalent to the legacy zero value.
	full := cfg
	full.Fidelity = fleet.FidelityFull
	if _, err := Create(dir, full); err != nil {
		t.Errorf("explicit full fidelity blocked resume: %v", err)
	}
	// HostStack changes what shards carry, so a mixed-knob resume must be
	// refused — and the message must name the knob so the operator knows
	// which flag to flip.
	hs := cfg
	hs.HostStack = true
	_, err := Create(dir, hs)
	if !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("hoststack resume of plain dataset: err = %v, want ErrConfigMismatch", err)
	} else if !strings.Contains(err.Error(), "hoststack") {
		t.Errorf("mismatch message does not name the hoststack knob: %v", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	ds := legacyTiny(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, ds); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, back), digestOf(t, ds); got != want {
		t.Errorf("round-tripped digest %s != original %s", got, want)
	}

	// Streaming accessors agree with the materialized view.
	var streamed int
	skipped, err := r.EachRun(func(run *fleet.RunSummary, c fleet.Class) error {
		streamed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || streamed != len(ds.Runs) {
		t.Errorf("EachRun streamed %d (skipped %d), want %d", streamed, skipped, len(ds.Runs))
	}
	runs, err := r.RackRuns(fleet.RegA, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns, _ := ds.RackRuns(fleet.RegA, 0)
	if len(runs) != len(wantRuns) {
		t.Errorf("RackRuns returned %d runs, want %d", len(runs), len(wantRuns))
	}
}

func TestCorruptShardIsRegenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	cfg := tinyConfig()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in one shard.
	path := filepath.Join(dir, shardFileName(fleet.RegB, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The reader must refuse the damaged shard.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RackRuns(fleet.RegB, 1); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("reading corrupt shard: err = %v, want ErrCorruptShard", err)
	}
	// Resume demotes it and regenerates only that shard.
	var regenerated []string
	rr, err := GenerateDir(context.Background(), dir, cfg, func(p Progress) {
		regenerated = append(regenerated, fmt.Sprintf("%s/%d", p.Region, p.ID))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(regenerated) != 1 || regenerated[0] != fmt.Sprintf("%s/1", fleet.RegB) {
		t.Errorf("regenerated %v, want exactly [RegB/1]", regenerated)
	}
	ds, err := rr.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, ds), digestOf(t, legacyTiny(t)); got != want {
		t.Errorf("repaired dataset digest %s != clean digest %s", got, want)
	}
}

func TestEachRunCountsMissingMetadata(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	// Degrade the manifest: drop one rack from the metadata, as a partially
	// written or hand-damaged dataset would.
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dropped int
	for i := range man.Racks {
		if man.Racks[i].Region == fleet.RegA && man.Racks[i].ID == 0 {
			man.Racks = append(man.Racks[:i], man.Racks[i+1:]...)
			break
		}
	}
	for i := range man.Shards {
		if man.Shards[i].Region == fleet.RegA && man.Shards[i].ID == 0 {
			dropped = man.Shards[i].Runs
		}
	}
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	skipped, err := r.EachRun(func(*fleet.RunSummary, fleet.Class) error { streamed++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || skipped != dropped {
		t.Errorf("skipped %d runs, want %d (the dropped rack's)", skipped, dropped)
	}
	if streamed+skipped != len(legacyTiny(t).Runs) {
		t.Errorf("streamed %d + skipped %d != total %d", streamed, skipped, len(legacyTiny(t).Runs))
	}
}

// TestTruncatedShardIsCorrupt covers a crash or partial copy that cut a
// shard file mid-gzip-stream: the reader must surface ErrCorruptShard, not
// silently deliver a prefix of the rack's runs, and a resume must repair it.
func TestTruncatedShardIsCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	cfg := tinyConfig()
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(fleet.RegA, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-stream — past the gzip header so decoding starts fine and the
	// damage only shows while streaming runs.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RackRuns(fleet.RegA, 1); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("reading truncated shard: err = %v, want ErrCorruptShard", err)
	}
	if _, err := r.Dataset(); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("materializing with truncated shard: err = %v, want ErrCorruptShard", err)
	}
	// Other shards stay readable: the damage is contained.
	if _, err := r.RackRuns(fleet.RegA, 0); err != nil {
		t.Errorf("healthy shard unreadable after sibling truncation: %v", err)
	}
	// Resume regenerates exactly the truncated shard, back to byte identity.
	rr, err := GenerateDir(context.Background(), dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rr.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, ds), digestOf(t, legacyTiny(t)); got != want {
		t.Errorf("repaired dataset digest %s != clean digest %s", got, want)
	}
}

// TestZeroLengthShardIsCorrupt covers the classic crash artifact — an empty
// file where a shard should be (created but never written, or lost to a
// non-durable rename). Zero bytes is not even a gzip header, and the reader
// must classify it as corruption rather than an I/O oddity.
func TestZeroLengthShardIsCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(fleet.RegB, 0))
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RackRuns(fleet.RegB, 0); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("reading zero-length shard: err = %v, want ErrCorruptShard", err)
	}
	if _, err := r.EachRun(func(*fleet.RunSummary, fleet.Class) error { return nil }); !errors.Is(err, ErrCorruptShard) {
		t.Errorf("EachRun over zero-length shard: err = %v, want ErrCorruptShard", err)
	}
}

// TestMissingShardFileErrors pins the non-corruption failure: a shard file
// deleted out from under a complete manifest is an I/O error, not
// ErrCorruptShard — the distinction routes "regenerate" vs "look at your
// filesystem" messaging in the tools.
func TestMissingShardFileErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := Write(dir, legacyTiny(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, shardFileName(fleet.RegA, 0))); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RackRuns(fleet.RegA, 0)
	if err == nil {
		t.Fatal("reading missing shard succeeded")
	}
	if errors.Is(err, ErrCorruptShard) {
		t.Errorf("missing file reported as corruption: %v", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file error %v does not wrap os.ErrNotExist", err)
	}
}
