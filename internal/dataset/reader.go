package dataset

import (
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fleet"
)

// Reader streams a sharded dataset. It satisfies the same source interface
// as an in-memory *fleet.Dataset (Config / RackMetas / EachRun / RackRuns),
// but reads one shard at a time, so peak memory is one rack's runs rather
// than the fleet's.
//
// A Reader is immutable after Open, so one instance may be shared by any
// number of concurrent shard walks — the query service serves every client
// of a dataset from a single cached Reader. Each walk opens its own file
// handles; no state is shared between walks.
type Reader struct {
	dir string
	man *Manifest

	classes map[string]fleet.Class
}

// Open reads the manifest of a dataset directory. The reader is returned
// even when the generation is incomplete — Complete and Progress report the
// state — but the data accessors refuse with ErrIncomplete until the
// generation has been resumed to the end.
func Open(dir string) (*Reader, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir, man: man, classes: make(map[string]fleet.Class, len(man.Racks))}
	for i := range man.Racks {
		r.classes[shardKey(man.Racks[i].Region, man.Racks[i].ID)] = man.Racks[i].Class
	}
	return r, nil
}

// Complete reports whether generation (including Finalize) has finished.
func (r *Reader) Complete() bool { return r.man.Complete }

// Progress returns completed and total shard counts.
func (r *Reader) Progress() (done, total int) {
	for i := range r.man.Shards {
		if r.man.Shards[i].Complete {
			done++
		}
	}
	return done, len(r.man.Shards)
}

// Shards exposes the manifest's shard table (for inspection tools).
func (r *Reader) Shards() []ShardEntry { return r.man.Shards }

// Config returns the dataset's normalized generation config (Workers is 0;
// it never affects results).
func (r *Reader) Config() fleet.Config { return r.man.Config }

// StoreDigest returns the dataset's store-level fingerprint: a sha256 over
// the per-shard content digests in manifest (generation) order. Because the
// shard digests cover the exact file bytes, two directories fingerprint
// identically iff every shard is byte-identical — the same property the
// canonical fleet.Dataset.Digest has, but computable from the manifest alone
// without decoding a single run. The query service keys render caches and
// ETags on it. It errors on an incomplete dataset: shards still pending have
// no digest to fingerprint.
func (r *Reader) StoreDigest() (string, error) {
	if !r.man.Complete {
		return "", r.incompleteErr()
	}
	h := sha256.New()
	for i := range r.man.Shards {
		s := &r.man.Shards[i]
		fmt.Fprintf(h, "%s/%d:%s\n", s.Region, s.ID, s.Digest)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RackMetas returns the classified per-rack metadata.
func (r *Reader) RackMetas() []fleet.RackMeta { return r.man.Racks }

// EachRun streams every run with its rack's measured class, shard by shard
// in manifest (generation) order. Each shard is digest-verified as it is
// read. Runs whose rack is missing from the metadata are not delivered;
// their count is returned. The *RunSummary is only valid for the duration
// of the callback — copy it to retain it.
func (r *Reader) EachRun(fn func(run *fleet.RunSummary, c fleet.Class) error) (skipped int, err error) {
	return r.EachRunCtx(context.Background(), fn)
}

// EachRunCtx is EachRun with cancellation threaded into the shard walk: the
// context is checked before every shard and every delivered run, so a
// cancelled request (a query-service client going away, a deadline firing)
// abandons the walk within one run's decode rather than reading the whole
// dataset to the end. The walk's error is ctx.Err() in that case.
func (r *Reader) EachRunCtx(ctx context.Context, fn func(run *fleet.RunSummary, c fleet.Class) error) (skipped int, err error) {
	if !r.man.Complete {
		return 0, r.incompleteErr()
	}
	for i := range r.man.Shards {
		if err := ctx.Err(); err != nil {
			return skipped, err
		}
		entry := &r.man.Shards[i]
		class, ok := r.classes[shardKey(entry.Region, entry.ID)]
		if !ok {
			// Degraded metadata: the rack's runs cannot be classified.
			// Count them as skipped rather than misclassifying.
			skipped += entry.Runs
			continue
		}
		err := r.readShard(entry, func(run *fleet.RunSummary) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return fn(run, class)
		})
		if err != nil {
			return skipped, err
		}
	}
	return skipped, nil
}

// RackRuns reads one rack's runs (a single shard).
func (r *Reader) RackRuns(region string, id int) ([]fleet.RunSummary, error) {
	if !r.man.Complete {
		return nil, r.incompleteErr()
	}
	for i := range r.man.Shards {
		entry := &r.man.Shards[i]
		if entry.Region != region || entry.ID != id {
			continue
		}
		var runs []fleet.RunSummary
		err := r.readShard(entry, func(run *fleet.RunSummary) error {
			runs = append(runs, *run)
			return nil
		})
		return runs, err
	}
	return nil, fmt.Errorf("dataset: no rack %s/%d in %s", region, id, r.dir)
}

// Dataset materializes the whole dataset in memory, in generation order —
// the bridge to code that needs the legacy *fleet.Dataset (digest checks,
// small-preset tools). Avoid it for paper-scale datasets.
func (r *Reader) Dataset() (*fleet.Dataset, error) {
	if !r.man.Complete {
		return nil, r.incompleteErr()
	}
	ds := &fleet.Dataset{Cfg: r.man.Config, Racks: r.man.Racks}
	for i := range r.man.Shards {
		err := r.readShard(&r.man.Shards[i], func(run *fleet.RunSummary) error {
			ds.Runs = append(ds.Runs, *run)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}

func (r *Reader) incompleteErr() error {
	done, total := r.Progress()
	return fmt.Errorf("%w: %d of %d shards in %s; resume with cmd/fleetgen using the same flags",
		ErrIncomplete, done, total, r.dir)
}

// readShard decodes one shard, hashing the file as it streams and verifying
// the digest against the manifest before the caller's results are trusted…
// which they already were, run by run. The hash check happens at EOF; a
// mismatch fails the read even though callbacks already ran, so callers
// must treat an error as invalidating everything delivered.
func (r *Reader) readShard(entry *ShardEntry, fn func(*fleet.RunSummary) error) error {
	path := filepath.Join(r.dir, entry.File)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	zr, err := gzip.NewReader(io.TeeReader(f, h))
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorruptShard, path, err)
	}
	dec := gob.NewDecoder(zr)
	var hdr shardHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("%w: %s: bad header: %v", ErrCorruptShard, path, err)
	}
	if hdr.Region != entry.Region || hdr.ID != entry.ID {
		return fmt.Errorf("%w: %s holds rack %s/%d, manifest expects %s/%d",
			ErrCorruptShard, path, hdr.Region, hdr.ID, entry.Region, entry.ID)
	}
	for {
		var run fleet.RunSummary
		if err := dec.Decode(&run); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("%w: %s: %v", ErrCorruptShard, path, err)
		}
		if err := fn(&run); err != nil {
			return err
		}
	}
	// Drain the gzip trailer (checksum) and any trailing bytes so the whole
	// file contributes to the hash.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorruptShard, path, err)
	}
	if _, err := io.Copy(h, f); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != entry.Digest {
		return fmt.Errorf("%w: %s digests %s, manifest records %s", ErrCorruptShard, path, got, entry.Digest)
	}
	return nil
}
