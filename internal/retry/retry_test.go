package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelayScheduleMatchesShiftDoubling(t *testing.T) {
	// The harvest state machine froze goldens on Backoff << (n-1); the
	// shared policy must reproduce that schedule exactly.
	p := Policy{Base: 2 * time.Millisecond, Factor: 2, MaxAttempts: 8}
	for n := 1; n <= 8; n++ {
		want := 2 * time.Millisecond << uint(n-1)
		if got := p.Delay(n, nil); got != want {
			t.Errorf("Delay(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestDelayCap(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Factor: 2, Max: 350 * time.Millisecond}
	want := []time.Duration{100, 200, 350, 350, 350}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterShavesNeverExtends(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5}
	// rnd pinned at its extremes: 0 keeps the full delay, ~1 shaves half.
	if got := p.Delay(1, func() float64 { return 0 }); got != 100*time.Millisecond {
		t.Errorf("jitter with rnd=0: %v, want full 100ms", got)
	}
	if got := p.Delay(1, func() float64 { return 1 }); got != 50*time.Millisecond {
		t.Errorf("jitter with rnd=1: %v, want 50ms", got)
	}
	if got := p.Delay(1, nil); got != 100*time.Millisecond {
		t.Errorf("nil rnd must disable jitter: %v", got)
	}
}

// fakeClock records requested sleeps without waiting.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.slept = append(c.slept, d)
	return ctx.Err()
}

func TestDoDeterministicSchedule(t *testing.T) {
	clk := &fakeClock{}
	p := Policy{MaxAttempts: 4, Base: 10 * time.Millisecond, Factor: 2}
	calls := 0
	err := Do(context.Background(), p, clk.sleep, nil, func(n int) error {
		calls++
		if n != calls {
			t.Errorf("attempt number %d, want %d", n, calls)
		}
		return errors.New("transient")
	})
	if err == nil || calls != 4 {
		t.Fatalf("err = %v after %d calls, want failure after 4", err, calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clk.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clk.slept, want)
	}
	for i := range want {
		if clk.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, clk.slept[i], want[i])
		}
	}
}

func TestDoStopsOnSuccessAndPermanent(t *testing.T) {
	clk := &fakeClock{}
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5}, clk.sleep, nil, func(n int) error {
		calls++
		if n < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("success path: err=%v calls=%d, want nil after 3", err, calls)
	}

	calls = 0
	sentinel := errors.New("bad request")
	err = Do(context.Background(), Policy{MaxAttempts: 5}, clk.sleep, nil, func(int) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("permanent path: err=%v calls=%d, want sentinel after 1", err, calls)
	}
	if !IsPermanent(err) {
		t.Error("permanent error lost its marker")
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 3}, nil, nil, func(int) error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("canceled ctx: err=%v calls=%d, want Canceled before any attempt", err, calls)
	}
}
