// Package retry holds the one retry/backoff schedule the repo's recovery
// paths share. The simulated harvest state machine (internal/core) and the
// distributed generation worker (internal/distrib) face the same problem —
// an RPC that may fail transiently, a peer that may be down, a deadline past
// which waiting costs more than giving up — and before this package each
// grew its own arithmetic. A Policy computes delays; Do drives a wall-clock
// retry loop around it. Callers that run on simulated time (the harvest)
// use Delay directly and schedule on their own engine.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes an exponential backoff schedule.
//
// The delay after attempt n (1-based) is Base·Factor^(n-1), capped at Max,
// then shrunk by up to Jitter·delay using the caller's random source —
// jitter pulls delays earlier, never later, so a deadline bound computed
// from the deterministic schedule stays valid.
type Policy struct {
	// MaxAttempts bounds how many times the operation runs (default 4).
	MaxAttempts int
	// Base is the delay after the first failed attempt (default 100 ms).
	Base time.Duration
	// Factor multiplies the delay each further attempt (default 2).
	Factor float64
	// Max caps a single delay; zero means uncapped.
	Max time.Duration
	// Jitter is the fraction of each delay randomly shaved off, in [0,1].
	// Zero keeps the schedule fully deterministic.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Factor <= 0 {
		p.Factor = 2
	}
	return p
}

// Delay returns the backoff after attempt n (1-based). rnd, used only when
// the policy has jitter, returns a value in [0,1); nil means no jitter.
// With Factor 2 and a power-of-two Base the result is exact, so callers that
// froze goldens on shift-based doubling (the harvest) see identical delays.
func (p Policy) Delay(n int, rnd func() float64) time.Duration {
	p = p.withDefaults()
	if n < 1 {
		n = 1
	}
	d := float64(p.Base)
	for i := 1; i < n; i++ {
		d *= p.Factor
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 && rnd != nil {
		d -= d * p.Jitter * rnd()
	}
	return time.Duration(d)
}

// Permanent marks err so Do stops retrying and returns it immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err was wrapped by Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Sleeper waits for d or until the context ends. Tests substitute a fake
// clock here to verify schedules without real waiting.
type Sleeper func(ctx context.Context, d time.Duration) error

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// p.MaxAttempts, or ctx ends. op receives the 1-based attempt number.
// sleep and rnd may be nil (real clock, no jitter).
func Do(ctx context.Context, p Policy, sleep Sleeper, rnd func() float64, op func(attempt int) error) error {
	p = p.withDefaults()
	if sleep == nil {
		sleep = defaultSleep
	}
	var last error
	for n := 1; n <= p.MaxAttempts; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = op(n)
		if last == nil {
			return nil
		}
		if IsPermanent(last) {
			return last
		}
		if n == p.MaxAttempts {
			break
		}
		if err := sleep(ctx, p.Delay(n, rnd)); err != nil {
			return err
		}
	}
	return fmt.Errorf("retry: %d attempts: %w", p.MaxAttempts, last)
}
