package distrib

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/sim"
)

// decodeShardRuns unpacks a worker's JSON-wrapped shard payload down to its
// run records so a test can look inside what the worker produced.
func decodeShardRuns(t *testing.T, payload []byte) []fleet.RunSummary {
	t.Helper()
	var sp dataset.ShardPayload
	if err := json.Unmarshal(payload, &sp); err != nil {
		t.Fatalf("unmarshal shard payload: %v", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(sp.Data))
	if err != nil {
		t.Fatalf("gunzip payload: %v", err)
	}
	dec := gob.NewDecoder(zr)
	var hdr struct {
		FormatVersion int
		Region        string
		ID            int
	}
	if err := dec.Decode(&hdr); err != nil {
		t.Fatalf("decode shard header: %v", err)
	}
	var runs []fleet.RunSummary
	for {
		var run fleet.RunSummary
		if err := dec.Decode(&run); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("decode run: %v", err)
		}
		runs = append(runs, run)
	}
	return runs
}

// TestWorkerHonorsHostStack pins the distributed contract for the host-stack
// knob: a shard unit's config carries HostStack over the wire, and a worker
// computing that unit produces runs with HostStackRec series attached —
// guarding against the knob being silently dropped in the protocol or in
// the worker's generation path. With the knob off the same unit's runs must
// carry no series, so an uninstrumented distributed generation stays
// byte-identical to a local one.
func TestWorkerHonorsHostStack(t *testing.T) {
	cfg := fleet.Config{
		Seed:           11,
		RacksPerRegion: 1,
		ServersPerRack: 8,
		Hours:          []int{6},
		Buckets:        150,
		Interval:       sim.Millisecond,
		HostStack:      true,
	}
	unit := &WorkUnit{
		ID:     "shard:RegA/0",
		Kind:   KindShard,
		Config: cfg,
		Region: fleet.RegA,
		RackID: 0,
	}
	w := &Worker{SimWorkers: 1}
	pOn, err := w.compute(context.Background(), unit)
	if err != nil {
		t.Fatalf("hoststack on: %v", err)
	}

	off := *unit
	off.Config.HostStack = false
	pOff, err := w.compute(context.Background(), &off)
	if err != nil {
		t.Fatalf("hoststack off: %v", err)
	}
	if bytes.Equal(pOn, pOff) {
		t.Error("instrumented and uninstrumented payloads identical — hoststack knob ignored")
	}

	instrumented := 0
	for _, run := range decodeShardRuns(t, pOn) {
		if run.Collected && run.HostStack != nil {
			instrumented++
			if run.HostStack.InSegs == 0 {
				t.Errorf("run %s/%d h%d: host-stack rec carries no ingress segments",
					run.Region, run.RackID, run.Hour)
			}
		}
	}
	if instrumented == 0 {
		t.Error("no collected run in the instrumented payload carries a HostStackRec")
	}
	for _, run := range decodeShardRuns(t, pOff) {
		if run.HostStack != nil {
			t.Errorf("run %s/%d h%d: uninstrumented payload carries a HostStackRec",
				run.Region, run.RackID, run.Hour)
		}
	}
}
