package distrib

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"repro/internal/fsutil"
	"repro/internal/httpserve"
)

// CoordinatorConfig tunes lease behavior. Results never depend on it.
type CoordinatorConfig struct {
	// LeaseTTL is the heartbeat budget: a lease not renewed within it is
	// expired and its unit requeued. Default 30s.
	LeaseTTL time.Duration
	// StragglerDeadline caps a single grant's total lifetime regardless of
	// heartbeats — the distributed mirror of the harvest state machine's
	// straggler window: a worker that renews forever but never finishes
	// eventually loses the unit to someone faster. Default 20×LeaseTTL.
	StragglerDeadline time.Duration
	// RetryAfter is what lease requests are told to wait when nothing is
	// leasable. Default LeaseTTL/4.
	RetryAfter time.Duration

	// now is the clock seam for deterministic expiry tests.
	now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.StragglerDeadline <= 0 {
		c.StragglerDeadline = 20 * c.LeaseTTL
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = c.LeaseTTL / 4
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// unit lifecycle states.
const (
	unitPending = iota
	unitLeased
	unitDone
)

type unitState struct {
	id        string
	state     int
	worker    string
	token     string
	grantedAt time.Time
	lastRenew time.Time
}

// Coordinator owns a job's durable state and leases its units to workers.
// It is transport-agnostic (Handler exposes it over HTTP); all methods are
// safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig

	mu          sync.Mutex
	job         Job
	jobReq      *JobRequest
	units       map[string]*unitState
	order       []string
	seq         int
	ledger      *Ledger
	draining    bool
	finalized   bool
	fingerprint string
	doneCh      chan struct{} // closed when the job finalizes
}

// NewCoordinator returns an idle coordinator; Submit attaches the job.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{cfg: cfg.withDefaults(), doneCh: make(chan struct{})}
}

// Submit attaches a job. Re-submitting an identical request is a no-op
// (idempotent — the client retries submissions like any other RPC); a
// different request while a job is loaded is refused.
func (c *Coordinator) Submit(req *JobRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.job != nil {
		if reflect.DeepEqual(c.jobReq, req) {
			return nil
		}
		return fmt.Errorf("distrib: coordinator is already running a %s job in %s", c.jobReq.Kind, c.jobReq.Dir)
	}
	job, err := NewJob(req)
	if err != nil {
		return err
	}
	return c.attachLocked(job, req)
}

// attachLocked wires a job into the lease table (the testable core of
// Submit).
func (c *Coordinator) attachLocked(job Job, req *JobRequest) error {
	c.job = job
	c.jobReq = req
	c.order = job.Units()
	c.units = make(map[string]*unitState, len(c.order))
	for _, id := range c.order {
		st := &unitState{id: id}
		if job.Done(id) {
			st.state = unitDone
		}
		c.units[st.id] = st
	}
	c.ledger = NewLedger(c.order)
	// A resumed directory may already be complete.
	return c.maybeFinalizeLocked()
}

// Ledger returns the job's delivery accounting (nil before Submit).
func (c *Coordinator) Ledger() *Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Done returns a channel closed when the job finalizes.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Drain stops granting new leases; in-flight units may still complete.
// This is the coordinator's SIGTERM path.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Lease grants the next ready pending unit. With nothing leasable it
// returns a retry hint; once every unit is committed it reports done.
func (c *Coordinator) Lease(worker string) (*LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	retry := &LeaseResponse{RetryAfterMs: c.cfg.RetryAfter.Milliseconds()}
	if c.job == nil {
		// Workers may start before the job is submitted; have them idle and
		// poll rather than die on a permanent error.
		return retry, nil
	}
	if c.finalized {
		return &LeaseResponse{Done: true}, nil
	}
	if c.draining {
		return retry, nil
	}
	c.expireLocked()
	for _, id := range c.order {
		st := c.units[id]
		if st.state != unitPending || !c.job.Ready(id) {
			continue
		}
		wu, err := c.job.Describe(id)
		if err != nil {
			return nil, err
		}
		c.seq++
		st.state = unitLeased
		st.worker = worker
		st.token = fmt.Sprintf("l-%d", c.seq)
		st.grantedAt = c.cfg.now()
		st.lastRenew = st.grantedAt
		c.ledger.lease(id)
		wu.LeaseTTLMs = c.cfg.LeaseTTL.Milliseconds()
		wu.Token = st.token
		return &LeaseResponse{Unit: wu}, nil
	}
	return retry, nil
}

// Renew extends a lease. OK=false means the caller no longer holds the unit
// (it expired, was reassigned, or already committed) and should abandon it.
func (c *Coordinator) Renew(worker, unitID, token string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	st, ok := c.units[unitID]
	if !ok || st.state != unitLeased || st.token != token {
		return false
	}
	st.lastRenew = c.cfg.now()
	return true
}

// Release returns an uncomputed unit to the queue — the graceful half of
// worker drain (the ungraceful half is lease expiry).
func (c *Coordinator) Release(worker, unitID, token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.units[unitID]
	if ok && st.state == unitLeased && st.token == token {
		st.state = unitPending
		st.worker, st.token = "", ""
	}
}

// Complete verifies and commits an upload. The declared sha256 is checked
// against the received bytes before anything is decoded; a mismatch — or a
// payload the job rejects structurally — quarantines the bytes and requeues
// the unit. Commits are accepted regardless of lease freshness for pending
// units: the job's idempotent commit, not the lease, is the exactly-once
// boundary.
func (c *Coordinator) Complete(req *CompleteRequest) (*CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.job == nil {
		return nil, fmt.Errorf("distrib: no job submitted")
	}
	st, ok := c.units[req.UnitID]
	if !ok {
		return nil, fmt.Errorf("distrib: unknown unit %q", req.UnitID)
	}
	if got := fsutil.SHA256(req.Payload); got != req.SHA256 {
		c.quarantineLocked(st, req, fmt.Sprintf("declared sha256 %s, payload hashes %s", req.SHA256, got))
		return &CompleteResponse{Status: StatusCorrupt}, nil
	}
	if st.state == unitDone {
		c.ledger.duplicate(st.id)
		return &CompleteResponse{Status: StatusDuplicate}, nil
	}
	installed, err := c.job.Commit(st.id, req.Payload)
	if err != nil {
		c.quarantineLocked(st, req, err.Error())
		return &CompleteResponse{Status: StatusCorrupt}, nil
	}
	st.state = unitDone
	st.worker, st.token = "", ""
	if installed {
		c.ledger.commit(st.id)
	} else {
		// The store already had it (coordinator resume raced the lease
		// table): a duplicate from the ledger's point of view.
		c.ledger.duplicate(st.id)
	}
	if err := c.maybeFinalizeLocked(); err != nil {
		return nil, err
	}
	return &CompleteResponse{Status: StatusOK}, nil
}

// quarantineLocked preserves a rejected upload for post-mortem and requeues
// the unit if this uploader held its lease.
func (c *Coordinator) quarantineLocked(st *unitState, req *CompleteRequest, reason string) {
	c.ledger.quarantine(st.id)
	qdir := filepath.Join(c.jobReq.Dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		c.seq++
		name := fmt.Sprintf("%s-%d.json", sanitize(st.id), c.seq)
		// Best effort: quarantine failing must not fail the protocol.
		_ = fsutil.WriteJSONAtomic(qdir, name, map[string]any{
			"unit":    st.id,
			"worker":  req.Worker,
			"reason":  reason,
			"sha256":  req.SHA256,
			"payload": req.Payload,
		})
	}
	if st.state == unitLeased && st.token == req.Token {
		st.state = unitPending
		st.worker, st.token = "", ""
	}
}

func sanitize(id string) string {
	out := []byte(id)
	for i, b := range out {
		if b == '/' || b == ':' {
			out[i] = '_'
		}
	}
	return string(out)
}

// ExpireStale reclaims leases whose heartbeat lapsed or whose grant outlived
// the straggler deadline, returning how many units were requeued. RunExpiry
// calls it periodically; tests call it directly against the clock seam.
func (c *Coordinator) ExpireStale() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expireLocked()
}

func (c *Coordinator) expireLocked() int {
	if c.units == nil {
		return 0
	}
	now := c.cfg.now()
	n := 0
	for _, id := range c.order {
		st := c.units[id]
		if st.state != unitLeased {
			continue
		}
		deadline := st.lastRenew.Add(c.cfg.LeaseTTL)
		if hard := st.grantedAt.Add(c.cfg.StragglerDeadline); hard.Before(deadline) {
			deadline = hard
		}
		if now.After(deadline) {
			st.state = unitPending
			st.worker, st.token = "", ""
			c.ledger.expire(id)
			n++
		}
	}
	return n
}

// RunExpiry drives the expiry scanner until ctx is cancelled or the job
// finalizes.
func (c *Coordinator) RunExpiry(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = c.cfg.withDefaults().LeaseTTL / 4
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.doneCh:
			return
		case <-t.C:
			c.ExpireStale()
		}
	}
}

// maybeFinalizeLocked seals the job once every unit is committed.
func (c *Coordinator) maybeFinalizeLocked() error {
	if c.finalized {
		return nil
	}
	for _, id := range c.order {
		if c.units[id].state != unitDone {
			return nil
		}
	}
	if err := c.job.Finalize(); err != nil {
		return err
	}
	fp, err := c.job.Fingerprint()
	if err != nil {
		return err
	}
	c.fingerprint = fp
	c.finalized = true
	close(c.doneCh)
	return nil
}

// Status snapshots progress.
func (c *Coordinator) Status() *StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &StatusResponse{Draining: c.draining}
	if c.job == nil {
		return st
	}
	st.HasJob = true
	st.Kind = c.job.Kind()
	st.Dir = c.jobReq.Dir
	st.Total = len(c.order)
	for _, id := range c.order {
		if c.units[id].state == unitDone {
			st.Done++
		}
	}
	st.Complete = c.finalized
	st.Fingerprint = c.fingerprint
	return st
}

// Handler exposes the coordinator's RPC surface. All endpoints are POST
// except /v1/status; bodies, responses, and error envelopes are JSON
// (internal/httpserve's shapes, shared with queryd).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/job", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if !httpserve.DecodeJSON(w, r, &req) {
			return
		}
		if err := c.Submit(&req); err != nil {
			httpserve.Error(w, http.StatusConflict, "%v", err)
			return
		}
		httpserve.WriteJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !httpserve.DecodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Lease(req.Worker)
		if err != nil {
			httpserve.Error(w, http.StatusConflict, "%v", err)
			return
		}
		httpserve.WriteJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !httpserve.DecodeJSON(w, r, &req) {
			return
		}
		httpserve.WriteJSON(w, &RenewResponse{OK: c.Renew(req.Worker, req.UnitID, req.Token)})
	})
	mux.HandleFunc("POST /v1/release", func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !httpserve.DecodeJSON(w, r, &req) {
			return
		}
		c.Release(req.Worker, req.UnitID, req.Token)
		httpserve.WriteJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !httpserve.DecodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Complete(&req)
		if err != nil {
			httpserve.Error(w, http.StatusConflict, "%v", err)
			return
		}
		httpserve.WriteJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		httpserve.WriteJSON(w, c.Status())
	})
	return mux
}
