package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/fleet"
	"repro/internal/switchsim"
)

// TestWorkUnitPolicyRoundTrip pins the wire encoding of the policy-zoo
// knobs: a shard unit carrying a BShare/ABM/ECN-off override must survive
// the JSON hop to a worker intact, including the named policy, the delay
// budget, and the ECNOff sentinel (whose -1 must not be confused with the
// omitted zero).
func TestWorkUnitPolicyRoundTrip(t *testing.T) {
	for _, o := range []fleet.SwitchOverride{
		{Policy: switchsim.PolicyBShare, BShareDelay: switchsim.DefaultBShareDelayTarget / 2},
		{Policy: switchsim.PolicyABM, Alpha: 4},
		{ECNThreshold: switchsim.ECNOff},
	} {
		cfg := tinyHybridConfig()
		cfg.Switch = o
		unit := &WorkUnit{ID: "shard:RegA/0", Kind: KindShard, Config: cfg, Region: fleet.RegA}
		b, err := json.Marshal(unit)
		if err != nil {
			t.Fatalf("%s: marshal: %v", o, err)
		}
		var back WorkUnit
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", o, err)
		}
		if back.Config.Switch != o {
			t.Errorf("override round trip: %+v != %+v", back.Config.Switch, o)
		}
	}
}

// TestWorkerForcesFullForUnmodeledPolicy mirrors fleet's forced-full
// contract across the distributed path: a hybrid-fidelity unit whose
// override the fluid model cannot represent must compute the identical
// payload a full-fidelity unit does.
func TestWorkerForcesFullForUnmodeledPolicy(t *testing.T) {
	unit := &WorkUnit{
		ID:     "shard:RegA/0",
		Kind:   KindShard,
		Config: tinyHybridConfig(),
		Region: fleet.RegA,
		RackID: 0,
	}
	unit.Config.Switch = fleet.SwitchOverride{Policy: switchsim.PolicyBShare}
	w := &Worker{SimWorkers: 2}
	ph, err := w.compute(context.Background(), unit)
	if err != nil {
		t.Fatalf("hybrid: %v", err)
	}
	full := *unit
	full.Config.Fidelity = fleet.FidelityFull
	pf, err := w.compute(context.Background(), &full)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if !bytes.Equal(ph, pf) {
		t.Error("bshare hybrid payload differs from full — forced-full dispatch lost on the worker path")
	}
	if len(ph) == 0 {
		t.Fatal("empty shard payload")
	}
}
