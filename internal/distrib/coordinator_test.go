package distrib

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/fsutil"
)

// tinyFleetConfig keeps real-simulation tests fast: 4 shards, one hour.
func tinyFleetConfig() fleet.Config {
	c := fleet.SmallConfig()
	c.RacksPerRegion = 2
	c.ServersPerRack = 12
	c.Hours = []int{6}
	c.Buckets = 200
	c.Workers = 2
	return c
}

// fakeJob is an in-memory Job so the lease state machine can be exercised
// without simulating anything.
type fakeJob struct {
	mu        sync.Mutex
	units     []string
	committed map[string]bool
	gated     map[string]bool // units not Ready until ungated
	reject    map[string]bool // units whose payloads fail structural commit
	finalized bool
}

func newFakeJob(units ...string) *fakeJob {
	return &fakeJob{
		units:     units,
		committed: map[string]bool{},
		gated:     map[string]bool{},
		reject:    map[string]bool{},
	}
}

func (j *fakeJob) Kind() string    { return "fake" }
func (j *fakeJob) Units() []string { return j.units }
func (j *fakeJob) Done(id string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.committed[id]
}
func (j *fakeJob) Ready(id string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.gated[id]
}
func (j *fakeJob) Describe(id string) (*WorkUnit, error) {
	return &WorkUnit{ID: id, Kind: "fake"}, nil
}
func (j *fakeJob) Commit(id string, payload []byte) (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.reject[id] {
		return false, errors.New("fake: structurally invalid payload")
	}
	if j.committed[id] {
		return false, nil
	}
	j.committed[id] = true
	return true, nil
}
func (j *fakeJob) Finalize() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finalized = true
	return nil
}
func (j *fakeJob) Fingerprint() (string, error) { return "fake-fingerprint", nil }

// fakeClock drives the coordinator's expiry logic deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCoordinator(t *testing.T, job Job, cfg CoordinatorConfig) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.now = clk.now
	c := NewCoordinator(cfg)
	c.mu.Lock()
	err := c.attachLocked(job, &JobRequest{Kind: "fake", Dir: t.TempDir()})
	c.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func mustLease(t *testing.T, c *Coordinator, worker string) *WorkUnit {
	t.Helper()
	resp, err := c.Lease(worker)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Unit == nil {
		t.Fatalf("worker %s got no unit (done=%v retry=%dms)", worker, resp.Done, resp.RetryAfterMs)
	}
	return resp.Unit
}

func completeUnit(t *testing.T, c *Coordinator, worker string, u *WorkUnit, payload []byte) string {
	t.Helper()
	resp, err := c.Complete(&CompleteRequest{
		Worker: worker, UnitID: u.ID, Token: u.Token,
		SHA256: fsutil.SHA256(payload), Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Status
}

func TestLeaseExpiryReassigns(t *testing.T) {
	job := newFakeJob("u1")
	c, clk := testCoordinator(t, job, CoordinatorConfig{LeaseTTL: time.Minute})

	u := mustLease(t, c, "w1")
	if c.ExpireStale() != 0 {
		t.Fatal("fresh lease expired")
	}
	// Heartbeats keep it alive past the bare TTL.
	clk.advance(40 * time.Second)
	if !c.Renew("w1", u.ID, u.Token) {
		t.Fatal("renew of a live lease refused")
	}
	clk.advance(40 * time.Second)
	if n := c.ExpireStale(); n != 0 {
		t.Fatalf("renewed lease expired (%d)", n)
	}
	// Silence past the TTL loses the unit.
	clk.advance(61 * time.Second)
	if n := c.ExpireStale(); n != 1 {
		t.Fatalf("stale lease not expired (%d)", n)
	}
	if c.Renew("w1", u.ID, u.Token) {
		t.Fatal("renew succeeded after expiry")
	}
	// The unit is leasable again; the old token can't release it.
	u2 := mustLease(t, c, "w2")
	if u2.ID != u.ID {
		t.Fatalf("reassigned unit %s, want %s", u2.ID, u.ID)
	}
	c.Release("w1", u.ID, u.Token)
	if got := c.Status().Done; got != 0 {
		t.Fatalf("stale release changed state (done=%d)", got)
	}
	e := c.Ledger().Entry(u.ID)
	if e.Leases != 2 || e.Expired != 1 {
		t.Fatalf("ledger %+v, want 2 leases / 1 expiry", e)
	}
}

func TestStragglerDeadlineCapsRenewals(t *testing.T) {
	job := newFakeJob("u1")
	c, clk := testCoordinator(t, job, CoordinatorConfig{
		LeaseTTL:          time.Minute,
		StragglerDeadline: 5 * time.Minute,
	})
	u := mustLease(t, c, "w1")
	// A worker that renews forever but never finishes still loses the unit
	// at the straggler deadline.
	for i := 0; i < 10; i++ {
		clk.advance(30 * time.Second)
		c.Renew("w1", u.ID, u.Token)
	}
	clk.advance(time.Second)
	if n := c.ExpireStale(); n != 1 {
		t.Fatalf("straggler survived the deadline (%d expired)", n)
	}
}

func TestCompleteIsExactlyOnce(t *testing.T) {
	job := newFakeJob("u1", "u2")
	c, _ := testCoordinator(t, job, CoordinatorConfig{})
	u1 := mustLease(t, c, "w1")
	payload := []byte(`{"v":1}`)

	if got := completeUnit(t, c, "w1", u1, payload); got != StatusOK {
		t.Fatalf("first complete = %s", got)
	}
	// Redelivery (dropped response, duplicated RPC) is a no-op.
	for i := 0; i < 3; i++ {
		if got := completeUnit(t, c, "w1", u1, payload); got != StatusDuplicate {
			t.Fatalf("redelivery %d = %s, want duplicate", i, got)
		}
	}
	// A different worker's answer for the committed unit is also a no-op —
	// stale leases can't double-commit.
	u1b := *u1
	u1b.Token = "stale-token"
	if got := completeUnit(t, c, "w2", &u1b, payload); got != StatusDuplicate {
		t.Fatalf("stale-lease redelivery = %s, want duplicate", got)
	}
	e := c.Ledger().Entry("u1")
	if e.Commits != 1 || e.Duplicates != 4 {
		t.Fatalf("ledger %+v, want 1 commit / 4 duplicates", e)
	}

	// Finishing the second unit finalizes the job exactly once.
	u2 := mustLease(t, c, "w2")
	completeUnit(t, c, "w2", u2, payload)
	select {
	case <-c.Done():
	default:
		t.Fatal("job did not finalize after the last commit")
	}
	st := c.Status()
	if !st.Complete || st.Fingerprint != "fake-fingerprint" {
		t.Fatalf("status %+v after finalize", st)
	}
	if err := c.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptUploadQuarantinesAndRequeues(t *testing.T) {
	job := newFakeJob("u1")
	c, _ := testCoordinator(t, job, CoordinatorConfig{})
	u := mustLease(t, c, "w1")

	// Digest mismatch: declared sha doesn't match the bytes.
	resp, err := c.Complete(&CompleteRequest{
		Worker: "w1", UnitID: u.ID, Token: u.Token,
		SHA256: strings.Repeat("0", 64), Payload: []byte(`{"v":1}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusCorrupt {
		t.Fatalf("digest mismatch = %s, want corrupt", resp.Status)
	}
	// The unit went back to pending and can be leased again.
	u2 := mustLease(t, c, "w2")
	if u2.ID != u.ID {
		t.Fatalf("requeued unit %s, want %s", u2.ID, u.ID)
	}

	// Structural rejection by the job is quarantined the same way.
	job.mu.Lock()
	job.reject["u1"] = true
	job.mu.Unlock()
	if got := completeUnit(t, c, "w2", u2, []byte(`{"v":"garbage"}`)); got != StatusCorrupt {
		t.Fatalf("structural rejection = %s, want corrupt", got)
	}
	e := c.Ledger().Entry("u1")
	if e.Quarantined != 2 || e.Commits != 0 {
		t.Fatalf("ledger %+v, want 2 quarantines / 0 commits", e)
	}
	if err := c.Ledger().Check(); err == nil {
		t.Fatal("ledger Check passed with zero commits")
	}
}

func TestBaselineGatingHoldsUnits(t *testing.T) {
	job := newFakeJob("u1", "u2", "u3")
	job.gated["u2"] = true
	job.gated["u3"] = true
	c, _ := testCoordinator(t, job, CoordinatorConfig{})

	u := mustLease(t, c, "w1")
	if u.ID != "u1" {
		t.Fatalf("leased %s ahead of the gate", u.ID)
	}
	resp, err := c.Lease("w2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Unit != nil {
		t.Fatalf("gated unit %s leaked through", resp.Unit.ID)
	}
	if resp.RetryAfterMs <= 0 {
		t.Fatal("held lease without a retry hint")
	}
	// Committing the gate-opener releases the rest.
	completeUnit(t, c, "w1", u, []byte(`{}`))
	job.mu.Lock()
	job.gated = map[string]bool{}
	job.mu.Unlock()
	if u2 := mustLease(t, c, "w2"); u2.ID != "u2" {
		t.Fatalf("post-gate lease = %s, want u2", u2.ID)
	}
}

func TestDrainStopsLeasingButAcceptsCommits(t *testing.T) {
	job := newFakeJob("u1", "u2")
	c, _ := testCoordinator(t, job, CoordinatorConfig{})
	u := mustLease(t, c, "w1")
	c.Drain()
	resp, err := c.Lease("w2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Unit != nil {
		t.Fatal("draining coordinator granted a lease")
	}
	// The in-flight unit still lands.
	if got := completeUnit(t, c, "w1", u, []byte(`{}`)); got != StatusOK {
		t.Fatalf("commit during drain = %s", got)
	}
}

func TestSubmitIsIdempotent(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	dir := t.TempDir()
	req := func() *JobRequest {
		cfg := tinyFleetConfig()
		return &JobRequest{Kind: KindShard, Dir: dir, Config: &cfg}
	}
	if err := c.Submit(req()); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(req()); err != nil {
		t.Fatalf("identical re-submit refused: %v", err)
	}
	other := req()
	other.Dir = t.TempDir()
	if err := c.Submit(other); err == nil {
		t.Fatal("different job accepted while one is running")
	}
	st := c.Status()
	if !st.HasJob || st.Kind != KindShard || st.Total == 0 {
		t.Fatalf("status %+v after submit", st)
	}
}
