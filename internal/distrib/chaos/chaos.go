// Package chaos is the fault-injection harness for distrib: a
// http.RoundTripper that drops, duplicates, delays, and corrupts RPCs
// between worker and coordinator, plus hooks that kill workers mid-unit.
// The integration tests use it to prove the exactly-once and byte-identity
// claims under sustained failure, deterministically (seeded PRNG, no real
// networks harmed).
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/distrib"
)

// ErrDropped is the transport error injected for dropped RPCs; the client's
// retry layer sees it exactly like a connection reset.
var ErrDropped = errors.New("chaos: rpc dropped")

// Config sets fault probabilities. All faults are decided by a PRNG seeded
// from Seed, so a failing run replays exactly.
type Config struct {
	Seed int64
	// DropRequest is the probability an RPC is dropped before reaching the
	// coordinator (the request never arrives).
	DropRequest float64
	// DropResponse is the probability an RPC executes but its response is
	// lost — the nasty case: the side effect happened, the caller retries,
	// and the coordinator must treat the redelivery as a duplicate.
	DropResponse float64
	// Duplicate is the probability an RPC is sent twice back-to-back (the
	// first response is discarded).
	Duplicate float64
	// MaxDelay, when positive, sleeps a uniform [0, MaxDelay) before each
	// attempt — enough scheduling noise to shake out ordering assumptions.
	MaxDelay time.Duration
	// CorruptFirstUpload flips one byte inside the first /v1/complete
	// payload that passes through, keeping the JSON framing and declared
	// sha256 intact — the coordinator must catch it by digest, quarantine
	// it, and requeue the unit.
	CorruptFirstUpload bool
}

// Transport injects Config's faults around a base RoundTripper.
type Transport struct {
	Base http.RoundTripper
	cfg  Config

	mu        sync.Mutex
	rnd       *rand.Rand
	corrupted bool

	// Counters, for test assertions that each fault actually fired.
	Dropped, Duplicated, Corrupted, Delayed int
}

// NewTransport wraps base (nil means http.DefaultTransport).
func NewTransport(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{Base: base, cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}
}

// roll draws one uniform float under the lock (rand.Rand is not
// goroutine-safe and workers share the transport).
func (t *Transport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rnd.Float64()
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body: faults may need to replay or rewrite it.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}

	if t.cfg.MaxDelay > 0 {
		d := time.Duration(t.roll() * float64(t.cfg.MaxDelay))
		t.mu.Lock()
		t.Delayed++
		t.mu.Unlock()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
	}

	if t.roll() < t.cfg.DropRequest {
		t.mu.Lock()
		t.Dropped++
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (request lost)", ErrDropped, req.URL.Path)
	}

	if t.cfg.CorruptFirstUpload && strings.HasSuffix(req.URL.Path, "/v1/complete") {
		if mutated, ok := t.corruptOnce(body); ok {
			body = mutated
		}
	}

	send := func() (*http.Response, error) {
		r2 := req.Clone(req.Context())
		if body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
		}
		return t.Base.RoundTrip(r2)
	}

	if t.roll() < t.cfg.Duplicate {
		t.mu.Lock()
		t.Duplicated++
		t.mu.Unlock()
		if res, err := send(); err == nil {
			// The first copy's response is lost; the caller only ever sees
			// the second delivery's.
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
		}
	}

	res, err := send()
	if err != nil {
		return nil, err
	}
	if t.roll() < t.cfg.DropResponse {
		t.mu.Lock()
		t.Dropped++
		t.mu.Unlock()
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return nil, fmt.Errorf("%w: %s (response lost)", ErrDropped, req.URL.Path)
	}
	return res, nil
}

// corruptOnce flips one payload byte inside a CompleteRequest body,
// structurally: the JSON is decoded, a byte of the (base64-carried) Payload
// is inverted, and the body re-encoded with the original declared SHA256 —
// so the framing survives and the corruption is only catchable by digest
// verification, the path under test.
func (t *Transport) corruptOnce(body []byte) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.corrupted {
		return nil, false
	}
	var req map[string]json.RawMessage
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, false
	}
	var payload []byte
	if err := json.Unmarshal(req["Payload"], &payload); err != nil || len(payload) == 0 {
		return nil, false
	}
	payload[len(payload)/2] ^= 0xff
	mutated, err := json.Marshal(payload)
	if err != nil {
		return nil, false
	}
	req["Payload"] = mutated
	out, err := json.Marshal(req)
	if err != nil {
		return nil, false
	}
	t.corrupted = true
	t.Corrupted++
	return out, true
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() (dropped, duplicated, corrupted, delayed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Dropped, t.Duplicated, t.Corrupted, t.Delayed
}

// KillAfter returns a Worker.BeforeUpload hook that lets a worker finish n
// units and then abandons the next one — no upload, no release, a lease
// left to die. It is how the in-process chaos test SIGKILLs a worker
// deterministically mid-unit.
func KillAfter(n int) func(*distrib.WorkUnit) error {
	var mu sync.Mutex
	done := 0
	return func(*distrib.WorkUnit) error {
		mu.Lock()
		defer mu.Unlock()
		if done >= n {
			return distrib.ErrAbandon
		}
		done++
		return nil
	}
}
