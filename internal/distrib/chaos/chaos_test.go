package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/distrib"
	"repro/internal/fleet"
	"repro/internal/retry"
	"repro/internal/sweep"
	"repro/internal/switchsim"
)

// tinyFleet keeps the chaos runs fast: 4 shards over one hour.
func tinyFleet() fleet.Config {
	c := fleet.SmallConfig()
	c.RacksPerRegion = 2
	c.ServersPerRack = 12
	c.Hours = []int{6}
	c.Buckets = 200
	c.Workers = 2
	return c
}

// chaosConfig is the standing fault mix: ≥10% of RPCs lost (split between
// request and response drops), duplicated deliveries, scheduling delay, and
// exactly one corrupted upload.
func chaosConfig(seed int64) Config {
	return Config{
		Seed:               seed,
		DropRequest:        0.07,
		DropResponse:       0.05,
		Duplicate:          0.10,
		MaxDelay:           3 * time.Millisecond,
		CorruptFirstUpload: true,
	}
}

// workerRetry tolerates the drop rate without stretching the test.
func workerRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 10, Base: 5 * time.Millisecond, Factor: 2, Max: 80 * time.Millisecond, Jitter: 0.2}
}

// runChaosFleet drives a coordinator plus three workers — one of which is
// chaos-killed after killAfter units — until the job completes, and returns
// the coordinator for ledger assertions.
func runChaosFleet(t *testing.T, req *distrib.JobRequest, seed int64, killAfter int) *distrib.Coordinator {
	t.Helper()
	coord := distrib.NewCoordinator(distrib.CoordinatorConfig{
		LeaseTTL:          400 * time.Millisecond,
		StragglerDeadline: 30 * time.Second,
		RetryAfter:        25 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	go coord.RunExpiry(ctx, 50*time.Millisecond)

	submit := &distrib.Client{BaseURL: srv.URL, Worker: "submitter", Policy: workerRetry()}
	if err := submit.Submit(ctx, req); err != nil {
		t.Fatal(err)
	}

	tr := NewTransport(nil, chaosConfig(seed))
	hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	mkWorker := func(name string) *distrib.Worker {
		return &distrib.Worker{
			Client: &distrib.Client{
				BaseURL: srv.URL, Worker: name,
				HTTPClient: hc, Policy: workerRetry(),
			},
			SimWorkers: 1,
			Log:        t.Logf,
		}
	}

	// The victim runs alone first so it is guaranteed to be holding a lease
	// when it dies — with a shared pool, a racing peer could otherwise starve
	// it of units and the kill would never be exercised. It "SIGKILLs" after
	// killAfter successful uploads: the next unit is abandoned with no upload
	// and no release, so only lease expiry can recover it.
	victim := mkWorker("w-killed")
	victim.BeforeUpload = KillAfter(killAfter)
	if err := victim.Run(ctx); err != nil {
		t.Errorf("victim worker: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		w := mkWorker([]string{"w-a", "w-b"}[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	select {
	case <-coord.Done():
	default:
		t.Fatalf("workers exited but the job did not finalize: %+v", coord.Status())
	}
	if err := coord.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
	tot := coord.Ledger().Totals()
	t.Logf("ledger totals: %+v", tot)
	if tot.Expired == 0 {
		t.Error("no lease ever expired — the chaos kill was not exercised")
	}
	if tot.Quarantined == 0 {
		t.Error("no upload was quarantined — the corruption was not exercised")
	}
	dropped, duplicated, corrupted, _ := tr.Stats()
	t.Logf("chaos: %d dropped, %d duplicated, %d corrupted", dropped, duplicated, corrupted)
	if corrupted != 1 {
		t.Errorf("corrupted %d uploads, want exactly 1", corrupted)
	}
	return coord
}

// TestChaosDatasetByteIdentical is the tentpole claim: a dataset generated
// by a lossy, duplicating, corrupting, worker-killing distributed run is
// byte-identical to single-process generation.
func TestChaosDatasetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration is slow")
	}
	cfg := tinyFleet()

	goldenDir := filepath.Join(t.TempDir(), "golden")
	gr, err := dataset.GenerateDir(context.Background(), goldenDir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	goldenDS, err := gr.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	goldenDigest, err := goldenDS.Digest()
	if err != nil {
		t.Fatal(err)
	}

	distDir := filepath.Join(t.TempDir(), "dist")
	coord := runChaosFleet(t, &distrib.JobRequest{Kind: distrib.KindShard, Dir: distDir, Config: &cfg}, 20220, 1)

	dr, err := dataset.Open(distDir)
	if err != nil {
		t.Fatal(err)
	}
	distDS, err := dr.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	distDigest, err := distDS.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if distDigest != goldenDigest {
		t.Errorf("distributed dataset digest %s != single-process %s", distDigest, goldenDigest)
	}

	// Byte identity, not just semantic equality: every shard file hashes the
	// same on both sides.
	golden := map[string]string{}
	for _, s := range gr.Shards() {
		golden[s.File] = s.Digest
	}
	for _, s := range dr.Shards() {
		if golden[s.File] != s.Digest {
			t.Errorf("shard %s: distributed digest %s != golden %s", s.File, s.Digest, golden[s.File])
		}
	}

	// The corrupted upload was preserved for post-mortem.
	entries, err := os.ReadDir(filepath.Join(distDir, "quarantine"))
	if err != nil || len(entries) == 0 {
		t.Errorf("no quarantine files (err %v)", err)
	}
	if st := coord.Status(); !st.Complete || st.Fingerprint == "" {
		t.Errorf("status %+v after completion", st)
	}
}

// TestChaosSweepByteIdentical proves the same for sweep jobs, including the
// baseline-first gate: every counterfactual point's per-class tallies anchor
// on the classification computed by whichever worker landed point 0.
func TestChaosSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration is slow")
	}
	spec := sweep.Spec{
		Name:     "chaos",
		Fleet:    tinyFleet(),
		Policies: []switchsim.Policy{switchsim.PolicyComplete},
		Alphas:   []float64{1, 4},
	}

	goldenDir := filepath.Join(t.TempDir(), "golden")
	gres, err := sweep.Run(context.Background(), goldenDir, spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	distDir := filepath.Join(t.TempDir(), "dist")
	runChaosFleet(t, &distrib.JobRequest{Kind: distrib.KindPoint, Dir: distDir, Spec: &spec}, 41, 0)

	dres, err := sweep.Open(distDir)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Manifest.ResultDigest != gres.Manifest.ResultDigest {
		t.Errorf("distributed sweep digest %s != single-process %s",
			dres.Manifest.ResultDigest, gres.Manifest.ResultDigest)
	}
	for i := range gres.Manifest.Points {
		g, d := gres.Manifest.Points[i], dres.Manifest.Points[i]
		if g.Digest != d.Digest {
			t.Errorf("point %d (%s): distributed digest %s != golden %s", i, g.Label, d.Digest, g.Digest)
		}
	}
}

// TestWorkerDrainReleasesLease covers the graceful half of worker death:
// cancelling a worker's context mid-computation hands the unit back so a
// peer picks it up without waiting out the lease.
func TestWorkerDrainReleasesLease(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration is slow")
	}
	cfg := tinyFleet()
	coord := distrib.NewCoordinator(distrib.CoordinatorConfig{
		LeaseTTL: 10 * time.Minute, // only a Release can free a unit in test time
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	dir := t.TempDir()
	submit := &distrib.Client{BaseURL: srv.URL, Worker: "submitter"}
	if err := submit.Submit(context.Background(), &distrib.JobRequest{Kind: distrib.KindShard, Dir: dir, Config: &cfg}); err != nil {
		t.Fatal(err)
	}

	// The draining worker is cancelled the moment it starts uploading is too
	// late — cancel as soon as it leases, mid-computation.
	dctx, dcancel := context.WithCancel(context.Background())
	leased := make(chan struct{}, 8)
	drained := &distrib.Worker{
		Client: &distrib.Client{BaseURL: srv.URL, Worker: "drainee"},
		Log: func(format string, args ...any) {
			if len(args) > 0 && format == "leased %s (ttl %dms)" {
				leased <- struct{}{}
			}
		},
	}
	done := make(chan error, 1)
	go func() { done <- drained.Run(dctx) }()
	<-leased
	dcancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("drained worker returned %v, want context.Canceled", err)
	}

	// Every unit must still be obtainable by a healthy worker right away:
	// the drained unit was released, not leaked until TTL.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &distrib.Worker{Client: &distrib.Client{BaseURL: srv.URL, Worker: "healthy"}, SimWorkers: 2}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if st := coord.Status(); !st.Complete {
		t.Fatalf("job incomplete after healthy worker: %+v", st)
	}
	if err := coord.Ledger().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptOnceKeepsFraming pins the corruption injection itself: the
// mutated body still parses as a CompleteRequest and still declares the
// original digest — only the payload bytes moved.
func TestCorruptOnceKeepsFraming(t *testing.T) {
	tr := NewTransport(nil, Config{CorruptFirstUpload: true})
	orig := distrib.CompleteRequest{
		Worker: "w", UnitID: "shard:RegA/0", Token: "l-1",
		SHA256: "abc", Payload: []byte("hello shard bytes"),
	}
	body, err := json.Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	mutated, ok := tr.corruptOnce(body)
	if !ok {
		t.Fatal("corruptOnce declined")
	}
	var got distrib.CompleteRequest
	if err := json.Unmarshal(mutated, &got); err != nil {
		t.Fatalf("mutated body no longer parses: %v", err)
	}
	if got.SHA256 != orig.SHA256 || got.UnitID != orig.UnitID {
		t.Error("corruption touched more than the payload")
	}
	if string(got.Payload) == string(orig.Payload) {
		t.Error("payload unchanged")
	}
	if _, ok := tr.corruptOnce(body); ok {
		t.Error("corruptOnce fired twice")
	}
}
