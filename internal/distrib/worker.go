package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/fsutil"
	"repro/internal/sweep"
)

// ErrAbandon is returned by a chaos kill hook: the worker abandons the
// unit with no upload and no release, exactly what a SIGKILL looks like to
// the coordinator — a lease that silently stops heartbeating.
var ErrAbandon = errors.New("distrib: unit abandoned")

// Worker pulls units from a coordinator, computes them, and uploads the
// results. It holds no durable state: everything it produces is re-derivable
// and everything it uploads is verified, so killing a worker at any moment
// costs only time.
type Worker struct {
	Client *Client
	// SimWorkers is the per-unit simulation parallelism (fleet.Config.Workers
	// while computing). Zero means the config's default.
	SimWorkers int
	// Log, if non-nil, receives progress lines.
	Log func(format string, args ...any)

	// BeforeUpload is the chaos seam, called with each computed unit before
	// its upload. Returning ErrAbandon drops the unit on the floor
	// (simulated SIGKILL); any other error is fatal to the worker.
	BeforeUpload func(unit *WorkUnit) error
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// Run leases, computes, and uploads units until the coordinator reports the
// job done or ctx is cancelled. Cancellation is the graceful drain: the
// in-flight computation aborts between rack-hours, the lease is released so
// the coordinator requeues immediately instead of waiting for expiry, and
// Run returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.Client.Lease(ctx)
		if err != nil {
			return err
		}
		if lease.Done {
			w.logf("job complete; exiting")
			return nil
		}
		if lease.Unit == nil {
			wait := time.Duration(lease.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = time.Second
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if err := w.runUnit(ctx, lease.Unit); err != nil {
			if errors.Is(err, ErrAbandon) {
				w.logf("abandoning %s (chaos kill)", lease.Unit.ID)
				return nil
			}
			return err
		}
	}
}

// runUnit computes and uploads one leased unit, heartbeating throughout.
func (w *Worker) runUnit(ctx context.Context, unit *WorkUnit) error {
	w.logf("leased %s (ttl %dms)", unit.ID, unit.LeaseTTLMs)

	// The compute context is cancelled by drain (parent) or by losing the
	// lease (heartbeat discovers the coordinator reassigned the unit —
	// finishing the computation would only waste cycles; correctness never
	// depended on it).
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(cctx, unit, cancel)
	}()

	payload, err := w.compute(cctx, unit)
	cancel(nil)
	<-hbDone
	if err != nil {
		if lost := context.Cause(cctx); lost != nil && errors.Is(err, context.Canceled) {
			if errors.Is(lost, errLeaseLost) {
				w.logf("lost lease on %s; abandoning computation", unit.ID)
				return nil
			}
			// Drain: hand the unit back so it requeues immediately. Use a
			// fresh short-lived context — ours is the one that was cancelled.
			rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer rcancel()
			if rerr := w.Client.Release(rctx, unit.ID, unit.Token); rerr != nil {
				w.logf("release of %s failed (lease will expire instead): %v", unit.ID, rerr)
			}
			return err
		}
		return fmt.Errorf("distrib: computing %s: %w", unit.ID, err)
	}

	if w.BeforeUpload != nil {
		if err := w.BeforeUpload(unit); err != nil {
			return err
		}
	}
	status, err := w.Client.Complete(ctx, unit.ID, unit.Token, payload, fsutil.SHA256(payload))
	if err != nil {
		return fmt.Errorf("distrib: uploading %s: %w", unit.ID, err)
	}
	switch status {
	case StatusOK:
		w.logf("committed %s (%d bytes)", unit.ID, len(payload))
	case StatusDuplicate:
		w.logf("%s was already committed elsewhere", unit.ID)
	case StatusCorrupt:
		// The coordinator rejected our bytes (corrupted in flight) and
		// requeued the unit; drop the local result — a later lease recomputes
		// it from scratch.
		w.logf("upload of %s arrived corrupt; unit requeued", unit.ID)
	default:
		return fmt.Errorf("distrib: upload of %s: unexpected status %q", unit.ID, status)
	}
	return nil
}

// errLeaseLost marks compute-context cancellation caused by lease loss
// rather than drain.
var errLeaseLost = errors.New("distrib: lease lost")

// heartbeat renews the lease at TTL/3 until the compute context ends; a
// failed renewal (lease reassigned) cancels the computation with
// errLeaseLost.
func (w *Worker) heartbeat(ctx context.Context, unit *WorkUnit, cancel context.CancelCauseFunc) {
	ttl := time.Duration(unit.LeaseTTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ok, err := w.Renew(ctx, unit)
			if err != nil {
				// Transient renewal failure past its retries: keep computing;
				// either a later beat lands or the lease expires and the
				// upload is judged by the idempotent commit like any other.
				w.logf("renew of %s failed: %v", unit.ID, err)
				continue
			}
			if !ok {
				cancel(errLeaseLost)
				return
			}
		}
	}
}

// Renew is a seam-thin wrapper so tests can observe heartbeats.
func (w *Worker) Renew(ctx context.Context, unit *WorkUnit) (bool, error) {
	return w.Client.Renew(ctx, unit.ID, unit.Token)
}

// compute produces the unit's payload bytes. Determinism in (unit) alone is
// what makes any two workers' answers interchangeable.
func (w *Worker) compute(ctx context.Context, unit *WorkUnit) ([]byte, error) {
	cfg := unit.Config
	if w.SimWorkers > 0 {
		cfg.Workers = w.SimWorkers
	}
	switch unit.Kind {
	case KindShard:
		sp, err := dataset.EncodeShard(ctx, cfg, unit.Region, unit.RackID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(sp)
	case KindPoint:
		if unit.Point == nil {
			return nil, fmt.Errorf("distrib: point unit %s has no point", unit.ID)
		}
		workers := cfg.Workers
		if workers <= 0 {
			workers = cfg.WithDefaults().Workers
		}
		pr, classes, err := sweep.ComputePoint(ctx, cfg, *unit.Point, workers, unit.Classes)
		if err != nil {
			return nil, err
		}
		return json.Marshal(&PointPayload{Result: pr, Classes: classes})
	default:
		return nil, fmt.Errorf("distrib: unknown unit kind %q", unit.Kind)
	}
}
