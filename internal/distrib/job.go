package distrib

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/sweep"
)

// Job abstracts the coordinator over what is being distributed. Both
// implementations delegate durable state to the existing resumable stores
// (dataset.Writer, sweep.Store), which is what makes a coordinator restart —
// or a switch back to single-process generation — seamless: the on-disk
// format is identical.
//
// Commit must be idempotent: applying a payload for an already-committed
// unit returns installed=false and mutates nothing. That single property is
// what turns at-least-once delivery into an exactly-once result.
type Job interface {
	// Kind is KindShard or KindPoint.
	Kind() string
	// Units lists every unit ID in preferred execution order.
	Units() []string
	// Done reports whether a unit is already committed (resume support: a
	// coordinator restarted over a half-finished directory re-leases only
	// the remainder).
	Done(id string) bool
	// Ready reports whether a unit may be leased now. Sweeps gate every
	// non-baseline point on the baseline's classification being committed.
	Ready(id string) bool
	// Describe builds the self-contained WorkUnit a worker computes from.
	Describe(id string) (*WorkUnit, error)
	// Commit decodes and applies a digest-verified payload. A structurally
	// invalid payload returns an error (the caller quarantines and requeues);
	// an already-committed unit returns (false, nil).
	Commit(id string, payload []byte) (installed bool, err error)
	// Finalize seals the result once every unit is committed.
	Finalize() error
	// Fingerprint is the sealed result's one-line digest.
	Fingerprint() (string, error)
}

// NewJob opens (or resumes) the job a JobRequest describes, rooted at
// req.Dir on the local filesystem.
func NewJob(req *JobRequest) (Job, error) {
	switch req.Kind {
	case KindShard:
		if req.Config == nil {
			return nil, fmt.Errorf("distrib: dataset job needs a config")
		}
		w, err := dataset.Create(req.Dir, *req.Config)
		if err != nil {
			return nil, err
		}
		return &datasetJob{w: w}, nil
	case KindPoint:
		if req.Spec == nil {
			return nil, fmt.Errorf("distrib: sweep job needs a spec")
		}
		st, err := sweep.Create(req.Dir, *req.Spec)
		if err != nil {
			return nil, err
		}
		base := req.Spec.Fleet.WithDefaults()
		base.Workers = 0
		return &sweepJob{st: st, base: base}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown job kind %q", req.Kind)
	}
}

// ---- dataset job ----

type datasetJob struct {
	w *dataset.Writer
}

func shardUnitID(region string, id int) string { return fmt.Sprintf("shard:%s/%d", region, id) }

func parseShardUnitID(unit string) (region string, id int, err error) {
	rest, ok := strings.CutPrefix(unit, "shard:")
	if !ok {
		return "", 0, fmt.Errorf("distrib: %q is not a shard unit", unit)
	}
	region, num, ok := strings.Cut(rest, "/")
	if !ok {
		return "", 0, fmt.Errorf("distrib: malformed shard unit %q", unit)
	}
	id, err = strconv.Atoi(num)
	if err != nil {
		return "", 0, fmt.Errorf("distrib: malformed shard unit %q", unit)
	}
	return region, id, nil
}

func (j *datasetJob) Kind() string { return KindShard }

func (j *datasetJob) Units() []string {
	shards := j.w.Shards()
	out := make([]string, len(shards))
	for i := range shards {
		out[i] = shardUnitID(shards[i].Region, shards[i].ID)
	}
	return out
}

func (j *datasetJob) Done(id string) bool {
	region, rack, err := parseShardUnitID(id)
	return err == nil && j.w.Done(region, rack)
}

// Ready: shards have no ordering constraints.
func (j *datasetJob) Ready(string) bool { return true }

func (j *datasetJob) Describe(id string) (*WorkUnit, error) {
	region, rack, err := parseShardUnitID(id)
	if err != nil {
		return nil, err
	}
	cfg := j.w.Config()
	return &WorkUnit{ID: id, Kind: KindShard, Config: cfg, Region: region, RackID: rack}, nil
}

func (j *datasetJob) Commit(id string, payload []byte) (bool, error) {
	region, rack, err := parseShardUnitID(id)
	if err != nil {
		return false, err
	}
	var p dataset.ShardPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return false, fmt.Errorf("distrib: shard payload for %s: %w", id, err)
	}
	if p.Region != region || p.ID != rack {
		return false, fmt.Errorf("distrib: payload for %s claims rack %s/%d", id, p.Region, p.ID)
	}
	return j.w.InstallShard(&p)
}

func (j *datasetJob) Finalize() error { return j.w.Finalize() }

// Fingerprint digests the shard digests in manifest order — cheap, and
// equal iff every shard's bytes are equal.
func (j *datasetJob) Fingerprint() (string, error) {
	h := sha256.New()
	for _, s := range j.w.Shards() {
		if !s.Complete {
			return "", fmt.Errorf("distrib: fingerprint of incomplete dataset")
		}
		fmt.Fprintf(h, "%s/%d:%s\n", s.Region, s.ID, s.Digest)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ---- sweep job ----

type sweepJob struct {
	st   *sweep.Store
	base fleet.Config
}

func pointUnitID(index int) string { return fmt.Sprintf("point:%d", index) }

func parsePointUnitID(unit string) (int, error) {
	rest, ok := strings.CutPrefix(unit, "point:")
	if !ok {
		return 0, fmt.Errorf("distrib: %q is not a point unit", unit)
	}
	idx, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("distrib: malformed point unit %q", unit)
	}
	return idx, nil
}

func (j *sweepJob) Kind() string { return KindPoint }

func (j *sweepJob) Units() []string {
	pts := j.st.Points()
	out := make([]string, len(pts))
	for i := range pts {
		out[i] = pointUnitID(pts[i].Index)
	}
	return out
}

func (j *sweepJob) Done(id string) bool {
	idx, err := parsePointUnitID(id)
	return err == nil && j.st.Done(idx)
}

// Ready gates every counterfactual on the committed baseline: point 0 is
// always leasable, the rest only once its classification anchors their
// per-class tallies.
func (j *sweepJob) Ready(id string) bool {
	idx, err := parsePointUnitID(id)
	if err != nil {
		return false
	}
	return idx == 0 || j.st.Classes() != nil
}

func (j *sweepJob) Describe(id string) (*WorkUnit, error) {
	idx, err := parsePointUnitID(id)
	if err != nil {
		return nil, err
	}
	pts := j.st.Points()
	if idx < 0 || idx >= len(pts) {
		return nil, fmt.Errorf("distrib: point %d not in sweep", idx)
	}
	pt := pts[idx].Point
	var classes map[string]string
	if idx != 0 {
		classes = j.st.Classes()
		if classes == nil {
			return nil, fmt.Errorf("distrib: point %d described before the baseline committed", idx)
		}
	}
	return &WorkUnit{ID: id, Kind: KindPoint, Config: j.base, Point: &pt, Classes: classes}, nil
}

func (j *sweepJob) Commit(id string, payload []byte) (bool, error) {
	idx, err := parsePointUnitID(id)
	if err != nil {
		return false, err
	}
	var p PointPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return false, fmt.Errorf("distrib: point payload for %s: %w", id, err)
	}
	if p.Result == nil || p.Result.Index != idx {
		return false, fmt.Errorf("distrib: payload for %s carries the wrong point", id)
	}
	if idx == 0 && p.Classes == nil {
		return false, fmt.Errorf("distrib: baseline payload without a classification")
	}
	if idx != 0 {
		// Only the baseline may set the sweep's classification.
		p.Classes = nil
	}
	return j.st.CommitPointIfNew(p.Result, p.Classes)
}

func (j *sweepJob) Finalize() error { return j.st.Finalize() }

func (j *sweepJob) Fingerprint() (string, error) {
	res, err := sweep.Open(j.st.Dir())
	if err != nil {
		return "", err
	}
	return res.Manifest.ResultDigest, nil
}
