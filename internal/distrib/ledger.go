package distrib

import (
	"fmt"
	"sort"
	"sync"
)

// LedgerEntry is one unit's delivery history. The chaos harness asserts over
// these: however many leases, expiries, duplicates, and quarantines a unit
// accumulates, it must end with exactly one commit.
type LedgerEntry struct {
	// Leases counts grants (initial plus post-expiry reassignments).
	Leases int
	// Expired counts leases reclaimed for missed heartbeats or blowing the
	// straggler deadline.
	Expired int
	// Commits counts uploads that mutated the result — the exactly-once
	// invariant is Commits == 1 for every unit of a finished job.
	Commits int
	// Duplicates counts verified uploads discarded because the unit was
	// already committed (redelivery, duplicated RPCs, stale leases).
	Duplicates int
	// Quarantined counts uploads rejected for digest or structural
	// corruption; each one requeued the unit.
	Quarantined int
}

// Ledger records per-unit delivery accounting. All methods are safe for
// concurrent use.
type Ledger struct {
	mu      sync.Mutex
	entries map[string]*LedgerEntry
}

// NewLedger returns a ledger pre-seeded with every unit at zero, so a unit
// that never even got leased still fails Check.
func NewLedger(unitIDs []string) *Ledger {
	l := &Ledger{entries: make(map[string]*LedgerEntry, len(unitIDs))}
	for _, id := range unitIDs {
		l.entries[id] = &LedgerEntry{}
	}
	return l
}

func (l *Ledger) bump(id string, f func(*LedgerEntry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		e = &LedgerEntry{}
		l.entries[id] = e
	}
	f(e)
}

func (l *Ledger) lease(id string)      { l.bump(id, func(e *LedgerEntry) { e.Leases++ }) }
func (l *Ledger) expire(id string)     { l.bump(id, func(e *LedgerEntry) { e.Expired++ }) }
func (l *Ledger) commit(id string)     { l.bump(id, func(e *LedgerEntry) { e.Commits++ }) }
func (l *Ledger) duplicate(id string)  { l.bump(id, func(e *LedgerEntry) { e.Duplicates++ }) }
func (l *Ledger) quarantine(id string) { l.bump(id, func(e *LedgerEntry) { e.Quarantined++ }) }

// Entry returns a copy of one unit's accounting.
func (l *Ledger) Entry(id string) LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[id]; ok {
		return *e
	}
	return LedgerEntry{}
}

// Totals sums the ledger across units.
func (l *Ledger) Totals() LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t LedgerEntry
	for _, e := range l.entries {
		t.Leases += e.Leases
		t.Expired += e.Expired
		t.Commits += e.Commits
		t.Duplicates += e.Duplicates
		t.Quarantined += e.Quarantined
	}
	return t
}

// Check asserts the exactly-once invariant: every unit committed exactly
// once. It reports all violations, sorted, so a chaos failure names the
// units it broke.
func (l *Ledger) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var bad []string
	for id, e := range l.entries {
		if e.Commits != 1 {
			bad = append(bad, fmt.Sprintf("%s committed %d times", id, e.Commits))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("distrib: exactly-once violated: %v", bad)
}
