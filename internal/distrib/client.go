package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/retry"
)

// Client is the worker-side (and submitter-side) RPC stub. Every call
// retries transient failures — connection errors, 5xx — with the shared
// backoff policy; 4xx responses are permanent (retrying a malformed request
// cannot help).
type Client struct {
	// BaseURL is the coordinator's root, e.g. "http://127.0.0.1:9009".
	BaseURL string
	// Worker identifies this client in lease/complete requests.
	Worker string
	// HTTPClient defaults to a fresh client; the chaos harness swaps in a
	// fault-injecting transport here.
	HTTPClient *http.Client
	// Policy is the RPC retry schedule. The zero value gets a default tuned
	// for a lossy-but-alive network (6 attempts, 100ms base, jittered).
	Policy retry.Policy
	// Sleep/Rnd are retry seams for deterministic tests.
	Sleep retry.Sleeper
	Rnd   func() float64
}

func (c *Client) policy() retry.Policy {
	p := c.Policy
	if p.MaxAttempts == 0 {
		p = retry.Policy{MaxAttempts: 6, Base: 100 * time.Millisecond, Factor: 2, Max: 2 * time.Second, Jitter: 0.2}
	}
	return p
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// call POSTs (or GETs, for empty method paths starting "GET ") one JSON
// request and decodes the response, retrying transient failures.
func (c *Client) call(ctx context.Context, path string, req, resp any) error {
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return retry.Permanent(fmt.Errorf("distrib: %w", err))
		}
	}
	return retry.Do(ctx, c.policy(), c.Sleep, c.Rnd, func(int) error {
		method := http.MethodPost
		url := strings.TrimRight(c.BaseURL, "/") + path
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		} else {
			method = http.MethodGet
		}
		hr, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		res, err := c.http().Do(hr)
		if err != nil {
			return err // transport failure: retry
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
			err := fmt.Errorf("distrib: %s: %s: %s", path, res.Status, strings.TrimSpace(string(msg)))
			if res.StatusCode >= 400 && res.StatusCode < 500 {
				return retry.Permanent(err)
			}
			return err
		}
		if resp == nil {
			io.Copy(io.Discard, res.Body)
			return nil
		}
		if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
			return fmt.Errorf("distrib: %s: decoding response: %w", path, err)
		}
		return nil
	})
}

// Submit attaches (or idempotently re-attaches) a job to the coordinator.
func (c *Client) Submit(ctx context.Context, req *JobRequest) error {
	return c.call(ctx, "/v1/job", req, nil)
}

// Lease asks for the next unit.
func (c *Client) Lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.call(ctx, "/v1/lease", &LeaseRequest{Worker: c.Worker}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Renew heartbeats a lease; ok=false means the lease was lost.
func (c *Client) Renew(ctx context.Context, unitID, token string) (bool, error) {
	var resp RenewResponse
	err := c.call(ctx, "/v1/renew", &RenewRequest{Worker: c.Worker, UnitID: unitID, Token: token}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Release hands an uncomputed unit back (graceful drain).
func (c *Client) Release(ctx context.Context, unitID, token string) error {
	return c.call(ctx, "/v1/release", &ReleaseRequest{Worker: c.Worker, UnitID: unitID, Token: token}, nil)
}

// Complete uploads a computed unit with its self-declared digest.
func (c *Client) Complete(ctx context.Context, unitID, token string, payload []byte, sha string) (string, error) {
	var resp CompleteResponse
	err := c.call(ctx, "/v1/complete", &CompleteRequest{
		Worker: c.Worker, UnitID: unitID, Token: token, SHA256: sha, Payload: payload,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Status, nil
}

// Status fetches the coordinator's progress snapshot.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	var resp StatusResponse
	if err := c.call(ctx, "/v1/status", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
