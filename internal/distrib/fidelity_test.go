package distrib

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// tinyHybridConfig is a one-rack hybrid-fidelity generation small enough for
// a unit test.
func tinyHybridConfig() fleet.Config {
	return fleet.Config{
		Seed:           7,
		RacksPerRegion: 1,
		ServersPerRack: 8,
		Hours:          []int{6},
		Buckets:        150,
		Interval:       sim.Millisecond,
		Fidelity:       fleet.FidelityHybrid,
	}
}

// TestWorkerHonorsFidelity pins the distributed contract for the fidelity
// knob: a shard unit carries the fidelity in its config, the worker computes
// it on the hybrid engine, and the payload is identical regardless of the
// worker's local simulation parallelism — so any two workers' answers stay
// interchangeable and a re-led shard commits byte-identically.
func TestWorkerHonorsFidelity(t *testing.T) {
	unit := &WorkUnit{
		ID:     "shard:RegA/0",
		Kind:   KindShard,
		Config: tinyHybridConfig(),
		Region: fleet.RegA,
		RackID: 0,
	}
	w1 := &Worker{SimWorkers: 1}
	w4 := &Worker{SimWorkers: 4}
	p1, err := w1.compute(context.Background(), unit)
	if err != nil {
		t.Fatalf("SimWorkers=1: %v", err)
	}
	p4, err := w4.compute(context.Background(), unit)
	if err != nil {
		t.Fatalf("SimWorkers=4: %v", err)
	}
	if !bytes.Equal(p1, p4) {
		t.Error("hybrid shard payload differs across worker parallelism")
	}
	if len(p1) == 0 {
		t.Fatal("empty shard payload")
	}

	// The same unit at full fidelity must produce a different dataset (the
	// engines are distributionally, not byte, equivalent) — guarding against
	// the knob being silently dropped on the wire or in the worker.
	full := *unit
	full.Config.Fidelity = fleet.FidelityFull
	pf, err := w1.compute(context.Background(), &full)
	if err != nil {
		t.Fatalf("full fidelity: %v", err)
	}
	if bytes.Equal(p1, pf) {
		t.Error("hybrid and full payloads identical — fidelity knob ignored")
	}
}
