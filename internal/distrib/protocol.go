// Package distrib implements fault-tolerant distributed generation: a
// coordinator that owns a resumable result directory (a sharded dataset or a
// sweep) and leases its work units — rack shards, grid points — to remote
// workers over HTTP/JSON, stdlib only.
//
// The design splits responsibility so that no worker failure can corrupt the
// result:
//
//   - Workers are stateless compute: every unit is deterministic in
//     (config, unit), produced by the same encoders as single-process
//     generation, so any worker's answer for a unit is byte-identical to any
//     other's.
//   - The coordinator owns all durable state, reusing the dataset/sweep
//     manifest machinery. Leases are time-bounded and heartbeat-renewed; a
//     silent worker's lease expires and the unit is reassigned. Uploads are
//     sha256-verified (corrupt ones are quarantined and the unit requeued)
//     and committed idempotently — the first valid upload wins, duplicates
//     and stale-lease redeliveries are no-ops.
//
// Exactly-once therefore does not depend on lease exclusivity (two workers
// may legitimately compute the same unit after an expiry); it rides entirely
// on the idempotent commit, which the per-unit ledger proves after the fact.
package distrib

import (
	"repro/internal/fleet"
	"repro/internal/sweep"
)

// Unit kinds.
const (
	KindShard = "shard" // one rack's dataset shard
	KindPoint = "point" // one sweep grid point
)

// Complete statuses returned to the uploading worker.
const (
	StatusOK        = "ok"        // payload verified and committed
	StatusDuplicate = "duplicate" // unit already committed; upload discarded
	StatusCorrupt   = "corrupt"   // digest or structure mismatch; quarantined, unit requeued
)

// JobRequest submits (or idempotently re-attaches to) a job. Dir is a path
// on the coordinator's filesystem; exactly one of Config/Spec is set,
// matching Kind.
type JobRequest struct {
	Kind   string
	Dir    string
	Config *fleet.Config `json:",omitempty"` // KindShard jobs (dataset generation)
	Spec   *sweep.Spec   `json:",omitempty"` // KindPoint jobs (sweeps)
}

// WorkUnit is one leased unit of work, self-contained: a worker computes it
// from this description alone.
type WorkUnit struct {
	// ID names the unit within the job ("shard:RegA/3", "point:5").
	ID   string
	Kind string
	// Config is the full generation config for shards, and the sweep's base
	// fleet config for points (Workers cleared — the worker picks its own).
	Config fleet.Config
	// Region/RackID identify a shard unit.
	Region string `json:",omitempty"`
	RackID int    `json:",omitempty"`
	// Point is the grid point for point units. Classes is the baseline
	// classification every non-baseline point aggregates by; it is nil
	// exactly for the baseline point (index 0), which computes it.
	Point   *sweep.Point      `json:",omitempty"`
	Classes map[string]string `json:",omitempty"`
	// LeaseTTLMs is the heartbeat budget: the worker must renew well inside
	// it (TTL/3 is the convention) or the coordinator reassigns the unit.
	LeaseTTLMs int64
	// Token authenticates renew/release for this grant. A commit with a stale
	// token is still accepted when the unit is pending — correctness comes
	// from the idempotent commit, not from token freshness.
	Token string
}

// LeaseRequest asks for a unit. Worker is a stable identifier (host:pid).
type LeaseRequest struct {
	Worker string
}

// LeaseResponse grants a unit, asks the worker to retry later, or reports
// the job finished.
type LeaseResponse struct {
	Unit *WorkUnit `json:",omitempty"`
	// RetryAfterMs is set when Unit is nil and Done is false: nothing is
	// leasable right now (units in flight, baseline gating, drain).
	RetryAfterMs int64
	// Done means every unit is committed; the worker can exit.
	Done bool
}

// RenewRequest extends a lease's heartbeat.
type RenewRequest struct {
	Worker string
	UnitID string
	Token  string
}

// RenewResponse reports whether the lease is still held. OK=false tells the
// worker it lost the unit (expiry/reassignment); it should abandon the
// computation.
type RenewResponse struct {
	OK bool
}

// ReleaseRequest returns an uncomputed unit to the queue (graceful drain).
type ReleaseRequest struct {
	Worker string
	UnitID string
	Token  string
}

// CompleteRequest uploads a computed unit. Payload is the JSON-encoded
// result (dataset.ShardPayload for shards, PointPayload for points); SHA256
// is the worker-computed hex digest of exactly those bytes, verified by the
// coordinator before the payload is even decoded.
type CompleteRequest struct {
	Worker string
	UnitID string
	Token  string
	SHA256 string
	Payload []byte
}

// CompleteResponse reports the commit outcome (StatusOK / StatusDuplicate /
// StatusCorrupt).
type CompleteResponse struct {
	Status string
}

// PointPayload is the upload body for a sweep point. Classes is non-nil
// exactly for the baseline point.
type PointPayload struct {
	Result  *sweep.PointResult
	Classes map[string]string `json:",omitempty"`
}

// StatusResponse is the coordinator's progress snapshot.
type StatusResponse struct {
	HasJob   bool
	Kind     string `json:",omitempty"`
	Dir      string `json:",omitempty"`
	Done     int
	Total    int
	Complete bool
	// Fingerprint is the job's result digest, set once Complete: the sha256
	// over shard digests for datasets, the sweep ResultDigest for sweeps.
	Fingerprint string `json:",omitempty"`
	Draining    bool
}
