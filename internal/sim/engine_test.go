package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at the same instant ran out of scheduling order: %v", order)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(Millisecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if at != Time(i)*Millisecond {
			t.Errorf("tick %d at %v, want %v", i, at, Time(i)*Millisecond)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestEngineCancelNil(t *testing.T) {
	e := NewEngine()
	e.Cancel(nil) // must not panic
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now() = %v, want 12 after RunUntil(12)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %v after second RunUntil, want all 4", fired)
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(5, func() { count++ })
	e.At(15, func() { count++ })
	e.RunFor(10)
	if count != 1 || e.Now() != 10 {
		t.Errorf("count=%d now=%v, want 1 and 10", count, e.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Halt() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (halted)", count)
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := Time(0); i < 100; i++ {
		e.At(i, func() {})
	}
	e.Run()
	if e.Fired() != 100 {
		t.Errorf("Fired() = %d, want 100", e.Fired())
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Duration() != time.Second {
		t.Errorf("Second.Duration() = %v", Second.Duration())
	}
	if FromDuration(3*time.Millisecond) != 3*Millisecond {
		t.Errorf("FromDuration mismatch")
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Errorf("Milliseconds() = %v, want 2.5", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
}

// Property: for any set of deadlines, the engine fires them in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(deadlines []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range deadlines {
			at := Time(d)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(deadlines) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}
