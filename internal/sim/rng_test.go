package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp(5) sample mean = %v", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("Normal() mean=%v var=%v", mean, variance)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(5)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto(2, 1.5) = %v below xm", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExpTimeNonNegative(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		if v := r.ExpTime(Millisecond); v < 0 {
			t.Fatalf("ExpTime produced negative interval %v", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", p)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
