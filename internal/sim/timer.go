package sim

// Timer is a reusable, allocation-free timer handle in the style of
// time.AfterFunc: one callback bound at construction, rearmed with Reset and
// disarmed with Stop. Rearming schedules a pooled engine event, so hot
// per-packet timers (retransmission, delayed ACK) do not allocate on every
// rearm the way Cancel+After with a fresh closure would.
//
// Safety: the Timer records the scheduled event's generation. If the event
// has already fired and been recycled for an unrelated schedule, Stop
// becomes a no-op instead of cancelling the new owner — the hazard a plain
// retained *Event handle would have with pooling.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event // pending firing, nil while disarmed
	gen uint32 // generation of ev when it was scheduled
}

// NewTimer returns a disarmed timer that runs fn on the engine clock each
// time an armed deadline is reached.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// timerFire is the pooled-event trampoline: disarm, then run the callback
// (which may immediately Reset).
func timerFire(a1, _ any, _ int64) {
	t := a1.(*Timer)
	t.ev = nil
	t.fn()
}

// Reset (re)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ev = t.eng.atTimer(t.eng.now+d, t)
	t.gen = t.ev.gen
}

// Stop disarms the timer. Stopping a disarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.eng.cancelGen(t.ev, t.gen)
		t.ev = nil
	}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.ev != nil }
