package sim

import "testing"

func TestTimerFireAndRearm(t *testing.T) {
	eng := NewEngine()
	fired := 0
	tm := eng.NewTimer(func() { fired++ })
	if tm.Armed() {
		t.Fatal("new timer reports armed")
	}
	tm.Reset(10)
	if !tm.Armed() {
		t.Fatal("Reset did not arm the timer")
	}
	eng.RunUntil(20)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
	// The same handle rearms indefinitely.
	tm.Reset(5)
	tm.Reset(7) // rearm replaces the pending deadline
	eng.RunUntil(40)
	if fired != 2 {
		t.Fatalf("fired = %d after rearm, want 2 (Reset must replace, not add)", fired)
	}
	if got := eng.Now(); got != 40 {
		t.Fatalf("Now() = %v, want 40", got)
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	eng := NewEngine()
	fired := 0
	tm := eng.NewTimer(func() { fired++ })
	tm.Reset(10)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	eng.RunUntil(50)
	if fired != 0 {
		t.Fatalf("fired = %d after Stop, want 0", fired)
	}
	// Stopping again (and stopping a never-armed timer) is a no-op.
	tm.Stop()
}

// TestTimerStaleHandleDoesNotCancelReusedEvent exercises the generation
// guard: after a timer fires, its pooled event may be reused by an unrelated
// schedule; cancelling through the stale (event, generation) pair must not
// touch the new incarnation.
func TestTimerStaleHandleDoesNotCancelReusedEvent(t *testing.T) {
	eng := NewEngine()
	tm := eng.NewTimer(func() {})
	tm.Reset(5)
	ev, gen := tm.ev, tm.gen
	eng.RunUntil(10) // fires; the event returns to the free list

	calls := 0
	eng.AfterCall(5, func(a1, _ any, _ int64) { *(a1.(*int))++ }, &calls, nil, 0)
	eng.cancelGen(ev, gen) // stale: generation has moved on
	eng.RunUntil(20)
	if calls != 1 {
		t.Fatalf("reused event fired %d times, want 1 (stale cancel must be a no-op)", calls)
	}
}

// TestCompactionPreservesFiringOrder cancels enough events to trigger eager
// compaction and verifies the survivors still fire in exact (time, seq)
// order, i.e. deadline order with scheduling order as the tie-break.
func TestCompactionPreservesFiringOrder(t *testing.T) {
	eng := NewEngine()
	const n = 4 * compactThreshold
	var got []int
	evs := make([]*Event, n)
	for i := 0; i < n; i++ {
		i := i
		// Many deadline collisions so the seq tie-break is exercised.
		evs[i] = eng.At(Time(i%7), func() { got = append(got, i) })
	}
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			eng.Cancel(evs[i])
		}
	}
	if want := n / 2; eng.Pending() != want {
		t.Fatalf("Pending() = %d after cancels, want %d", eng.Pending(), want)
	}

	// Survivors must fire ordered by (deadline, scheduling order).
	var want []int
	for at := 0; at < 7; at++ {
		for i := 0; i < n; i += 2 {
			if i%7 == at {
				want = append(want, i)
			}
		}
	}
	eng.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("firing position %d: got event %d, want %d", k, got[k], want[k])
		}
	}
}

// TestPendingExcludesCancelled pins the Pending contract below the compaction
// threshold, where cancelled events are still physically queued.
func TestPendingExcludesCancelled(t *testing.T) {
	eng := NewEngine()
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, eng.At(Time(i), func() {}))
	}
	for i := 0; i < 4; i++ {
		eng.Cancel(evs[i])
	}
	if got := eng.Pending(); got != 6 {
		t.Fatalf("Pending() = %d, want 6", got)
	}
	// Double-cancel must not double-count.
	eng.Cancel(evs[0])
	if got := eng.Pending(); got != 6 {
		t.Fatalf("Pending() = %d after double cancel, want 6", got)
	}
	eng.Run()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

func testInc(a1, _ any, _ int64) { *(a1.(*int))++ }

// TestAtCallZeroAlloc pins the core claim of the event-engine overhaul:
// scheduling and firing a pooled call event allocates nothing in steady state.
func TestAtCallZeroAlloc(t *testing.T) {
	eng := NewEngine()
	n := 0
	// Warm the free list and the queue's backing array.
	eng.AfterCall(1, testInc, &n, nil, 0)
	eng.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		eng.AfterCall(1, testInc, &n, nil, 0)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("AtCall schedule+fire allocates %.1f objects per event, want 0", allocs)
	}
}

// TestTimerRearmZeroAlloc pins the allocation-free rearm contract the
// transport retransmit and delayed-ACK timers rely on.
func TestTimerRearmZeroAlloc(t *testing.T) {
	eng := NewEngine()
	tm := eng.NewTimer(func() {})
	tm.Reset(1)
	eng.RunFor(2)
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(1)
		eng.RunFor(2)
	})
	if allocs != 0 {
		t.Fatalf("Timer rearm allocates %.1f objects per cycle, want 0", allocs)
	}
	// Rearm-before-fire (the armRTO pattern) must also be free.
	allocs = testing.AllocsPerRun(1000, func() {
		tm.Reset(5)
		tm.Reset(3)
		eng.RunFor(4)
	})
	if allocs != 0 {
		t.Fatalf("Timer cancel+rearm allocates %.1f objects per cycle, want 0", allocs)
	}
}
