// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order, which keeps runs fully deterministic for a fixed
// seed and schedule. All other simulator packages (netsim, switchsim,
// transport, fleet) are built on top of this engine.
//
// Performance design (the simulator's binding constraint is per-event cost,
// exactly as the paper argues per-packet cost dominates for Millisampler,
// §4.3):
//
//   - the queue is a concrete 4-ary min-heap of *Event — no container/heap
//     interface boxing, fewer levels than a binary heap, and the four
//     children of a node share a cache line;
//   - events scheduled through AtCall/AfterCall and Timer carry a
//     pre-bound function plus (any, any, int64) argument words instead of a
//     closure, and are recycled through a free list, so the per-packet
//     scheduling paths (NIC serialization, fabric hops, switch dequeues,
//     retransmit/delayed-ACK timers) perform zero heap allocations;
//   - cancelled events are compacted eagerly once they outnumber live
//     events, so runs with heavy timer churn (e.g. crash-injected
//     retransmit storms) never degrade quadratically.
//
// Events returned by At/After are plain heap-allocated objects: their
// handles stay valid indefinitely, which keeps Cancel safe for callers that
// retain them. Only handle-free call events and Timer internals are pooled.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is intentionally distinct from time.Time: simulated hosts
// observe wall-clock time only through the clock package, which layers
// NTP-style offset and drift on top of sim.Time.
type Time int64

// Common durations expressed in simulation time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a time.Duration to simulation time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// CallFunc is the pre-bound form of an event callback: a static function
// receiving its context through two pointer-shaped words and one integer.
// Storing pointers, funcs, or channels in the any slots does not allocate.
type CallFunc func(a1, a2 any, i int64)

// Event is a scheduled callback. The callback runs with the engine clock set
// to the event's deadline.
type Event struct {
	at  Time
	seq uint64

	fn  func()   // closure form (At/After)
	cfn CallFunc // pre-bound form (AtCall/AfterCall, Timer)
	a1  any
	a2  any
	i   int64

	gen      uint32 // bumped on each recycle; guards stale Timer handles
	queued   bool
	cancel   bool
	poolable bool // recycled into the engine free list after popping
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the deadline the event was scheduled for.
func (e *Event) At() Time { return e.at }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; simulated concurrency is expressed as interleaved events.
type Engine struct {
	now     Time
	queue   []*Event // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	fired   uint64
	ncancel int // cancelled events still in the queue
	halted  bool
	free    []*Event // recycled poolable events
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, useful for
// instrumentation and benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (not cancelled) events still queued.
func (e *Engine) Pending() int { return len(e.queue) - e.ncancel }

// ---- 4-ary heap ----

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.queued = true
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		min := c
		last := c + 4
		if last > n {
			last = n
		}
		for j := c + 1; j < last; j++ {
			if eventLess(q[j], q[min]) {
				min = j
			}
		}
		if !eventLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = ev
}

// popMin removes and returns the earliest event (cancelled or not).
func (e *Engine) popMin() *Event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.queued = false
	return ev
}

// compact removes cancelled events from the queue in one pass and restores
// the heap property. The (at, seq) total order is unaffected, so firing
// order is exactly what it would have been under lazy popping.
func (e *Engine) compact() {
	q := e.queue
	kept := q[:0]
	for _, ev := range q {
		if ev.cancel {
			ev.queued = false
			e.recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	// Clear the tail so dropped events are not retained.
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	e.queue = kept
	e.ncancel = 0
	for i := (len(kept) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// compactThreshold is the minimum queue length before eager compaction kicks
// in; below it, lazy popping is already cheap.
const compactThreshold = 64

// noteCancelled records one more cancelled-but-queued event and compacts the
// queue once cancelled events outnumber live ones.
func (e *Engine) noteCancelled() {
	e.ncancel++
	if n := len(e.queue); n >= compactThreshold && e.ncancel*2 > n {
		e.compact()
	}
}

// recycle returns a poolable event to the free list. The generation bump
// invalidates any stale Timer handle to the old incarnation. Non-poolable
// events (At/After) are left untouched: their handles may be retained, and
// fields like the cancelled flag must stay observable.
func (e *Engine) recycle(ev *Event) {
	if !ev.poolable {
		return
	}
	ev.gen++
	ev.fn = nil
	ev.cfn = nil
	ev.a1 = nil
	ev.a2 = nil
	ev.i = 0
	ev.cancel = false
	e.free = append(e.free, ev)
}

// newEvent takes an event from the free list or allocates one.
func (e *Engine) newEvent(at Time, poolable bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); poolable && n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.seq = e.seq
	ev.poolable = poolable
	e.seq++
	return ev
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a logic error in a discrete-event model. The returned
// handle stays valid indefinitely (At events are never pooled), so it may be
// retained and cancelled at any point.
func (e *Engine) At(at Time, fn func()) *Event {
	ev := e.newEvent(at, false)
	ev.fn = fn
	e.push(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtCall schedules the pre-bound callback fn(a1, a2, i) at absolute time at.
// The event is pooled and returns no handle, making it allocation-free in
// steady state; use a Timer when the schedule must be cancellable.
func (e *Engine) AtCall(at Time, fn CallFunc, a1, a2 any, i int64) {
	ev := e.newEvent(at, true)
	ev.cfn = fn
	ev.a1 = a1
	ev.a2 = a2
	ev.i = i
	e.push(ev)
}

// AfterCall schedules the pre-bound callback fn(a1, a2, i) to run d after the
// current time. Like AtCall, it is pooled, handle-free and allocation-free.
func (e *Engine) AfterCall(d Time, fn CallFunc, a1, a2 any, i int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtCall(e.now+d, fn, a1, a2, i)
}

// atTimer schedules a pooled event for a Timer and returns it; the Timer
// remembers (event, generation) so a later Stop only cancels this
// incarnation.
func (e *Engine) atTimer(at Time, t *Timer) *Event {
	ev := e.newEvent(at, true)
	ev.cfn = timerFire
	ev.a1 = t
	e.push(ev)
	return ev
}

// Cancel marks ev as cancelled. A cancelled event stays queued but its
// callback will not run; once cancelled events outnumber live ones the queue
// is compacted eagerly. Cancelling an already-fired event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.queued {
		e.noteCancelled()
	}
}

// cancelGen cancels ev only if it is still the incarnation with generation
// gen. Stale Timer handles (the event fired and was recycled) are no-ops.
func (e *Engine) cancelGen(ev *Event, gen uint32) {
	if ev == nil || !ev.queued || ev.gen != gen || ev.cancel {
		return
	}
	ev.cancel = true
	e.noteCancelled()
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// fire pops the earliest live event, advances the clock, and runs its
// callback. It reports false when the queue has drained. Poolable events are
// recycled before the callback runs, so a callback can immediately reuse the
// object for its own rescheduling.
func (e *Engine) fire() bool {
	for len(e.queue) > 0 {
		ev := e.popMin()
		if ev.cancel {
			e.ncancel--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if ev.cfn != nil {
			cfn, a1, a2, i := ev.cfn, ev.a1, ev.a2, ev.i
			e.recycle(ev)
			cfn(a1, a2, i)
		} else {
			fn := ev.fn
			e.recycle(ev)
			fn()
		}
		return true
	}
	return false
}

// Step executes the next pending event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (e *Engine) Step() bool { return e.fire() }

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.fire() {
	}
}

// RunUntil executes events with deadlines at or before end, then advances the
// clock to exactly end. Events scheduled beyond end remain queued. Cancelled
// events at the head of the queue are discarded as they are reached, so runs
// with many dead timers stay linear.
func (e *Engine) RunUntil(end Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 {
		top := e.queue[0]
		if top.cancel {
			e.popMin()
			e.ncancel--
			e.recycle(top)
			continue
		}
		if top.at > end {
			break
		}
		e.popMin()
		e.now = top.at
		e.fired++
		if top.cfn != nil {
			cfn, a1, a2, i := top.cfn, top.a1, top.a2, top.i
			e.recycle(top)
			cfn(a1, a2, i)
		} else {
			fn := top.fn
			e.recycle(top)
			fn()
		}
	}
	if e.now < end {
		e.now = end
	}
}

// RunFor executes events for a span d of virtual time from the current clock.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
