// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order, which keeps runs fully deterministic for a fixed
// seed and schedule. All other simulator packages (netsim, switchsim,
// transport, fleet) are built on top of this engine.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is intentionally distinct from time.Time: simulated hosts
// observe wall-clock time only through the clock package, which layers
// NTP-style offset and drift on top of sim.Time.
type Time int64

// Common durations expressed in simulation time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a time.Duration to simulation time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Event is a scheduled callback. The callback runs with the engine clock set
// to the event's deadline.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once popped or cancelled
	cancel bool
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the deadline the event was scheduled for.
func (e *Event) At() Time { return e.at }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; simulated concurrency is expressed as interleaved events.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, useful for
// instrumentation and benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a logic error in a discrete-event model.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel marks ev as cancelled. A cancelled event stays in the queue but its
// callback will not run. Cancelling an already-fired event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.cancel = true
	}
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the next pending event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with deadlines at or before end, then advances the
// clock to exactly end. Events scheduled beyond end remain queued.
func (e *Engine) RunUntil(end Time) {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

// RunFor executes events for a span d of virtual time from the current clock.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancel {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
