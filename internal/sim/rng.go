package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// splitmix64. Each simulated component takes its own stream (derived with
// Fork) so that adding events to one component never perturbs another —
// essential for reproducible fleet-scale experiments.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child stream. The label decorrelates children
// forked from the same parent state.
func (r *RNG) Fork(label uint64) *RNG {
	return &RNG{state: r.Uint64() ^ (label * 0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed interval with the given mean.
func (r *RNG) ExpTime(mean Time) Time {
	v := r.Exp(float64(mean))
	if v > math.MaxInt64/2 {
		v = math.MaxInt64 / 2
	}
	return Time(v)
}

// Pareto returns a bounded Pareto sample with shape alpha and minimum xm.
// Heavy-tailed flow and burst sizes in data centers follow such laws.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns a log-normally distributed value with the location mu and
// scale sigma of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal sample (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Poisson returns a Poisson sample with the given mean (Knuth's method for
// small means, normal approximation above 64 to stay O(1)).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*r.Normal()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n elements using swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
