package testbed

import (
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestDefaultsApplied(t *testing.T) {
	r := NewRack(RackConfig{Seed: 1})
	if len(r.Servers) != 16 {
		t.Errorf("default servers = %d", len(r.Servers))
	}
	if len(r.Remotes) != 64 {
		t.Errorf("default remotes = %d", len(r.Remotes))
	}
	if r.Servers[0].LineRateBps() != netsim.DefaultServerRateBps {
		t.Errorf("server rate = %d", r.Servers[0].LineRateBps())
	}
	if r.Servers[0].Cores != 4 {
		t.Errorf("cores = %d", r.Servers[0].Cores)
	}
}

func TestPortMapping(t *testing.T) {
	r := NewRack(RackConfig{Servers: 8, Seed: 2})
	for i, h := range r.Servers {
		p, ok := r.Port(h.ID)
		if !ok || p != i {
			t.Errorf("server %d mapped to port %d,%v", i, p, ok)
		}
	}
	if _, ok := r.Port(RemoteIDBase); ok {
		t.Error("remote host has a downlink port")
	}
}

func TestRemoteToServerPath(t *testing.T) {
	r := NewRack(RackConfig{Servers: 4, Seed: 3})
	var arrived []sim.Time
	r.Servers[2].SetProtocolHandler(func(seg *netsim.Segment) {
		arrived = append(arrived, r.Eng.Now())
	})
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: r.Remotes[0].ID, Dst: r.Servers[2].ID, SrcPort: 1, DstPort: 2},
		Size: 9000,
	}
	r.Remotes[0].Send(seg)
	r.Eng.RunUntil(10 * sim.Millisecond)
	if len(arrived) != 1 {
		t.Fatalf("delivered %d times", len(arrived))
	}
	// NIC serialization (9000B at 25G = 2.88µs) + fabric 10µs + ToR drain
	// (9000B at 12.5G = 5.76µs): at least 18µs.
	if arrived[0] < 18*sim.Microsecond || arrived[0] > 100*sim.Microsecond {
		t.Errorf("arrival at %v outside plausible path latency", arrived[0])
	}
	if r.Switch.QueueStats(2).EnqueuedSegments != 1 {
		t.Error("segment did not pass through the ToR queue")
	}
}

func TestServerToRemotePathSkipsQueues(t *testing.T) {
	r := NewRack(RackConfig{Servers: 4, Seed: 4})
	got := 0
	r.Remotes[1].SetProtocolHandler(func(*netsim.Segment) { got++ })
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: r.Servers[0].ID, Dst: r.Remotes[1].ID, SrcPort: 1, DstPort: 2},
		Size: 9000,
	}
	r.Servers[0].Send(seg)
	r.Eng.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("delivered %d times", got)
	}
	for p := 0; p < 4; p++ {
		if r.Switch.QueueStats(p).EnqueuedSegments != 0 {
			t.Error("uplink traffic traversed a downlink queue")
		}
	}
}

func TestRackLocalHairpin(t *testing.T) {
	r := NewRack(RackConfig{Servers: 4, Seed: 5})
	got := 0
	r.Servers[3].SetProtocolHandler(func(*netsim.Segment) { got++ })
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: r.Servers[0].ID, Dst: r.Servers[3].ID, SrcPort: 1, DstPort: 2},
		Size: 5000,
	}
	r.Servers[0].Send(seg)
	r.Eng.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("delivered %d times", got)
	}
	if r.Switch.QueueStats(3).EnqueuedSegments != 1 {
		t.Error("rack-local traffic skipped the destination queue")
	}
}

func TestRemoteToRemotePath(t *testing.T) {
	r := NewRack(RackConfig{Servers: 4, Seed: 6})
	got := 0
	r.Remotes[2].SetProtocolHandler(func(*netsim.Segment) { got++ })
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: r.Remotes[0].ID, Dst: r.Remotes[2].ID, SrcPort: 1, DstPort: 2},
		Size: 1000,
	}
	r.Remotes[0].Send(seg)
	r.Eng.RunUntil(10 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("delivered %d times", got)
	}
}

func TestUnroutableDestinationDropped(t *testing.T) {
	r := NewRack(RackConfig{Servers: 2, Remotes: 2, Seed: 7})
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: r.Remotes[0].ID, Dst: 9999, SrcPort: 1, DstPort: 2},
		Size: 100,
	}
	r.routeFromRemote(seg)
	r.routeFromUplink(seg)
	if r.UnroutableDrops != 2 {
		t.Errorf("UnroutableDrops = %d, want 2", r.UnroutableDrops)
	}
}

func TestControlPlaneReliableByDefault(t *testing.T) {
	r := NewRack(RackConfig{Servers: 2, Seed: 8})
	var ran, doneAt int
	var errGot error
	r.Control.Call(r.Servers[0], func() { ran++ }, func(err error) { errGot = err; doneAt++ })
	r.Eng.RunUntil(10 * sim.Millisecond)
	if ran != 1 || doneAt != 1 || errGot != nil {
		t.Fatalf("ran=%d done=%d err=%v", ran, doneAt, errGot)
	}
	if r.Control.Calls != 1 || r.Control.Failures != 0 {
		t.Errorf("calls=%d failures=%d", r.Control.Calls, r.Control.Failures)
	}
}

func TestControlPlaneHostDown(t *testing.T) {
	r := NewRack(RackConfig{Servers: 2, Seed: 9})
	r.Servers[0].Crash(50 * sim.Millisecond)
	var errGot error
	ran := false
	r.Control.Call(r.Servers[0], func() { ran = true }, func(err error) { errGot = err })
	r.Eng.RunUntil(10 * sim.Millisecond)
	if ran {
		t.Error("op ran against a down host")
	}
	if !errors.Is(errGot, ErrHostDown) {
		t.Errorf("err = %v, want ErrHostDown", errGot)
	}
	if r.Control.Unreachable != 1 {
		t.Errorf("Unreachable = %d", r.Control.Unreachable)
	}
}

func TestControlPlaneSeededFailures(t *testing.T) {
	r := NewRack(RackConfig{Servers: 2, Seed: 10, Control: ControlConfig{FailProb: 0.5}})
	failures := 0
	const n = 2000
	for i := 0; i < n; i++ {
		r.Control.Call(r.Servers[0], nil, func(err error) {
			if errors.Is(err, ErrRPCFailed) {
				failures++
			} else if err != nil {
				t.Errorf("unexpected error %v", err)
			}
		})
	}
	r.Eng.RunUntil(10 * sim.Millisecond)
	frac := float64(failures) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("failure fraction %v, want ~0.5", frac)
	}
	if r.Control.Failures != int64(failures) {
		t.Errorf("Failures counter %d != observed %d", r.Control.Failures, failures)
	}
}

func TestDeterministicTopology(t *testing.T) {
	a := NewRack(RackConfig{Servers: 4, Seed: 42})
	b := NewRack(RackConfig{Servers: 4, Seed: 42})
	// Same seed => same clock offsets.
	for i := range a.Servers {
		if a.Servers[i].Clock.Offset(0) != b.Servers[i].Clock.Offset(0) {
			t.Fatal("clock offsets differ across identical builds")
		}
	}
}
