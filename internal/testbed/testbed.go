// Package testbed assembles complete simulated rack topologies: servers
// behind a shared-buffer ToR, fabric-side remote hosts, transport endpoints,
// and synchronized host clocks. It is the substrate every experiment,
// example, and fleet run builds on.
package testbed

import (
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// RackConfig parameterizes one rack testbed.
type RackConfig struct {
	// Servers is the number of rack servers (each with its own ToR queue).
	Servers int
	// Remotes is the pool of fabric-side hosts available as traffic peers.
	Remotes int
	// Cores is the simulated CPU core count per server (Millisampler's
	// per-CPU dimension).
	Cores int
	// ServerRateBps is the per-server allocated link rate (default
	// 12.5 Gbps, the studied server class).
	ServerRateBps int64
	// RemoteRateBps is each remote host's NIC rate (default 25 Gbps).
	RemoteRateBps int64
	// FabricDelay is the one-way delay across the fabric between the ToR
	// and a remote host (default 10 µs).
	FabricDelay sim.Time
	// Switch optionally overrides the ToR configuration; zero fields take
	// the production defaults for the rack's server count.
	Switch switchsim.Config
	// ClockModel is the host time-synchronization quality (default: the
	// paper's sub-millisecond NTP deployment).
	ClockModel clock.SyncModel
	// Control parameterizes the collection control plane (harvest RPC
	// latency and failure probability). The zero value is reliable.
	Control ControlConfig
	// Seed drives all randomness in the rack.
	Seed uint64
}

func (c RackConfig) withDefaults() RackConfig {
	if c.Servers <= 0 {
		c.Servers = 16
	}
	if c.Remotes <= 0 {
		c.Remotes = 4 * c.Servers
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.ServerRateBps == 0 {
		c.ServerRateBps = netsim.DefaultServerRateBps
	}
	if c.RemoteRateBps == 0 {
		c.RemoteRateBps = 25_000_000_000
	}
	if c.FabricDelay == 0 {
		c.FabricDelay = 10 * sim.Microsecond
	}
	if c.ClockModel == (clock.SyncModel{}) {
		c.ClockModel = clock.DefaultSyncModel()
	}
	return c
}

// RemoteIDBase offsets remote host IDs so they never collide with server
// indices.
const RemoteIDBase netsim.HostID = 1 << 16

// Rack is an assembled topology.
type Rack struct {
	Cfg     RackConfig
	Eng     *sim.Engine
	RNG     *sim.RNG
	Switch  *switchsim.Switch
	Control *ControlPlane

	Servers   []*netsim.Host
	ServerEPs []*transport.Endpoint
	Remotes   []*netsim.Host
	RemoteEPs []*transport.Endpoint

	// UnroutableDrops counts segments addressed to hosts outside the
	// topology. The fabric drops them like any real network would; a
	// nonzero count usually indicates a misconfigured workload.
	UnroutableDrops int64

	portOf map[netsim.HostID]int
}

// NewRack builds a rack testbed.
func NewRack(cfg RackConfig) *Rack {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)

	swCfg := cfg.Switch
	if swCfg.Ports == 0 {
		swCfg = switchsim.DefaultConfig(cfg.Servers)
		swCfg.DownlinkRateBps = cfg.ServerRateBps
	}
	// One segment pool serves the whole rack: transports draw from it, and
	// wherever a segment's path ends (delivery, drop, replication) it
	// recycles back, so the steady-state working set stays resident.
	pool := swCfg.Pool
	if pool == nil {
		pool = netsim.NewSegmentPool()
		swCfg.Pool = pool
	}
	sw := switchsim.New(eng, swCfg)

	r := &Rack{
		Cfg:     cfg,
		Eng:     eng,
		RNG:     rng,
		Switch:  sw,
		// The control RNG is seeded independently (not forked from the rack
		// stream) so enabling control-plane faults never perturbs workload
		// or clock randomness.
		Control: NewControlPlane(eng, cfg.Control, sim.NewRNG(cfg.Seed^0xC7A1D40B)),
		portOf:  make(map[netsim.HostID]int, cfg.Servers),
	}

	clockRNG := rng.Fork(0xC10C)
	for i := 0; i < cfg.Servers; i++ {
		hc := clock.NewHost(cfg.ClockModel, clockRNG)
		hc.StartDaemon(eng, cfg.ClockModel, clockRNG)
		h := netsim.NewHost(eng, netsim.HostConfig{
			ID:          netsim.HostID(i),
			Cores:       cfg.Cores,
			LinkRateBps: cfg.ServerRateBps,
			Clock:       hc,
			Pool:        pool,
		})
		h.SetForwarder(netsim.ForwarderFunc(sw.ForwardFromServer))
		sw.ConnectPort(i, h.Inject)
		r.portOf[h.ID] = i
		r.Servers = append(r.Servers, h)
		r.ServerEPs = append(r.ServerEPs, transport.NewEndpoint(h))
	}
	for i := 0; i < cfg.Remotes; i++ {
		h := netsim.NewHost(eng, netsim.HostConfig{
			ID:          RemoteIDBase + netsim.HostID(i),
			Cores:       cfg.Cores,
			LinkRateBps: cfg.RemoteRateBps,
			Pool:        pool,
		})
		h.SetForwarder(netsim.ForwarderFunc(r.routeFromRemote))
		r.Remotes = append(r.Remotes, h)
		r.RemoteEPs = append(r.RemoteEPs, transport.NewEndpoint(h))
	}
	sw.SetUplink(netsim.ForwarderFunc(r.routeFromUplink))
	return r
}

// Port returns the ToR downlink port of a rack server.
func (r *Rack) Port(id netsim.HostID) (int, bool) {
	p, ok := r.portOf[id]
	return p, ok
}

// Pool returns the rack-wide segment pool.
func (r *Rack) Pool() *netsim.SegmentPool { return r.Switch.Pool() }

// routeFromUplink carries traffic leaving rack servers. Rack-local unicast
// hairpins at the ToR back down the destination's queue; everything else
// crosses the fabric, which is modeled uncongested: the paper observes that
// most congestion in this fleet occurs on the server-link, and ECN is
// operational only on the ToR (§3).
func (r *Rack) routeFromUplink(seg *netsim.Segment) {
	dst := seg.Flow.Dst
	if port, ok := r.portOf[dst]; ok {
		r.Switch.ForwardFromFabric(port, seg)
		return
	}
	if dst >= RemoteIDBase {
		idx := int(dst - RemoteIDBase)
		if idx < 0 || idx >= len(r.Remotes) {
			r.unroutable(seg)
			return
		}
		r.Eng.AfterCall(r.Cfg.FabricDelay, hostInject, r.Remotes[idx], seg, 0)
		return
	}
	r.unroutable(seg)
}

// unroutable drops a segment addressed outside the topology; the drop
// terminates its path, so it recycles.
func (r *Rack) unroutable(seg *netsim.Segment) {
	r.UnroutableDrops++
	r.Pool().Put(seg)
}

// hostInject and fabricToSwitch are the pooled-event continuations of the
// fabric hops: scheduling them allocates nothing, unlike a per-segment
// closure.
func hostInject(a1, a2 any, _ int64) { a1.(*netsim.Host).Inject(a2.(*netsim.Segment)) }

func fabricToSwitch(a1, a2 any, port int64) {
	a1.(*Rack).Switch.ForwardFromFabric(int(port), a2.(*netsim.Segment))
}

// routeFromRemote carries remote-host egress: to a rack server via the
// fabric and the ToR (where contention happens), or to another remote.
func (r *Rack) routeFromRemote(seg *netsim.Segment) {
	if seg.Is(netsim.FlagMulticast) {
		r.Eng.AfterCall(r.Cfg.FabricDelay, fabricToSwitch, r, seg, 0)
		return
	}
	dst := seg.Flow.Dst
	if port, ok := r.portOf[dst]; ok {
		r.Eng.AfterCall(r.Cfg.FabricDelay, fabricToSwitch, r, seg, int64(port))
		return
	}
	if dst >= RemoteIDBase {
		idx := int(dst - RemoteIDBase)
		if idx >= 0 && idx < len(r.Remotes) {
			r.Eng.AfterCall(2*r.Cfg.FabricDelay, hostInject, r.Remotes[idx], seg, 0)
			return
		}
	}
	r.unroutable(seg)
}
