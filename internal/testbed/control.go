package testbed

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Control-plane errors. Both are retryable from the caller's point of view:
// a failed RPC may succeed on the next attempt, and a down host may reboot.
var (
	// ErrHostDown is returned when the target host is crashed at the time
	// the RPC would be delivered.
	ErrHostDown = errors.New("testbed: host unreachable")
	// ErrRPCFailed is returned when the control-plane itself loses the
	// request or response (seeded random failure).
	ErrRPCFailed = errors.New("testbed: control rpc failed")
)

// ControlConfig parameterizes the rack's control plane — the path the
// SyncMillisampler controller uses to start runs on and harvest results from
// individual servers. The zero value is a reliable control plane with small
// default latencies.
type ControlConfig struct {
	// FailProb is the per-RPC probability that the request or response is
	// lost in the control plane (independent of host health).
	FailProb float64
	// RTT is the round-trip latency of a successful RPC (default 200 µs).
	RTT sim.Time
	// Timeout is how long a lost or unreachable RPC takes to be reported to
	// the caller (default 2 ms).
	Timeout sim.Time
}

func (c ControlConfig) withDefaults() ControlConfig {
	if c.RTT <= 0 {
		c.RTT = 200 * sim.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * sim.Millisecond
	}
	return c
}

// ControlPlane models the collection RPC path between the rack controller
// and its servers. Unlike the data plane it does not traverse the simulated
// switch: production control traffic uses a separate management network, so
// only its failure and latency behaviour matters here.
type ControlPlane struct {
	eng *sim.Engine
	cfg ControlConfig
	rng *sim.RNG

	// Calls counts issued RPCs; Failures those lost in the control plane;
	// Unreachable those that found the host down.
	Calls       int64
	Failures    int64
	Unreachable int64
}

// NewControlPlane builds a control plane on the engine with its own seeded
// RNG stream, so fault outcomes are independent of data-plane randomness.
func NewControlPlane(eng *sim.Engine, cfg ControlConfig, rng *sim.RNG) *ControlPlane {
	return &ControlPlane{eng: eng, cfg: cfg.withDefaults(), rng: rng}
}

// Config returns the active configuration (with defaults applied).
func (cp *ControlPlane) Config() ControlConfig { return cp.cfg }

// Call issues an RPC against host h. On success, op runs at delivery time on
// the host and done(nil) fires one RTT after the call. On a control-plane
// loss or a down host, done fires with the error after the configured
// timeout; op does not run. done must not be nil; op may be.
func (cp *ControlPlane) Call(h *netsim.Host, op func(), done func(error)) {
	cp.Calls++
	if cp.cfg.FailProb > 0 && cp.rng.Bool(cp.cfg.FailProb) {
		cp.Failures++
		cp.eng.After(cp.cfg.Timeout, func() { done(ErrRPCFailed) })
		return
	}
	cp.eng.After(cp.cfg.RTT/2, func() {
		if h.Down() {
			cp.Unreachable++
			wait := cp.cfg.Timeout - cp.cfg.RTT/2
			if wait < 0 {
				wait = 0
			}
			cp.eng.After(wait, func() {
				done(fmt.Errorf("host %d: %w", h.ID, ErrHostDown))
			})
			return
		}
		if op != nil {
			op()
		}
		cp.eng.After(cp.cfg.RTT-cp.cfg.RTT/2, func() { done(nil) })
	})
}
