// Package fsutil holds the small filesystem primitives the resumable stores
// share: atomic JSON replacement, whole-file digests, and stale temp-file
// cleanup. The sharded dataset and the sweep point store both build their
// crash-safety on these — a killed process leaves at worst a .tmp- file that
// the next invocation sweeps away, never a torn manifest under a final name.
//
// Atomic replacement is durable, not just atomic: the temp file is fsynced
// before the rename and the parent directory after it, so a sealed manifest
// survives power loss, not only process death. (rename alone orders the
// change in the page cache; a crash before writeback can resurrect the old
// file, or worse, a new name pointing at unwritten data.)
package fsutil

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// TempPrefix marks in-progress files; RemoveTempFiles reclaims them.
const TempPrefix = ".tmp-"

// syncFile and syncDir are seams so the crash-window test can observe the
// fsync ordering around the rename without faking a power loss.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		// A directory fsync failure is reported, but close regardless.
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return serr
		}
		return cerr
	}
)

// WriteJSONAtomic marshals v (indented, trailing newline) and atomically and
// durably replaces dir/name: temp file, fsync, rename, directory fsync. An
// interrupted update never leaves a torn file behind, and a completed one
// survives power loss.
func WriteJSONAtomic(dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	return WriteFileAtomic(dir, name, append(data, '\n'))
}

// WriteFileAtomic atomically and durably replaces dir/name with data — the
// byte-level form WriteJSONAtomic and the shard installers build on.
func WriteFileAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, TempPrefix+name+"-")
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("fsutil: fsync %s: %w", dir, err)
	}
	return nil
}

// SyncFile flushes an open file to stable storage.
func SyncFile(f *os.File) error { return syncFile(f) }

// SyncDir flushes a directory entry table to stable storage — required after
// a rename for the new name itself to survive power loss.
func SyncDir(dir string) error { return syncDir(dir) }

// ReadJSON unmarshals one JSON file into v.
func ReadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("fsutil: %s: %w", path, err)
	}
	return nil
}

// SHA256 returns the hex sha256 of a byte slice, the digest form recorded in
// manifests.
func SHA256(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// FileSHA256 returns the hex sha256 of a file's bytes — the digest form
// recorded in manifests and verified on every resume and read.
func FileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("fsutil: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("fsutil: %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RemoveTempFiles deletes stale TempPrefix files left in dir by a killed
// process.
func RemoveTempFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("fsutil: %w", err)
			}
		}
	}
	return nil
}
