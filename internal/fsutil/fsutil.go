// Package fsutil holds the small filesystem primitives the resumable stores
// share: atomic JSON replacement, whole-file digests, and stale temp-file
// cleanup. The sharded dataset and the sweep point store both build their
// crash-safety on these — a killed process leaves at worst a .tmp- file that
// the next invocation sweeps away, never a torn manifest under a final name.
package fsutil

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// TempPrefix marks in-progress files; RemoveTempFiles reclaims them.
const TempPrefix = ".tmp-"

// WriteJSONAtomic marshals v (indented, trailing newline) and atomically
// replaces dir/name via a temp file and rename, so an interrupted update
// never leaves a torn file behind.
func WriteJSONAtomic(dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	f, err := os.CreateTemp(dir, TempPrefix+name+"-")
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: %w", err)
	}
	return nil
}

// ReadJSON unmarshals one JSON file into v.
func ReadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("fsutil: %s: %w", path, err)
	}
	return nil
}

// FileSHA256 returns the hex sha256 of a file's bytes — the digest form
// recorded in manifests and verified on every resume and read.
func FileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("fsutil: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("fsutil: %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RemoveTempFiles deletes stale TempPrefix files left in dir by a killed
// process.
func RemoveTempFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("fsutil: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("fsutil: %w", err)
			}
		}
	}
	return nil
}
