package fsutil

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteJSONAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	type doc struct{ A, B int }
	want := doc{A: 1, B: 2}
	if err := WriteJSONAtomic(dir, "m.json", want); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := ReadJSON(filepath.Join(dir, "m.json"), &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
	// Replacing must not leave temp droppings.
	if err := WriteJSONAtomic(dir, "m.json", doc{A: 3}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries after replace, want 1", len(entries))
	}
}

func TestFileSHA256(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	body := []byte("contention")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	got, err := FileSHA256(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("FileSHA256 = %s, want %s", got, want)
	}
	if _, err := FileSHA256(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestRemoveTempFiles(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep.json")
	stale := filepath.Join(dir, TempPrefix+"m.json-123")
	os.WriteFile(keep, []byte("{}"), 0o644)
	os.WriteFile(stale, []byte("{"), 0o644)
	if err := RemoveTempFiles(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("non-temp file removed")
	}
}
