package fsutil

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteJSONAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	type doc struct{ A, B int }
	want := doc{A: 1, B: 2}
	if err := WriteJSONAtomic(dir, "m.json", want); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := ReadJSON(filepath.Join(dir, "m.json"), &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
	// Replacing must not leave temp droppings.
	if err := WriteJSONAtomic(dir, "m.json", doc{A: 3}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries after replace, want 1", len(entries))
	}
}

// TestAtomicWriteCrashWindow pins the durability ordering that closes the
// power-loss window: the temp file must be fsynced before the rename makes
// it reachable, and the directory must be fsynced after — otherwise a crash
// between writeback points can surface a sealed name with unwritten bytes,
// or lose the name entirely.
func TestAtomicWriteCrashWindow(t *testing.T) {
	dir := t.TempDir()
	var events []string
	origFile, origDir := syncFile, syncDir
	defer func() { syncFile, syncDir = origFile, origDir }()
	syncFile = func(f *os.File) error {
		// At file-sync time the final name must NOT exist yet (first write)
		// — we are still inside the temp file.
		if !strings.HasPrefix(filepath.Base(f.Name()), TempPrefix) {
			t.Errorf("file fsync on %s, want a %s temp file", f.Name(), TempPrefix)
		}
		events = append(events, "sync-file")
		return origFile(f)
	}
	syncDir = func(d string) error {
		// At directory-sync time the rename has happened: the final name is
		// in place and no temp file remains.
		if _, err := os.Stat(filepath.Join(dir, "m.json")); err != nil {
			t.Errorf("dir fsync before final name exists: %v", err)
		}
		events = append(events, "sync-dir")
		return origDir(d)
	}
	if err := WriteJSONAtomic(dir, "m.json", map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "sync-file" || events[1] != "sync-dir" {
		t.Errorf("sync order = %v, want [sync-file sync-dir]", events)
	}

	// A failing file fsync must abort the write: the old content stays, the
	// temp file is reclaimed — the crash-window state is never published.
	syncFile = func(*os.File) error { return errors.New("injected fsync failure") }
	syncDir = origDir
	if err := WriteJSONAtomic(dir, "m.json", map[string]int{"a": 2}); err == nil {
		t.Fatal("fsync failure did not surface")
	}
	var got map[string]int
	if err := ReadJSON(filepath.Join(dir, "m.json"), &got); err != nil || got["a"] != 1 {
		t.Errorf("content after aborted write: %v (err %v), want the pre-write value", got, err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Errorf("aborted write leaked temp file %s", e.Name())
		}
	}
}

func TestFileSHA256(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	body := []byte("contention")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	got, err := FileSHA256(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("FileSHA256 = %s, want %s", got, want)
	}
	if _, err := FileSHA256(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestRemoveTempFiles(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep.json")
	stale := filepath.Join(dir, TempPrefix+"m.json-123")
	os.WriteFile(keep, []byte("{}"), 0o644)
	os.WriteFile(stale, []byte("{"), 0o644)
	if err := RemoveTempFiles(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("non-temp file removed")
	}
}
