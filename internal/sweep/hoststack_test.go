package sweep

import (
	"path/filepath"
	"testing"
)

// TestHostStackInvariantResultDigest pins the instrument's non-interference
// contract at the sweep layer: the host-stack tap is pure bookkeeping and
// the sweep's point tallies carry no host-stack fields, so running the same
// smoke spec with Fleet.HostStack on and off must produce byte-identical
// ResultDigests.
func TestHostStackInvariantResultDigest(t *testing.T) {
	off := tinySpec(17)
	dOff := runDigest(t, filepath.Join(t.TempDir(), "off"), off, Options{Workers: 2})

	on := tinySpec(17)
	on.Fleet.HostStack = true
	dOn := runDigest(t, filepath.Join(t.TempDir(), "on"), on, Options{Workers: 2})

	if dOn != dOff {
		t.Fatalf("HostStack changed the sweep result digest:\n on  %s\n off %s", dOn, dOff)
	}
}
