package sweep

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/switchsim"
)

// Report renders a completed sweep as experiment results: the full what-if
// grid with per-point deltas against the baseline, the loss-vs-alpha view
// per contention class, and the sharing-policy comparison per contention
// class — the paper's §9 question ("would a different sharing configuration
// have helped this rack class?") answered from simulation.
func Report(res *Result) []*experiments.Result {
	return []*experiments.Result{gridResult(res), alphaResult(res), policyResult(res)}
}

// gridResult is the per-point table: every counterfactual next to the
// baseline with loss, ECN, burst, and peak-occupancy deltas.
func gridResult(res *Result) *experiments.Result {
	base := res.Baseline().Total
	r := &experiments.Result{
		ID:    "whatif-grid",
		Title: "What-if grid: buffer-sharing counterfactuals vs baseline (§9)",
		Header: []string{"point", "config", "loss%", "Δloss(pp)", "ecn-mark%",
			"lossy-burst%", "trunc-burst%", "peak-queue(KB)"},
	}
	for i := range res.Points {
		p := &res.Points[i]
		t := p.Total
		r.AddRow(
			fmt.Sprintf("%d", p.Index),
			p.Label,
			fmt.Sprintf("%.3f", t.LossPct()),
			fmt.Sprintf("%+.3f", t.LossPct()-base.LossPct()),
			fmt.Sprintf("%.2f", t.ECNPct()),
			fmt.Sprintf("%.1f", t.LossyBurstPct()),
			fmt.Sprintf("%.1f", t.TruncatedBurstPct()),
			fmt.Sprintf("%d", t.PeakQueueBytes>>10),
		)
	}
	r.Notef("baseline is point 0 (%s): the production configuration the measured fleet ran", res.Baseline().Label)
	r.Notef("peak-queue compares burst absorption headroom; under overload complete-sharing ≥ DT ≥ static-partition")
	if f := res.Points[0].Total.FailedRuns; f > 0 {
		r.Notef("%d rack-hour(s) failed to simulate per point and are excluded from the statistics", f)
	}
	return r
}

// alphaResult is the loss-vs-alpha table per baseline contention class: DT
// points with default buffer/ECN, one row per alpha, one column pair per
// class.
func alphaResult(res *Result) *experiments.Result {
	classes := classNames(res)
	header := []string{"alpha"}
	for _, c := range classes {
		header = append(header, c+" loss%", c+" Δ(pp)")
	}
	r := &experiments.Result{
		ID:     "whatif-alpha",
		Title:  "Loss vs DT alpha per contention class (§9)",
		Header: header,
	}

	baseByClass := res.Baseline().Classes
	var pts []Point
	for i := range res.Points {
		pts = append(pts, res.Points[i].Point)
	}
	for _, a := range DTAlphas(pts) {
		p := findDTPoint(res, a)
		if p == nil {
			continue
		}
		row := []string{fmt.Sprintf("%g", a)}
		for _, c := range classes {
			t := p.Classes[c]
			row = append(row,
				fmt.Sprintf("%.3f", t.LossPct()),
				fmt.Sprintf("%+.3f", t.LossPct()-baseByClass[c].LossPct()))
		}
		r.AddRow(row...)
	}
	r.Notef("classes are fixed by the baseline's busy-hour contention, so every alpha compares the same racks")
	r.Notef("paper §9: high-contention racks lose DT share to neighbors — the best alpha depends on the contention regime")
	return r
}

// policyResult is the policy-zoo table: one row per sharing discipline swept
// (at default knobs), the baseline standing in for DT, one column pair per
// baseline contention class — §9's "which discipline suits which regime".
func policyResult(res *Result) *experiments.Result {
	classes := classNames(res)
	header := []string{"policy", "loss%", "Δloss(pp)"}
	for _, c := range classes {
		header = append(header, c+" loss%", c+" Δ(pp)")
	}
	r := &experiments.Result{
		ID:     "whatif-policy",
		Title:  "Loss per sharing policy per contention class (§9)",
		Header: header,
	}

	base := res.Baseline()
	for _, pol := range switchsim.KnownPolicies() {
		p := findPolicyPoint(res, pol)
		if p == nil {
			continue
		}
		row := []string{
			pol.String(),
			fmt.Sprintf("%.3f", p.Total.LossPct()),
			fmt.Sprintf("%+.3f", p.Total.LossPct()-base.Total.LossPct()),
		}
		for _, c := range classes {
			t := p.Classes[c]
			row = append(row,
				fmt.Sprintf("%.3f", t.LossPct()),
				fmt.Sprintf("%+.3f", t.LossPct()-base.Classes[c].LossPct()))
		}
		r.AddRow(row...)
	}
	r.Notef("every policy runs at its default knobs (alpha 1, 200µs BShare budget); the baseline row is DT")
	r.Notef("bshare and abm points force full packet fidelity — the fluid model does not represent their admission")
	return r
}

// findPolicyPoint locates the default-knob point for a policy; the baseline
// stands in for DT.
func findPolicyPoint(res *Result, pol switchsim.Policy) *PointResult {
	if pol == switchsim.PolicyDT {
		return res.Baseline()
	}
	for i := range res.Points {
		o := res.Points[i].Override
		if o.Policy != pol || o.Alpha != 0 || o.BShareDelay != 0 ||
			o.ECNThreshold != 0 || o.TotalBuffer != 0 || o.DedicatedPerQueue != 0 {
			continue
		}
		return &res.Points[i]
	}
	return nil
}

// classNames lists the classes seen in the baseline, in fleet.Class order.
func classNames(res *Result) []string {
	order := map[string]int{
		fleet.ClassATypical.String(): 0,
		fleet.ClassAHigh.String():    1,
		fleet.ClassB.String():        2,
	}
	var out []string
	for c := range res.Baseline().Classes {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return order[out[a]] < order[out[b]] })
	return out
}

// findDTPoint locates the default-knob DT point with the given alpha; the
// baseline stands in for alpha 1.
func findDTPoint(res *Result, alpha float64) *PointResult {
	for i := range res.Points {
		o := res.Points[i].Override
		if o.Policy != switchsim.PolicyDT || o.ECNThreshold != 0 || o.TotalBuffer != 0 || o.DedicatedPerQueue != 0 {
			continue
		}
		a := o.Alpha
		if a == 0 {
			a = 1
		}
		if a == alpha {
			return &res.Points[i]
		}
	}
	return nil
}
