package sweep

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/switchsim"
)

// Report renders a completed sweep as experiment results: the full what-if
// grid with per-point deltas against the baseline, and the loss-vs-alpha
// view per contention class — the paper's §9 question ("would a different
// alpha have helped this rack class?") answered from simulation.
func Report(res *Result) []*experiments.Result {
	return []*experiments.Result{gridResult(res), alphaResult(res)}
}

// gridResult is the per-point table: every counterfactual next to the
// baseline with loss, ECN, burst, and peak-occupancy deltas.
func gridResult(res *Result) *experiments.Result {
	base := res.Baseline().Total
	r := &experiments.Result{
		ID:    "whatif-grid",
		Title: "What-if grid: buffer-sharing counterfactuals vs baseline (§9)",
		Header: []string{"point", "config", "loss%", "Δloss(pp)", "ecn-mark%",
			"lossy-burst%", "trunc-burst%", "peak-queue(KB)"},
	}
	for i := range res.Points {
		p := &res.Points[i]
		t := p.Total
		r.AddRow(
			fmt.Sprintf("%d", p.Index),
			p.Label,
			fmt.Sprintf("%.3f", t.LossPct()),
			fmt.Sprintf("%+.3f", t.LossPct()-base.LossPct()),
			fmt.Sprintf("%.2f", t.ECNPct()),
			fmt.Sprintf("%.1f", t.LossyBurstPct()),
			fmt.Sprintf("%.1f", t.TruncatedBurstPct()),
			fmt.Sprintf("%d", t.PeakQueueBytes>>10),
		)
	}
	r.Notef("baseline is point 0 (%s): the production configuration the measured fleet ran", res.Baseline().Label)
	r.Notef("peak-queue compares burst absorption headroom; under overload complete-sharing ≥ DT ≥ static-partition")
	if f := res.Points[0].Total.FailedRuns; f > 0 {
		r.Notef("%d rack-hour(s) failed to simulate per point and are excluded from the statistics", f)
	}
	return r
}

// alphaResult is the loss-vs-alpha table per baseline contention class: DT
// points with default buffer/ECN, one row per alpha, one column pair per
// class.
func alphaResult(res *Result) *experiments.Result {
	classes := classNames(res)
	header := []string{"alpha"}
	for _, c := range classes {
		header = append(header, c+" loss%", c+" Δ(pp)")
	}
	r := &experiments.Result{
		ID:     "whatif-alpha",
		Title:  "Loss vs DT alpha per contention class (§9)",
		Header: header,
	}

	baseByClass := res.Baseline().Classes
	var pts []Point
	for i := range res.Points {
		pts = append(pts, res.Points[i].Point)
	}
	for _, a := range DTAlphas(pts) {
		p := findDTPoint(res, a)
		if p == nil {
			continue
		}
		row := []string{fmt.Sprintf("%g", a)}
		for _, c := range classes {
			t := p.Classes[c]
			row = append(row,
				fmt.Sprintf("%.3f", t.LossPct()),
				fmt.Sprintf("%+.3f", t.LossPct()-baseByClass[c].LossPct()))
		}
		r.AddRow(row...)
	}
	r.Notef("classes are fixed by the baseline's busy-hour contention, so every alpha compares the same racks")
	r.Notef("paper §9: high-contention racks lose DT share to neighbors — the best alpha depends on the contention regime")
	return r
}

// classNames lists the classes seen in the baseline, in fleet.Class order.
func classNames(res *Result) []string {
	order := map[string]int{
		fleet.ClassATypical.String(): 0,
		fleet.ClassAHigh.String():    1,
		fleet.ClassB.String():        2,
	}
	var out []string
	for c := range res.Baseline().Classes {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return order[out[a]] < order[out[b]] })
	return out
}

// findDTPoint locates the default-knob DT point with the given alpha; the
// baseline stands in for alpha 1.
func findDTPoint(res *Result, alpha float64) *PointResult {
	for i := range res.Points {
		o := res.Points[i].Override
		if o.Policy != switchsim.PolicyDT || o.ECNThreshold != 0 || o.TotalBuffer != 0 || o.DedicatedPerQueue != 0 {
			continue
		}
		a := o.Alpha
		if a == 0 {
			a = 1
		}
		if a == alpha {
			return &res.Points[i]
		}
	}
	return nil
}
