package sweep

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
)

// Progress describes one newly committed point during Run.
type Progress struct {
	// Index/Label identify the point that just committed.
	Index int
	Label string
	// Done counts committed points including ones resumed from a previous
	// invocation; Total is the grid size.
	Done, Total int
}

// Options tunes a sweep execution. Results never depend on it.
type Options struct {
	// Workers bounds total simulation parallelism (default: the fleet
	// config's worker count). The engine splits it between concurrent points
	// and racks within a point.
	Workers int
	// MaxPoints stops after that many newly computed points, leaving the
	// directory resumable — installment execution for very large grids (and
	// the test hook for interruption). Zero means run to completion.
	MaxPoints int
	// Progress, if non-nil, is called after every newly committed point
	// (from point goroutines; calls are serialized by the store's manifest
	// lock release order but not globally ordered).
	Progress func(Progress)

	// rackHook, test-only, runs before each rack of each point; an error
	// aborts the sweep mid-point, simulating a crash at an arbitrary spot.
	rackHook func(point int, region string, id int) error
}

// Run executes (or resumes) spec into dir and returns the completed sweep.
// Committed points from a previous invocation are digest-verified and
// skipped; the baseline runs first so its classification can anchor every
// counterfactual; remaining points run across Workers goroutines. A sweep
// killed at any moment — even mid-point — resumes to the byte-identical
// result, because every point is deterministic in (spec, point) and commits
// atomically. When MaxPoints leaves work behind, Run returns ErrIncomplete.
//
// Cancelling ctx aborts between rack-hours with committed points intact;
// re-running the same spec resumes from them.
func Run(ctx context.Context, dir string, spec Spec, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st, err := Create(dir, spec)
	if err != nil {
		return nil, err
	}
	base := spec.Fleet.WithDefaults()
	workers := opts.Workers
	if workers <= 0 {
		workers = base.Workers
	}
	budget := opts.MaxPoints
	if budget <= 0 {
		budget = 1 << 30
	}
	report := func(index int, label string) {
		if opts.Progress != nil {
			done, total := st.Progress()
			opts.Progress(Progress{Index: index, Label: label, Done: done, Total: total})
		}
	}
	hookFor := func(point int) func(region string, id int) error {
		if opts.rackHook == nil {
			return nil
		}
		return func(region string, id int) error { return opts.rackHook(point, region, id) }
	}
	pts := st.Points()

	// The baseline runs first, alone, at full width: its classification is
	// recorded with its commit and anchors every counterfactual's per-class
	// breakdown.
	if !st.Done(0) {
		pr, classes, err := runPoint(ctx, base, pts[0].Point, workers, nil, hookFor(0))
		if err != nil {
			return nil, err
		}
		if err := st.CommitPoint(pr, classes); err != nil {
			return nil, err
		}
		budget--
		report(0, pts[0].Label)
	}
	classes := st.Classes()
	if classes == nil {
		return nil, fmt.Errorf("sweep: %s has a committed baseline but no classification", dir)
	}

	pending := st.Pending()
	if len(pending) > budget {
		pending = pending[:budget]
	}
	if len(pending) > 0 {
		// Split the worker budget: up to Workers points in flight, each
		// simulating its racks on the remaining share. Results are identical
		// for any split; only wall-clock changes.
		pointConc := workers
		if pointConc > len(pending) {
			pointConc = len(pending)
		}
		if pointConc < 1 {
			pointConc = 1
		}
		perPoint := workers / pointConc
		if perPoint < 1 {
			perPoint = 1
		}

		var (
			mu       sync.Mutex
			firstErr error
		)
		setErr := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		aborted := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return firstErr != nil
		}
		idxc := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < pointConc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pi := range idxc {
					if aborted() || ctx.Err() != nil {
						continue
					}
					pt := pts[pi].Point
					pr, _, err := runPoint(ctx, base, pt, perPoint, classes, hookFor(pi))
					if err != nil {
						setErr(err)
						continue
					}
					if err := st.CommitPoint(pr, nil); err != nil {
						setErr(err)
						continue
					}
					report(pi, pt.Label)
				}
			}()
		}
		for _, pi := range pending {
			idxc <- pi
		}
		close(idxc)
		wg.Wait()
		if firstErr == nil {
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}

	if done, total := st.Progress(); done < total {
		return nil, fmt.Errorf("%w: %d of %d points committed (re-run the same spec to continue)",
			ErrIncomplete, done, total)
	}
	if err := st.Finalize(); err != nil {
		return nil, err
	}
	return Open(dir)
}

// rackAcc accumulates one rack's contribution to a point, owned by the
// worker goroutine simulating the rack.
type rackAcc struct {
	tally    Tally
	busyAvg  float64
	bestDist int
}

// tallyVisitor reduces a rack's raw hours into its accumulator.
type tallyVisitor struct{ acc *rackAcc }

func (v *tallyVisitor) VisitRun(hour int, sr *core.SyncRun, sc fleet.SwitchCounters, simErr error) error {
	a := v.acc
	a.tally.Runs++
	avg := 0.0
	if simErr != nil {
		// A failed rack-hour is a recorded gap, exactly as in the dataset:
		// it still competes for the busy-hour slot with zero contention.
		a.tally.FailedRuns++
	} else {
		var t Tally
		t, avg = tallyRun(sr, sc)
		a.tally.add(t)
	}
	// Busy-hour pick mirrors the dataset's classification input: the run
	// closest to fleet.BusyHour, first wins on distance ties (hours arrive
	// in schedule order).
	dist := hour - fleet.BusyHour
	if dist < 0 {
		dist = -dist
	}
	if dist < a.bestDist {
		a.bestDist = dist
		a.busyAvg = avg
	}
	return nil
}

func (v *tallyVisitor) Done() error { return nil }

// ComputePoint simulates one grid point of a sweep and returns its result —
// the unit of work a distributed worker computes. classes must be the
// baseline classification for every non-baseline point and nil exactly for
// the baseline, which classifies the racks itself and returns the mapping.
// The result is deterministic in (base, pt, classes); workers only sets
// simulation parallelism.
func ComputePoint(ctx context.Context, base fleet.Config, pt Point, workers int, classes map[string]string) (*PointResult, map[string]string, error) {
	return runPoint(ctx, base, pt, workers, classes, nil)
}

// runPoint simulates every rack-hour of the fleet under one override and
// folds the result per rack in BuildRacks order, so the PointResult is
// byte-identical for any worker count. classes is nil exactly for the
// baseline, which classifies the racks itself and returns the mapping.
func runPoint(ctx context.Context, base fleet.Config, pt Point, workers int, classes map[string]string, hook func(region string, id int) error) (*PointResult, map[string]string, error) {
	cfg := base
	cfg.Switch = pt.Override
	cfg.Workers = workers
	racks := fleet.BuildRacks(cfg)

	slots := make([]rackAcc, len(racks))
	idx := make(map[string]int, len(racks))
	for i := range racks {
		slots[i].bestDist = 1 << 30
		idx[rackKey(racks[i].Region, racks[i].ID)] = i
	}
	err := fleet.VisitStream(ctx, cfg, fleet.VisitOpts{
		Start: func(spec *fleet.RackSpec) (fleet.RackVisitor, error) {
			if hook != nil {
				if err := hook(spec.Region, spec.ID); err != nil {
					return nil, err
				}
			}
			return &tallyVisitor{acc: &slots[idx[rackKey(spec.Region, spec.ID)]]}, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}

	var outClasses map[string]string
	if classes == nil {
		// Baseline: classify racks from measured busy-hour contention with
		// the exact rule the dataset pipeline uses.
		metas := make([]fleet.RackMeta, len(racks))
		for i := range racks {
			metas[i] = fleet.RackMeta{
				Region:            racks[i].Region,
				ID:                racks[i].ID,
				BusyAvgContention: slots[i].busyAvg,
			}
		}
		fleet.ClassifyMetas(metas)
		outClasses = make(map[string]string, len(metas))
		for i := range metas {
			outClasses[rackKey(metas[i].Region, metas[i].ID)] = metas[i].Class.String()
		}
		classes = outClasses
	}

	pr := &PointResult{Point: pt, Classes: map[string]Tally{}}
	for i := range racks {
		key := rackKey(racks[i].Region, racks[i].ID)
		cls, ok := classes[key]
		if !ok {
			return nil, nil, fmt.Errorf("sweep: rack %s missing from the baseline classification", key)
		}
		pr.Total.add(slots[i].tally)
		ct := pr.Classes[cls]
		ct.add(slots[i].tally)
		pr.Classes[cls] = ct
	}
	return pr, outClasses, nil
}
