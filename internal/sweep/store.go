package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"repro/internal/fleet"
	"repro/internal/fsutil"
)

// manifestName is the manifest file within a sweep result directory.
const manifestName = "sweep.json"

// pointFileName returns the canonical result file name for a grid point.
func pointFileName(index int) string { return fmt.Sprintf("point-%03d.json", index) }

// rackKey identifies a rack in the Classes map.
func rackKey(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }

// Manifest is the result directory's table of contents. Like the dataset
// manifest it is atomically replaced on every update, so a killed sweep
// leaves either the pre- or post-commit state, never a torn file.
type Manifest struct {
	FormatVersion int
	// Name echoes the spec's label.
	Name string `json:",omitempty"`
	// Fleet is the normalized base generation configuration (defaults
	// resolved, Workers cleared — scheduling never affects results).
	Fleet fleet.Config
	// Points lists the expanded grid in index order, present from the moment
	// the directory is created so progress is always done/total.
	Points []PointEntry
	// Classes maps rack keys ("RegA/3") to baseline contention-class names,
	// recorded atomically with the baseline point's commit; every
	// counterfactual point aggregates by these same classes.
	Classes map[string]string `json:",omitempty"`
	// Complete is set by Finalize once every point is committed.
	Complete bool
	// ResultDigest is the sha256 over all point digests in index order — the
	// one-line fingerprint two sweeps can be compared by.
	ResultDigest string `json:",omitempty"`
}

// PointEntry tracks one grid point's execution state.
type PointEntry struct {
	Point
	// File is the point result's name within the directory.
	File string
	// Digest is the sha256 hex of the point file's bytes; resume and read
	// paths verify it before trusting the result.
	Digest string `json:",omitempty"`
	Complete bool
}

// Store manages a (resumable) sweep result directory. It is safe for
// concurrent point commits; manifest updates are serialized internally.
type Store struct {
	dir string

	mu  sync.Mutex
	man *Manifest
}

// Create opens dir for (resumed) execution of spec. A fresh directory gets a
// manifest listing every expanded point; an existing one is validated — the
// stored fleet config, seed, and point grid must match the spec's, completed
// points are digest-verified (corrupt or missing ones are demoted to pending
// so they re-run), and stale temp files are removed. A mismatch returns
// ErrSpecMismatch rather than mixing points from different sweeps.
func Create(dir string, spec Spec) (*Store, error) {
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	norm := normalizeFleet(spec.Fleet)

	var man *Manifest
	if IsDir(dir) {
		man, err = readManifest(dir)
		if err != nil {
			return nil, err
		}
		if err := matchSpec(man, norm, pts); err != nil {
			return nil, err
		}
	} else {
		man = &Manifest{FormatVersion: FormatVersion, Name: spec.Name, Fleet: norm}
		for _, p := range pts {
			man.Points = append(man.Points, PointEntry{Point: p, File: pointFileName(p.Index)})
		}
	}

	st := &Store{dir: dir, man: man}
	if err := st.sweepDir(); err != nil {
		return nil, err
	}
	// A resumed directory is no longer complete until Finalize runs again
	// (it may have just demoted corrupt points).
	st.man.Complete = st.man.Complete && st.pendingLocked() == 0
	if err := st.writeManifest(); err != nil {
		return nil, err
	}
	return st, nil
}

// matchSpec refuses to resume over a directory started from a different
// spec: the fleet config (seed included) and the expanded grid must agree.
func matchSpec(man *Manifest, norm fleet.Config, pts []Point) error {
	if !reflect.DeepEqual(man.Fleet, norm) {
		return fmt.Errorf("%w: directory was started with seed %d / %d racks x %d servers x %d hours x %d buckets; spec has seed %d / %d racks x %d servers x %d hours x %d buckets",
			ErrSpecMismatch,
			man.Fleet.Seed, man.Fleet.RacksPerRegion, man.Fleet.ServersPerRack, len(man.Fleet.Hours), man.Fleet.Buckets,
			norm.Seed, norm.RacksPerRegion, norm.ServersPerRack, len(norm.Hours), norm.Buckets)
	}
	if len(man.Points) != len(pts) {
		return fmt.Errorf("%w: directory has %d grid points, spec expands to %d",
			ErrSpecMismatch, len(man.Points), len(pts))
	}
	for i := range pts {
		if man.Points[i].Point != pts[i] {
			return fmt.Errorf("%w: point %d is %s in the directory but %s in the spec",
				ErrSpecMismatch, i, man.Points[i].Label, pts[i].Label)
		}
	}
	return nil
}

// sweepDir removes stale temp files and demotes completed points whose file
// is missing or fails digest verification.
func (st *Store) sweepDir() error {
	if err := fsutil.RemoveTempFiles(st.dir); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	for i := range st.man.Points {
		p := &st.man.Points[i]
		if !p.Complete {
			continue
		}
		if err := verifyPointFile(filepath.Join(st.dir, p.File), p.Digest); err != nil {
			// Re-run rather than trust it; the point regenerates
			// deterministically.
			os.Remove(filepath.Join(st.dir, p.File))
			p.Digest = ""
			p.Complete = false
		}
	}
	return nil
}

// verifyPointFile checks that a point file hashes to the recorded digest.
func verifyPointFile(path, digest string) error {
	got, err := fsutil.FileSHA256(path)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptPoint, err)
	}
	if got != digest {
		return fmt.Errorf("%w: %s digests %s, manifest records %s", ErrCorruptPoint, path, got, digest)
	}
	return nil
}

// Dir returns the store's result directory.
func (st *Store) Dir() string { return st.dir }

// Done reports whether a point is already committed.
func (st *Store) Done(index int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return index < len(st.man.Points) && st.man.Points[index].Complete
}

// Pending returns the indices of uncommitted points in grid order.
func (st *Store) Pending() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []int
	for i := range st.man.Points {
		if !st.man.Points[i].Complete {
			out = append(out, i)
		}
	}
	return out
}

// Progress returns committed and total point counts.
func (st *Store) Progress() (done, total int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.man.Points) - st.pendingLocked(), len(st.man.Points)
}

func (st *Store) pendingLocked() int {
	n := 0
	for i := range st.man.Points {
		if !st.man.Points[i].Complete {
			n++
		}
	}
	return n
}

// Classes returns the baseline classification, or nil while the baseline
// point is pending.
func (st *Store) Classes() map[string]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.Classes
}

// Points returns a copy of the grid entries.
func (st *Store) Points() []PointEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]PointEntry(nil), st.man.Points...)
}

// CommitPoint writes a point's result file (temp + rename) and marks it
// complete in the manifest with its digest. classes, non-nil only for the
// baseline point, is recorded in the same manifest update, so a crash can
// never leave a committed baseline without its classification.
func (st *Store) CommitPoint(pr *PointResult, classes map[string]string) error {
	_, err := st.commitPoint(pr, classes, false)
	return err
}

// CommitPointIfNew is the idempotent commit distributed result delivery
// rides on: a point already committed is left untouched (committed=false,
// nil error), so duplicated or replayed uploads can never alter the result
// directory — the first valid commit wins, byte for byte.
func (st *Store) CommitPointIfNew(pr *PointResult, classes map[string]string) (committed bool, err error) {
	return st.commitPoint(pr, classes, true)
}

func (st *Store) commitPoint(pr *PointResult, classes map[string]string, skipDone bool) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if pr.Index < 0 || pr.Index >= len(st.man.Points) {
		return false, fmt.Errorf("sweep: point %d not in manifest", pr.Index)
	}
	if skipDone && st.man.Points[pr.Index].Complete {
		return false, nil
	}
	entry := &st.man.Points[pr.Index]
	if err := fsutil.WriteJSONAtomic(st.dir, entry.File, pr); err != nil {
		return false, fmt.Errorf("sweep: %w", err)
	}
	digest, err := fsutil.FileSHA256(filepath.Join(st.dir, entry.File))
	if err != nil {
		return false, fmt.Errorf("sweep: %w", err)
	}
	entry.Digest = digest
	entry.Complete = true
	if classes != nil {
		st.man.Classes = classes
	}
	if err := st.writeManifest(); err != nil {
		return false, err
	}
	return true, nil
}

// Finalize seals the sweep: it refuses while points are pending, then
// records the result digest and marks the manifest complete.
func (st *Store) Finalize() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := st.pendingLocked(); n > 0 {
		return fmt.Errorf("%w: %d of %d points pending", ErrIncomplete, n, len(st.man.Points))
	}
	h := sha256.New()
	for i := range st.man.Points {
		fmt.Fprintf(h, "%03d:%s\n", st.man.Points[i].Index, st.man.Points[i].Digest)
	}
	st.man.ResultDigest = hex.EncodeToString(h.Sum(nil))
	st.man.Complete = true
	return st.writeManifest()
}

func (st *Store) writeManifest() error {
	if err := fsutil.WriteJSONAtomic(st.dir, manifestName, st.man); err != nil {
		return fmt.Errorf("sweep: manifest: %w", err)
	}
	return nil
}

// Inspect reads a sweep directory's manifest without loading or verifying
// any point results — the cheap status view dsinspect and the query
// service's catalog use. Unlike Open it succeeds on an incomplete sweep;
// callers decide what an unfinished grid means for them.
func Inspect(dir string) (*Manifest, error) {
	return readManifest(dir)
}

// Progress returns a manifest's committed and total point counts.
func (m *Manifest) Progress() (done, total int) {
	for i := range m.Points {
		if m.Points[i].Complete {
			done++
		}
	}
	return done, len(m.Points)
}

// IsDir reports whether path holds a sweep result directory (a sweep.json).
func IsDir(path string) bool {
	fi, err := os.Stat(filepath.Join(path, manifestName))
	return err == nil && fi.Mode().IsRegular()
}

// readManifest loads and sanity-checks a directory's manifest.
func readManifest(dir string) (*Manifest, error) {
	var m Manifest
	if err := fsutil.ReadJSON(filepath.Join(dir, manifestName), &m); err != nil {
		return nil, fmt.Errorf("sweep: manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("sweep: %s has format version %d, this build reads %d",
			dir, m.FormatVersion, FormatVersion)
	}
	return &m, nil
}

// Result is a completed sweep loaded back from disk.
type Result struct {
	Dir      string
	Manifest *Manifest
	// Points holds every point's result in grid order; Points[0] is the
	// baseline.
	Points []PointResult
}

// Baseline returns the comparison anchor (point 0).
func (r *Result) Baseline() *PointResult { return &r.Points[0] }

// Open loads a completed sweep, verifying every point file against its
// recorded digest. An unfinished sweep returns ErrIncomplete — re-run
// cmd/sweep with the same spec to resume it.
func Open(dir string) (*Result, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !man.Complete {
		done := 0
		for i := range man.Points {
			if man.Points[i].Complete {
				done++
			}
		}
		return nil, fmt.Errorf("%w: %s has %d of %d points", ErrIncomplete, dir, done, len(man.Points))
	}
	res := &Result{Dir: dir, Manifest: man, Points: make([]PointResult, len(man.Points))}
	for i := range man.Points {
		path := filepath.Join(dir, man.Points[i].File)
		if err := verifyPointFile(path, man.Points[i].Digest); err != nil {
			return nil, err
		}
		if err := fsutil.ReadJSON(path, &res.Points[i]); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	return res, nil
}
