// Package sweep is the fleet-scale what-if engine: it re-runs the simulated
// fleet's rack-hours under a declarative grid of counterfactual ToR
// configurations (sharing policy × DT alpha × ECN threshold × buffer sizing)
// and compares every point against the measured baseline (dynamic thresholds,
// alpha 1). This is the prescriptive half of the paper's §9: because
// contention shrinks every queue's DT share, the right sharing parameters
// depend on a rack's contention regime — the sweep quantifies how much, per
// contention class, without new measurement infrastructure.
//
// A Spec (JSON) expands to a deterministic point grid; Run executes it into a
// resumable result directory in the style of the sharded dataset: per-point
// JSON results with sha256 digests tracked by an atomically updated manifest,
// so a killed sweep resumes where it stopped, completed points are verified
// and skipped, and a spec or seed mismatch is refused rather than mixed.
package sweep

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/switchsim"
)

// FormatVersion is bumped on any incompatible change to the manifest or
// point encoding.
const FormatVersion = 1

// ErrSpecMismatch matches (via errors.Is) an attempt to resume a result
// directory with a different spec or seed than it was started with.
var ErrSpecMismatch = errors.New("sweep: spec mismatch")

// ErrIncomplete matches an attempt to read a sweep whose execution has not
// finished; re-run cmd/sweep with the same spec to resume it.
var ErrIncomplete = errors.New("sweep: execution incomplete")

// ErrCorruptPoint matches a point file whose contents do not hash to the
// digest recorded in the manifest.
var ErrCorruptPoint = errors.New("sweep: corrupt point")

// Spec declares a counterfactual sweep: the fleet to re-run and the grid of
// switch configurations to re-run it under. The JSON form is what cmd/sweep
// reads; zero/absent axes collapse to the production default for that knob.
type Spec struct {
	// Name labels the sweep in progress output and reports.
	Name string `json:"name,omitempty"`
	// Fleet is the base generation configuration (racks, hours, buckets,
	// seed). Its Switch override must be zero — the grid owns that axis —
	// and Workers is a scheduling knob that never affects results.
	Fleet fleet.Config `json:"fleet"`
	// Policies lists the sharing disciplines to sweep, by name ("dt",
	// "static", "complete", "bshare", "abm"). Empty means DT only.
	Policies []switchsim.Policy `json:"policies,omitempty"`
	// Alphas lists threshold-scaling parameters to sweep. Only meaningful
	// under PolicyDT and PolicyABM; the other policies ignore alpha and get
	// one point each. Empty means {1}.
	Alphas []float64 `json:"alphas,omitempty"`
	// ECNThresholds lists static marking thresholds in bytes (0 = default
	// 120 KB, switchsim.ECNOff = marking disabled). Empty means {default}.
	ECNThresholds []int `json:"ecn_thresholds,omitempty"`
	// BShareDelays lists BShare delay budgets. Only meaningful under
	// PolicyBShare; empty means {default 200 us}.
	BShareDelays []sim.Time `json:"bshare_delays,omitempty"`
	// TotalBuffers lists buffer sizes in bytes (0 = default 16 MB).
	TotalBuffers []int `json:"total_buffers,omitempty"`
	// DedicatedPerQueue lists per-queue reserves in bytes (0 = derived
	// default).
	DedicatedPerQueue []int `json:"dedicated_per_queue,omitempty"`
}

// Point is one grid entry: the override applied to the base fleet config.
type Point struct {
	// Index is the point's position in the expanded grid; point 0 is always
	// the baseline (zero override).
	Index int `json:"index"`
	// Override is the counterfactual switch configuration.
	Override fleet.SwitchOverride `json:"override"`
	// Label is the override rendered for tables and progress lines.
	Label string `json:"label"`
}

// Baseline is the zero override every sweep compares against: the production
// configuration (DT, alpha 1) the measured fleet ran.
var Baseline = fleet.SwitchOverride{}

// Expand derives the deterministic point grid. The baseline is always point
// 0 (inserted if the grid doesn't produce it); duplicate grid entries
// collapse to their first occurrence; every point is validated against the
// fleet's rack size so an impossible configuration fails here, before any
// rack-hour is simulated.
func (s Spec) Expand() ([]Point, error) {
	norm := s.Fleet.WithDefaults()
	if !s.Fleet.Switch.IsZero() {
		return nil, fmt.Errorf("sweep: the spec's fleet config must not set Switch (the grid owns that axis)")
	}
	if err := norm.Validate(); err != nil {
		return nil, err
	}

	policies := s.Policies
	if len(policies) == 0 {
		policies = []switchsim.Policy{switchsim.PolicyDT}
	}
	alphas := s.Alphas
	if len(alphas) == 0 {
		alphas = []float64{1}
	}
	ecns := orZero(s.ECNThresholds)
	bufs := orZero(s.TotalBuffers)
	deds := orZero(s.DedicatedPerQueue)
	delays := s.BShareDelays
	if len(delays) == 0 {
		delays = []sim.Time{0}
	}

	var overrides []fleet.SwitchOverride
	seen := map[fleet.SwitchOverride]bool{}
	add := func(o fleet.SwitchOverride) {
		o = canonical(o)
		if !seen[o] {
			seen[o] = true
			overrides = append(overrides, o)
		}
	}
	// Baseline first, so point 0 is always the comparison anchor.
	add(Baseline)
	for _, pol := range policies {
		for _, buf := range bufs {
			for _, ded := range deds {
				for _, ecn := range ecns {
					switch pol {
					case switchsim.PolicyDT, switchsim.PolicyABM:
						for _, a := range alphas {
							add(fleet.SwitchOverride{
								Policy: pol, Alpha: a,
								ECNThreshold: ecn, TotalBuffer: buf, DedicatedPerQueue: ded,
							})
						}
					case switchsim.PolicyBShare:
						for _, d := range delays {
							add(fleet.SwitchOverride{
								Policy: pol, BShareDelay: d,
								ECNThreshold: ecn, TotalBuffer: buf, DedicatedPerQueue: ded,
							})
						}
					default:
						// Neither alpha nor the delay budget applies; one
						// point per combo.
						add(fleet.SwitchOverride{
							Policy:       pol,
							ECNThreshold: ecn, TotalBuffer: buf, DedicatedPerQueue: ded,
						})
					}
				}
			}
		}
	}

	pts := make([]Point, len(overrides))
	for i, o := range overrides {
		if err := o.Validate(norm.ServersPerRack); err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, o, err)
		}
		pts[i] = Point{Index: i, Override: o, Label: o.String()}
	}
	return pts, nil
}

// canonical collapses override spellings that configure the identical
// switch: alpha 1 is the DT/ABM default, so {PolicyDT, Alpha: 1} with no
// other knobs IS the baseline and must dedupe with it; knobs a policy
// ignores (alpha outside DT/ABM, the BShare delay outside BShare) are
// cleared so spelling them can't split one configuration into two points.
func canonical(o fleet.SwitchOverride) fleet.SwitchOverride {
	switch o.Policy {
	case switchsim.PolicyDT, switchsim.PolicyABM:
		if o.Alpha == 1 {
			o.Alpha = 0
		}
	default:
		o.Alpha = 0
	}
	if o.Policy != switchsim.PolicyBShare || o.BShareDelay == switchsim.DefaultBShareDelayTarget {
		o.BShareDelay = 0
	}
	return o
}

// orZero substitutes the one-element "default" axis for an empty one.
func orZero(vs []int) []int {
	if len(vs) == 0 {
		return []int{0}
	}
	return vs
}

// normalizeFleet is the manifest form of the spec's fleet config: defaults
// resolved, scheduling-only fields cleared so they never block a resume.
func normalizeFleet(cfg fleet.Config) fleet.Config {
	n := cfg.WithDefaults()
	n.Workers = 0
	return n
}

// DTAlphas returns the distinct alphas of the sweep's default-knob DT points
// in ascending order — the x axis of the loss-vs-alpha report.
func DTAlphas(pts []Point) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range pts {
		o := p.Override
		if o.Policy != switchsim.PolicyDT || o.ECNThreshold != 0 || o.TotalBuffer != 0 || o.DedicatedPerQueue != 0 {
			continue
		}
		a := o.Alpha
		if a == 0 {
			a = 1
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Float64s(out)
	return out
}
