package sweep

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fleet"
)

// Tally accumulates the counterfactual outputs of a set of rack-hours. All
// fields but SumAvgContention are order-independent sums (or a max), and the
// engine folds per-rack tallies in the fixed BuildRacks order, so a tally is
// byte-deterministic regardless of worker count and scheduling.
type Tally struct {
	// Runs counts rack-hours; FailedRuns how many failed to simulate (the
	// rest collected an aligned window).
	Runs       int `json:"runs"`
	FailedRuns int `json:"failed_runs,omitempty"`

	// Switch counter movement across the sampled windows.
	EnqueuedBytes  int64 `json:"enqueued_bytes"`
	DiscardBytes   int64 `json:"discard_bytes"`
	DiscardSegs    int64 `json:"discard_segs"`
	ECNMarkedBytes int64 `json:"ecn_marked_bytes"`
	ECNMarkedSegs  int64 `json:"ecn_marked_segs"`
	DequeuedBytes  int64 `json:"dequeued_bytes"`

	// Burst decomposition of the raw runs. A burst is truncated when it was
	// still in flight at its server's last valid sample — the window closed
	// mid-burst, so its length and volume are lower bounds.
	Bursts          int64 `json:"bursts"`
	LossyBursts     int64 `json:"lossy_bursts"`
	TruncatedBursts int64 `json:"truncated_bursts"`

	// PeakQueueBytes is the highest single-queue occupancy any rack-hour
	// reached — the burst-absorption headroom figure that separates the
	// sharing policies.
	PeakQueueBytes int `json:"peak_queue_bytes"`

	// SumAvgContention sums each collected run's average contention; divide
	// by collected runs for the mean.
	SumAvgContention float64 `json:"sum_avg_contention"`
}

// add folds another tally in (sums, except the peak which is a max).
func (t *Tally) add(o Tally) {
	t.Runs += o.Runs
	t.FailedRuns += o.FailedRuns
	t.EnqueuedBytes += o.EnqueuedBytes
	t.DiscardBytes += o.DiscardBytes
	t.DiscardSegs += o.DiscardSegs
	t.ECNMarkedBytes += o.ECNMarkedBytes
	t.ECNMarkedSegs += o.ECNMarkedSegs
	t.DequeuedBytes += o.DequeuedBytes
	t.Bursts += o.Bursts
	t.LossyBursts += o.LossyBursts
	t.TruncatedBursts += o.TruncatedBursts
	if o.PeakQueueBytes > t.PeakQueueBytes {
		t.PeakQueueBytes = o.PeakQueueBytes
	}
	t.SumAvgContention += o.SumAvgContention
}

// LossPct is discarded bytes as a percentage of bytes offered to the rack's
// downlink queues.
func (t Tally) LossPct() float64 {
	offered := t.EnqueuedBytes + t.DiscardBytes
	if offered == 0 {
		return 0
	}
	return 100 * float64(t.DiscardBytes) / float64(offered)
}

// ECNPct is ECN-marked bytes as a percentage of enqueued bytes.
func (t Tally) ECNPct() float64 {
	if t.EnqueuedBytes == 0 {
		return 0
	}
	return 100 * float64(t.ECNMarkedBytes) / float64(t.EnqueuedBytes)
}

// LossyBurstPct is the share of bursts that saw loss.
func (t Tally) LossyBurstPct() float64 {
	if t.Bursts == 0 {
		return 0
	}
	return 100 * float64(t.LossyBursts) / float64(t.Bursts)
}

// TruncatedBurstPct is the share of bursts cut off by the window edge.
func (t Tally) TruncatedBurstPct() float64 {
	if t.Bursts == 0 {
		return 0
	}
	return 100 * float64(t.TruncatedBursts) / float64(t.Bursts)
}

// AvgContention is the mean per-run average contention.
func (t Tally) AvgContention() float64 {
	collected := t.Runs - t.FailedRuns
	if collected == 0 {
		return 0
	}
	return t.SumAvgContention / float64(collected)
}

// PointResult is one executed grid point: the override plus its aggregated
// metrics, fleet-wide and per baseline contention class. Class keys are
// fleet.Class names; classification always comes from the baseline point, so
// a rack stays in the same class across every counterfactual and the deltas
// compare like with like.
type PointResult struct {
	Point
	Total   Tally            `json:"total"`
	Classes map[string]Tally `json:"classes"`
}

// tallyRun reduces one collected rack-hour to its tally (Runs/FailedRuns are
// the caller's concern) plus the run's average contention.
func tallyRun(sr *core.SyncRun, sc fleet.SwitchCounters) (Tally, float64) {
	ra := analysis.Analyze(sr, analysis.DefaultOptions())
	d := sc.Delta()
	t := Tally{
		EnqueuedBytes:  d.EnqueuedBytes,
		DiscardBytes:   d.DiscardBytes,
		DiscardSegs:    d.DiscardSegments,
		ECNMarkedBytes: d.ECNMarkedBytes,
		ECNMarkedSegs:  d.ECNMarkedSegs,
		DequeuedBytes:  d.DequeuedBytes,
		PeakQueueBytes: sc.PeakQueueBytes,
	}
	for _, b := range ra.Bursts {
		t.Bursts++
		if b.Lossy {
			t.LossyBursts++
		}
		if b.End >= ra.Servers[b.Server].ValidSamples {
			t.TruncatedBursts++
		}
	}
	avg := ra.AvgContention()
	t.SumAvgContention = avg
	return t, avg
}
