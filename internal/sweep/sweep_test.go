package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fleet"
	"repro/internal/switchsim"
)

// tinyFleet is the smallest fleet that still has two regions and a busy
// hour: 1 rack per region, 12 servers, one sampled hour, short windows.
func tinyFleet(seed uint64) fleet.Config {
	return fleet.Config{
		Seed:           seed,
		RacksPerRegion: 1,
		ServersPerRack: 12,
		Hours:          []int{6},
		Buckets:        200,
		Workers:        2,
	}
}

// tinySpec expands to 3 points: baseline, DT alpha 2, complete-sharing.
func tinySpec(seed uint64) Spec {
	return Spec{
		Name:     "tiny",
		Fleet:    tinyFleet(seed),
		Policies: []switchsim.Policy{switchsim.PolicyDT, switchsim.PolicyComplete},
		Alphas:   []float64{1, 2},
	}
}

func TestExpandGrid(t *testing.T) {
	pts, err := tinySpec(7).Expand()
	if err != nil {
		t.Fatal(err)
	}
	// DT alpha 1 with no other knobs IS the baseline, so the grid dedupes to
	// {baseline, dt a=2, complete}.
	if len(pts) != 3 {
		t.Fatalf("expanded to %d points: %+v", len(pts), pts)
	}
	if !pts[0].Override.IsZero() {
		t.Errorf("point 0 is %s, want baseline", pts[0].Label)
	}
	if pts[1].Override.Alpha != 2 {
		t.Errorf("point 1 is %s, want dt a=2", pts[1].Label)
	}
	if pts[2].Override.Policy != switchsim.PolicyComplete {
		t.Errorf("point 2 is %s, want complete-sharing", pts[2].Label)
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
	}
}

func TestExpandRejectsInvalidPoints(t *testing.T) {
	s := tinySpec(7)
	s.Policies = []switchsim.Policy{switchsim.Policy(9)}
	if _, err := s.Expand(); err == nil {
		t.Error("unknown policy not rejected")
	}
	s = tinySpec(7)
	s.Alphas = []float64{-3}
	if _, err := s.Expand(); err == nil {
		t.Error("negative alpha not rejected")
	}
	s = tinySpec(7)
	s.ECNThresholds = []int{64 << 20}
	if _, err := s.Expand(); err == nil {
		t.Error("out-of-buffer ECN threshold not rejected")
	}
	s = tinySpec(7)
	s.Fleet.Switch = fleet.SwitchOverride{Alpha: 2}
	if _, err := s.Expand(); err == nil {
		t.Error("fleet-level Switch override not rejected")
	}
}

func TestExpandGridAxes(t *testing.T) {
	s := Spec{
		Fleet:         tinyFleet(7),
		Policies:      []switchsim.Policy{switchsim.PolicyDT, switchsim.PolicyStatic},
		Alphas:        []float64{0.5, 1, 2},
		ECNThresholds: []int{0, 60 << 10},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// DT: 3 alphas × 2 ECN (one collapsing into the baseline) = 5 + baseline;
	// static ignores alpha: 2 ECN points. Total 6 + 2 = 8.
	if len(pts) != 8 {
		for _, p := range pts {
			t.Logf("  %d: %s", p.Index, p.Label)
		}
		t.Fatalf("expanded to %d points, want 8", len(pts))
	}
}

// runDigest executes the spec into dir and returns the result digest.
func runDigest(t *testing.T, dir string, s Spec, opts Options) string {
	t.Helper()
	res, err := Run(context.Background(), dir, s, opts)
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	if res.Manifest.ResultDigest == "" {
		t.Fatalf("Run(%s): empty result digest", dir)
	}
	return res.Manifest.ResultDigest
}

func TestSweepDeterminism(t *testing.T) {
	s := tinySpec(11)
	d1 := runDigest(t, filepath.Join(t.TempDir(), "a"), s, Options{Workers: 2})
	// Different worker split, fresh directory: identical digest.
	d2 := runDigest(t, filepath.Join(t.TempDir(), "b"), s, Options{Workers: 1})
	if d1 != d2 {
		t.Errorf("digests differ across worker counts: %s vs %s", d1, d2)
	}
	// A different seed is a different sweep.
	d3 := runDigest(t, filepath.Join(t.TempDir(), "c"), tinySpec(12), Options{Workers: 2})
	if d3 == d1 {
		t.Error("different seeds produced the same digest")
	}
}

func TestInterruptedResumeIsByteIdentical(t *testing.T) {
	s := tinySpec(13)
	clean := filepath.Join(t.TempDir(), "clean")
	want := runDigest(t, clean, s, Options{Workers: 2})

	// Crash mid-sweep: abort after two racks have started (inside a point),
	// leaving a stray temp file like a SIGKILL would.
	dir := filepath.Join(t.TempDir(), "resumed")
	var started int32
	_, err := Run(context.Background(), dir, s, Options{Workers: 2, rackHook: func(point int, region string, id int) error {
		if atomic.AddInt32(&started, 1) > 2 {
			return fmt.Errorf("injected crash")
		}
		return nil
	}})
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("interrupted run returned %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-point-017.json-x"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Open on interrupted dir returned %v, want ErrIncomplete", err)
	}

	got := runDigest(t, dir, s, Options{Workers: 2})
	if got != want {
		t.Errorf("resumed digest %s != uninterrupted %s", got, want)
	}
	// Byte-identical point files, not just matching digests.
	for _, name := range []string{"point-000.json", "point-001.json", "point-002.json"} {
		a, err := os.ReadFile(filepath.Join(clean, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between clean and resumed runs", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-point-017.json-x")); !os.IsNotExist(err) {
		t.Error("stale temp file survived the resume")
	}
}

func TestMaxPointsInstallments(t *testing.T) {
	s := tinySpec(17)
	clean := runDigest(t, filepath.Join(t.TempDir(), "clean"), s, Options{Workers: 2})

	dir := filepath.Join(t.TempDir(), "installments")
	if _, err := Run(context.Background(), dir, s, Options{Workers: 2, MaxPoints: 2}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("MaxPoints run returned %v, want ErrIncomplete", err)
	}
	st, err := Create(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if done, total := st.Progress(); done != 2 || total != 3 {
		t.Fatalf("after installment: %d/%d points, want 2/3", done, total)
	}
	if got := runDigest(t, dir, s, Options{Workers: 2}); got != clean {
		t.Errorf("installment digest %s != uninterrupted %s", got, clean)
	}
}

func TestResumeRefusesMismatchedSpec(t *testing.T) {
	s := tinySpec(19)
	dir := filepath.Join(t.TempDir(), "sw")
	if _, err := Run(context.Background(), dir, s, Options{Workers: 2, MaxPoints: 1}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("seed run returned %v", err)
	}
	other := s
	other.Fleet.Seed = 99
	if _, err := Create(dir, other); !errors.Is(err, ErrSpecMismatch) {
		t.Errorf("different seed accepted: %v", err)
	}
	other = s
	other.Alphas = []float64{1, 2, 4}
	if _, err := Create(dir, other); !errors.Is(err, ErrSpecMismatch) {
		t.Errorf("different grid accepted: %v", err)
	}
	// The identical spec resumes fine, Workers aside.
	same := s
	same.Fleet.Workers = 7
	if _, err := Create(dir, same); err != nil {
		t.Errorf("same spec refused: %v", err)
	}
}

func TestCorruptPointIsRerun(t *testing.T) {
	s := tinySpec(23)
	dir := filepath.Join(t.TempDir(), "sw")
	want := runDigest(t, dir, s, Options{Workers: 2})

	// Flip a byte in a committed point; the resume must demote and re-run it.
	path := filepath.Join(dir, "point-001.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Create(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done(1) {
		t.Fatal("corrupt point still marked complete")
	}
	if got := runDigest(t, dir, s, Options{Workers: 2}); got != want {
		t.Errorf("re-run digest %s != original %s", got, want)
	}
}

func TestPolicyPeakOrdering(t *testing.T) {
	s := Spec{
		Fleet:    tinyFleet(29),
		Policies: switchsim.KnownPolicies(),
	}
	dir := filepath.Join(t.TempDir(), "sw")
	res, err := Run(context.Background(), dir, s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	peak := map[switchsim.Policy]int{}
	for i := range res.Points {
		peak[res.Points[i].Override.Policy] = res.Points[i].Total.PeakQueueBytes
	}
	// The burst-absorption ordering from switchsim's policy tests must
	// survive the fleet aggregation: complete ≥ DT ≥ static ≥ bshare.
	if !(peak[switchsim.PolicyComplete] >= peak[switchsim.PolicyDT] &&
		peak[switchsim.PolicyDT] >= peak[switchsim.PolicyStatic] &&
		peak[switchsim.PolicyStatic] >= peak[switchsim.PolicyBShare]) {
		t.Errorf("peak ordering violated: complete=%d dt=%d static=%d bshare=%d",
			peak[switchsim.PolicyComplete], peak[switchsim.PolicyDT],
			peak[switchsim.PolicyStatic], peak[switchsim.PolicyBShare])
	}

	// The report renders all three sections with one row per point / alpha /
	// policy.
	results := Report(res)
	if len(results) != 3 {
		t.Fatalf("Report returned %d results", len(results))
	}
	if got := len(results[0].Rows); got != len(res.Points) {
		t.Errorf("whatif-grid has %d rows, want %d", got, len(res.Points))
	}
	if got, want := len(results[2].Rows), len(switchsim.KnownPolicies()); got != want {
		t.Errorf("whatif-policy has %d rows, want one per policy (%d)", got, want)
	}
	var sb strings.Builder
	for _, r := range results {
		r.Render(&sb)
		r.RenderMarkdown(&sb)
	}
	for _, section := range []string{"whatif-grid", "alpha", "whatif-policy", "bshare", "abm"} {
		if !strings.Contains(sb.String(), section) {
			t.Errorf("rendered report missing %q", section)
		}
	}
}

func TestPointMetricsSanity(t *testing.T) {
	s := tinySpec(31)
	dir := filepath.Join(t.TempDir(), "sw")
	res, err := Run(context.Background(), dir, s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		p := &res.Points[i]
		if p.Total.Runs != 2 {
			t.Errorf("point %d has %d runs, want 2 (1 rack x 1 hour x 2 regions)", i, p.Total.Runs)
		}
		if p.Total.EnqueuedBytes <= 0 {
			t.Errorf("point %d enqueued nothing", i)
		}
		if p.Total.Bursts <= 0 {
			t.Errorf("point %d saw no bursts", i)
		}
		// Class tallies partition the total.
		var sum Tally
		for _, ct := range p.Classes {
			sum.Runs += ct.Runs
			sum.EnqueuedBytes += ct.EnqueuedBytes
		}
		if sum.Runs != p.Total.Runs || sum.EnqueuedBytes != p.Total.EnqueuedBytes {
			t.Errorf("point %d class tallies don't partition the total", i)
		}
	}
	// 1 RegA rack -> no high-contention quintile; classes are Typical + B.
	base := res.Baseline()
	if _, ok := base.Classes[fleet.ClassB.String()]; !ok {
		t.Error("baseline has no RegB class tally")
	}
}
