package sweep

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentStoreReads proves the sweep result store is safe for the
// query service's access pattern under -race: many goroutines opening the
// same completed directory, inspecting its manifest, and rendering reports
// from one shared *Result.
func TestConcurrentStoreReads(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep execution is slow")
	}
	dir := t.TempDir()
	s := tinySpec(11)
	if _, err := Run(context.Background(), dir, s, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	shared, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := shared.Manifest.ResultDigest

	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			man, err := Inspect(dir)
			if err != nil {
				t.Error(err)
				return
			}
			if done, total := man.Progress(); done != total {
				t.Errorf("inspect: %d/%d points on a complete sweep", done, total)
			}
			if i%2 == 0 {
				// Fresh open per request.
				res, err := Open(dir)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Manifest.ResultDigest != want {
					t.Errorf("open %d: digest %s, want %s", i, res.Manifest.ResultDigest, want)
				}
				return
			}
			// Shared Result rendered concurrently (the cached-render path).
			results := Report(shared)
			if len(results) == 0 {
				t.Error("Report returned nothing")
			}
		}(i)
	}
	wg.Wait()
}
