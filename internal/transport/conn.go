package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Options configure a connection.
type Options struct {
	// MSS is the maximum payload per wire segment (default netsim.DefaultMSS).
	MSS int
	// CC selects the congestion controller: "dctcp" (default), "cubic",
	// "reno".
	CC string
	// InitialWindowSegs is the initial window in segments. The default of 2
	// jumbo segments (18 KB) matches Linux's IW10 at a 1460-byte MSS in
	// byte terms.
	InitialWindowSegs int
	// NoIdleRestart disables slow-start-after-idle (RFC 2861). Production
	// stacks reset the window after an idle period; without this, long-idle
	// persistent connections would dump arbitrarily large stale windows.
	NoIdleRestart bool
	// RTOMin floors the retransmission timeout (default 4 ms, a data center
	// tuned value).
	RTOMin sim.Time
	// RTOInit is the timeout before any RTT sample exists (default 10 ms).
	RTOInit sim.Time
}

func (o Options) withDefaults() Options {
	if o.MSS <= 0 {
		o.MSS = netsim.DefaultMSS
	}
	if o.CC == "" {
		o.CC = "dctcp"
	}
	if o.InitialWindowSegs <= 0 {
		o.InitialWindowSegs = 2
	}
	if o.RTOMin <= 0 {
		o.RTOMin = 4 * sim.Millisecond
	}
	if o.RTOInit <= 0 {
		o.RTOInit = 10 * sim.Millisecond
	}
	return o
}

// Validate reports whether the options (after defaults) name a known
// congestion control. Config-driven tools should call it before Connect,
// which treats an unknown CC as an invariant violation.
func (o Options) Validate() error {
	switch o.withDefaults().CC {
	case "dctcp", "cubic", "reno":
		return nil
	}
	return fmt.Errorf("transport: unknown congestion control %q", o.CC)
}

func (o Options) newCC() CongestionControl {
	if err := o.Validate(); err != nil {
		panic(err.Error())
	}
	iw := o.InitialWindowSegs * o.MSS
	switch o.CC {
	case "dctcp":
		return NewDCTCP(o.MSS, iw)
	case "cubic":
		return NewCubic(o.MSS, iw)
	case "reno":
		return NewReno(o.MSS, iw)
	}
	panic(fmt.Sprintf("transport: unknown congestion control %q", o.CC))
}

// ecnCapable reports whether the transport marks its data ECN-capable. In
// the studied fleet, in-region DCTCP traffic is ECT; inter-region Cubic is
// not (paper §3).
func (o Options) ecnCapable() bool { return o.CC == "dctcp" }

// ConnStats counts a connection's activity.
type ConnStats struct {
	SentSegs   int64
	SentBytes  int64 // payload bytes, first transmissions only
	RetxSegs   int64
	RetxBytes  int64
	FastRetx   int64 // fast-retransmit episodes
	Timeouts   int64 // RTO episodes
	AckedBytes int64
	RecvSegs   int64
	RecvBytes  int64 // payload bytes received in order
	MarkedSegs int64 // CE-marked data segments seen by the receiver
}

type segMeta struct {
	seq    int64
	size   int // payload bytes
	sentAt sim.Time
	retx   bool
}

// Conn is a unidirectional data connection (sender -> receiver) with
// bidirectional control. The side that called Connect sends data; the peer
// acknowledges. Request semantics are modeled at the workload layer.
type Conn struct {
	ep     *Endpoint
	flow   netsim.FlowKey // data-direction 4-tuple
	sender bool
	opts   Options
	cc     CongestionControl

	// Sender state. Timers are reusable handles (sim.Timer), so rearming on
	// every ACK round trip allocates nothing; the inflight window is a ring
	// that reuses its backing array across the connection's life.
	established bool
	closed      bool
	synRetries  int
	synTimer    *sim.Timer
	startedAt   sim.Time
	sndUna      int64
	sndNxt      int64
	pending     int64
	inflight    metaRing
	dupAcks     int
	inRecovery  bool
	recoverSeq  int64
	srtt        sim.Time
	rttvar      sim.Time
	rto         sim.Time
	rtoTimer    *sim.Timer

	lastActivity sim.Time

	// Receiver state.
	rcvNxt      int64
	ooo         map[int64]int64 // out-of-order spans: start -> end
	heldSegs    int             // delayed-ACK: in-order data segments held
	heldCE      bool            // CE state of the held segments
	delackTimer *sim.Timer

	// Stats accumulates counters for tests and analysis.
	Stats ConnStats

	// OnDrain, if set on the sender, fires whenever all queued data has been
	// sent and acknowledged.
	OnDrain func()
	// OnReceive, if set on the receiver, fires with each in-order payload
	// byte count delivered.
	OnReceive func(n int)
}

// Flow returns the data-direction 4-tuple.
func (c *Conn) Flow() netsim.FlowKey { return c.flow }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.established }

// CC exposes the congestion controller (read-mostly, for tests/analysis).
func (c *Conn) CC() CongestionControl { return c.cc }

// Prime drives the congestion controller to the given equilibrium window
// (see EquilibriumWindow) without simulating warmup traffic. Controllers
// without priming support are left untouched.
func (c *Conn) Prime(w int64) {
	if p, ok := c.cc.(interface{ Prime(int64) }); ok {
		p.Prime(w)
	}
}

// Pending returns queued-but-unsent payload bytes.
func (c *Conn) Pending() int64 { return c.pending }

// InflightBytes returns payload bytes sent and not yet acknowledged.
func (c *Conn) InflightBytes() int64 { return c.sndNxt - c.sndUna }

// Done reports whether all queued data has been acknowledged.
func (c *Conn) Done() bool { return c.pending == 0 && c.sndUna == c.sndNxt }

// Send queues n payload bytes for transmission.
func (c *Conn) Send(n int64) {
	if !c.sender {
		panic("transport: Send on receiver side")
	}
	if c.closed {
		return
	}
	if n <= 0 {
		return
	}
	if !c.opts.NoIdleRestart && c.established && c.inflight.Len() == 0 &&
		c.ep.eng.Now()-c.lastActivity > c.rto {
		if rs, ok := c.cc.(interface{ RestartAfterIdle() }); ok {
			rs.RestartAfterIdle()
		}
	}
	c.pending += n
	c.trySend()
}

// Close tears the connection down. Data still queued is discarded; a FIN
// notifies the peer so both sides release state.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.pending = 0
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
	}
	if c.synTimer != nil {
		c.synTimer.Stop()
	}
	if c.sender && c.established {
		seg := c.pool().Get()
		seg.Flow = c.flow
		seg.Seq = c.sndNxt
		seg.Size = netsim.HeaderBytes
		seg.Flags = netsim.FlagFIN
		c.emit(seg)
	}
	c.ep.remove(c.flow)
}

// ---- sender path ----

// pool returns the segment pool all of this connection's emissions draw from.
func (c *Conn) pool() *netsim.SegmentPool { return c.ep.host.Pool() }

func (c *Conn) sendSYN() {
	c.synRetries++
	if c.synRetries > 6 {
		c.Close()
		return
	}
	flags := netsim.FlagSYN
	if c.synRetries > 1 {
		flags |= netsim.FlagRetx
	}
	seg := c.pool().Get()
	seg.Flow = c.flow
	seg.Size = netsim.HeaderBytes
	seg.Flags = flags
	c.emit(seg)
	if c.synTimer == nil {
		c.synTimer = c.ep.eng.NewTimer(func() {
			if !c.established && !c.closed {
				c.sendSYN()
			}
		})
	}
	c.synTimer.Reset(c.rto)
}

func (c *Conn) trySend() {
	if !c.established || c.closed {
		return
	}
	if tick, ok := c.cc.(interface{ Tick(float64) }); ok {
		tick.Tick((c.ep.eng.Now() - c.startedAt).Seconds())
	}
	for c.pending > 0 {
		win := int64(c.cc.Window())
		if c.InflightBytes() >= win {
			break
		}
		size := int64(c.opts.MSS)
		if size > c.pending {
			size = c.pending
		}
		flags := netsim.Flags(0)
		if c.opts.ecnCapable() {
			flags |= netsim.FlagECT
		}
		seg := c.pool().Get()
		seg.Flow = c.flow
		seg.Seq = c.sndNxt
		seg.Size = int(size) + netsim.HeaderBytes
		seg.Flags = flags
		c.inflight.Push(segMeta{seq: c.sndNxt, size: int(size), sentAt: c.ep.eng.Now()})
		c.sndNxt += size
		c.pending -= size
		c.Stats.SentSegs++
		c.Stats.SentBytes += size
		c.lastActivity = c.ep.eng.Now()
		c.emit(seg)
	}
	c.armRTO()
}

func (c *Conn) emit(seg *netsim.Segment) {
	c.ep.host.Send(seg)
}

func (c *Conn) armRTO() {
	if c.inflight.Len() == 0 {
		if c.rtoTimer != nil {
			c.rtoTimer.Stop()
		}
		return
	}
	if c.rtoTimer == nil {
		c.rtoTimer = c.ep.eng.NewTimer(c.onRTO)
	}
	c.rtoTimer.Reset(c.rto)
}

func (c *Conn) onRTO() {
	if c.closed || c.inflight.Len() == 0 {
		return
	}
	c.Stats.Timeouts++
	c.cc.OnTimeout()
	c.dupAcks = 0
	c.inRecovery = false
	c.rto *= 2
	if max := 200 * sim.Millisecond; c.rto > max {
		c.rto = max
	}
	c.retransmit(c.inflight.Front())
	c.armRTO()
}

// retransmit resends one tracked segment with the Meta retransmit bit set:
// production instrumentation flags the next outgoing packet of a connection
// after TCP processes a timeout or fast retransmission (paper §4.2), and
// Millisampler counts those bytes as retransmitted.
func (c *Conn) retransmit(m *segMeta) {
	m.retx = true
	m.sentAt = c.ep.eng.Now()
	flags := netsim.FlagRetx
	if c.opts.ecnCapable() {
		flags |= netsim.FlagECT
	}
	c.Stats.RetxSegs++
	c.Stats.RetxBytes += int64(m.size)
	seg := c.pool().Get()
	seg.Flow = c.flow
	seg.Seq = m.seq
	seg.Size = m.size + netsim.HeaderBytes
	seg.Flags = flags
	c.emit(seg)
}

func (c *Conn) onAckSegment(seg *netsim.Segment) {
	if seg.Is(netsim.FlagSYN) { // SYN-ACK
		if !c.established {
			c.established = true
			if c.synTimer != nil {
				c.synTimer.Stop()
			}
			c.sampleRTT(c.ep.eng.Now() - c.startedAt)
			c.trySend()
		}
		return
	}
	ack := seg.Ack
	marked := seg.Is(netsim.FlagCE) // receiver echoes CE on the ACK (ECE)
	switch {
	case ack > c.sndUna:
		acked := ack - c.sndUna
		c.sndUna = ack
		c.Stats.AckedBytes += acked
		c.lastActivity = c.ep.eng.Now()
		c.dupAcks = 0
		// Pop fully covered segments; sample RTT from clean transmissions
		// (Karn's rule).
		var rttSample sim.Time = -1
		for c.inflight.Len() > 0 {
			m := c.inflight.Front()
			if m.seq+int64(m.size) > ack {
				break
			}
			if !m.retx {
				rttSample = c.ep.eng.Now() - m.sentAt
			}
			c.inflight.PopFront()
		}
		if rttSample >= 0 {
			c.sampleRTT(rttSample)
		}
		if tick, ok := c.cc.(interface{ Tick(float64) }); ok {
			tick.Tick((c.ep.eng.Now() - c.startedAt).Seconds())
		}
		c.cc.OnAck(int(acked), marked)
		if c.inRecovery {
			if ack >= c.recoverSeq {
				c.inRecovery = false
			} else if c.inflight.Len() > 0 {
				// NewReno partial ACK: the next hole is lost too.
				c.retransmit(c.inflight.Front())
			}
		}
		c.armRTO()
		c.trySend()
		if c.Done() && c.OnDrain != nil {
			c.OnDrain()
		}
	case ack == c.sndUna && c.inflight.Len() > 0:
		c.dupAcks++
		if marked {
			c.cc.OnAck(0, true)
		}
		if c.dupAcks == 3 && !c.inRecovery {
			c.fastRetransmit()
		}
	}
}

func (c *Conn) fastRetransmit() {
	c.Stats.FastRetx++
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.cc.OnLoss()
	if c.inflight.Len() > 0 {
		c.retransmit(c.inflight.Front())
	}
	c.armRTO()
}

func (c *Conn) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		diff := c.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.opts.RTOMin {
		c.rto = c.opts.RTOMin
	}
}

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// ---- receiver path ----

// delAckDelay bounds how long an acknowledgement may be deferred; production
// data center stacks use sub-millisecond delayed ACKs.
const delAckDelay = 400 * sim.Microsecond

func (c *Conn) onDataSegment(seg *netsim.Segment) {
	payload := int64(seg.Payload())
	ce := seg.Is(netsim.FlagCE)
	if ce {
		c.Stats.MarkedSegs++
	}
	c.Stats.RecvSegs++
	if payload == 0 {
		// Control (SYN): acknowledge immediately.
		c.flushDelack()
		c.sendAck(seg)
		return
	}
	end := seg.Seq + payload
	inOrder := false
	switch {
	case seg.Seq == c.rcvNxt:
		c.rcvNxt = end
		c.Stats.RecvBytes += payload
		c.drainOOO()
		inOrder = true
	case seg.Seq > c.rcvNxt:
		if c.ooo == nil {
			c.ooo = make(map[int64]int64)
		}
		if prev, ok := c.ooo[seg.Seq]; !ok || end > prev {
			c.ooo[seg.Seq] = end
		}
	default:
		// Duplicate of already received data; the immediate ACK below
		// re-informs the sender.
	}
	if c.OnReceive != nil {
		c.OnReceive(int(payload))
	}
	if !inOrder {
		// Out-of-order or duplicate data: every such segment must produce
		// an immediate (duplicate) ACK so fast retransmit can trigger.
		c.flushDelack()
		c.sendAck(seg)
		return
	}
	// In-order data: delayed ACK with the DCTCP state machine — a change in
	// CE state flushes immediately with the *previous* state's echo so the
	// sender's marked-byte accounting stays exact (RFC 8257 §3.3).
	if c.heldSegs > 0 && c.heldCE != ce {
		c.flushDelack()
	}
	c.heldSegs++
	c.heldCE = ce
	if c.heldSegs >= 2 {
		c.flushDelack()
		return
	}
	if c.delackTimer == nil {
		c.delackTimer = c.ep.eng.NewTimer(c.flushDelack)
	}
	if !c.delackTimer.Armed() {
		c.delackTimer.Reset(delAckDelay)
	}
}

// flushDelack emits the pending delayed acknowledgement, if any.
func (c *Conn) flushDelack() {
	if c.heldSegs == 0 {
		return
	}
	c.heldSegs = 0
	if c.delackTimer != nil {
		c.delackTimer.Stop()
	}
	flags := netsim.FlagACK
	if c.heldCE {
		flags |= netsim.FlagCE
	}
	seg := c.pool().Get()
	seg.Flow = c.flow.Reverse()
	seg.Ack = c.rcvNxt
	seg.Size = netsim.HeaderBytes
	seg.Flags = flags
	c.emit(seg)
}

func (c *Conn) drainOOO() {
	for {
		end, ok := c.ooo[c.rcvNxt]
		if !ok {
			return
		}
		delete(c.ooo, c.rcvNxt)
		c.Stats.RecvBytes += end - c.rcvNxt
		c.rcvNxt = end
	}
}

func (c *Conn) sendAck(trigger *netsim.Segment) {
	flags := netsim.FlagACK
	if trigger.Is(netsim.FlagSYN) {
		flags |= netsim.FlagSYN
	}
	if trigger.Is(netsim.FlagCE) {
		flags |= netsim.FlagCE // ECE echo
	}
	seg := c.pool().Get()
	seg.Flow = c.flow.Reverse()
	seg.Ack = c.rcvNxt
	seg.Size = netsim.HeaderBytes
	seg.Flags = flags
	c.emit(seg)
}
