package transport_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

func newRack(tb testing.TB, servers int) *testbed.Rack {
	tb.Helper()
	return testbed.NewRack(testbed.RackConfig{Servers: servers, Seed: 42})
}

// oneTransfer runs a single remote->server transfer of n bytes and returns
// sender and receiver connections after the engine settles.
func oneTransfer(tb testing.TB, r *testbed.Rack, n int64, cc string) (*transport.Conn, *transport.Conn) {
	tb.Helper()
	var rconn *transport.Conn
	r.ServerEPs[0].OnAccept = func(c *transport.Conn) { rconn = c }
	sconn := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{CC: cc})
	sconn.Send(n)
	r.Eng.RunUntil(2 * sim.Second)
	if rconn == nil {
		tb.Fatal("receiver connection never accepted")
	}
	return sconn, rconn
}

func TestHandshakeAndTransfer(t *testing.T) {
	r := newRack(t, 4)
	const n = 1 << 20
	sconn, rconn := oneTransfer(t, r, n, "dctcp")
	if !sconn.Established() {
		t.Fatal("handshake did not complete")
	}
	if !sconn.Done() {
		t.Fatalf("sender not drained: pending=%d inflight=%d", sconn.Pending(), sconn.InflightBytes())
	}
	if rconn.Stats.RecvBytes != n {
		t.Errorf("receiver got %d bytes, want %d", rconn.Stats.RecvBytes, n)
	}
}

func TestTransferAllCCVariants(t *testing.T) {
	for _, cc := range []string{"dctcp", "cubic", "reno"} {
		t.Run(cc, func(t *testing.T) {
			r := newRack(t, 4)
			const n = 512 << 10
			_, rconn := oneTransfer(t, r, n, cc)
			if rconn.Stats.RecvBytes != n {
				t.Errorf("%s: receiver got %d bytes, want %d", cc, rconn.Stats.RecvBytes, n)
			}
		})
	}
}

func TestThroughputNearLineRate(t *testing.T) {
	r := newRack(t, 4)
	// 2.5 MB at 12.5 Gbps is ~1.6 ms of serialization; allow generous slack
	// for handshake and congestion control ramp.
	const n = 2_500_000
	start := r.Eng.Now()
	sconn, _ := oneTransfer(t, r, n, "dctcp")
	if !sconn.Done() {
		t.Fatal("transfer incomplete")
	}
	elapsed := r.Eng.Now() - start
	_ = elapsed // engine ran to quiescence; check via goodput over sim span below
	// Re-run with explicit timing: find the drain moment.
	r2 := newRack(t, 4)
	var done sim.Time
	s2 := r2.RemoteEPs[0].Connect(r2.Servers[0].ID, 80, transport.Options{})
	s2.OnDrain = func() {
		if done == 0 {
			done = r2.Eng.Now()
		}
	}
	s2.Send(n)
	r2.Eng.RunUntil(sim.Second)
	if done == 0 {
		t.Fatal("transfer did not finish within 1s")
	}
	if done > 20*sim.Millisecond {
		t.Errorf("2.5MB took %v, expected a few ms at 12.5Gbps", done)
	}
}

func TestECNKeepsQueueBounded(t *testing.T) {
	// A single long-lived DCTCP flow against the 120 KB marking threshold
	// should keep the ToR queue in the vicinity of the threshold, far below
	// the DT cap (~1.8 MB for a lone queue).
	r := newRack(t, 4)
	sconn := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	sconn.Send(1 << 40) // effectively unbounded
	peak := 0
	var probe func()
	probe = func() {
		if q := r.Switch.QueueBytes(0); q > peak {
			peak = q
		}
		if r.Eng.Now() < 100*sim.Millisecond {
			r.Eng.After(100*sim.Microsecond, probe)
		}
	}
	r.Eng.After(0, probe)
	r.Eng.RunUntil(100 * sim.Millisecond)
	if peak == 0 {
		t.Fatal("queue never occupied")
	}
	if peak > 600<<10 {
		t.Errorf("long-lived DCTCP flow peaked queue at %d bytes; ECN not effective", peak)
	}
	d := sconn.CC().(*transport.DCTCP)
	if d.Alpha == 0 {
		t.Error("DCTCP alpha never updated despite persistent marking")
	}
}

func TestIncastCausesLossAndRetransmits(t *testing.T) {
	// Heavy incast: many senders' initial windows dwarf the lone-queue DT
	// share, so drops and the Meta retransmit bit must appear (paper §3).
	r := testbed.NewRack(testbed.RackConfig{Servers: 4, Remotes: 160, Seed: 7})
	var retxSeen bool
	f := &flagWatcher{flag: netsim.FlagRetx, seen: &retxSeen}
	r.Servers[0].AttachIngress(f)

	conns := make([]*transport.Conn, 140)
	for i := range conns {
		conns[i] = r.RemoteEPs[i].Connect(r.Servers[0].ID, 80, transport.Options{})
		conns[i].Send(256 << 10)
	}
	r.Eng.RunUntil(3 * sim.Second)

	st := r.Switch.QueueStats(0)
	if st.DiscardSegments == 0 {
		t.Fatal("48-way incast of 256KB each produced no switch discards")
	}
	var totalRetx, totalRecv int64
	for _, c := range conns {
		totalRetx += c.Stats.RetxSegs
	}
	if totalRetx == 0 {
		t.Error("discards occurred but no sender retransmitted")
	}
	if !retxSeen {
		t.Error("no ingress segment carried the retransmit bit")
	}
	// All data must eventually arrive despite loss.
	for i, c := range conns {
		if !c.Done() {
			t.Errorf("conn %d incomplete: pending=%d inflight=%d timeouts=%d",
				i, c.Pending(), c.InflightBytes(), c.Stats.Timeouts)
			break
		}
	}
	_ = totalRecv
}

func TestRetransmitBitOnlyAfterLoss(t *testing.T) {
	// A clean transfer must not set the retransmit bit.
	r := newRack(t, 4)
	var retxSeen bool
	r.Servers[0].AttachIngress(&flagWatcher{flag: netsim.FlagRetx, seen: &retxSeen})
	sconn, _ := oneTransfer(t, r, 1<<20, "dctcp")
	if sconn.Stats.RetxSegs != 0 {
		t.Errorf("clean transfer retransmitted %d segments", sconn.Stats.RetxSegs)
	}
	if retxSeen {
		t.Error("retransmit bit on a clean transfer")
	}
}

func TestRackLocalTransfer(t *testing.T) {
	// Server-to-server traffic hairpins at the ToR through the destination
	// server's queue.
	r := newRack(t, 4)
	var rconn *transport.Conn
	r.ServerEPs[1].OnAccept = func(c *transport.Conn) { rconn = c }
	sconn := r.ServerEPs[0].Connect(r.Servers[1].ID, 80, transport.Options{})
	sconn.Send(256 << 10)
	r.Eng.RunUntil(sim.Second)
	if rconn == nil || rconn.Stats.RecvBytes != 256<<10 {
		t.Fatalf("rack-local transfer failed: %+v", rconn)
	}
	if r.Switch.QueueStats(1).EnqueuedSegments == 0 {
		t.Error("rack-local traffic bypassed the destination ToR queue")
	}
}

func TestSRTTReasonable(t *testing.T) {
	r := newRack(t, 4)
	sconn, _ := oneTransfer(t, r, 1<<20, "dctcp")
	rtt := sconn.SRTT()
	// Base path: 2x fabric 10µs + serialization + switch prop. Queueing can
	// add up to ~1ms. Anything outside (5µs, 5ms) indicates a broken path.
	if rtt < 5*sim.Microsecond || rtt > 5*sim.Millisecond {
		t.Errorf("SRTT = %v, outside plausible range", rtt)
	}
}

func TestCloseReleasesState(t *testing.T) {
	r := newRack(t, 4)
	sconn, _ := oneTransfer(t, r, 64<<10, "dctcp")
	sconn.Close()
	r.Eng.RunUntil(3 * sim.Second)
	if got := r.RemoteEPs[0].ConnCount(); got != 0 {
		t.Errorf("sender endpoint still holds %d conns after close", got)
	}
	if got := r.ServerEPs[0].ConnCount(); got != 0 {
		t.Errorf("receiver endpoint still holds %d conns after close", got)
	}
}

func TestManySequentialRequests(t *testing.T) {
	// Request-response loop driven by OnDrain: each drain queues the next
	// response; the connection stays open (persistent connection pattern).
	r := newRack(t, 4)
	sconn := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	sent := 0
	sconn.OnDrain = func() {
		if sent < 20 {
			sent++
			sconn.Send(32 << 10)
		}
	}
	sconn.Send(32 << 10)
	sent++
	r.Eng.RunUntil(2 * sim.Second)
	if sent != 20 {
		t.Errorf("completed %d of 20 chained sends", sent)
	}
	if !sconn.Done() {
		t.Error("final send incomplete")
	}
}

func TestDCTCPAlphaConvergesUnderPersistentCongestion(t *testing.T) {
	d := transport.NewDCTCP(9000, 10*9000)
	// Every byte marked: alpha converges toward 1.
	for i := 0; i < 2000; i++ {
		d.OnAck(9000, true)
	}
	if d.Alpha < 0.5 {
		t.Errorf("alpha = %v after persistent marking, want near 1", d.Alpha)
	}
	// No marks: alpha decays toward 0.
	for i := 0; i < 5000; i++ {
		d.OnAck(9000, false)
	}
	if d.Alpha > 0.1 {
		t.Errorf("alpha = %v after long clean period, want near 0", d.Alpha)
	}
}

func TestRenoBasicDynamics(t *testing.T) {
	rn := transport.NewReno(1000, 10000)
	w0 := rn.Window()
	rn.OnAck(1000, false)
	if rn.Window() <= w0 {
		t.Error("slow start did not grow window")
	}
	rn.OnLoss()
	if rn.Window() >= w0+1000 {
		t.Error("loss did not shrink window")
	}
	rn.OnTimeout()
	if rn.Window() != 1000 {
		t.Errorf("timeout window = %d, want 1 MSS", rn.Window())
	}
}

func TestCubicGrowthAfterLoss(t *testing.T) {
	c := transport.NewCubic(1000, 10000)
	// Force out of slow start and through a loss.
	for i := 0; i < 100; i++ {
		c.OnAck(1000, false)
	}
	c.OnLoss()
	w := c.Window()
	// Advance connection time while acking: the cubic curve must
	// eventually exceed the post-loss plateau and grow past wMax.
	for step := 1; step <= 400; step++ {
		c.Tick(float64(step) * 0.01)
		c.OnAck(1000, false)
	}
	if c.Window() <= w {
		t.Error("cubic did not grow after loss epoch")
	}
}

func TestUnknownCCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown CC did not panic")
		}
	}()
	r := newRack(t, 4)
	r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{CC: "bbr"})
}

type flagWatcher struct {
	flag netsim.Flags
	seen *bool
}

func (w *flagWatcher) Handle(_ sim.Time, _ int, _ netsim.Direction, seg *netsim.Segment) {
	if seg.Is(w.flag) {
		*w.seen = true
	}
}
