package transport_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

func TestSYNRetryAfterHandshakeStall(t *testing.T) {
	// Overflow the destination queue so hard during connection setup that
	// some SYNs drop; every connection must still establish eventually via
	// SYN retransmission.
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Remotes: 300, Seed: 31})
	conns := make([]*transport.Conn, 300)
	for i := range conns {
		conns[i] = r.RemoteEPs[i].Connect(r.Servers[0].ID, 80, transport.Options{})
		conns[i].Send(128 << 10)
	}
	r.Eng.RunUntil(5 * sim.Second)
	for i, c := range conns {
		if !c.Established() {
			t.Fatalf("conn %d never established", i)
		}
		if !c.Done() {
			t.Fatalf("conn %d did not finish (timeouts=%d)", i, c.Stats.Timeouts)
		}
	}
}

func TestSendOnReceiverPanics(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 32})
	var rconn *transport.Conn
	r.ServerEPs[0].OnAccept = func(c *transport.Conn) { rconn = c }
	s := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	s.Send(1000)
	r.Eng.RunUntil(100 * sim.Millisecond)
	if rconn == nil {
		t.Fatal("no accept")
	}
	defer func() {
		if recover() == nil {
			t.Error("Send on receiver did not panic")
		}
	}()
	rconn.Send(10)
}

func TestSendOnClosedConnIsNoop(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 33})
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	c.Send(64 << 10)
	r.Eng.RunUntil(100 * sim.Millisecond)
	c.Close()
	c.Send(1 << 20) // must not panic or queue
	if c.Pending() != 0 {
		t.Error("closed conn queued data")
	}
	r.Eng.RunUntil(200 * sim.Millisecond)
}

func TestZeroAndNegativeSendIgnored(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 34})
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	c.Send(0)
	c.Send(-5)
	r.Eng.RunUntil(50 * sim.Millisecond)
	if c.Stats.SentSegs != 0 {
		t.Errorf("sent %d segments for empty sends", c.Stats.SentSegs)
	}
}

func TestIdleRestartResetsWindow(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 35})
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	// Grow the window with a big transfer.
	c.Send(4 << 20)
	r.Eng.RunUntil(500 * sim.Millisecond)
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	grown := c.CC().Window()
	// Long idle, then a new send: the window must restart small.
	r.Eng.RunUntil(1500 * sim.Millisecond)
	c.Send(9000)
	if w := c.CC().Window(); w >= grown {
		t.Errorf("window %d did not restart after idle (was %d)", w, grown)
	}
}

func TestNoIdleRestartOption(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 36})
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{NoIdleRestart: true})
	c.Send(4 << 20)
	r.Eng.RunUntil(500 * sim.Millisecond)
	grown := c.CC().Window()
	r.Eng.RunUntil(1500 * sim.Millisecond)
	c.Send(9000)
	if w := c.CC().Window(); w != grown {
		t.Errorf("window changed (%d -> %d) despite NoIdleRestart", grown, w)
	}
}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	// With in-order delivery and no CE transitions, roughly one ACK per two
	// data segments should cross the uplink.
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 37})
	acks := 0
	watcher := &ackCounter{n: &acks}
	r.Servers[0].AttachEgress(watcher)
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	c.Send(2 << 20)
	r.Eng.RunUntil(sim.Second)
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	dataSegs := int(c.Stats.SentSegs)
	if acks >= dataSegs {
		t.Errorf("acks %d not reduced vs %d data segments (delayed ACK inactive)", acks, dataSegs)
	}
	if acks < dataSegs/3 {
		t.Errorf("acks %d suspiciously few for %d data segments", acks, dataSegs)
	}
}

type ackCounter struct{ n *int }

func (a *ackCounter) Handle(_ sim.Time, _ int, _ netsim.Direction, seg *netsim.Segment) {
	if seg.Is(netsim.FlagACK) && !seg.Is(netsim.FlagSYN) {
		*a.n++
	}
}

func TestDelackTimerFlushesTailSegment(t *testing.T) {
	// An odd trailing segment is held by delayed ACK; the 400µs timer must
	// flush it well before the sender's RTO fires.
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 38})
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	c.Send(9000) // exactly one segment
	r.Eng.RunUntil(100 * sim.Millisecond)
	if !c.Done() {
		t.Fatal("single-segment send not acknowledged")
	}
	if c.Stats.Timeouts != 0 {
		t.Errorf("sender hit %d RTOs waiting for a held ACK", c.Stats.Timeouts)
	}
}

func TestConnStatsConsistency(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 39})
	var rconn *transport.Conn
	r.ServerEPs[0].OnAccept = func(c *transport.Conn) { rconn = c }
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	const n = 3 << 20
	c.Send(n)
	r.Eng.RunUntil(sim.Second)
	if c.Stats.SentBytes != n || c.Stats.AckedBytes != n {
		t.Errorf("sent/acked = %d/%d, want %d", c.Stats.SentBytes, c.Stats.AckedBytes, n)
	}
	if rconn.Stats.RecvBytes != n {
		t.Errorf("received %d, want %d", rconn.Stats.RecvBytes, n)
	}
	if c.Stats.RetxSegs != 0 && c.Stats.FastRetx == 0 && c.Stats.Timeouts == 0 {
		t.Error("retransmissions without a recorded loss event")
	}
}

func TestOnReceiveCallback(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 40})
	var got int
	r.ServerEPs[0].OnAccept = func(c *transport.Conn) {
		c.OnReceive = func(n int) { got += n }
	}
	c := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})
	c.Send(256 << 10)
	r.Eng.RunUntil(500 * sim.Millisecond)
	if got != 256<<10 {
		t.Errorf("OnReceive saw %d bytes, want %d", got, 256<<10)
	}
}
