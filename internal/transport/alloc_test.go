package transport_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// TestSteadyStateSendZeroAlloc asserts the full per-packet path — pooled
// segment emission, NIC serialization, fabric hop, ToR enqueue/dequeue,
// delivery, delayed ACK, the return trip, and RTO timer rearm — allocates
// nothing once the pools, rings and event queue are warm. This is the
// end-to-end version of the per-component assertions and the teeth behind
// the "hot paths allocate zero" contract.
func TestSteadyStateSendZeroAlloc(t *testing.T) {
	r := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 42})
	sconn := r.RemoteEPs[0].Connect(r.Servers[0].ID, 80, transport.Options{})

	// Warm up: handshake, slow start, pools, rings, queue capacity.
	sconn.Send(1 << 20)
	r.Eng.RunUntil(200 * sim.Millisecond)
	if !sconn.Done() {
		t.Fatal("warmup transfer did not complete")
	}

	allocs := testing.AllocsPerRun(200, func() {
		sconn.Send(64 * 9000)
		r.Eng.RunFor(5 * sim.Millisecond)
	})
	if !sconn.Done() {
		t.Fatal("measured transfers did not complete")
	}
	if allocs != 0 {
		t.Fatalf("steady-state send loop allocates %.2f objects per burst, want 0", allocs)
	}
}
