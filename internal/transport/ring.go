package transport

// metaRing is a growable circular queue of segMeta. The sender's inflight
// window pushes at the tail and pops acknowledged segments at the head; a
// plain slice with `s = s[1:]` re-allocates every window's worth of sends,
// while the ring reuses its backing array for the life of the connection.
type metaRing struct {
	buf  []segMeta
	head int
	n    int
}

// Len returns the number of queued entries.
func (r *metaRing) Len() int { return r.n }

// Push appends m at the tail, growing the ring if full.
func (r *metaRing) Push(m segMeta) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
}

// Front returns the head entry. The pointer is valid until the next Push or
// PopFront. Callers must check Len first.
func (r *metaRing) Front() *segMeta {
	return &r.buf[r.head]
}

// PopFront discards the head entry.
func (r *metaRing) PopFront() {
	r.buf[r.head] = segMeta{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
}

func (r *metaRing) grow() {
	capNew := len(r.buf) * 2
	if capNew < 8 {
		capNew = 8
	}
	buf := make([]segMeta, capNew)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
