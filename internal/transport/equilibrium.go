package transport

// Equilibrium models for the hybrid-fidelity fast path: closed forms for the
// congestion state a connection converges to, so a fluid interval can hand a
// primed — rather than cold — sender to the segment engine when a burst
// episode starts.

import (
	"math"

	"repro/internal/sim"
)

// EquilibriumWindow returns the steady-state window, in bytes, of a sender
// saturating a path of rate rateBps and base round-trip time rtt against a
// static ECN marking threshold of ecnBytes: the bandwidth-delay product plus
// the standing queue DCTCP holds at the threshold. For the short data-center
// paths simulated here the standing queue dominates.
func EquilibriumWindow(rateBps int64, rtt sim.Time, ecnBytes int) int64 {
	bdp := float64(rateBps) / 8 * rtt.Seconds()
	w := int64(bdp) + int64(ecnBytes)
	if w < 1 {
		w = 1
	}
	return w
}

// EquilibriumMarkFraction returns DCTCP's steady-state fraction of marked
// bytes for a window of w bytes at the given MSS: alpha ≈ sqrt(2/W) with W
// in segments (Alizadeh et al., SIGCOMM 2010, §3.3). It is the fluid model's
// estimate of the ECN-marked share of a saturating transfer.
func EquilibriumMarkFraction(w int64, mss int) float64 {
	if w <= 0 || mss <= 0 {
		return 0
	}
	segs := float64(w) / float64(mss)
	if segs < 1 {
		segs = 1
	}
	f := math.Sqrt(2 / segs)
	if f > 1 {
		f = 1
	}
	return f
}

// Prime drives the controller's long-run state to the given equilibrium
// window without simulating the traffic that would have produced it: the
// slow-start threshold is set to w so the first burst exits slow start at
// the adapted point instead of probing from scratch. cwnd itself is left
// alone — after any real idle period the window restarts from the initial
// window anyway (RFC 2861), which is exactly what a warmed-up connection in
// the full-fidelity path does between bursts.
func (r *renoState) Prime(w int64) {
	min := int64(2 * r.mss)
	if w < min {
		w = min
	}
	if w > math.MaxInt32 {
		w = math.MaxInt32
	}
	r.ssthresh = int(w)
}

// Prime additionally seeds the congestion-mark EWMA with its equilibrium
// value, so the first marked window reacts like an adapted sender rather
// than a fresh one (alpha starts at 0 on a new connection and needs ~1/G
// windows to converge).
func (d *DCTCP) Prime(w int64) {
	d.renoState.Prime(w)
	d.Alpha = EquilibriumMarkFraction(w, d.mss)
	d.resetWindowObservation()
}
