package transport

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Endpoint is the transport stack of one host: it demultiplexes incoming
// segments to connections and originates new ones. Install exactly one
// Endpoint per host; it registers itself as the host's protocol handler.
type Endpoint struct {
	host     *netsim.Host
	eng      *sim.Engine
	conns    map[netsim.FlowKey]*Conn // keyed by the data-direction flow
	nextPort uint16

	// OnAccept, if set, fires when a passive connection is created by an
	// incoming SYN, letting the application attach OnReceive.
	OnAccept func(c *Conn)
}

// NewEndpoint attaches a transport stack to host.
func NewEndpoint(host *netsim.Host) *Endpoint {
	ep := &Endpoint{
		host:     host,
		eng:      host.Engine(),
		conns:    make(map[netsim.FlowKey]*Conn),
		nextPort: 10000,
	}
	host.SetProtocolHandler(ep.receive)
	return ep
}

// Host returns the endpoint's host.
func (e *Endpoint) Host() *netsim.Host { return e.host }

// ConnCount returns the number of live connections (either role).
func (e *Endpoint) ConnCount() int { return len(e.conns) }

// Connect opens a sending connection to dst:dstPort and starts the
// handshake. Data queued with Send flows once the handshake completes.
func (e *Endpoint) Connect(dst netsim.HostID, dstPort uint16, opts Options) *Conn {
	opts = opts.withDefaults()
	e.nextPort++
	flow := netsim.FlowKey{
		Src: e.host.ID, Dst: dst,
		SrcPort: e.nextPort, DstPort: dstPort,
	}
	c := &Conn{
		ep:        e,
		flow:      flow,
		sender:    true,
		opts:      opts,
		cc:        opts.newCC(),
		rto:       opts.RTOInit,
		startedAt: e.eng.Now(),
	}
	e.conns[flow] = c
	c.sendSYN()
	return c
}

// receive is the host protocol handler.
func (e *Endpoint) receive(seg *netsim.Segment) {
	if seg.Is(netsim.FlagMulticast) {
		// Multicast beacons are measurement traffic with no transport state.
		return
	}
	if seg.Is(netsim.FlagACK) {
		// Control for one of our sending connections.
		flow := seg.Flow.Reverse()
		if c, ok := e.conns[flow]; ok && c.sender {
			c.onAckSegment(seg)
		}
		return
	}
	// Data direction: we are (or become) the receiver.
	c, ok := e.conns[seg.Flow]
	if !ok {
		if !seg.Is(netsim.FlagSYN) {
			// Stray data for a closed connection; ignore silently, matching
			// a RST-free simplified stack.
			return
		}
		c = &Conn{
			ep:     e,
			flow:   seg.Flow,
			sender: false,
			opts:   Options{}.withDefaults(),
		}
		e.conns[seg.Flow] = c
		if e.OnAccept != nil {
			e.OnAccept(c)
		}
	}
	if seg.Is(netsim.FlagFIN) {
		c.flushDelack()
		c.sendAck(seg)
		e.remove(seg.Flow)
		return
	}
	c.onDataSegment(seg)
}

func (e *Endpoint) remove(flow netsim.FlowKey) {
	delete(e.conns, flow)
}
