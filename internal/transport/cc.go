// Package transport implements segment-level TCP-like transports over the
// simulated network: DCTCP for in-region traffic (the dominant class the
// paper analyzes) and Cubic for inter-region traffic, with NewReno loss
// recovery, RTO, and Meta's retransmit-bit header instrumentation.
package transport

import "math"

// CongestionControl is the pluggable window algorithm of a sending
// connection. All quantities are in bytes. Implementations are driven by the
// Conn: acknowledgement progress (with ECN-echo information), loss events,
// and timeouts.
type CongestionControl interface {
	// Name identifies the algorithm ("dctcp", "cubic", "reno").
	Name() string
	// Window returns the current congestion window in bytes.
	Window() int
	// OnAck processes acked new bytes; marked reports whether the
	// acknowledgement echoed a congestion mark (ECE).
	OnAck(acked int, marked bool)
	// OnLoss processes a fast-retransmit loss event (once per recovery).
	OnLoss()
	// OnTimeout processes an RTO.
	OnTimeout()
}

// renoState carries the slow-start/congestion-avoidance core shared by the
// implementations.
type renoState struct {
	mss      int
	iw       int
	cwnd     int
	ssthresh int
	acked    int // CA byte accumulator
}

func newRenoState(mss, initialWindow int) renoState {
	return renoState{mss: mss, iw: initialWindow, cwnd: initialWindow, ssthresh: math.MaxInt32}
}

// RestartAfterIdle implements slow-start-after-idle (RFC 2861): after an
// idle period longer than the RTO, the stale window is reset to the initial
// window while ssthresh is preserved, so the connection probes again instead
// of dumping an arbitrarily large burst.
func (r *renoState) RestartAfterIdle() {
	if r.cwnd > r.iw {
		r.cwnd = r.iw
	}
}

func (r *renoState) grow(acked int) {
	if r.cwnd < r.ssthresh {
		// Slow start: one MSS per MSS acked.
		r.cwnd += acked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per window.
	r.acked += acked
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += r.mss
	}
}

func (r *renoState) floorWindow() {
	if r.cwnd < r.mss {
		r.cwnd = r.mss
	}
}

// Reno is classic NewReno congestion control, provided as the
// non-ECN baseline.
type Reno struct{ renoState }

// NewReno returns a Reno controller.
func NewReno(mss, initialWindow int) *Reno {
	return &Reno{newRenoState(mss, initialWindow)}
}

// Name implements CongestionControl.
func (r *Reno) Name() string { return "reno" }

// Window implements CongestionControl.
func (r *Reno) Window() int { return r.cwnd }

// OnAck implements CongestionControl. Reno ignores ECN echoes.
func (r *Reno) OnAck(acked int, marked bool) { r.grow(acked) }

// OnLoss implements CongestionControl.
func (r *Reno) OnLoss() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2*r.mss {
		r.ssthresh = 2 * r.mss
	}
	r.cwnd = r.ssthresh
}

// OnTimeout implements CongestionControl.
func (r *Reno) OnTimeout() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2*r.mss {
		r.ssthresh = 2 * r.mss
	}
	r.cwnd = r.mss
}

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010): the
// sender maintains an EWMA estimate alpha of the fraction of bytes whose
// acknowledgements carried congestion echoes, and once per window scales
// cwnd by (1 - alpha/2). With the paper's 120 KB static marking threshold
// this keeps queues short for long flows, but — as the paper stresses — the
// feedback loop still needs at least an RTT, so sub-RTT bursts and heavy
// incast escape it.
type DCTCP struct {
	renoState
	// Alpha is the EWMA congestion estimate in [0, 1].
	Alpha float64
	// G is the EWMA gain (RFC 8257 default 1/16).
	G float64

	windowAcked  int
	windowMarked int
	windowSize   int // cwnd snapshot at the start of the observation window
}

// NewDCTCP returns a DCTCP controller.
func NewDCTCP(mss, initialWindow int) *DCTCP {
	d := &DCTCP{renoState: newRenoState(mss, initialWindow), G: 1.0 / 16}
	d.windowSize = d.cwnd
	return d
}

// Name implements CongestionControl.
func (d *DCTCP) Name() string { return "dctcp" }

// Window implements CongestionControl.
func (d *DCTCP) Window() int { return d.cwnd }

// OnAck implements CongestionControl.
func (d *DCTCP) OnAck(acked int, marked bool) {
	d.windowAcked += acked
	if marked {
		d.windowMarked += acked
		// A congestion echo ends slow start (RFC 8257 §3.4).
		if d.cwnd < d.ssthresh {
			d.ssthresh = d.cwnd
		}
	}
	d.grow(acked)
	if d.windowAcked >= d.windowSize {
		d.updateAlpha()
	}
}

func (d *DCTCP) updateAlpha() {
	f := 0.0
	if d.windowAcked > 0 {
		f = float64(d.windowMarked) / float64(d.windowAcked)
	}
	d.Alpha = (1-d.G)*d.Alpha + d.G*f
	if d.windowMarked > 0 {
		d.cwnd = int(float64(d.cwnd) * (1 - d.Alpha/2))
		d.floorWindow()
		d.ssthresh = d.cwnd
	}
	d.windowAcked = 0
	d.windowMarked = 0
	d.windowSize = d.cwnd
}

// OnLoss implements CongestionControl: packet loss is handled like standard
// TCP (RFC 8257 §3.2).
func (d *DCTCP) OnLoss() {
	d.ssthresh = d.cwnd / 2
	if d.ssthresh < 2*d.mss {
		d.ssthresh = 2 * d.mss
	}
	d.cwnd = d.ssthresh
	d.resetWindowObservation()
}

// OnTimeout implements CongestionControl.
func (d *DCTCP) OnTimeout() {
	d.ssthresh = d.cwnd / 2
	if d.ssthresh < 2*d.mss {
		d.ssthresh = 2 * d.mss
	}
	d.cwnd = d.mss
	d.resetWindowObservation()
}

// RestartAfterIdle resets the window and the marking observation window.
func (d *DCTCP) RestartAfterIdle() {
	d.renoState.RestartAfterIdle()
	d.resetWindowObservation()
}

func (d *DCTCP) resetWindowObservation() {
	d.windowAcked = 0
	d.windowMarked = 0
	d.windowSize = d.cwnd
}

// Cubic implements the CUBIC window growth function (RFC 9438) used by the
// fleet's inter-region traffic. Time is supplied by the Conn via Tick, in
// seconds since the connection started, so the implementation stays free of
// wall-clock reads.
type Cubic struct {
	renoState
	// C is the cubic scaling constant (RFC 9438 default 0.4, in units of
	// MSS-windows; converted internally).
	C float64
	// Beta is the multiplicative decrease factor (default 0.7).
	Beta float64

	wMax      float64 // window before the last reduction, bytes
	epochAt   float64 // time of the last reduction, seconds
	nowSec    float64
	inEpoch   bool
	everGrown bool
}

// NewCubic returns a Cubic controller.
func NewCubic(mss, initialWindow int) *Cubic {
	return &Cubic{renoState: newRenoState(mss, initialWindow), C: 0.4, Beta: 0.7}
}

// Name implements CongestionControl.
func (c *Cubic) Name() string { return "cubic" }

// Window implements CongestionControl.
func (c *Cubic) Window() int { return c.cwnd }

// Tick informs the controller of the current connection time in seconds.
func (c *Cubic) Tick(nowSec float64) { c.nowSec = nowSec }

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(acked int, marked bool) {
	if c.cwnd < c.ssthresh {
		c.grow(acked)
		return
	}
	if !c.inEpoch {
		c.inEpoch = true
		c.epochAt = c.nowSec
		if c.wMax < float64(c.cwnd) {
			c.wMax = float64(c.cwnd)
		}
	}
	t := c.nowSec - c.epochAt
	// K = cbrt(wMax * (1-beta) / C), with windows measured in MSS units.
	wMaxSeg := c.wMax / float64(c.mss)
	k := math.Cbrt(wMaxSeg * (1 - c.Beta) / c.C)
	target := c.C*math.Pow(t-k, 3) + wMaxSeg // in MSS
	targetBytes := int(target * float64(c.mss))
	if targetBytes > c.cwnd {
		// Approach the cubic target gradually, standard per-ACK step.
		step := (targetBytes - c.cwnd) * acked / c.cwnd
		if step < 1 {
			step = 1
		}
		c.cwnd += step
	} else {
		// TCP-friendly region: fall back to Reno-style growth.
		c.grow(acked)
	}
}

// OnLoss implements CongestionControl.
func (c *Cubic) OnLoss() {
	c.wMax = float64(c.cwnd)
	c.cwnd = int(float64(c.cwnd) * c.Beta)
	c.floorWindow()
	c.ssthresh = c.cwnd
	c.inEpoch = false
}

// OnTimeout implements CongestionControl.
func (c *Cubic) OnTimeout() {
	c.wMax = float64(c.cwnd)
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2*c.mss {
		c.ssthresh = 2 * c.mss
	}
	c.cwnd = c.mss
	c.inEpoch = false
}
