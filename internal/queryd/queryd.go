// Package queryd is the read side of the distributed pipeline: a
// long-running HTTP service that discovers completed sharded datasets
// (internal/dataset) and sweep result stores (internal/sweep) under a root
// directory and serves them to many concurrent clients as
//
//   - catalog endpoints — what exists, its config, digests, and shard/point
//     status;
//   - streaming query endpoints — NDJSON walks of a dataset's runs that go
//     through the same streaming Source interface the experiments use, one
//     rack shard at a time, so per-request memory stays bounded by one rack
//     no matter how many clients are connected;
//   - cached renders — the paper's figures/tables (internal/experiments)
//     and the §9 what-if reports (sweep.Report), computed at most once per
//     (store digest, render, params) behind an LRU + singleflight cache
//     whose keys double as ETags.
//
// It behaves like a service, not a script: bounded concurrency with 429 +
// Retry-After backpressure, per-request timeouts threaded into shard walks,
// SIGTERM graceful drain (cmd/queryd), and /metrics.
package queryd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/httpserve"
	"repro/internal/sweep"
)

// Config tunes the service. The zero value serves with sane defaults.
type Config struct {
	// Root is the directory scanned for datasets and sweep stores.
	Root string
	// MaxConcurrent bounds simultaneously served data requests (streams and
	// renders; catalog and metrics endpoints are always served). Beyond it,
	// requests get 429 + Retry-After. Default 16.
	MaxConcurrent int
	// RequestTimeout caps one data request end to end; it is threaded as a
	// context into shard walks and render computation. Default 2m.
	RequestTimeout time.Duration
	// CacheBytes bounds the render cache. Default 64 MiB; negative disables
	// caching.
	CacheBytes int64
	// Logger, when set, logs one line per request.
	Logger *log.Logger
	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves the query surface over one Catalog. Create with New, expose
// via Handler.
type Server struct {
	cfg     Config
	catalog *Catalog
	cache   *cache
	metrics *Metrics
	sem     chan struct{}
}

// New builds a Server over root.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	return &Server{
		cfg:     cfg,
		catalog: NewCatalog(cfg.Root),
		cache:   newCache(cfg.CacheBytes, m.CacheEvict),
		metrics: m,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Metrics exposes the server's instrumentation (tests and cmd/queryd).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Catalog exposes the server's catalog (tests swap the dataset opener).
func (s *Server) Catalog() *Catalog { return s.catalog }

// Handler returns the full HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.WriteTo(w)
	})
	mux.HandleFunc("GET /v1/catalog", s.instrumented("catalog", s.handleCatalog))
	mux.HandleFunc("GET /v1/datasets/", s.instrumented("datasets", s.handleDatasets))
	mux.HandleFunc("GET /v1/sweeps/", s.instrumented("sweeps", s.handleSweeps))
	return httpserve.Logged(s.cfg.Logger, mux)
}

// instrumented wraps a handler with the request counter, latency histogram,
// and in-flight gauge.
func (s *Server) instrumented(route string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.InflightAdd(1)
		defer s.metrics.InflightAdd(-1)
		sw := &statusRecorder{ResponseWriter: w}
		h(sw, r)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.Request(route, code, time.Since(start))
	}
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// acquire claims a data-request slot; on a full semaphore it writes the 429
// and returns false. Backpressure is deliberate and immediate — a client is
// better served by an honest Retry-After than by an unbounded queue.
func (s *Server) acquire(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.metrics.Throttled()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
		httpserve.Error(w, http.StatusTooManyRequests, "server at capacity (%d concurrent data requests); retry shortly", s.cfg.MaxConcurrent)
		return nil, false
	}
}

// handleCatalog lists everything discovered under the root.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	dss, sws, err := s.catalog.Refresh()
	if err != nil {
		httpserve.Error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	httpserve.WriteJSON(w, map[string]any{
		"root":     s.cfg.Root,
		"datasets": orEmptyDS(dss),
		"sweeps":   orEmptySW(sws),
	})
}

func orEmptyDS(v []DatasetInfo) []DatasetInfo {
	if v == nil {
		return []DatasetInfo{}
	}
	return v
}

func orEmptySW(v []SweepInfo) []SweepInfo {
	if v == nil {
		return []SweepInfo{}
	}
	return v
}

// splitRoute parses the path remainder after /v1/datasets/ (or /v1/sweeps/)
// into the catalog name and the action suffix. Dataset names may contain
// slashes (nested directories), so the action words — runs, racks, renders —
// are reserved: the first occurrence past the leading segment splits the
// path. Routes: <name>, <name>/racks, <name>/runs, <name>/renders/<id>,
// <name>/racks/<region>/<id>/runs.
func splitRoute(rest string) (name, action string, args []string) {
	rest = strings.Trim(rest, "/")
	parts := strings.Split(rest, "/")
	for i := 1; i < len(parts); i++ {
		switch parts[i] {
		case "runs", "racks", "renders":
			return strings.Join(parts[:i], "/"), parts[i], parts[i+1:]
		}
	}
	return rest, "", nil
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	name, action, args := splitRoute(rest)
	if name == "" {
		httpserve.Error(w, http.StatusNotFound, "missing dataset name")
		return
	}
	e, err := s.catalog.Dataset(name)
	if err != nil {
		httpserve.Error(w, http.StatusNotFound, "%v", err)
		return
	}
	switch {
	case action == "":
		s.datasetDetail(w, e)
	case action == "racks" && len(args) == 0:
		httpserve.WriteJSON(w, e.src.RackMetas())
	case action == "runs" && len(args) == 0:
		s.streamRuns(w, r, e)
	case action == "racks" && len(args) == 3 && args[2] == "runs":
		s.streamRackRuns(w, r, e, args[0], args[1])
	case action == "renders" && len(args) == 1:
		s.datasetRender(w, r, e, args[0])
	default:
		httpserve.Error(w, http.StatusNotFound, "unknown dataset route %q", rest)
	}
}

// datasetDetail is the per-dataset status view: catalog info, the full
// normalized config, and the shard table.
func (s *Server) datasetDetail(w http.ResponseWriter, e *datasetEntry) {
	type shardStatus struct {
		Region    string `json:"region"`
		ID        int    `json:"id"`
		Complete  bool   `json:"complete"`
		Runs      int    `json:"runs"`
		Collected int    `json:"collected"`
		Digest    string `json:"digest,omitempty"`
	}
	shards := e.src.Shards()
	out := make([]shardStatus, len(shards))
	for i, sh := range shards {
		out[i] = shardStatus{Region: sh.Region, ID: sh.ID, Complete: sh.Complete,
			Runs: sh.Runs, Collected: sh.Collected, Digest: sh.Digest}
	}
	httpserve.WriteJSON(w, map[string]any{
		"info":   e.info,
		"config": e.src.Config(),
		"shards": out,
	})
}

// requireComplete rejects queries against a dataset still being generated.
func requireComplete(w http.ResponseWriter, e *datasetEntry) bool {
	if !e.info.Complete {
		httpserve.Error(w, http.StatusConflict,
			"dataset %q is incomplete (%d/%d shards); resume its generation first",
			e.info.Name, e.info.ShardsDone, e.info.ShardsTotal)
		return false
	}
	return true
}

// etagFor derives the strong validator for a response: sha256 over the
// store digest plus the render/query key. The store digest covers the exact
// shard bytes, so the ETag changes exactly when the data or the question
// does.
func etagFor(storeDigest, key string) string {
	h := sha256.Sum256([]byte(storeDigest + "|" + key))
	return `"` + hex.EncodeToString(h[:]) + `"`
}

// notModified handles If-None-Match; returns true when a 304 was written.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	for _, v := range r.Header.Values("If-None-Match") {
		for _, cand := range strings.Split(v, ",") {
			if strings.TrimSpace(cand) == etag {
				w.WriteHeader(http.StatusNotModified)
				return true
			}
		}
	}
	return false
}

// runFilter is the streaming query's predicate, parsed from query params.
type runFilter struct {
	region string
	rack   int
	hasRak bool
	hour   int
	hasHr  bool
	class  string
	limit  int
}

func parseFilter(r *http.Request) (runFilter, error) {
	q := r.URL.Query()
	f := runFilter{region: q.Get("region"), class: q.Get("class"), rack: -1, hour: -1}
	if v := q.Get("rack"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return f, fmt.Errorf("bad rack %q", v)
		}
		f.rack, f.hasRak = n, true
	}
	if v := q.Get("hour"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return f, fmt.Errorf("bad hour %q", v)
		}
		f.hour, f.hasHr = n, true
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad limit %q", v)
		}
		f.limit = n
	}
	return f, nil
}

func (f *runFilter) match(run *fleet.RunSummary, c fleet.Class) bool {
	if f.region != "" && run.Region != f.region {
		return false
	}
	if f.hasRak && run.RackID != f.rack {
		return false
	}
	if f.hasHr && run.Hour != f.hour {
		return false
	}
	if f.class != "" && c.String() != f.class {
		return false
	}
	return true
}

// key canonicalizes the filter for ETags.
func (f *runFilter) key() string {
	return fmt.Sprintf("region=%s&rack=%d,%v&hour=%d,%v&class=%s&limit=%d",
		f.region, f.rack, f.hasRak, f.hour, f.hasHr, f.class, f.limit)
}

// streamLine is one NDJSON record of a streaming query.
type streamLine struct {
	Class string            `json:"class"`
	Run   *fleet.RunSummary `json:"run"`
}

// errStreamDone aborts a walk early once the line limit is reached.
var errStreamDone = errors.New("queryd: stream limit reached")

// streamRuns walks the dataset shard by shard through the streaming reader
// and writes one JSON line per run. The response flushes after every line,
// so clients see data as the walk progresses and the server never holds
// more than the current rack's shard plus one encoded line.
func (s *Server) streamRuns(w http.ResponseWriter, r *http.Request, e *datasetEntry) {
	if !requireComplete(w, e) {
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		httpserve.Error(w, http.StatusBadRequest, "%v", err)
		return
	}
	if notModified(w, r, etagFor(e.info.Digest, "runs|"+f.key())) {
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Store-Digest", e.info.Digest)
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	lines := int64(0)

	_, err = e.src.EachRunCtx(ctx, func(run *fleet.RunSummary, c fleet.Class) error {
		if !f.match(run, c) {
			return nil
		}
		if err := enc.Encode(streamLine{Class: c.String(), Run: run}); err != nil {
			return err
		}
		lines++
		if flusher != nil {
			flusher.Flush()
		}
		if f.limit > 0 && lines >= int64(f.limit) {
			return errStreamDone
		}
		return nil
	})
	s.metrics.StreamedBytes(cw.n)
	s.metrics.StreamedRuns(lines)
	if err != nil && !errors.Is(err, errStreamDone) {
		// Headers are gone; the best a stream can do is truncate. A client
		// detects it by the missing final newline... which NDJSON can't
		// express either, so log it server-side and drop the connection.
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("stream %s aborted after %d lines: %v", e.info.Name, lines, err)
		}
		panic(http.ErrAbortHandler)
	}
}

// streamRackRuns serves one rack's runs as NDJSON — the drill-down query.
func (s *Server) streamRackRuns(w http.ResponseWriter, r *http.Request, e *datasetEntry, region, idStr string) {
	if !requireComplete(w, e) {
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpserve.Error(w, http.StatusBadRequest, "bad rack id %q", idStr)
		return
	}
	if notModified(w, r, etagFor(e.info.Digest, fmt.Sprintf("rack|%s/%d", region, id))) {
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()

	class := fleet.Class(0)
	found := false
	for _, m := range e.src.RackMetas() {
		if m.Region == region && m.ID == id {
			class, found = m.Class, true
			break
		}
	}
	if !found {
		httpserve.Error(w, http.StatusNotFound, "no rack %s/%d in %q", region, id, e.info.Name)
		return
	}
	runs, err := e.src.RackRuns(region, id)
	if err != nil {
		httpserve.Error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Store-Digest", e.info.Digest)
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	for i := range runs {
		if err := enc.Encode(streamLine{Class: class.String(), Run: &runs[i]}); err != nil {
			panic(http.ErrAbortHandler)
		}
	}
	s.metrics.StreamedBytes(cw.n)
	s.metrics.StreamedRuns(int64(len(runs)))
}

// ctxSource threads a request context into the experiments' Source walks,
// so a render computation is cancellable mid-shard like a streaming query.
type ctxSource struct {
	ctx context.Context
	src DatasetSource
}

func (c *ctxSource) Config() fleet.Config        { return c.src.Config() }
func (c *ctxSource) RackMetas() []fleet.RackMeta { return c.src.RackMetas() }
func (c *ctxSource) EachRun(fn func(r *fleet.RunSummary, cl fleet.Class) error) (int, error) {
	return c.src.EachRunCtx(c.ctx, fn)
}

var _ experiments.Source = (*ctxSource)(nil)

// renderFormats maps the format query param to a content type.
var renderFormats = map[string]string{
	"text": "text/plain; charset=utf-8",
	"md":   "text/markdown; charset=utf-8",
	"json": "application/json",
}

// renderResults encodes experiment results in the requested format.
func renderResults(results []*experiments.Result, format string) ([]byte, error) {
	var buf strings.Builder
	switch format {
	case "text":
		for _, res := range results {
			res.Render(&buf)
		}
	case "md":
		for _, res := range results {
			res.RenderMarkdown(&buf)
		}
	case "json":
		b, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	default:
		return nil, fmt.Errorf("unknown format %q (text, md, json)", format)
	}
	return []byte(buf.String()), nil
}

// datasetRender serves one experiment (or "all") rendered from the dataset,
// through the cache.
func (s *Server) datasetRender(w http.ResponseWriter, r *http.Request, e *datasetEntry, id string) {
	if !requireComplete(w, e) {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	ct, ok := renderFormats[format]
	if !ok {
		httpserve.Error(w, http.StatusBadRequest, "unknown format %q (text, md, json)", format)
		return
	}
	if id != "all" {
		known := false
		for _, k := range experiments.IDs() {
			if k == id {
				known = true
				break
			}
		}
		if !known {
			httpserve.Error(w, http.StatusNotFound, "unknown render %q (have %v and \"all\")", id, experiments.IDs())
			return
		}
	}
	key := e.info.Digest + "|render|" + id + "|" + format
	etag := etagFor(e.info.Digest, "render|"+id+"|"+format)
	if notModified(w, r, etag) {
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	ent, hit, err := s.cacheGet(key, func() (*entry, error) {
		src := &ctxSource{ctx: ctx, src: e.src}
		var results []*experiments.Result
		var err error
		if id == "all" {
			results, err = experiments.RunAll(src)
		} else {
			var res *experiments.Result
			res, err = experiments.Run(id, src)
			results = []*experiments.Result{res}
		}
		if err != nil {
			return nil, err
		}
		body, err := renderResults(results, format)
		if err != nil {
			return nil, err
		}
		s.metrics.RenderBuilt()
		return &entry{Body: body, ContentType: ct, ETag: etag}, nil
	})
	s.writeRender(w, ent, hit, err, e.info.Digest)
}

// cacheGet wraps the cache's singleflight fill with hit/miss accounting.
func (s *Server) cacheGet(key string, fill func() (*entry, error)) (*entry, bool, error) {
	ent, hit, err := s.cache.getOrFill(key, fill)
	if err == nil {
		if hit {
			s.metrics.CacheHit()
		} else {
			s.metrics.CacheMiss()
		}
	}
	return ent, hit, err
}

// writeRender emits a completed render with its cache/validator headers.
func (s *Server) writeRender(w http.ResponseWriter, ent *entry, hit bool, err error, storeDigest string) {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			httpserve.Error(w, http.StatusGatewayTimeout, "render timed out: %v", err)
			return
		}
		httpserve.Error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", ent.ContentType)
	w.Header().Set("ETag", ent.ETag)
	w.Header().Set("X-Store-Digest", storeDigest)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(ent.Body)
}

// sweepRenderIDs are the §9 what-if tables sweep.Report produces.
var sweepRenderIDs = []string{"whatif-grid", "whatif-alpha", "whatif-policy"}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	name, action, args := splitRoute(rest)
	if name == "" {
		httpserve.Error(w, http.StatusNotFound, "missing sweep name")
		return
	}
	e, dir, err := s.catalog.Sweep(name)
	if err != nil {
		httpserve.Error(w, http.StatusNotFound, "%v", err)
		return
	}
	switch {
	case action == "":
		httpserve.WriteJSON(w, e.info)
	case action == "renders" && len(args) == 1:
		s.sweepRender(w, r, e, dir, args[0])
	default:
		httpserve.Error(w, http.StatusNotFound, "unknown sweep route %q", rest)
	}
}

// sweepRender serves one what-if table (or "all"), cached and keyed on the
// sweep's sealed ResultDigest.
func (s *Server) sweepRender(w http.ResponseWriter, r *http.Request, e *sweepEntry, dir, id string) {
	if !e.info.Complete {
		httpserve.Error(w, http.StatusConflict,
			"sweep %q is incomplete (%d/%d points); resume it with cmd/sweep first",
			e.info.Name, e.info.PointsDone, e.info.PointsTotal)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	ct, ok := renderFormats[format]
	if !ok {
		httpserve.Error(w, http.StatusBadRequest, "unknown format %q (text, md, json)", format)
		return
	}
	if id != "all" {
		known := false
		for _, k := range sweepRenderIDs {
			if k == id {
				known = true
				break
			}
		}
		if !known {
			httpserve.Error(w, http.StatusNotFound, "unknown sweep render %q (have %v and \"all\")", id, sweepRenderIDs)
			return
		}
	}
	key := e.info.ResultDigest + "|sweep-render|" + id + "|" + format
	etag := etagFor(e.info.ResultDigest, "sweep-render|"+id+"|"+format)
	if notModified(w, r, etag) {
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()

	ent, hit, err := s.cacheGet(key, func() (*entry, error) {
		res, err := sweep.Open(dir)
		if err != nil {
			return nil, err
		}
		all := sweep.Report(res)
		var results []*experiments.Result
		if id == "all" {
			results = all
		} else {
			for _, t := range all {
				if t.ID == id {
					results = []*experiments.Result{t}
					break
				}
			}
			if len(results) == 0 {
				return nil, fmt.Errorf("sweep render %q missing from report", id)
			}
		}
		body, err := renderResults(results, format)
		if err != nil {
			return nil, err
		}
		s.metrics.RenderBuilt()
		return &entry{Body: body, ContentType: ct, ETag: etag}, nil
	})
	s.writeRender(w, ent, hit, err, e.info.ResultDigest)
}

// compile-time: the sharded Reader satisfies the server's source surface.
var _ DatasetSource = (*dataset.Reader)(nil)
