package queryd

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/sweep"
)

// DatasetSource is the streaming view queryd serves a dataset through. It
// is exactly the read surface *dataset.Reader exposes — the experiments'
// Source interface plus single-rack access, context-threaded walks, shard
// status, and the store fingerprint. The server only ever holds this
// interface, so a handler cannot materialize a whole dataset even by
// accident: per-request memory is bounded by one rack's shard walk by
// construction. Tests substitute instrumented implementations.
type DatasetSource interface {
	Config() fleet.Config
	RackMetas() []fleet.RackMeta
	EachRun(fn func(r *fleet.RunSummary, c fleet.Class) error) (skipped int, err error)
	EachRunCtx(ctx context.Context, fn func(r *fleet.RunSummary, c fleet.Class) error) (skipped int, err error)
	RackRuns(region string, id int) ([]fleet.RunSummary, error)
	Shards() []dataset.ShardEntry
	Complete() bool
	Progress() (done, total int)
	StoreDigest() (string, error)
}

// DatasetInfo is one catalog row for a dataset directory.
type DatasetInfo struct {
	// Name is the directory's path relative to the catalog root, always
	// forward-slashed.
	Name string `json:"name"`
	// Complete reports whether generation (incl. Finalize) finished;
	// incomplete datasets are listed but not queryable.
	Complete    bool   `json:"complete"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
	Racks       int    `json:"racks"`
	Seed        uint64 `json:"seed"`
	Fidelity    string `json:"fidelity"`
	// HostStack reports whether the store was generated with the host-stack
	// latency instrument armed, i.e. whether its runs carry HostStackRec
	// series (the "hoststack" render needs them).
	HostStack bool `json:"hoststack,omitempty"`
	// Digest is the store fingerprint (sha256 over per-shard digests);
	// empty until complete. It doubles as the ETag base for every response
	// derived from this dataset.
	Digest string `json:"digest,omitempty"`
}

// SweepInfo is one catalog row for a sweep result directory.
type SweepInfo struct {
	Name        string `json:"name"`
	SpecName    string `json:"spec_name,omitempty"`
	Complete    bool   `json:"complete"`
	PointsDone  int    `json:"points_done"`
	PointsTotal int    `json:"points_total"`
	Seed        uint64 `json:"seed"`
	// ResultDigest is the sweep's sealed fingerprint; empty until complete.
	ResultDigest string `json:"result_digest,omitempty"`
}

// datasetEntry caches one discovered dataset: the shared Reader plus the
// manifest mtime it was opened at, so an updated directory (a resumed
// generation that completed) is re-opened instead of served stale.
type datasetEntry struct {
	info   DatasetInfo
	src    DatasetSource
	mtime  time.Time
	opened time.Time
}

type sweepEntry struct {
	info  SweepInfo
	mtime time.Time
}

// Catalog discovers datasets and sweep stores under a root directory by
// their manifests and caches open readers. Discovery is re-run on demand
// (every Refresh call), but a cached entry is reused as long as its
// manifest file is unchanged — opening is cheap (one JSON read), so the
// cache exists to share Readers across requests, not to avoid I/O.
type Catalog struct {
	root string

	// openDataset is the Reader constructor; tests swap in instrumented
	// sources.
	openDataset func(dir string) (DatasetSource, error)

	mu       sync.Mutex
	datasets map[string]*datasetEntry
	sweeps   map[string]*sweepEntry
}

// NewCatalog returns a catalog rooted at root.
func NewCatalog(root string) *Catalog {
	return &Catalog{
		root: root,
		openDataset: func(dir string) (DatasetSource, error) {
			return dataset.Open(dir)
		},
		datasets: make(map[string]*datasetEntry),
		sweeps:   make(map[string]*sweepEntry),
	}
}

// Refresh walks the root and reconciles the entry caches with what is on
// disk. It returns the catalog listing, sorted by name.
func (c *Catalog) Refresh() ([]DatasetInfo, []SweepInfo, error) {
	foundDS := map[string]string{} // name -> dir
	foundSW := map[string]string{}
	err := filepath.WalkDir(c.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A vanished or unreadable subtree must not take the catalog
			// down; skip it.
			if d != nil && d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(c.root, path)
		if rerr != nil {
			return nil
		}
		name := filepath.ToSlash(rel)
		if dataset.IsDir(path) {
			foundDS[name] = path
			return fs.SkipDir // don't descend into shard files
		}
		if sweep.IsDir(path) {
			foundSW[name] = path
			return fs.SkipDir
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("queryd: catalog walk: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for name := range c.datasets {
		if _, ok := foundDS[name]; !ok {
			delete(c.datasets, name)
		}
	}
	for name := range c.sweeps {
		if _, ok := foundSW[name]; !ok {
			delete(c.sweeps, name)
		}
	}
	var dss []DatasetInfo
	for name, dir := range foundDS {
		e, err := c.datasetLocked(name, dir)
		if err != nil {
			// Torn or foreign manifest: skip the entry rather than failing
			// the whole catalog.
			continue
		}
		dss = append(dss, e.info)
	}
	var sws []SweepInfo
	for name, dir := range foundSW {
		e, err := c.sweepLocked(name, dir)
		if err != nil {
			continue
		}
		sws = append(sws, e.info)
	}
	sort.Slice(dss, func(a, b int) bool { return dss[a].Name < dss[b].Name })
	sort.Slice(sws, func(a, b int) bool { return sws[a].Name < sws[b].Name })
	return dss, sws, nil
}

// Dataset resolves a catalog name to its shared reader, re-validating the
// cached entry against the manifest's mtime.
func (c *Catalog) Dataset(name string) (*datasetEntry, error) {
	dir, err := c.dirFor(name)
	if err != nil {
		return nil, err
	}
	if !dataset.IsDir(dir) {
		return nil, fmt.Errorf("no dataset %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.datasetLocked(name, dir)
}

// Sweep resolves a catalog name to its sweep manifest info.
func (c *Catalog) Sweep(name string) (*sweepEntry, string, error) {
	dir, err := c.dirFor(name)
	if err != nil {
		return nil, "", err
	}
	if !sweep.IsDir(dir) {
		return nil, "", fmt.Errorf("no sweep %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.sweepLocked(name, dir)
	return e, dir, err
}

// dirFor maps a catalog name back to a directory under the root, refusing
// escapes.
func (c *Catalog) dirFor(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("empty name")
	}
	clean := filepath.Clean(filepath.FromSlash(name))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("invalid name %q", name)
	}
	return filepath.Join(c.root, clean), nil
}

func (c *Catalog) datasetLocked(name, dir string) (*datasetEntry, error) {
	mtime, err := manifestMtime(dir, "manifest.json")
	if err != nil {
		return nil, err
	}
	if e, ok := c.datasets[name]; ok && e.mtime.Equal(mtime) {
		return e, nil
	}
	src, err := c.openDataset(dir)
	if err != nil {
		return nil, err
	}
	done, total := src.Progress()
	cfg := src.Config()
	info := DatasetInfo{
		Name:        name,
		Complete:    src.Complete(),
		ShardsDone:  done,
		ShardsTotal: total,
		Racks:       len(src.RackMetas()),
		Seed:        cfg.Seed,
		Fidelity:    fidelityName(cfg),
		HostStack:   cfg.HostStack,
	}
	if info.Complete {
		if info.Digest, err = src.StoreDigest(); err != nil {
			return nil, err
		}
	}
	e := &datasetEntry{info: info, src: src, mtime: mtime, opened: time.Now()}
	c.datasets[name] = e
	return e, nil
}

func (c *Catalog) sweepLocked(name, dir string) (*sweepEntry, error) {
	mtime, err := manifestMtime(dir, "sweep.json")
	if err != nil {
		return nil, err
	}
	if e, ok := c.sweeps[name]; ok && e.mtime.Equal(mtime) {
		return e, nil
	}
	man, err := sweep.Inspect(dir)
	if err != nil {
		return nil, err
	}
	done, total := man.Progress()
	e := &sweepEntry{
		info: SweepInfo{
			Name:         name,
			SpecName:     man.Name,
			Complete:     man.Complete,
			PointsDone:   done,
			PointsTotal:  total,
			Seed:         man.Fleet.Seed,
			ResultDigest: man.ResultDigest,
		},
		mtime: mtime,
	}
	c.sweeps[name] = e
	return e, nil
}

func manifestMtime(dir, file string) (time.Time, error) {
	fi, err := os.Stat(filepath.Join(dir, file))
	if err != nil {
		return time.Time{}, err
	}
	return fi.ModTime(), nil
}

// fidelityName spells a config's fidelity (normalized configs store full as
// the empty string).
func fidelityName(cfg fleet.Config) string {
	if cfg.Fidelity == "" {
		return string(fleet.FidelityFull)
	}
	return string(cfg.Fidelity)
}
