package queryd

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
)

// meteredSource wraps the real streaming reader and measures how the
// server actually touches it: every delivered run goes through the
// streaming walk (EachRunCtx), and walkPeak records how many walks were in
// flight at once. There is no bulk accessor to count — DatasetSource has
// none, which is the memory bound's compile-time half; this spy is the
// runtime half, proving N concurrent clients cost N one-rack-at-a-time
// walks, never a full-dataset load.
type meteredSource struct {
	DatasetSource
	walksLive int64
	walkPeak  int64
	walks     int64
	runsOut   int64

	// barrier: the first `need` walks park at the walk start until all have
	// arrived, forcing genuine overlap regardless of scheduling luck. Later
	// walks pass through freely.
	need    int64
	arrived int64
	release chan struct{}
}

func (m *meteredSource) EachRunCtx(ctx context.Context, fn func(*fleet.RunSummary, fleet.Class) error) (int, error) {
	live := atomic.AddInt64(&m.walksLive, 1)
	defer atomic.AddInt64(&m.walksLive, -1)
	for {
		peak := atomic.LoadInt64(&m.walkPeak)
		if live <= peak || atomic.CompareAndSwapInt64(&m.walkPeak, peak, live) {
			break
		}
	}
	atomic.AddInt64(&m.walks, 1)
	if m.release != nil {
		if atomic.AddInt64(&m.arrived, 1) == m.need {
			close(m.release)
		}
		select {
		case <-m.release:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return m.DatasetSource.EachRunCtx(ctx, func(r *fleet.RunSummary, c fleet.Class) error {
		atomic.AddInt64(&m.runsOut, 1)
		return fn(r, c)
	})
}

// TestConcurrentLoad is the service's acceptance test, meant for -race: 8
// concurrent streaming clients and 8 concurrent render clients against one
// server over a multi-rack dataset. Every streamed body must be
// byte-identical across clients; every render must be byte-identical to the
// local (CLI-path) render; repeated renders must hit the cache; and all
// delivered data must have flowed through the streaming one-rack-at-a-time
// source walk.
func TestConcurrentLoad(t *testing.T) {
	root := fixtureRoot(t)
	s := New(Config{Root: root, MaxConcurrent: 32})
	metered := &meteredSource{need: 8, release: make(chan struct{})}
	s.Catalog().openDataset = func(dir string) (DatasetSource, error) {
		src, err := dataset.Open(dir)
		if err != nil {
			return nil, err
		}
		metered.DatasetSource = src
		return metered, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r, err := dataset.Open(filepath.Join(root, "data", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if metas := r.RackMetas(); len(metas) < 4 {
		t.Fatalf("fixture has %d racks; the load test needs a multi-rack dataset", len(metas))
	}
	totalRuns := 0
	if _, err := r.EachRun(func(*fleet.RunSummary, fleet.Class) error { totalRuns++; return nil }); err != nil {
		t.Fatal(err)
	}
	renderID := experiments.IDs()[0]
	wantRender := localRender(t, r, renderID)

	const clients = 8
	streamBodies := make([][]byte, clients)
	renderBodies := make([][]byte, clients)
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/datasets/data/tiny/runs")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("stream client %d: %s", i, resp.Status)
				return
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			streamBodies[i] = buf.Bytes()
		}(i)

		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/datasets/data/tiny/renders/" + renderID)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("render client %d: %s", i, resp.Status)
				return
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			renderBodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Digest-stable: all 8 streamed bodies are byte-identical, and carry
	// every run exactly once.
	ref := sha256.Sum256(streamBodies[0])
	refHex := hex.EncodeToString(ref[:])
	for i, b := range streamBodies {
		got := sha256.Sum256(b)
		if hex.EncodeToString(got[:]) != refHex {
			t.Fatalf("stream client %d body digest diverged", i)
		}
	}
	if lines := decodeNDJSON(t, streamBodies[0]); len(lines) != totalRuns {
		t.Fatalf("streamed %d runs, dataset has %d", len(lines), totalRuns)
	}

	// Renders: byte-identical to the local CLI-path render for every client.
	for i, b := range renderBodies {
		if !bytes.Equal(b, wantRender) {
			t.Fatalf("render client %d differs from local render", i)
		}
	}

	// The source spy: every delivered run flowed through a streaming walk
	// (8 stream walks + at most a handful of render walks behind the
	// singleflight), and walks really did overlap.
	walks := atomic.LoadInt64(&metered.walks)
	if walks < clients {
		t.Errorf("%d source walks for %d streaming clients", walks, clients)
	}
	if got := atomic.LoadInt64(&metered.runsOut); got < int64(totalRuns*clients) {
		t.Errorf("source delivered %d runs, want at least %d (8 full walks)", got, totalRuns*clients)
	}
	// The start barrier held the first 8 walks until all arrived, so the
	// peak proves 8 clients really walked the source simultaneously — each
	// inside its own one-rack-at-a-time stream.
	if peak := atomic.LoadInt64(&metered.walkPeak); peak < clients {
		t.Errorf("walk peak %d, want >= %d", peak, clients)
	}

	// Repeat the render: the cache must now serve it (hit ratio > 0).
	resp, err := http.Get(ts.URL + "/v1/datasets/data/tiny/renders/" + renderID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeated render X-Cache=%q", xc)
	}
	snap := s.Metrics().Snapshot()
	if snap.CacheHits < 1 {
		t.Errorf("cache hits %d after repeated renders", snap.CacheHits)
	}
	if snap.RendersBuilt < 1 || snap.RendersBuilt > 4 {
		t.Errorf("renders built %d for %d+1 render requests; singleflight/cache not collapsing", snap.RendersBuilt, clients)
	}
	if snap.RunsStreamed != int64(totalRuns*clients) {
		t.Errorf("runs-streamed counter %d, want %d", snap.RunsStreamed, totalRuns*clients)
	}
	if snap.BytesStreamed < int64(len(streamBodies[0])*clients) {
		t.Errorf("bytes-streamed counter %d below %d", snap.BytesStreamed, len(streamBodies[0])*clients)
	}
}

// pausingSource delivers the first run, then parks the walk until the test
// releases it — so a client that reads line 1 while the walk is provably
// parked has proven incremental delivery (no whole-response buffering).
type pausingSource struct {
	DatasetSource
	firstOut chan struct{}
	release  chan struct{}
}

func (p *pausingSource) EachRunCtx(ctx context.Context, fn func(*fleet.RunSummary, fleet.Class) error) (int, error) {
	delivered := 0
	return p.DatasetSource.EachRunCtx(ctx, func(r *fleet.RunSummary, c fleet.Class) error {
		if err := fn(r, c); err != nil {
			return err
		}
		delivered++
		if delivered == 1 {
			close(p.firstOut)
			select {
			case <-p.release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	})
}

// TestStreamingDelivery pins down the memory-bound contract's visible half:
// the first NDJSON line reaches the client while the server's shard walk is
// still parked on run 1 — the response is produced run by run, never
// accumulated.
func TestStreamingDelivery(t *testing.T) {
	s := New(Config{Root: fixtureRoot(t)})
	gate := &pausingSource{firstOut: make(chan struct{}), release: make(chan struct{})}
	s.Catalog().openDataset = func(dir string) (DatasetSource, error) {
		src, err := dataset.Open(dir)
		if err != nil {
			return nil, err
		}
		gate.DatasetSource = src
		return gate, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/datasets/data/tiny/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-gate.firstOut // walk is now parked after delivering run 1

	br := bufio.NewReader(resp.Body)
	lineDone := make(chan error, 1)
	var line []byte
	go func() {
		var err error
		line, err = br.ReadBytes('\n')
		lineDone <- err
	}()
	select {
	case err := <-lineDone:
		if err != nil {
			t.Fatalf("first line while walk parked: %v", err)
		}
		if len(line) == 0 {
			t.Fatal("empty first line")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first line never arrived while the walk was parked — response is buffered, not streamed")
	}
	close(gate.release)

	var rest bytes.Buffer
	if _, err := rest.ReadFrom(br); err != nil {
		t.Fatal(err)
	}
	if len(decodeNDJSON(t, append(line, rest.Bytes()...))) < 2 {
		t.Fatal("stream did not resume after release")
	}
}
