package queryd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/retry"
)

// Client fetches renders and catalog listings from a queryd server. It
// keeps an in-memory validator cache: responses are remembered with their
// ETag, revalidated with If-None-Match, and served locally on 304 — the
// client-side half of the server's digest-as-ETag contract. Transient
// failures (network errors, 5xx, 429) retry on the shared backoff policy;
// 4xx responses are permanent.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:9010".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Policy is the retry schedule; the zero value gets the same default as
	// the distrib client (6 attempts, 100ms base, jittered).
	Policy retry.Policy
	// Sleep/Rnd are retry seams for deterministic tests.
	Sleep retry.Sleeper
	Rnd   func() float64

	mu     sync.Mutex
	etags  map[string]cachedBody // URL -> last validated response
	reval  int64                 // 304s served from the local cache
	filled int64                 // 200s that (re)filled the cache
}

type cachedBody struct {
	etag string
	body []byte
}

func (c *Client) policy() retry.Policy {
	p := c.Policy
	if p.MaxAttempts == 0 {
		p = retry.Policy{MaxAttempts: 6, Base: 100 * time.Millisecond, Factor: 2, Max: 2 * time.Second, Jitter: 0.2}
	}
	return p
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Stats reports validator-cache traffic: how many fetches were revalidated
// (304, body served locally) vs filled (full 200 download).
func (c *Client) Stats() (revalidated, filled int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reval, c.filled
}

// RenderDataset fetches one dataset render ("tab1", …, or "all").
func (c *Client) RenderDataset(ctx context.Context, name, id, format string) ([]byte, error) {
	return c.get(ctx, fmt.Sprintf("/v1/datasets/%s/renders/%s?format=%s", name, id, format))
}

// RenderSweep fetches one sweep render ("whatif-grid", …, or "all").
func (c *Client) RenderSweep(ctx context.Context, name, id, format string) ([]byte, error) {
	return c.get(ctx, fmt.Sprintf("/v1/sweeps/%s/renders/%s?format=%s", name, id, format))
}

// Catalog fetches the raw catalog listing JSON.
func (c *Client) Catalog(ctx context.Context) ([]byte, error) {
	return c.get(ctx, "/v1/catalog")
}

// get performs one validator-cached GET with retries.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	url := strings.TrimRight(c.BaseURL, "/") + path
	var out []byte
	err := retry.Do(ctx, c.policy(), c.Sleep, c.Rnd, func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		c.mu.Lock()
		cached, haveCached := c.etags[url]
		c.mu.Unlock()
		if haveCached {
			req.Header.Set("If-None-Match", cached.etag)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err // network: transient
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotModified && haveCached:
			c.mu.Lock()
			c.reval++
			c.mu.Unlock()
			out = cached.body
			return nil
		case resp.StatusCode == http.StatusOK:
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			if etag := resp.Header.Get("ETag"); etag != "" {
				c.mu.Lock()
				if c.etags == nil {
					c.etags = make(map[string]cachedBody)
				}
				c.etags[url] = cachedBody{etag: etag, body: body}
				c.filled++
				c.mu.Unlock()
			}
			out = body
			return nil
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			err := fmt.Errorf("queryd client: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
			// Client-side errors won't improve on retry; 429 and 5xx might.
			if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
				return retry.Permanent(err)
			}
			return err
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
