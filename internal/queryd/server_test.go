package queryd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/sweep"
	"repro/internal/switchsim"
)

// The fixture root is generated once per test binary run (dataset + sweep
// generation is the expensive part) and shared read-only by every test —
// exactly the access pattern queryd serves.
var (
	fixOnce sync.Once
	fixDir  string
	fixErr  error
)

func fixConfig() fleet.Config {
	c := fleet.SmallConfig()
	c.RacksPerRegion = 3
	c.ServersPerRack = 12
	c.Hours = []int{2, 6}
	c.Buckets = 200
	c.Workers = 2
	// Arm the host-stack instrument so the fixture exercises the full
	// HostStackRec path: gob shard round-trip, catalog flag, and the
	// "hoststack" render with real series.
	c.HostStack = true
	return c
}

func fixSpec() sweep.Spec {
	return sweep.Spec{
		Name: "tiny",
		Fleet: fleet.Config{
			Seed:           11,
			RacksPerRegion: 1,
			ServersPerRack: 12,
			Hours:          []int{6},
			Buckets:        200,
			Workers:        2,
		},
		Policies: []switchsim.Policy{switchsim.PolicyDT, switchsim.PolicyComplete},
		Alphas:   []float64{1, 2},
	}
}

// fixtureRoot builds (once) a root with a complete dataset under data/tiny,
// a complete sweep under sweeps/tiny, and an incomplete dataset under
// partial.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("fixture generation is slow")
	}
	fixOnce.Do(func() {
		fixDir, fixErr = os.MkdirTemp("", "queryd-fixture-")
		if fixErr != nil {
			return
		}
		ctx := context.Background()
		if _, fixErr = dataset.GenerateDir(ctx, filepath.Join(fixDir, "data", "tiny"), fixConfig(), nil); fixErr != nil {
			return
		}
		if _, fixErr = sweep.Run(ctx, filepath.Join(fixDir, "sweeps", "tiny"), fixSpec(), sweep.Options{Workers: 2}); fixErr != nil {
			return
		}
		_, fixErr = dataset.Create(filepath.Join(fixDir, "partial"), fixConfig())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if fixDir != "" {
		os.RemoveAll(fixDir)
	}
	os.Exit(code)
}

// newTestServer stands up a queryd over the shared fixture root.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Root = fixtureRoot(t)
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/catalog", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog: %s: %s", resp.Status, body)
	}
	var cat struct {
		Datasets []DatasetInfo `json:"datasets"`
		Sweeps   []SweepInfo   `json:"sweeps"`
	}
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatalf("catalog decode: %v\n%s", err, body)
	}
	if len(cat.Datasets) != 2 {
		t.Fatalf("catalog datasets: %+v, want data/tiny and partial", cat.Datasets)
	}
	// Sorted by name: data/tiny before partial.
	if cat.Datasets[0].Name != "data/tiny" || !cat.Datasets[0].Complete || cat.Datasets[0].Digest == "" {
		t.Errorf("data/tiny row: %+v", cat.Datasets[0])
	}
	if !cat.Datasets[0].HostStack {
		t.Errorf("data/tiny row does not surface the host-stack instrument: %+v", cat.Datasets[0])
	}
	if cat.Datasets[1].Name != "partial" || cat.Datasets[1].Complete || cat.Datasets[1].Digest != "" {
		t.Errorf("partial row: %+v", cat.Datasets[1])
	}
	if len(cat.Sweeps) != 1 || cat.Sweeps[0].Name != "sweeps/tiny" || !cat.Sweeps[0].Complete ||
		cat.Sweeps[0].ResultDigest == "" || cat.Sweeps[0].PointsDone != cat.Sweeps[0].PointsTotal {
		t.Errorf("sweeps: %+v", cat.Sweeps)
	}
}

func TestDatasetDetailAndRacks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/datasets/data/tiny", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail: %s: %s", resp.Status, body)
	}
	var detail struct {
		Info   DatasetInfo  `json:"info"`
		Config fleet.Config `json:"config"`
		Shards []struct {
			Region   string `json:"region"`
			Complete bool   `json:"complete"`
			Runs     int    `json:"runs"`
			Digest   string `json:"digest"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	want := fixConfig().WithDefaults()
	if detail.Config.Seed != want.Seed || detail.Info.Racks == 0 {
		t.Errorf("detail: %+v", detail.Info)
	}
	if len(detail.Shards) != detail.Info.ShardsTotal {
		t.Errorf("shard table has %d rows, want %d", len(detail.Shards), detail.Info.ShardsTotal)
	}
	for _, sh := range detail.Shards {
		if !sh.Complete || sh.Digest == "" || sh.Runs == 0 {
			t.Errorf("shard row: %+v", sh)
		}
	}

	resp, body = get(t, ts.URL+"/v1/datasets/data/tiny/racks", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("racks: %s", resp.Status)
	}
	var metas []fleet.RackMeta
	if err := json.Unmarshal(body, &metas); err != nil {
		t.Fatal(err)
	}
	if len(metas) != detail.Info.Racks {
		t.Errorf("%d rack metas, want %d", len(metas), detail.Info.Racks)
	}
}

// decodeNDJSON parses a streaming response body into lines.
func decodeNDJSON(t *testing.T, body []byte) []streamLine {
	t.Helper()
	var out []streamLine
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := dataset.Open(filepath.Join(fixtureRoot(t), "data", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if _, err := r.EachRun(func(*fleet.RunSummary, fleet.Class) error { total++; return nil }); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/v1/datasets/data/tiny/runs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := decodeNDJSON(t, body)
	if len(lines) != total {
		t.Fatalf("streamed %d runs, reader walk has %d", len(lines), total)
	}

	// Filters narrow the stream.
	region := lines[0].Run.Region
	resp, body = get(t, ts.URL+"/v1/datasets/data/tiny/runs?region="+region, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered runs: %s", resp.Status)
	}
	filtered := decodeNDJSON(t, body)
	if len(filtered) == 0 || len(filtered) >= total {
		t.Errorf("region filter returned %d of %d", len(filtered), total)
	}
	for _, l := range filtered {
		if l.Run.Region != region {
			t.Fatalf("filter leak: %+v", l.Run)
		}
	}
	resp, body = get(t, ts.URL+"/v1/datasets/data/tiny/runs?limit=3", nil)
	if ln := decodeNDJSON(t, body); resp.StatusCode != http.StatusOK || len(ln) != 3 {
		t.Errorf("limit=3 returned %d lines (%s)", len(ln), resp.Status)
	}
	resp, body = get(t, ts.URL+"/v1/datasets/data/tiny/runs?rack=zero", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rack filter: %s: %s", resp.Status, body)
	}

	// The ETag revalidates: unchanged store + same query → 304, no body.
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/runs", nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("stream response has no ETag")
	}
	resp, body = get(t, ts.URL+"/v1/datasets/data/tiny/runs", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("revalidation: %s with %d body bytes", resp.Status, len(body))
	}
	// A different query is a different resource with a different validator.
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/runs?limit=3", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("different query matched old ETag: %s", resp.Status)
	}
}

func TestStreamRackRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := dataset.Open(filepath.Join(fixtureRoot(t), "data", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	meta := r.RackMetas()[0]
	want, err := r.RackRuns(meta.Region, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/datasets/data/tiny/racks/%s/%d/runs", ts.URL, meta.Region, meta.ID)
	resp, body := get(t, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rack runs: %s: %s", resp.Status, body)
	}
	lines := decodeNDJSON(t, body)
	if len(lines) != len(want) {
		t.Fatalf("rack stream has %d runs, RackRuns %d", len(lines), len(want))
	}
	for _, l := range lines {
		if l.Class != meta.Class.String() {
			t.Fatalf("rack stream class %q, want %q", l.Class, meta.Class)
		}
	}
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/racks/nowhere/0/runs", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing rack: %s", resp.Status)
	}
}

// localRender renders an experiment directly, the way cmd/experiments does
// — the server's cached render must be byte-identical.
func localRender(t *testing.T, src experiments.Source, id string) []byte {
	t.Helper()
	res, err := experiments.Run(id, src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	res.Render(&buf)
	return []byte(buf.String())
}

func TestDatasetRenderCacheAndETag(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := experiments.IDs()[0]

	resp, first := get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render: %s: %s", resp.Status, first)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first render X-Cache=%q", xc)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("render has no ETag")
	}

	resp, second := get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id, nil)
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second render X-Cache=%q", xc)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("repeated render is not byte-identical")
	}

	// The served bytes match a local render over the same store.
	r, err := dataset.Open(filepath.Join(fixtureRoot(t), "data", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if want := localRender(t, r, id); !bytes.Equal(first, want) {
		t.Fatalf("server render differs from local render:\n--- server\n%s\n--- local\n%s", first, want)
	}

	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("render revalidation: %s", resp.Status)
	}

	if snap := s.Metrics().Snapshot(); snap.CacheHits < 1 || snap.CacheMisses < 1 || snap.RendersBuilt != 1 {
		t.Errorf("metrics after hit+miss: %+v", snap)
	}

	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/renders/no-such-figure", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown render: %s", resp.Status)
	}
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id+"?format=yaml", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: %s", resp.Status)
	}

	// md and json formats serve and differ from text.
	_, md := get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id+"?format=md", nil)
	var parsed []*experiments.Result
	_, js := get(t, ts.URL+"/v1/datasets/data/tiny/renders/"+id+"?format=json", nil)
	if err := json.Unmarshal(js, &parsed); err != nil || len(parsed) != 1 || parsed[0].ID != id {
		t.Errorf("json render: err=%v parsed=%d", err, len(parsed))
	}
	if bytes.Equal(md, first) {
		t.Error("md render identical to text render")
	}
}

// TestHostStackRender serves the host-stack experiment over the instrumented
// fixture: the table must carry real per-class latency rows (not the
// "no series" note) and revalidate via ETag like every other render.
func TestHostStackRender(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/datasets/data/tiny/renders/hoststack", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hoststack render: %s: %s", resp.Status, body)
	}
	if strings.Contains(string(body), "no host-stack series") {
		t.Fatalf("render fell back to the uninstrumented note:\n%s", body)
	}
	for _, class := range []string{"RegA-Typical", "RegA-High", "RegB"} {
		if !strings.Contains(string(body), class) {
			t.Errorf("render missing class row %s:\n%s", class, body)
		}
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("hoststack render has no ETag")
	}
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/renders/hoststack", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("hoststack revalidation: %s", resp.Status)
	}
}

func TestSweepRender(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/sweeps/sweeps/tiny", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep info: %s: %s", resp.Status, body)
	}

	resp, served := get(t, ts.URL+"/v1/sweeps/sweeps/tiny/renders/whatif-grid", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep render: %s: %s", resp.Status, served)
	}
	res, err := sweep.Open(filepath.Join(fixtureRoot(t), "sweeps", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	for _, r := range sweep.Report(res) {
		if r.ID == "whatif-grid" {
			r.Render(&buf)
		}
	}
	if want := buf.String(); string(served) != want {
		t.Fatalf("sweep render differs from local report:\n--- server\n%s\n--- local\n%s", served, want)
	}

	etag := resp.Header.Get("ETag")
	resp, _ = get(t, ts.URL+"/v1/sweeps/sweeps/tiny/renders/whatif-grid", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("sweep revalidation: %s", resp.Status)
	}
	resp, _ = get(t, ts.URL+"/v1/sweeps/sweeps/tiny/renders/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep render: %s", resp.Status)
	}
}

func TestIncompleteDatasetConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/datasets/partial/runs", "/v1/datasets/partial/renders/tab1"} {
		resp, body := get(t, ts.URL+path, nil)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s on incomplete dataset: %s: %s", path, resp.Status, body)
		}
	}
}

func TestNameEscapesRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Path traversal must not resolve; the default mux also normalizes, so
	// exercise the catalog layer directly too.
	if _, err := NewCatalog(fixtureRoot(t)).Dataset("../outside"); err == nil {
		t.Error("catalog resolved a traversal name")
	}
	resp, _ := get(t, ts.URL+"/v1/datasets/", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty name: %s", resp.Status)
	}
}

// blockingSource gates EachRunCtx walks so tests can hold a streaming
// request in flight deterministically.
type blockingSource struct {
	DatasetSource
	release chan struct{}
	started chan struct{}
}

func (b *blockingSource) EachRunCtx(ctx context.Context, fn func(*fleet.RunSummary, fleet.Class) error) (int, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return b.DatasetSource.EachRunCtx(ctx, fn)
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	gate := &blockingSource{release: make(chan struct{}), started: make(chan struct{}, 1)}
	s.Catalog().openDataset = func(dir string) (DatasetSource, error) {
		src, err := dataset.Open(dir)
		if err != nil {
			return nil, err
		}
		gate.DatasetSource = src
		return gate, nil
	}

	done := make(chan int, 1)
	go func() {
		resp, _ := get(t, ts.URL+"/v1/datasets/data/tiny/runs", nil)
		done <- resp.StatusCode
	}()
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first stream never started")
	}

	resp, body := get(t, ts.URL+"/v1/datasets/data/tiny/runs", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream at capacity: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if snap := s.Metrics().Snapshot(); snap.Throttled != 1 {
		t.Errorf("throttled counter: %+v", snap)
	}

	close(gate.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held stream finished with %d", code)
	}

	// Capacity freed: the same request now serves.
	resp, _ = get(t, ts.URL+"/v1/datasets/data/tiny/runs?limit=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: %s", resp.Status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get(t, ts.URL+"/v1/catalog", nil)
	get(t, ts.URL+"/v1/datasets/data/tiny/runs?limit=1", nil)
	resp, body := get(t, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	for _, want := range []string{
		`queryd_requests_total{route="catalog",code="200"}`,
		`queryd_requests_total{route="datasets",code="200"}`,
		"queryd_request_seconds_bucket",
		"queryd_streamed_runs_total 1",
		"queryd_inflight_requests",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

func TestGracefulDrainServesInflightStream(t *testing.T) {
	s := New(Config{Root: fixtureRoot(t)})
	gate := &blockingSource{release: make(chan struct{}), started: make(chan struct{}, 1)}
	s.Catalog().openDataset = func(dir string) (DatasetSource, error) {
		src, err := dataset.Open(dir)
		if err != nil {
			return nil, err
		}
		gate.DatasetSource = src
		return gate, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	lines := make(chan int, 1)
	go func() {
		resp, body := get(t, ts.URL+"/v1/datasets/data/tiny/runs", nil)
		done <- resp.StatusCode
		lines <- len(decodeNDJSON(t, body))
	}()
	<-gate.started

	// Initiate shutdown while the stream is parked, then release it; the
	// client must still receive the complete body.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- ts.Config.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond)
	close(gate.release)

	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight stream during drain: %d", code)
	}
	if n := <-lines; n == 0 {
		t.Fatal("drained stream delivered no lines")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
