package queryd

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/retry"
)

func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func TestClientRevalidates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := &Client{BaseURL: ts.URL}
	id := experiments.IDs()[0]

	first, err := c.RenderDataset(context.Background(), "data/tiny", id, "text")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("empty render")
	}
	second, err := c.RenderDataset(context.Background(), "data/tiny", id, "text")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("revalidated body differs")
	}
	if reval, filled := c.Stats(); reval != 1 || filled != 1 {
		t.Errorf("stats after fill+revalidate: reval=%d filled=%d", reval, filled)
	}

	if _, err := c.RenderSweep(context.Background(), "sweeps/tiny", "whatif-grid", "text"); err != nil {
		t.Fatal(err)
	}
	if cat, err := c.Catalog(context.Background()); err != nil || !bytes.Contains(cat, []byte("data/tiny")) {
		t.Errorf("catalog fetch: %v", err)
	}
}

func TestClientRetriesTransient(t *testing.T) {
	var calls int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("ETag", `"x"`)
		w.Write([]byte("payload"))
	}))
	defer flaky.Close()

	c := &Client{BaseURL: flaky.URL, Policy: retry.Policy{MaxAttempts: 5, Base: 1}, Sleep: noSleep}
	body, err := c.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "payload" || atomic.LoadInt64(&calls) != 3 {
		t.Errorf("body %q after %d calls", body, calls)
	}
}

func TestClientPermanent4xx(t *testing.T) {
	var calls int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&calls, 1)
		http.Error(w, "no such render", http.StatusNotFound)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Policy: retry.Policy{MaxAttempts: 5, Base: 1}, Sleep: noSleep}
	if _, err := c.RenderDataset(context.Background(), "x", "y", "text"); err == nil {
		t.Fatal("expected error")
	}
	if n := atomic.LoadInt64(&calls); n != 1 {
		t.Errorf("4xx retried %d times", n)
	}
}
