package queryd

import (
	"container/list"
	"sync"
)

// entry is one cached render: the response body plus the headers that make
// it servable without recomputation.
type entry struct {
	Body        []byte
	ContentType string
	// ETag is the strong validator clients revalidate with; it derives from
	// the store digest + render key, so it changes exactly when the
	// underlying data or the requested render does.
	ETag string
}

func (e *entry) size() int64 { return int64(len(e.Body)) + int64(len(e.ETag)) + int64(len(e.ContentType)) }

// cache is a byte-bounded LRU with singleflight fill: concurrent misses on
// one key collapse to a single computation, every waiter gets the one
// result. Keys are the render cache keys (store digest | render | params),
// so an updated dataset naturally misses instead of serving stale bytes.
type cache struct {
	mu    sync.Mutex
	max   int64 // byte budget; <=0 disables caching (every Get computes)
	used  int64
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheItem

	flights map[string]*flight

	onEvict func() // metrics hook; must not call back into the cache
}

type cacheItem struct {
	key string
	ent *entry
}

// flight is one in-progress fill; followers wait on done.
type flight struct {
	done chan struct{}
	ent  *entry
	err  error
}

func newCache(maxBytes int64, onEvict func()) *cache {
	return &cache{
		max:     maxBytes,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
		onEvict: onEvict,
	}
}

// lookup returns a cached entry and bumps its recency.
func (c *cache) lookup(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).ent, true
}

// store inserts an entry and evicts LRU items past the byte budget.
func (c *cache) store(key string, ent *entry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A racing fill already stored it; keep the existing entry's recency.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheItem{key: key, ent: ent})
	c.items[key] = el
	c.used += ent.size()
	for c.used > c.max && c.ll.Len() > 1 {
		back := c.ll.Back()
		if back == nil {
			break
		}
		item := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, item.key)
		c.used -= item.ent.size()
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// getOrFill returns the cached entry for key, or computes it via fill.
// Concurrent callers for the same key share one fill (singleflight): the
// first caller computes, the rest block until it finishes and reuse its
// result. A failed fill is not cached; every waiter sees the error and the
// next request retries. hit reports whether the entry came from cache
// (false for the computing caller AND its followers — they waited on a
// computation, not a cache).
func (c *cache) getOrFill(key string, fill func() (*entry, error)) (ent *entry, hit bool, err error) {
	if ent, ok := c.lookup(key); ok {
		return ent, true, nil
	}

	c.mu.Lock()
	// Re-check under the flight lock: the entry may have landed between the
	// lookup and here.
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheItem).ent
		c.mu.Unlock()
		return ent, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.ent, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.ent, f.err = fill()
	if f.err == nil {
		c.store(key, f.ent)
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.ent, false, f.err
}

// len returns the number of cached entries (tests).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
