package queryd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the fixed histogram upper bounds, in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// routeStats accumulates one route's request counters.
type routeStats struct {
	byCode  map[int]int64
	buckets []int64 // len(latencyBuckets)+1; last is +Inf
	sum     float64
	count   int64
}

// Metrics is queryd's instrumentation: request counts and latency
// histograms per route, an in-flight gauge, streamed-byte and cache
// counters. It renders in the Prometheus text exposition format on
// /metrics, with no client library — the repo is stdlib-only.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	inflight      int64
	bytesStreamed int64
	runsStreamed  int64

	cacheHits    int64
	cacheMisses  int64
	cacheEvicts  int64
	throttled    int64
	rendersBuilt int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeStats)}
}

// Request records one finished request on a route.
func (m *Metrics) Request(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{byCode: make(map[int]int64), buckets: make([]int64, len(latencyBuckets)+1)}
		m.routes[route] = rs
	}
	rs.byCode[code]++
	sec := elapsed.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	rs.buckets[i]++
	rs.sum += sec
	rs.count++
}

// InflightAdd moves the in-flight gauge; call with +1 at request start and
// -1 at the end.
func (m *Metrics) InflightAdd(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

// StreamedBytes accounts payload bytes written by streaming endpoints.
func (m *Metrics) StreamedBytes(n int64) {
	m.mu.Lock()
	m.bytesStreamed += n
	m.mu.Unlock()
}

// StreamedRuns accounts NDJSON records delivered by streaming endpoints.
func (m *Metrics) StreamedRuns(n int64) {
	m.mu.Lock()
	m.runsStreamed += n
	m.mu.Unlock()
}

// CacheHit / CacheMiss / CacheEvict account render-cache traffic.
func (m *Metrics) CacheHit()   { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) CacheMiss()  { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *Metrics) CacheEvict() { m.mu.Lock(); m.cacheEvicts++; m.mu.Unlock() }

// Throttled counts requests refused with 429 by the concurrency limiter.
func (m *Metrics) Throttled() { m.mu.Lock(); m.throttled++; m.mu.Unlock() }

// RenderBuilt counts renders actually computed (cache misses that did the
// work; singleflight followers don't count).
func (m *Metrics) RenderBuilt() { m.mu.Lock(); m.rendersBuilt++; m.mu.Unlock() }

// Snapshot is the counter view tests assert on.
type Snapshot struct {
	Inflight      int64
	BytesStreamed int64
	RunsStreamed  int64
	CacheHits     int64
	CacheMisses   int64
	CacheEvicts   int64
	Throttled     int64
	RendersBuilt  int64
}

// Snapshot returns the scalar counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		Inflight:      m.inflight,
		BytesStreamed: m.bytesStreamed,
		RunsStreamed:  m.runsStreamed,
		CacheHits:     m.cacheHits,
		CacheMisses:   m.cacheMisses,
		CacheEvicts:   m.cacheEvicts,
		Throttled:     m.throttled,
		RendersBuilt:  m.rendersBuilt,
	}
}

// WriteTo renders the registry in Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := &countingWriter{w: w}

	fmt.Fprintf(cw, "# TYPE queryd_requests_total counter\n")
	for _, route := range sortedKeys(m.routes) {
		rs := m.routes[route]
		for _, code := range sortedIntKeys(rs.byCode) {
			fmt.Fprintf(cw, "queryd_requests_total{route=%q,code=\"%d\"} %d\n", route, code, rs.byCode[code])
		}
	}

	fmt.Fprintf(cw, "# TYPE queryd_request_seconds histogram\n")
	for _, route := range sortedKeys(m.routes) {
		rs := m.routes[route]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += rs.buckets[i]
			fmt.Fprintf(cw, "queryd_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", route, ub, cum)
		}
		cum += rs.buckets[len(latencyBuckets)]
		fmt.Fprintf(cw, "queryd_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(cw, "queryd_request_seconds_sum{route=%q} %g\n", route, rs.sum)
		fmt.Fprintf(cw, "queryd_request_seconds_count{route=%q} %d\n", route, rs.count)
	}

	fmt.Fprintf(cw, "# TYPE queryd_inflight_requests gauge\nqueryd_inflight_requests %d\n", m.inflight)
	fmt.Fprintf(cw, "# TYPE queryd_streamed_bytes_total counter\nqueryd_streamed_bytes_total %d\n", m.bytesStreamed)
	fmt.Fprintf(cw, "# TYPE queryd_streamed_runs_total counter\nqueryd_streamed_runs_total %d\n", m.runsStreamed)
	fmt.Fprintf(cw, "# TYPE queryd_cache_hits_total counter\nqueryd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(cw, "# TYPE queryd_cache_misses_total counter\nqueryd_cache_misses_total %d\n", m.cacheMisses)
	fmt.Fprintf(cw, "# TYPE queryd_cache_evictions_total counter\nqueryd_cache_evictions_total %d\n", m.cacheEvicts)
	fmt.Fprintf(cw, "# TYPE queryd_throttled_total counter\nqueryd_throttled_total %d\n", m.throttled)
	fmt.Fprintf(cw, "# TYPE queryd_renders_built_total counter\nqueryd_renders_built_total %d\n", m.rendersBuilt)
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
