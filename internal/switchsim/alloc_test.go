package switchsim

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestEnqueueDequeueZeroAlloc asserts the switch's steady-state forwarding
// path — admission, FIFO push, drain event, dequeue accounting, delivery —
// performs zero heap allocations per segment once the pool and rings warm up,
// under every sharing policy: the interface dispatch and the policies' own
// Admit/Release/OnDequeue hooks must all stay off the heap.
func TestEnqueueDequeueZeroAlloc(t *testing.T) {
	for _, pol := range KnownPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			cfg := DefaultConfig(4)
			cfg.Policy = pol
			sw := New(eng, cfg)
			pool := sw.Pool()
			sw.ConnectPort(0, func(seg *netsim.Segment) { pool.Put(seg) })

			send := func() {
				seg := pool.Get()
				seg.Flow = netsim.FlowKey{Src: 500, Dst: 0, SrcPort: 9, DstPort: 80}
				seg.Size = 9000
				seg.Flags = netsim.FlagECT
				sw.ForwardFromFabric(0, seg)
				eng.RunFor(100 * sim.Microsecond)
			}
			// Warm the pool free list, the egress FIFO ring and the event queue.
			for i := 0; i < 64; i++ {
				send()
			}
			allocs := testing.AllocsPerRun(1000, send)
			if allocs != 0 {
				t.Fatalf("enqueue/dequeue allocates %.2f objects per segment, want 0", allocs)
			}

			st := sw.QueueStats(0)
			if st.EnqueuedSegments == 0 || st.DequeuedBytes == 0 {
				t.Fatal("traffic did not traverse the queue")
			}
			if sw.TotalDiscards != 0 {
				t.Fatalf("unexpected discards: %d", sw.TotalDiscards)
			}
		})
	}
}
