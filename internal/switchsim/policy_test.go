package switchsim

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func newPolicySwitch(policy Policy, ports int) (*sim.Engine, *Switch) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ports)
	cfg.Policy = policy
	sw := New(eng, cfg)
	for p := 0; p < ports; p++ {
		sw.ConnectPort(p, func(*netsim.Segment) {})
	}
	sw.SetUplink(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	return eng, sw
}

// overload stuffs one queue with roughly twice the shared pool.
func overload(sw *Switch, port int) {
	target := 2 * sw.SharedCap()
	for sent := 0; sent < target; sent += 9066 {
		sw.ForwardFromFabric(port, dataSeg(9066, uint16(port)))
	}
}

func TestPolicyCompleteAllowsFullPool(t *testing.T) {
	eng, sw := newPolicySwitch(PolicyComplete, 8)
	overload(sw, 0)
	peak := sw.QueueStats(0).PeakBytes
	// Complete sharing lets a lone queue take (nearly) the whole pool plus
	// its dedicated reserve.
	wantMin := sw.SharedCap() - 9066
	if peak < wantMin {
		t.Errorf("complete-sharing peak %d below pool size %d", peak, wantMin)
	}
	eng.Run()
}

func TestPolicyStaticEnforcesQuota(t *testing.T) {
	eng, sw := newPolicySwitch(PolicyStatic, 16)
	overload(sw, 0)
	peak := sw.QueueStats(0).PeakBytes
	quota := sw.SharedCap()/4 /* 16 ports, 4 quadrants -> 4 queues/quadrant */ +
		sw.Config().DedicatedPerQueue
	if peak > quota+9066 {
		t.Errorf("static-partition peak %d exceeds quota %d", peak, quota)
	}
	eng.Run()
}

func TestPolicyOrderingUnderOverload(t *testing.T) {
	// Burst absorption headroom for a lone queue: complete > DT > static >
	// bshare. (16 ports: bshare quota ~312 KB < static quota Cap/4 < DT
	// lone-queue share Cap/2 < Cap.)
	peaks := map[Policy]int{}
	for _, pol := range KnownPolicies() {
		eng, sw := newPolicySwitch(pol, 16)
		overload(sw, 0)
		peaks[pol] = sw.QueueStats(0).PeakBytes
		eng.Run()
	}
	if !(peaks[PolicyComplete] > peaks[PolicyDT] && peaks[PolicyDT] > peaks[PolicyStatic] &&
		peaks[PolicyStatic] > peaks[PolicyBShare]) {
		t.Errorf("peak ordering violated: complete=%d dt=%d static=%d bshare=%d",
			peaks[PolicyComplete], peaks[PolicyDT], peaks[PolicyStatic], peaks[PolicyBShare])
	}
	// ABM with every queue draining at line rate keeps mu near 1, so its peak
	// sits near DT's (within one jumbo segment of rounding).
	if diff := peaks[PolicyABM] - peaks[PolicyDT]; diff > 9066 || diff < -9066 {
		t.Errorf("abm peak %d strays from dt peak %d under uniform drains",
			peaks[PolicyABM], peaks[PolicyDT])
	}
}

func TestPolicyBShareBoundsDelay(t *testing.T) {
	eng, sw := newPolicySwitch(PolicyBShare, 16)
	overload(sw, 0)
	cfg := sw.Config()
	// Peak shared occupancy may not exceed the delay budget's worth of
	// line-rate drain; the whole-segment admit granularity allows one segment
	// of slop on top of the dedicated reserve.
	quota := int(cfg.BShareDelayTarget.Seconds() * float64(cfg.DownlinkRateBps) / 8)
	if limit := quota + cfg.DedicatedPerQueue + 9066; sw.QueueStats(0).PeakBytes > limit {
		t.Errorf("bshare peak %d exceeds delay-budget limit %d", sw.QueueStats(0).PeakBytes, limit)
	}
	eng.Run()
}

func TestPolicyStringNames(t *testing.T) {
	names := map[Policy]string{
		PolicyDT:       "dynamic-threshold",
		PolicyStatic:   "static-partition",
		PolicyComplete: "complete-sharing",
		PolicyBShare:   "bshare",
		PolicyABM:      "abm",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestPoliciesNeverOverflowPool(t *testing.T) {
	for _, pol := range KnownPolicies() {
		eng, sw := newPolicySwitch(pol, 8)
		rng := sim.NewRNG(uint64(pol) + 1)
		for i := 0; i < 3000; i++ {
			port := rng.Intn(8)
			sw.ForwardFromFabric(port, dataSeg(rng.Intn(9000)+66, uint16(port)))
			for q := 0; q < sw.Config().Quadrants; q++ {
				if sw.SharedUsed(q) > sw.SharedCap() {
					t.Fatalf("%v: quadrant %d overflow", pol, q)
				}
			}
		}
		eng.Run()
		for q := 0; q < sw.Config().Quadrants; q++ {
			if sw.SharedUsed(q) != 0 {
				t.Errorf("%v: quadrant %d not drained", pol, q)
			}
		}
	}
}
