package switchsim

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func newPolicySwitch(policy Policy, ports int) (*sim.Engine, *Switch) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ports)
	cfg.Policy = policy
	sw := New(eng, cfg)
	for p := 0; p < ports; p++ {
		sw.ConnectPort(p, func(*netsim.Segment) {})
	}
	sw.SetUplink(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	return eng, sw
}

// overload stuffs one queue with roughly twice the shared pool.
func overload(sw *Switch, port int) {
	target := 2 * sw.SharedCap()
	for sent := 0; sent < target; sent += 9066 {
		sw.ForwardFromFabric(port, dataSeg(9066, uint16(port)))
	}
}

func TestPolicyCompleteAllowsFullPool(t *testing.T) {
	eng, sw := newPolicySwitch(PolicyComplete, 8)
	overload(sw, 0)
	peak := sw.QueueStats(0).PeakBytes
	// Complete sharing lets a lone queue take (nearly) the whole pool plus
	// its dedicated reserve.
	wantMin := sw.SharedCap() - 9066
	if peak < wantMin {
		t.Errorf("complete-sharing peak %d below pool size %d", peak, wantMin)
	}
	eng.Run()
}

func TestPolicyStaticEnforcesQuota(t *testing.T) {
	eng, sw := newPolicySwitch(PolicyStatic, 16)
	overload(sw, 0)
	peak := sw.QueueStats(0).PeakBytes
	quota := sw.SharedCap()/4 /* 16 ports, 4 quadrants -> 4 queues/quadrant */ +
		sw.Config().DedicatedPerQueue
	if peak > quota+9066 {
		t.Errorf("static-partition peak %d exceeds quota %d", peak, quota)
	}
	eng.Run()
}

func TestPolicyOrderingUnderOverload(t *testing.T) {
	// Burst absorption headroom for a lone queue: complete > DT > static.
	// (16 ports: static quota Cap/4 < DT lone-queue share Cap/2 < Cap.)
	peaks := map[Policy]int{}
	for _, pol := range []Policy{PolicyDT, PolicyStatic, PolicyComplete} {
		eng, sw := newPolicySwitch(pol, 16)
		overload(sw, 0)
		peaks[pol] = sw.QueueStats(0).PeakBytes
		eng.Run()
	}
	if !(peaks[PolicyComplete] > peaks[PolicyDT] && peaks[PolicyDT] > peaks[PolicyStatic]) {
		t.Errorf("peak ordering violated: complete=%d dt=%d static=%d",
			peaks[PolicyComplete], peaks[PolicyDT], peaks[PolicyStatic])
	}
}

func TestPolicyStringNames(t *testing.T) {
	names := map[Policy]string{
		PolicyDT:       "dynamic-threshold",
		PolicyStatic:   "static-partition",
		PolicyComplete: "complete-sharing",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestPoliciesNeverOverflowPool(t *testing.T) {
	for _, pol := range []Policy{PolicyDT, PolicyStatic, PolicyComplete} {
		eng, sw := newPolicySwitch(pol, 8)
		rng := sim.NewRNG(uint64(pol) + 1)
		for i := 0; i < 3000; i++ {
			port := rng.Intn(8)
			sw.ForwardFromFabric(port, dataSeg(rng.Intn(9000)+66, uint16(port)))
			for q := 0; q < sw.Config().Quadrants; q++ {
				if sw.SharedUsed(q) > sw.SharedCap() {
					t.Fatalf("%v: quadrant %d overflow", pol, q)
				}
			}
		}
		eng.Run()
		for q := 0; q < sw.Config().Quadrants; q++ {
			if sw.SharedUsed(q) != 0 {
				t.Errorf("%v: quadrant %d not drained", pol, q)
			}
		}
	}
}
