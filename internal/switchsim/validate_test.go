package switchsim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, ports := range []int{1, 8, 16, 48} {
		if err := DefaultConfig(ports).Validate(); err != nil {
			t.Errorf("DefaultConfig(%d): %v", ports, err)
		}
	}
	// The zero-value knobs (Alpha, ECNThreshold, TotalBuffer, ...) mean "use
	// the production default" and must stay valid.
	if err := (Config{Ports: 4}).Validate(); err != nil {
		t.Errorf("minimal config: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := func() Config { return DefaultConfig(16) }
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no ports", func(c *Config) { c.Ports = 0 }, "port"},
		{"unknown policy", func(c *Config) { c.Policy = Policy(7) }, "unknown sharing policy"},
		{"negative policy", func(c *Config) { c.Policy = Policy(-1) }, "unknown sharing policy"},
		{"negative alpha", func(c *Config) { c.Alpha = -0.5 }, "Alpha"},
		{"NaN alpha", func(c *Config) { c.Alpha = math.NaN() }, "Alpha"},
		{"Inf alpha", func(c *Config) { c.Alpha = math.Inf(1) }, "Alpha"},
		{"negative ECN", func(c *Config) { c.ECNThreshold = -2 }, "ECN threshold"},
		{"ECN beyond buffer", func(c *Config) { c.ECNThreshold = 32 << 20 }, "ECN threshold"},
		{"negative BShare delay", func(c *Config) { c.Policy = PolicyBShare; c.BShareDelayTarget = -1 }, "BShare delay"},
		{"reserves eat the pool", func(c *Config) { c.DedicatedPerQueue = 2 << 20 }, "dedicated reserves"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateNonPositiveAlphaOnlyMattersUnderDT(t *testing.T) {
	// Alpha is ignored by the non-threshold-scaling disciplines, so a spec
	// that zeroes it while sweeping those policies must still pass (zero means
	// "default" and the default is 1, which every policy tolerates).
	for _, pol := range []Policy{PolicyStatic, PolicyComplete, PolicyBShare} {
		cfg := DefaultConfig(8)
		cfg.Policy = pol
		cfg.Alpha = 0
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v with zero alpha: %v", pol, err)
		}
	}
}

func TestValidateECNOff(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.ECNThreshold = ECNOff
	if err := cfg.Validate(); err != nil {
		t.Errorf("ECNOff rejected: %v", err)
	}
	// The sentinel must survive withDefaults — if the zero-value backfill
	// caught it, "marking disabled" would silently become "default 120 KB".
	if got := cfg.withDefaults().ECNThreshold; got != ECNOff {
		t.Errorf("withDefaults rewrote ECNOff to %d", got)
	}
}

func TestPolicyKnown(t *testing.T) {
	for _, p := range KnownPolicies() {
		if !p.Known() {
			t.Errorf("%v.Known() = false", p)
		}
	}
	for _, p := range []Policy{Policy(-1), Policy(5), Policy(99)} {
		if p.Known() {
			t.Errorf("Policy(%d).Known() = true", int(p))
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range KnownPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	short := map[string]Policy{
		"dt": PolicyDT, "DT": PolicyDT,
		"static": PolicyStatic, " Complete ": PolicyComplete,
		"bshare": PolicyBShare, "ABM": PolicyABM,
	}
	for s, want := range short {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v (want %v)", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("wfq"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	type doc struct {
		P Policy `json:"p"`
	}
	for _, p := range KnownPolicies() {
		b, err := json.Marshal(doc{P: p})
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		if want := `{"p":"` + p.String() + `"}`; string(b) != want {
			t.Errorf("marshal %v = %s, want %s", p, b, want)
		}
		var d doc
		if err := json.Unmarshal(b, &d); err != nil || d.P != p {
			t.Errorf("unmarshal %s = %v, %v", b, d.P, err)
		}
	}
	if _, err := json.Marshal(doc{P: Policy(9)}); err == nil {
		t.Error("marshal accepted an unknown policy")
	}
	var d doc
	if err := json.Unmarshal([]byte(`{"p":"fifo-drop"}`), &d); err == nil {
		t.Error("unmarshal accepted an unknown policy name")
	}
}

func TestPolicyStringUnknown(t *testing.T) {
	if s := Policy(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown policy String() = %q, want the raw value surfaced", s)
	}
}
