package switchsim

import "repro/internal/netsim"

// segFIFO is a growable circular queue of segments. Each egress queue churns
// through millions of segments per simulated second; a plain slice advanced
// with `s = s[1:]` forces a fresh allocation every time append catches up
// with the sliced-off head, while the ring reuses one backing array.
type segFIFO struct {
	buf  []*netsim.Segment
	head int
	n    int
}

// Len returns the number of queued segments.
func (f *segFIFO) Len() int { return f.n }

// Push appends seg at the tail, growing the ring if full.
func (f *segFIFO) Push(seg *netsim.Segment) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = seg
	f.n++
}

// Front returns the head segment. Callers must check Len first.
func (f *segFIFO) Front() *netsim.Segment {
	return f.buf[f.head]
}

// PopFront removes and clears the head slot.
func (f *segFIFO) PopFront() {
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	if f.n == 0 {
		f.head = 0
	}
}

func (f *segFIFO) grow() {
	capNew := len(f.buf) * 2
	if capNew < 16 {
		capNew = 16
	}
	buf := make([]*netsim.Segment, capNew)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = buf
	f.head = 0
}
