package switchsim

import "repro/internal/sim"

// CounterSample is one SNMP-style polling interval's delta for one queue.
// Production switches in the studied fleet expose traffic volume and
// congestion-discard statistics at one-minute granularity (paper §7.2);
// Figures 14 and 17 are built from exactly these counters.
type CounterSample struct {
	At           sim.Time // end of the interval
	Port         int
	IngressBytes int64 // bytes enqueued toward the server in the interval
	DiscardBytes int64
	DiscardSegs  int64
}

// Poller snapshots per-queue counters at a fixed period.
type Poller struct {
	sw      *Switch
	period  sim.Time
	prev    []QueueStats
	Samples []CounterSample
	stopped bool
}

// NewPoller creates a poller; production period is one minute, tests may use
// shorter periods. Call Start to begin sampling.
func NewPoller(sw *Switch, period sim.Time) *Poller {
	return &Poller{sw: sw, period: period, prev: make([]QueueStats, sw.cfg.Ports)}
}

// Start schedules periodic snapshots on the switch's engine.
func (p *Poller) Start() {
	var tick func()
	tick = func() {
		if p.stopped {
			return
		}
		p.poll()
		p.sw.eng.After(p.period, tick)
	}
	p.sw.eng.After(p.period, tick)
}

// Stop halts future snapshots.
func (p *Poller) Stop() { p.stopped = true }

// poll records one delta sample per queue.
func (p *Poller) poll() {
	now := p.sw.eng.Now()
	for port := range p.sw.queues {
		cur := p.sw.QueueStats(port)
		prev := p.prev[port]
		p.Samples = append(p.Samples, CounterSample{
			At:           now,
			Port:         port,
			IngressBytes: cur.EnqueuedBytes - prev.EnqueuedBytes,
			DiscardBytes: cur.DiscardBytes - prev.DiscardBytes,
			DiscardSegs:  cur.DiscardSegments - prev.DiscardSegments,
		})
		p.prev[port] = cur
	}
}

// Final forces a last snapshot (e.g. at the end of a run shorter than the
// polling period) and returns all samples.
func (p *Poller) Final() []CounterSample {
	p.poll()
	return p.Samples
}
