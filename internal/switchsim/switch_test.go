package switchsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestSteadyShareMatchesPaperFormula(t *testing.T) {
	// Paper §2.1: alpha=1 -> single queue B/2, two queues B/3 each.
	cases := []struct {
		alpha float64
		s     int
		want  float64
	}{
		{1, 1, 1.0 / 2},
		{1, 2, 1.0 / 3},
		{2, 1, 2.0 / 3},
		{2, 2, 2.0 / 5},
		{0.25, 1, 0.2},
	}
	for _, c := range cases {
		if got := SteadyShare(c.alpha, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SteadyShare(%v, %d) = %v, want %v", c.alpha, c.s, got, c.want)
		}
	}
}

func TestSteadyShareMonotonicity(t *testing.T) {
	// More contention -> smaller share; larger alpha -> larger share.
	f := func(alphaRaw uint8, sRaw uint8) bool {
		alpha := 0.25 + float64(alphaRaw%16)*0.25
		s := int(sRaw%20) + 1
		return SteadyShare(alpha, s+1) < SteadyShare(alpha, s) &&
			SteadyShare(alpha+0.25, s) > SteadyShare(alpha, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTAdmitRelease(t *testing.T) {
	d := &DT{Alpha: 1, Cap: 1000}
	if d.Threshold() != 1000 {
		t.Errorf("empty pool threshold = %d", d.Threshold())
	}
	if !d.Admit(0, 400) {
		t.Fatal("admit into empty pool failed")
	}
	// Pool used 400 -> threshold 600; a queue already holding 400 may add
	// only 200 more.
	if d.Admit(400, 300) {
		t.Error("admit above DT threshold succeeded")
	}
	if !d.Admit(400, 200) {
		t.Error("admit at DT threshold failed")
	}
	d.Release(600)
	if d.Used != 0 {
		t.Errorf("Used = %d after release", d.Used)
	}
}

func TestDTNeverOverflowsPool(t *testing.T) {
	f := func(ops []uint16) bool {
		d := &DT{Alpha: 2, Cap: 10000}
		queueShared := 0
		for _, op := range ops {
			size := int(op%3000) + 1
			if d.Admit(queueShared, size) {
				queueShared += size
			}
			if d.Used > d.Cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTestSwitch(t *testing.T, ports int) (*sim.Engine, *Switch) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(ports)
	sw := New(eng, cfg)
	sw.SetUplink(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	return eng, sw
}

func dataSeg(size int, port uint16) *netsim.Segment {
	return &netsim.Segment{
		Flow:  netsim.FlowKey{Src: 100, Dst: 1, SrcPort: port, DstPort: 80},
		Size:  size,
		Flags: netsim.FlagECT,
	}
}

func TestSwitchDeliversInFIFOOrder(t *testing.T) {
	eng, sw := newTestSwitch(t, 4)
	var got []int64
	sw.ConnectPort(0, func(s *netsim.Segment) { got = append(got, s.Seq) })
	for i := int64(0); i < 5; i++ {
		seg := dataSeg(1000, 1)
		seg.Seq = i
		sw.ForwardFromFabric(0, seg)
	}
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestSwitchDrainRate(t *testing.T) {
	eng, sw := newTestSwitch(t, 4)
	var last sim.Time
	n := 0
	sw.ConnectPort(0, func(*netsim.Segment) { last = eng.Now(); n++ })
	// 10 segments x 12500 bytes = 125000 bytes = 1,000,000 bits at
	// 12.5 Gbps = 80 µs serialization total.
	for i := 0; i < 10; i++ {
		sw.ForwardFromFabric(0, dataSeg(12500, 1))
	}
	eng.Run()
	// Delivery happens at transmission completion (propagation is folded
	// into the drain event).
	want := 80 * sim.Microsecond
	if n != 10 || last != want {
		t.Errorf("n=%d last=%v, want 10 segments finishing at %v", n, last, want)
	}
}

func TestSwitchBufferAccountingReturnsToZero(t *testing.T) {
	eng, sw := newTestSwitch(t, 8)
	for p := 0; p < 8; p++ {
		sw.ConnectPort(p, func(*netsim.Segment) {})
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 2000; i++ {
		port := rng.Intn(8)
		sw.ForwardFromFabric(port, dataSeg(rng.Intn(9000)+66, uint16(port)))
	}
	eng.Run()
	for p := 0; p < 8; p++ {
		if sw.QueueBytes(p) != 0 {
			t.Errorf("port %d occupancy %d after drain", p, sw.QueueBytes(p))
		}
	}
	for q := 0; q < sw.Config().Quadrants; q++ {
		if sw.SharedUsed(q) != 0 {
			t.Errorf("quadrant %d shared pool %d after drain", q, sw.SharedUsed(q))
		}
	}
}

func TestSwitchDropsWhenQueueExceedsDT(t *testing.T) {
	eng, sw := newTestSwitch(t, 4)
	sw.ConnectPort(0, func(*netsim.Segment) {})
	// A single queue may hold dedicated + half the shared pool (alpha=1,
	// lone queue). Stuff far more than that instantaneously.
	target := sw.SharedCap() // about 3.6 MB; limit should be ~half that
	sent := 0
	for sent < 2*target {
		sw.ForwardFromFabric(0, dataSeg(9066, 1))
		sent += 9066
	}
	st := sw.QueueStats(0)
	if st.DiscardSegments == 0 {
		t.Fatal("no discards despite 2x overload of a lone queue")
	}
	// Peak occupancy should be near dedicated + alpha/(1+alpha) * shared.
	wantPeak := sw.Config().DedicatedPerQueue + sw.SharedCap()/2
	if st.PeakBytes > wantPeak+9066 {
		t.Errorf("peak %d exceeds DT bound %d", st.PeakBytes, wantPeak)
	}
	if st.PeakBytes < wantPeak/2 {
		t.Errorf("peak %d suspiciously far below DT bound %d", st.PeakBytes, wantPeak)
	}
	eng.Run()
}

func TestSwitchContentionShrinksPerQueueShare(t *testing.T) {
	// The core DT behaviour the paper studies: with S queues saturating
	// simultaneously, each gets about shared/(1+S).
	for _, s := range []int{1, 2, 4} {
		eng, sw := newTestSwitch(t, 4)
		for p := 0; p < 4; p++ {
			sw.ConnectPort(p, func(*netsim.Segment) {})
		}
		// Interleave enqueues across s ports so they grow together.
		total := 0
		for total < 2*sw.SharedCap() {
			for p := 0; p < s; p++ {
				sw.ForwardFromFabric(p, dataSeg(9066, uint16(p)))
			}
			total += 9066 * s
		}
		// NOTE: ports 0..3 map to distinct quadrants (port % 4), so each
		// queue has its own pool here and sees the lone-queue share. To test
		// same-pool contention, use ports in the same quadrant.
		eng.Run()
		_ = s
	}

	// Same-quadrant contention: ports 0 and 4 share quadrant 0 on an
	// 8-port switch.
	eng, sw := newTestSwitch(t, 8)
	for p := 0; p < 8; p++ {
		sw.ConnectPort(p, func(*netsim.Segment) {})
	}
	total := 0
	for total < 3*sw.SharedCap() {
		sw.ForwardFromFabric(0, dataSeg(9066, 0))
		sw.ForwardFromFabric(4, dataSeg(9066, 4))
		total += 2 * 9066
	}
	peak0 := sw.QueueStats(0).PeakBytes
	peak4 := sw.QueueStats(4).PeakBytes
	// Two contending queues: each near dedicated + shared/3.
	want := sw.Config().DedicatedPerQueue + sw.SharedCap()/3
	for _, peak := range []int{peak0, peak4} {
		if peak > want+2*9066 {
			t.Errorf("contended peak %d exceeds two-queue DT bound %d", peak, want)
		}
	}
	eng.Run()
}

func TestSwitchECNMarking(t *testing.T) {
	eng, sw := newTestSwitch(t, 4)
	var marked, unmarked int
	sw.ConnectPort(0, func(s *netsim.Segment) {
		if s.Is(netsim.FlagCE) {
			marked++
		} else {
			unmarked++
		}
	})
	// Fill past the 120 KB ECN threshold.
	for sent := 0; sent < 400<<10; sent += 9066 {
		sw.ForwardFromFabric(0, dataSeg(9066, 1))
	}
	eng.Run()
	if marked == 0 {
		t.Error("no CE marks despite exceeding ECN threshold")
	}
	if unmarked == 0 {
		t.Error("segments below threshold should be unmarked")
	}
	st := sw.QueueStats(0)
	if st.ECNMarkedSegs != int64(marked) {
		t.Errorf("stats ECNMarkedSegs=%d, delivered marked=%d", st.ECNMarkedSegs, marked)
	}
}

func TestSwitchECNOffNeverMarks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(4)
	cfg.ECNThreshold = ECNOff
	sw := New(eng, cfg)
	var ceSeen bool
	sw.ConnectPort(0, func(s *netsim.Segment) {
		if s.Is(netsim.FlagCE) {
			ceSeen = true
		}
	})
	// Push ECT traffic far past the default 120 KB threshold — deep enough
	// that DT starts dropping, proving admission still works with marking off.
	for sent := 0; sent < 4<<20; sent += 9066 {
		sw.ForwardFromFabric(0, dataSeg(9066, 1))
	}
	eng.Run()
	if ceSeen {
		t.Error("CE mark delivered with ECN disabled")
	}
	st := sw.QueueStats(0)
	if st.ECNMarkedSegs != 0 || st.ECNMarkedBytes != 0 {
		t.Errorf("marking counters moved with ECN disabled: %+v", st)
	}
	if st.DiscardSegments == 0 {
		t.Error("expected DT discards; overload did not exercise admission")
	}
	if st.DequeuedBytes == 0 {
		t.Error("no traffic traversed the queue")
	}
}

func TestSwitchNonECTNeverMarked(t *testing.T) {
	eng, sw := newTestSwitch(t, 4)
	var ceSeen bool
	sw.ConnectPort(0, func(s *netsim.Segment) {
		if s.Is(netsim.FlagCE) {
			ceSeen = true
		}
	})
	for sent := 0; sent < 400<<10; sent += 9066 {
		seg := dataSeg(9066, 1)
		seg.Flags &^= netsim.FlagECT
		sw.ForwardFromFabric(0, seg)
	}
	eng.Run()
	if ceSeen {
		t.Error("non-ECT segment got a CE mark")
	}
}

func TestSwitchMulticastReplication(t *testing.T) {
	eng, sw := newTestSwitch(t, 8)
	counts := make([]int, 8)
	for p := 0; p < 8; p++ {
		p := p
		sw.ConnectPort(p, func(*netsim.Segment) { counts[p]++ })
	}
	for _, p := range []int{1, 3, 5} {
		sw.Subscribe(7, p)
	}
	seg := &netsim.Segment{Size: 1000, Flags: netsim.FlagMulticast, Group: 7}
	sw.ForwardFromServer(seg)
	eng.Run()
	for p, c := range counts {
		want := 0
		if p == 1 || p == 3 || p == 5 {
			want = 1
		}
		if c != want {
			t.Errorf("port %d received %d copies, want %d", p, c, want)
		}
	}
}

func TestSwitchUplinkPassThrough(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, DefaultConfig(4))
	var got *netsim.Segment
	sw.SetUplink(netsim.ForwarderFunc(func(s *netsim.Segment) { got = s }))
	seg := dataSeg(500, 2)
	sw.ForwardFromServer(seg)
	if got != seg {
		t.Error("uplink did not receive server egress segment")
	}
}

func TestPollerDeltas(t *testing.T) {
	eng, sw := newTestSwitch(t, 2)
	sw.ConnectPort(0, func(*netsim.Segment) {})
	sw.ConnectPort(1, func(*netsim.Segment) {})
	poller := NewPoller(sw, 100*sim.Millisecond)
	poller.Start()

	// 1000 bytes every ms on port 0 for 250 ms.
	var send func()
	sent := 0
	send = func() {
		if sent >= 250 {
			return
		}
		sw.ForwardFromFabric(0, dataSeg(1000, 1))
		sent++
		eng.After(sim.Millisecond, send)
	}
	eng.After(0, send)
	eng.RunUntil(260 * sim.Millisecond)
	poller.Stop()

	var port0 []CounterSample
	for _, s := range poller.Samples {
		if s.Port == 0 {
			port0 = append(port0, s)
		}
	}
	if len(port0) != 2 {
		t.Fatalf("got %d samples for port 0, want 2", len(port0))
	}
	if port0[0].IngressBytes != 100_000 {
		t.Errorf("first interval bytes = %d, want 100000", port0[0].IngressBytes)
	}
	if port0[1].IngressBytes != 100_000 {
		t.Errorf("second interval bytes = %d, want 100000", port0[1].IngressBytes)
	}
}

func TestNewPanicsWithoutPorts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with 0 ports did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}
