package switchsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Policy selects the shared-buffer admission discipline. The studied fleet
// runs dynamic thresholds (Choudhury–Hahne); the alternatives bound the
// design space the paper's §9 discussion positions DT within, and back the
// buffer-sharing policy ablation.
type Policy int

const (
	// PolicyDT is the production dynamic-threshold policy:
	// T(t) = alpha * (shared capacity - shared occupancy).
	PolicyDT Policy = iota
	// PolicyStatic partitions the shared pool equally among the quadrant's
	// queues: maximal isolation, no burst absorption headroom.
	PolicyStatic
	// PolicyComplete admits any segment while the pool has room: maximal
	// absorption, no isolation (one queue can starve the quadrant).
	PolicyComplete
	// PolicyBShare bounds each queue's shared occupancy by the bytes its
	// line rate drains within BShareDelayTarget, capping the queueing delay
	// any admitted packet can see (after BShare).
	PolicyBShare
	// PolicyABM scales the dynamic threshold by each queue's measured drain
	// rate: T = Alpha * (free shared) * mu (after ABM).
	PolicyABM
)

// ECNOff disables ECN marking when assigned to Config.ECNThreshold. The
// sentinel exists because a zero threshold means "use the 120 KB default" —
// without it an ECN-disabled counterfactual was unexpressible.
const ECNOff = -1

// DefaultBShareDelayTarget is the BShare per-queue queueing-delay budget:
// 200 us of line-rate drain (~312 KB at 12.5 Gbps), between the ECN marking
// point and a lone DT queue's share.
const DefaultBShareDelayTarget = 200 * sim.Microsecond

// Config parameterizes a ToR switch. The defaults mirror the switch class the
// paper studies (§3): 16 MB buffer in four 4 MB quadrants, most of each
// quadrant shared, alpha = 1, and a 120 KB static ECN threshold.
type Config struct {
	// Policy selects the shared-buffer admission discipline (default DT).
	Policy Policy
	// Ports is the number of server-facing downlinks; each maps to exactly
	// one egress queue (each server gets its own queue).
	Ports int
	// TotalBuffer is the packet buffer size in bytes (default 16 MB).
	TotalBuffer int
	// Quadrants is the number of independent shared pools (default 4). An
	// egress queue maps to a quadrant as a function of its port index.
	Quadrants int
	// DedicatedPerQueue is the reserve each queue owns outside the shared
	// pool (default sized so each quadrant's shared pool is about 3.6 MB).
	DedicatedPerQueue int
	// Alpha is the DT parameter (default 1: a lone queue may take half the
	// free shared buffer).
	Alpha float64
	// ECNThreshold is the static per-queue marking threshold in bytes
	// (default 120 KB, the fleet-wide production setting). ECNOff (-1)
	// disables marking entirely.
	ECNThreshold int
	// BShareDelayTarget is the per-queue queueing-delay budget BShare admits
	// against (default 200 us). Ignored by the other policies.
	BShareDelayTarget sim.Time
	// DownlinkRateBps is each server-facing port's line rate (default
	// 12.5 Gbps).
	DownlinkRateBps int64
	// DownlinkProp is the ToR-to-server propagation delay.
	DownlinkProp sim.Time
	// Pool is the segment pool drops and multicast replication recycle into.
	// Leave nil for a private pool; topologies share one pool per engine.
	Pool *netsim.SegmentPool
}

// DefaultConfig returns the production-mirroring configuration for a rack
// with the given number of server ports.
func DefaultConfig(ports int) Config {
	return Config{
		Ports:             ports,
		TotalBuffer:       16 << 20,
		Quadrants:         4,
		DedicatedPerQueue: 0, // derived in New: quadrant size minus 3.6 MB shared
		Alpha:             1.0,
		ECNThreshold:      120 << 10,
		DownlinkRateBps:   netsim.DefaultServerRateBps,
		DownlinkProp:      2 * sim.Microsecond,
	}
}

// queue is one egress queue: the FIFO toward a single server.
type queue struct {
	port     int
	quadrant int
	qidx     int // index within the quadrant, as sharing policies see it

	fifo  segFIFO
	bytes int // total occupancy (dedicated + shared portions)

	dedicatedCap  int
	dedicatedUsed int
	sharedUsed    int

	busy bool // a departure event is in flight

	stats QueueStats
}

// QueueStats are the cumulative per-queue counters the switch exposes; the
// production analog is the per-queue congestion-discard and traffic counters
// polled at one-minute granularity (paper Figs. 14, 17).
type QueueStats struct {
	EnqueuedBytes    int64
	EnqueuedSegments int64
	DiscardBytes     int64
	DiscardSegments  int64
	ECNMarkedBytes   int64
	ECNMarkedSegs    int64
	DequeuedBytes    int64
	PeakBytes        int
}

// Switch is a shared-memory ToR.
type Switch struct {
	cfg               Config
	eng               *sim.Engine
	queuesPerQuadrant int
	queues            []*queue
	policies          []SharingPolicy // one per quadrant
	markThreshold     int             // effective ECN threshold; maxint when off
	links             []*netsim.Link
	segPool           *netsim.SegmentPool
	sinks             []netsim.Deliver // per-port delivery into the server host

	uplink netsim.Forwarder // toward the fabric, for server egress traffic

	groups map[netsim.GroupID][]int // multicast subscriptions: group -> ports

	// TotalDiscards aggregates drops across queues for quick health checks.
	TotalDiscards int64
}

// withDefaults fills zero fields with the production-mirroring defaults and
// derives the dedicated reserve when unset.
func (c Config) withDefaults() Config {
	if c.TotalBuffer <= 0 {
		c.TotalBuffer = 16 << 20
	}
	if c.Quadrants <= 0 {
		c.Quadrants = 4
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0
	}
	if c.ECNThreshold == 0 {
		c.ECNThreshold = 120 << 10
	}
	if c.BShareDelayTarget == 0 {
		c.BShareDelayTarget = DefaultBShareDelayTarget
	}
	if c.DownlinkRateBps == 0 {
		c.DownlinkRateBps = netsim.DefaultServerRateBps
	}
	quadSize := c.TotalBuffer / c.Quadrants
	queuesPerQuad := 0
	if c.Ports > 0 {
		queuesPerQuad = (c.Ports + c.Quadrants - 1) / c.Quadrants
	}
	if c.DedicatedPerQueue == 0 {
		// Paper: "a small amount is made available as dedicated buffer for
		// each queue, and the rest, about 3.6MB, is shared". Derive the
		// dedicated reserve from that shared target.
		sharedTarget := 3600 << 10
		if quadSize > sharedTarget && queuesPerQuad > 0 {
			c.DedicatedPerQueue = (quadSize - sharedTarget) / queuesPerQuad
		} else {
			c.DedicatedPerQueue = 16 << 10
		}
	}
	return c
}

// Validate reports whether the configuration (after defaults) can build a
// working switch. Config-driven tools — sweep specs above all — should call
// it before New, which treats an invalid configuration as an invariant
// violation. Policy, Alpha, and the ECN threshold are checked here so a
// counterfactual grid fails fast at spec expansion instead of panicking
// mid-sweep.
func (c Config) Validate() error {
	if c.Ports <= 0 {
		return errors.New("switchsim: switch needs at least one port")
	}
	if !c.Policy.Known() {
		return fmt.Errorf("switchsim: unknown sharing policy %d", int(c.Policy))
	}
	if math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) || c.Alpha < 0 {
		return fmt.Errorf("switchsim: Alpha %v is not a usable DT parameter", c.Alpha)
	}
	c = c.withDefaults()
	// Zero Alpha means "use the default 1"; an explicit non-positive value
	// under a threshold-scaling policy would admit nothing into the pool.
	if (c.Policy == PolicyDT || c.Policy == PolicyABM) && !(c.Alpha > 0) {
		return fmt.Errorf("switchsim: %v needs Alpha > 0, have %v", c.Policy, c.Alpha)
	}
	if c.BShareDelayTarget < 0 {
		return fmt.Errorf("switchsim: BShare delay target %v is negative", c.BShareDelayTarget)
	}
	// ECNOff (-1) is the only negative threshold with a meaning; other
	// negatives are mistakes, not "very aggressive marking".
	if c.ECNThreshold != ECNOff && (c.ECNThreshold < 0 || c.ECNThreshold > c.TotalBuffer) {
		return fmt.Errorf("switchsim: ECN threshold %d outside the %d-byte buffer (use ECNOff to disable)",
			c.ECNThreshold, c.TotalBuffer)
	}
	quadSize := c.TotalBuffer / c.Quadrants
	queuesPerQuad := (c.Ports + c.Quadrants - 1) / c.Quadrants
	if sharedCap := quadSize - c.DedicatedPerQueue*queuesPerQuad; sharedCap <= 0 {
		return fmt.Errorf("switchsim: dedicated reserves (%d x %d) exceed quadrant size %d",
			c.DedicatedPerQueue, queuesPerQuad, quadSize)
	}
	return nil
}

// New builds a switch. Per-port sinks must be wired with ConnectPort before
// traffic flows.
func New(eng *sim.Engine, cfg Config) *Switch {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.withDefaults()
	if cfg.Pool == nil {
		cfg.Pool = netsim.NewSegmentPool()
	}
	queuesPerQuad := (cfg.Ports + cfg.Quadrants - 1) / cfg.Quadrants
	sharedCap := cfg.TotalBuffer/cfg.Quadrants - cfg.DedicatedPerQueue*queuesPerQuad

	sw := &Switch{
		cfg:               cfg,
		eng:               eng,
		queuesPerQuadrant: queuesPerQuad,
		queues:            make([]*queue, cfg.Ports),
		policies:          make([]SharingPolicy, cfg.Quadrants),
		markThreshold:     cfg.ECNThreshold,
		links:             make([]*netsim.Link, cfg.Ports),
		segPool:           cfg.Pool,
		sinks:             make([]netsim.Deliver, cfg.Ports),
		groups:            make(map[netsim.GroupID][]int),
	}
	if cfg.ECNThreshold == ECNOff {
		// No queue reaches maxint bytes, so the enqueue hot path keeps its
		// single unconditional comparison whether marking is on or off.
		sw.markThreshold = math.MaxInt
	}
	build := lookupPolicy(cfg.Policy).build
	for q := 0; q < cfg.Quadrants; q++ {
		sw.policies[q] = build(cfg, sharedCap, queuesPerQuad)
	}
	for p := 0; p < cfg.Ports; p++ {
		sw.queues[p] = &queue{
			port:         p,
			quadrant:     p % cfg.Quadrants,
			qidx:         p / cfg.Quadrants,
			dedicatedCap: cfg.DedicatedPerQueue,
		}
		sw.links[p] = netsim.NewLink(eng, cfg.DownlinkRateBps, cfg.DownlinkProp)
		sw.links[p].SetPool(cfg.Pool)
	}
	return sw
}

// Pool returns the switch's segment pool.
func (s *Switch) Pool() *netsim.SegmentPool { return s.segPool }

// Config returns the effective configuration.
func (s *Switch) Config() Config { return s.cfg }

// SharedCap returns one quadrant's shared pool capacity in bytes.
func (s *Switch) SharedCap() int { return s.policies[0].Cap() }

// ConnectPort wires downlink port p to a delivery function (normally the
// server host's Inject).
func (s *Switch) ConnectPort(p int, deliver netsim.Deliver) {
	s.sinks[p] = deliver
}

// SetUplink wires the fabric-facing path used by server egress traffic.
func (s *Switch) SetUplink(f netsim.Forwarder) { s.uplink = f }

// Subscribe adds port p to a rack-local multicast group.
func (s *Switch) Subscribe(group netsim.GroupID, p int) {
	s.groups[group] = append(s.groups[group], p)
}

// ForwardFromFabric accepts a segment arriving from the fabric destined to a
// downlink port. This is the congested direction the paper analyzes.
func (s *Switch) ForwardFromFabric(port int, seg *netsim.Segment) {
	if seg.Is(netsim.FlagMulticast) {
		s.replicate(seg)
		return
	}
	s.enqueue(port, seg)
}

// ForwardFromServer accepts server egress traffic and forwards it into the
// fabric. Uplinks are modeled uncongested: the paper observes that most
// congestion in this fleet is on the server-link, and ECN is deployed only on
// the ToR (§3); fabric effects are modeled by the fabric's delay/smoothing.
func (s *Switch) ForwardFromServer(seg *netsim.Segment) {
	if s.uplink == nil {
		panic("switchsim: switch has no uplink")
	}
	if seg.Is(netsim.FlagMulticast) {
		// Rack-local multicast loops straight back down to subscribers.
		s.replicate(seg)
		return
	}
	s.uplink.Forward(seg)
}

// replicate copies a multicast segment into every subscribed queue. The
// original's path ends here: each subscriber gets a pool-owned clone and the
// source segment recycles.
func (s *Switch) replicate(seg *netsim.Segment) {
	for _, p := range s.groups[seg.Group] {
		s.enqueue(p, s.segPool.Clone(seg))
	}
	s.segPool.Put(seg)
}

func (s *Switch) enqueue(port int, seg *netsim.Segment) {
	if port < 0 || port >= len(s.queues) {
		panic(fmt.Sprintf("switchsim: no such port %d", port))
	}
	q := s.queues[port]
	pol := s.policies[q.quadrant]

	// Admission: spend the queue's dedicated reserve first, then ask the
	// configured sharing policy for the remainder. A segment is dropped
	// whole — the cell-level partial-admit real ASICs do is below our
	// granularity.
	fromDedicated := q.dedicatedCap - q.dedicatedUsed
	if fromDedicated > seg.Size {
		fromDedicated = seg.Size
	}
	needShared := seg.Size - fromDedicated
	if needShared > 0 && !pol.Admit(q.qidx, q.sharedUsed, needShared, s.eng.Now()) {
		q.stats.DiscardBytes += int64(seg.Size)
		q.stats.DiscardSegments++
		s.TotalDiscards++
		s.segPool.Put(seg)
		return
	}
	q.dedicatedUsed += fromDedicated
	q.sharedUsed += needShared
	seg.EnqueuedShared = needShared
	q.bytes += seg.Size
	if q.bytes > q.stats.PeakBytes {
		q.stats.PeakBytes = q.bytes
	}
	q.stats.EnqueuedBytes += int64(seg.Size)
	q.stats.EnqueuedSegments++

	// Static-threshold ECN marking on enqueue, production style.
	if q.bytes >= s.markThreshold && seg.Is(netsim.FlagECT) {
		seg.Flags |= netsim.FlagCE
		q.stats.ECNMarkedBytes += int64(seg.Size)
		q.stats.ECNMarkedSegs++
	}

	q.fifo.Push(seg)
	if !q.busy {
		s.startDrain(q)
	}
}

// startDrain launches the departure loop for a newly busy queue.
func (s *Switch) startDrain(q *queue) {
	q.busy = true
	s.drainNext(q)
}

func (s *Switch) drainNext(q *queue) {
	if q.fifo.Len() == 0 {
		q.busy = false
		return
	}
	seg := q.fifo.Front()
	tx := s.links[q.port].SerializationDelay(seg.Size)
	// A busy queue has exactly one departure event in flight and only the
	// departure removes the head, so finishTx can re-read the front instead
	// of capturing seg in a closure: the whole drain loop runs on pooled
	// events with zero allocations.
	s.eng.AfterCall(tx, finishTx, s, q, 0)
}

// finishTx completes one transmission: free the buffer cell, hand the segment
// to the propagation stage, continue with the next segment.
func finishTx(a1, a2 any, _ int64) {
	s := a1.(*Switch)
	q := a2.(*queue)
	seg := q.fifo.Front()
	q.fifo.PopFront()
	q.bytes -= seg.Size
	q.dedicatedUsed -= seg.Size - seg.EnqueuedShared
	pol := s.policies[q.quadrant]
	if seg.EnqueuedShared > 0 {
		pol.Release(seg.EnqueuedShared)
		q.sharedUsed -= seg.EnqueuedShared
	}
	// q.bytes is already the post-dequeue occupancy: zero remaining means
	// this departure ended the queue's busy period.
	pol.OnDequeue(q.qidx, seg.Size, q.bytes, s.eng.Now())
	q.stats.DequeuedBytes += int64(seg.Size)
	// Deliver synchronously: the downlink propagation delay (a couple of
	// microseconds of fiber) is folded into this event rather than costing a
	// second event per segment; at 1 ms sampling buckets the shift is
	// invisible and the drain rate stays exact. An unwired port terminates
	// the path, so the segment recycles.
	if sink := s.sinks[q.port]; sink != nil {
		sink(seg)
	} else {
		s.segPool.Put(seg)
	}
	s.drainNext(q)
}

// QueueBytes returns port p's instantaneous occupancy.
func (s *Switch) QueueBytes(p int) int { return s.queues[p].bytes }

// QueueStats returns a copy of port p's cumulative counters.
func (s *Switch) QueueStats(p int) QueueStats { return s.queues[p].stats }

// SharedUsed returns the occupancy of quadrant q's shared pool.
func (s *Switch) SharedUsed(q int) int { return s.policies[q].Used() }

// Threshold returns the instantaneous shared-occupancy limit the configured
// policy grants port p's queue (the DT formula under DT, the quota under
// static/BShare, the pool room under complete sharing).
func (s *Switch) Threshold(p int) int {
	q := s.queues[p]
	return s.policies[q.quadrant].Threshold(q.qidx, s.eng.Now())
}

// ActiveQueues counts queues with at least one buffered segment, per quadrant
// if quadrant >= 0, or switch-wide for quadrant < 0.
func (s *Switch) ActiveQueues(quadrant int) int {
	n := 0
	for _, q := range s.queues {
		if q.bytes > 0 && (quadrant < 0 || q.quadrant == quadrant) {
			n++
		}
	}
	return n
}

// PeakQueueBytes returns the highest occupancy any single egress queue
// reached — the burst-absorption headroom figure the sharing-policy
// counterfactuals compare (complete ≥ DT ≥ static under overload).
func (s *Switch) PeakQueueBytes() int {
	peak := 0
	for _, q := range s.queues {
		if q.stats.PeakBytes > peak {
			peak = q.stats.PeakBytes
		}
	}
	return peak
}

// AccountFluid credits traffic the fluid model carried through port p's
// egress queue. Only counters move: occupancy, DT pool state, and drain
// events are untouched, because fluid traffic has conceptually already left
// the queue by the time it is accounted. PeakBytes raises the queue's peak
// if the fluid backlog estimate exceeds what the packet path observed.
func (s *Switch) AccountFluid(p int, st QueueStats) {
	if p < 0 || p >= len(s.queues) {
		return
	}
	q := s.queues[p]
	q.stats.EnqueuedBytes += st.EnqueuedBytes
	q.stats.EnqueuedSegments += st.EnqueuedSegments
	q.stats.DequeuedBytes += st.DequeuedBytes
	q.stats.ECNMarkedBytes += st.ECNMarkedBytes
	q.stats.ECNMarkedSegs += st.ECNMarkedSegs
	if st.PeakBytes > q.stats.PeakBytes {
		q.stats.PeakBytes = st.PeakBytes
	}
}

// Totals sums the per-queue stats switch-wide.
func (s *Switch) Totals() QueueStats {
	var t QueueStats
	for _, q := range s.queues {
		t.EnqueuedBytes += q.stats.EnqueuedBytes
		t.EnqueuedSegments += q.stats.EnqueuedSegments
		t.DiscardBytes += q.stats.DiscardBytes
		t.DiscardSegments += q.stats.DiscardSegments
		t.ECNMarkedBytes += q.stats.ECNMarkedBytes
		t.ECNMarkedSegs += q.stats.ECNMarkedSegs
		t.DequeuedBytes += q.stats.DequeuedBytes
	}
	return t
}
