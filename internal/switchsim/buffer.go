// Package switchsim models the shared-memory top-of-rack switch the paper
// studies: a 16 MB packet buffer split into four quadrants, per-queue
// dedicated reserves, a Choudhury–Hahne dynamic-threshold (DT) policy over
// the shared pool, static-threshold ECN marking, and per-queue congestion
// discard counters with SNMP-style periodic snapshots.
package switchsim

// DT is the dynamic threshold state for one shared pool (one quadrant).
// The maximum instantaneous length of each queue's shared portion is
//
//	T(t) = Alpha * (Cap - Used(t))
//
// where Cap is the shared pool size and Used(t) the pool's total occupancy
// (paper §2.1.1, after Choudhury & Hahne 1998).
type DT struct {
	Alpha float64
	Cap   int // shared pool capacity in bytes
	Used  int // current shared occupancy in bytes
}

// Threshold returns the instantaneous per-queue limit T(t) in bytes.
func (d *DT) Threshold() int {
	free := d.Cap - d.Used
	if free <= 0 {
		return 0
	}
	return int(d.Alpha * float64(free))
}

// Admit reports whether a queue currently holding queueShared bytes of the
// pool may add size more bytes, and charges the pool if so.
func (d *DT) Admit(queueShared, size int) bool {
	if d.Used+size > d.Cap {
		return false
	}
	if queueShared+size > d.Threshold() {
		return false
	}
	d.Used += size
	return true
}

// Release returns size bytes to the pool.
func (d *DT) Release(size int) {
	d.Used -= size
	if d.Used < 0 {
		panic("switchsim: shared pool released below zero")
	}
}

// SteadyShare returns the equilibrium fraction of the shared buffer each of s
// simultaneously saturating queues obtains under DT with parameter alpha:
//
//	T = alpha*B / (1 + alpha*s)
//
// normalized by B. This is the curve of the paper's Figure 1 and the
// quantity the contention analysis converts contention levels into.
func SteadyShare(alpha float64, s int) float64 {
	if s < 0 {
		panic("switchsim: negative queue count")
	}
	return alpha / (1 + alpha*float64(s))
}

// SteadyShareBytes is SteadyShare scaled by a concrete shared pool size.
func SteadyShareBytes(alpha float64, s int, capBytes int) int {
	return int(SteadyShare(alpha, s) * float64(capBytes))
}
