package switchsim

import (
	"repro/internal/sim"
)

// SharingPolicy is one quadrant's shared-pool admission discipline. The
// switch builds one instance per quadrant; every method call refers to that
// quadrant's pool. Queues are identified by their index within the quadrant
// (0..queuesPerQuadrant-1). Implementations must conserve bytes (everything
// admitted is eventually released, and occupancy never exceeds Cap or drops
// below zero) and must not allocate on the Admit/Release/OnDequeue hot path —
// the switch's zero-alloc enqueue/dequeue guarantee rides through them.
type SharingPolicy interface {
	// Admit reports whether queue qi — currently holding queueShared bytes
	// of the pool — may add size more bytes at time now, charging the pool
	// if so.
	Admit(qi, queueShared, size int, now sim.Time) bool
	// Release returns size bytes to the pool.
	Release(size int)
	// Threshold returns queue qi's instantaneous shared-occupancy limit in
	// bytes — the quantity the paper's Fig 1 plots for DT.
	Threshold(qi int, now sim.Time) int
	// OnDequeue observes size bytes leaving queue qi at now with remaining
	// bytes still enqueued — the hook drain-rate estimators (ABM) feed from.
	// remaining == 0 marks the end of a busy period.
	OnDequeue(qi, size, remaining int, now sim.Time)
	// Used reports the pool's current occupancy in bytes.
	Used() int
	// Cap reports the pool's capacity in bytes.
	Cap() int
}

// sharedPool is the occupancy accounting common to the non-DT policies.
type sharedPool struct {
	capBytes, used int
}

func (p *sharedPool) room(size int) bool { return p.used+size <= p.capBytes }

func (p *sharedPool) Release(size int) {
	p.used -= size
	if p.used < 0 {
		panic("switchsim: shared pool released below zero")
	}
}

func (p *sharedPool) Used() int { return p.used }
func (p *sharedPool) Cap() int  { return p.capBytes }

// dtPolicy adapts the exported DT state to the SharingPolicy interface. The
// arithmetic stays on DT itself so the contention analysis (SteadyShare) and
// existing tests keep the historical type, and so the default path's
// admission decisions are bit-identical to the pre-interface switch.
type dtPolicy struct{ dt DT }

func newDTPolicy(cfg Config, sharedCap, _ int) SharingPolicy {
	return &dtPolicy{dt: DT{Alpha: cfg.Alpha, Cap: sharedCap}}
}

func (p *dtPolicy) Admit(_, queueShared, size int, _ sim.Time) bool {
	return p.dt.Admit(queueShared, size)
}
func (p *dtPolicy) Release(size int)                  { p.dt.Release(size) }
func (p *dtPolicy) Threshold(int, sim.Time) int       { return p.dt.Threshold() }
func (p *dtPolicy) OnDequeue(int, int, int, sim.Time) {}
func (p *dtPolicy) Used() int                         { return p.dt.Used }
func (p *dtPolicy) Cap() int                          { return p.dt.Cap }

// staticPolicy partitions the pool into equal per-queue quotas: maximal
// isolation, no burst-absorption headroom beyond the quota.
type staticPolicy struct {
	sharedPool
	quota int
}

func newStaticPolicy(_ Config, sharedCap, queuesPerQuadrant int) SharingPolicy {
	return &staticPolicy{
		sharedPool: sharedPool{capBytes: sharedCap},
		quota:      sharedCap / queuesPerQuadrant,
	}
}

func (p *staticPolicy) Admit(_, queueShared, size int, _ sim.Time) bool {
	if queueShared+size > p.quota || !p.room(size) {
		return false
	}
	p.used += size
	return true
}
func (p *staticPolicy) Threshold(int, sim.Time) int       { return p.quota }
func (p *staticPolicy) OnDequeue(int, int, int, sim.Time) {}

// completePolicy admits anything while the pool has room: maximal absorption,
// no isolation (one queue can starve the quadrant).
type completePolicy struct{ sharedPool }

func newCompletePolicy(_ Config, sharedCap, _ int) SharingPolicy {
	return &completePolicy{sharedPool{capBytes: sharedCap}}
}

func (p *completePolicy) Admit(_, _, size int, _ sim.Time) bool {
	if !p.room(size) {
		return false
	}
	p.used += size
	return true
}
func (p *completePolicy) Threshold(int, sim.Time) int       { return p.capBytes - p.used }
func (p *completePolicy) OnDequeue(int, int, int, sim.Time) {}

// bsharePolicy admits by estimated packet queueing delay (after BShare): a
// queue may hold shared bytes only up to BShareDelayTarget's worth at its
// nominal drain rate, so the delay any admitted packet can experience is
// bounded regardless of pool pressure. The quota uses the configured line
// rate, not a measured one: in this switch every non-empty queue drains at
// exactly its line rate, and a measured estimate decayed across idle gaps
// would spuriously starve the first burst after a quiet spell.
type bsharePolicy struct {
	sharedPool
	quota int
}

func newBSharePolicy(cfg Config, sharedCap, _ int) SharingPolicy {
	q := int(cfg.BShareDelayTarget.Seconds() * float64(cfg.DownlinkRateBps) / 8)
	if q > sharedCap {
		q = sharedCap
	}
	if q < 1 {
		q = 1
	}
	return &bsharePolicy{sharedPool: sharedPool{capBytes: sharedCap}, quota: q}
}

func (p *bsharePolicy) Admit(_, queueShared, size int, _ sim.Time) bool {
	if queueShared+size > p.quota || !p.room(size) {
		return false
	}
	p.used += size
	return true
}
func (p *bsharePolicy) Threshold(int, sim.Time) int       { return p.quota }
func (p *bsharePolicy) OnDequeue(int, int, int, sim.Time) {}

const (
	// abmTau is the ABM drain-rate EWMA time constant: long enough to smooth
	// per-segment serialization jitter, short against the 1 s sampling window.
	abmTau = sim.Millisecond
	// abmMinMu floors the normalized drain-rate estimate so a mis-measured
	// queue can always claw back some shared buffer (its dedicated reserve
	// keeps it dequeuing, which feeds the estimator and recovers mu).
	abmMinMu = 0.05
)

// abmPolicy scales the dynamic threshold by each queue's measured drain rate
// (after ABM): T(qi) = Alpha × (Cap − Used) × mu(qi), where mu is the
// queue's dequeue-rate EWMA normalized by the line rate. Queues that drain
// slowly get proportionally less of the pool; under this simulator's uniform
// always-line-rate drains mu sits near 1 and ABM tracks DT, diverging only
// when drains stall.
type abmPolicy struct {
	sharedPool
	alpha   float64
	lineBps float64
	mu      []float64
	last    []sim.Time
	primed  []bool // last dequeue belonged to a still-running busy period
}

func newABMPolicy(cfg Config, sharedCap, queuesPerQuadrant int) SharingPolicy {
	p := &abmPolicy{
		sharedPool: sharedPool{capBytes: sharedCap},
		alpha:      cfg.Alpha,
		lineBps:    float64(cfg.DownlinkRateBps),
		mu:         make([]float64, queuesPerQuadrant),
		last:       make([]sim.Time, queuesPerQuadrant),
		primed:     make([]bool, queuesPerQuadrant),
	}
	for i := range p.mu {
		p.mu[i] = 1 // unmeasured queues are assumed to drain at line rate
	}
	return p
}

func (p *abmPolicy) Admit(qi, queueShared, size int, now sim.Time) bool {
	if !p.room(size) {
		return false
	}
	if queueShared+size > p.Threshold(qi, now) {
		return false
	}
	p.used += size
	return true
}

func (p *abmPolicy) Threshold(qi int, _ sim.Time) int {
	free := p.capBytes - p.used
	if free <= 0 {
		return 0
	}
	return int(p.alpha * float64(free) * p.mu[qi])
}

func (p *abmPolicy) OnDequeue(qi, size, remaining int, now sim.Time) {
	if p.primed[qi] {
		if dt := now - p.last[qi]; dt > 0 {
			inst := float64(size) * 8 / dt.Seconds() / p.lineBps
			if inst > 1 {
				inst = 1
			}
			w := float64(dt) / float64(abmTau)
			if w > 1 {
				w = 1
			}
			m := p.mu[qi] + w*(inst-p.mu[qi])
			if m < abmMinMu {
				m = abmMinMu
			}
			p.mu[qi] = m
		}
	}
	// A drained queue ends its busy period; the gap to its next dequeue is
	// idle time, not service time, and must not count as a rate sample.
	p.primed[qi] = remaining > 0
	p.last[qi] = now
}
