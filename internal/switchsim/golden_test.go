package switchsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// goldenDTDigest pins the exact observable behavior of the default-config
// dynamic-threshold switch — delivery order and timing, CE marks, discards,
// and final counters — under a fixed traffic pattern. The sharing-policy
// interface refactor must keep the default DT path byte-identical; this
// digest is the switch-level half of that gate (the fleet-level half is
// fleet's TestGenerateSmallGoldenDigest). Recorded before the policies were
// promoted to an interface.
const goldenDTDigest = "f2bdba4257470c8ff2060364f4dc14ef2bc92607db1104625176b4293c555d70"

// goldenTraffic drives a deterministic mix into an 8-port default switch:
// steady multi-port load with periodic single-queue incast waves big enough
// to cross the ECN threshold and the DT limit, so admission, marking,
// discard, and release paths all execute many times.
func goldenTraffic(eng *sim.Engine, sw *Switch) {
	rng := sim.NewRNG(42)
	for tick := 0; tick < 400; tick++ {
		at := sim.Time(tick) * 25 * sim.Microsecond
		n := 1 + rng.Intn(6)
		if tick%37 == 0 {
			n = 500 // incast wave: ~2.3 MB at once, past a lone queue's DT share
		}
		port := rng.Intn(8)
		for i := 0; i < n; i++ {
			size := 66 + rng.Intn(9000)
			ect := rng.Intn(4) != 0
			srcPort := uint16(1000 + rng.Intn(64))
			eng.After(at, func() {
				seg := &netsim.Segment{
					Flow: netsim.FlowKey{Src: 100, Dst: netsim.HostID(port), SrcPort: srcPort, DstPort: 80},
					Size: size,
				}
				if ect {
					seg.Flags = netsim.FlagECT
				}
				sw.ForwardFromFabric(port, seg)
			})
		}
	}
}

func TestDefaultDTGoldenDigest(t *testing.T) {
	h := sha256.New()
	eng := sim.NewEngine()
	sw := New(eng, DefaultConfig(8))
	sw.SetUplink(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	for p := 0; p < 8; p++ {
		p := p
		sw.ConnectPort(p, func(s *netsim.Segment) {
			fmt.Fprintf(h, "d %d %d %d %d %d\n", p, eng.Now(), s.Size, s.Flags, s.Flow.SrcPort)
		})
	}
	goldenTraffic(eng, sw)
	eng.Run()

	for p := 0; p < 8; p++ {
		st := sw.QueueStats(p)
		fmt.Fprintf(h, "q %d %+v\n", p, st)
	}
	for q := 0; q < sw.Config().Quadrants; q++ {
		fmt.Fprintf(h, "p %d %d %d\n", q, sw.SharedUsed(q), sw.Threshold(q))
	}
	fmt.Fprintf(h, "drops %d\n", sw.TotalDiscards)

	got := hex.EncodeToString(h.Sum(nil))
	if goldenDTDigest == "" {
		t.Fatalf("golden digest unset; current digest: %s", got)
	}
	if got != goldenDTDigest {
		t.Errorf("default DT behavior changed: digest %s, golden %s", got, goldenDTDigest)
	}
	if sw.TotalDiscards == 0 {
		t.Error("golden traffic produced no discards; pattern no longer stresses DT")
	}
	if sw.Totals().ECNMarkedSegs == 0 {
		t.Error("golden traffic produced no CE marks; pattern no longer crosses the ECN threshold")
	}
}
