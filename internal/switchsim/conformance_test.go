package switchsim

import (
	"testing"

	"repro/internal/sim"
)

// TestPolicyRegistryComplete is the enumeration gate behind Known, String,
// ParsePolicy, MarshalText, and New all agreeing on the policy set: the
// registry must be indexed by Policy value, fully populated, and free of name
// collisions. A policy added to the const block without a registry entry (or
// vice versa) fails here before it can fail confusingly in a sweep.
func TestPolicyRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for i, e := range policyRegistry {
		if int(e.policy) != i {
			t.Errorf("registry[%d] holds %v: order must match the Policy constants", i, e.policy)
		}
		if e.name == "" || e.short == "" {
			t.Errorf("registry[%d] (%v) missing a name", i, e.policy)
		}
		if names[e.name] || names[e.short] {
			t.Errorf("registry[%d] (%v) reuses a name: %q/%q", i, e.policy, e.name, e.short)
		}
		names[e.name] = true
		if e.short != e.name {
			names[e.short] = true
		}
		if e.build == nil {
			t.Errorf("registry[%d] (%v) has no constructor", i, e.policy)
		}
	}
	if got, want := len(KnownPolicies()), len(policyRegistry); got != want {
		t.Errorf("KnownPolicies() lists %d policies, registry has %d", got, want)
	}
}

// buildPolicy constructs one quadrant's policy instance the way New does.
func buildPolicy(t *testing.T, pol Policy, sharedCap, queuesPerQuad int) SharingPolicy {
	t.Helper()
	cfg := DefaultConfig(4 * queuesPerQuad)
	cfg.Policy = pol
	cfg = cfg.withDefaults()
	e := lookupPolicy(pol)
	if e == nil {
		t.Fatalf("lookupPolicy(%v) = nil", pol)
	}
	return e.build(cfg, sharedCap, queuesPerQuad)
}

// TestPolicyConformance drives every registered policy through a randomized
// admit/release schedule and checks the invariants the switch relies on:
// bytes are conserved, occupancy never exceeds Cap or goes negative,
// thresholds are never negative, and a fully released pool reads empty.
func TestPolicyConformance(t *testing.T) {
	const (
		sharedCap = 1 << 20
		queues    = 4
	)
	for _, pol := range KnownPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			p := buildPolicy(t, pol, sharedCap, queues)
			if p.Cap() != sharedCap {
				t.Fatalf("Cap() = %d, want %d", p.Cap(), sharedCap)
			}
			rng := sim.NewRNG(uint64(pol)*7 + 1)
			perQueue := make([]int, queues)
			var outstanding []int // admitted sizes, for releases
			now := sim.Time(0)
			ledger := 0
			for step := 0; step < 5000; step++ {
				now += sim.Time(rng.Intn(5000))
				qi := rng.Intn(queues)
				if th := p.Threshold(qi, now); th < 0 {
					t.Fatalf("step %d: Threshold(%d) = %d < 0", step, qi, th)
				}
				if rng.Intn(3) != 0 || len(outstanding) == 0 {
					size := 66 + rng.Intn(9000)
					if p.Admit(qi, perQueue[qi], size, now) {
						ledger += size
						perQueue[qi] += size
						outstanding = append(outstanding, size)
					}
				} else {
					i := rng.Intn(len(outstanding))
					size := outstanding[i]
					outstanding[i] = outstanding[len(outstanding)-1]
					outstanding = outstanding[:len(outstanding)-1]
					ledger -= size
					p.Release(size)
					p.OnDequeue(qi, size, rng.Intn(2)*size, now)
				}
				if got := p.Used(); got != ledger {
					t.Fatalf("step %d: Used() = %d, ledger says %d (bytes not conserved)", step, got, ledger)
				}
				if p.Used() > p.Cap() {
					t.Fatalf("step %d: Used() %d exceeds Cap() %d", step, p.Used(), p.Cap())
				}
			}
			for _, size := range outstanding {
				p.Release(size)
			}
			if p.Used() != 0 {
				t.Errorf("pool not empty after releasing everything: Used() = %d", p.Used())
			}
		})
	}
}

// TestPolicyThresholdResponds checks each policy's threshold moves the right
// way as the pool fills: DT, complete sharing, and ABM shrink a queue's limit
// when others consume the pool; static and BShare quotas stand still.
func TestPolicyThresholdResponds(t *testing.T) {
	const sharedCap = 1 << 20
	for _, pol := range KnownPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			p := buildPolicy(t, pol, sharedCap, 4)
			before := p.Threshold(0, 0)
			// Queue 1 soaks up half the pool in 4 KB steps.
			taken := 0
			for held := 0; taken < sharedCap/2; taken += 4096 {
				if !p.Admit(1, held, 4096, 0) {
					break
				}
				held += 4096
			}
			after := p.Threshold(0, 0)
			switch pol {
			case PolicyStatic, PolicyBShare:
				if after != before {
					t.Errorf("quota moved under pool pressure: %d -> %d", before, after)
				}
			default:
				if after >= before {
					t.Errorf("threshold did not shrink as the pool filled: %d -> %d", before, after)
				}
			}
		})
	}
}

// TestPolicyHooksZeroAlloc pins the per-call allocation count of every policy
// hook at zero — the switch's zero-alloc forwarding guarantee depends on it.
func TestPolicyHooksZeroAlloc(t *testing.T) {
	for _, pol := range KnownPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			p := buildPolicy(t, pol, 1<<20, 4)
			now := sim.Time(0)
			if a := testing.AllocsPerRun(200, func() {
				now += sim.Microsecond
				if p.Admit(2, 0, 4096, now) {
					p.Release(4096)
				}
				p.OnDequeue(2, 4096, 0, now)
				_ = p.Threshold(2, now)
				_ = p.Used()
			}); a != 0 {
				t.Errorf("policy hooks allocate %.2f objects per cycle, want 0", a)
			}
		})
	}
}

// TestABMPenalizesSlowDrain exercises the one behavior separating ABM from DT:
// a queue observed draining below line rate gets a proportionally smaller
// threshold, while a line-rate queue keeps DT's.
func TestABMPenalizesSlowDrain(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Policy = PolicyABM
	cfg = cfg.withDefaults()
	p := buildPolicy(t, PolicyABM, 1<<20, 4).(*abmPolicy)

	lineRate := float64(cfg.DownlinkRateBps)
	segTx := sim.Time(float64(9000*8) / lineRate * float64(sim.Second))

	// Queue 0 dequeues 9 KB segments back to back at line rate; queue 1
	// dequeues one segment per ten of queue 0's, mid-busy-period.
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		for j := 0; j < 10; j++ {
			now += segTx
			p.OnDequeue(0, 9000, 1, now)
		}
		p.OnDequeue(1, 9000, 1, now)
	}
	// Both queues saw dequeues at `now`; only their rates differ.
	fast, slow := p.Threshold(0, now), p.Threshold(1, now)
	if fast <= slow {
		t.Fatalf("slow queue threshold %d not below fast queue's %d", slow, fast)
	}
	if p.mu[0] < 0.9 {
		t.Errorf("line-rate queue mu = %.3f, want ~1", p.mu[0])
	}
	if p.mu[1] > 0.5 {
		t.Errorf("10x-slow queue mu = %.3f, want well under the line-rate queue", p.mu[1])
	}

	// An idle gap must not poison the estimate: after the queue drains empty
	// and sits idle, the next busy period's first dequeue is not a sample.
	muBefore := p.mu[0]
	p.OnDequeue(0, 9000, 0, now) // busy period ends
	now += sim.Second            // long idle gap
	p.OnDequeue(0, 9000, 1, now) // new busy period's first departure
	if p.mu[0] < muBefore/2 {
		t.Errorf("idle gap collapsed mu from %.3f to %.3f", muBefore, p.mu[0])
	}
}
