package switchsim

import (
	"fmt"
	"strings"
)

// Known reports whether p is one of the defined sharing policies. Validate
// rejects unknown values so a config-driven sweep fails fast instead of
// silently falling back to a default discipline mid-grid.
func (p Policy) Known() bool { return p >= PolicyDT && p <= PolicyComplete }

// ParsePolicy resolves a policy name as it appears in sweep specs and CLI
// flags. Both the short forms ("dt", "static", "complete") and the full
// String() names are accepted, case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "dt", "dynamic-threshold":
		return PolicyDT, nil
	case "static", "static-partition":
		return PolicyStatic, nil
	case "complete", "complete-sharing":
		return PolicyComplete, nil
	}
	return 0, fmt.Errorf("switchsim: unknown policy %q (want dt, static, or complete)", s)
}

// MarshalText encodes the policy by name, so JSON sweep specs and dataset
// manifests stay readable and stable if the iota order ever changes.
func (p Policy) MarshalText() ([]byte, error) {
	if !p.Known() {
		return nil, fmt.Errorf("switchsim: cannot encode unknown policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText accepts anything ParsePolicy does.
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
