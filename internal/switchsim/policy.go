package switchsim

import (
	"fmt"
	"strings"
)

// policyEntry binds one sharing discipline's identity — its canonical name,
// CLI/spec short form, and per-quadrant constructor — to its Policy value.
// The registry below is the single source of truth shared by Known, String,
// ParsePolicy, MarshalText, and New, so the set of policies cannot drift
// apart across those surfaces as disciplines are added (the old open-coded
// range check in Known did exactly that).
type policyEntry struct {
	policy Policy
	name   string // canonical String() form
	short  string // short form accepted by ParsePolicy and CLI flags
	build  func(cfg Config, sharedCap, queuesPerQuadrant int) SharingPolicy
}

// policyRegistry lists every defined policy, indexed by its Policy value.
var policyRegistry = []policyEntry{
	{PolicyDT, "dynamic-threshold", "dt", newDTPolicy},
	{PolicyStatic, "static-partition", "static", newStaticPolicy},
	{PolicyComplete, "complete-sharing", "complete", newCompletePolicy},
	{PolicyBShare, "bshare", "bshare", newBSharePolicy},
	{PolicyABM, "abm", "abm", newABMPolicy},
}

// lookupPolicy resolves a Policy value to its registry entry, nil if unknown.
func lookupPolicy(p Policy) *policyEntry {
	if int(p) < 0 || int(p) >= len(policyRegistry) {
		return nil
	}
	e := &policyRegistry[int(p)]
	if e.policy != p {
		// Registry order out of sync with the constants; the registry test
		// catches this, but never resolve a policy to the wrong entry.
		return nil
	}
	return e
}

// KnownPolicies returns every defined policy in declaration order — the
// enumeration sweep grids and conformance tests iterate.
func KnownPolicies() []Policy {
	out := make([]Policy, len(policyRegistry))
	for i := range policyRegistry {
		out[i] = policyRegistry[i].policy
	}
	return out
}

// Known reports whether p is one of the defined sharing policies. Validate
// rejects unknown values so a config-driven sweep fails fast instead of
// silently falling back to a default discipline mid-grid.
func (p Policy) Known() bool { return lookupPolicy(p) != nil }

func (p Policy) String() string {
	if e := lookupPolicy(p); e != nil {
		return e.name
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name as it appears in sweep specs and CLI
// flags. Both the short forms and the full String() names are accepted,
// case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	for i := range policyRegistry {
		e := &policyRegistry[i]
		if t == e.short || t == e.name {
			return e.policy, nil
		}
	}
	shorts := make([]string, len(policyRegistry))
	for i := range policyRegistry {
		shorts[i] = policyRegistry[i].short
	}
	return 0, fmt.Errorf("switchsim: unknown policy %q (want %s)", s, strings.Join(shorts, ", "))
}

// MarshalText encodes the policy by name, so JSON sweep specs and dataset
// manifests stay readable and stable if the iota order ever changes.
func (p Policy) MarshalText() ([]byte, error) {
	if !p.Known() {
		return nil, fmt.Errorf("switchsim: cannot encode unknown policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText accepts anything ParsePolicy does.
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
