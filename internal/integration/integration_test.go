// Package integration exercises cross-module flows end to end: workload ->
// transport -> switch -> host filter -> Millisampler -> SyncMillisampler ->
// analysis, asserting conservation and consistency properties that no single
// package can check alone.
package integration

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestByteConservation checks that bytes counted by Millisampler at the
// receiver equal bytes that left the switch queue toward that server.
func TestByteConservation(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: 21})
	s := core.NewSampler(rack.Servers[0], core.Config{Interval: sim.Millisecond, Buckets: 2000})
	s.Attach()
	s.Enable()

	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	c.Send(8 << 20)
	rack.Eng.RunUntil(1 * sim.Second)

	run := s.Read()
	sampled := run.TotalBytes(core.CtrIn)
	dequeued := uint64(rack.Switch.QueueStats(0).DequeuedBytes)
	if sampled != dequeued {
		t.Errorf("sampler saw %d bytes, switch dequeued %d", sampled, dequeued)
	}
	if got := rack.Servers[0].RxBytes; uint64(got) != sampled {
		t.Errorf("host RxBytes %d != sampled %d", got, sampled)
	}
}

// TestRetransmitAccounting checks the loss chain: switch discards cause
// sender retransmissions whose marked bytes are visible to the receiver-side
// sampler.
func TestRetransmitAccounting(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Remotes: 256, Seed: 22})
	s := core.NewSampler(rack.Servers[0], core.Config{Interval: sim.Millisecond, Buckets: 2000})
	s.Attach()
	s.Enable()

	// Enough fresh-connection incast to guarantee discards.
	conns := make([]*transport.Conn, 200)
	for i := range conns {
		conns[i] = rack.RemoteEPs[i].Connect(rack.Servers[0].ID, 80, transport.Options{})
		conns[i].Send(64 << 10)
	}
	rack.Eng.RunUntil(3 * sim.Second)

	if rack.Switch.QueueStats(0).DiscardSegments == 0 {
		t.Fatal("no discards; incast too weak for the test's premise")
	}
	var sentRetx int64
	for _, c := range conns {
		sentRetx += c.Stats.RetxBytes
	}
	if sentRetx == 0 {
		t.Fatal("discards but no retransmissions")
	}
	run := s.Read()
	seenRetx := run.TotalBytes(core.CtrInRetx)
	if seenRetx == 0 {
		t.Fatal("sampler saw no retransmitted bytes")
	}
	// Receiver sees retx payload + headers; retransmitted segments can be
	// dropped again, so seen <= sent(+headers). Sanity: same order.
	if float64(seenRetx) > 1.2*float64(sentRetx)+100*netsim.HeaderBytes {
		t.Errorf("sampler retx bytes %d wildly exceed sender retx payload %d", seenRetx, sentRetx)
	}
	// All transfers complete despite loss.
	for i, c := range conns {
		if !c.Done() {
			t.Fatalf("conn %d stalled: inflight=%d timeouts=%d", i, c.InflightBytes(), c.Stats.Timeouts)
		}
	}
}

// TestECNChain checks ECN end to end: queue crossing the threshold marks CE,
// the sampler counts marked bytes, DCTCP raises alpha, and the queue is held
// near the threshold rather than the DT cap.
func TestECNChain(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: 23})
	s := core.NewSampler(rack.Servers[0], core.Config{Interval: sim.Millisecond, Buckets: 2000})
	s.Attach()
	s.Enable()

	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	c.Send(1 << 30)
	rack.Eng.RunUntil(500 * sim.Millisecond)

	run := s.Read()
	if run.TotalBytes(core.CtrInECN) == 0 {
		t.Error("no CE-marked bytes sampled for a saturating DCTCP flow")
	}
	d := c.CC().(*transport.DCTCP)
	if d.Alpha <= 0 || d.Alpha > 1 {
		t.Errorf("DCTCP alpha = %v", d.Alpha)
	}
	if st := rack.Switch.QueueStats(0); st.DiscardSegments != 0 {
		t.Errorf("a single ECN-governed flow dropped %d segments", st.DiscardSegments)
	}
}

// TestConnsEstimateTracksIncast checks that the sketch-based estimate in a
// full pipeline run reflects the number of concurrent connections.
func TestConnsEstimateTracksIncast(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Remotes: 128, Seed: 24})
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 300, CountFlows: true})
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	// 80 connections, each active in every 1 ms bucket: the sketch counts
	// per-bucket active flows, so senders must emit at least one segment
	// per sampling interval to all be visible.
	for i := 0; i < 80; i++ {
		c := rack.RemoteEPs[i].Connect(rack.Servers[0].ID, 80, transport.Options{})
		i := i
		var feed func()
		feed = func() {
			c.Send(2 << 10)
			rack.Eng.After(sim.Millisecond, feed)
		}
		rack.Eng.At(25*sim.Millisecond+sim.Time(i)*10*sim.Microsecond, feed)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Average the estimate over the middle of the window.
	var sum float64
	var n int
	for i := sr.Samples / 4; i < 3*sr.Samples/4; i++ {
		sum += sr.Servers[0].Conns[i]
		n++
	}
	got := sum / float64(n)
	if math.Abs(got-80) > 25 {
		t.Errorf("estimated %.1f concurrent connections, want ~80", got)
	}
}

// TestClockSkewBounded checks the full stack keeps per-server alignment
// within one sample: a rack-wide multicast burst appears within +-1 sample
// on every server even with default (imperfect) clocks.
func TestClockSkewBounded(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 25})
	subs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	beacon := workload.NewMulticastBeacon(rack, subs, 50*sim.Millisecond, 128<<10, 2_000_000_000)
	beacon.Start()
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 400})
	if err := ctrl.Schedule(15 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(15*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	// For every beacon sample on server 0, every other server must show the
	// burst within one sample.
	checked := 0
	for i := 1; i < sr.Samples-1; i++ {
		if sr.Servers[0].In[i] < 1000 {
			continue
		}
		checked++
		for sidx := 1; sidx < 8; sidx++ {
			got := sr.Servers[sidx].In[i-1] + sr.Servers[sidx].In[i] + sr.Servers[sidx].In[i+1]
			if got < 1000 {
				t.Fatalf("server %d missed beacon at sample %d", sidx, i)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no beacon samples to check")
	}
}

// TestAnalysisConsistencyOnLivePipeline cross-checks analysis invariants on
// a real mixed-workload run rather than synthetic series.
func TestAnalysisConsistencyOnLivePipeline(t *testing.T) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 26})
	rng := rack.RNG.Fork(1)
	profiles := []workload.Profile{
		workload.MLTrain, workload.MLTrain, workload.Cache, workload.Web,
		workload.Storage, workload.Batch, workload.Quiet, workload.Web,
	}
	if _, err := workload.InstallRack(rack, profiles, rng); err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 800, CountFlows: true})
	if err := ctrl.Schedule(150 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(150*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	ra := analysis.Analyze(sr, analysis.DefaultOptions())

	// Contention at any sample equals the number of servers whose bursty
	// bitmap is set.
	for i := 0; i < sr.Samples; i++ {
		n := 0
		for s := range ra.Bursty {
			if ra.Bursty[s][i] {
				n++
			}
		}
		if n != ra.Contention[i] {
			t.Fatalf("contention[%d] = %d, bitmap says %d", i, ra.Contention[i], n)
		}
	}
	// Sum of per-server burst counts equals total bursts.
	total := 0
	for _, s := range ra.Servers {
		total += s.NumBursts
	}
	if total != len(ra.Bursts) {
		t.Errorf("per-server bursts %d != total %d", total, len(ra.Bursts))
	}
	// Burst volumes are positive and no burst exceeds the window.
	for _, b := range ra.Bursts {
		if b.Volume <= 0 || b.Len() <= 0 || b.End > sr.Samples {
			t.Fatalf("malformed burst %+v", b)
		}
	}
}
