package integration

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// degradedCollectionRun builds a 10-server rack with perfect clocks and a
// deterministic direct-injection traffic schedule (bypassing the shared
// switch, so each host's series is independent of the others), runs one
// synchronized collection, and optionally injects faults: two crashed hosts
// (one rebooting mid-window, one down through the harvest) and a lossy
// control plane.
func degradedCollectionRun(t *testing.T, faults bool) *core.SyncRun {
	t.Helper()
	const servers = 10
	ctl := testbed.ControlConfig{}
	if faults {
		ctl.FailProb = 0.10
	}
	rack := testbed.NewRack(testbed.RackConfig{
		Servers:    servers,
		Seed:       99,
		ClockModel: clock.PerfectSyncModel(),
		Control:    ctl,
	})

	ctrl := core.NewController(rack, core.Config{
		Interval: sim.Millisecond, Buckets: 200, CountFlows: true,
	})
	const at = 20 * sim.Millisecond
	if err := ctrl.Schedule(at); err != nil {
		t.Fatal(err)
	}

	// Per-host deterministic traffic: one segment per millisecond with a
	// host- and time-dependent size, covering the whole window.
	for i := 0; i < servers; i++ {
		h := rack.Servers[i]
		for tick := 0; tick < 199; tick++ {
			tt := at + sim.Millisecond + sim.Time(tick)*sim.Millisecond
			size := 600 + 90*i + 37*(tick%11)
			rack.Eng.At(tt, func() {
				h.Inject(&netsim.Segment{
					Flow: netsim.FlowKey{Src: 999, Dst: h.ID, SrcPort: 7, DstPort: 80},
					Size: size,
				})
			})
		}
	}

	if faults {
		// 20% of the rack degrades mid-run: host 0 crashes and reboots
		// (truncated data), host 1 crashes and stays down past the straggler
		// deadline (missing data).
		rack.Eng.At(150*sim.Millisecond, func() { rack.Servers[0].Crash(30 * sim.Millisecond) })
		rack.Eng.At(160*sim.Millisecond, func() { rack.Servers[1].Crash(10 * sim.Second) })
	}

	rack.Eng.RunUntil(ctrl.HarvestDeadline(at) + sim.Millisecond)
	if !ctrl.Done() {
		t.Fatal("harvest did not complete by the straggler deadline")
	}
	sr, err := ctrl.Result()
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestDegradedCollectionTolerance is the robustness acceptance case: with
// 20% of the rack crashing mid-run and 10% of harvest RPCs failing, the
// controller still returns an aligned SyncRun whose per-host status flags
// exactly the degraded hosts — and every healthy host's aligned series is
// byte-identical to a failure-free run over the same window.
func TestDegradedCollectionTolerance(t *testing.T) {
	baseline := degradedCollectionRun(t, false)
	faulty := degradedCollectionRun(t, true)

	if !baseline.Health.AllOK() {
		t.Fatalf("baseline health = %v, want all ok", baseline.Health)
	}
	h := faulty.Health
	if h.OK != 8 || h.Truncated != 1 || h.Missing != 1 || h.Unsynced != 0 {
		t.Fatalf("faulty health = %v, want 8 ok / 1 truncated / 1 missing", h)
	}

	// Statuses flag exactly the degraded hosts.
	for i, srv := range faulty.Servers {
		want := core.StatusOK
		switch i {
		case 0:
			want = core.StatusTruncated
		case 1:
			want = core.StatusMissing
		}
		if srv.Status != want {
			t.Errorf("server %d status = %v, want %v", i, srv.Status, want)
		}
	}

	// The degraded hosts must not have shrunk the aligned window.
	if faulty.Samples != baseline.Samples || faulty.StartWall != baseline.StartWall {
		t.Fatalf("window changed: %d samples from %d vs %d samples from %d",
			faulty.Samples, faulty.StartWall, baseline.Samples, baseline.StartWall)
	}

	// Healthy hosts: byte-identical aligned series.
	for i := 2; i < len(faulty.Servers); i++ {
		fs, bs := &faulty.Servers[i], &baseline.Servers[i]
		for name, pair := range map[string][2][]float64{
			"in":      {fs.In, bs.In},
			"inRetx":  {fs.InRetx, bs.InRetx},
			"inECN":   {fs.InECN, bs.InECN},
			"out":     {fs.Out, bs.Out},
			"outRetx": {fs.OutRetx, bs.OutRetx},
			"conns":   {fs.Conns, bs.Conns},
		} {
			got, want := pair[0], pair[1]
			if len(got) != len(want) {
				t.Fatalf("server %d %s: length %d vs %d", i, name, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("server %d %s[%d] = %v, baseline %v", i, name, j, got[j], want[j])
				}
			}
		}
	}

	// The truncated host carries a valid prefix and zeros beyond it; the
	// missing host carries nothing.
	tv := faulty.Servers[0].Valid(faulty.Samples)
	if tv <= 0 || tv >= faulty.Samples {
		t.Errorf("truncated host valid = %d of %d, want a proper prefix", tv, faulty.Samples)
	}
	for j := 0; j < tv; j++ {
		if faulty.Servers[0].In[j] != baseline.Servers[0].In[j] {
			t.Fatalf("truncated host sample %d = %v, baseline %v",
				j, faulty.Servers[0].In[j], baseline.Servers[0].In[j])
		}
	}
	for j := tv; j < faulty.Samples; j++ {
		if faulty.Servers[0].In[j] != 0 {
			t.Fatalf("truncated host sample %d nonzero past valid prefix", j)
		}
	}
	if v := faulty.Servers[1].Valid(faulty.Samples); v != 0 {
		t.Errorf("missing host valid = %d, want 0", v)
	}

	// The analysis layer honors the degradation: missing hosts contribute
	// no server run statistics, healthy hosts match the baseline.
	fa := analysis.Analyze(faulty, analysis.DefaultOptions())
	ba := analysis.Analyze(baseline, analysis.DefaultOptions())
	if fa.Servers[1].ValidSamples != 0 || fa.Servers[1].NumBursts != 0 {
		t.Errorf("missing host analyzed as %+v", fa.Servers[1])
	}
	for i := 2; i < len(fa.Servers); i++ {
		if fa.Servers[i].NumBursts != ba.Servers[i].NumBursts {
			t.Errorf("server %d bursts %d vs baseline %d",
				i, fa.Servers[i].NumBursts, ba.Servers[i].NumBursts)
		}
		if fa.Servers[i].AvgUtil != ba.Servers[i].AvgUtil {
			t.Errorf("server %d avg util %v vs baseline %v",
				i, fa.Servers[i].AvgUtil, ba.Servers[i].AvgUtil)
		}
	}
}
