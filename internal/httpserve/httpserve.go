// Package httpserve is the HTTP server plumbing the repo's two services —
// the distributed-generation coordinator (internal/distrib) and the
// read-side query service (internal/queryd) — share: graceful
// drain-on-signal serving, a JSON error envelope, JSON request/response
// helpers, and request logging middleware. Both services speak stdlib
// HTTP/JSON; this package keeps their operational behavior (shutdown
// semantics, error shape, log line format) identical instead of
// copy-pasted.
package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"
)

// ErrorBody is the JSON error envelope every non-2xx response carries:
//
//	{"error": {"status": 404, "message": "no dataset \"x\""}}
//
// Clients that only print the body still get something readable; clients
// that decode it get a stable shape.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the envelope's payload.
type ErrorDetail struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// Error writes a JSON error envelope with the given status. It is the
// service-side replacement for http.Error.
func Error(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{
		Status:  status,
		Message: fmt.Sprintf(format, args...),
	}})
}

// WriteJSON writes v as a 200 JSON response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// DecodeJSON decodes a request body into v; on failure it writes a 400
// envelope and returns false.
func DecodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		Error(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// statusWriter captures the response status and byte count for the log line.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the logging wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Logged wraps next so every request emits one line on logger:
//
//	GET /v1/catalog 200 531B 1.2ms
//
// A nil logger returns next unchanged.
func Logged(logger *log.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Printf("%s %s %d %dB %v", r.Method, r.URL.RequestURI(), sw.status,
			sw.bytes, time.Since(start).Round(100*time.Microsecond))
	})
}

// Graceful runs srv until ctx is cancelled, then drains: onDrain (if any)
// runs first — the place to stop granting leases or refuse new heavy work —
// and in-flight requests get drainTimeout to finish before the listener is
// torn down. A clean shutdown (including one triggered by the server being
// closed elsewhere) returns nil; anything else is the serve error.
func Graceful(ctx context.Context, srv *http.Server, drainTimeout time.Duration, onDrain func()) error {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		if onDrain != nil {
			onDrain()
		}
		shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			// Stragglers outlived the drain window; close them hard.
			srv.Close()
		}
		<-errc // reap the serve goroutine (always ErrServerClosed by now)
		return nil
	}
}
