package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	Error(rec, http.StatusNotFound, "no dataset %q", "x")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var body ErrorBody
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if body.Error.Status != 404 || body.Error.Message != `no dataset "x"` {
		t.Fatalf("envelope = %+v", body)
	}
}

func TestDecodeJSONBadBody(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/x", strings.NewReader("{not json"))
	var v struct{}
	if DecodeJSON(rec, req, &v) {
		t.Fatal("DecodeJSON accepted garbage")
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

func TestLoggedCapturesStatusAndBytes(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Logged(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "short and stout")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/pot?x=1", nil))
	line := buf.String()
	for _, want := range []string{"GET /pot?x=1", "418", "15B"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
}

func TestLoggedPreservesFlusher(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	flushed := false
	h := Logged(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
			flushed = true
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !flushed {
		t.Fatal("logging wrapper hides http.Flusher from streaming handlers")
	}
}

// TestGracefulDrain proves the SIGTERM path: cancelling the context runs the
// drain hook, lets the in-flight request finish, and returns nil.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Addr: addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "done")
	})}

	ctx, cancel := context.WithCancel(context.Background())
	drained := make(chan struct{})
	served := make(chan error, 1)
	go func() {
		served <- Graceful(ctx, srv, 5*time.Second, func() { close(drained) })
	}()

	// Wait for the listener, then park a request in the handler.
	var resp *http.Response
	got := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 100; i++ {
			resp, err = http.Get("http://" + addr + "/")
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		got <- err
	}()
	<-inHandler

	cancel()
	<-drained
	// The in-flight request must still complete during the drain window.
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "done" {
		t.Fatalf("in-flight body = %q", body)
	}
	if err := <-served; err != nil {
		t.Fatalf("Graceful returned %v, want nil", err)
	}
}
