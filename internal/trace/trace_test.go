package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	Name string
	Vals []float64
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "data.gob.gz")
	in := rec{Name: "x", Vals: []float64{1, 2.5, -3}}
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[1] != 2.5 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out rec
	if err := Load(filepath.Join(t.TempDir(), "nope"), &out); err == nil {
		t.Error("missing file did not error")
	}
}

func TestStorePutGetRetention(t *testing.T) {
	s, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Put(rec{Name: "r", Vals: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("retained %d runs, want 3", len(ids))
	}
	if ids[0] != 2 || ids[2] != 4 {
		t.Errorf("retained ids %v, want oldest evicted", ids)
	}
	var out rec
	if err := s.Get(ids[2], &out); err != nil {
		t.Fatal(err)
	}
	if out.Vals[0] != 4 {
		t.Errorf("got %+v", out)
	}
	if err := s.Get(0, &out); err == nil {
		t.Error("evicted run still readable")
	}
}

func TestStoreResumesNumbering(t *testing.T) {
	dir := t.TempDir()
	s1, _ := NewStore(dir, 10)
	id1, _ := s1.Put(rec{Name: "a"})
	s2, err := NewStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s2.Put(rec{Name: "b"})
	if id2 != id1+1 {
		t.Errorf("numbering did not resume: %d then %d", id1, id2)
	}
}

func TestSaveAtomicNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gob.gz")
	if err := Save(path, rec{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	// A failing encode (channels are not gob-encodable) must leave neither
	// a temp file nor a partial file under the final name.
	bad := filepath.Join(dir, "bad.gob.gz")
	if err := Save(bad, make(chan int)); err == nil {
		t.Fatal("encoding a channel did not error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "data.gob.gz" {
			t.Errorf("unexpected leftover file %q", e.Name())
		}
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gob.gz")
	if err := Save(path, rec{Name: "x", Vals: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation: the gzip stream ends before its checksum.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out rec
	err = Load(path, &out)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: got %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Path != path {
		t.Errorf("corrupt error did not carry the path: %v", err)
	}

	// Garbage header: not gzip at all.
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage file: got %v, want ErrCorrupt", err)
	}

	// Missing files are NOT corrupt: callers distinguish the two.
	if err := Load(filepath.Join(dir, "nope"), &out); errors.Is(err, ErrCorrupt) {
		t.Error("missing file classified as corrupt")
	}
}

func TestStoreVerifyQuarantinesCorrupt(t *testing.T) {
	s, err := NewStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var put []int
	for i := 0; i < 4; i++ {
		id, err := s.Put(rec{Name: "r", Vals: []float64{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		put = append(put, id)
	}
	// Damage run 1 (truncate) and run 2 (bit flip in the middle).
	for _, id := range put[1:3] {
		raw, err := os.ReadFile(s.path(id))
		if err != nil {
			t.Fatal(err)
		}
		if id == put[1] {
			raw = raw[:len(raw)-4]
		} else {
			raw[len(raw)/2] ^= 0xFF
		}
		if err := os.WriteFile(s.path(id), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != put[1] || bad[1] != put[2] {
		t.Fatalf("quarantined %v, want %v", bad, put[1:3])
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != put[0] || ids[1] != put[3] {
		t.Fatalf("retained ids %v after quarantine, want %v", ids, []int{put[0], put[3]})
	}
	// The quarantined bytes stay on disk for inspection.
	if _, err := os.Stat(s.path(put[1]) + ".corrupt"); err != nil {
		t.Errorf("quarantined file gone: %v", err)
	}
	// Healthy runs still load.
	var out rec
	if err := s.Get(put[3], &out); err != nil || out.Vals[0] != 3 {
		t.Errorf("healthy run unreadable after Verify: %v %+v", err, out)
	}
}
