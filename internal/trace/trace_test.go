package trace

import (
	"path/filepath"
	"testing"
)

type rec struct {
	Name string
	Vals []float64
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "data.gob.gz")
	in := rec{Name: "x", Vals: []float64{1, 2.5, -3}}
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[1] != 2.5 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out rec
	if err := Load(filepath.Join(t.TempDir(), "nope"), &out); err == nil {
		t.Error("missing file did not error")
	}
}

func TestStorePutGetRetention(t *testing.T) {
	s, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Put(rec{Name: "r", Vals: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("retained %d runs, want 3", len(ids))
	}
	if ids[0] != 2 || ids[2] != 4 {
		t.Errorf("retained ids %v, want oldest evicted", ids)
	}
	var out rec
	if err := s.Get(ids[2], &out); err != nil {
		t.Fatal(err)
	}
	if out.Vals[0] != 4 {
		t.Errorf("got %+v", out)
	}
	if err := s.Get(0, &out); err == nil {
		t.Error("evicted run still readable")
	}
}

func TestStoreResumesNumbering(t *testing.T) {
	dir := t.TempDir()
	s1, _ := NewStore(dir, 10)
	id1, _ := s1.Put(rec{Name: "a"})
	s2, err := NewStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s2.Put(rec{Name: "b"})
	if id2 != id1+1 {
		t.Errorf("numbering did not resume: %d then %d", id1, id2)
	}
}
