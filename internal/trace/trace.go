// Package trace persists measurement data: gzip-compressed gob encoding for
// datasets, and a host-local run store with retention, mirroring the
// production tool's "compressed and stored on the host for about a week"
// behaviour (paper §4.2).
//
// Writes are atomic (temp file + rename), so a crash mid-write never leaves
// a half-written file behind under the final name, and corrupt files are
// reported with a typed error the caller can match with errors.Is /
// errors.As.
package trace

import (
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrCorrupt matches (via errors.Is) any load failure caused by a damaged
// file: bad gzip framing, a failed checksum, truncation, or an undecodable
// gob stream.
var ErrCorrupt = errors.New("trace: corrupt file")

// CorruptError reports an unreadable trace file. It wraps the underlying
// decode error and matches ErrCorrupt.
type CorruptError struct {
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt file %s: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrCorrupt) match without callers knowing the
// concrete type.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Save writes v to path as gzip-compressed gob. Parent directories are
// created as needed. The write is atomic: data lands in a temp file in the
// same directory and is renamed over path only after a successful encode and
// close, so readers never observe a partially written file.
func Save(path string, v any) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(v); err != nil {
		cleanup()
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		cleanup()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Load reads gzip-compressed gob from path into v. Damaged files yield a
// *CorruptError (matching ErrCorrupt); a missing file yields the underlying
// fs error (matching fs.ErrNotExist).
func Load(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return &CorruptError{Path: path, Err: err}
	}
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(v); err != nil {
		return &CorruptError{Path: path, Err: err}
	}
	// Drain the remainder so the gzip checksum (verified at stream end)
	// catches tail corruption the decoder didn't need to read.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return &CorruptError{Path: path, Err: err}
	}
	return nil
}

// verifyFile checks a file's gzip integrity (framing and checksum) without
// needing the gob's concrete type.
func verifyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return &CorruptError{Path: path, Err: err}
	}
	defer zr.Close()
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return &CorruptError{Path: path, Err: err}
	}
	return nil
}

// Store is a host-local directory of sequentially numbered run files with a
// bounded retention count (oldest evicted first).
type Store struct {
	dir    string
	keep   int
	nextID int
}

// NewStore opens (creating if needed) a store that retains at most keep
// runs.
func NewStore(dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	s := &Store{dir: dir, keep: keep}
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	if len(ids) > 0 {
		s.nextID = ids[len(ids)-1] + 1
	}
	return s, nil
}

func (s *Store) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("run-%08d.gob.gz", id))
}

func (s *Store) ids() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "run-%d.gob.gz", &id); err != nil {
			continue
		}
		// Sscanf ignores trailing input, so demand an exact name: temp and
		// quarantined files must not count as runs.
		if e.Name() != fmt.Sprintf("run-%08d.gob.gz", id) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Put stores one run and applies retention.
func (s *Store) Put(v any) (int, error) {
	id := s.nextID
	if err := Save(s.path(id), v); err != nil {
		return 0, err
	}
	s.nextID++
	ids, err := s.ids()
	if err != nil {
		return id, err
	}
	for len(ids) > s.keep {
		if err := os.Remove(s.path(ids[0])); err != nil {
			return id, fmt.Errorf("trace: evict: %w", err)
		}
		ids = ids[1:]
	}
	return id, nil
}

// Get loads run id into v.
func (s *Store) Get(id int, v any) error { return Load(s.path(id), v) }

// IDs lists retained run ids in ascending order.
func (s *Store) IDs() ([]int, error) { return s.ids() }

// Verify scans every retained run for corruption (gzip framing and
// checksum). Damaged files are quarantined — renamed aside with a .corrupt
// suffix so they stop showing up in IDs but remain on disk for inspection —
// and their ids are returned.
func (s *Store) Verify() (quarantined []int, err error) {
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		verr := verifyFile(s.path(id))
		if verr == nil {
			continue
		}
		if !errors.Is(verr, ErrCorrupt) {
			return quarantined, verr
		}
		if rerr := os.Rename(s.path(id), s.path(id)+".corrupt"); rerr != nil {
			return quarantined, fmt.Errorf("trace: quarantine: %w", rerr)
		}
		quarantined = append(quarantined, id)
	}
	return quarantined, nil
}
