// Package trace persists measurement data: gzip-compressed gob encoding for
// datasets, and a host-local run store with retention, mirroring the
// production tool's "compressed and stored on the host for about a week"
// behaviour (paper §4.2).
package trace

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Save writes v to path as gzip-compressed gob. Parent directories are
// created as needed.
func Save(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(v); err != nil {
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return f.Close()
}

// Load reads gzip-compressed gob from path into v.
func Load(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("trace: %s: %w", path, err)
	}
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(v); err != nil {
		return fmt.Errorf("trace: decode %s: %w", path, err)
	}
	return nil
}

// Store is a host-local directory of sequentially numbered run files with a
// bounded retention count (oldest evicted first).
type Store struct {
	dir    string
	keep   int
	nextID int
}

// NewStore opens (creating if needed) a store that retains at most keep
// runs.
func NewStore(dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	s := &Store{dir: dir, keep: keep}
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	if len(ids) > 0 {
		s.nextID = ids[len(ids)-1] + 1
	}
	return s, nil
}

func (s *Store) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("run-%08d.gob.gz", id))
}

func (s *Store) ids() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "run-%d.gob.gz", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// Put stores one run and applies retention.
func (s *Store) Put(v any) (int, error) {
	id := s.nextID
	if err := Save(s.path(id), v); err != nil {
		return 0, err
	}
	s.nextID++
	ids, err := s.ids()
	if err != nil {
		return id, err
	}
	for len(ids) > s.keep {
		if err := os.Remove(s.path(ids[0])); err != nil {
			return id, fmt.Errorf("trace: evict: %w", err)
		}
		ids = ids[1:]
	}
	return id, nil
}

// Get loads run id into v.
func (s *Store) Get(id int, v any) error { return Load(s.path(id), v) }

// IDs lists retained run ids in ascending order.
func (s *Store) IDs() ([]int, error) { return s.ids() }
