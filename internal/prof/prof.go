// Package prof wires Go's CPU, heap, and execution-trace profilers into a
// CLI: the three standard flags (-cpuprofile, -memprofile, -trace), one Start
// call after flag.Parse, one deferred Stop before exit. It exists so every
// binary in cmd/ exposes the same profiling surface without each main
// re-implementing the open/start/stop/write dance.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the registered flag values.
type Flags struct {
	CPU  *string
	Mem  *string
	Trce *string
}

// AddFlags registers -cpuprofile, -memprofile, and -trace on the flag set.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		CPU:  fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem:  fs.String("memprofile", "", "write a heap profile to this file on exit"),
		Trce: fs.String("trace", "", "write an execution trace to this file"),
	}
}

// Session is an in-flight profiling session; Stop finishes it.
type Session struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// Start begins whichever profilers the flags requested. It returns an error
// instead of exiting so the caller controls the failure path; a nil *Flags
// starts nothing.
func (f *Flags) Start() (*Session, error) {
	if f == nil {
		return &Session{}, nil
	}
	s := &Session{memPath: *f.Mem}
	if *f.CPU != "" {
		file, err := os.Create(*f.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = file
	}
	if *f.Trce != "" {
		file, err := os.Create(*f.Trce)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(file); err != nil {
			file.Close()
			s.Stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		s.traceFile = file
	}
	return s, nil
}

// Stop flushes and closes every active profiler. Safe to call on a partially
// started (or nil) session, and idempotent.
func (s *Session) Stop() {
	if s == nil {
		return
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		s.traceFile.Close()
		s.traceFile = nil
	}
	if s.memPath != "" {
		if file, err := os.Create(s.memPath); err == nil {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(file); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			file.Close()
		} else {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		s.memPath = ""
	}
}
