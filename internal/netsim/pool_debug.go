//go:build simdebug

package netsim

// poolDebug enables the segment-pool double-free and use-after-free checks.
// Build with `-tags simdebug` (done by `make check`) to turn the checks into
// panics; in release builds the guarded branches compile away.
const poolDebug = true
