package netsim

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/sim"
)

// Direction distinguishes the two tc hook points on the packet path.
type Direction int

const (
	// Ingress is traffic entering the host (paper's primary focus).
	Ingress Direction = iota
	// Egress is traffic leaving the host.
	Egress
)

func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// Filter is a tc-style packet hook. Handle runs on the simulated CPU core
// that processes the segment (the soft-irq bottom half on ingress), which is
// how Millisampler's per-CPU counters get exercised. Filters must not retain
// seg beyond the call: the switch may pool or replicate segments.
type Filter interface {
	Handle(now sim.Time, core int, dir Direction, seg *Segment)
}

// ProtocolHandler receives segments after the ingress filter chain, playing
// the role of the kernel TCP stack. The transport package installs one.
type ProtocolHandler func(seg *Segment)

// StackTap observes host-stack latency at the instrumentation points of the
// packet path, netstacklat-style. On ingress it fires at socket delivery
// (after the stall and GRO models, on the RSS-selected soft-irq core) with
// span = time the segment spent inside the host since NIC arrival; on egress
// it fires at Send with span = the NIC's committed serialization backlog.
// Like Filters, a tap must not retain seg beyond the call and must not
// mutate simulation state: it is pure bookkeeping, so enabling it never
// perturbs the event schedule.
type StackTap interface {
	Observe(now sim.Time, core int, dir Direction, seg *Segment, span sim.Time)
}

// Forwarder is the host's next hop for egress traffic (its ToR uplink path).
type Forwarder interface {
	Forward(seg *Segment)
}

// ForwarderFunc adapts a function to the Forwarder interface.
type ForwarderFunc func(seg *Segment)

// Forward implements Forwarder.
func (f ForwarderFunc) Forward(seg *Segment) { f(seg) }

// Host is a simulated server: a NIC, a set of CPU cores with RSS dispatch,
// attach points for tc filters on both directions, and a protocol handler.
type Host struct {
	ID    HostID
	Clock *clock.Host
	Cores int

	eng     *sim.Engine
	pool    *SegmentPool
	nic     *Link // egress serialization at the host's allocated rate
	out     Forwarder
	fwd     Deliver // pre-bound NIC continuation; avoids a closure per Send
	ingress []Filter
	egress  []Filter
	handler ProtocolHandler
	gro     *groState
	tap     StackTap

	// RxBytes and TxBytes count all traffic through the host, filters aside.
	RxBytes int64
	TxBytes int64

	// stalledUntil, when in the future, models a kernel soft-irq stall
	// (paper §4.6: locking bugs that prevent any handling of network
	// interrupts). Arriving segments are held and processed together when
	// the stall ends, which is what makes such stalls visible as apparent
	// bursts in Millisampler data.
	stalledUntil sim.Time
	stalled      []*Segment

	// NICDropRate, when positive, randomly discards that fraction of
	// arriving segments before the host sees them — the NIC firmware bug
	// diagnostic scenario of §4.2 (loss with low utilization).
	NICDropRate float64
	nicRNG      *sim.RNG
	NICDrops    int64

	// Crash/reboot fault model. A crashed host is dark: segments in either
	// direction are dropped, soft-irq state (including stalled segments) is
	// lost, and the tc filter chains are cleared — a reboot does not restore
	// filters, mirroring production where attached programs do not survive
	// the kernel. The fleet the paper measured (~92k servers per region)
	// always has some hosts in this state during a collection day.
	downUntil  sim.Time
	isDown     bool
	Boots      int   // completed reboots
	CrashDrops int64 // segments dropped while the host was down
	crashHooks []func()
}

// HostConfig parameterizes a Host.
type HostConfig struct {
	ID HostID
	// Cores is the number of simulated CPU cores handling soft-irqs.
	Cores int
	// LinkRateBps is the host's allocated NIC rate (12.5 Gbps for the server
	// class the paper studies: a 50 Gbps NIC shared across 4 servers).
	LinkRateBps int64
	// PropDelay is the one-way server-to-ToR propagation delay.
	PropDelay sim.Time
	Clock     *clock.Host
	// Pool is the segment pool shared along this host's packet path. Leave
	// nil for a private pool; topologies (testbed.Rack) share one pool per
	// engine so segments recycle across the whole path.
	Pool *SegmentPool
}

// DefaultServerRateBps is the per-server allocated line rate (12.5 Gbps).
const DefaultServerRateBps int64 = 12_500_000_000

// NewHost builds a host on the engine. The forwarder (uplink path) is set
// later by the topology with SetForwarder.
func NewHost(eng *sim.Engine, cfg HostConfig) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.LinkRateBps == 0 {
		cfg.LinkRateBps = DefaultServerRateBps
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewHost(clock.PerfectSyncModel(), sim.NewRNG(uint64(cfg.ID)))
	}
	if cfg.Pool == nil {
		cfg.Pool = NewSegmentPool()
	}
	h := &Host{
		ID:    cfg.ID,
		Clock: cfg.Clock,
		Cores: cfg.Cores,
		eng:   eng,
		pool:  cfg.Pool,
		nic:   NewLink(eng, cfg.LinkRateBps, cfg.PropDelay),
	}
	h.nic.SetPool(cfg.Pool)
	return h
}

// Engine returns the host's simulation engine.
func (h *Host) Engine() *sim.Engine { return h.eng }

// LineRateBps returns the host's allocated NIC rate.
func (h *Host) LineRateBps() int64 { return h.nic.RateBps }

// Pool returns the host's segment pool; the transport stack draws its
// outgoing segments from it.
func (h *Host) Pool() *SegmentPool { return h.pool }

// SetForwarder wires the host's egress path.
func (h *Host) SetForwarder(f Forwarder) {
	h.out = f
	h.fwd = func(s *Segment) { h.out.Forward(s) }
}

// SetProtocolHandler installs the transport-layer receive entry point.
func (h *Host) SetProtocolHandler(p ProtocolHandler) { h.handler = p }

// SetStackTap installs (or, with nil, removes) the host-stack latency tap.
// A host has at most one tap; like the tc chains it does not survive a
// crash.
func (h *Host) SetStackTap(t StackTap) { h.tap = t }

// StackTapInstalled reports whether a latency tap is attached.
func (h *Host) StackTapInstalled() bool { return h.tap != nil }

// AttachIngress appends f to the ingress tc chain.
func (h *Host) AttachIngress(f Filter) { h.ingress = append(h.ingress, f) }

// AttachEgress appends f to the egress tc chain.
func (h *Host) AttachEgress(f Filter) { h.egress = append(h.egress, f) }

// DetachIngress removes f from the ingress chain. Detaching the filter is how
// Millisampler guarantees zero CPU cost between runs. Filters passed to the
// detach methods must be comparable (use pointer receivers).
func (h *Host) DetachIngress(f Filter) { h.ingress = removeFilter(h.ingress, f) }

// DetachEgress removes f from the egress chain.
func (h *Host) DetachEgress(f Filter) { h.egress = removeFilter(h.egress, f) }

func removeFilter(fs []Filter, f Filter) []Filter {
	out := fs[:0]
	for _, g := range fs {
		if g != f {
			out = append(out, g)
		}
	}
	// Clear the tail so detached filters are not retained.
	for i := len(out); i < len(fs); i++ {
		fs[i] = nil
	}
	return out
}

// rssCore maps a segment to the CPU core that processes it, mirroring
// receive-side scaling: a hash of the flow tuple.
func (h *Host) rssCore(seg *Segment) int {
	return int(seg.Flow.Hash() % uint64(h.Cores))
}

// Crash takes the host down for downtime: in-flight and stalled segments are
// dropped, the tc filter chains are lost, and registered crash hooks fire so
// attached instrumentation (e.g. a Millisampler run) can record the
// interruption. Crashing an already-down host only extends the outage.
func (h *Host) Crash(downtime sim.Time) {
	until := h.eng.Now() + downtime
	if h.isDown {
		if until > h.downUntil {
			h.downUntil = until
			h.eng.At(until, h.reboot)
		}
		return
	}
	h.isDown = true
	h.downUntil = until
	// Soft-irq state and filter chains do not survive the crash. Segments
	// held by the stall and GRO models are dropped, which for pooled
	// segments means recycled: the crash terminates their path.
	h.CrashDrops += int64(len(h.stalled))
	for i, seg := range h.stalled {
		h.pool.Put(seg)
		h.stalled[i] = nil
	}
	h.stalled = nil
	h.stalledUntil = 0
	h.ingress = nil
	h.egress = nil
	h.tap = nil
	if h.gro != nil {
		h.gro.dropAll()
		h.gro = nil
	}
	for _, fn := range h.crashHooks {
		fn()
	}
	h.eng.At(until, h.reboot)
}

func (h *Host) reboot() {
	if !h.isDown || h.eng.Now() < h.downUntil {
		return // superseded by a longer outage
	}
	h.isDown = false
	h.Boots++
}

// Down reports whether the host is currently crashed.
func (h *Host) Down() bool { return h.isDown }

// OnCrash registers fn to run at the instant the host crashes. Hooks fire
// after the host's soft-irq and filter state has been discarded.
func (h *Host) OnCrash(fn func()) { h.crashHooks = append(h.crashHooks, fn) }

// Inject delivers a segment arriving from the wire: NIC fault model, stall
// model, GRO (if enabled), the ingress filter chain on the RSS-selected
// core, then the protocol handler.
func (h *Host) Inject(seg *Segment) {
	checkLive(seg, "Host.Inject")
	if h.isDown {
		h.CrashDrops++
		h.pool.Put(seg)
		return
	}
	if h.NICDropRate > 0 {
		if h.nicRNG == nil {
			h.nicRNG = sim.NewRNG(uint64(h.ID) + 0xD40B)
		}
		if h.nicRNG.Bool(h.NICDropRate) {
			h.NICDrops++
			h.pool.Put(seg)
			return
		}
	}
	if seg.StackArrival == 0 {
		// First entry into this host; flushStall re-injects held segments and
		// must keep their original NIC arrival.
		seg.StackArrival = h.eng.Now()
	}
	if h.eng.Now() < h.stalledUntil {
		h.stalled = append(h.stalled, seg)
		return
	}
	h.RxBytes += int64(seg.Size)
	if h.gro != nil {
		h.gro.offer(seg)
		return
	}
	h.deliver(seg)
}

// Stall freezes soft-irq processing for d: segments arriving meanwhile are
// neither counted nor delivered until the stall ends, then all are processed
// back to back — reproducing the "no data although the NIC is receiving,
// then an apparent burst" artifact of §4.6.
func (h *Host) Stall(d sim.Time) {
	until := h.eng.Now() + d
	if until <= h.stalledUntil {
		return
	}
	h.stalledUntil = until
	h.eng.At(until, h.flushStall)
}

func (h *Host) flushStall() {
	if h.eng.Now() < h.stalledUntil {
		return // superseded by a longer stall
	}
	pending := h.stalled
	h.stalled = nil
	for _, seg := range pending {
		h.Inject(seg)
	}
}

// deliver terminates a segment's path: ingress filters, the protocol
// handler, then release back to the pool. Filters and the handler must not
// retain the segment past their call.
func (h *Host) deliver(seg *Segment) {
	now := h.eng.Now()
	core := h.rssCore(seg)
	for _, f := range h.ingress {
		f.Handle(now, core, Ingress, seg)
	}
	if h.tap != nil {
		span := sim.Time(0)
		if seg.StackArrival > 0 && now > seg.StackArrival {
			span = now - seg.StackArrival
		}
		h.tap.Observe(now, core, Ingress, seg, span)
	}
	if h.handler != nil {
		h.handler(seg)
	}
	h.pool.Put(seg)
}

// Send transmits a segment: egress filter chain, then NIC serialization, then
// the topology forwarder.
func (h *Host) Send(seg *Segment) {
	if h.out == nil {
		panic(fmt.Sprintf("netsim: host %d has no forwarder", h.ID))
	}
	checkLive(seg, "Host.Send")
	if h.isDown {
		h.CrashDrops++
		h.pool.Put(seg)
		return
	}
	h.TxBytes += int64(seg.Size)
	now := h.eng.Now()
	core := h.rssCore(seg)
	for _, f := range h.egress {
		f.Handle(now, core, Egress, seg)
	}
	if h.tap != nil {
		h.tap.Observe(now, core, Egress, seg, h.nic.Backlog())
	}
	h.nic.Send(seg, h.fwd)
}

// NICBacklog reports the committed serialization backlog of the host NIC.
func (h *Host) NICBacklog() sim.Time { return h.nic.Backlog() }

// NIC exposes the host's egress link, e.g. for fault injection in tests.
func (h *Host) NIC() *Link { return h.nic }
