package netsim

// SegmentPool is a per-engine free list of Segments. The simulation engine is
// single-threaded, so the pool needs no synchronization; one pool is shared
// by every component on an engine (hosts, switch, transport), and segments
// may be released into a different pool than they were taken from without
// harm — the free lists just exchange capacity.
//
// Ownership contract (enforced under the `simdebug` build tag, documented in
// DESIGN.md "Segment ownership & pooling invariants"):
//
//   - Get hands out a zeroed segment owned by the caller.
//   - Ownership moves with the segment along the packet path: emitter ->
//     host egress -> link -> switch -> host ingress. Whoever terminates the
//     path (delivers, drops, or absorbs the segment) must Put it exactly
//     once. Retaining a segment past that point is a use-after-free.
//   - Put is a no-op for foreign segments (not created by any pool), so test
//     code may keep injecting stack-constructed segments safely.
type SegmentPool struct {
	free []*Segment

	// Gets, News and Puts count pool traffic: Gets total checkouts, News the
	// subset that had to allocate, Puts returns. Recycle ratio = 1 - News/Gets.
	Gets uint64
	News uint64
	Puts uint64
}

// NewSegmentPool returns an empty pool.
func NewSegmentPool() *SegmentPool { return &SegmentPool{} }

// Get returns a zeroed pool-owned segment.
func (p *SegmentPool) Get() *Segment {
	p.Gets++
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*s = Segment{pooled: true}
		return s
	}
	p.News++
	return &Segment{pooled: true}
}

// Clone returns a pool-owned copy of s's wire fields. The switch-accounting
// field EnqueuedShared is deliberately not copied: a clone has not been
// admitted anywhere yet.
func (p *SegmentPool) Clone(s *Segment) *Segment {
	c := p.Get()
	c.Flow = s.Flow
	c.Group = s.Group
	c.Seq = s.Seq
	c.Ack = s.Ack
	c.Size = s.Size
	c.Flags = s.Flags
	return c
}

// Put releases a segment back to the free list. Foreign (non-pooled)
// segments are ignored so external injectors keep full ownership of what
// they pass in. Releasing the same pooled segment twice panics under the
// simdebug build tag and is ignored otherwise.
func (p *SegmentPool) Put(s *Segment) {
	if s == nil || !s.pooled {
		return
	}
	if s.freed {
		if poolDebug {
			panic("netsim: segment double-free (released twice into a SegmentPool)")
		}
		return
	}
	s.freed = true
	p.Puts++
	p.free = append(p.free, s)
}

// checkLive panics under the simdebug build tag when a freed segment is
// observed on the packet path — a use-after-free of pool memory. The context
// string names the observing path. In release builds the check compiles away.
func checkLive(s *Segment, context string) {
	if poolDebug && s != nil && s.freed {
		panic("netsim: use of freed segment in " + context)
	}
}
