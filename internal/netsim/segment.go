// Package netsim models hosts, NICs, links and the packet path of a data
// center server at segment granularity.
//
// Granularity note (paper §4.6): the production tc hook observes socket
// buffers — up to 64 KB segments before NIC segmentation offload on egress
// and after offloaded reassembly on ingress. We simulate wire segments of at
// most MSS bytes (default 9000, jumbo-frame sized) end to end: the switch
// buffers them, links serialize them, and the tc-style filter hook observes
// them. An optional GRO aggregator (see Host.EnableGRO) coalesces
// back-to-back segments of one flow before the ingress hook to reproduce the
// 64 KB-inflation effect the paper reports at 100 µs sampling.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// HostID identifies a simulated machine. Rack-local servers and remote
// (fabric-side) hosts share one ID space per testbed.
type HostID int32

// GroupID identifies a rack-local multicast group.
type GroupID int32

// FlowKey is the 4-tuple identifying a transport connection. All simulated
// traffic is TCP-like, so no protocol field is needed.
type FlowKey struct {
	Src, Dst         HostID
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction of the same connection.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Hash returns a 64-bit hash of the flow key. It is symmetric-free (direction
// sensitive), matching receive-side scaling, which hashes the tuple as seen
// on the wire.
func (k FlowKey) Hash() uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(uint32(k.Src)))
	mix(uint64(uint32(k.Dst)))
	mix(uint64(k.SrcPort)<<16 | uint64(k.DstPort))
	// Finalize with an avalanche so low bits depend on all input bits; the
	// RSS core index is taken modulo a small core count.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d", k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Flags mark TCP control bits and the Meta-specific retransmit signal.
type Flags uint8

const (
	// FlagSYN marks connection establishment.
	FlagSYN Flags = 1 << iota
	// FlagFIN marks connection teardown.
	FlagFIN
	// FlagACK marks a pure acknowledgement (no payload).
	FlagACK
	// FlagRetx is the unused-IP-header bit Meta's TCP instrumentation sets on
	// the first outgoing packet of a connection after a timeout or fast
	// retransmit (paper §4.2). Millisampler counts bytes of packets carrying
	// it as retransmitted bytes.
	FlagRetx
	// FlagECT marks the packet ECN-capable (sender uses an ECN transport).
	FlagECT
	// FlagCE is the congestion-experienced mark set by a switch whose queue
	// exceeds the ECN threshold.
	FlagCE
	// FlagMulticast routes the packet to a rack-local multicast group rather
	// than a unicast destination.
	FlagMulticast
)

// Segment is one unit of traffic on the simulated wire: headers plus up to
// MSS payload bytes. Segments are passed by pointer along the path; the
// switch may replicate multicast segments.
type Segment struct {
	Flow  FlowKey
	Group GroupID // destination group when FlagMulticast is set
	Seq   int64   // first payload byte's sequence number
	Ack   int64   // cumulative ACK carried by this segment
	Size  int     // total wire bytes, headers included
	Flags Flags

	// EnqueuedShared records how many bytes of this segment were accounted
	// against the shared pool when the switch admitted it; used on dequeue.
	EnqueuedShared int

	// StackArrival is the engine time the segment entered the receiving
	// host's NIC (Host.Inject). The host-stack latency tap (Host.SetStackTap)
	// reads it at socket delivery to measure how long the segment spent
	// inside the host — stall holds and GRO coalescing included. Zero means
	// "not yet stamped"; re-injection after a soft-irq stall preserves the
	// original arrival.
	StackArrival sim.Time

	// pooled marks a segment created by a SegmentPool; only those are
	// recycled on release. freed marks a pooled segment currently sitting in
	// a free list, backing the simdebug double-free/use-after-free checks.
	pooled bool
	freed  bool
}

// Payload returns the payload byte count (wire size minus header overhead).
func (s *Segment) Payload() int {
	p := s.Size - HeaderBytes
	if p < 0 {
		return 0
	}
	return p
}

// Is reports whether all bits in f are set.
func (s *Segment) Is(f Flags) bool { return s.Flags&f == f }

// Wire constants. HeaderBytes approximates Ethernet+IP+TCP framing.
const (
	// HeaderBytes is the fixed per-segment overhead.
	HeaderBytes = 66
	// DefaultMSS is the default maximum payload per wire segment. Meta racks
	// run jumbo frames; 9000-byte units also keep event counts tractable.
	DefaultMSS = 9000
	// GROMaxBytes is the largest coalesced segment the ingress hook can see
	// when GRO aggregation is enabled, per the kernel's 64 KB limit.
	GROMaxBytes = 65536
)
