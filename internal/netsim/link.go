package netsim

import (
	"repro/internal/sim"
)

// Deliver is the continuation a Link invokes when a segment finishes
// traversing it.
type Deliver func(seg *Segment)

// Link is a point-to-point serializing link: segments queue behind each other
// at the line rate and then experience fixed propagation delay. A Link has
// unbounded FIFO occupancy — bounded buffering belongs to the switch model —
// so it is used where the sender already paces (NIC egress) or where the
// paper treats capacity as ample (fabric core).
type Link struct {
	eng       *sim.Engine
	RateBps   int64    // line rate in bits per second; <=0 means infinite
	PropDelay sim.Time // one-way propagation delay

	busyUntil sim.Time
	// TxBytes counts bytes accepted for transmission, for utilization checks.
	TxBytes int64

	// DropRate, when positive, makes the link randomly lose that fraction
	// of segments — used by robustness tests to exercise transport recovery
	// independently of switch buffer dynamics.
	DropRate float64
	dropRNG  *sim.RNG
	// Drops counts segments lost to DropRate.
	Drops int64

	// pool, when set, recycles segments the link drops; a drop terminates the
	// segment's path, so the link owns the release.
	pool *SegmentPool
}

// NewLink creates a link on the engine.
func NewLink(eng *sim.Engine, rateBps int64, prop sim.Time) *Link {
	return &Link{eng: eng, RateBps: rateBps, PropDelay: prop}
}

// SetPool wires the segment pool drops recycle into.
func (l *Link) SetPool(p *SegmentPool) { l.pool = p }

// SerializationDelay returns how long size bytes occupy the link.
func (l *Link) SerializationDelay(size int) sim.Time {
	if l.RateBps <= 0 {
		return 0
	}
	return sim.Time(int64(size) * 8 * int64(sim.Second) / l.RateBps)
}

// Send enqueues seg for transmission and schedules deliver at the time the
// last bit arrives at the far end.
func (l *Link) Send(seg *Segment, deliver Deliver) {
	if l.DropRate > 0 {
		if l.dropRNG == nil {
			l.dropRNG = sim.NewRNG(0x11AC + uint64(l.RateBps))
		}
		if l.dropRNG.Bool(l.DropRate) {
			l.Drops++
			if l.pool != nil {
				l.pool.Put(seg)
			}
			return
		}
	}
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start + l.SerializationDelay(seg.Size)
	l.busyUntil = done
	l.TxBytes += int64(seg.Size)
	l.eng.AtCall(done+l.PropDelay, linkDeliver, seg, deliver, 0)
}

// linkDeliver is the pooled-event continuation of Send: a1 is the segment,
// a2 the Deliver. Both are pointer-shaped, so scheduling it allocates nothing.
func linkDeliver(a1, a2 any, _ int64) { a2.(Deliver)(a1.(*Segment)) }

// Backlog returns how far in the future the link is already committed,
// i.e. the local queueing delay a new segment would see.
func (l *Link) Backlog() sim.Time {
	now := l.eng.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}
