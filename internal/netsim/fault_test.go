package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestStallHoldsAndFlushes(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var deliveredAt []sim.Time
	h.SetProtocolHandler(func(*Segment) { deliveredAt = append(deliveredAt, eng.Now()) })

	h.Stall(10 * sim.Millisecond)
	for i := 0; i < 5; i++ {
		at := sim.Time(i+1) * sim.Millisecond
		eng.At(at, func() { h.Inject(&Segment{Size: 100, Flow: FlowKey{Src: 2, Dst: 1}}) })
	}
	eng.Run()
	if len(deliveredAt) != 5 {
		t.Fatalf("delivered %d of 5 stalled segments", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		if at != 10*sim.Millisecond {
			t.Errorf("stalled segment delivered at %v, want flush at 10ms", at)
		}
	}
}

func TestStallProducesApparentBurst(t *testing.T) {
	// The §4.6 artifact: during a stall the sampler-visible byte stream is
	// silent, then everything lands in one bucket.
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	perMsBytes := map[int64]int{}
	h.SetProtocolHandler(func(s *Segment) {
		perMsBytes[int64(eng.Now()/sim.Millisecond)] += s.Size
	})
	// Steady stream: 1 segment per 250µs.
	for i := 0; i < 40; i++ {
		at := sim.Time(i) * 250 * sim.Microsecond
		eng.At(at, func() { h.Inject(&Segment{Size: 1000, Flow: FlowKey{Src: 2, Dst: 1}}) })
	}
	eng.At(2*sim.Millisecond, func() { h.Stall(5 * sim.Millisecond) })
	eng.Run()
	// Milliseconds 3..6 silent, ms 7 carries the burst.
	for ms := int64(3); ms <= 6; ms++ {
		if perMsBytes[ms] != 0 {
			t.Errorf("ms %d saw %d bytes during stall", ms, perMsBytes[ms])
		}
	}
	if perMsBytes[7] < 5*4*1000 {
		t.Errorf("flush bucket has %d bytes, want the stalled backlog", perMsBytes[7])
	}
}

func TestStallExtendOnly(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	n := 0
	h.SetProtocolHandler(func(*Segment) { n++ })
	h.Stall(10 * sim.Millisecond)
	h.Stall(2 * sim.Millisecond) // shorter: must not shorten the stall
	eng.At(5*sim.Millisecond, func() { h.Inject(&Segment{Size: 10}) })
	eng.RunUntil(8 * sim.Millisecond)
	if n != 0 {
		t.Error("stall was shortened by a later, shorter stall")
	}
	eng.RunUntil(11 * sim.Millisecond)
	if n != 1 {
		t.Error("segment lost after stall")
	}
}

func TestNICDropRate(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	h.NICDropRate = 0.5
	got := 0
	h.SetProtocolHandler(func(*Segment) { got++ })
	const n = 10000
	for i := 0; i < n; i++ {
		h.Inject(&Segment{Size: 100, Flow: FlowKey{Src: 2, Dst: 1, SrcPort: uint16(i)}})
	}
	if h.NICDrops == 0 || got == 0 {
		t.Fatalf("drops=%d delivered=%d", h.NICDrops, got)
	}
	if int64(got)+h.NICDrops != n {
		t.Errorf("conservation: %d + %d != %d", got, h.NICDrops, n)
	}
	frac := float64(h.NICDrops) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("drop fraction %v, want ~0.5", frac)
	}
}

func TestLinkDropRate(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 0, 0)
	l.DropRate = 0.3
	got := 0
	for i := 0; i < 10000; i++ {
		l.Send(&Segment{Size: 100}, func(*Segment) { got++ })
	}
	eng.Run()
	if got+int(l.Drops) != 10000 {
		t.Errorf("conservation: %d + %d", got, l.Drops)
	}
	frac := float64(l.Drops) / 10000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("drop fraction %v, want ~0.3", frac)
	}
}

func TestCrashDropsTrafficAndReboots(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	h.SetForwarder(ForwarderFunc(func(*Segment) {}))
	got := 0
	h.SetProtocolHandler(func(*Segment) { got++ })

	// 1 segment per ms for 30 ms; crash at 10 ms for 10 ms.
	for i := 0; i < 30; i++ {
		at := sim.Time(i) * sim.Millisecond
		eng.At(at, func() { h.Inject(&Segment{Size: 100, Flow: FlowKey{Src: 2, Dst: 1}}) })
	}
	eng.At(10*sim.Millisecond, func() { h.Crash(10 * sim.Millisecond) })
	eng.Run()

	if h.Down() {
		t.Fatal("host still down after outage elapsed")
	}
	if h.Boots != 1 {
		t.Errorf("Boots = %d, want 1", h.Boots)
	}
	// Segments at 10..19 ms dropped (crash instant inclusive), rest delivered.
	if got != 20 {
		t.Errorf("delivered %d segments, want 20", got)
	}
	if h.CrashDrops != 10 {
		t.Errorf("CrashDrops = %d, want 10", h.CrashDrops)
	}
}

func TestCrashLosesStalledSegmentsAndFilters(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	h.SetForwarder(ForwarderFunc(func(*Segment) {}))
	calls := 0
	h.AttachIngress(filterFunc(func(sim.Time, int, Direction, *Segment) { calls++ }))

	h.Stall(20 * sim.Millisecond)
	eng.At(sim.Millisecond, func() { h.Inject(&Segment{Size: 100, Flow: FlowKey{Src: 2, Dst: 1}}) })
	hooked := false
	h.OnCrash(func() { hooked = true })
	eng.At(5*sim.Millisecond, func() { h.Crash(2 * sim.Millisecond) })
	// After reboot, traffic flows again but the filter chain is gone.
	eng.At(30*sim.Millisecond, func() { h.Inject(&Segment{Size: 100, Flow: FlowKey{Src: 2, Dst: 1}}) })
	eng.Run()

	if !hooked {
		t.Error("crash hook did not fire")
	}
	if calls != 0 {
		t.Errorf("filter ran %d times; stalled segment should be lost and chains cleared", calls)
	}
	if h.CrashDrops != 1 {
		t.Errorf("CrashDrops = %d, want 1 (the stalled segment)", h.CrashDrops)
	}
	if h.RxBytes != 100 {
		t.Errorf("RxBytes = %d, want only the post-reboot segment counted", h.RxBytes)
	}
}

func TestCrashExtendOnly(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	eng.At(0, func() { h.Crash(10 * sim.Millisecond) })
	eng.At(1*sim.Millisecond, func() { h.Crash(2 * sim.Millisecond) }) // shorter: no-op
	eng.At(2*sim.Millisecond, func() { h.Crash(20 * sim.Millisecond) })
	eng.RunUntil(15 * sim.Millisecond)
	if !h.Down() {
		t.Fatal("outage was shortened by an overlapping crash")
	}
	eng.RunUntil(23 * sim.Millisecond)
	if h.Down() {
		t.Fatal("host never rebooted")
	}
	if h.Boots != 1 {
		t.Errorf("Boots = %d, want 1 (overlapping crashes are one outage)", h.Boots)
	}
}
