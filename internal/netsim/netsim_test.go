package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 200 || r.DstPort != 100 {
		t.Errorf("Reverse() = %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse is not identity")
	}
}

func TestFlowKeyHashSpread(t *testing.T) {
	seen := make(map[uint64]bool)
	for src := HostID(0); src < 16; src++ {
		for port := uint16(0); port < 64; port++ {
			h := FlowKey{Src: src, Dst: 99, SrcPort: port, DstPort: 443}.Hash()
			seen[h] = true
		}
	}
	if len(seen) != 16*64 {
		t.Errorf("hash collisions: %d unique of %d", len(seen), 16*64)
	}
}

func TestSegmentPayload(t *testing.T) {
	s := &Segment{Size: HeaderBytes + 1000}
	if s.Payload() != 1000 {
		t.Errorf("Payload() = %d", s.Payload())
	}
	ack := &Segment{Size: HeaderBytes, Flags: FlagACK}
	if ack.Payload() != 0 {
		t.Errorf("ACK Payload() = %d", ack.Payload())
	}
	tiny := &Segment{Size: 10}
	if tiny.Payload() != 0 {
		t.Errorf("undersized Payload() = %d", tiny.Payload())
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	// 8 Gbps: 1000 bytes = 8000 bits take 1 µs.
	l := NewLink(eng, 8_000_000_000, 10*sim.Microsecond)
	var arrived []sim.Time
	for i := 0; i < 3; i++ {
		l.Send(&Segment{Size: 1000}, func(*Segment) { arrived = append(arrived, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{11 * sim.Microsecond, 12 * sim.Microsecond, 13 * sim.Microsecond}
	for i, w := range want {
		if arrived[i] != w {
			t.Errorf("segment %d arrived at %v, want %v", i, arrived[i], w)
		}
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 0, sim.Microsecond)
	var at sim.Time
	l.Send(&Segment{Size: 1 << 20}, func(*Segment) { at = eng.Now() })
	eng.Run()
	if at != sim.Microsecond {
		t.Errorf("infinite-rate link delivered at %v, want prop delay only", at)
	}
}

func TestLinkBacklog(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 8_000_000_000, 0)
	if l.Backlog() != 0 {
		t.Error("idle link has backlog")
	}
	l.Send(&Segment{Size: 1000}, func(*Segment) {})
	if l.Backlog() != sim.Microsecond {
		t.Errorf("Backlog() = %v, want 1µs", l.Backlog())
	}
}

func TestHostFilterAndHandlerOrder(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var calls []string
	h.AttachIngress(filterFunc(func(sim.Time, int, Direction, *Segment) { calls = append(calls, "filter") }))
	h.SetProtocolHandler(func(*Segment) { calls = append(calls, "handler") })
	h.Inject(&Segment{Size: 100})
	if len(calls) != 2 || calls[0] != "filter" || calls[1] != "handler" {
		t.Errorf("call order = %v", calls)
	}
}

func TestHostDetachStopsFilter(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	count := 0
	f := &countingFilter{n: &count}
	h.AttachIngress(f)
	h.Inject(&Segment{Size: 100})
	h.DetachIngress(f)
	h.Inject(&Segment{Size: 100})
	if count != 1 {
		t.Errorf("filter ran %d times, want 1", count)
	}
}

func TestHostRSSStableAndBounded(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1, Cores: 4})
	f := func(src uint16, dst uint16) bool {
		seg := &Segment{Flow: FlowKey{Src: 5, Dst: 1, SrcPort: src, DstPort: dst}}
		c1 := h.rssCore(seg)
		c2 := h.rssCore(seg)
		return c1 == c2 && c1 >= 0 && c1 < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostRSSUsesAllCores(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1, Cores: 4})
	cores := make(map[int]bool)
	for p := uint16(0); p < 256; p++ {
		cores[h.rssCore(&Segment{Flow: FlowKey{Src: 2, Dst: 1, SrcPort: p, DstPort: 80}})] = true
	}
	if len(cores) != 4 {
		t.Errorf("RSS used %d of 4 cores", len(cores))
	}
}

func TestHostSendThroughNIC(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1, LinkRateBps: 8_000_000_000})
	var got *Segment
	h.SetForwarder(ForwarderFunc(func(s *Segment) { got = s }))
	sent := &Segment{Size: 1000, Flow: FlowKey{Src: 1, Dst: 2}}
	h.Send(sent)
	eng.Run()
	if got != sent {
		t.Fatal("forwarder did not receive the segment")
	}
	if eng.Now() != sim.Microsecond {
		t.Errorf("delivery at %v, want 1µs serialization", eng.Now())
	}
	if h.TxBytes != 1000 {
		t.Errorf("TxBytes = %d", h.TxBytes)
	}
}

func TestHostSendWithoutForwarderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Send without forwarder did not panic")
		}
	}()
	eng := sim.NewEngine()
	NewHost(eng, HostConfig{ID: 1}).Send(&Segment{Size: 10})
}

type filterFunc func(now sim.Time, core int, dir Direction, seg *Segment)

func (f filterFunc) Handle(now sim.Time, core int, dir Direction, seg *Segment) {
	f(now, core, dir, seg)
}

type countingFilter struct{ n *int }

func (c *countingFilter) Handle(sim.Time, int, Direction, *Segment) { *c.n++ }

func TestGROMergesInOrderSegments(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var delivered []*Segment
	h.SetProtocolHandler(func(s *Segment) { delivered = append(delivered, s) })
	h.EnableGRO(20 * sim.Microsecond)

	flow := FlowKey{Src: 2, Dst: 1, SrcPort: 9, DstPort: 80}
	seq := int64(0)
	for i := 0; i < 3; i++ {
		h.Inject(&Segment{Flow: flow, Seq: seq, Size: HeaderBytes + 1000})
		seq += 1000
	}
	eng.Run() // fires the flush timer
	if len(delivered) != 1 {
		t.Fatalf("delivered %d segments, want 1 merged", len(delivered))
	}
	if got := delivered[0].Payload(); got != 3000 {
		t.Errorf("merged payload = %d, want 3000", got)
	}
}

func TestGROFlushesAtMax(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var delivered []*Segment
	h.SetProtocolHandler(func(s *Segment) { delivered = append(delivered, s) })
	h.EnableGRO(sim.Second) // timer effectively never fires

	flow := FlowKey{Src: 2, Dst: 1, SrcPort: 9, DstPort: 80}
	seq := int64(0)
	total := 0
	for total < 2*GROMaxBytes {
		pl := DefaultMSS
		h.Inject(&Segment{Flow: flow, Seq: seq, Size: HeaderBytes + pl})
		seq += int64(pl)
		total += HeaderBytes + pl
	}
	if len(delivered) == 0 {
		t.Fatal("GRO never flushed despite exceeding max size")
	}
	for _, s := range delivered {
		if s.Size > GROMaxBytes {
			t.Errorf("merged segment %d bytes exceeds GRO max", s.Size)
		}
	}
}

func TestGRODoesNotMergeRetxOrControl(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var delivered []*Segment
	h.SetProtocolHandler(func(s *Segment) { delivered = append(delivered, s) })
	h.EnableGRO(10 * sim.Microsecond)

	flow := FlowKey{Src: 2, Dst: 1, SrcPort: 9, DstPort: 80}
	h.Inject(&Segment{Flow: flow, Seq: 0, Size: HeaderBytes + 500})
	h.Inject(&Segment{Flow: flow, Seq: 500, Size: HeaderBytes + 500, Flags: FlagRetx})
	eng.Run()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d segments, want 2 (retx must not merge)", len(delivered))
	}
	var sawRetx bool
	for _, s := range delivered {
		if s.Is(FlagRetx) {
			sawRetx = true
			if s.Payload() != 500 {
				t.Errorf("retx segment payload = %d, want 500", s.Payload())
			}
		}
	}
	if !sawRetx {
		t.Error("retransmit flag lost through GRO")
	}
}

func TestGROPreservesTotalBytes(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		h := NewHost(eng, HostConfig{ID: 1})
		var gotPayload int64
		h.SetProtocolHandler(func(s *Segment) { gotPayload += int64(s.Payload()) })
		h.EnableGRO(5 * sim.Microsecond)
		flow := FlowKey{Src: 2, Dst: 1, SrcPort: 9, DstPort: 80}
		var want int64
		seq := int64(0)
		for _, raw := range sizes {
			pl := int(raw%uint16(DefaultMSS)) + 1
			h.Inject(&Segment{Flow: flow, Seq: seq, Size: HeaderBytes + pl})
			seq += int64(pl)
			want += int64(pl)
		}
		eng.Run()
		return gotPayload == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGROFlushOnOutOfOrder(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, HostConfig{ID: 1})
	var delivered []*Segment
	h.SetProtocolHandler(func(s *Segment) { delivered = append(delivered, s) })
	h.EnableGRO(10 * sim.Microsecond)

	flow := FlowKey{Src: 2, Dst: 1, SrcPort: 9, DstPort: 80}
	h.Inject(&Segment{Flow: flow, Seq: 0, Size: HeaderBytes + 500})
	h.Inject(&Segment{Flow: flow, Seq: 9000, Size: HeaderBytes + 500}) // gap
	eng.Run()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d, want 2 separate segments for a sequence gap", len(delivered))
	}
}
