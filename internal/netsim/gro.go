package netsim

import "repro/internal/sim"

// groState models receive-side segment coalescing (GRO/LRO). When enabled,
// in-order same-flow data segments arriving back to back are merged into one
// large segment (up to GROMaxBytes) before the ingress hook sees them. Total
// byte counts are unchanged, but all bytes of a merged segment are credited
// to the instant the merge flushes — which is exactly the mechanism behind
// the paper's observation (§4.6) that 100 µs sampling shows apparent rates
// above line speed.
type groState struct {
	host       *Host
	flushAfter sim.Time
	pending    map[FlowKey]*groEntry
}

type groEntry struct {
	seg   *Segment
	timer *sim.Event
}

// EnableGRO turns on receive coalescing with the given hold time (how long a
// partially filled merge waits for the next segment before flushing). A hold
// time of ~2× the MSS serialization delay is realistic.
func (h *Host) EnableGRO(flushAfter sim.Time) {
	h.gro = &groState{host: h, flushAfter: flushAfter, pending: make(map[FlowKey]*groEntry)}
}

// DisableGRO flushes and removes the aggregator.
func (h *Host) DisableGRO() {
	if h.gro == nil {
		return
	}
	h.gro.flushAll()
	h.gro = nil
}

// mergeable reports whether nxt can be appended to cur.
func mergeable(cur, nxt *Segment) bool {
	if cur.Flow != nxt.Flow {
		return false
	}
	// Only plain data segments merge; control flags and the retransmit
	// signal must be visible individually.
	const blocking = FlagSYN | FlagFIN | FlagRetx | FlagMulticast
	if cur.Flags&blocking != 0 || nxt.Flags&blocking != 0 {
		return false
	}
	if nxt.Payload() == 0 || cur.Payload() == 0 {
		return false
	}
	// In-order contiguity.
	if cur.Seq+int64(cur.Payload()) != nxt.Seq {
		return false
	}
	return cur.Size+nxt.Payload() <= GROMaxBytes
}

func (g *groState) offer(seg *Segment) {
	e, ok := g.pending[seg.Flow]
	if ok {
		if mergeable(e.seg, seg) {
			e.seg.Size += seg.Payload()
			e.seg.Ack = seg.Ack
			e.seg.Flags |= seg.Flags & FlagCE // CE propagates into the merge
			// The absorbed segment's path ends here; the merge carries its
			// bytes onward.
			g.host.pool.Put(seg)
			if e.seg.Size >= GROMaxBytes {
				g.flush(seg.Flow)
			}
			return
		}
		// Not mergeable: flush what we hold, then consider the newcomer.
		g.flush(seg.Flow)
	}
	if seg.Payload() == 0 || seg.Flags&(FlagSYN|FlagFIN|FlagRetx|FlagMulticast) != 0 {
		g.host.deliver(seg)
		return
	}
	entry := &groEntry{seg: seg}
	flow := seg.Flow
	entry.timer = g.host.eng.After(g.flushAfter, func() { g.flush(flow) })
	g.pending[flow] = entry
}

func (g *groState) flush(flow FlowKey) {
	e, ok := g.pending[flow]
	if !ok {
		return
	}
	delete(g.pending, flow)
	g.host.eng.Cancel(e.timer)
	g.host.deliver(e.seg)
}

func (g *groState) flushAll() {
	for flow := range g.pending {
		g.flush(flow)
	}
}

// dropAll discards everything held by the aggregator without delivering —
// the host crashed, so the merged bytes are lost and the segments recycle.
func (g *groState) dropAll() {
	for flow, e := range g.pending {
		delete(g.pending, flow)
		g.host.eng.Cancel(e.timer)
		g.host.pool.Put(e.seg)
	}
}
