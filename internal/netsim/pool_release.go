//go:build !simdebug

package netsim

// poolDebug is off in release builds; see pool_debug.go.
const poolDebug = false
