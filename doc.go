// Package repro is a from-scratch reproduction of "A Microscopic View of
// Bursts, Buffer Contention, and Loss in Data Centers" (Ghabashneh et al.,
// IMC 2022): Millisampler, SyncMillisampler, and the full simulated
// data-center substrate needed to regenerate every table and figure of the
// paper's evaluation.
//
// The library is organized bottom-up:
//
//   - internal/sim        — deterministic discrete-event engine and RNG
//   - internal/clock      — NTP-disciplined host clock model
//   - internal/netsim     — segments, links, NICs, multi-core hosts, tc hooks
//   - internal/switchsim  — shared-memory ToR with dynamic-threshold sharing
//   - internal/transport  — DCTCP / Cubic / Reno with loss recovery
//   - internal/sketch     — 128-bit connection-counting sketch
//   - internal/testbed    — rack topology assembly
//   - internal/core       — Millisampler and SyncMillisampler (the paper's
//     contribution)
//   - internal/analysis   — bursts, contention, loss attribution
//   - internal/workload   — service traffic profiles and validation tools
//   - internal/fleet      — two-region placement, diurnal schedule, datasets
//   - internal/experiments— one generator per paper table/figure
//   - internal/trace      — compressed dataset and run storage
//
// The benchmarks in bench_test.go regenerate each experiment (see DESIGN.md
// for the index) and reproduce the §4.3 performance microbenchmarks.
package repro
