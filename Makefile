GO ?= go

.PHONY: build test check vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the verification gate: build (release and simdebug) + vet +
# race-enabled tests.
check:
	./scripts/check.sh

# bench runs the benchmark regression gate and refreshes BENCH_PR2.json.
bench:
	./scripts/bench.sh
