GO ?= go

.PHONY: build test check vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the verification gate: build + vet + race-enabled tests.
check:
	./scripts/check.sh
