GO ?= go

.PHONY: build test check vet race bench distrib-smoke queryd-smoke hoststack-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the verification gate: build (release and simdebug) + vet +
# race-enabled tests.
check:
	./scripts/check.sh

# bench runs the benchmark regression gate and refreshes BENCH.json.
bench:
	./scripts/bench.sh

# distrib-smoke runs the coordinator + 2 workers end-to-end kill test:
# real binaries, real HTTP, one worker SIGKILLed mid-run, digest compared
# against a single-process golden.
distrib-smoke:
	./scripts/distrib_smoke.sh

# queryd-smoke runs the read-side query service end-to-end: real binaries,
# real HTTP; catalog, streaming NDJSON, cached renders (hit + byte-identity
# vs the local CLI), ETag revalidation, client mode, graceful drain.
queryd-smoke:
	./scripts/queryd_smoke.sh

# hoststack-smoke proves the host-stack instrument at the shell level:
# instrumented generation digest-stable across an interrupted resume,
# dsinspect surfacing, and refusal to mix instrumented and uninstrumented
# shards in one dataset.
hoststack-smoke:
	./scripts/hoststack_smoke.sh
