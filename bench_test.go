package repro

// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact from a cached fleet dataset), the §4.3 performance
// microbenchmarks, and ablations for the design choices called out in
// DESIGN.md.
//
// The dataset preset is selected with REPRO_BENCH_PRESET=small|default
// (default small, so `go test -bench .` completes in minutes; use `default`
// for the full-size regeneration reported in EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/sweep"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/transport"
	"repro/internal/workload"
)

var (
	dsOnce sync.Once
	dsVal  *fleet.Dataset
	dsErr  error
)

func benchDataset(b *testing.B) *fleet.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		cfg := fleet.SmallConfig()
		if os.Getenv("REPRO_BENCH_PRESET") == "default" {
			cfg = fleet.DefaultConfig()
		}
		dsVal, dsErr = fleet.Generate(cfg)
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal
}

// benchExperiment regenerates one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, ds)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// ---- one benchmark per table and figure ----

func BenchmarkFig01QueueShare(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig03MulticastSync(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig04BurstIdent(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig05DeepDive(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkTable1Dataset(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkFig06BurstFreq(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig07BurstLen(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig08Connections(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig09ContentionCDF(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10TaskDiversity(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11DominantTask(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12DailyVariation(b *testing.B) {
	benchExperiment(b, "fig12")
}
func BenchmarkFig13Diurnal(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14VolumeCorr(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15RunVariation(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkTable2BurstClasses(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkFig16ContentionLoss(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Discards(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18LengthLoss(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig19IncastLoss(b *testing.B)     { benchExperiment(b, "fig19") }

// BenchmarkSweepSmoke runs a complete 2-point what-if sweep (baseline vs
// complete-sharing over a 2-rack fleet) per iteration — the counterfactual
// engine's end-to-end cost, gated alongside the figure regenerations.
func BenchmarkSweepSmoke(b *testing.B) {
	spec := sweep.Spec{
		Name: "bench-smoke",
		Fleet: fleet.Config{
			Seed:           2022,
			RacksPerRegion: 1,
			ServersPerRack: 12,
			Hours:          []int{6},
			Buckets:        200,
		},
		Policies: []switchsim.Policy{switchsim.PolicyComplete},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "sweep-*")
		if err != nil {
			b.Fatal(err)
		}
		res, err := sweep.Run(context.Background(), dir, spec, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 2 {
			b.Fatalf("sweep produced %d points, want 2", len(res.Points))
		}
	}
}

// benchGenerate measures one full dataset generation per iteration at the
// given fidelity, on the bench preset with a pinned worker count so the
// number is comparable across machines.
func benchGenerate(b *testing.B, fid fleet.Fidelity) {
	cfg := fleet.SmallConfig()
	if os.Getenv("REPRO_BENCH_PRESET") == "default" {
		cfg = fleet.DefaultConfig()
	}
	cfg.Workers = 2
	cfg.KeepExamples = false
	cfg.Fidelity = fid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := fleet.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Runs) == 0 {
			b.Fatal("generation produced no runs")
		}
	}
}

// BenchmarkGenerateFull is the legacy segment-engine generation — the
// denominator of the hybrid speedup recorded in BENCH.json.
func BenchmarkGenerateFull(b *testing.B) { benchGenerate(b, fleet.FidelityFull) }

// BenchmarkGenerateHybrid is the hybrid-fidelity generation; the acceptance
// gate requires it >= 3x faster than BenchmarkGenerateFull on the small
// preset.
func BenchmarkGenerateHybrid(b *testing.B) { benchGenerate(b, fleet.FidelityHybrid) }

// ---- §4.3 performance microbenchmarks ----

// benchHost builds a bare host + sampler for hot-path measurement.
func benchHost(cfg core.Config) (*netsim.Host, *core.Sampler, []*netsim.Segment) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, netsim.HostConfig{ID: 1, Cores: 4})
	h.SetForwarder(netsim.ForwarderFunc(func(*netsim.Segment) {}))
	s := core.NewSampler(h, cfg)
	segs := make([]*netsim.Segment, 64)
	for i := range segs {
		segs[i] = &netsim.Segment{
			Flow: netsim.FlowKey{Src: 7, Dst: 1, SrcPort: uint16(i), DstPort: 80},
			Size: 1500,
		}
		if i%5 == 0 {
			segs[i].Flags |= netsim.FlagCE
		}
		if i%17 == 0 {
			segs[i].Flags |= netsim.FlagRetx
		}
	}
	return h, s, segs
}

// BenchmarkSamplerPerPacket measures the enabled hot path with all features
// (the paper measures 88 ns on a 1.6 GHz Skylake).
func BenchmarkSamplerPerPacket(b *testing.B) {
	_, s, segs := benchHost(core.DefaultConfig())
	s.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Handle(0, i&3, netsim.Ingress, segs[i&63])
	}
}

// BenchmarkSamplerPerPacketNoFlows omits the connection sketch (84 ns in the
// paper).
func BenchmarkSamplerPerPacketNoFlows(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.CountFlows = false
	_, s, segs := benchHost(cfg)
	s.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Handle(0, i&3, netsim.Ingress, segs[i&63])
	}
}

// BenchmarkSamplerDisabled measures the installed-but-disabled fast path
// (7 ns in the paper).
func BenchmarkSamplerDisabled(b *testing.B) {
	_, s, segs := benchHost(core.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Handle(0, i&3, netsim.Ingress, segs[i&63])
	}
}

// BenchmarkSamplerRead measures harvesting the counter maps (a fixed 4.3 ms
// in the paper, independent of traffic).
func BenchmarkSamplerRead(b *testing.B) {
	_, s, segs := benchHost(core.DefaultConfig())
	s.Enable()
	for i := 0; i < 10000; i++ {
		s.Handle(0, i&3, netsim.Ingress, segs[i&63])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Read()
	}
}

// BenchmarkPcapLikeBaseline measures the tcpdump-style per-packet cost the
// paper compares against (271 ns of CPU per packet in their measurement).
func BenchmarkPcapLikeBaseline(b *testing.B) {
	p := core.NewPcapLike(100, 4096)
	seg := &netsim.Segment{
		Flow: netsim.FlowKey{Src: 7, Dst: 1, SrcPort: 9, DstPort: 80},
		Size: 1500,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Handle(sim.Time(i), 0, netsim.Ingress, seg)
		if p.Captured&4095 == 0 {
			p.Drain()
		}
	}
}

// ---- ablations ----

// ablationRack runs a fixed incast-heavy workload against a configurable
// switch for a fixed span and returns (discards, enqueued).
func ablationRack(swCfg switchsim.Config) (int64, int64) {
	rack := testbed.NewRack(testbed.RackConfig{
		Servers: swCfg.Ports,
		Seed:    777,
		Switch:  swCfg,
	})
	rng := rack.RNG.Fork(9)
	for s := 0; s < swCfg.Ports; s++ {
		p := workload.Cache
		if s%2 == 1 {
			p = workload.Web
		}
		workload.Install(rack, s, p, rng.Fork(uint64(s)))
	}
	rack.Eng.RunUntil(400 * sim.Millisecond)
	t := rack.Switch.Totals()
	return t.DiscardSegments, t.EnqueuedSegments
}

// BenchmarkAblationAlpha sweeps the DT parameter and reports the loss rate,
// quantifying the §9 buffer-sharing implication.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			var lossPPM float64
			for i := 0; i < b.N; i++ {
				cfg := switchsim.DefaultConfig(16)
				cfg.Alpha = alpha
				d, e := ablationRack(cfg)
				lossPPM = 1e6 * float64(d) / float64(e+1)
			}
			b.ReportMetric(lossPPM, "loss_ppm")
		})
	}
}

// BenchmarkAblationECNThreshold sweeps the static marking threshold.
func BenchmarkAblationECNThreshold(b *testing.B) {
	for _, kb := range []int{30, 120, 480} {
		b.Run(fmt.Sprintf("thresh=%dKB", kb), func(b *testing.B) {
			var lossPPM float64
			for i := 0; i < b.N; i++ {
				cfg := switchsim.DefaultConfig(16)
				cfg.ECNThreshold = kb << 10
				d, e := ablationRack(cfg)
				lossPPM = 1e6 * float64(d) / float64(e+1)
			}
			b.ReportMetric(lossPPM, "loss_ppm")
		})
	}
}

// BenchmarkAblationSharingPolicy compares the production dynamic-threshold
// policy against the static-partition and complete-sharing bounds of the
// design space (§9 / related-work discussion).
func BenchmarkAblationSharingPolicy(b *testing.B) {
	for _, pol := range []switchsim.Policy{
		switchsim.PolicyDT, switchsim.PolicyStatic, switchsim.PolicyComplete,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			var lossPPM float64
			for i := 0; i < b.N; i++ {
				cfg := switchsim.DefaultConfig(16)
				cfg.Policy = pol
				d, e := ablationRack(cfg)
				lossPPM = 1e6 * float64(d) / float64(e+1)
			}
			b.ReportMetric(lossPPM, "loss_ppm")
		})
	}
}

// BenchmarkAblationSketchSize sweeps the bitmap width and reports the mean
// relative estimation error at 60 concurrent flows.
func BenchmarkAblationSketchSize(b *testing.B) {
	for _, bits := range []int{64, 128, 256, 1024} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			rng := sim.NewRNG(42)
			const n = 60
			var relErr float64
			for i := 0; i < b.N; i++ {
				v := sketch.NewVar(bits)
				for j := 0; j < n; j++ {
					v.Insert(rng.Uint64())
				}
				relErr += math.Abs(v.Estimate()-n) / n
			}
			b.ReportMetric(relErr/float64(b.N), "rel_err")
		})
	}
}

// BenchmarkAblationInterval compares sampling intervals on a GRO-enabled
// host, reproducing the §4.6 observation that 100 µs buckets can show rates
// above line speed because a coalesced 64 KB segment is credited to one
// bucket.
func BenchmarkAblationInterval(b *testing.B) {
	intervals := []struct {
		name string
		d    sim.Time
	}{
		{"100us", 100 * sim.Microsecond},
		{"1ms", sim.Millisecond},
		{"10ms", 10 * sim.Millisecond},
	}
	for _, iv := range intervals {
		b.Run(iv.name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				peak = peakUtilizationAt(iv.d)
			}
			b.ReportMetric(peak, "peak_util")
		})
	}
}

// peakUtilizationAt runs one bulk transfer against a GRO-enabled receiver
// sampled at the given interval and returns the maximum per-bucket
// utilization observed. With 64 KB coalescing, sub-millisecond buckets can
// exceed 1.0.
func peakUtilizationAt(interval sim.Time) float64 {
	rack := testbed.NewRack(testbed.RackConfig{Servers: 2, Seed: 5})
	rack.Servers[0].EnableGRO(20 * sim.Microsecond)
	s := core.NewSampler(rack.Servers[0], core.Config{Interval: interval, Buckets: 2000})
	s.Attach()
	s.Enable()
	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	c.Send(16 << 20)
	rack.Eng.RunUntil(200 * sim.Millisecond)
	run := s.Read()
	peak := 0.0
	for i := 0; i < run.Buckets; i++ {
		if u := run.Utilization(i); u > peak {
			peak = u
		}
	}
	return peak
}

// BenchmarkAblationSharedCounter quantifies the cost the per-CPU counter
// design avoids: concurrent writers incrementing one shared atomic array
// versus per-CPU arrays merged at read time.
func BenchmarkAblationSharedCounter(b *testing.B) {
	const buckets = 2000
	// Packets processed in the same sampling interval land in the SAME
	// bucket on every CPU — that is where cross-CPU contention concentrates.
	// Model it by advancing the bucket index slowly, so concurrent writers
	// mostly collide on one cache line in the shared design.
	b.Run("shared-atomic", func(b *testing.B) {
		var counters [buckets]atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				counters[(i>>12)%buckets].Add(1500)
				i++
			}
		})
	})
	b.Run("per-cpu", func(b *testing.B) {
		type pad struct {
			counters [buckets]uint64
			_        [64]byte
		}
		var perCPU [16]pad
		var next atomic.Int32
		b.RunParallel(func(pb *testing.PB) {
			me := int(next.Add(1)) & 15
			cpu := &perCPU[me]
			i := 0
			for pb.Next() {
				cpu.counters[(i>>12)%buckets] += 1500
				i++
			}
		})
	})
}
