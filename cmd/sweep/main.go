// Command sweep executes a what-if sweep: it re-runs the simulated fleet's
// rack-hours under a grid of counterfactual ToR configurations (sharing
// policy × DT alpha × ECN threshold × buffer sizing) and reports every
// point's loss, ECN, burst, and peak-occupancy movement against the measured
// baseline (dynamic thresholds, alpha 1) — the paper's §9 question asked of
// the simulation.
//
// The result directory is resumable in the style of cmd/fleetgen: every
// point commits atomically with a digest, so a killed sweep re-invoked with
// the same spec verifies completed points and computes only the remainder,
// ending at a byte-identical result. A different spec or seed over the same
// directory is refused.
//
// Usage:
//
//	sweep -preset smoke -o sweep.out            # 4-point sanity sweep
//	sweep -preset demo -o sweep.out -md W.md    # 26-point policy/alpha/ECN grid
//	sweep -spec my.json -o sweep.out            # declarative spec (JSON)
//	sweep -spec my.json -o sweep.out -plan      # print the grid, run nothing
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/fleet"
	"repro/internal/fsutil"
	"repro/internal/prof"
	"repro/internal/sweep"
	"repro/internal/switchsim"
)

func main() {
	specPath := flag.String("spec", "", "sweep spec JSON (see -preset for built-ins)")
	preset := flag.String("preset", "", "built-in spec: smoke (4 points) or demo (26 points)")
	out := flag.String("o", "sweep.out", "result directory (resumable)")
	workers := flag.Int("workers", 0, "override simulation parallelism")
	maxPoints := flag.Int("max-points", 0, "stop after N new points (installment execution)")
	plan := flag.Bool("plan", false, "print the expanded point grid and exit")
	md := flag.String("md", "", "also write the report as markdown to this file")
	distributed := flag.String("distributed", "", "coordinator URL: submit the sweep as a distributed job instead of running locally")
	fidelity := flag.String("fidelity", "", "simulation fidelity: full (default, byte-exact) or hybrid (fluid fast path)")
	profFlags := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	profSession, err := profFlags.Start()
	if err != nil {
		fail(err)
	}
	defer profSession.Stop()

	spec, err := resolveSpec(*specPath, *preset)
	if err != nil {
		fail(err)
	}
	if *fidelity != "" {
		fid, err := fleet.ParseFidelity(*fidelity)
		if err != nil {
			fail(err)
		}
		spec.Fleet.Fidelity = fid
	}
	pts, err := spec.Expand()
	if err != nil {
		fail(err)
	}
	if *plan {
		fmt.Printf("%s: %d points over %d racks/region x %d servers x %d hours, seed %d\n",
			name(spec), len(pts), spec.Fleet.WithDefaults().RacksPerRegion,
			spec.Fleet.WithDefaults().ServersPerRack, len(spec.Fleet.WithDefaults().Hours), spec.Fleet.Seed)
		for _, p := range pts {
			fmt.Printf("  %3d  %s\n", p.Index, p.Label)
		}
		return
	}

	start := time.Now()
	doneAtStart := 0
	if sweep.IsDir(*out) {
		if st, err := sweep.Create(*out, spec); err == nil {
			done, total := st.Progress()
			doneAtStart = done
			if done > 0 {
				fmt.Fprintf(os.Stderr, "sweep: resuming %s: %d/%d points already committed\n", *out, done, total)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %s: %d points, %d rack-hours each\n",
		name(spec), len(pts),
		2*spec.Fleet.WithDefaults().RacksPerRegion*len(spec.Fleet.WithDefaults().Hours))

	progress := func(p sweep.Progress) {
		elapsed := time.Since(start)
		eta := "-"
		if fresh := p.Done - doneAtStart; fresh > 0 && p.Done < p.Total {
			remaining := time.Duration(float64(elapsed) / float64(fresh) * float64(p.Total-p.Done))
			eta = remaining.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "sweep: point %d (%s) done — %d/%d, eta %s\n",
			p.Index, p.Label, p.Done, p.Total, eta)
	}
	// Ctrl-C / SIGTERM abort cleanly between rack-hours: committed points
	// stay, no temp files leak, and re-running the same spec resumes.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var res *sweep.Result
	if *distributed != "" {
		res, err = runDistributed(ctx, *distributed, *out, spec)
	} else {
		res, err = sweep.Run(ctx, *out, spec, sweep.Options{
			Workers: *workers, MaxPoints: *maxPoints, Progress: progress,
		})
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "sweep: interrupted; committed points kept, re-run the same spec to resume")
			os.Exit(1)
		case errors.Is(err, sweep.ErrIncomplete):
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return
		case errors.Is(err, sweep.ErrSpecMismatch):
			fmt.Fprintln(os.Stderr, "sweep:", err)
			fmt.Fprintln(os.Stderr, "sweep: use a fresh -o directory for a different spec or seed")
		default:
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
		os.Exit(1)
	}

	results := sweep.Report(res)
	for _, r := range results {
		r.Render(os.Stdout)
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fail(err)
		}
		for _, r := range results {
			r.RenderMarkdown(f)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote markdown to %s\n", *md)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d points -> %s in %v (result digest %s)\n",
		len(res.Points), *out, time.Since(start).Round(time.Second), res.Manifest.ResultDigest)
}

// runDistributed submits the sweep to a coordinator, polls until complete,
// and opens the result directory locally for the usual report path. The
// directory must be visible to this process (same machine or shared storage).
func runDistributed(ctx context.Context, coordURL, dir string, spec sweep.Spec) (*sweep.Result, error) {
	c := &distrib.Client{BaseURL: coordURL, Worker: "sweep-submit"}
	if err := c.Submit(ctx, &distrib.JobRequest{Kind: distrib.KindPoint, Dir: dir, Spec: &spec}); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "sweep: job submitted to %s (dir %s); waiting for workers\n", coordURL, dir)
	lastDone := -1
	for {
		st, err := c.Status(ctx)
		if err != nil {
			return nil, err
		}
		if st.HasJob && st.Done != lastDone {
			lastDone = st.Done
			fmt.Fprintf(os.Stderr, "sweep: %d/%d points committed\n", st.Done, st.Total)
		}
		if st.Complete {
			fmt.Fprintf(os.Stderr, "sweep: distributed run complete, fingerprint %s\n", st.Fingerprint)
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Second):
		}
	}
	if !sweep.IsDir(dir) {
		fmt.Fprintf(os.Stderr, "sweep: result directory %s is not visible locally; inspect it on the coordinator host\n", dir)
		os.Exit(0)
	}
	return sweep.Open(dir)
}

// resolveSpec picks the spec from -spec or -preset (exactly one).
func resolveSpec(path, preset string) (sweep.Spec, error) {
	switch {
	case path != "" && preset != "":
		return sweep.Spec{}, fmt.Errorf("use -spec or -preset, not both")
	case path != "":
		var s sweep.Spec
		if err := fsutil.ReadJSON(path, &s); err != nil {
			return sweep.Spec{}, err
		}
		return s, nil
	case preset == "smoke":
		return SmokeSpec(), nil
	case preset == "demo":
		return DemoSpec(), nil
	case preset == "":
		return sweep.Spec{}, fmt.Errorf("need -spec FILE or -preset smoke|demo")
	default:
		return sweep.Spec{}, fmt.Errorf("unknown preset %q (want smoke or demo)", preset)
	}
}

// SmokeSpec is the 4-point CI sweep: baseline vs complete-sharing, BShare,
// and ABM over a minimal fleet — enough to exercise the full engine path,
// including both policies that force full packet fidelity, in seconds.
func SmokeSpec() sweep.Spec {
	return sweep.Spec{
		Name: "smoke",
		Fleet: fleet.Config{
			Seed:           2022,
			RacksPerRegion: 2,
			ServersPerRack: 16,
			Hours:          []int{6},
			Buckets:        300,
		},
		Policies: []switchsim.Policy{
			switchsim.PolicyComplete, switchsim.PolicyBShare, switchsim.PolicyABM,
		},
	}
}

// DemoSpec is the 26-point §9 grid: five DT and ABM alphas at two ECN
// thresholds plus the static, complete-sharing, and BShare disciplines, over
// a fleet just large enough that the RegA top-contention quintile is
// populated (5 RegA racks -> 1 RegA-High).
func DemoSpec() sweep.Spec {
	return sweep.Spec{
		Name: "demo",
		Fleet: fleet.Config{
			Seed:           2022,
			RacksPerRegion: 5,
			ServersPerRack: 24,
			Hours:          []int{6},
			Buckets:        400,
		},
		Policies:      switchsim.KnownPolicies(),
		Alphas:        []float64{0.5, 1, 2, 4, 8},
		ECNThresholds: []int{0, 60 << 10},
	}
}

func name(s sweep.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "sweep"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
