// Command syncsampler demonstrates SyncMillisampler: a rack-wide
// synchronized collection over a mixed workload, printing the aligned
// per-server burst raster and the contention timeseries — the view behind
// the paper's Figure 5.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	servers := flag.Int("servers", 16, "servers in the rack")
	mlServers := flag.Int("ml", 0, "how many servers run the ML-ingest profile")
	buckets := flag.Int("buckets", 1000, "samples per run (1 ms each)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()

	if *mlServers > *servers {
		fmt.Fprintln(os.Stderr, "syncsampler: -ml exceeds -servers")
		os.Exit(1)
	}

	rack := testbed.NewRack(testbed.RackConfig{Servers: *servers, Seed: *seed})
	rng := rack.RNG.Fork(1)
	profiles := make([]workload.Profile, *servers)
	for i := range profiles {
		if i < *mlServers {
			profiles[i] = workload.MLTrain
		} else {
			profiles[i] = workload.PickTypical(rng)
		}
	}
	if _, err := workload.InstallRack(rack, profiles, rng); err != nil {
		fmt.Fprintln(os.Stderr, "syncsampler:", err)
		os.Exit(1)
	}

	ctrl := core.NewController(rack, core.Config{
		Interval: sim.Millisecond, Buckets: *buckets, CountFlows: true,
	})
	const warmup = 150 * sim.Millisecond
	if err := ctrl.Schedule(warmup); err != nil {
		fmt.Fprintln(os.Stderr, "syncsampler:", err)
		os.Exit(1)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(warmup) + sim.Millisecond)

	sr, err := ctrl.Result()
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncsampler:", err)
		os.Exit(1)
	}
	ra := analysis.Analyze(sr, analysis.DefaultOptions())

	fmt.Printf("sync run: %d servers, %d aligned samples at %v\n",
		len(sr.Servers), sr.Samples, sr.Interval)
	fmt.Printf("bursts: %d, avg contention %.2f, p90 contention %.1f\n\n",
		len(ra.Bursts), ra.AvgContention(), ra.P90Contention())

	// Burst raster: one row per server, one column per ~10ms.
	cols := 100
	per := sr.Samples / cols
	if per < 1 {
		per = 1
		cols = sr.Samples
	}
	fmt.Println("burst raster (row=server, column=time, # = bursty):")
	for s := range sr.Servers {
		var sb strings.Builder
		for c := 0; c < cols; c++ {
			mark := byte('.')
			for i := c * per; i < (c+1)*per && i < sr.Samples; i++ {
				if ra.Bursty[s][i] {
					mark = '#'
					break
				}
			}
			sb.WriteByte(mark)
		}
		fmt.Printf("  srv%02d %s (%s) %d bursts\n", s, sb.String(), profiles[s].Name, ra.Servers[s].NumBursts)
	}

	fmt.Println("\ncontention (max per column):")
	var sb strings.Builder
	for c := 0; c < cols; c++ {
		max := 0
		for i := c * per; i < (c+1)*per && i < sr.Samples; i++ {
			if ra.Contention[i] > max {
				max = ra.Contention[i]
			}
		}
		if max > 9 {
			sb.WriteByte('+')
		} else {
			sb.WriteByte(byte('0' + max))
		}
	}
	fmt.Printf("        %s\n", sb.String())

	lossy := 0
	for _, b := range ra.Bursts {
		if b.Lossy {
			lossy++
		}
	}
	if len(ra.Bursts) > 0 {
		fmt.Printf("\nlossy bursts: %d/%d (%.2f%%), switch discards: %d segments\n",
			lossy, len(ra.Bursts), 100*float64(lossy)/float64(len(ra.Bursts)),
			rack.Switch.Totals().DiscardSegments)
	}
}
