// Command dsinspect browses a fleet dataset produced by cmd/fleetgen:
// per-rack summaries with measured classification, and per-rack drill-down
// into runs and burst statistics.
//
// Usage:
//
//	dsinspect -data fleet.gob.gz                 # rack table
//	dsinspect -data fleet.gob.gz -rack RegA/3    # one rack's runs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	data := flag.String("data", "fleet.gob.gz", "dataset path")
	rack := flag.String("rack", "", "drill into one rack, e.g. RegA/3")
	top := flag.Int("top", 0, "show only the N highest-contention racks")
	flag.Parse()

	var ds fleet.Dataset
	if err := trace.Load(*data, &ds); err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	if *rack != "" {
		parts := strings.SplitN(*rack, "/", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "dsinspect: -rack wants REGION/ID")
			os.Exit(1)
		}
		id, err := strconv.Atoi(parts[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsinspect: bad rack id:", err)
			os.Exit(1)
		}
		drill(&ds, parts[0], id)
		return
	}
	overview(&ds, *top)
}

func overview(ds *fleet.Dataset, top int) {
	fmt.Printf("dataset: %d racks, %d runs, seed %d, %d servers/rack, hours %v\n\n",
		len(ds.Racks), len(ds.Runs), ds.Cfg.Seed, ds.Cfg.ServersPerRack, ds.Cfg.Hours)
	racks := append([]fleet.RackMeta(nil), ds.Racks...)
	sort.Slice(racks, func(a, b int) bool {
		return racks[a].BusyAvgContention > racks[b].BusyAvgContention
	})
	if top > 0 && top < len(racks) {
		racks = racks[:top]
	}
	fmt.Printf("%-8s %-4s %-13s %9s %6s %9s %8s %8s\n",
		"region", "id", "class", "busy-cont", "tasks", "dom-share", "bursts", "lossy")
	for _, m := range racks {
		var bursts, lossy int
		for i := range ds.Runs {
			r := &ds.Runs[i]
			if r.Region != m.Region || r.RackID != m.ID {
				continue
			}
			bursts += len(r.Bursts)
			for _, b := range r.Bursts {
				if b.Lossy {
					lossy++
				}
			}
		}
		lossPct := "-"
		if bursts > 0 {
			lossPct = fmt.Sprintf("%.2f%%", 100*float64(lossy)/float64(bursts))
		}
		fmt.Printf("%-8s %-4d %-13s %9.2f %6d %8.0f%% %8d %8s\n",
			m.Region, m.ID, m.Class, m.BusyAvgContention,
			m.DistinctTasks, 100*m.DominantShare, bursts, lossPct)
	}
}

func drill(ds *fleet.Dataset, region string, id int) {
	m := ds.Rack(region, id)
	if m == nil {
		fmt.Fprintf(os.Stderr, "dsinspect: no rack %s/%d\n", region, id)
		os.Exit(1)
	}
	fmt.Printf("rack %s/%d: class %v, %d distinct tasks, dominant task on %.0f%% of servers",
		m.Region, m.ID, m.Class, m.DistinctTasks, 100*m.DominantShare)
	if m.MLDominated {
		fmt.Printf(" (ML-dominated placement)")
	}
	fmt.Printf(", RegB intensity %.2f\n\n", m.Intensity)

	fmt.Printf("%-5s %9s %9s %8s %8s %9s %10s %9s\n",
		"hour", "avg-cont", "p90-cont", "bursts", "lossy", "drop%", "GB/min", "discards")
	var runs []*fleet.RunSummary
	for i := range ds.Runs {
		r := &ds.Runs[i]
		if r.Region == region && r.RackID == id {
			runs = append(runs, r)
		}
	}
	sort.Slice(runs, func(a, b int) bool { return runs[a].Hour < runs[b].Hour })
	var lens []float64
	for _, r := range runs {
		lossy := 0
		for _, b := range r.Bursts {
			if b.Lossy {
				lossy++
			}
			lens = append(lens, float64(b.Len))
		}
		drop := "-"
		if r.ShareDropOK {
			drop = fmt.Sprintf("%.1f%%", 100*r.ShareDrop)
		}
		fmt.Printf("%-5d %9.2f %9.1f %8d %8d %9s %10.1f %9d\n",
			r.Hour, r.AvgContention, r.P90Contention, len(r.Bursts), lossy,
			drop, float64(r.IngressPerMin)/1e9, r.Switch.DiscardSegs)
	}
	if len(lens) > 0 {
		b := stats.Summarize(lens)
		fmt.Printf("\nburst lengths (ms): min %.0f p25 %.0f median %.0f p75 %.0f p90 %.0f max %.0f (n=%d)\n",
			b.Min, b.P25, b.Median, b.P75, b.P90, b.Max, b.N)
	}
}
