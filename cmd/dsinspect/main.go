// Command dsinspect browses the pipeline's result stores: fleet datasets
// produced by cmd/fleetgen (per-rack summaries with measured classification
// and per-rack drill-down) and sweep result directories produced by
// cmd/sweep (per-point completion and the sealed result digest).
//
// -data accepts a sharded dataset directory (runs stream shard by shard), a
// legacy single .gob.gz file, or a sweep result directory. An incomplete
// sharded dataset prints its shard status instead of the rack table; an
// incomplete sweep prints its point status.
//
// Usage:
//
//	dsinspect -data fleet.ds                 # rack table
//	dsinspect -data fleet.ds -rack RegA/3    # one rack's runs
//	dsinspect -data fleet.ds -digest         # canonical digest, for scripts
//	dsinspect -data sweepdir                 # sweep point status
//	dsinspect -data sweepdir -digest         # sealed ResultDigest
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// source is the dataset view dsinspect needs: the experiments' streaming
// interface plus single-rack access for drill-down. Both *fleet.Dataset and
// *dataset.Reader satisfy it.
type source interface {
	Config() fleet.Config
	RackMetas() []fleet.RackMeta
	EachRun(fn func(r *fleet.RunSummary, c fleet.Class) error) (skipped int, err error)
	RackRuns(region string, id int) ([]fleet.RunSummary, error)
}

func main() {
	data := flag.String("data", "fleet.ds", "dataset path (directory or .gob.gz)")
	rack := flag.String("rack", "", "drill into one rack, e.g. RegA/3")
	top := flag.Int("top", 0, "show only the N highest-contention racks")
	digest := flag.Bool("digest", false, "print the canonical dataset digest and exit (for byte-identity checks)")
	flag.Parse()

	if sweep.IsDir(*data) {
		sweepStatus(*data, *digest)
		return
	}
	if *digest {
		printDigest(*data)
		return
	}

	src, err := open(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	if *rack != "" {
		parts := strings.SplitN(*rack, "/", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "dsinspect: -rack wants REGION/ID")
			os.Exit(1)
		}
		id, err := strconv.Atoi(parts[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsinspect: bad rack id:", err)
			os.Exit(1)
		}
		drill(src, parts[0], id)
		return
	}
	overview(src, *top)
}

// printDigest emits the canonical dataset digest — the value distributed and
// single-process generations are compared on — and nothing else, so scripts
// can capture it.
func printDigest(data string) {
	var ds *fleet.Dataset
	if dataset.IsDir(data) {
		r, err := dataset.Open(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsinspect:", err)
			os.Exit(1)
		}
		if !r.Complete() {
			done, total := r.Progress()
			fmt.Fprintf(os.Stderr, "dsinspect: dataset incomplete (%d/%d shards); no digest\n", done, total)
			os.Exit(1)
		}
		ds, err = r.Dataset()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsinspect:", err)
			os.Exit(1)
		}
	} else {
		ds = &fleet.Dataset{}
		if err := trace.Load(data, ds); err != nil {
			fmt.Fprintln(os.Stderr, "dsinspect:", err)
			os.Exit(1)
		}
	}
	d, err := ds.Digest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	fmt.Println(d)
}

// sweepStatus reports a sweep result directory: the sealed digest (for
// scripts comparing two sweeps), or the per-point completion table.
func sweepStatus(dir string, digestOnly bool) {
	man, err := sweep.Inspect(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	done, total := man.Progress()
	if digestOnly {
		if !man.Complete {
			fmt.Fprintf(os.Stderr, "dsinspect: sweep incomplete (%d/%d points); no digest\n", done, total)
			os.Exit(1)
		}
		fmt.Println(man.ResultDigest)
		return
	}
	fmt.Printf("sweep %s: %q, %d/%d points (seed %d, %d racks/region x %d servers x %d hours)\n",
		dir, man.Name, done, total, man.Fleet.Seed,
		man.Fleet.RacksPerRegion, man.Fleet.ServersPerRack, len(man.Fleet.Hours))
	if man.Complete {
		fmt.Printf("result digest: %s\n", man.ResultDigest)
	} else {
		fmt.Printf("resume with: sweep -o %s <same flags>\n", dir)
	}
	fmt.Println()
	fmt.Printf("%-4s %-28s %-9s %s\n", "idx", "label", "state", "digest")
	for _, p := range man.Points {
		state, dg := "pending", "-"
		if p.Complete {
			state = "complete"
			if len(p.Digest) >= 12 {
				dg = p.Digest[:12]
			} else {
				dg = p.Digest
			}
		}
		fmt.Printf("%-4d %-28s %-9s %s\n", p.Index, p.Label, state, dg)
	}
}

// open resolves the dataset source. An incomplete sharded dataset prints its
// shard status and exits, since there is nothing coherent to analyze yet.
func open(data string) (source, error) {
	if dataset.IsDir(data) {
		r, err := dataset.Open(data)
		if err != nil {
			return nil, err
		}
		if !r.Complete() {
			shardStatus(r, data)
			os.Exit(0)
		}
		return r, nil
	}
	var ds fleet.Dataset
	if err := trace.Load(data, &ds); err != nil {
		return nil, err
	}
	return &ds, nil
}

// shardStatus reports an in-progress generation shard by shard.
func shardStatus(r *dataset.Reader, dir string) {
	done, total := r.Progress()
	cfg := r.Config()
	fmt.Printf("dataset %s: generation incomplete — %d/%d shards (seed %d, %d racks/region x %d servers x %d hours)\n",
		dir, done, total, cfg.Seed, cfg.RacksPerRegion, cfg.ServersPerRack, len(cfg.Hours))
	fmt.Printf("resume with: fleetgen -o %s <same flags>\n\n", dir)
	fmt.Printf("%-8s %-6s %-9s %6s %10s\n", "region", "id", "state", "runs", "collected")
	for _, s := range r.Shards() {
		state := "pending"
		runs, collected := "-", "-"
		if s.Complete {
			state = "complete"
			runs = fmt.Sprintf("%d", s.Runs)
			collected = fmt.Sprintf("%d", s.Collected)
		}
		fmt.Printf("%-8s %-6d %-9s %6s %10s\n", s.Region, s.ID, state, runs, collected)
	}
}

func overview(src source, top int) {
	// One streaming pass accumulates the per-rack burst counters, so a
	// sharded dataset never needs the whole fleet in memory.
	type burstAcc struct{ bursts, lossy int }
	acc := map[string]*burstAcc{}
	key := func(region string, id int) string { return fmt.Sprintf("%s/%d", region, id) }
	totalRuns := 0
	skipped, err := src.EachRun(func(r *fleet.RunSummary, _ fleet.Class) error {
		totalRuns++
		k := key(r.Region, r.RackID)
		a := acc[k]
		if a == nil {
			a = &burstAcc{}
			acc[k] = a
		}
		a.bursts += len(r.Bursts)
		for _, b := range r.Bursts {
			if b.Lossy {
				a.lossy++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	cfg := src.Config()
	metas := src.RackMetas()
	instr := ""
	if cfg.HostStack {
		instr = ", hoststack on"
	}
	fmt.Printf("dataset: %d racks, %d runs, seed %d, %d servers/rack, hours %v%s\n",
		len(metas), totalRuns+skipped, cfg.Seed, cfg.ServersPerRack, cfg.Hours, instr)
	if skipped > 0 {
		fmt.Printf("warning: %d runs skipped (rack metadata missing — degraded dataset)\n", skipped)
	}
	fmt.Println()
	racks := append([]fleet.RackMeta(nil), metas...)
	sort.Slice(racks, func(a, b int) bool {
		return racks[a].BusyAvgContention > racks[b].BusyAvgContention
	})
	if top > 0 && top < len(racks) {
		racks = racks[:top]
	}
	fmt.Printf("%-8s %-4s %-13s %9s %6s %9s %8s %8s\n",
		"region", "id", "class", "busy-cont", "tasks", "dom-share", "bursts", "lossy")
	for _, m := range racks {
		a := acc[key(m.Region, m.ID)]
		if a == nil {
			a = &burstAcc{}
		}
		lossPct := "-"
		if a.bursts > 0 {
			lossPct = fmt.Sprintf("%.2f%%", 100*float64(a.lossy)/float64(a.bursts))
		}
		fmt.Printf("%-8s %-4d %-13s %9.2f %6d %8.0f%% %8d %8s\n",
			m.Region, m.ID, m.Class, m.BusyAvgContention,
			m.DistinctTasks, 100*m.DominantShare, a.bursts, lossPct)
	}
}

func drill(src source, region string, id int) {
	var m *fleet.RackMeta
	metas := src.RackMetas()
	for i := range metas {
		if metas[i].Region == region && metas[i].ID == id {
			m = &metas[i]
			break
		}
	}
	if m == nil {
		fmt.Fprintf(os.Stderr, "dsinspect: no rack %s/%d\n", region, id)
		os.Exit(1)
	}
	fmt.Printf("rack %s/%d: class %v, %d distinct tasks, dominant task on %.0f%% of servers",
		m.Region, m.ID, m.Class, m.DistinctTasks, 100*m.DominantShare)
	if m.MLDominated {
		fmt.Printf(" (ML-dominated placement)")
	}
	fmt.Printf(", RegB intensity %.2f\n\n", m.Intensity)

	runs, err := src.RackRuns(region, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsinspect:", err)
		os.Exit(1)
	}
	sort.Slice(runs, func(a, b int) bool { return runs[a].Hour < runs[b].Hour })
	hostStack := false
	for i := range runs {
		if runs[i].HostStack != nil {
			hostStack = true
			break
		}
	}
	hsHdr := ""
	if hostStack {
		hsHdr = fmt.Sprintf(" %10s", "hs-p99(µs)")
	}
	fmt.Printf("%-5s %9s %9s %8s %8s %9s %10s %9s%s\n",
		"hour", "avg-cont", "p90-cont", "bursts", "lossy", "drop%", "GB/min", "discards", hsHdr)
	var lens []float64
	for i := range runs {
		r := &runs[i]
		lossy := 0
		for _, b := range r.Bursts {
			if b.Lossy {
				lossy++
			}
			lens = append(lens, float64(b.Len))
		}
		drop := "-"
		if r.ShareDropOK {
			drop = fmt.Sprintf("%.1f%%", 100*r.ShareDrop)
		}
		hsCol := ""
		if hostStack {
			if r.HostStack != nil {
				hsCol = fmt.Sprintf(" %10.0f", r.HostStack.InP99Us)
			} else {
				hsCol = fmt.Sprintf(" %10s", "-")
			}
		}
		fmt.Printf("%-5d %9.2f %9.1f %8d %8d %9s %10.1f %9d%s\n",
			r.Hour, r.AvgContention, r.P90Contention, len(r.Bursts), lossy,
			drop, float64(r.IngressPerMin)/1e9, r.Switch.DiscardSegs, hsCol)
	}
	if len(lens) > 0 {
		b := stats.Summarize(lens)
		fmt.Printf("\nburst lengths (ms): min %.0f p25 %.0f median %.0f p75 %.0f p90 %.0f max %.0f (n=%d)\n",
			b.Min, b.P25, b.Median, b.P75, b.P90, b.Max, b.N)
	}
}
