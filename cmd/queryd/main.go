// Command queryd serves completed datasets and sweep stores read-only over
// HTTP: catalog listings, streaming NDJSON queries over rack shards, and
// cached figure/table renders (see internal/queryd).
//
// It is the read side of the pipeline — fleetgen/coordinator/worker write
// stores, queryd serves them to many clients with per-request memory
// bounded by one rack shard. SIGTERM drains gracefully: in-flight streams
// and renders finish, new requests stop being accepted.
//
// Usage:
//
//	queryd -root results/ -addr :9010
//	curl -s localhost:9010/v1/catalog
//	curl -s localhost:9010/v1/datasets/fleet/runs?region=A | head
//	curl -s localhost:9010/v1/datasets/fleet/renders/tab1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpserve"
	"repro/internal/queryd"
)

func main() {
	root := flag.String("root", ".", "directory scanned for datasets and sweep stores")
	addr := flag.String("addr", ":9010", "address to serve on")
	concurrency := flag.Int("concurrency", 16, "max simultaneous data requests before 429 backpressure")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request budget for streams and renders")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "render cache budget in bytes (negative disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "queryd: ", log.LstdFlags)
	}
	srv := queryd.New(queryd.Config{
		Root:           *root,
		MaxConcurrent:  *concurrency,
		RequestTimeout: *timeout,
		CacheBytes:     *cacheBytes,
		Logger:         logger,
	})

	// Fail fast on an unusable root, and tell the operator what was found.
	dss, sws, err := srv.Catalog().Refresh()
	if err != nil {
		fmt.Fprintln(os.Stderr, "queryd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "queryd: serving %s on %s (%d datasets, %d sweeps)\n",
		*root, *addr, len(dss), len(sws))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	err = httpserve.Graceful(ctx, httpSrv, 15*time.Second, func() {
		fmt.Fprintln(os.Stderr, "queryd: draining")
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "queryd:", err)
		os.Exit(1)
	}
}
