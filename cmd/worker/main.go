// Command worker computes leased units for a coordinator (see
// internal/distrib): it pulls a rack shard or sweep point, simulates it,
// and uploads the digest-stamped result, heartbeating its lease throughout.
// Workers are stateless — run as many as there are machines, kill them
// freely; every result is verified and committed exactly once by the
// coordinator. SIGTERM drains gracefully: the in-flight unit is abandoned
// between rack-hours and its lease released so a peer picks it up at once.
//
// Usage:
//
//	worker -coordinator http://host:9009
//	worker -coordinator http://host:9009 -sim-workers 8 -name rack42
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/distrib"
)

func main() {
	coordURL := flag.String("coordinator", "http://127.0.0.1:9009", "coordinator base URL")
	simWorkers := flag.Int("sim-workers", 0, "simulation parallelism per unit (default: the job config's)")
	name := flag.String("name", "", "worker identity in leases and logs (default host:pid)")
	flag.Parse()

	id := *name
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	w := &distrib.Worker{
		Client:     &distrib.Client{BaseURL: *coordURL, Worker: id},
		SimWorkers: *simWorkers,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker %s: %s\n", id, fmt.Sprintf(format, args...))
		},
	}
	if err := w.Run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "worker %s: drained\n", id)
			return
		}
		fmt.Fprintf(os.Stderr, "worker %s: %v\n", id, err)
		os.Exit(1)
	}
}
