// Command coordinator serves distributed generation: it owns a resumable
// result directory (sharded dataset or sweep) and leases its work units to
// workers over HTTP/JSON (see internal/distrib).
//
// It starts idle; a job arrives either from the -job flags below or from a
// client (`fleetgen -distributed` / `sweep -distributed` submit one and poll
// for completion). Killing the coordinator loses nothing — restart it over
// the same directory and only the uncommitted units are re-leased. SIGTERM
// drains gracefully: no new leases, in-flight uploads still land.
//
// Usage:
//
//	coordinator -listen :9009                       # wait for a submitted job
//	coordinator -listen :9009 -once                 # exit once the job completes
//	coordinator -listen :9009 -lease-ttl 30s -straggler 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/httpserve"
)

func main() {
	listen := flag.String("listen", ":9009", "address to serve the coordinator RPC surface on")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "heartbeat budget before a lease expires and its unit is reassigned")
	straggler := flag.Duration("straggler", 0, "cap on one grant's total lifetime regardless of heartbeats (default 20x lease TTL)")
	once := flag.Bool("once", false, "exit with status 0 when the job completes (for scripted runs)")
	flag.Parse()

	coord := distrib.NewCoordinator(distrib.CoordinatorConfig{
		LeaseTTL:          *leaseTTL,
		StragglerDeadline: *straggler,
	})
	srv := &http.Server{Addr: *listen, Handler: coord.Handler()}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go coord.RunExpiry(ctx, *leaseTTL/4)

	// Progress reporting and -once both ride on the coordinator's state; the
	// serve loop itself is the shared graceful-drain plumbing.
	go func() {
		progress := time.NewTicker(5 * time.Second)
		defer progress.Stop()
		lastDone := -1
		for {
			select {
			case <-ctx.Done():
				return
			case <-coord.Done():
				st := coord.Status()
				fmt.Fprintf(os.Stderr, "coordinator: job complete: %d/%d units, fingerprint %s\n",
					st.Done, st.Total, st.Fingerprint)
				if *once {
					cancel()
				}
				// Otherwise keep serving status (and Done leases) for late
				// workers until a signal arrives.
				return
			case <-progress.C:
				st := coord.Status()
				if st.HasJob && st.Done != lastDone {
					lastDone = st.Done
					fmt.Fprintf(os.Stderr, "coordinator: %d/%d units committed\n", st.Done, st.Total)
				}
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "coordinator: listening on %s (lease ttl %v)\n", *listen, *leaseTTL)
	err := httpserve.Graceful(ctx, srv, 10*time.Second, func() {
		// Drain: stop granting leases; in-flight uploads still land during
		// the shutdown window.
		fmt.Fprintln(os.Stderr, "coordinator: draining (no new leases)")
		coord.Drain()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
}
