// Command fleetgen generates a fleet dataset — a full simulated collection
// day over both regions — and stores it on disk for later analysis with
// cmd/experiments.
//
// The default output is a sharded dataset directory (see internal/dataset):
// each rack streams to its own shard as it completes, so a long paper-scale
// generation can be killed and re-invoked with the same flags to resume where
// it left off. An output path ending in .gob.gz selects the legacy
// single-file format instead (no resume, whole dataset in memory).
//
// The -policy/-alpha/-ecn flags generate the fleet under a counterfactual
// ToR configuration instead of the baseline (dynamic thresholds, alpha 1) —
// a single what-if dataset; for full grids see cmd/sweep.
//
// Usage:
//
//	fleetgen -preset paper -o fleet.ds      # sharded, resumable
//	fleetgen -preset small -o small.gob.gz  # legacy single file
//	fleetgen -preset small -policy dt -alpha 4 -o whatif.ds
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/distrib"
	"repro/internal/fleet"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/trace"
)

func main() {
	out := flag.String("o", "fleet.ds", "output path: a dataset directory, or a legacy .gob.gz file")
	preset := flag.String("preset", "default", "preset: small, default, or paper")
	seed := flag.Uint64("seed", 0, "override seed")
	racks := flag.Int("racks", 0, "override racks per region")
	servers := flag.Int("servers", 0, "override servers per rack")
	buckets := flag.Int("buckets", 0, "override sampler buckets per run")
	hours := flag.String("hours", "", "override sampled hours, e.g. 0,6,12,18")
	workers := flag.Int("workers", 0, "override generation parallelism")
	policy := flag.String("policy", "", "counterfactual sharing policy: dt, static, complete, bshare, or abm")
	alpha := flag.Float64("alpha", 0, "counterfactual DT/ABM alpha (requires -policy)")
	ecn := flag.Int("ecn", 0, "counterfactual ECN marking threshold in bytes, -1 disables marking (requires -policy)")
	bshareDelay := flag.Duration("bshare-delay", 0, "counterfactual BShare delay budget, e.g. 100us (requires -policy bshare)")
	distributed := flag.String("distributed", "", "coordinator URL: submit the generation as a distributed job instead of running locally")
	fidelity := flag.String("fidelity", "", "simulation fidelity: full (default, byte-exact) or hybrid (fluid fast path)")
	hostStack := flag.Bool("hoststack", false, "arm the host-stack latency instrument beside Millisampler (forces full fidelity)")
	profFlags := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	profSession, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	defer profSession.Stop()

	var cfg fleet.Config
	switch *preset {
	case "small":
		cfg = fleet.SmallConfig()
	case "default":
		cfg = fleet.DefaultConfig()
	case "paper":
		cfg = fleet.PaperConfig()
	default:
		fmt.Fprintf(os.Stderr, "fleetgen: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	// flag.Visit only sees flags present on the command line, so -seed 0 is
	// an explicit choice rather than an impossible one.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.Seed = *seed
		}
	})
	if *racks > 0 {
		cfg.RacksPerRegion = *racks
	}
	if *servers > 0 {
		cfg.ServersPerRack = *servers
	}
	if *buckets > 0 {
		cfg.Buckets = *buckets
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *hours != "" {
		cfg.Hours = nil
		for _, part := range strings.Split(*hours, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || h < 0 || h > 23 {
				fmt.Fprintf(os.Stderr, "fleetgen: bad hour %q\n", part)
				os.Exit(1)
			}
			cfg.Hours = append(cfg.Hours, h)
		}
	}
	if *fidelity != "" {
		fid, err := fleet.ParseFidelity(*fidelity)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetgen:", err)
			os.Exit(1)
		}
		cfg.Fidelity = fid
	}
	cfg.HostStack = *hostStack
	if *policy == "" && (*alpha != 0 || *ecn != 0 || *bshareDelay != 0) {
		fmt.Fprintln(os.Stderr, "fleetgen: -alpha/-ecn/-bshare-delay need -policy (use -policy dt for baseline-style sharing)")
		os.Exit(1)
	}
	if *policy != "" {
		p, err := switchsim.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetgen:", err)
			os.Exit(1)
		}
		cfg.Switch = fleet.SwitchOverride{
			Policy: p, Alpha: *alpha, ECNThreshold: *ecn,
			BShareDelay: sim.Time(*bshareDelay),
		}
		fmt.Fprintf(os.Stderr, "fleetgen: counterfactual switch config: %s\n", cfg.Switch)
	}
	if err := cfg.WithDefaults().Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "fleetgen: %d racks/region x %d servers x %d hours, seed %d\n",
		cfg.RacksPerRegion, cfg.ServersPerRack, len(cfg.Hours), cfg.Seed)

	// Ctrl-C / SIGTERM abort cleanly between rack-hours: committed shards
	// stay, no temp files leak, and re-running the same flags resumes.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *distributed != "" {
		if !dataset.LooksSharded(*out) {
			fmt.Fprintln(os.Stderr, "fleetgen: -distributed needs a sharded output directory, not a .gob.gz file")
			os.Exit(1)
		}
		generateDistributed(ctx, *distributed, *out, cfg)
		return
	}
	if dataset.LooksSharded(*out) {
		generateSharded(ctx, *out, cfg)
		return
	}
	generateLegacy(*out, cfg)
}

// generateDistributed submits the generation to a coordinator and polls
// until it completes. The dataset lands in dir on the coordinator's
// filesystem; when that path is visible locally (same machine or shared
// storage) a summary is printed from it.
func generateDistributed(ctx context.Context, coordURL, dir string, cfg fleet.Config) {
	c := &distrib.Client{BaseURL: coordURL, Worker: "fleetgen-submit"}
	if err := c.Submit(ctx, &distrib.JobRequest{Kind: distrib.KindShard, Dir: dir, Config: &cfg}); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: job submitted to %s (dir %s); waiting for workers\n", coordURL, dir)
	st, err := pollStatus(ctx, c, "fleetgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: distributed generation complete: %d shards, fingerprint %s\n",
		st.Total, st.Fingerprint)
	if dataset.IsDir(dir) {
		if r, err := dataset.Open(dir); err == nil {
			var runs int
			for _, s := range r.Shards() {
				runs += s.Runs
			}
			fmt.Fprintf(os.Stderr, "fleetgen: %d runs -> %s\n", runs, dir)
		}
	}
}

// pollStatus waits for the coordinator's job to complete, echoing progress.
func pollStatus(ctx context.Context, c *distrib.Client, tag string) (*distrib.StatusResponse, error) {
	lastDone := -1
	for {
		st, err := c.Status(ctx)
		if err != nil {
			return nil, err
		}
		if st.HasJob && st.Done != lastDone {
			lastDone = st.Done
			fmt.Fprintf(os.Stderr, "%s: %d/%d units committed\n", tag, st.Done, st.Total)
		}
		if st.Complete {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Second):
		}
	}
}

// generateSharded runs (or resumes) a sharded generation with per-shard
// progress and ETA reporting.
func generateSharded(ctx context.Context, dir string, cfg fleet.Config) {
	start := time.Now()
	doneAtStart := 0
	if dataset.IsDir(dir) {
		if r, err := dataset.Open(dir); err == nil {
			done, total := r.Progress()
			doneAtStart = done
			if done > 0 {
				fmt.Fprintf(os.Stderr, "fleetgen: resuming %s: %d/%d shards already complete\n",
					dir, done, total)
			}
		}
	}
	progress := func(p dataset.Progress) {
		elapsed := time.Since(start)
		eta := "-"
		if fresh := p.Done - doneAtStart; fresh > 0 && p.Done < p.Total {
			remaining := time.Duration(float64(elapsed) / float64(fresh) * float64(p.Total-p.Done))
			eta = remaining.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "fleetgen: shard %s/%05d done (%d runs) — %d/%d, eta %s\n",
			p.Region, p.ID, p.Runs, p.Done, p.Total, eta)
	}
	r, err := dataset.GenerateDir(ctx, dir, cfg, progress)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "fleetgen: interrupted; committed shards kept, re-run the same flags to resume")
		case errors.Is(err, dataset.ErrConfigMismatch):
			fmt.Fprintln(os.Stderr, "fleetgen:", err)
			fmt.Fprintln(os.Stderr, "fleetgen: use a fresh -o directory for a different config or seed")
		default:
			fmt.Fprintln(os.Stderr, "fleetgen:", err)
		}
		os.Exit(1)
	}
	var runs, bursts int
	for _, s := range r.Shards() {
		runs += s.Runs
	}
	if _, err := r.EachRun(func(run *fleet.RunSummary, _ fleet.Class) error {
		bursts += len(run.Bursts)
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: %d runs, %d bursts -> %s in %v\n",
		runs, bursts, dir, time.Since(start).Round(time.Second))
}

// generateLegacy writes the whole dataset as one gob.gz file, the original
// format. It cannot resume and holds the full dataset in memory.
func generateLegacy(out string, cfg fleet.Config) {
	start := time.Now()
	ds, err := fleet.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	if err := trace.Save(out, ds); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	var bursts int
	for i := range ds.Runs {
		bursts += len(ds.Runs[i].Bursts)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: %d runs, %d bursts -> %s in %v\n",
		len(ds.Runs), bursts, out, time.Since(start).Round(time.Second))
}
