// Command fleetgen generates a fleet dataset — a full simulated collection
// day over both regions — and stores it compressed on disk for later
// analysis with cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/trace"
)

func main() {
	out := flag.String("o", "fleet.gob.gz", "output dataset path")
	preset := flag.String("preset", "default", "preset: small or default")
	seed := flag.Uint64("seed", 0, "override seed")
	racks := flag.Int("racks", 0, "override racks per region")
	servers := flag.Int("servers", 0, "override servers per rack")
	buckets := flag.Int("buckets", 0, "override sampler buckets per run")
	hours := flag.String("hours", "", "override sampled hours, e.g. 0,6,12,18")
	workers := flag.Int("workers", 0, "override generation parallelism")
	flag.Parse()

	var cfg fleet.Config
	switch *preset {
	case "small":
		cfg = fleet.SmallConfig()
	case "default":
		cfg = fleet.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "fleetgen: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *racks > 0 {
		cfg.RacksPerRegion = *racks
	}
	if *servers > 0 {
		cfg.ServersPerRack = *servers
	}
	if *buckets > 0 {
		cfg.Buckets = *buckets
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *hours != "" {
		cfg.Hours = nil
		for _, part := range strings.Split(*hours, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || h < 0 || h > 23 {
				fmt.Fprintf(os.Stderr, "fleetgen: bad hour %q\n", part)
				os.Exit(1)
			}
			cfg.Hours = append(cfg.Hours, h)
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "fleetgen: %d racks/region x %d servers x %d hours, seed %d\n",
		cfg.RacksPerRegion, cfg.ServersPerRack, len(cfg.Hours), cfg.Seed)
	ds, err := fleet.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	if err := trace.Save(*out, ds); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	var bursts int
	for i := range ds.Runs {
		bursts += len(ds.Runs[i].Bursts)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: %d runs, %d bursts -> %s in %v\n",
		len(ds.Runs), bursts, *out, time.Since(start).Round(time.Second))
}
