// Command experiments regenerates the paper's tables and figures from a
// simulated fleet dataset.
//
// Usage:
//
//	experiments [-preset small|default] [-run fig7,tab2|all] [-data ds.gob.gz]
//
// With -data pointing at an existing file the dataset is loaded; otherwise
// it is generated (and saved there when -data is given).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/trace"
)

func main() {
	preset := flag.String("preset", "small", "dataset preset: small or default")
	runIDs := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	data := flag.String("data", "", "dataset path to load from / save to (gob.gz)")
	seed := flag.Uint64("seed", 0, "override dataset seed (0 keeps preset seed)")
	racks := flag.Int("racks", 0, "override racks per region")
	md := flag.String("md", "", "also write results as markdown to this file")
	plot := flag.Bool("plot", false, "render ASCII plots for figures that carry curves")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ds, err := loadOrGenerate(*preset, *data, *seed, *racks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	var results []*experiments.Result
	if *runIDs == "all" {
		results, err = experiments.RunAll(ds)
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, rerr := experiments.Run(strings.TrimSpace(id), ds)
			if rerr != nil {
				err = rerr
				break
			}
			results = append(results, r)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, r := range results {
		r.Render(os.Stdout)
		if *plot {
			r.RenderPlot(os.Stdout)
			fmt.Println()
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, r := range results {
			r.RenderMarkdown(f)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote markdown to %s\n", *md)
	}
}

func loadOrGenerate(preset, data string, seed uint64, racks int) (*fleet.Dataset, error) {
	if data != "" {
		if _, err := os.Stat(data); err == nil {
			var ds fleet.Dataset
			if err := trace.Load(data, &ds); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "loaded dataset: %d runs, %d racks\n", len(ds.Runs), len(ds.Racks))
			return &ds, nil
		}
	}
	var cfg fleet.Config
	switch preset {
	case "small":
		cfg = fleet.SmallConfig()
	case "default":
		cfg = fleet.DefaultConfig()
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if racks > 0 {
		cfg.RacksPerRegion = racks
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating %s dataset (%d racks/region x %d hours)...\n",
		preset, cfg.RacksPerRegion, len(cfg.Hours))
	ds, err := fleet.Generate(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "generated %d runs in %v\n", len(ds.Runs), time.Since(start).Round(time.Second))
	if data != "" {
		if err := trace.Save(data, ds); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "saved dataset to %s\n", data)
	}
	return ds, nil
}
