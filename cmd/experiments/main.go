// Command experiments regenerates the paper's tables and figures from a
// simulated fleet dataset.
//
// Usage:
//
//	experiments [-preset small|default] [-run fig7,tab2|all] [-data fleet.ds]
//
// -data accepts either a sharded dataset directory written by cmd/fleetgen
// (runs stream shard by shard, memory stays bounded) or a legacy .gob.gz
// single file. With -data pointing at an existing dataset it is loaded;
// otherwise the preset is generated, and saved there when -data is given
// (sharded unless the path ends in .gob.gz).
//
// -sweep appends the what-if counterfactual tables (§9) from a completed
// cmd/sweep result directory to the report.
//
// -server switches to client mode: instead of loading or generating a
// dataset locally, renders are fetched from a running cmd/queryd instance.
// There -data and -sweep name entries in the server's catalog (as listed by
// GET /v1/catalog) rather than local paths. Fetches revalidate with ETags
// (a repeated render costs a 304, not a recomputation) and retry transient
// failures on the shared backoff policy. Without -server the command
// renders locally, exactly as before.
//
//	experiments -server http://localhost:9010 -data fleet.ds -run tab1
//	experiments -server http://localhost:9010 -sweep sweeps/default -md out.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/queryd"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	preset := flag.String("preset", "small", "dataset preset: small or default")
	runIDs := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	data := flag.String("data", "", "dataset path to load from / save to (directory or .gob.gz)")
	seed := flag.Uint64("seed", 0, "override dataset seed")
	racks := flag.Int("racks", 0, "override racks per region")
	sweepDir := flag.String("sweep", "", "completed cmd/sweep result directory: append its what-if tables")
	server := flag.String("server", "", "queryd base URL: fetch renders remotely; -data/-sweep become catalog names")
	md := flag.String("md", "", "also write results as markdown to this file")
	plot := flag.Bool("plot", false, "render ASCII plots for figures that carry curves")
	hostStack := flag.Bool("hoststack", false, "generate with the host-stack latency instrument armed (populates the hoststack table)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *server != "" {
		if err := runRemote(*server, *data, *sweepDir, *runIDs, *md); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	src, err := loadOrGenerate(*preset, *data, *seed, seedSet, *racks, *hostStack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	var results []*experiments.Result
	if *runIDs == "all" {
		results, err = experiments.RunAll(src)
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, rerr := experiments.Run(strings.TrimSpace(id), src)
			if rerr != nil {
				err = rerr
				break
			}
			results = append(results, r)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *sweepDir != "" {
		res, serr := sweep.Open(*sweepDir)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", serr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded sweep: %d points from %s\n", len(res.Points), *sweepDir)
		results = append(results, sweep.Report(res)...)
	}
	for _, r := range results {
		r.Render(os.Stdout)
		if *plot {
			r.RenderPlot(os.Stdout)
			fmt.Println()
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, r := range results {
			r.RenderMarkdown(f)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote markdown to %s\n", *md)
	}
}

// runRemote is client mode: fetch the requested renders from a queryd
// server instead of computing them locally. The server's cache means a
// fleet-wide render is computed once no matter how many clients ask.
func runRemote(server, data, sweepName, runIDs, md string) error {
	if data == "" && sweepName == "" {
		return fmt.Errorf("-server needs -data and/or -sweep naming catalog entries (see %s/v1/catalog)", server)
	}
	c := &queryd.Client{BaseURL: server}
	ctx := context.Background()

	// fetch grabs one catalog entry's renders in the given format.
	fetch := func(format string) ([][]byte, error) {
		var bodies [][]byte
		if data != "" {
			ids := []string{"all"}
			if runIDs != "all" {
				ids = strings.Split(runIDs, ",")
			}
			for _, id := range ids {
				b, err := c.RenderDataset(ctx, data, strings.TrimSpace(id), format)
				if err != nil {
					return nil, err
				}
				bodies = append(bodies, b)
			}
		}
		if sweepName != "" {
			b, err := c.RenderSweep(ctx, sweepName, "all", format)
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, b)
		}
		return bodies, nil
	}

	bodies, err := fetch("text")
	if err != nil {
		return err
	}
	for _, b := range bodies {
		os.Stdout.Write(b)
	}
	if md != "" {
		mdBodies, err := fetch("md")
		if err != nil {
			return err
		}
		f, err := os.Create(md)
		if err != nil {
			return err
		}
		for _, b := range mdBodies {
			if _, err := f.Write(b); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote markdown to %s\n", md)
	}
	if reval, filled := c.Stats(); reval > 0 {
		fmt.Fprintf(os.Stderr, "fetched %d renders (%d revalidated via ETag)\n", reval+filled, reval)
	}
	return nil
}

// loadOrGenerate resolves the experiments' dataset source: an existing
// sharded directory, an existing legacy file, or a fresh generation.
func loadOrGenerate(preset, data string, seed uint64, seedSet bool, racks int, hostStack bool) (experiments.Source, error) {
	if data != "" {
		if dataset.IsDir(data) {
			r, err := dataset.Open(data)
			if err != nil {
				return nil, err
			}
			if !r.Complete() {
				done, total := r.Progress()
				return nil, fmt.Errorf("%w: %s has %d of %d shards; resume it with cmd/fleetgen first",
					dataset.ErrIncomplete, data, done, total)
			}
			done, _ := r.Progress()
			fmt.Fprintf(os.Stderr, "loaded sharded dataset: %d shards, %d racks\n", done, len(r.RackMetas()))
			return r, nil
		}
		if fi, err := os.Stat(data); err == nil && fi.Mode().IsRegular() {
			var ds fleet.Dataset
			if err := trace.Load(data, &ds); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "loaded dataset: %d runs, %d racks\n", len(ds.Runs), len(ds.Racks))
			return &ds, nil
		}
	}
	var cfg fleet.Config
	switch preset {
	case "small":
		cfg = fleet.SmallConfig()
	case "default":
		cfg = fleet.DefaultConfig()
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	if seedSet {
		cfg.Seed = seed
	}
	if racks > 0 {
		cfg.RacksPerRegion = racks
	}
	cfg.HostStack = hostStack
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating %s dataset (%d racks/region x %d hours)...\n",
		preset, cfg.RacksPerRegion, len(cfg.Hours))
	ds, err := fleet.Generate(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "generated %d runs in %v\n", len(ds.Runs), time.Since(start).Round(time.Second))
	if data != "" {
		if dataset.LooksSharded(data) {
			if err := dataset.Write(data, ds); err != nil {
				return nil, err
			}
		} else if err := trace.Save(data, ds); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "saved dataset to %s\n", data)
	}
	return ds, nil
}
