// benchgate is the benchmark regression gate behind `make bench`.
//
// Usage:
//
//	benchgate run -out BENCH.json [-bench REGEX] [-micro-time 1s] [-fig-count 3]
//	benchgate compare -old BENCH.json -new NEW.json [-tol 0.50]
//
// `run` executes the repository benchmarks (the §4.3 microbenchmarks plus
// the per-figure regeneration benchmarks on the small preset), measures the
// wall time and determinism digest of a full small-preset fleet generation,
// and writes everything as JSON. `compare` gates a new result file against a
// previous one: ns/op (on well-sampled benchmarks) and generation wall time
// may regress by at most the given tolerance, allocs/op may not regress at
// all from a zero baseline, and the dataset digest must match exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
)

// BenchResult is one benchmark's measured cost.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// GenResult is the small-preset fleet generation measurement.
type GenResult struct {
	WallSeconds float64 `json:"wall_seconds"`
	Workers     int     `json:"workers"`
	Racks       int     `json:"racks"`
	Runs        int     `json:"runs"`
	Digest      string  `json:"digest"`
}

// File is the on-disk benchmark record (BENCH_PR10.json). Schema 2 adds the
// hybrid-fidelity generation measurement and its speedup over full fidelity;
// schema 3 adds the host-stack-instrumented generation and its overhead over
// the uninstrumented full-fidelity run.
type File struct {
	Schema      int                    `json:"schema"`
	CreatedUnix int64                  `json:"created_unix"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Benchmarks  map[string]BenchResult `json:"benchmarks"`
	Generate    GenResult              `json:"generate"`
	// GenerateHybrid is the same small-preset generation on the hybrid
	// fluid/packet engine; HybridSpeedup = Generate.WallSeconds /
	// GenerateHybrid.WallSeconds. Absent (zero) in schema-1 files.
	GenerateHybrid GenResult `json:"generate_hybrid,omitempty"`
	HybridSpeedup  float64   `json:"hybrid_speedup,omitempty"`
	// GenerateHostStack is the same small-preset generation with the
	// host-stack latency instrument armed (full fidelity, forced);
	// HostStackOverhead = GenerateHostStack.WallSeconds /
	// Generate.WallSeconds. Absent (zero) in schema-1/2 files.
	GenerateHostStack GenResult `json:"generate_hoststack,omitempty"`
	HostStackOverhead float64   `json:"hoststack_overhead,omitempty"`
}

// minHybridSpeedup is the acceptance floor: the hybrid path must generate the
// small preset at least this many times faster than the full engine.
const minHybridSpeedup = 3.0

// maxHostStackOverhead is the acceptance ceiling: arming the host-stack
// instrument may cost at most this factor over the plain full-fidelity
// generation. The per-segment hook is zero-alloc histogram bookkeeping, so
// anything past a modest slowdown means the tap started perturbing the
// hot path.
const maxHostStackOverhead = 1.30

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "benchgate: want subcommand `run` or `compare`")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "benchgate: unknown subcommand %q\n", os.Args[1])
		os.Exit(2)
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "BENCH_PR2.json", "output JSON path")
	micro := fs.String("bench", "Sampler|PcapLike|Engine", "regex of microbenchmarks (default benchtime)")
	microTime := fs.String("micro-time", "1s", "benchtime for the microbenchmarks")
	figs := fs.String("figs", "Fig|Table|Sweep|Generate", "regex of figure/table/sweep/generation benchmarks (fixed iteration count)")
	figCount := fs.Int("fig-count", 3, "iterations for figure/table benchmarks")
	fs.Parse(args)

	results := make(map[string]BenchResult)
	// Two invocations: time-based sampling for the nanosecond-scale §4.3
	// paths, a fixed small iteration count for the experiment regenerations
	// (each is a full artifact rebuild; 1s of them would take minutes).
	runGoBench(results, *micro, *microTime)
	runGoBench(results, *figs, strconv.Itoa(*figCount)+"x")

	gen, err := measureGenerate(fleet.FidelityFull, false)
	if err != nil {
		fatal(err)
	}
	hyb, err := measureGenerate(fleet.FidelityHybrid, false)
	if err != nil {
		fatal(err)
	}
	hs, err := measureGenerate(fleet.FidelityFull, true)
	if err != nil {
		fatal(err)
	}

	f := File{
		Schema:            3,
		CreatedUnix:       time.Now().Unix(),
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Benchmarks:        results,
		Generate:          gen,
		GenerateHybrid:    hyb,
		HybridSpeedup:     gen.WallSeconds / hyb.WallSeconds,
		GenerateHostStack: hs,
		HostStackOverhead: hs.WallSeconds / gen.WallSeconds,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: %d benchmarks, generate wall %.2fs (hybrid %.2fs, %.2fx; hoststack %.2fs, %.2fx overhead), written to %s\n",
		len(results), gen.WallSeconds, hyb.WallSeconds, f.HybridSpeedup, hs.WallSeconds, f.HostStackOverhead, *out)
}

// minGateIters is the iteration floor below which a benchmark's ns/op is
// recorded but not regression-gated: a 3-iteration sample of a
// microsecond-scale run says nothing about its true cost.
const minGateIters = 1000

// benchLine matches `go test -bench` result rows, with or without -benchmem
// columns. The -N CPU suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func runGoBench(into map[string]BenchResult, pattern, benchtime string) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	outb, err := cmd.Output()
	if err != nil {
		fatal(fmt.Errorf("go test -bench %q: %w", pattern, err))
	}
	for _, line := range strings.Split(string(outb), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := BenchResult{}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		into[m[1]] = r
	}
}

// measureGenerate times one small-preset collection day at the given
// fidelity, optionally with the host-stack instrument armed. Workers is
// pinned to 2 so the number is comparable across machines and matches the
// golden-digest test's configuration.
func measureGenerate(fid fleet.Fidelity, hostStack bool) (GenResult, error) {
	cfg := fleet.SmallConfig()
	cfg.Workers = 2
	cfg.Fidelity = fid
	cfg.HostStack = hostStack
	t0 := time.Now()
	ds, err := fleet.Generate(cfg)
	if err != nil {
		return GenResult{}, err
	}
	wall := time.Since(t0)
	digest, err := ds.Digest()
	if err != nil {
		return GenResult{}, err
	}
	return GenResult{
		WallSeconds: wall.Seconds(),
		Workers:     cfg.Workers,
		Racks:       len(ds.Racks),
		Runs:        len(ds.Runs),
		Digest:      digest,
	}, nil
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline JSON")
	newPath := fs.String("new", "", "candidate JSON")
	tol := fs.Float64("tol", 0.50, "allowed fractional regression in ns/op and wall time")
	fs.Parse(args)
	if *oldPath == "" || *newPath == "" {
		fatal(fmt.Errorf("compare: -old and -new are required"))
	}
	older, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newer, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	var failures []string
	names := make([]string, 0, len(older.Benchmarks))
	for name := range older.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ob := older.Benchmarks[name]
		nb, ok := newer.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from new results", name))
			continue
		}
		// The figure/table benchmarks run a handful of iterations — too few
		// for ns/op to be more than noise — so their timing is recorded but
		// not gated. Their allocs/op is an exact count and is gated below,
		// as is ns/op for the well-sampled microbenchmarks.
		gateNs := ob.Iterations >= minGateIters && nb.Iterations >= minGateIters
		if gateNs && nb.NsPerOp > ob.NsPerOp*(1+*tol) {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs %.1f baseline (+%.0f%%, tol %.0f%%)",
				name, nb.NsPerOp, ob.NsPerOp, 100*(nb.NsPerOp/ob.NsPerOp-1), 100**tol))
		}
		// Allocation regressions are gated strictly: a zero-alloc path must
		// stay zero-alloc, and any other path may not grow beyond tolerance.
		if ob.AllocsPerOp == 0 && nb.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs zero-alloc baseline",
				name, nb.AllocsPerOp))
		} else if nb.AllocsPerOp > ob.AllocsPerOp*(1+*tol) {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs %.0f baseline",
				name, nb.AllocsPerOp, ob.AllocsPerOp))
		}
	}
	og, ng := older.Generate, newer.Generate
	if ng.WallSeconds > og.WallSeconds*(1+*tol) {
		failures = append(failures, fmt.Sprintf("generate: %.2fs wall vs %.2fs baseline (+%.0f%%, tol %.0f%%)",
			ng.WallSeconds, og.WallSeconds, 100*(ng.WallSeconds/og.WallSeconds-1), 100**tol))
	}
	if og.Digest != "" && ng.Digest != og.Digest {
		failures = append(failures, fmt.Sprintf("generate: dataset digest drifted (%s -> %s): behavior change, not a perf change",
			short(og.Digest), short(ng.Digest)))
	}
	// Hybrid gates (schema 2+): wall-time regression like the full path, the
	// speedup floor the hybrid engine exists for, and digest determinism.
	// Against a schema-1 baseline only the absolute speedup floor applies.
	oh, nh := older.GenerateHybrid, newer.GenerateHybrid
	if nh.WallSeconds > 0 {
		if speedup := ng.WallSeconds / nh.WallSeconds; speedup < minHybridSpeedup {
			failures = append(failures, fmt.Sprintf("generate_hybrid: %.2fx speedup over full fidelity (floor %.1fx)",
				speedup, minHybridSpeedup))
		}
		if oh.WallSeconds > 0 && nh.WallSeconds > oh.WallSeconds*(1+*tol) {
			failures = append(failures, fmt.Sprintf("generate_hybrid: %.2fs wall vs %.2fs baseline (+%.0f%%, tol %.0f%%)",
				nh.WallSeconds, oh.WallSeconds, 100*(nh.WallSeconds/oh.WallSeconds-1), 100**tol))
		}
		if oh.Digest != "" && nh.Digest != oh.Digest {
			failures = append(failures, fmt.Sprintf("generate_hybrid: dataset digest drifted (%s -> %s): behavior change, not a perf change",
				short(oh.Digest), short(nh.Digest)))
		}
	} else if oh.WallSeconds > 0 {
		failures = append(failures, "generate_hybrid: missing from new results")
	}
	// Host-stack gates (schema 3+): the instrumented generation must stay
	// under the overhead ceiling relative to this run's own uninstrumented
	// measurement (machine-independent by construction), regress no more
	// than tolerance against the baseline wall, and — because arming the
	// instrument must not perturb the simulation — hold its own digest
	// steady across runs. Against a schema-1/2 baseline only the absolute
	// ceiling applies.
	ohs, nhs := older.GenerateHostStack, newer.GenerateHostStack
	if nhs.WallSeconds > 0 {
		if overhead := nhs.WallSeconds / ng.WallSeconds; overhead > maxHostStackOverhead {
			failures = append(failures, fmt.Sprintf("generate_hoststack: %.2fx overhead over plain full fidelity (ceiling %.2fx)",
				overhead, maxHostStackOverhead))
		}
		if ohs.WallSeconds > 0 && nhs.WallSeconds > ohs.WallSeconds*(1+*tol) {
			failures = append(failures, fmt.Sprintf("generate_hoststack: %.2fs wall vs %.2fs baseline (+%.0f%%, tol %.0f%%)",
				nhs.WallSeconds, ohs.WallSeconds, 100*(nhs.WallSeconds/ohs.WallSeconds-1), 100**tol))
		}
		if ohs.Digest != "" && nhs.Digest != ohs.Digest {
			failures = append(failures, fmt.Sprintf("generate_hoststack: dataset digest drifted (%s -> %s): behavior change, not a perf change",
				short(ohs.Digest), short(nhs.Digest)))
		}
	} else if ohs.WallSeconds > 0 {
		failures = append(failures, "generate_hoststack: missing from new results")
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s:\n", len(failures), *oldPath)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: no regressions vs %s (%d benchmarks, tol %.0f%%)\n",
		*oldPath, len(names), 100**tol)
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
