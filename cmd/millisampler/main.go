// Command millisampler demonstrates a single host's Millisampler: it builds
// a one-rack testbed, drives a service workload at one server, runs periodic
// collections exactly like the production user-space component, and prints
// the resulting timeseries as a text plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	profileName := flag.String("profile", "web", "workload profile: web, cache, storage, batch, quiet, mltrain")
	intervalMs := flag.Float64("interval", 1, "sampling interval in milliseconds")
	buckets := flag.Int("buckets", 2000, "number of time buckets")
	runs := flag.Int("runs", 2, "number of periodic runs")
	seed := flag.Uint64("seed", 1, "simulation seed")
	store := flag.String("store", "", "optional directory to persist runs (gob.gz, 7-run retention)")
	flag.Parse()

	prof, ok := profileByName(*profileName)
	if !ok {
		fmt.Fprintf(os.Stderr, "millisampler: unknown profile %q\n", *profileName)
		os.Exit(1)
	}

	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: *seed})
	workload.Install(rack, 0, prof, rack.RNG.Fork(1))

	cfg := core.Config{
		Interval:   sim.Time(*intervalMs * float64(sim.Millisecond)),
		Buckets:    *buckets,
		CountFlows: true,
	}
	sampler := core.NewSampler(rack.Servers[0], cfg)

	var st *trace.Store
	if *store != "" {
		var err error
		if st, err = trace.NewStore(*store, 7); err != nil {
			fmt.Fprintln(os.Stderr, "millisampler:", err)
			os.Exit(1)
		}
	}

	collected := 0
	periodic := &core.Periodic{
		Sampler: sampler,
		Period:  50 * sim.Millisecond,
		Store: func(r *core.Run) {
			collected++
			printRun(r, collected)
			if st != nil {
				if _, err := st.Put(r); err != nil {
					fmt.Fprintln(os.Stderr, "millisampler: store:", err)
				}
			}
		},
	}
	if err := periodic.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "millisampler:", err)
		os.Exit(1)
	}

	runSpan := cfg.Window() + 60*sim.Millisecond
	rack.Eng.RunUntil(sim.Time(*runs) * runSpan * 2)
	if collected == 0 {
		fmt.Fprintln(os.Stderr, "millisampler: no runs completed; increase -runs or simulation span")
		os.Exit(1)
	}
}

func profileByName(name string) (workload.Profile, bool) {
	for _, p := range []workload.Profile{
		workload.Web, workload.Cache, workload.Storage,
		workload.Batch, workload.Quiet, workload.MLTrain,
	} {
		if p.Name == name {
			return p, true
		}
	}
	return workload.Profile{}, false
}

func printRun(r *core.Run, n int) {
	fmt.Printf("run %d: host %d, interval %v, %d buckets, started=%v\n",
		n, r.Host, r.Interval, r.Buckets, r.Started)
	if !r.Started {
		return
	}
	fmt.Printf("  ingress %.2f MB (retx %.1f KB, ECN-marked %.1f KB), egress %.2f MB\n",
		float64(r.TotalBytes(core.CtrIn))/1e6,
		float64(r.TotalBytes(core.CtrInRetx))/1e3,
		float64(r.TotalBytes(core.CtrInECN))/1e3,
		float64(r.TotalBytes(core.CtrOut))/1e6)

	// Text sparkline of ingress utilization, 100 columns.
	cols := 100
	per := r.Buckets / cols
	if per < 1 {
		per = 1
		cols = r.Buckets
	}
	marks := " .:-=+*#%@"
	var sb strings.Builder
	peak := 0.0
	for c := 0; c < cols; c++ {
		u := 0.0
		for i := c * per; i < (c+1)*per && i < r.Buckets; i++ {
			if v := r.Utilization(i); v > u {
				u = v
			}
		}
		if u > peak {
			peak = u
		}
		idx := int(u * float64(len(marks)-1))
		if idx >= len(marks) {
			idx = len(marks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		sb.WriteByte(marks[idx])
	}
	fmt.Printf("  util |%s| peak %.0f%%\n", sb.String(), peak*100)
}
